// Fault-tolerance tests (docs/RESILIENCE.md): deterministic injection,
// partition requeue under device kills, anomaly degradation, checkpoint/
// restart bit-identity, and the hardened artifact/trace I/O paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/artifacts.h"
#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/checkpoint.h"
#include "core/cnn_predictor.h"
#include "core/parallel_sim.h"
#include "core/suite.h"
#include "device/fault.h"
#include "trace/trace.h"
#include "uarch/ground_truth.h"

namespace mlsim::core {
namespace {

namespace fs = std::filesystem;

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

ParallelSimOptions base_options(std::size_t parts, std::size_t gpus) {
  ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = gpus;
  o.context_length = 16;
  o.warmup = 16;
  o.post_error_correction = true;
  o.record_predictions = true;
  return o;
}

fs::path temp_file(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / name;
  fs::remove(p);
  return p;
}

void expect_identical(const ParallelSimResult& a, const ParallelSimResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.corrected_instructions, b.corrected_instructions);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i], b.predictions[i]) << "at " << i;
  }
}

// ---- injector determinism ---------------------------------------------------

TEST(FaultInjector, DecisionsAreDeterministicInSeed) {
  device::FaultOptions fo;
  fo.seed = 42;
  fo.device_kill_rate = 0.3;
  fo.straggler_rate = 0.3;
  fo.output_corrupt_rate = 0.1;
  const device::FaultInjector a(fo), b(fo);
  fo.seed = 43;
  const device::FaultInjector other(fo);

  bool any_difference = false;
  for (std::size_t p = 0; p < 64; ++p) {
    for (std::size_t attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.kill_point(p, attempt), b.kill_point(p, attempt));
      EXPECT_EQ(a.straggler_factor(p, attempt), b.straggler_factor(p, attempt));
      EXPECT_EQ(a.corrupts(p, attempt, 7), b.corrupts(p, attempt, 7));
      if (a.kill_point(p, attempt) != other.kill_point(p, attempt) ||
          a.corrupts(p, attempt, 7) != other.corrupts(p, attempt, 7)) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference) << "different seeds produced the same schedule";
}

TEST(FaultInjector, InertByDefaultAndValidatesRates) {
  const device::FaultInjector inert;
  EXPECT_FALSE(inert.enabled());
  EXPECT_EQ(inert.kill_point(0, 0), std::nullopt);
  EXPECT_EQ(inert.straggler_factor(0, 0), 1.0);
  EXPECT_FALSE(inert.corrupts(0, 0, 0));

  device::FaultOptions bad;
  bad.device_kill_rate = 1.5;
  EXPECT_THROW(device::FaultInjector{bad}, CheckError);
  bad = {};
  bad.straggler_slowdown = 0.5;
  EXPECT_THROW(device::FaultInjector{bad}, CheckError);
}

TEST(FaultInjector, CorruptLatenciesAlwaysTripTheDefaultGuard) {
  device::FaultOptions fo;
  fo.output_corrupt_rate = 1.0;
  const device::FaultInjector inj(fo);
  const ParallelSimOptions defaults;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto g = inj.corrupt_latencies(0, 0, i);
    EXPECT_GT(g.fetch, defaults.anomaly_latency_limit);
    EXPECT_GT(g.exec, defaults.anomaly_latency_limit);
    EXPECT_GT(g.store, defaults.anomaly_latency_limit);
  }
}

// ---- engine recovery --------------------------------------------------------

TEST(FaultRecovery, DisabledInjectionIsBitIdentical) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  const ParallelSimOptions plain = base_options(12, 2);

  ParallelSimulator bare(pred, plain);
  const auto want = bare.run(tr);

  const device::FaultInjector inert;  // attached but all rates zero
  ParallelSimOptions wired = plain;
  wired.faults = &inert;
  ParallelSimulator sim(pred, wired);
  const auto got = sim.run(tr);

  expect_identical(want, got);
  EXPECT_DOUBLE_EQ(got.sim_time_us, want.sim_time_us);
  EXPECT_EQ(got.retries, 0u);
  EXPECT_TRUE(got.failed_partitions.empty());
  EXPECT_TRUE(got.degraded_partitions.empty());
}

TEST(FaultRecovery, DeviceKillsRequeueWithoutChangingPredictions) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  const ParallelSimOptions plain = base_options(12, 2);
  ParallelSimulator bare(pred, plain);
  const auto want = bare.run(tr);

  device::FaultOptions fo;
  fo.seed = 1;  // seed 1 kills several of the 12 partitions
  fo.device_kill_rate = 0.3;
  const device::FaultInjector inj(fo);
  ParallelSimOptions wired = plain;
  wired.faults = &inj;
  wired.max_retries_per_partition = 8;
  ParallelSimulator sim(pred, wired);
  const auto got = sim.run(tr);

  // A killed attempt is discarded and replayed deterministically, so the
  // predictions — and hence CPI — are exactly the fault-free ones.
  expect_identical(want, got);
  EXPECT_GT(got.retries, 0u);
  EXPECT_FALSE(got.failed_partitions.empty());
  EXPECT_GE(got.lost_devices, 1u);
  // Wasted attempts, device loss, and backoff all cost modeled time.
  EXPECT_GT(got.sim_time_us, want.sim_time_us);
  EXPECT_GT(got.retry_backoff_us, 0.0);
  // The §V-B acceptance bar: recovered CPI error within 2x fault-free error
  // is trivially met by exact equality.
  EXPECT_DOUBLE_EQ(got.cpi(), want.cpi());
}

TEST(FaultRecovery, RetryBudgetExhaustionThrows) {
  const trace::EncodedTrace tr = make_trace("xz", 2000);
  AnalyticPredictor pred;
  device::FaultOptions fo;
  fo.device_kill_rate = 1.0;  // every attempt dies
  const device::FaultInjector inj(fo);
  ParallelSimOptions o = base_options(4, 1);
  o.faults = &inj;
  o.max_retries_per_partition = 3;
  ParallelSimulator sim(pred, o);
  EXPECT_THROW(sim.run(tr), CheckError);
}

TEST(FaultRecovery, CorruptionDegradesToFallbackPredictor) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  const ParallelSimOptions plain = base_options(12, 2);
  ParallelSimulator bare(pred, plain);
  const auto want = bare.run(tr);

  device::FaultOptions fo;
  fo.seed = 1;
  fo.output_corrupt_rate = 0.02;
  const device::FaultInjector inj(fo);
  AnalyticPredictor fallback;
  ParallelSimOptions wired = plain;
  wired.faults = &inj;
  wired.fallback = &fallback;
  wired.max_retries_per_partition = 8;
  ParallelSimulator sim(pred, wired);
  const auto got = sim.run(tr);

  // The fallback equals the primary here, and a degraded re-run skips the
  // injector (the analytic predictor runs outside the faulty device), so
  // recovery reproduces the fault-free predictions exactly.
  expect_identical(want, got);
  EXPECT_FALSE(got.degraded_partitions.empty());
  EXPECT_GT(got.retries, 0u);
  EXPECT_TRUE(got.failed_partitions.empty());  // corruption is not a kill
}

TEST(FaultRecovery, CorruptionWithoutFallbackThrows) {
  const trace::EncodedTrace tr = make_trace("xz", 2000);
  AnalyticPredictor pred;
  device::FaultOptions fo;
  fo.output_corrupt_rate = 0.5;
  const device::FaultInjector inj(fo);
  ParallelSimOptions o = base_options(4, 1);
  o.faults = &inj;
  o.fallback = nullptr;
  ParallelSimulator sim(pred, o);
  EXPECT_THROW(sim.run(tr), CheckError);
}

TEST(FaultRecovery, StragglersStretchModeledTimeOnly) {
  const trace::EncodedTrace tr = make_trace("xz", 6000);
  AnalyticPredictor pred;
  const ParallelSimOptions plain = base_options(12, 2);
  ParallelSimulator bare(pred, plain);
  const auto want = bare.run(tr);

  device::FaultOptions fo;
  fo.seed = 3;
  fo.straggler_rate = 0.5;
  fo.straggler_slowdown = 4.0;
  const device::FaultInjector inj(fo);
  ParallelSimOptions wired = plain;
  wired.faults = &inj;
  ParallelSimulator sim(pred, wired);
  const auto got = sim.run(tr);

  expect_identical(want, got);  // stragglers are slow, not wrong
  EXPECT_GT(got.sim_time_us, want.sim_time_us);
  EXPECT_EQ(got.retries, 0u);
}

TEST(FaultRecovery, BackoffIsChargedToModeledTime) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  device::FaultOptions fo;
  fo.seed = 1;
  fo.device_kill_rate = 0.3;
  const device::FaultInjector inj(fo);

  ParallelSimOptions no_backoff = base_options(12, 2);
  no_backoff.faults = &inj;
  no_backoff.max_retries_per_partition = 8;
  no_backoff.retry_backoff_us = 0.0;
  ParallelSimulator sim_free(pred, no_backoff);
  const auto free_res = sim_free.run(tr);

  ParallelSimOptions with_backoff = no_backoff;
  with_backoff.retry_backoff_us = 100.0;
  ParallelSimulator sim_paid(pred, with_backoff);
  const auto paid_res = sim_paid.run(tr);

  // Same fault schedule, so the only modeled-time difference is the backoff.
  EXPECT_EQ(free_res.retries, paid_res.retries);
  EXPECT_GT(paid_res.retry_backoff_us, 0.0);
  EXPECT_NEAR(paid_res.sim_time_us - free_res.sim_time_us,
              paid_res.retry_backoff_us, 1e-6);
}

// ---- checkpoint/restart -----------------------------------------------------

TEST(Checkpoint, KillAndResumeIsBitIdentical) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  const ParallelSimOptions plain = base_options(12, 2);

  device::FaultOptions fo;
  fo.die_after_partition = 5;
  const device::FaultInjector inj(fo);

  ParallelSimOptions ck = plain;
  ck.faults = &inj;
  ck.checkpoint_path = temp_file("mlsim_fault_test_parallel.ckpt");
  ParallelSimulator doomed(pred, ck);
  EXPECT_THROW(doomed.run(tr), device::InjectedCrash);
  ASSERT_TRUE(fs::exists(ck.checkpoint_path)) << "no checkpoint after crash";

  // Same options (the one-shot death trigger does not re-fire past the
  // resume point), now resuming.
  ck.resume = true;
  ParallelSimulator revived(pred, ck);
  const auto got = revived.run(tr);
  EXPECT_TRUE(got.resumed);

  // The fault injector never fired a kill/corruption, so the resumed run
  // must equal a plain uninterrupted run bit for bit.
  ParallelSimulator bare(pred, plain);
  const auto want = bare.run(tr);
  expect_identical(want, got);
  EXPECT_EQ(got.warmup_instructions, want.warmup_instructions);
  EXPECT_DOUBLE_EQ(got.sim_time_us, want.sim_time_us);
  EXPECT_FALSE(fs::exists(ck.checkpoint_path))
      << "checkpoint should be removed after a successful run";
}

TEST(Checkpoint, ResumeAcrossFaultsReplaysTheSchedule) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;

  device::FaultOptions fo;
  fo.seed = 1;
  fo.device_kill_rate = 0.3;
  const device::FaultInjector inj(fo);
  ParallelSimOptions faulty = base_options(12, 2);
  faulty.faults = &inj;
  faulty.max_retries_per_partition = 8;
  ParallelSimulator whole(pred, faulty);
  const auto want = whole.run(tr);

  device::FaultOptions fo_dying = fo;
  fo_dying.die_after_partition = 7;
  const device::FaultInjector dying(fo_dying);
  ParallelSimOptions ck = faulty;
  ck.faults = &dying;
  ck.checkpoint_path = temp_file("mlsim_fault_test_faulty.ckpt");
  ParallelSimulator doomed(pred, ck);
  EXPECT_THROW(doomed.run(tr), device::InjectedCrash);

  ck.resume = true;
  ParallelSimulator revived(pred, ck);
  const auto got = revived.run(tr);

  expect_identical(want, got);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.failed_partitions, want.failed_partitions);
  EXPECT_EQ(got.lost_devices, want.lost_devices);
  EXPECT_DOUBLE_EQ(got.sim_time_us, want.sim_time_us);
}

TEST(Checkpoint, MismatchedConfigurationIsRejected) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  device::FaultOptions fo;
  fo.die_after_partition = 5;
  const device::FaultInjector inj(fo);

  ParallelSimOptions ck = base_options(12, 2);
  ck.faults = &inj;
  ck.checkpoint_path = temp_file("mlsim_fault_test_mismatch.ckpt");
  ParallelSimulator doomed(pred, ck);
  EXPECT_THROW(doomed.run(tr), device::InjectedCrash);

  ParallelSimOptions other = base_options(10, 2);  // different partitioning
  other.faults = &inj;
  other.checkpoint_path = ck.checkpoint_path;
  other.resume = true;
  ParallelSimulator sim(pred, other);
  EXPECT_THROW(sim.run(tr), CheckError);
  fs::remove(ck.checkpoint_path);
}

TEST(Checkpoint, CorruptedCheckpointIsRejected) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  device::FaultOptions fo;
  fo.die_after_partition = 5;
  const device::FaultInjector inj(fo);

  ParallelSimOptions ck = base_options(12, 2);
  ck.faults = &inj;
  ck.checkpoint_path = temp_file("mlsim_fault_test_corrupt.ckpt");
  ParallelSimulator doomed(pred, ck);
  EXPECT_THROW(doomed.run(tr), device::InjectedCrash);

  // Flip one payload byte; the checksum must catch it on resume.
  {
    std::fstream f(ck.checkpoint_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(40);
    char c = 0;
    f.seekg(40);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x20);
    f.seekp(40);
    f.write(&c, 1);
  }
  ck.resume = true;
  ParallelSimulator revived(pred, ck);
  EXPECT_THROW(revived.run(tr), CheckError);
  fs::remove(ck.checkpoint_path);
}

TEST(Checkpoint, TruncatedCheckpointIsRejected) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  device::FaultOptions fo;
  fo.die_after_partition = 5;
  const device::FaultInjector inj(fo);

  ParallelSimOptions ck = base_options(12, 2);
  ck.faults = &inj;
  ck.checkpoint_path = temp_file("mlsim_fault_test_truncated.ckpt");
  ParallelSimulator doomed(pred, ck);
  EXPECT_THROW(doomed.run(tr), device::InjectedCrash);

  // A torn write (power loss mid-rename on a non-atomic filesystem) leaves
  // half a file behind; strict resume must refuse it.
  const auto full = fs::file_size(ck.checkpoint_path);
  ASSERT_GT(full, 2u);
  fs::resize_file(ck.checkpoint_path, full / 2);
  ck.resume = true;
  ParallelSimulator revived(pred, ck);
  EXPECT_THROW(revived.run(tr), CheckError);
  fs::remove(ck.checkpoint_path);
}

TEST(Checkpoint, LenientResumeFallsBackToCleanStart) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  AnalyticPredictor pred;
  const ParallelSimOptions plain = base_options(12, 2);
  device::FaultOptions fo;
  fo.die_after_partition = 5;
  const device::FaultInjector inj(fo);

  ParallelSimOptions ck = plain;
  ck.faults = &inj;
  ck.checkpoint_path = temp_file("mlsim_fault_test_lenient.ckpt");
  ParallelSimulator doomed(pred, ck);
  EXPECT_THROW(doomed.run(tr), device::InjectedCrash);
  fs::resize_file(ck.checkpoint_path, fs::file_size(ck.checkpoint_path) / 2);

  // Unattended-service mode: the torn checkpoint is recorded, not fatal, and
  // the clean start is bit-identical to a run that never checkpointed. The
  // process restarted, so the one-shot death trigger is gone — starting from
  // partition 0 it would otherwise just fire again.
  ck.faults = nullptr;
  ck.resume = true;
  ck.resume_lenient = true;
  ParallelSimulator revived(pred, ck);
  const auto got = revived.run(tr);
  EXPECT_FALSE(got.resumed);
  EXPECT_FALSE(got.resume_error.empty()) << "rejection reason must be recorded";

  ParallelSimulator bare(pred, plain);
  const auto want = bare.run(tr);
  expect_identical(want, got);
  EXPECT_FALSE(fs::exists(ck.checkpoint_path));
}

// ---- predictor output guard -------------------------------------------------

TEST(CnnPredictor, DecodeGuardsNonFiniteOutputs) {
  // A poisoned model or sick inference backend emits NaN/Inf floats; decode
  // must map them (and absurd finite magnitudes) to the sentinel that trips
  // the anomaly guard rather than wrapping to an arbitrary latency.
  EXPECT_EQ(CnnPredictor::decode(std::numeric_limits<float>::quiet_NaN()),
            CnnPredictor::kNonFiniteLatency);
  EXPECT_EQ(CnnPredictor::decode(std::numeric_limits<float>::infinity()),
            CnnPredictor::kNonFiniteLatency);
  EXPECT_EQ(CnnPredictor::decode(-std::numeric_limits<float>::infinity()),
            CnnPredictor::kNonFiniteLatency);
  EXPECT_EQ(CnnPredictor::decode(1e30f), CnnPredictor::kNonFiniteLatency);

  // The sentinel itself trips the parallel engine's default anomaly guard.
  EXPECT_GT(CnnPredictor::kNonFiniteLatency, ParallelSimOptions{}.anomaly_latency_limit);

  // Sane outputs still round-trip to small non-negative latencies.
  EXPECT_EQ(CnnPredictor::decode(-5.0f), 0u);
  EXPECT_LT(CnnPredictor::decode(0.0f), CnnPredictor::kNonFiniteLatency);
  EXPECT_LT(CnnPredictor::decode(7.3f), 1u << 12);  // expm1(7.3) ~ 1480
}

// ---- suite checkpoint -------------------------------------------------------

// Delegates to the analytic model but dies after a fixed number of
// predictions — enough to survive job 1 and crash inside job 2.
class FlakyPredictor final : public LatencyPredictor {
 public:
  explicit FlakyPredictor(std::size_t fail_after) : fail_after_(fail_after) {}
  LatencyPrediction predict(const WindowView& window,
                            std::uint64_t global_index) override {
    bump();
    return inner_.predict(window, global_index);
  }
  LatencyPrediction predict_lazy(const LazyWindow& window) override {
    bump();
    return inner_.predict_lazy(window);
  }
  std::size_t flops_per_window(std::size_t rows) const override {
    return inner_.flops_per_window(rows);
  }

 private:
  void bump() {
    if (++calls_ > fail_after_) throw std::runtime_error("injected predictor death");
  }
  AnalyticPredictor inner_;
  std::size_t fail_after_;
  std::size_t calls_ = 0;
};

TEST(Checkpoint, SuiteResumeSkipsCompletedJobs) {
  const trace::EncodedTrace a = make_trace("xz", 3000);
  const trace::EncodedTrace b = make_trace("mcf", 2000);
  const std::vector<SuiteJob> jobs = {{&a, "xz"}, {&b, "mcf"}};
  GpuSimOptions opts;
  opts.context_length = 16;

  AnalyticPredictor pred;
  const SuiteReport want = run_suite(pred, jobs, 2, opts);

  // LPT runs the larger job ("xz") first; die partway into the second.
  const fs::path ckpt = temp_file("mlsim_fault_test_suite.ckpt");
  FlakyPredictor flaky(a.size() + b.size() / 2);
  EXPECT_THROW(run_suite(flaky, jobs, 2, opts, ckpt), std::runtime_error);
  ASSERT_TRUE(fs::exists(ckpt));

  const SuiteReport got = run_suite(pred, jobs, 2, opts, ckpt, /*resume=*/true);
  ASSERT_EQ(got.jobs.size(), want.jobs.size());
  for (std::size_t j = 0; j < got.jobs.size(); ++j) {
    EXPECT_EQ(got.jobs[j].name, want.jobs[j].name);
    EXPECT_EQ(got.jobs[j].device, want.jobs[j].device);
    EXPECT_DOUBLE_EQ(got.jobs[j].cpi, want.jobs[j].cpi);
    EXPECT_DOUBLE_EQ(got.jobs[j].sim_time_us, want.jobs[j].sim_time_us);
  }
  EXPECT_DOUBLE_EQ(got.makespan_us, want.makespan_us);
  EXPECT_FALSE(fs::exists(ckpt));
}

// ---- hardened I/O -----------------------------------------------------------

TEST(HardenedIo, TraceLoadRejectsMissingTruncatedAndBitFlipped) {
  const fs::path path = temp_file("mlsim_fault_test_trace.bin");
  EXPECT_THROW(trace::EncodedTrace::load(path), IoError);  // missing

  const trace::EncodedTrace tr = make_trace("xz", 500);
  tr.save(path);
  EXPECT_EQ(trace::EncodedTrace::load(path).size(), tr.size());

  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);  // truncate mid-body
  EXPECT_THROW(trace::EncodedTrace::load(path), CheckError);

  tr.save(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0xff);  // break the magic
    f.seekp(0);
    f.write(&c, 1);
  }
  EXPECT_THROW(trace::EncodedTrace::load(path), CheckError);

  fs::resize_file(path, 0);  // empty file
  EXPECT_THROW(trace::EncodedTrace::load(path), CheckError);
  fs::remove(path);
}

class ArtifactDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "mlsim_fault_test_artifacts";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    const char* old = std::getenv("MLSIM_ARTIFACT_DIR");
    if (old != nullptr) old_dir_ = old;
    ::setenv("MLSIM_ARTIFACT_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    if (old_dir_.empty()) {
      ::unsetenv("MLSIM_ARTIFACT_DIR");
    } else {
      ::setenv("MLSIM_ARTIFACT_DIR", old_dir_.c_str(), 1);
    }
    fs::remove_all(dir_);
  }
  fs::path dir_;
  std::string old_dir_;
};

TEST_F(ArtifactDirTest, CommitPublishesAtomicallyWithChecksum) {
  artifact_commit("x.bin", [](const fs::path& p) {
    std::ofstream os(p, std::ios::binary);
    os << "payload bytes";
  });
  EXPECT_TRUE(artifact_exists("x.bin"));
  EXPECT_TRUE(artifact_checksum_ok("x.bin"));

  // Bit-flip the published artifact: the sidecar checksum must disown it.
  {
    std::fstream f(artifact_path("x.bin"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(3);
    f.write("X", 1);
  }
  EXPECT_FALSE(artifact_checksum_ok("x.bin"));
  EXPECT_FALSE(artifact_exists("x.bin"));
}

TEST_F(ArtifactDirTest, ZeroLengthArtifactsDoNotExist) {
  std::ofstream(artifact_path("empty.bin"), std::ios::binary).flush();
  EXPECT_FALSE(artifact_exists("empty.bin"));
}

TEST_F(ArtifactDirTest, FailedWriterPublishesNothing) {
  EXPECT_THROW(artifact_commit("half.bin",
                               [](const fs::path& p) {
                                 std::ofstream os(p, std::ios::binary);
                                 os << "half-";
                                 os.flush();
                                 throw IoError("disk died mid-write");
                               }),
               IoError);
  EXPECT_FALSE(fs::exists(artifact_path("half.bin")));
  EXPECT_FALSE(artifact_exists("half.bin"));
  // No stray temp files left behind either.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) ++entries;
  EXPECT_EQ(entries, 0u);
}

TEST_F(ArtifactDirTest, LegacyArtifactsWithoutSidecarStillLoad) {
  // Artifacts written before checksum sidecars existed must keep working.
  std::ofstream(artifact_path("old.bin"), std::ios::binary) << "legacy";
  EXPECT_TRUE(artifact_checksum_ok("old.bin"));
  EXPECT_TRUE(artifact_exists("old.bin"));
}

}  // namespace
}  // namespace mlsim::core
