// Cross-engine consistency: every simulation engine (sequential reference,
// GPU-optimised, partition-order parallel, lockstep batched, streaming) must
// produce the same predictions for the same predictor — including the CNN,
// whose batch path exercises different code than its scalar path.
#include <gtest/gtest.h>

#include "core/analytic_predictor.h"
#include "core/cnn_predictor.h"
#include "core/gpu_sim.h"
#include "core/lockstep_sim.h"
#include "core/sequential_sim.h"
#include "core/simulator.h"
#include "core/streaming.h"
#include "core/suite.h"
#include "trace/stream.h"

namespace mlsim::core {
namespace {

SimNetBundle tiny_bundle(std::size_t window) {
  tensor::SimNetModelConfig cfg;
  cfg.in_features = trace::kNumFeatures;
  cfg.window = window;
  cfg.channels = 4;
  cfg.hidden = 8;
  tensor::SimNetModel model(cfg, 77);
  return SimNetBundle{std::move(model),
                      std::vector<float>(trace::kNumFeatures, 0.04f)};
}

TEST(CrossEngine, AllEnginesAgreeWithCnnPredictor) {
  const std::size_t ctx = 12;
  const auto tr = uarch::make_encoded_trace(trace::find_workload("perl"), 400,
                                            {}, 9);
  CnnPredictor cnn(tiny_bundle(ctx + 1));

  // Sequential reference.
  SequentialSimOptions so;
  so.context_length = ctx;
  so.record_predictions = true;
  const auto seq = SequentialSimulator(cnn, so).run(tr);

  // GPU-optimised engine.
  device::Device dev;
  GpuSimOptions go;
  go.context_length = ctx;
  go.record_predictions = true;
  const auto gpu = GpuSimulator(cnn, dev, go).run(tr);
  ASSERT_EQ(gpu.predictions.size(), seq.predictions.size());
  for (std::size_t i = 0; i < seq.predictions.size(); ++i) {
    ASSERT_EQ(gpu.predictions[i], seq.predictions[i]) << i;
  }

  // Parallel engines with a single partition.
  ParallelSimOptions po;
  po.num_subtraces = 1;
  po.context_length = ctx;
  po.record_predictions = true;
  const auto par = ParallelSimulator(cnn, po).run(tr);
  const auto lock = LockstepParallelSimulator(cnn, po).run(tr);
  for (std::size_t i = 0; i < seq.predictions.size(); ++i) {
    ASSERT_EQ(par.predictions[i], seq.predictions[i]) << i;
    ASSERT_EQ(lock.predictions[i], seq.predictions[i]) << i;
  }
}

TEST(CrossEngine, StreamingAgreesWithParallelAnalytic) {
  const std::size_t ctx = 24;
  const auto& wl = trace::find_workload("x264");
  const auto tr = uarch::make_encoded_trace(wl, 3000, {}, 13);
  AnalyticPredictor pred;

  ParallelSimOptions po;
  po.num_subtraces = 1;
  po.context_length = ctx;
  const auto par = ParallelSimulator(pred, po).run(tr);

  trace::LabeledTraceStream stream(wl, {}, 13);
  const auto str = simulate_stream(pred, stream, 3000, ctx, 113);
  EXPECT_EQ(str.predicted_cycles, par.total_cycles);
}

TEST(CrossEngine, FacadeCnnPathRunsAllEngines) {
  const auto tr = labeled_trace("nab", 1200, {}, 1, false);
  MLSimulator sim;
  sim.use_cnn(tiny_bundle(17));
  EXPECT_EQ(sim.options().context_length, 16u);

  const auto single = sim.simulate(tr);
  const auto par = sim.simulate_parallel(tr, 4, 2);
  EXPECT_EQ(single.instructions, tr.size());
  EXPECT_EQ(par.instructions, tr.size());
  EXPECT_GT(par.mips(), 0.0);
}

TEST(CrossEngine, SuiteMatchesIndividualRuns) {
  const auto a = labeled_trace("xz", 1500, {}, 1, false);
  const auto b = labeled_trace("exch", 1500, {}, 1, false);
  AnalyticPredictor pred;
  GpuSimOptions opts;
  opts.context_length = 16;

  device::Device d1, d2;
  const auto ra = GpuSimulator(pred, d1, opts).run(a);
  const auto rb = GpuSimulator(pred, d2, opts).run(b);

  const auto report = run_suite(pred, {{&a, "xz"}, {&b, "exch"}}, 2, opts);
  for (const auto& j : report.jobs) {
    if (j.name == "xz") EXPECT_DOUBLE_EQ(j.cpi, ra.cpi());
    if (j.name == "exch") EXPECT_DOUBLE_EQ(j.cpi, rb.cpi());
  }
}

}  // namespace
}  // namespace mlsim::core
