// Tests for the extension features: cache replacement policies, next-line
// prefetch, extended metrics, the error-analysis module and the suite
// scheduler.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analytic_predictor.h"
#include "core/error_analysis.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "core/suite.h"
#include "uarch/cache.h"
#include "uarch/ground_truth.h"

namespace mlsim {
namespace {

// ------------------------------------------------- replacement policies ---

uarch::CacheConfig policy_cache(uarch::ReplacementPolicy p) {
  return {.size_bytes = 4096, .assoc = 4, .line_bytes = 64, .mshrs = 4,
          .latency = 3, .replacement = p, .next_line_prefetch = false};
}

TEST(Replacement, FifoEvictsOldestFill) {
  uarch::Cache c(policy_cache(uarch::ReplacementPolicy::kFifo));
  const std::uint64_t set_stride = 64 * 16;  // 16 sets
  // Fill the 4 ways of set 0 in order A,B,C,D.
  for (std::uint64_t i = 0; i < 4; ++i) {
    c.access(i * set_stride, i, i + 10, false);
  }
  // Touch A repeatedly: FIFO ignores recency.
  c.access(0, 10, 0, false);
  c.access(0, 11, 0, false);
  // New line E evicts A (oldest fill) despite A being most-recently used.
  c.access(4 * set_stride, 12, 20, false);
  EXPECT_FALSE(c.probe(0));
  EXPECT_TRUE(c.probe(set_stride));
}

TEST(Replacement, LruKeepsRecentlyUsed) {
  uarch::Cache c(policy_cache(uarch::ReplacementPolicy::kLru));
  const std::uint64_t set_stride = 64 * 16;
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * set_stride, i, i + 10, false);
  c.access(0, 10, 0, false);  // A is now MRU
  c.access(4 * set_stride, 12, 20, false);
  EXPECT_TRUE(c.probe(0));          // A survives under LRU
  EXPECT_FALSE(c.probe(set_stride));  // B (LRU) evicted
}

TEST(Replacement, RandomIsDeterministicAndValid) {
  uarch::Cache a(policy_cache(uarch::ReplacementPolicy::kRandom));
  uarch::Cache b(policy_cache(uarch::ReplacementPolicy::kRandom));
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr = rng.next_below(64 * 1024);
    a.access(addr, static_cast<std::uint64_t>(i), i + 10, false);
  }
  Rng rng2(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr = rng2.next_below(64 * 1024);
    b.access(addr, static_cast<std::uint64_t>(i), i + 10, false);
  }
  EXPECT_EQ(a.misses(), b.misses());
  EXPECT_GT(a.hits(), 0u);
}

TEST(Replacement, PolicyAffectsThrashingPattern) {
  // Cyclic access over assoc+1 lines of one set: LRU misses every time,
  // while random replacement keeps some lines by luck.
  const std::uint64_t set_stride = 64 * 16;
  uarch::Cache lru(policy_cache(uarch::ReplacementPolicy::kLru));
  uarch::Cache rnd(policy_cache(uarch::ReplacementPolicy::kRandom));
  for (int rep = 0; rep < 200; ++rep) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      const std::uint64_t addr = i * set_stride;
      // Prompt fills so no MSHR stays outstanding across iterations.
      const std::uint64_t now = static_cast<std::uint64_t>(rep) * 100 + i * 10;
      lru.access(addr, now, now + 2, false);
      rnd.access(addr, now, now + 2, false);
    }
  }
  EXPECT_EQ(lru.hits(), 0u);  // classic LRU worst case
  EXPECT_GT(rnd.hits(), 50u);
}

TEST(Replacement, DseWithoutRetraining) {
  // Table IV: replacement policy is explorable by re-tracing only.
  uarch::MachineConfig lru_m;
  uarch::MachineConfig fifo_m;
  fifo_m.l1d.replacement = uarch::ReplacementPolicy::kFifo;
  fifo_m.l2.replacement = uarch::ReplacementPolicy::kFifo;
  const auto lru_tr = core::labeled_trace("xz", 30000, lru_m, 1, false);
  const auto fifo_tr = core::labeled_trace("xz", 30000, fifo_m, 1, false);
  // Different policies produce different hit-level features.
  const auto r_lru = core::trace_rates(lru_tr);
  const auto r_fifo = core::trace_rates(fifo_tr);
  EXPECT_NE(r_lru.l1d_miss_rate, r_fifo.l1d_miss_rate);
}

// ---------------------------------------------------------- prefetching ---

TEST(Prefetch, NextLineEliminatesStreamMisses) {
  uarch::CacheConfig cfg{.size_bytes = 4096, .assoc = 4, .line_bytes = 64,
                         .mshrs = 4, .latency = 3,
                         .replacement = uarch::ReplacementPolicy::kLru,
                         .next_line_prefetch = true};
  uarch::Cache with(cfg);
  cfg.next_line_prefetch = false;
  uarch::Cache without(cfg);
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
    with.access(a, a, a + 10, false);
    without.access(a, a, a + 10, false);
  }
  // Sequential stream: tagged prefetching converts nearly all misses into
  // hits (only the stream head misses).
  EXPECT_LT(with.misses(), without.misses() / 50);
  EXPECT_GT(with.prefetches(), 500u);
}

TEST(Prefetch, ChangesTraceAnnotations) {
  uarch::MachineConfig base;
  uarch::MachineConfig pf = base;
  pf.l1d.next_line_prefetch = true;
  pf.l2.next_line_prefetch = true;
  // Streaming benchmark benefits.
  const auto plain = core::labeled_trace("lbm", 30000, base, 1, false);
  const auto fetched = core::labeled_trace("lbm", 30000, pf, 1, false);
  EXPECT_LT(core::trace_rates(fetched).l1d_miss_rate,
            core::trace_rates(plain).l1d_miss_rate);
  // And it lowers ground-truth cycles on the streaming code.
  EXPECT_LT(core::total_cycles_from_targets(fetched),
            core::total_cycles_from_targets(plain));
}

// ------------------------------------------------- predictor algorithms ---

uarch::BranchPredictorConfig bp_cfg(uarch::BranchPredictorKind kind) {
  uarch::BranchPredictorConfig c;
  c.kind = kind;
  return c;
}

class BpKindSweep : public ::testing::TestWithParam<uarch::BranchPredictorKind> {};

TEST_P(BpKindSweep, LearnsStrongBiasAndLoops) {
  uarch::BranchPredictor bp(bp_cfg(GetParam()));
  // Strongly-taken branch.
  for (int i = 0; i < 100; ++i) bp.update(0x1000, true);
  EXPECT_TRUE(bp.predict(0x1000));
  // Strongly not-taken branch elsewhere.
  for (int i = 0; i < 100; ++i) bp.update(0x9000, false);
  EXPECT_FALSE(bp.predict(0x9000));
}

TEST_P(BpKindSweep, BetterThanCoinFlipOnLoops) {
  uarch::BranchPredictor bp(bp_cfg(GetParam()));
  int correct = 0, total = 0;
  for (int rep = 0; rep < 400; ++rep) {
    for (int i = 0; i < 6; ++i) {
      const bool taken = i != 5;  // 5-taken-1-not loop pattern
      if (rep > 50) {
        correct += bp.predict(0x2000) == taken;
        ++total;
      }
      bp.update(0x2000, taken);
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.6) << "kind "
      << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, BpKindSweep,
                         ::testing::Values(uarch::BranchPredictorKind::kBiMode,
                                           uarch::BranchPredictorKind::kGshare,
                                           uarch::BranchPredictorKind::kLocal,
                                           uarch::BranchPredictorKind::kBimodal));

TEST(BpKinds, HistoryPredictorsBeatBimodalOnPatterns) {
  // The bimodal predictor cannot learn an alternating pattern; the
  // history-based ones can.
  auto accuracy = [](uarch::BranchPredictorKind kind) {
    uarch::BranchPredictor bp(bp_cfg(kind));
    int correct = 0, total = 0;
    bool taken = false;
    for (int i = 0; i < 4000; ++i) {
      taken = !taken;
      if (i > 500) {
        correct += bp.predict(0x3000) == taken;
        ++total;
      }
      bp.update(0x3000, taken);
    }
    return static_cast<double>(correct) / total;
  };
  EXPECT_GT(accuracy(uarch::BranchPredictorKind::kGshare), 0.95);
  EXPECT_GT(accuracy(uarch::BranchPredictorKind::kLocal), 0.95);
  EXPECT_LT(accuracy(uarch::BranchPredictorKind::kBimodal), 0.7);
}

TEST(BpKinds, DseWithoutRetrainingChangesAnnotations) {
  uarch::MachineConfig bimodal;
  bimodal.bp.kind = uarch::BranchPredictorKind::kBimodal;
  const auto bi = core::labeled_trace("deep", 30000, {}, 1, false);
  const auto bm = core::labeled_trace("deep", 30000, bimodal, 1, false);
  // The weaker predictor mispredicts more on the branchy benchmark.
  EXPECT_GT(core::trace_rates(bm).branch_mispredict_rate,
            core::trace_rates(bi).branch_mispredict_rate * 0.9);
}

// ------------------------------------------------------ extended metrics ---

TEST(TraceRates, MatchesHandCounts) {
  const auto tr = core::labeled_trace("xz", 20000, {}, 1, false);
  const auto r = core::trace_rates(tr);
  EXPECT_GT(r.branches, 1000u);
  EXPECT_GT(r.data_accesses, 4000u);
  EXPECT_GT(r.branch_mispredict_rate, 0.0);
  EXPECT_LT(r.branch_mispredict_rate, 0.6);
  EXPECT_GE(r.l1d_miss_rate, r.l2_miss_rate);  // miss levels are nested
  EXPECT_GT(r.memory_access_fraction, 0.2);
  EXPECT_LT(r.memory_access_fraction, 0.7);
}

TEST(TraceRates, PredictableBenchmarkHasLowMispredicts) {
  const auto lbm = core::labeled_trace("lbm", 30000, {}, 1, false);
  const auto deep = core::labeled_trace("deep", 30000, {}, 1, false);
  EXPECT_LT(core::trace_rates(lbm).branch_mispredict_rate,
            core::trace_rates(deep).branch_mispredict_rate);
}

TEST(MembwSeries, SumsToOverallBandwidth) {
  const auto tr = core::labeled_trace("mcf", 20000, {}, 1, false);
  std::vector<core::LatencyPrediction> perfect;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto t = tr.targets(i);
    perfect.push_back({t[0], t[1], t[2]});
  }
  const auto series = core::membw_series_from_predictions(tr, perfect, 5000);
  EXPECT_EQ(series.size(), 4u);
  for (double b : series) EXPECT_GE(b, 0.0);
}

// ------------------------------------------------------- error analysis ---

TEST(ErrorAnalysis, CleanOnSinglePartition) {
  const auto tr = core::labeled_trace("xz", 5000, {}, 1, false);
  core::AnalyticPredictor pred;
  core::ParallelSimOptions o;
  o.num_subtraces = 1;
  o.context_length = 16;
  const auto study = core::run_diff_study(pred, tr, o);
  EXPECT_EQ(study.report.total_prediction_diffs, 0u);
  EXPECT_EQ(study.report.total_context_diffs, 0u);
  EXPECT_DOUBLE_EQ(study.cpi_error_percent, 0.0);
}

TEST(ErrorAnalysis, DiffsConcentrateAtPartitionHeads) {
  const auto tr = core::labeled_trace("mcf", 20000, {}, 1, false);
  core::AnalyticPredictor pred;
  core::ParallelSimOptions o;
  o.num_subtraces = 4;
  o.context_length = 64;
  const auto study = core::run_diff_study(pred, tr, o);
  ASSERT_EQ(study.report.partitions.size(), 4u);
  // Partition 0 has no boundary: zero diffs.
  EXPECT_EQ(study.report.partitions[0].prediction_diff_count, 0u);
  // Later partitions show boundary damage and then converge: the error
  // extent is far smaller than the partition length.
  for (std::size_t p = 1; p < 4; ++p) {
    const auto& d = study.report.partitions[p];
    EXPECT_GT(d.prediction_diff_count, 0u) << p;
    EXPECT_LT(d.first_context_match, d.length) << p;
  }
  EXPECT_GT(study.report.perturbed_fraction(tr.size()), 0.0);
  EXPECT_LT(study.report.perturbed_fraction(tr.size()), 0.5);
}

TEST(ErrorAnalysis, WarmupShrinksDiffExtent) {
  const auto tr = core::labeled_trace("mcf", 20000, {}, 1, false);
  core::AnalyticPredictor pred;
  core::ParallelSimOptions bare;
  bare.num_subtraces = 8;
  bare.context_length = 64;
  core::ParallelSimOptions warm = bare;
  warm.warmup = 64;
  const auto s_bare = core::run_diff_study(pred, tr, bare);
  const auto s_warm = core::run_diff_study(pred, tr, warm);
  EXPECT_LT(s_warm.report.total_context_diffs, s_bare.report.total_context_diffs);
  EXPECT_LE(s_warm.report.total_abs_prediction_diff,
            s_bare.report.total_abs_prediction_diff);
}

TEST(ErrorAnalysis, RejectsMismatchedRuns) {
  const auto tr = core::labeled_trace("xz", 1000, {}, 1, false);
  core::AnalyticPredictor pred;
  core::ParallelSimOptions o;
  o.num_subtraces = 2;
  o.context_length = 8;
  o.record_predictions = true;
  o.record_context_counts = true;
  core::ParallelSimulator sim(pred, o);
  const auto a = sim.run(tr);
  core::ParallelSimResult empty;
  EXPECT_THROW(core::diff_parallel_runs(empty, a), CheckError);
}

// ------------------------------------------------------- suite scheduler ---

TEST(SuiteScheduler, LptBalancesLoad) {
  const std::vector<double> costs{10, 9, 8, 7, 6, 5, 4};
  const auto a = core::lpt_assignment(costs, 3);
  ASSERT_EQ(a.size(), costs.size());
  std::vector<double> load(3, 0.0);
  for (std::size_t j = 0; j < costs.size(); ++j) {
    ASSERT_LT(a[j], 3u);
    load[a[j]] += costs[j];
  }
  const double max_load = std::max({load[0], load[1], load[2]});
  const double total = 49;
  EXPECT_LE(max_load, total / 3 * 4.0 / 3.0 + 1e-9);  // LPT bound
}

TEST(SuiteScheduler, SingleDeviceGetsEverything) {
  const auto a = core::lpt_assignment({3, 1, 2}, 1);
  for (auto d : a) EXPECT_EQ(d, 0u);
  EXPECT_THROW(core::lpt_assignment({1.0}, 0), CheckError);
}

TEST(SuiteScheduler, RunSuiteReportsPerJobAndMakespan) {
  const auto a = core::labeled_trace("xz", 4000, {}, 1, false);
  const auto b = core::labeled_trace("mcf", 8000, {}, 1, false);
  const auto c = core::labeled_trace("spei", 2000, {}, 1, false);
  core::AnalyticPredictor pred;
  core::GpuSimOptions opts;
  opts.context_length = 16;
  const auto report = core::run_suite(
      pred, {{&a, "xz"}, {&b, "mcf"}, {&c, "spei"}}, 2, opts);
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_EQ(report.total_instructions(), 14000u);
  EXPECT_GT(report.makespan_us, 0.0);
  EXPECT_GT(report.mips(), 0.0);
  EXPECT_GT(report.utilization(), 0.4);
  EXPECT_LE(report.utilization(), 1.0);
  // The longest job (mcf) sits alone on one device under LPT.
  std::size_t mcf_dev = 99;
  for (const auto& j : report.jobs) {
    if (j.name == "mcf") mcf_dev = j.device;
  }
  for (const auto& j : report.jobs) {
    if (j.name != "mcf") EXPECT_NE(j.device, mcf_dev);
  }
}

TEST(SuiteScheduler, MoreDevicesNeverSlower) {
  std::vector<trace::EncodedTrace> traces;
  std::vector<core::SuiteJob> jobs;
  for (const std::string abbr : {"xz", "mcf", "perl", "lbm"}) {
    traces.push_back(core::labeled_trace(abbr, 3000, {}, 1, false));
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    jobs.push_back({&traces[i], std::to_string(i)});
  }
  core::AnalyticPredictor pred;
  core::GpuSimOptions opts;
  opts.context_length = 16;
  const double m1 = core::run_suite(pred, jobs, 1, opts).makespan_us;
  const double m2 = core::run_suite(pred, jobs, 2, opts).makespan_us;
  const double m4 = core::run_suite(pred, jobs, 4, opts).makespan_us;
  EXPECT_LE(m2, m1);
  EXPECT_LE(m4, m2);
}

}  // namespace
}  // namespace mlsim
