// Metric derivation tests (§VI-D/E): interval CPI, memory bandwidth,
// per-optype error.
#include <gtest/gtest.h>

#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/sequential_sim.h"
#include "core/simulator.h"

namespace mlsim::core {
namespace {

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

TEST(Metrics, CpiSeriesShapeAndMean) {
  std::vector<LatencyPrediction> preds(1000, LatencyPrediction{1, 2, 0});
  const auto series = cpi_series_from_predictions(preds, 100);
  ASSERT_EQ(series.size(), 10u);
  for (double c : series) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Metrics, CpiSeriesHandlesTail) {
  std::vector<LatencyPrediction> preds(250, LatencyPrediction{2, 0, 0});
  const auto series = cpi_series_from_predictions(preds, 100);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[2], 2.0);  // 50-instruction tail
  EXPECT_THROW(cpi_series_from_predictions(preds, 0), CheckError);
}

TEST(Metrics, TargetSeriesMatchesTraceCycles) {
  trace::EncodedTrace tr = make_trace("xz", 1000);
  const auto series = cpi_series_from_targets(tr, 100);
  ASSERT_EQ(series.size(), 10u);
  double sum = 0;
  for (double c : series) sum += c * 100;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(total_cycles_from_targets(tr)));
}

TEST(Metrics, GroundTruthCpiSeriesShowsPhases) {
  // Real traces have CPI variation across intervals.
  trace::EncodedTrace tr = make_trace("mcf", 20000);
  const auto series = cpi_series_from_targets(tr, 1000);
  double lo = 1e9, hi = 0;
  for (double c : series) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi, lo);
}

TEST(Metrics, MemoryBandwidthTracksWorkingSet) {
  // lbm (streaming, 64MB) touches memory far more than spei (64KB).
  trace::EncodedTrace lbm = make_trace("lbm", 20000);
  trace::EncodedTrace spei = make_trace("spei", 500000);
  EXPECT_GT(memory_bandwidth_from_targets(lbm),
            memory_bandwidth_from_targets(spei) * 2);
}

TEST(Metrics, PredictionBandwidthNearTruthForGoodPredictor) {
  trace::EncodedTrace tr = make_trace("mcf", 10000);
  AnalyticPredictor pred;
  SequentialSimOptions opts;
  opts.context_length = 32;
  opts.record_predictions = true;
  SequentialSimulator sim(pred, opts);
  const SimOutput out = sim.run(tr);
  const double predicted = memory_bandwidth_from_predictions(tr, out.predictions);
  const double truth = memory_bandwidth_from_targets(tr);
  ASSERT_GT(truth, 0.0);
  EXPECT_LT(std::abs(predicted - truth) / truth, 0.5);
}

TEST(Metrics, OptypeErrorSplitsClasses) {
  trace::EncodedTrace tr = make_trace("xz", 5000);
  // Perfect predictions -> zero error everywhere.
  std::vector<LatencyPrediction> perfect;
  perfect.reserve(tr.size());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto t = tr.targets(i);
    perfect.push_back({t[0], t[1], t[2]});
  }
  const OpTypeError zero = optype_error(tr, perfect);
  EXPECT_DOUBLE_EQ(zero.alu_percent, 0.0);
  EXPECT_DOUBLE_EQ(zero.memory_percent, 0.0);
  EXPECT_GT(zero.alu_count, 0u);
  EXPECT_GT(zero.memory_count, 0u);

  // Systematically biased memory predictions show up only in memory error.
  auto biased = perfect;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto f = tr.features(i);
    if (f[trace::Feat::kIsLoad] != 0 || f[trace::Feat::kIsStore] != 0) {
      biased[i].exec += 10;
    }
  }
  const OpTypeError b = optype_error(tr, biased);
  EXPECT_DOUBLE_EQ(b.alu_percent, 0.0);
  EXPECT_GT(b.memory_percent, 1.0);
}

TEST(Metrics, OptypeErrorValidatesInput) {
  trace::EncodedTrace tr = make_trace("xz", 100);
  std::vector<LatencyPrediction> wrong_size(50);
  EXPECT_THROW(optype_error(tr, wrong_size), CheckError);
}

TEST(Metrics, TotalCyclesConsistency) {
  std::vector<LatencyPrediction> preds{{1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
  EXPECT_EQ(total_cycles(preds), 6u);
}

}  // namespace
}  // namespace mlsim::core
