// Resilient-service tests (docs/SERVICE.md): cancellation primitives,
// the circuit-breaker state machine, admission control and backpressure,
// deadlines, manual cancellation, the hang watchdog (driven by the fault
// injector's straggler schedule — a flagged attempt really stalls the
// worker), breaker trip-and-recover with the degraded period visible in the
// obs metrics, health snapshots, and shutdown draining. The long chaos soak
// lives in soak_test.cpp (ctest label `soak`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "device/fault.h"
#include "obs/metric_names.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "service/circuit_breaker.h"
#include "service/request.h"
#include "service/service.h"
#include "trace/trace.h"
#include "uarch/ground_truth.h"

namespace mlsim::service {
namespace {

using namespace std::chrono_literals;

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

/// The fault-free reference the service's parallel requests must reproduce:
/// same options run_request() builds from a default-configured Request.
core::ParallelSimResult reference_run(core::LatencyPredictor& pred,
                                      const trace::EncodedTrace& tr) {
  core::ParallelSimOptions po;
  po.num_subtraces = 4;
  po.num_gpus = 1;
  po.context_length = 16;
  po.warmup = 16;
  po.post_error_correction = true;
  po.max_retries_per_partition = 8;
  core::ParallelSimulator sim(pred, po);
  return sim.run(tr);
}

Request parallel_request(const trace::EncodedTrace& tr) {
  Request rq;
  rq.trace = &tr;
  rq.engine = EngineKind::kParallel;
  return rq;
}

/// Primary predictor whose outputs are garbage until healed — what a
/// poisoned model or sick inference backend looks like to the anomaly
/// guard. Healthy mode delegates to the analytic model.
class PoisonedPredictor final : public core::LatencyPredictor {
 public:
  void heal() { healthy_.store(true, std::memory_order_relaxed); }

  core::LatencyPrediction predict(const core::WindowView& w,
                                  std::uint64_t gi) override {
    if (healthy_.load(std::memory_order_relaxed)) {
      return analytic_.predict(w, gi);
    }
    return {1u << 24, 1u << 24, 1u << 24};  // far above the anomaly limit
  }
  core::LatencyPrediction predict_lazy(const core::LazyWindow& w) override {
    if (healthy_.load(std::memory_order_relaxed)) {
      return analytic_.predict_lazy(w);
    }
    return {1u << 24, 1u << 24, 1u << 24};
  }
  std::size_t flops_per_window(std::size_t rows) const override {
    return analytic_.flops_per_window(rows);
  }

 private:
  std::atomic<bool> healthy_{false};
  core::AnalyticPredictor analytic_;
};

// ---------------------------------------------------------------------------
// Cancellation primitives
// ---------------------------------------------------------------------------

TEST(Cancellation, NullTokenIsInert) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.reason(), CancelReason::kNone);
  EXPECT_NO_THROW(t.check());
}

TEST(Cancellation, ManualCancelThrowsWithReason) {
  CancelSource src;
  const CancelToken t = src.token();
  EXPECT_NO_THROW(t.check());
  src.cancel(CancelReason::kManual);
  EXPECT_TRUE(t.cancelled());
  try {
    t.check();
    FAIL() << "check() should throw after cancel";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kManual);
  }
}

TEST(Cancellation, FirstCancellationWins) {
  CancelSource src;
  src.cancel(CancelReason::kHang);
  src.cancel(CancelReason::kManual);  // ignored
  EXPECT_EQ(src.reason(), CancelReason::kHang);
  EXPECT_EQ(src.token().reason(), CancelReason::kHang);
}

TEST(Cancellation, ExpiredDeadlineFiresOnFirstPoll) {
  CancelSource src;
  src.set_deadline_after(0ns);
  const CancelToken t = src.token();
  try {
    t.check();  // the very first poll evaluates the deadline
    FAIL() << "expired deadline should throw";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
  }
  // The expiry latched: reason is stable from here on.
  EXPECT_EQ(src.reason(), CancelReason::kDeadline);
}

TEST(Cancellation, CancelledLatchesExpiredDeadline) {
  CancelSource src;
  src.set_deadline_after(0ns);
  const CancelToken t = src.token();
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), CancelReason::kDeadline);
}

TEST(Cancellation, HeartbeatCountsPolls) {
  CancelSource src;
  const CancelToken t = src.token();
  EXPECT_EQ(src.heartbeat(), 0u);
  for (int i = 0; i < 10; ++i) t.check();
  EXPECT_EQ(src.heartbeat(), 10u);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

CircuitBreakerOptions breaker_opts(std::size_t threshold, std::size_t cooldown) {
  CircuitBreakerOptions o;
  o.failure_threshold = threshold;
  o.open_cooldown = cooldown;
  return o;
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker br(breaker_opts(3, 2));
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(br.allow_primary());
    br.record_failure();
    EXPECT_EQ(br.state(), BreakerState::kClosed);
  }
  EXPECT_TRUE(br.allow_primary());
  br.record_failure();
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.trips(), 1u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker br(breaker_opts(2, 2));
  br.record_failure();
  br.record_success();
  br.record_failure();
  EXPECT_EQ(br.state(), BreakerState::kClosed) << "streak should have reset";
}

TEST(CircuitBreaker, CooldownAdmitsOneProbe) {
  CircuitBreaker br(breaker_opts(1, 2));
  br.record_failure();
  ASSERT_EQ(br.state(), BreakerState::kOpen);
  // Two fallback-served requests burn the cooldown.
  EXPECT_FALSE(br.allow_primary());
  EXPECT_FALSE(br.allow_primary());
  // Next request is the half-open probe; a concurrent one is denied.
  EXPECT_TRUE(br.allow_primary());
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(br.allow_primary());
  EXPECT_EQ(br.probes(), 1u);
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker br(breaker_opts(1, 1));
  br.record_failure();
  EXPECT_FALSE(br.allow_primary());
  ASSERT_TRUE(br.allow_primary());
  br.record_success();
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ProbeFailureReopensWithFreshCooldown) {
  CircuitBreaker br(breaker_opts(1, 1));
  br.record_failure();
  EXPECT_FALSE(br.allow_primary());
  ASSERT_TRUE(br.allow_primary());
  br.record_failure();
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.trips(), 2u);
}

TEST(CircuitBreaker, NoVerdictReleasesTheProbeSlot) {
  CircuitBreaker br(breaker_opts(1, 1));
  br.record_failure();
  EXPECT_FALSE(br.allow_primary());
  ASSERT_TRUE(br.allow_primary());
  br.record_no_verdict();  // probe cancelled: no state change
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(br.allow_primary()) << "slot must be free for the next probe";
}

// ---------------------------------------------------------------------------
// Service: happy path
// ---------------------------------------------------------------------------

TEST(Service, CompletesRequestsOnEveryEngine) {
  const trace::EncodedTrace tr = make_trace("mcf", 3000);
  core::AnalyticPredictor primary, fallback;
  SimulationService svc(primary, fallback, {});

  Request par = parallel_request(tr);
  Request gpu = parallel_request(tr);
  gpu.engine = EngineKind::kGpu;
  Request seq = parallel_request(tr);
  seq.engine = EngineKind::kSequential;
  Request stream;
  stream.engine = EngineKind::kStreaming;
  stream.benchmark = "mcf";
  stream.stream_instructions = 4000;

  auto tp = svc.submit(std::move(par));
  auto tg = svc.submit(std::move(gpu));
  auto ts = svc.submit(std::move(seq));
  auto tt = svc.submit(std::move(stream));
  const Response rp = tp.future.get();
  const Response rg = tg.future.get();
  const Response rs = ts.future.get();
  const Response rt = tt.future.get();

  for (const Response* r : {&rp, &rg, &rs, &rt}) {
    EXPECT_EQ(r->status, ResponseStatus::kCompleted) << r->error;
    EXPECT_GT(r->total_cycles, 0u);
    EXPECT_GT(r->instructions, 0u);
    EXPECT_FALSE(r->degraded);
  }
  // The optimised single-device engine is functionally identical to the
  // sequential baseline.
  EXPECT_EQ(rg.total_cycles, rs.total_cycles);
  EXPECT_EQ(rt.instructions, 4000u);

  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.accepted, 4u);
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.rejected(), 0u);
}

TEST(Service, ParallelRequestMatchesDirectEngineRun) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  core::AnalyticPredictor primary, fallback;
  const auto want = reference_run(primary, tr);

  SimulationService svc(primary, fallback, {});
  auto t = svc.submit(parallel_request(tr));
  const Response r = t.future.get();
  ASSERT_EQ(r.status, ResponseStatus::kCompleted) << r.error;
  EXPECT_EQ(r.total_cycles, want.total_cycles);
  EXPECT_EQ(r.instructions, want.instructions);
  EXPECT_DOUBLE_EQ(r.cpi, want.cpi());
}

TEST(Service, InvalidRequestFailsTyped) {
  core::AnalyticPredictor primary, fallback;
  SimulationService svc(primary, fallback, {});
  Request rq;  // parallel engine but no trace
  auto t = svc.submit(std::move(rq));
  const Response r = t.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kFailed);
  EXPECT_NE(r.error.find("trace"), std::string::npos) << r.error;
}

// ---------------------------------------------------------------------------
// Admission control / backpressure
// ---------------------------------------------------------------------------

/// Occupy the (single) worker with an attempt the injector flags as a
/// straggler: with straggler_rate = 1 every attempt stalls, and the stall
/// is real wall-clock time with no heartbeats.
Request stalling_request(const trace::EncodedTrace& tr,
                         const device::FaultInjector& inj,
                         std::chrono::milliseconds stall) {
  Request rq = parallel_request(tr);
  rq.faults = &inj;
  rq.straggler_stall = stall;
  return rq;
}

device::FaultInjector always_straggles() {
  device::FaultOptions fo;
  fo.seed = 7;
  fo.straggler_rate = 1.0;
  return device::FaultInjector(fo);
}

ServiceOptions tiny_service(std::size_t workers, std::size_t queue) {
  ServiceOptions so;
  so.num_workers = workers;
  so.queue_capacity = queue;
  so.hang_timeout = 10s;  // watchdog must not interfere with stall tests
  return so;
}

TEST(Service, AdmissionControlRejectsTyped) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  ServiceOptions so = tiny_service(1, 4);
  so.shed_fraction = 0.5;  // low priority shed from 2 queued onward
  SimulationService svc(primary, fallback, so);

  // Occupy the worker, then bring the queue to the shed limit (2 of 4).
  auto blocker = svc.submit(stalling_request(tr, inj, 400ms));
  std::vector<SimulationService::Ticket> queued;
  while (svc.inflight() == 0) std::this_thread::sleep_for(1ms);
  for (int i = 0; i < 2; ++i) queued.push_back(svc.submit(parallel_request(tr)));

  // Low priority is shed well before the queue is full (2 >= shed limit 2);
  // normal priority is still admitted at this occupancy.
  Request low = parallel_request(tr);
  low.priority = Priority::kLow;
  auto shed = svc.submit(std::move(low));
  ASSERT_EQ(shed.future.wait_for(0s), std::future_status::ready);
  const Response sr = shed.future.get();
  EXPECT_EQ(sr.status, ResponseStatus::kRejectedShedding);

  // Fill the rest of the queue: typed QueueFull rejection for everyone.
  for (int i = 0; i < 2; ++i) queued.push_back(svc.submit(parallel_request(tr)));
  auto rejected = svc.submit(parallel_request(tr));
  ASSERT_EQ(rejected.future.wait_for(0s), std::future_status::ready);
  const Response rr = rejected.future.get();
  EXPECT_EQ(rr.status, ResponseStatus::kRejectedQueueFull);
  EXPECT_NE(rr.error.find("capacity"), std::string::npos);

  // Everything accepted completes once the stall clears.
  EXPECT_EQ(blocker.future.get().status, ResponseStatus::kCompleted);
  for (auto& t : queued) {
    EXPECT_EQ(t.future.get().status, ResponseStatus::kCompleted);
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.rejected_queue_full, 1u);
  EXPECT_EQ(st.rejected_shedding, 1u);
  EXPECT_EQ(st.accepted + st.rejected(), st.submitted);
}

TEST(Service, OverloadBoundsOutstandingRequests) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  ServiceOptions so = tiny_service(1, 8);
  so.max_outstanding = 3;  // 1 running + 2 queued
  SimulationService svc(primary, fallback, so);

  auto blocker = svc.submit(stalling_request(tr, inj, 400ms));
  while (svc.inflight() == 0) std::this_thread::sleep_for(1ms);
  auto a = svc.submit(parallel_request(tr));
  auto b = svc.submit(parallel_request(tr));
  auto over = svc.submit(parallel_request(tr));
  const Response r = over.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kRejectedOverload);

  EXPECT_EQ(blocker.future.get().status, ResponseStatus::kCompleted);
  EXPECT_EQ(a.future.get().status, ResponseStatus::kCompleted);
  EXPECT_EQ(b.future.get().status, ResponseStatus::kCompleted);
}

TEST(Service, HighPriorityDrainsBeforeLow) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  SimulationService svc(primary, fallback, tiny_service(1, 8));
  auto blocker = svc.submit(stalling_request(tr, inj, 300ms));
  while (svc.inflight() == 0) std::this_thread::sleep_for(1ms);

  // The low request also carries a long injected stall: once the worker
  // picks it up it stays visibly unresolved, so the ordering probe below
  // has a wide window instead of racing a fast simulation.
  Request low = stalling_request(tr, inj, 800ms);
  low.priority = Priority::kLow;
  auto tl = svc.submit(std::move(low));  // submitted first...
  Request high = parallel_request(tr);
  high.priority = Priority::kHigh;
  auto th = svc.submit(std::move(high));  // ...but high runs first

  th.future.wait();
  EXPECT_NE(tl.future.wait_for(0s), std::future_status::ready)
      << "low-priority request finished before the high-priority one";
  EXPECT_EQ(tl.future.get().status, ResponseStatus::kCompleted);
  (void)blocker.future.get();
}

TEST(Service, TenantQuotaRejectsTyped) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  ServiceOptions so = tiny_service(1, 8);
  so.tenant_quota = 2;  // per-tenant outstanding (queued + running) bound
  SimulationService svc(primary, fallback, so);

  auto tenant_request = [&](const std::string& tenant) {
    Request rq = stalling_request(tr, inj, 200ms);
    rq.tenant = tenant;
    return rq;
  };
  // Tenant a saturates its quota: one running, one queued.
  auto a1 = svc.submit(tenant_request("a"));
  while (svc.inflight() == 0) std::this_thread::sleep_for(1ms);
  auto a2 = svc.submit(tenant_request("a"));
  auto a3 = svc.submit(tenant_request("a"));
  ASSERT_EQ(a3.future.wait_for(0s), std::future_status::ready);
  const Response r = a3.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kRejectedQuota);
  EXPECT_NE(r.error.find("quota"), std::string::npos) << r.error;

  // Other tenants (including the anonymous one) are still admitted: the
  // queue has room, only tenant a is at its bound.
  auto b1 = svc.submit(tenant_request("b"));
  auto anon = svc.submit(stalling_request(tr, inj, 200ms));
  EXPECT_NE(b1.future.wait_for(0s), std::future_status::ready);

  EXPECT_EQ(a1.future.get().status, ResponseStatus::kCompleted);
  EXPECT_EQ(a2.future.get().status, ResponseStatus::kCompleted);
  EXPECT_EQ(b1.future.get().status, ResponseStatus::kCompleted);
  EXPECT_EQ(anon.future.get().status, ResponseStatus::kCompleted);
  const auto st = svc.stats();
  EXPECT_EQ(st.rejected_quota, 1u);
  EXPECT_EQ(st.accepted + st.rejected(), st.submitted);
}

TEST(Service, FairShareDrainInterleavesTenants) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  // Two workers, but one is pinned for the whole scenario by tenant a's
  // long-stall blocker, so exactly one slot cycles and the pop order is
  // directly observable through completion order.
  const auto tenant_stall = [&](const std::string& tenant,
                                std::chrono::milliseconds stall) {
    Request rq = stalling_request(tr, inj, stall);
    rq.tenant = tenant;
    return rq;
  };

  // Phase 1 — quota set: when the cycling slot frees, tenant a still has a
  // request running (the blocker), tenant b has none, so the fair-share pop
  // serves b's request before a's earlier-queued third request.
  {
    ServiceOptions so = tiny_service(2, 8);
    so.tenant_quota = 8;  // high enough that nothing is rejected
    SimulationService svc(primary, fallback, so);

    auto blocker = svc.submit(tenant_stall("a", 1000ms));
    auto filler = svc.submit(tenant_stall("a", 250ms));
    while (svc.inflight() < 2) std::this_thread::sleep_for(1ms);
    auto a3 = svc.submit(tenant_stall("a", 250ms));  // queued first...
    Request rb = parallel_request(tr);
    rb.tenant = "b";
    auto b1 = svc.submit(std::move(rb));  // ...but b has nothing running

    b1.future.wait();
    EXPECT_NE(a3.future.wait_for(0s), std::future_status::ready)
        << "tenant a's backlog drained before tenant b's first request";
    EXPECT_EQ(a3.future.get().status, ResponseStatus::kCompleted);
    (void)blocker.future.get();
    (void)filler.future.get();
  }

  // Phase 2 — the counterfactual: with tenant_quota disabled the queue is
  // pure FIFO, so a's third request (submitted first) runs before b's.
  {
    SimulationService svc(primary, fallback, tiny_service(2, 8));
    auto blocker = svc.submit(tenant_stall("a", 1000ms));
    auto filler = svc.submit(tenant_stall("a", 250ms));
    while (svc.inflight() < 2) std::this_thread::sleep_for(1ms);
    auto a3 = svc.submit(tenant_stall("a", 250ms));
    auto b1 = svc.submit(tenant_stall("b", 250ms));

    a3.future.wait();
    EXPECT_NE(b1.future.wait_for(0s), std::future_status::ready)
        << "FIFO order was not preserved with tenant_quota disabled";
    EXPECT_EQ(b1.future.get().status, ResponseStatus::kCompleted);
    (void)blocker.future.get();
    (void)filler.future.get();
  }
}

// ---------------------------------------------------------------------------
// Deadlines and manual cancellation
// ---------------------------------------------------------------------------

TEST(Service, DeadlineExpiredInQueueFailsWithoutSimulating) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  SimulationService svc(primary, fallback, tiny_service(1, 8));
  auto blocker = svc.submit(stalling_request(tr, inj, 300ms));
  while (svc.inflight() == 0) std::this_thread::sleep_for(1ms);

  Request rq = parallel_request(tr);
  rq.deadline = 1ms;  // expires long before the 300 ms stall clears
  auto t = svc.submit(std::move(rq));
  const Response r = t.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kDeadlineExceeded);
  EXPECT_NE(r.error.find("before a worker"), std::string::npos) << r.error;
  (void)blocker.future.get();
  EXPECT_EQ(svc.stats().deadline_exceeded, 1u);
}

TEST(Service, DeadlineFiresMidRun) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  SimulationService svc(primary, fallback, tiny_service(1, 8));
  // Picked up immediately (deadline still live), then the injected stall
  // burns past it; the first token poll after the stall fires the deadline.
  Request rq = stalling_request(tr, inj, 150ms);
  rq.deadline = 30ms;
  auto t = svc.submit(std::move(rq));
  const Response r = t.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kDeadlineExceeded);
}

TEST(Service, CancelQueuedAndRunningRequests) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();

  SimulationService svc(primary, fallback, tiny_service(1, 8));
  auto running = svc.submit(stalling_request(tr, inj, 10s));
  while (svc.inflight() == 0) std::this_thread::sleep_for(1ms);
  auto waiting = svc.submit(parallel_request(tr));

  // Queued: resolves immediately.
  EXPECT_TRUE(svc.cancel(waiting.id));
  ASSERT_EQ(waiting.future.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(waiting.future.get().status, ResponseStatus::kCancelled);

  // Running: the stall loop observes the cancellation and aborts the 10 s
  // stall; shutdown would otherwise take the full stall.
  EXPECT_TRUE(svc.cancel(running.id));
  const Response r = running.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kCancelled);

  EXPECT_FALSE(svc.cancel(99999)) << "unknown id must not report success";
  EXPECT_FALSE(svc.cancel(waiting.id)) << "already-resolved id";
}

// ---------------------------------------------------------------------------
// Hang watchdog
// ---------------------------------------------------------------------------

/// Find an injector seed whose straggler schedule hangs the request's first
/// attempt but not its retry (ids start at 1 in a fresh service).
device::FaultInjector hang_once_injector(std::uint64_t request_id) {
  device::FaultOptions fo;
  fo.straggler_rate = 0.5;
  for (fo.seed = 1; fo.seed < 10000; ++fo.seed) {
    const device::FaultInjector inj(fo);
    if (inj.straggler_factor(request_id, 0) > 1.0 &&
        inj.straggler_factor(request_id, 1) <= 1.0) {
      return inj;
    }
  }
  throw CheckError("no hang-once seed found");
}

TEST(Service, WatchdogRequeuesHungRequestBitIdentically) {
  const trace::EncodedTrace tr = make_trace("mcf", 6000);
  core::AnalyticPredictor primary, fallback;
  const auto want = reference_run(primary, tr);
  const device::FaultInjector inj = hang_once_injector(1);

  ServiceOptions so;
  so.num_workers = 1;
  so.queue_capacity = 4;
  so.hang_timeout = 60ms;
  so.watchdog_interval = 10ms;
  so.max_hang_requeues = 1;
  SimulationService svc(primary, fallback, so);

  // Attempt 0 stalls for 500 ms without heartbeats; the watchdog declares
  // the worker hung at ~60 ms and requeues. Attempt 1 does not straggle and
  // completes with exactly the fault-free result.
  auto t = svc.submit(stalling_request(tr, inj, 500ms));
  const Response r = t.future.get();
  ASSERT_EQ(r.status, ResponseStatus::kCompleted) << r.error;
  EXPECT_EQ(r.hang_requeues, 1u);
  EXPECT_EQ(r.total_cycles, want.total_cycles);

  const auto st = svc.stats();
  EXPECT_GE(st.hangs_detected, 1u);
  EXPECT_EQ(st.hang_requeues, 1u);
  EXPECT_EQ(st.hung, 0u);
}

TEST(Service, HangBudgetExhaustionFailsTyped) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  const device::FaultInjector inj = always_straggles();  // every attempt hangs

  ServiceOptions so;
  so.num_workers = 1;
  so.queue_capacity = 4;
  so.hang_timeout = 60ms;
  so.watchdog_interval = 10ms;
  so.max_hang_requeues = 0;
  SimulationService svc(primary, fallback, so);

  auto t = svc.submit(stalling_request(tr, inj, 500ms));
  const Response r = t.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kWorkerHung);
  EXPECT_NE(r.error.find("requeue budget"), std::string::npos) << r.error;
  EXPECT_EQ(svc.stats().hung, 1u);
}

// ---------------------------------------------------------------------------
// Circuit breaker wired through the service
// ---------------------------------------------------------------------------

TEST(Service, BreakerTripsDegradesAndRecovers) {
  const trace::EncodedTrace tr = make_trace("mcf", 3000);
  PoisonedPredictor primary;  // garbage until healed
  core::AnalyticPredictor fallback;
  const auto want = reference_run(fallback, tr);

  obs::set_enabled(true);
  std::uint64_t trips_before = 0;
  if (obs::kCompiledIn) {
    trips_before =
        obs::default_registry().counter(obs::names::kSvcBreakerTrips).value();
  }

  ServiceOptions so;
  so.num_workers = 1;  // serialize: breaker verdicts arrive in order
  so.breaker.failure_threshold = 2;
  so.breaker.open_cooldown = 2;
  SimulationService svc(primary, fallback, so);

  const auto run_one = [&] {
    auto t = svc.submit(parallel_request(tr));
    const Response r = t.future.get();
    EXPECT_EQ(r.status, ResponseStatus::kCompleted) << r.error;
    // Degraded or not, the analytic fallback reproduces the reference.
    EXPECT_EQ(r.total_cycles, want.total_cycles);
    return r;
  };

  // Two poisoned runs degrade via the anomaly guard and trip the breaker.
  EXPECT_TRUE(run_one().degraded);
  EXPECT_TRUE(run_one().degraded);
  EXPECT_EQ(svc.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(svc.breaker_trips(), 1u);

  // Open: requests are served by the fallback without touching the primary
  // (degraded responses, no further anomaly retries). Two burn the cooldown.
  EXPECT_TRUE(run_one().degraded);
  EXPECT_TRUE(run_one().degraded);

  // Half-open probe hits the still-poisoned primary and reopens.
  EXPECT_TRUE(run_one().degraded);
  EXPECT_EQ(svc.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(svc.breaker_trips(), 2u);

  // Heal, burn the fresh cooldown, and let the probe close the breaker.
  primary.heal();
  EXPECT_TRUE(run_one().degraded);
  EXPECT_TRUE(run_one().degraded);
  EXPECT_FALSE(run_one().degraded) << "successful probe should use primary";
  EXPECT_EQ(svc.breaker_state(), BreakerState::kClosed);

  // Fully recovered: primary serves cleanly.
  EXPECT_FALSE(run_one().degraded);

  const auto st = svc.stats();
  EXPECT_EQ(st.completed, 9u);
  EXPECT_EQ(st.degraded, 7u) << "the degraded period must be visible";
  if (obs::kCompiledIn) {
    EXPECT_EQ(obs::default_registry()
                  .counter(obs::names::kSvcBreakerTrips)
                  .value() -
                  trips_before,
              2u);
  }
}

// ---------------------------------------------------------------------------
// Health and shutdown
// ---------------------------------------------------------------------------

TEST(Service, HealthSnapshotReflectsState) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  SimulationService svc(primary, fallback, {});

  std::string h = svc.health_json();
  EXPECT_NE(h.find("\"status\":\"ok\""), std::string::npos) << h;
  EXPECT_NE(h.find("\"queue_capacity\":8"), std::string::npos) << h;
  EXPECT_NE(h.find("\"breaker\":\"closed\""), std::string::npos) << h;

  auto t = svc.submit(parallel_request(tr));
  (void)t.future.get();
  h = svc.health_json();
  EXPECT_NE(h.find("\"completed\":1"), std::string::npos) << h;

  svc.shutdown();
  h = svc.health_json();
  EXPECT_NE(h.find("\"status\":\"stopping\""), std::string::npos) << h;
}

TEST(Service, ShutdownDrainsAcceptedWorkAndRefusesNew) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  ServiceOptions so;
  so.num_workers = 2;
  so.queue_capacity = 16;
  SimulationService svc(primary, fallback, so);

  std::vector<SimulationService::Ticket> tickets;
  for (int i = 0; i < 6; ++i) tickets.push_back(svc.submit(parallel_request(tr)));
  svc.shutdown();  // drains: every accepted request completes
  for (auto& t : tickets) {
    ASSERT_EQ(t.future.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(t.future.get().status, ResponseStatus::kCompleted);
  }

  auto late = svc.submit(parallel_request(tr));
  ASSERT_EQ(late.future.wait_for(0s), std::future_status::ready);
  const Response r = late.future.get();
  EXPECT_EQ(r.status, ResponseStatus::kCancelled);
  EXPECT_NE(r.error.find("shutting down"), std::string::npos);
}

}  // namespace
}  // namespace mlsim::service
