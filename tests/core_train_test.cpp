// Training pipeline tests: window dataset construction, feature scales,
// CNN training convergence on real traces, and the Ithemal baseline.
#include <gtest/gtest.h>

#include "core/ithemal.h"
#include "tensor/quant.h"
#include "core/simnet_trainer.h"
#include "core/simulator.h"

namespace mlsim::core {
namespace {

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n,
                               std::uint64_t seed = 1) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, seed);
}

// --------------------------------------------------------- window dataset --

TEST(WindowDataset, FirstWindowUnpadded) {
  trace::EncodedTrace tr = make_trace("xz", 500);
  WindowDataset ds(tr, 9);
  std::vector<std::int32_t> w;
  ds.window(0, w);
  ASSERT_EQ(w.size(), 9 * trace::kNumFeatures);
  // Instruction 0 has no context: rows 1.. must be zero.
  for (std::size_t i = trace::kNumFeatures; i < w.size(); ++i) EXPECT_EQ(w[i], 0);
}

TEST(WindowDataset, ContextMembershipFollowsGroundTruthRetires) {
  trace::EncodedTrace tr = make_trace("mcf", 2000);
  WindowDataset ds(tr, 17);
  std::vector<std::int32_t> w;
  std::size_t windows_with_context = 0;
  for (std::size_t i = 100; i < 200; ++i) {
    ds.window(i, w);
    bool has_ctx = false;
    for (std::size_t r = 1; r < 17; ++r) {
      if (w[r * trace::kNumFeatures + kCtxLatFeature] > 0) has_ctx = true;
    }
    windows_with_context += has_ctx;
  }
  // Out-of-order execution keeps multiple instructions in flight nearly
  // always on a memory-bound benchmark.
  EXPECT_GT(windows_with_context, 50u);
}

TEST(WindowDataset, RequiresLabels) {
  trace::EncodedTrace tr("x");
  tr.append(trace::FeatureVector{});
  EXPECT_THROW(WindowDataset(tr, 9), CheckError);
}

// ----------------------------------------------------------- feature scales --

TEST(FeatureScales, InverseOfMaxAndLatencySlot) {
  trace::EncodedTrace tr = make_trace("xz", 1000);
  const auto scales = compute_feature_scales({&tr});
  ASSERT_EQ(scales.size(), trace::kNumFeatures);
  for (float s : scales) {
    EXPECT_GT(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
  EXPECT_FLOAT_EQ(scales[kCtxLatFeature], 1.0f / kMaxLatencyEntry);
}

// --------------------------------------------------------------- training --

TEST(TrainSimNet, LossDecreasesAndGeneralizes) {
  // Small but real training run: two training benchmarks, tiny model.
  trace::EncodedTrace perl = make_trace("perl", 4000);
  trace::EncodedTrace gcc = make_trace("gcc", 4000);

  SimNetTrainConfig cfg;
  cfg.model.window = 17;
  cfg.model.channels = 8;
  cfg.model.hidden = 16;
  cfg.epochs = 2;
  cfg.batch_size = 32;

  SimNetTrainReport report;
  SimNetBundle bundle = train_simnet({&perl, &gcc}, cfg, &report);
  EXPECT_GT(report.samples, 1000u);
  EXPECT_GT(report.final_loss, 0.0f);
  EXPECT_LT(report.final_loss, 1.5f);  // log1p-space MSE after training
  // Holdout per-instruction fetch error should be far better than chance.
  EXPECT_LT(report.holdout_mape_fetch, 120.0);

  // The predictor built from the bundle runs end to end on an unseen
  // benchmark with bounded CPI error.
  CnnPredictor pred(std::move(bundle));
  trace::EncodedTrace test = make_trace("xz", 3000);
  const SimNetEvalReport eval = evaluate_simnet(pred, test, 2000);
  EXPECT_GT(eval.predicted_cpi, 0.0);
  EXPECT_LT(eval.cpi_error_percent, 100.0);
}

TEST(TrainSimNet, DeterministicGivenSeed) {
  trace::EncodedTrace perl = make_trace("perl", 1500);
  SimNetTrainConfig cfg;
  cfg.model.window = 9;
  cfg.model.channels = 4;
  cfg.model.hidden = 8;
  cfg.epochs = 1;
  SimNetTrainReport r1, r2;
  train_simnet({&perl}, cfg, &r1);
  train_simnet({&perl}, cfg, &r2);
  EXPECT_EQ(r1.final_loss, r2.final_loss);
}

TEST(Finetune2to4, KeepsStructureAndRecoversAccuracy) {
  trace::EncodedTrace perl = make_trace("perl", 3000);
  SimNetTrainConfig cfg;
  cfg.model.window = 17;
  cfg.model.channels = 8;
  cfg.model.hidden = 16;
  cfg.epochs = 2;
  SimNetBundle bundle = train_simnet({&perl}, cfg);

  const float dense_loss = evaluate_loss(bundle, perl);

  // Raw pruning without fine-tuning damages the training objective.
  SimNetBundle pruned_raw = train_simnet({&perl}, cfg);
  tensor::prune_model_2to4(pruned_raw.model);
  const float pruned_loss = evaluate_loss(pruned_raw, perl);
  EXPECT_GT(pruned_loss, dense_loss);

  // Projected fine-tuning recovers most of that damage while keeping the
  // 2:4 structure.
  finetune_2to4(bundle, {&perl}, /*epochs=*/1);
  EXPECT_TRUE(tensor::satisfies_2to4(bundle.model.conv1().weight()));
  EXPECT_TRUE(tensor::satisfies_2to4(bundle.model.fc1().weight()));
  const float finetuned_loss = evaluate_loss(bundle, perl);
  EXPECT_LT(finetuned_loss, pruned_loss);
}

// ---------------------------------------------------------------- ithemal --

TEST(Ithemal, BasicBlockExtractionCoversTrace) {
  trace::EncodedTrace tr = make_trace("perl", 3000);
  const auto blocks = extract_basic_blocks(tr, 16);
  ASSERT_FALSE(blocks.empty());
  std::size_t covered = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    covered += blocks[i].length;
    EXPECT_LE(blocks[i].length, 16u);
    EXPECT_GT(blocks[i].length, 0u);
    if (i > 0) {
      EXPECT_EQ(blocks[i].begin, blocks[i - 1].begin + blocks[i - 1].length);
    }
  }
  EXPECT_EQ(covered, tr.size());
}

TEST(Ithemal, BlockCyclesMatchTargets) {
  trace::EncodedTrace tr = make_trace("perl", 500);
  const auto blocks = extract_basic_blocks(tr, 16);
  std::uint64_t block_cycles = 0, target_cycles = 0;
  for (const auto& b : blocks) block_cycles += b.cycles;
  for (std::size_t i = 0; i < tr.size(); ++i) target_cycles += tr.targets(i)[0];
  EXPECT_EQ(block_cycles, target_cycles);
}

TEST(Ithemal, TrainingLearnsBlockThroughput) {
  trace::EncodedTrace perl = make_trace("perl", 4000);
  IthemalConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  std::vector<float> scales;
  IthemalTrainReport report;
  IthemalModel model = train_ithemal({&perl}, cfg, &scales, &report);
  EXPECT_GT(report.blocks, 100u);
  // Block-cycle MAPE far better than a trivially wrong predictor.
  EXPECT_LT(report.mape_percent, 230.0);

  // Predictions are positive and respond to block length.
  const auto blocks = extract_basic_blocks(perl, 16);
  const auto preds = model.predict(perl, {blocks[0], blocks[1]}, scales);
  ASSERT_EQ(preds.size(), 2u);
  for (double p : preds) EXPECT_GE(p, 0.0);
}

TEST(Ithemal, ThroughputModelShowsOptimizationGain) {
  IthemalConfig cfg;
  IthemalModel model(cfg, 1);
  const auto thr = model_ithemal_throughput(model, device::GpuSpec::a100(),
                                            /*avg_block_len=*/8,
                                            /*batch_blocks=*/1024);
  EXPECT_GT(thr.sequential_us_per_inst, thr.optimized_us_per_inst * 10);
}

TEST(Ithemal, FlopsGrowWithBlockLength) {
  IthemalConfig cfg;
  IthemalModel model(cfg, 1);
  EXPECT_GT(model.flops_per_block(16), model.flops_per_block(4));
}

}  // namespace
}  // namespace mlsim::core
