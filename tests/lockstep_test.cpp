// Lockstep batched parallel simulator: bit-exact equivalence with the
// sub-trace-at-a-time ParallelSimulator across recovery configurations and
// predictors, plus batching behaviour.
#include <gtest/gtest.h>

#include "core/analytic_predictor.h"
#include "core/cnn_predictor.h"
#include "core/lockstep_sim.h"
#include "core/simulator.h"

namespace mlsim::core {
namespace {

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

void expect_identical(const ParallelSimResult& a, const ParallelSimResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.corrected_instructions, b.corrected_instructions);
  EXPECT_EQ(a.warmup_instructions, b.warmup_instructions);
  ASSERT_EQ(a.boundaries, b.boundaries);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i], b.predictions[i]) << "prediction " << i;
  }
  ASSERT_EQ(a.context_counts, b.context_counts);
}

struct Config {
  std::size_t parts;
  std::size_t gpus;
  std::size_t warmup;
  bool correction;
};

class LockstepEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(LockstepEquivalence, MatchesParallelSimulatorExactly) {
  const Config c = GetParam();
  trace::EncodedTrace tr = make_trace("mcf", 8000);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = c.parts;
  o.num_gpus = c.gpus;
  o.context_length = 32;
  o.warmup = c.warmup;
  o.post_error_correction = c.correction;
  o.record_predictions = true;
  o.record_context_counts = true;

  const auto seq = ParallelSimulator(pred, o).run(tr);
  LockstepParallelSimulator lockstep(pred, o);
  const auto par = lockstep.run(tr);
  expect_identical(seq, par);
  EXPECT_GT(lockstep.peak_batch(), 0u);
  EXPECT_LE(lockstep.peak_batch(), c.parts);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LockstepEquivalence,
    ::testing::Values(Config{1, 1, 0, false}, Config{4, 1, 0, false},
                      Config{4, 1, 32, false}, Config{4, 1, 32, true},
                      Config{16, 4, 32, true}, Config{64, 8, 32, true},
                      Config{7, 3, 16, true}));

TEST(Lockstep, PeakBatchEqualsPartitionsWhenBalanced) {
  trace::EncodedTrace tr = make_trace("xz", 4000);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = 8;
  o.context_length = 16;
  LockstepParallelSimulator sim(pred, o);
  sim.run(tr);
  EXPECT_EQ(sim.peak_batch(), 8u);
}

TEST(Lockstep, OracleZeroErrorUnderLockstep) {
  trace::EncodedTrace tr = make_trace("xz", 4000);
  OraclePredictor oracle(tr);
  ParallelSimOptions seq_o;
  seq_o.num_subtraces = 1;
  seq_o.context_length = 16;
  const double ref = ParallelSimulator(oracle, seq_o).run(tr).cpi();
  ParallelSimOptions o = seq_o;
  o.num_subtraces = 32;
  LockstepParallelSimulator sim(oracle, o);
  EXPECT_DOUBLE_EQ(sim.run(tr).cpi(), ref);
}

TEST(Lockstep, CnnBatchPathMatchesScalarPath) {
  // The lockstep engine drives CnnPredictor::predict_batch; results must
  // match the scalar-prediction ParallelSimulator exactly.
  trace::EncodedTrace tr = make_trace("xz", 600);
  tensor::SimNetModelConfig mcfg;
  mcfg.in_features = trace::kNumFeatures;
  mcfg.window = 17;
  mcfg.channels = 4;
  mcfg.hidden = 8;
  tensor::SimNetModel model(mcfg, 5);
  SimNetBundle b1{std::move(model), std::vector<float>(trace::kNumFeatures, 0.05f)};
  CnnPredictor cnn(std::move(b1));

  ParallelSimOptions o;
  o.num_subtraces = 6;
  o.context_length = 16;
  o.warmup = 16;
  o.record_predictions = true;
  o.record_context_counts = true;

  const auto a = ParallelSimulator(cnn, o).run(tr);
  const auto b = LockstepParallelSimulator(cnn, o).run(tr);
  expect_identical(a, b);
}

TEST(Lockstep, TimeModelAgreesWithParallelSimulator) {
  trace::EncodedTrace tr = make_trace("xz", 20000);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = 64;
  o.num_gpus = 4;
  o.context_length = 32;
  o.warmup = 32;
  o.assumed_flops_per_window = 1'000'000;
  const double t1 = ParallelSimulator(pred, o).run(tr).sim_time_us;
  const double t2 = LockstepParallelSimulator(pred, o).run(tr).sim_time_us;
  // Same model, same inputs — only occupancy sampling order can differ.
  EXPECT_NEAR(t1, t2, t1 * 0.01);
}

TEST(Lockstep, EmptyTrace) {
  trace::EncodedTrace tr("empty");
  AnalyticPredictor pred;
  ParallelSimOptions o;
  LockstepParallelSimulator sim(pred, o);
  const auto res = sim.run(tr);
  EXPECT_EQ(res.instructions, 0u);
  EXPECT_EQ(res.total_cycles, 0u);
}

}  // namespace
}  // namespace mlsim::core
