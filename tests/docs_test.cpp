// Documentation link lint (tier-1): every relative Markdown link in the
// repo's docs must resolve — file targets must exist on disk, anchor targets
// must match a heading in the destination file. Dangling links are the
// first thing to rot when code moves; failing the suite keeps the doc map
// (docs/ARCHITECTURE.md) trustworthy.
//
// Scope: *.md at the repo root and under docs/. External links (http/https/
// mailto) are out of scope, as is anything inside fenced code blocks.
// Anchors are checked with GitHub's heading-slug rules: lowercase, spaces to
// hyphens, punctuation dropped, duplicate slugs suffixed -1, -2, ...
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

#ifndef MLSIM_SOURCE_DIR
#error "MLSIM_SOURCE_DIR must be defined by the build"
#endif

std::vector<fs::path> doc_files() {
  const fs::path root(MLSIM_SOURCE_DIR);
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(root)) {
    if (e.is_regular_file() && e.path().extension() == ".md") {
      files.push_back(e.path());
    }
  }
  const fs::path docs = root / "docs";
  if (fs::is_directory(docs)) {
    for (const auto& e : fs::directory_iterator(docs)) {
      if (e.is_regular_file() && e.path().extension() == ".md") {
        files.push_back(e.path());
      }
    }
  }
  return files;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Strip fenced code blocks (``` ... ```); links inside them are not links.
/// Keeps line structure so headings stay detectable.
std::string strip_fences(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  bool in_fence = false;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 3, "```") == 0) {
      in_fence = !in_fence;
      out << '\n';
      continue;
    }
    out << (in_fence ? "" : line) << '\n';
  }
  return out.str();
}

/// GitHub-style slug of a heading: lowercase, strip `*_` formatting and
/// punctuation (keeping alphanumerics, hyphens, spaces), spaces to hyphens.
std::string slugify(std::string heading) {
  std::string slug;
  for (const char c : heading) {
    const auto lc = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
    if (std::isalnum(static_cast<unsigned char>(lc)) || lc == '-' ||
        lc == '_') {
      slug.push_back(lc);
    } else if (lc == ' ') {
      slug.push_back('-');
    }
    // every other character is dropped
  }
  return slug;
}

/// All anchor slugs defined by a file's headings (with GitHub's -1, -2
/// suffixes for duplicates).
std::set<std::string> anchors_of(const std::string& text) {
  std::set<std::string> anchors;
  std::map<std::string, int> seen;
  std::istringstream in(strip_fences(text));
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hashes = 0;
    while (hashes < line.size() && line[hashes] == '#') ++hashes;
    if (hashes == 0 || hashes > 6 || hashes >= line.size() ||
        line[hashes] != ' ') {
      continue;
    }
    std::string heading = line.substr(hashes + 1);
    // Inline code/emphasis markers don't contribute to the slug.
    std::string cleaned;
    for (const char c : heading) {
      if (c != '`' && c != '*') cleaned.push_back(c);
    }
    const std::string base = slugify(cleaned);
    const int n = seen[base]++;
    anchors.insert(n == 0 ? base : base + "-" + std::to_string(n));
  }
  return anchors;
}

struct Link {
  std::string target;  // raw (path, path#anchor, or #anchor)
  std::size_t line = 0;
};

/// Extract `](target)` links outside fenced code blocks.
std::vector<Link> links_of(const std::string& text) {
  std::vector<Link> links;
  std::istringstream in(strip_fences(text));
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t pos = 0;
    while ((pos = line.find("](", pos)) != std::string::npos) {
      const std::size_t start = pos + 2;
      const std::size_t end = line.find(')', start);
      if (end == std::string::npos) break;
      std::string target = line.substr(start, end - start);
      // Trim an optional title: [x](file.md "title")
      if (const auto sp = target.find(' '); sp != std::string::npos) {
        target = target.substr(0, sp);
      }
      if (!target.empty()) links.push_back({target, lineno});
      pos = end + 1;
    }
  }
  return links;
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

TEST(DocsLint, EveryRelativeLinkAndAnchorResolves) {
  const auto files = doc_files();
  ASSERT_FALSE(files.empty()) << "no Markdown files found under "
                              << MLSIM_SOURCE_DIR;

  std::vector<std::string> errors;
  for (const fs::path& file : files) {
    const std::string text = read_file(file);
    for (const Link& link : links_of(text)) {
      if (is_external(link.target)) continue;

      const std::size_t hash = link.target.find('#');
      const std::string path_part =
          hash == std::string::npos ? link.target : link.target.substr(0, hash);
      const std::string anchor =
          hash == std::string::npos ? "" : link.target.substr(hash + 1);

      fs::path dest = file;  // #anchor-only links point at this file
      if (!path_part.empty()) {
        dest = file.parent_path() / path_part;
        if (!fs::exists(dest)) {
          errors.push_back(file.filename().string() + ":" +
                           std::to_string(link.line) + ": dangling link " +
                           link.target);
          continue;
        }
      }
      if (!anchor.empty()) {
        if (!fs::is_regular_file(dest) || dest.extension() != ".md") {
          errors.push_back(file.filename().string() + ":" +
                           std::to_string(link.line) +
                           ": anchor into a non-Markdown target " +
                           link.target);
          continue;
        }
        const auto anchors = anchors_of(read_file(dest));
        if (anchors.count(anchor) == 0) {
          errors.push_back(file.filename().string() + ":" +
                           std::to_string(link.line) + ": dangling anchor " +
                           link.target);
        }
      }
    }
  }

  for (const std::string& e : errors) ADD_FAILURE() << e;
}

// The slugger itself, pinned so anchor checks stay honest.
TEST(DocsLint, SluggerMatchesGitHubRules) {
  EXPECT_EQ(slugify("Which doc to read"), "which-doc-to-read");
  EXPECT_EQ(slugify("max_batch / max_wait_us"), "max_batch--max_wait_us");
  EXPECT_EQ(slugify("Bit-identity"), "bit-identity");
  EXPECT_EQ(slugify("Exit codes (CLI)"), "exit-codes-cli");
}

}  // namespace
