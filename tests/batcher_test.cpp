// Cross-request continuous-batching scheduler (docs/BATCHING.md).
//
// The contract under test: batching changes *where* inference runs, never
// what it returns. Per-request predictions are bit-identical to an unbatched
// run across arbitrary interleavings (fuzzed over flush configurations and
// thread start jitter); a full bounded queue rejects with the typed
// QueueFullError instead of blocking the engine; queued items of a request
// whose deadline expires are dropped and the waiter gets the typed deadline
// error; the circuit-breaker fallback path never touches the batcher.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <iterator>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "core/sequential_sim.h"
#include "device/fault.h"
#include "service/batcher.h"
#include "service/service.h"
#include "trace/encoder.h"
#include "trace/trace.h"
#include "uarch/ground_truth.h"

namespace mlsim::service {
namespace {

using namespace std::chrono_literals;

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

/// Delegates to an AnalyticPredictor, but the FIRST predict_batch call blocks
/// until release() — pinning the single scheduler thread mid-flush so tests
/// can deterministically fill the queue behind it.
class GatedPredictor final : public core::LatencyPredictor {
 public:
  core::LatencyPrediction predict(const core::WindowView& w,
                                  std::uint64_t gi) override {
    return inner_.predict(w, gi);
  }

  void predict_batch(const std::int32_t* windows, std::size_t batch,
                     std::size_t rows, const std::uint64_t* gis,
                     core::LatencyPrediction* out) override {
    {
      std::unique_lock lk(mu_);
      if (!first_seen_) {
        first_seen_ = true;
        entered_ = true;
        cv_.notify_all();
        cv_.wait(lk, [&] { return released_; });
      }
    }
    inner_.predict_batch(windows, batch, rows, gis, out);
  }

  std::size_t flops_per_window(std::size_t rows) const override {
    return inner_.flops_per_window(rows);
  }

  void wait_until_entered() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return entered_; });
  }
  void release() {
    std::lock_guard lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  core::AnalyticPredictor inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool first_seen_ = false;
  bool entered_ = false;
  bool released_ = false;
};

// ---------------------------------------------------------------------------
// Bit-identity under fuzzed interleavings
// ---------------------------------------------------------------------------

// Concurrent requests with different window shapes share one scheduler under
// varying flush configurations; every request's per-instruction predictions
// must match its own unbatched baseline byte for byte.
TEST(Batcher, InterleaveFuzzBitIdentity) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor pred;

  // Two window shapes to also exercise the rows-grouped flush split.
  const std::size_t contexts[] = {16, 16, 24, 24};
  std::vector<std::vector<core::LatencyPrediction>> baseline;
  for (const std::size_t ctx : contexts) {
    core::SequentialSimOptions so;
    so.context_length = ctx;
    so.record_predictions = true;
    baseline.push_back(core::SequentialSimulator(pred, so).run(tr).predictions);
  }

  struct Config {
    std::size_t max_batch;
    std::chrono::microseconds max_wait;
  };
  const Config configs[] = {
      {1, 0us},    // degenerate: every window its own flush
      {4, 50us},   // mid-size batches, deadline flushes
      {64, 200us}, // batches larger than the request count
      {3, 0us},    // non-divisor batch size, no accumulation wait
  };

  std::mt19937 rng(20220613);
  for (const Config& cfg : configs) {
    BatcherOptions bo;
    bo.max_batch = cfg.max_batch;
    bo.max_wait = cfg.max_wait;
    BatchScheduler sched({&pred}, bo);

    std::vector<std::vector<core::LatencyPrediction>> got(std::size(contexts));
    std::vector<std::thread> threads;
    std::uniform_int_distribution<int> jitter(0, 200);
    for (std::size_t r = 0; r < std::size(contexts); ++r) {
      const int delay_us = jitter(rng);
      threads.emplace_back([&, r, delay_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        CancelSource src;
        const auto chan = sched.open(r + 1, src.token());
        core::SequentialSimOptions so;
        so.context_length = contexts[r];
        so.record_predictions = true;
        so.batch_sink = chan.get();
        got[r] = core::SequentialSimulator(pred, so).run(tr).predictions;
      });
    }
    for (auto& t : threads) t.join();

    for (std::size_t r = 0; r < std::size(contexts); ++r) {
      EXPECT_EQ(got[r], baseline[r])
          << "request " << r << " diverged at max_batch=" << cfg.max_batch
          << " max_wait=" << cfg.max_wait.count() << "us";
    }
    sched.shutdown();  // join scheduler threads so the stats are final
    const auto st = sched.stats();
    EXPECT_EQ(st.items_predicted, std::size(contexts) * 2000u);
    EXPECT_EQ(st.items_dropped_cancelled, 0u);
    EXPECT_LE(st.max_batch_observed, cfg.max_batch);
  }
}

// Every batch must hold windows of a single shape: with interleaved 16- and
// 24-row requests the scheduler still never mixes them (asserted indirectly
// above by bit-identity — a mixed flush would feed garbage rows — and here
// by the flush accounting adding up).
TEST(Batcher, StatsAccountForEveryItem) {
  const trace::EncodedTrace tr = make_trace("gcc", 500);
  core::AnalyticPredictor pred;
  BatchScheduler sched({&pred});
  CancelSource src;
  const auto chan = sched.open(7, src.token());
  core::SequentialSimOptions so;
  so.context_length = 16;
  so.batch_sink = chan.get();
  core::SequentialSimulator(pred, so).run(tr);
  sched.shutdown();  // join scheduler threads so the stats are final
  const auto st = sched.stats();
  EXPECT_EQ(st.items_submitted, 500u);
  EXPECT_EQ(st.items_predicted, 500u);
  EXPECT_EQ(st.flush_size + st.flush_deadline + st.flush_shutdown, st.flushes);
  EXPECT_GE(st.modeled_unbatched_us, st.modeled_batched_us);
}

// ---------------------------------------------------------------------------
// Backpressure: typed queue-full rejection, never a blocked engine thread
// ---------------------------------------------------------------------------

TEST(Batcher, FullQueueThrowsTypedQueueFullError) {
  GatedPredictor gate;
  BatcherOptions bo;
  bo.max_batch = 1;
  bo.max_wait = 0us;
  bo.queue_capacity = 2;
  BatchScheduler sched({&gate}, bo);

  CancelSource src;
  const auto chan = sched.open(1, src.token());
  const std::int32_t window[17 * trace::kNumFeatures] = {};

  // First item is taken by the scheduler thread, which then blocks inside
  // predict_batch — the queue behind it is all ours.
  const std::uint64_t s0 = chan->submit(window, 17, 0);
  gate.wait_until_entered();
  const std::uint64_t s1 = chan->submit(window, 17, 1);
  const std::uint64_t s2 = chan->submit(window, 17, 2);
  EXPECT_EQ(sched.queue_depth(), 2u);
  EXPECT_THROW(chan->submit(window, 17, 3), QueueFullError);

  // The rejection burns nothing: releasing the gate drains the queued items
  // and every accepted submission still resolves.
  gate.release();
  EXPECT_NO_THROW(chan->wait(s0));
  EXPECT_NO_THROW(chan->wait(s1));
  EXPECT_NO_THROW(chan->wait(s2));
}

// ---------------------------------------------------------------------------
// Cancellation: queued items of a dead request are dropped, typed
// ---------------------------------------------------------------------------

TEST(Batcher, DeadlineExpiryDropsQueuedItemsTyped) {
  GatedPredictor gate;
  BatcherOptions bo;
  bo.max_batch = 1;
  bo.max_wait = 0us;
  BatchScheduler sched({&gate}, bo);

  CancelSource live_src;
  const auto live = sched.open(1, live_src.token());
  CancelSource dying_src;
  dying_src.set_deadline_after(30ms);
  const auto dying = sched.open(2, dying_src.token());

  const std::int32_t window[17 * trace::kNumFeatures] = {};
  const std::uint64_t live_seq = live->submit(window, 17, 0);
  gate.wait_until_entered();  // scheduler pinned; next items stay queued
  const std::uint64_t dead_seq = dying->submit(window, 17, 0);

  // The waiter observes the deadline while its item is still queued.
  try {
    dying->wait(dead_seq);
    FAIL() << "wait() must throw once the deadline expires";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
  }

  // Unpinning the scheduler flushes the live item and *drops* the dead one.
  gate.release();
  EXPECT_NO_THROW(live->wait(live_seq));
  for (int i = 0; i < 200 && sched.stats().items_dropped_cancelled == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  const auto st = sched.stats();
  EXPECT_EQ(st.items_dropped_cancelled, 1u);
  EXPECT_EQ(st.items_predicted, 1u);

  // Submissions on the dead channel are refused up front.
  EXPECT_THROW(dying->submit(window, 17, 1), CancelledError);
}

// ---------------------------------------------------------------------------
// Service integration
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> service_burst(bool batching,
                                         const trace::EncodedTrace& tr) {
  core::AnalyticPredictor primary, fallback;
  ServiceOptions so;
  so.num_workers = 4;
  so.queue_capacity = 16;
  so.batching = batching;
  so.batcher.max_wait = 50us;
  SimulationService svc(primary, fallback, so);

  std::vector<SimulationService::Ticket> tickets;
  for (int i = 0; i < 2; ++i) {
    Request par;
    par.trace = &tr;
    par.engine = EngineKind::kParallel;
    par.num_subtraces = 4;
    tickets.push_back(svc.submit(std::move(par)));
    Request gpu;
    gpu.trace = &tr;
    gpu.engine = EngineKind::kGpu;
    tickets.push_back(svc.submit(std::move(gpu)));
    Request seq;
    seq.trace = &tr;
    seq.engine = EngineKind::kSequential;
    tickets.push_back(svc.submit(std::move(seq)));
    Request stream;
    stream.engine = EngineKind::kStreaming;
    stream.benchmark = "mcf";
    stream.stream_instructions = 2000;
    tickets.push_back(svc.submit(std::move(stream)));
  }
  std::vector<std::uint64_t> cycles;
  for (auto& t : tickets) {
    const Response r = t.future.get();
    EXPECT_EQ(r.status, ResponseStatus::kCompleted) << r.error;
    cycles.push_back(r.total_cycles);
  }
  return cycles;
}

// Batching on vs off is invisible in results for every engine kind.
TEST(Batcher, ServiceResultsIdenticalWithBatchingOnAndOff) {
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  EXPECT_EQ(service_burst(true, tr), service_burst(false, tr));
}

// While the breaker is open, requests run on the analytic fallback and must
// bypass the batcher entirely — a sick primary can never stall batched peers.
TEST(Batcher, BreakerOpenFallbackBypassesBatcher) {
  const trace::EncodedTrace tr = make_trace("mcf", 3000);
  core::AnalyticPredictor primary, fallback;

  device::FaultOptions fo;
  fo.seed = 7;
  fo.output_corrupt_rate = 1.0;  // every primary attempt degrades
  const device::FaultInjector inj(fo);

  ServiceOptions so;
  so.batching = true;
  so.breaker.failure_threshold = 1;
  so.breaker.open_cooldown = 100;  // stay open for the rest of the test
  SimulationService svc(primary, fallback, so);

  Request chaos;
  chaos.trace = &tr;
  chaos.engine = EngineKind::kParallel;
  chaos.num_subtraces = 4;
  chaos.faults = &inj;
  auto t0 = svc.submit(std::move(chaos));
  const Response r0 = t0.future.get();
  EXPECT_EQ(r0.status, ResponseStatus::kCompleted) << r0.error;
  EXPECT_TRUE(r0.degraded);
  ASSERT_EQ(svc.breaker_state(), BreakerState::kOpen);

  const std::uint64_t submitted_before = svc.batcher()->stats().items_submitted;
  Request seq;
  seq.trace = &tr;
  seq.engine = EngineKind::kSequential;
  auto t1 = svc.submit(std::move(seq));
  const Response r1 = t1.future.get();
  EXPECT_EQ(r1.status, ResponseStatus::kCompleted) << r1.error;
  EXPECT_TRUE(r1.degraded) << "open breaker must route to the fallback";
  EXPECT_EQ(svc.batcher()->stats().items_submitted, submitted_before)
      << "fallback-served request must not touch the batcher";
}

}  // namespace
}  // namespace mlsim::service
