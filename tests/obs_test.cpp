// Observability layer: registry concurrency, span nesting + Chrome-trace
// export round-trip, disabled-mode no-op behaviour, histogram quantiles, and
// the thread-pool drain guarantees the queue-depth gauge relies on.
//
// This file compiles and passes in both the instrumented build and the
// stripped one (-DMLSIM_OBS_DISABLE=ON): assertions that require recording
// are guarded on obs::kCompiledIn.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/obs.h"

namespace mlsim {
namespace {

// ---------------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CounterGaugeBasics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same handle.
  reg.counter("test.counter").add(8);
  EXPECT_EQ(c.value(), 50u);

  obs::Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("test.metric");
  EXPECT_THROW(reg.gauge("test.metric"), CheckError);
  EXPECT_THROW(reg.histogram("test.metric"), CheckError);
}

TEST(ObsRegistry, HistogramStatsAndQuantiles) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("test.hist");
  for (int v = 1; v <= 100; ++v) h.record(static_cast<double>(v));
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Default buckets are coarse (4/decade); the interpolated median must land
  // inside the bucket containing the true median (31.6, 56.2].
  const double p50 = s.quantile(50);
  EXPECT_GT(p50, 30.0);
  EXPECT_LT(p50, 57.0);
  const double p99 = s.quantile(99);
  EXPECT_GT(p99, 56.0);
  EXPECT_LE(p99, 100.0);  // clamped by the observed max
}

TEST(ObsRegistry, HistogramCustomEdgesAndEmptyQuantile) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("test.custom", {1.0, 2.0, 4.0});
  EXPECT_TRUE(std::isnan(h.snapshot().quantile(50)));
  h.record(0.5);
  h.record(1.5);
  h.record(100.0);  // overflow -> open-ended last bucket
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(ObsRegistry, QuantileFromBuckets) {
  const std::vector<double> edges{10.0, 20.0, 30.0};
  // 10 samples in (10, 20]: the median interpolates inside that bucket.
  EXPECT_DOUBLE_EQ(quantile_from_buckets(edges, {0, 10, 0}, 50), 15.0);
  EXPECT_DOUBLE_EQ(quantile_from_buckets(edges, {0, 10, 0}, 100), 20.0);
  // Mass in the last bucket interpolates inside it like any other; a
  // Histogram snapshot additionally clamps to the observed max.
  EXPECT_NEAR(quantile_from_buckets(edges, {0, 0, 4}, 99), 29.9, 1e-9);
  EXPECT_DOUBLE_EQ(quantile_from_buckets(edges, {0, 0, 4}, 100), 30.0);
  EXPECT_TRUE(std::isnan(quantile_from_buckets(edges, {0, 0, 0}, 50)));
  EXPECT_THROW(quantile_from_buckets(edges, {1, 2}, 50), CheckError);
}

TEST(ObsRegistry, ConcurrentCountersAndHistograms) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.concurrent_counter");
  obs::Gauge& g = reg.gauge("test.concurrent_gauge");
  obs::Histogram& h = reg.histogram("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        g.add(1.0);
        h.record(static_cast<double>(i % 1000) + 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.counts) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(ObsRegistry, DefaultRegistryCoversAllSubsystems) {
  const std::vector<std::string> names = obs::default_registry().metric_names();
  const auto has_prefix = [&](const std::string& prefix) {
    for (const auto& n : names) {
      if (n.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prefix("gpu_sim."));
  EXPECT_TRUE(has_prefix("parallel_sim."));
  EXPECT_TRUE(has_prefix("streaming."));
  EXPECT_TRUE(has_prefix("trainer."));
  EXPECT_TRUE(has_prefix("thread_pool."));

  std::ostringstream text, json;
  obs::default_registry().write_text(text);
  obs::default_registry().write_json(json);
  for (const char* sub :
       {"gpu_sim.", "parallel_sim.", "streaming.", "trainer.", "thread_pool."}) {
    EXPECT_NE(text.str().find(sub), std::string::npos) << sub;
    EXPECT_NE(json.str().find(sub), std::string::npos) << sub;
  }
  EXPECT_EQ(json.str().front(), '{');
  EXPECT_EQ(json.str().back(), '}');
}

// ---------------------------------------------------------------------------
// Tracing spans
// ---------------------------------------------------------------------------

/// Pull the double following `"key":` after position `from`.
double json_value_after(const std::string& s, const std::string& key,
                        std::size_t from) {
  const std::size_t k = s.find("\"" + key + "\":", from);
  EXPECT_NE(k, std::string::npos) << key;
  return std::strtod(s.c_str() + k + key.size() + 3, nullptr);
}

TEST(ObsTrace, SpanNestingExportRoundTrip) {
  obs::set_enabled(true);
  obs::reset_trace();
  {
    MLSIM_TRACE_SPAN("test/parent");
    volatile double sink = 0;
    {
      MLSIM_TRACE_SPAN("test/child");
      for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
    }
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
  obs::set_enabled(false);

  if (!obs::kCompiledIn) {
    EXPECT_EQ(obs::recorded_events(), 0u);
    return;
  }
  EXPECT_EQ(obs::recorded_events(), 2u);
  EXPECT_EQ(obs::dropped_events(), 0u);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string j = os.str();
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(j.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);

  const std::size_t parent_pos = j.find("\"name\":\"test/parent\"");
  const std::size_t child_pos = j.find("\"name\":\"test/child\"");
  ASSERT_NE(parent_pos, std::string::npos);
  ASSERT_NE(child_pos, std::string::npos);

  const double pts = json_value_after(j, "ts", parent_pos);
  const double pdur = json_value_after(j, "dur", parent_pos);
  const double pdepth = json_value_after(j, "depth", parent_pos);
  const double cts = json_value_after(j, "ts", child_pos);
  const double cdur = json_value_after(j, "dur", child_pos);
  const double cdepth = json_value_after(j, "depth", child_pos);

  EXPECT_EQ(pdepth, 0.0);
  EXPECT_EQ(cdepth, 1.0);
  // Child interval nests inside the parent interval (µs, same thread).
  EXPECT_GE(cts, pts);
  EXPECT_LE(cts + cdur, pts + pdur + 1e-3);
}

TEST(ObsTrace, EventsFromMultipleThreadsCarryDistinctTids) {
  obs::set_enabled(true);
  obs::reset_trace();
  {
    MLSIM_TRACE_SPAN("test/main-thread");
  }
  std::thread t([] { MLSIM_TRACE_SPAN("test/other-thread"); });
  t.join();
  obs::set_enabled(false);

  if (!obs::kCompiledIn) {
    EXPECT_EQ(obs::recorded_events(), 0u);
    return;
  }
  EXPECT_EQ(obs::recorded_events(), 2u);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string j = os.str();
  const std::size_t a = j.find("\"name\":\"test/main-thread\"");
  const std::size_t b = j.find("\"name\":\"test/other-thread\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_NE(json_value_after(j, "tid", a), json_value_after(j, "tid", b));
}

TEST(ObsTrace, RuntimeDisabledRecordsNothing) {
  obs::set_enabled(false);
  obs::reset_trace();
  const std::uint64_t before =
      obs::default_registry().counter("test.disabled_counter").value();
  {
    MLSIM_TRACE_SPAN("test/should-not-appear");
    MLSIM_COUNTER_ADD("test.disabled_counter", 7);
    MLSIM_GAUGE_SET("test.disabled_gauge", 1.0);
    MLSIM_HIST_RECORD("test.disabled_hist", 5.0);
  }
  EXPECT_EQ(obs::recorded_events(), 0u);
  EXPECT_EQ(obs::default_registry().counter("test.disabled_counter").value(),
            before);
}

TEST(ObsTrace, CompileTimeDisabledIsNoOp) {
  if (obs::kCompiledIn) GTEST_SKIP() << "instrumented build";
  obs::set_enabled(true);  // must be a no-op in the stripped build
  EXPECT_FALSE(obs::enabled());
  {
    MLSIM_TRACE_SPAN("test/compiled-out");
  }
  EXPECT_EQ(obs::recorded_events(), 0u);
}

// ---------------------------------------------------------------------------
// Thread pool integration
// ---------------------------------------------------------------------------

TEST(ObsThreadPool, DrainsAndReportsZeroQueueDepth) {
  obs::set_enabled(true);
  obs::reset_trace();
  const std::uint64_t tasks_before =
      obs::default_registry().counter(obs::names::kPoolTasksDone).value();
  std::atomic<std::size_t> touched{0};
  {
    ThreadPool pool(4);
    pool.parallel_for(0, 1000, [&](std::size_t) {
      touched.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(pool.pending(), 0u);
  }
  obs::set_enabled(false);
  EXPECT_EQ(touched.load(), 1000u);
  if (obs::kCompiledIn) {
    EXPECT_DOUBLE_EQ(
        obs::default_registry().gauge(obs::names::kPoolQueueDepth).value(), 0.0);
    EXPECT_GT(obs::default_registry().counter(obs::names::kPoolTasksDone).value(),
              tasks_before);
  }
}


// ---------------------------------------------------------------------------
// Prometheus text exposition (what GET /metrics serves)
// ---------------------------------------------------------------------------

TEST(ObsPrometheus, NameSanitizationAndEscaping) {
  EXPECT_EQ(obs::prom_name("gpu_sim.inference_ns"), "mlsim_gpu_sim_inference_ns");
  EXPECT_EQ(obs::prom_name("a.b-c d"), "mlsim_a_b_c_d");
  EXPECT_EQ(obs::prom_escape("plain"), "plain");
  EXPECT_EQ(obs::prom_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ObsPrometheus, ExpositionCoversAllKindsWithTypeLines) {
  obs::Registry reg;
  reg.counter("test.events").add(41);
  reg.gauge("test.depth").set(2.5);
  obs::Histogram& h = reg.histogram("test.wait_ns", {1.0, 10.0, 100.0});
  h.record(0.5);   // first bucket
  h.record(5.0);   // second
  h.record(1e9);   // overflow: storage's open-ended last bucket
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string body = os.str();

  EXPECT_NE(body.find("# TYPE mlsim_test_events_total counter\n"
                      "mlsim_test_events_total 41\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE mlsim_test_depth gauge\nmlsim_test_depth 2.5\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE mlsim_test_wait_ns histogram\n"),
            std::string::npos)
      << body;
  // Cumulative buckets ending at +Inf == _count, even with an overflow
  // sample beyond the largest finite edge.
  EXPECT_NE(body.find("mlsim_test_wait_ns_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("mlsim_test_wait_ns_bucket{le=\"10\"} 2\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("mlsim_test_wait_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("mlsim_test_wait_ns_count 3\n"), std::string::npos)
      << body;
  EXPECT_NE(body.find("mlsim_test_wait_ns_sum "), std::string::npos) << body;
}

TEST(ObsPrometheus, SnapshotStaysConsistentUnderConcurrentRecording) {
  // The exposition's histogram invariants (+Inf == _count, cumulative
  // non-decreasing buckets) must hold for snapshots taken mid-record.
  obs::Registry reg;
  reg.histogram("test.concurrent_ns");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &stop, t] {
      obs::Histogram& h = reg.histogram("test.concurrent_ns");
      std::uint64_t x = static_cast<std::uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        h.record(static_cast<double>(x % 1000000));
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    std::ostringstream os;
    reg.write_prometheus(os);
    const std::string body = os.str();
    // Walk the bucket lines: cumulative counts never decrease, and the
    // final +Inf bucket equals _count.
    std::uint64_t prev = 0, inf = 0, count = 0;
    std::istringstream is(body);
    std::string line;
    while (std::getline(is, line)) {
      const auto value_of = [&line] {
        return std::stoull(line.substr(line.rfind(' ') + 1));
      };
      if (line.rfind("mlsim_test_concurrent_ns_bucket", 0) == 0) {
        const std::uint64_t v = value_of();
        EXPECT_GE(v, prev) << body;
        prev = v;
        if (line.find("le=\"+Inf\"") != std::string::npos) inf = v;
      } else if (line.rfind("mlsim_test_concurrent_ns_count", 0) == 0) {
        count = value_of();
      }
    }
    EXPECT_EQ(inf, count) << body;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
}

// ---------------------------------------------------------------------------
// Distributed trace context and cross-process merge
// ---------------------------------------------------------------------------

TEST(ObsTrace, TraceContextRoundTripsAndStampsSpans) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::reset_trace();
  EXPECT_EQ(obs::current_trace_id(), 0u);
  obs::set_trace_context(0xabcdULL, 7);
  EXPECT_EQ(obs::current_trace_id(), 0xabcdULL);
  EXPECT_EQ(obs::current_parent_span(), 7u);
  {
    MLSIM_TRACE_SPAN("test/ctx-span");
  }
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string body = os.str();
  EXPECT_NE(body.find("\"name\":\"test/ctx-span\""), std::string::npos);
  EXPECT_NE(body.find("\"trace_id\":\"abcd\""), std::string::npos) << body;
  obs::set_trace_context(0, 0);
  obs::set_enabled(false);
}

TEST(ObsTrace, RemoteSpansMergeWithDistinctPids) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::reset_trace();
  {
    MLSIM_TRACE_SPAN("test/local-span");
  }
  obs::SpanRecord remote;
  remote.name = "test/remote-span";
  remote.ts_ns = 10;
  remote.dur_ns = 20;
  remote.tid = 3;
  obs::add_remote_spans(/*pid=*/9, /*trace_id=*/0x51ULL, {remote});
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string body = os.str();
  // Local spans export under pid 1, the remote batch under its own pid,
  // carrying the trace id it was shipped with.
  const std::size_t local = body.find("\"name\":\"test/local-span\"");
  const std::size_t rem = body.find("\"name\":\"test/remote-span\"");
  ASSERT_NE(local, std::string::npos) << body;
  ASSERT_NE(rem, std::string::npos) << body;
  EXPECT_NE(body.find("\"pid\":1", local), std::string::npos);
  EXPECT_NE(body.find("\"pid\":9", rem), std::string::npos);
  EXPECT_NE(body.find("\"trace_id\":\"51\"", rem), std::string::npos) << body;
  // snapshot_spans feeds ResultMsg: it must see the local span.
  const std::vector<obs::SpanRecord> spans = obs::snapshot_spans();
  bool found = false;
  for (const auto& s : spans) found = found || s.name == "test/local-span";
  EXPECT_TRUE(found);
  obs::set_enabled(false);
}

}  // namespace
}  // namespace mlsim
