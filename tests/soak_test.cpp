// Chaos soak for the resilient simulation service (ISSUE acceptance
// criterion): a sustained burst of mixed-priority requests against a small
// worker pool while the fault injector kills devices, corrupts inference
// outputs, and hangs workers at >= 10% rates, with tight deadlines mixed in.
//
// The service must neither crash nor deadlock, every submitted request must
// resolve to exactly one *typed* response, and every request that completes
// must report a CPI bit-identical to a fault-free run — fault tolerance may
// cost time, never accuracy.
//
// Registered with ctest label `soak` (tests/CMakeLists.txt) so the slow
// chaos run can be included or excluded explicitly (`ctest -L soak`).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "device/fault.h"
#include "service/request.h"
#include "service/service.h"
#include "trace/trace.h"
#include "uarch/ground_truth.h"

namespace mlsim::service {
namespace {

using namespace std::chrono_literals;

void run_chaos_soak(bool batching) {
  const trace::EncodedTrace tr =
      uarch::make_encoded_trace(trace::find_workload("mcf"), 6000, {}, 1);
  core::AnalyticPredictor primary, fallback;

  // Fault-free reference: completed chaos requests must match it exactly.
  core::ParallelSimOptions ref_opts;
  ref_opts.num_subtraces = 4;
  ref_opts.num_gpus = 1;
  ref_opts.context_length = 16;
  ref_opts.warmup = 16;
  ref_opts.post_error_correction = true;
  const auto want = core::ParallelSimulator(primary, ref_opts).run(tr);

  // >= 10% of everything, per the acceptance criterion.
  device::FaultOptions fo;
  fo.seed = 20220613;  // paper-year seed; any value must work
  fo.device_kill_rate = 0.15;
  fo.output_corrupt_rate = 0.15;
  fo.straggler_rate = 0.15;
  const device::FaultInjector inj(fo);

  ServiceOptions so;
  so.num_workers = 3;
  so.queue_capacity = 6;
  so.shed_fraction = 0.75;
  so.hang_timeout = 80ms;
  so.watchdog_interval = 15ms;
  so.max_hang_requeues = 2;
  so.breaker.failure_threshold = 3;
  so.breaker.open_cooldown = 2;
  // Continuous batching rides through the same chaos: cancelled/hung
  // requests drop their queued windows, degraded partitions bypass the
  // scheduler, and completed requests stay bit-identical.
  so.batching = batching;
  so.batcher.max_wait = std::chrono::microseconds(50);
  SimulationService svc(primary, fallback, so);

  constexpr int kRequests = 30;
  std::vector<SimulationService::Ticket> tickets;
  tickets.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Request rq;
    rq.trace = &tr;
    rq.engine = EngineKind::kParallel;
    rq.priority = static_cast<Priority>(i % kNumPriorities);
    rq.faults = &inj;
    // Stall longer than hang_timeout: a flagged straggler attempt is a real
    // hang the watchdog must catch, not just a slow request.
    rq.straggler_stall = 200ms;
    if (i % 5 == 4) rq.deadline = 50ms;  // some requests carry tight deadlines
    tickets.push_back(svc.submit(std::move(rq)));
    if (i % 4 == 3) std::this_thread::sleep_for(10ms);  // bursty, not uniform
  }

  // No deadlock: every future resolves well within the generous budget.
  int completed = 0;
  for (auto& t : tickets) {
    ASSERT_EQ(t.future.wait_for(120s), std::future_status::ready)
        << "request " << t.id << " never resolved (deadlock or lost future)";
    const Response r = t.future.get();
    switch (r.status) {
      case ResponseStatus::kCompleted:
        ++completed;
        // Chaos costs retries and requeues, never accuracy.
        EXPECT_EQ(r.total_cycles, want.total_cycles) << "request " << r.id;
        EXPECT_EQ(r.instructions, want.instructions) << "request " << r.id;
        EXPECT_DOUBLE_EQ(r.cpi, want.cpi()) << "request " << r.id;
        break;
      case ResponseStatus::kRejectedQueueFull:
      case ResponseStatus::kRejectedOverload:
      case ResponseStatus::kRejectedShedding:
      case ResponseStatus::kRejectedQuota:
      case ResponseStatus::kDeadlineExceeded:
      case ResponseStatus::kWorkerHung:
        EXPECT_FALSE(r.error.empty()) << to_string(r.status);
        break;
      case ResponseStatus::kCancelled:
      case ResponseStatus::kFailed:
        FAIL() << "request " << r.id << " resolved " << to_string(r.status)
               << ": " << r.error;
    }
  }
  EXPECT_GT(completed, 0) << "chaos shed every single request";

  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(st.accepted + st.rejected(), st.submitted)
      << "every submission must be either accepted or rejected, never lost";
  EXPECT_EQ(st.completed + st.failed + st.deadline_exceeded + st.cancelled +
                st.hung,
            st.accepted)
      << "every accepted request must resolve exactly once";

  // The service is still healthy after the storm and shuts down cleanly.
  const std::string health = svc.health_json();
  EXPECT_NE(health.find("\"status\":"), std::string::npos);
  svc.shutdown();
}

TEST(ServiceSoak, ChaosRunResolvesEveryRequestTyped) { run_chaos_soak(false); }

TEST(ServiceSoak, ChaosRunWithBatchingStaysBitIdentical) {
  run_chaos_soak(true);
}

}  // namespace
}  // namespace mlsim::service
