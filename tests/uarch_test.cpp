// Tests for the microarchitecture substrate: branch predictor, caches, TLB,
// the OoO timing model, the interval core and the ground-truth pipeline.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "trace/functional_sim.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/ground_truth.h"
#include "uarch/interval_core.h"
#include "uarch/ooo_core.h"
#include "uarch/tlb.h"

namespace mlsim::uarch {
namespace {

using trace::Annotation;
using trace::DynInst;
using trace::HitLevel;
using trace::OpClass;
using trace::TlbLevel;

// ---------------------------------------------------------------- bi-mode --

TEST(BiMode, LearnsAlwaysTaken) {
  BiModePredictor bp;
  for (int i = 0; i < 50; ++i) bp.update(0x4000, true);
  EXPECT_TRUE(bp.predict(0x4000));
  EXPECT_LT(bp.mispredict_rate(), 0.2);
}

TEST(BiMode, LearnsAlwaysNotTaken) {
  BiModePredictor bp;
  for (int i = 0; i < 50; ++i) bp.update(0x4000, false);
  EXPECT_FALSE(bp.predict(0x4000));
}

TEST(BiMode, LearnsLoopPattern) {
  // Taken 7, not-taken 1, repeated: history-based predictor should beat 50%.
  BiModePredictor bp;
  int correct = 0, total = 0;
  for (int rep = 0; rep < 200; ++rep) {
    for (int i = 0; i < 8; ++i) {
      const bool taken = i != 7;
      if (rep > 20) {
        correct += bp.predict(0x8000) == taken;
        ++total;
      }
      bp.update(0x8000, taken);
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST(BiMode, RandomBranchNearHalf) {
  BiModePredictor bp;
  Rng rng(5);
  int correct = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const bool taken = rng.bernoulli(0.5);
    correct += bp.predict(0x1234) == taken;
    bp.update(0x1234, taken);
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, 0.5, 0.08);
}

TEST(BiMode, BiasedBranchesDontDestructivelyAlias) {
  // One strongly-taken and one strongly-not-taken branch mapping nearby:
  // bi-mode's split banks should keep both accurate.
  BiModePredictor bp;
  int correct = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    if (i > 200) {
      correct += bp.predict(0x1000) == true;
      correct += bp.predict(0x2000) == false;
      total += 2;
    }
    bp.update(0x1000, true);
    bp.update(0x2000, false);
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST(BiMode, BtbInsertAndHit) {
  BiModePredictor bp;
  EXPECT_FALSE(bp.btb_hit(0x4444));
  bp.btb_insert(0x4444, 0x8888);
  EXPECT_TRUE(bp.btb_hit(0x4444));
}

// ------------------------------------------------------------------ cache --

CacheConfig small_cache() {
  return {.size_bytes = 1024, .assoc = 2, .line_bytes = 64, .mshrs = 4,
          .latency = 5};
}

TEST(Cache, MissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.probe(0x100));
  c.access(0x100, 0, 100, false);
  EXPECT_TRUE(c.probe(0x100));
  const auto r = c.access(0x100, 200, 0, false);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.ready_cycle, 205u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineSharesEntry) {
  Cache c(small_cache());
  c.access(0x100, 0, 50, false);
  EXPECT_TRUE(c.probe(0x13f));   // same 64B line
  EXPECT_FALSE(c.probe(0x140));  // next line
}

TEST(Cache, LruEvictionOrder) {
  const CacheConfig cfg = small_cache();  // 8 sets, 2 ways
  Cache c(cfg);
  const std::uint64_t set_stride = 64 * 8;  // maps to the same set
  c.access(0x0, 0, 10, false);              // A
  c.access(set_stride, 1, 10, false);       // B (set full)
  c.access(0x0, 2, 0, false);               // touch A -> B becomes LRU
  c.access(2 * set_stride, 3, 10, false);   // C evicts B
  EXPECT_TRUE(c.probe(0x0));
  EXPECT_FALSE(c.probe(set_stride));
  EXPECT_TRUE(c.probe(2 * set_stride));
}

TEST(Cache, MshrSecondaryMissMerges) {
  Cache c(small_cache());
  const auto first = c.access(0x100, 0, 100, false);
  EXPECT_FALSE(first.hit);
  // Probe misses (fill in flight), but the access merges into the MSHR.
  // Evict it from the tag array first? No: the line was installed at access
  // time, so probe hits. Access a *different* address mapping to the same
  // line is a hit. Instead check the merge path via a fresh line with a
  // busy MSHR by accessing a second line then re-requesting the first
  // before fill completion via a different word.
  const auto merged = c.access(0x108, 10, 500, false);
  EXPECT_TRUE(merged.hit);  // line already installed by the first access
}

TEST(Cache, MshrExhaustionSerializes) {
  CacheConfig cfg = small_cache();
  cfg.mshrs = 1;
  Cache c(cfg);
  const auto a = c.access(0x000, 0, 100, false);
  const auto b = c.access(0x1000, 0, 100, false);  // different set is fine
  EXPECT_FALSE(a.hit);
  EXPECT_FALSE(b.hit);
  // Second miss waits for the only MSHR: its ready time is pushed out.
  EXPECT_GE(b.ready_cycle, a.ready_cycle);
}

TEST(Cache, StatsResetWorks) {
  Cache c(small_cache());
  c.access(0x0, 0, 10, false);
  c.reset_stats();
  EXPECT_EQ(c.hits() + c.misses(), 0u);
  EXPECT_EQ(c.miss_rate(), 0.0);
}

TEST(Cache, RejectsBadConfig) {
  CacheConfig cfg = small_cache();
  cfg.line_bytes = 48;  // not a power of two
  EXPECT_THROW(Cache{cfg}, CheckError);
}

TEST(Cache, WorkingSetLargerThanCacheMisses) {
  Cache c(small_cache());  // 1 KB
  std::size_t misses_first = 0, misses_second = 0;
  for (std::uint64_t a = 0; a < 16 * 1024; a += 64) {
    misses_first += !c.access(a, a, a + 100, false).hit;
  }
  for (std::uint64_t a = 0; a < 16 * 1024; a += 64) {
    misses_second += !c.access(a, a, a + 100, false).hit;
  }
  EXPECT_EQ(misses_first, 256u);   // cold
  EXPECT_EQ(misses_second, 256u);  // thrashes: 16x the capacity
}

TEST(Cache, SmallWorkingSetFits) {
  Cache c(small_cache());
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t a = 0; a < 512; a += 64) c.access(a, a, a + 100, false);
  }
  // After the cold pass, everything hits.
  EXPECT_EQ(c.misses(), 8u);
  EXPECT_EQ(c.hits(), 16u);
}

// ---------------------------------------------- replacement policies --

/// Hit count of `policy` on a cyclic loop over `lines` cache lines,
/// repeated `rounds` times — the canonical thrash pattern: when the loop
/// exceeds capacity, LRU/FIFO evict every line just before its reuse.
std::uint64_t policy_hits(ReplacementPolicy policy, std::uint64_t lines,
                          int rounds) {
  CacheConfig cfg = small_cache();  // 1 KB: 8 sets x 2 ways = 16 lines
  cfg.replacement = policy;
  Cache c(cfg, "policy-test");
  std::uint64_t t = 0;
  for (int r = 0; r < rounds; ++r) {
    for (std::uint64_t a = 0; a < lines * 64; a += 64) {
      c.access(a, t, t + 100, false);
      ++t;
    }
  }
  return c.hits();
}

TEST(Cache, PoliciesDivergeOnThrashingLoop) {
  // 32-line loop over a 16-line cache, 8 rounds (256 accesses). LRU and
  // FIFO evict each line exactly one access before it comes around again —
  // zero hits. The thrash-resistant policies keep part of the loop
  // resident: DIP's BIP insertions pin whichever lines happened to be
  // promoted, DRRIP's distant-re-reference insertions age out scans before
  // victims, and ARC's frequency list protects lines with a second touch.
  // Counter-driven and deterministic, so the counts are exact goldens.
  EXPECT_EQ(policy_hits(ReplacementPolicy::kLru, 32, 8), 0u);
  EXPECT_EQ(policy_hits(ReplacementPolicy::kFifo, 32, 8), 0u);
  EXPECT_EQ(policy_hits(ReplacementPolicy::kDip, 32, 8), 47u);
  EXPECT_EQ(policy_hits(ReplacementPolicy::kDrrip, 32, 8), 49u);
  EXPECT_EQ(policy_hits(ReplacementPolicy::kArc, 32, 8), 8u);
}

TEST(Cache, PoliciesIdenticalWhenWorkingSetFits) {
  // 8 lines across 8 sets: one way per set suffices, nothing is ever
  // evicted, so insertion/victim policy cannot matter — every policy sees
  // the same 8 cold misses and 56 hits.
  for (const ReplacementPolicy p :
       {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
        ReplacementPolicy::kRandom, ReplacementPolicy::kDip,
        ReplacementPolicy::kDrrip, ReplacementPolicy::kArc}) {
    EXPECT_EQ(policy_hits(p, 8, 8), 56u) << to_string(p);
  }
}

TEST(Cache, ReplacementPolicyNamesRoundTrip) {
  for (const ReplacementPolicy p :
       {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
        ReplacementPolicy::kRandom, ReplacementPolicy::kDip,
        ReplacementPolicy::kDrrip, ReplacementPolicy::kArc}) {
    EXPECT_EQ(replacement_policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW(replacement_policy_from_string("plru"), CheckError);
}

TEST(Cache, UnimplementedPolicyIsTypedNotSilentLru) {
  CacheConfig cfg = small_cache();
  cfg.replacement = static_cast<ReplacementPolicy>(99);
  EXPECT_THROW(Cache(cfg, "bad-policy"), CheckError);
}

// -------------------------------------------------------------------- tlb --

TEST(Tlb, MissWalkThenHit) {
  Tlb tlb;
  const auto first = tlb.access(0x10000);
  EXPECT_EQ(first.level, TlbLevel::kWalk);
  const auto second = tlb.access(0x10008);  // same page
  EXPECT_EQ(second.level, TlbLevel::kHit);
  EXPECT_EQ(second.latency, 0u);
}

TEST(Tlb, L2BackstopsL1) {
  TlbConfig cfg;
  cfg.l1_entries = 1;  // pathological L1: every second page conflicts
  Tlb tlb(cfg);
  tlb.access(0x0000);
  tlb.access(0x1000);  // evicts page 0 from the 1-entry L1
  const auto r = tlb.access(0x0000);
  EXPECT_EQ(r.level, TlbLevel::kL2Tlb);
  EXPECT_EQ(r.latency, cfg.l2_latency);
}

TEST(Tlb, StatsAccumulate) {
  Tlb tlb;
  tlb.access(0x0000);
  tlb.access(0x0000);
  tlb.access(0x5000);
  EXPECT_EQ(tlb.walks(), 2u);
  EXPECT_EQ(tlb.l1_hits(), 1u);
}

// --------------------------------------------------------------- OoO core --

DynInst alu(std::uint8_t dst, std::uint8_t src = 0, std::uint64_t pc = 0x400000) {
  DynInst d;
  d.op = OpClass::kIntAlu;
  d.pc = pc;
  if (dst) {
    d.n_dst = 1;
    d.dst[0] = dst;
  }
  if (src) {
    d.n_src = 1;
    d.src[0] = src;
  }
  return d;
}

TEST(OooCore, IndependentStreamRunsAtFetchWidth) {
  MachineConfig cfg;
  OooCore core(cfg);
  Annotation ann;
  std::uint64_t cycles = 0;
  const std::size_t n = 3000;
  for (std::size_t i = 0; i < n; ++i) {
    DynInst d = alu(0, 0, 0x400000 + 4 * i);
    cycles += core.process(d, ann).fetch_lat;
  }
  const double cpi = static_cast<double>(cycles) / static_cast<double>(n);
  // 3-wide fetch bounds CPI below at ~1/3.
  EXPECT_NEAR(cpi, 1.0 / cfg.core.fetch_width, 0.05);
}

TEST(OooCore, DependencyChainSerializes) {
  MachineConfig cfg;
  OooCore chain_core(cfg);
  OooCore indep_core(cfg);
  Annotation ann;
  std::uint64_t chain_cycles = 0, indep_cycles = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    // Chain: every instruction reads the previous result.
    chain_cycles += chain_core.process(alu(1, 1, 0x400000 + 4 * i), ann).fetch_lat;
    indep_cycles += indep_core.process(alu(0, 0, 0x400000 + 4 * i), ann).fetch_lat;
  }
  // Fetch throughput is the same; the chain shows up in exec latency, which
  // grows until the ROB throttles fetch.
  EXPECT_GE(chain_cycles, indep_cycles);
}

TEST(OooCore, DependencyChainGrowsExecLatency) {
  MachineConfig cfg;
  OooCore core(cfg);
  Annotation ann;
  std::uint32_t last_exec = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    last_exec = core.process(alu(1, 1, 0x400000 + 4 * i), ann).exec_lat;
  }
  // Each link adds >= 1 cycle; the window bounds the backlog.
  EXPECT_GT(last_exec, cfg.core.frontend_depth + 1);
}

TEST(OooCore, CacheMissAddsLatency) {
  MachineConfig cfg;
  OooCore core(cfg);
  Annotation hit_ann;
  hit_ann.data_level = HitLevel::kL1;
  Annotation miss_ann;
  miss_ann.data_level = HitLevel::kMemory;

  DynInst load;
  load.op = OpClass::kLoad;
  load.n_dst = 1;
  load.dst[0] = 2;
  load.mem_addr = 0x1000;
  load.mem_size_log2 = 3;

  const auto hit = core.process(load, hit_ann);
  const auto miss = core.process(load, miss_ann);
  EXPECT_GT(miss.exec_lat, hit.exec_lat + cfg.memory_latency / 2);
}

TEST(OooCore, MispredictStallsNextFetch) {
  MachineConfig cfg;
  OooCore core(cfg);
  Annotation ann;
  // Warm up.
  for (int i = 0; i < 10; ++i) core.process(alu(0, 0, 0x400000 + 4 * i), ann);

  DynInst br;
  br.op = OpClass::kBranch;
  br.pc = 0x400100;
  Annotation mis;
  mis.branch_mispredicted = true;
  core.process(br, mis);
  const auto after = core.process(alu(0, 0, 0x400200), ann);
  EXPECT_GE(after.fetch_lat, cfg.bp.mispredict_penalty);
}

TEST(OooCore, StoreLatencyOnlyForStores) {
  MachineConfig cfg;
  OooCore core(cfg);
  Annotation ann;
  ann.data_level = HitLevel::kL1;
  DynInst st;
  st.op = OpClass::kStore;
  st.mem_addr = 0x2000;
  st.mem_size_log2 = 3;
  const auto s = core.process(st, ann);
  EXPECT_GT(s.store_lat, 0u);
  const auto a = core.process(alu(1), ann);
  EXPECT_EQ(a.store_lat, 0u);
}

TEST(OooCore, SerializingDivOccupiesUnit) {
  MachineConfig cfg;
  OooCore core(cfg);
  Annotation ann;
  DynInst div;
  div.op = OpClass::kIntDiv;
  div.n_dst = 1;
  div.dst[0] = 3;
  const auto d1 = core.process(div, ann);
  const auto d2 = core.process(div, ann);  // must wait for the single divider
  EXPECT_GE(d2.exec_lat, d1.exec_lat);
}

TEST(OooCore, ClockMonotone) {
  MachineConfig cfg;
  OooCore core(cfg);
  Annotation ann;
  std::uint64_t prev = 0;
  for (int i = 0; i < 500; ++i) {
    core.process(alu(1, 1, 0x400000 + 4 * i), ann);
    EXPECT_GE(core.clock(), prev);
    prev = core.clock();
  }
}

// ----------------------------------------------------------- ground truth --

class GroundTruthPerBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(GroundTruthPerBenchmark, ProducesPlausibleCpi) {
  const auto labeled =
      generate_labeled_trace(trace::find_workload(GetParam()), 20000);
  ASSERT_EQ(labeled.size(), 20000u);
  const double cpi = labeled.cpi();
  EXPECT_GT(cpi, 0.3) << "CPI below the fetch-width bound";
  EXPECT_LT(cpi, 40.0) << "CPI implausibly high";
}

TEST_P(GroundTruthPerBenchmark, Deterministic) {
  const auto a = generate_labeled_trace(trace::find_workload(GetParam()), 5000);
  const auto b = generate_labeled_trace(trace::find_workload(GetParam()), 5000);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
}

INSTANTIATE_TEST_SUITE_P(SomeBenchmarks, GroundTruthPerBenchmark,
                         ::testing::Values("perl", "mcf", "lbm", "exch", "xz"));

TEST(GroundTruth, MemoryHeavyBenchmarkHasHigherCpi) {
  const auto mcf = generate_labeled_trace(trace::find_workload("mcf"), 30000);
  const auto spei = generate_labeled_trace(trace::find_workload("spei"), 30000);
  EXPECT_GT(mcf.cpi(), spei.cpi());
}

TEST(GroundTruth, BiggerL2ReducesCycles) {
  MachineConfig small;
  small.l2.size_bytes = 128 * 1024;
  MachineConfig big;
  big.l2.size_bytes = 4 * 1024 * 1024;
  const auto& wl = trace::find_workload("xz");
  const auto cpi_small = generate_labeled_trace(wl, 50000, small).cpi();
  const auto cpi_big = generate_labeled_trace(wl, 50000, big).cpi();
  EXPECT_LE(cpi_big, cpi_small);
}

TEST(GroundTruth, EncodeKeepsTargets) {
  const auto labeled = generate_labeled_trace(trace::find_workload("xz"), 2000);
  const auto encoded = encode_trace(labeled);
  ASSERT_EQ(encoded.size(), labeled.size());
  EXPECT_TRUE(encoded.labeled());
  std::uint64_t enc_cycles = 0;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    enc_cycles += encoded.targets(i)[0];
  }
  std::uint64_t lab_cycles = 0;
  for (const auto& r : labeled.records) lab_cycles += r.timing.fetch_lat;
  EXPECT_EQ(enc_cycles, lab_cycles);
}

TEST(GroundTruth, AnnotationsReflectWorkingSet) {
  // lbm streams through 64MB: plenty of memory-level accesses.
  const auto lbm = generate_labeled_trace(trace::find_workload("lbm"), 30000);
  std::size_t mem_hits = 0, total_mem = 0;
  for (const auto& r : lbm.records) {
    if (trace::is_memory(r.inst.op)) {
      ++total_mem;
      mem_hits += r.ann.data_level == HitLevel::kMemory;
    }
  }
  ASSERT_GT(total_mem, 0u);
  EXPECT_GT(static_cast<double>(mem_hits) / static_cast<double>(total_mem), 0.02);

  // spei fits in L1: almost everything hits.
  // spei's 64KB working set straddles the 32KB L1 but fits in L2 easily:
  // after cold fills, almost nothing reaches memory.
  const auto spei = generate_labeled_trace(trace::find_workload("spei"), 150000);
  std::size_t cached = 0, total2 = 0;
  for (const auto& r : spei.records) {
    if (trace::is_memory(r.inst.op)) {
      ++total2;
      cached += r.ann.data_level == HitLevel::kL1 || r.ann.data_level == HitLevel::kL2;
    }
  }
  ASSERT_GT(total2, 0u);
  EXPECT_GT(static_cast<double>(cached) / static_cast<double>(total2), 0.9);
}

TEST(GroundTruth, AnnotateTraceMatchesPipeline) {
  const auto& wl = trace::find_workload("xz");
  const trace::Program prog = trace::Program::generate(wl, 1);
  trace::FunctionalSim sim(prog, 1);
  const auto insts = sim.run(2000);
  const auto annotated = annotate_trace(insts);
  ASSERT_EQ(annotated.size(), insts.size());
  // Annotation-only records carry zero timing.
  EXPECT_EQ(annotated[0].timing.fetch_lat, 0u);
}

// ------------------------------------------------------------ interval core --

TEST(IntervalCore, FasterButDifferentFromOoO) {
  const auto labeled = generate_labeled_trace(trace::find_workload("xz"), 20000);
  IntervalCore ic;
  for (const auto& r : labeled.records) ic.process(r.inst, r.ann);
  EXPECT_EQ(ic.instructions(), labeled.size());
  const double interval_cpi = ic.cpi();
  const double detailed_cpi = labeled.cpi();
  // Same order of magnitude, not equal (it is an approximation).
  EXPECT_GT(interval_cpi, detailed_cpi * 0.1);
  EXPECT_LT(interval_cpi, detailed_cpi * 5.0);
}

TEST(IntervalCore, MispredictsAddCycles) {
  MachineConfig cfg;
  IntervalCore a(cfg), b(cfg);
  DynInst br;
  br.op = OpClass::kBranch;
  Annotation good, bad;
  bad.branch_mispredicted = true;
  for (int i = 0; i < 100; ++i) {
    a.process(br, good);
    b.process(br, bad);
  }
  EXPECT_GT(b.cycles(), a.cycles());
}

}  // namespace
}  // namespace mlsim::uarch
