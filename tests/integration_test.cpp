// End-to-end integration tests: the full pipeline from workload profile to
// parallel multi-GPU simulation with accuracy recovery, plus cross-module
// consistency checks that mirror the paper's headline claims in miniature.
#include <gtest/gtest.h>

#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"
#include "core/simnet_trainer.h"
#include "core/simulator.h"
#include "uarch/interval_core.h"

namespace mlsim::core {
namespace {

TEST(Integration, FullPipelinePerBenchmark) {
  // profile -> program -> functional sim -> annotate -> OoO label ->
  // encode -> ML simulate -> error vs ground truth, for a spread of
  // benchmark characters.
  for (const std::string abbr : {"perl", "mcf", "lbm", "exch"}) {
    trace::EncodedTrace tr = labeled_trace(abbr, 5000, {}, 1, false);
    MLSimulator sim;
    const SimOutput out = sim.simulate(tr);
    EXPECT_EQ(out.instructions, tr.size()) << abbr;
    const double err = std::abs(sim.cpi_error_percent(tr, out.cpi()));
    EXPECT_LT(err, 40.0) << abbr << " CPI error too large";
  }
}

TEST(Integration, ParallelRecoveryLadderMiniaturePaperResult) {
  // The paper's Fig. 8 narrative in miniature: baseline parallel error >
  // warmup error >= warmup+correction error, against the *sequential ML*
  // simulation as reference.
  trace::EncodedTrace tr = labeled_trace("mcf", 30000, {}, 1, false);
  AnalyticPredictor pred;
  const std::size_t ctx = 32;

  ParallelSimOptions seq_opts;
  seq_opts.num_subtraces = 1;
  seq_opts.context_length = ctx;
  const double seq_cpi = ParallelSimulator(pred, seq_opts).run(tr).cpi();

  auto run_err = [&](std::size_t parts, bool warm, bool corr) {
    ParallelSimOptions o;
    o.num_subtraces = parts;
    o.context_length = ctx;
    o.warmup = warm ? ctx : 0;
    o.post_error_correction = corr;
    ParallelSimulator s(pred, o);
    return std::abs(
        ParallelSimulator::cpi_error_percent(seq_cpi, s.run(tr).cpi()));
  };

  const double base = run_err(200, false, false);
  const double warm = run_err(200, true, false);
  const double corr = run_err(200, true, true);
  EXPECT_GT(base, warm);
  EXPECT_GE(warm + 1e-12, corr);
}

TEST(Integration, TrainedCnnBeatsUntrainedOnUnseenBenchmark) {
  trace::EncodedTrace perl = labeled_trace("perl", 4000, {}, 1, false);
  trace::EncodedTrace bwav = labeled_trace("bwav", 4000, {}, 1, false);
  trace::EncodedTrace test = labeled_trace("deep", 2500, {}, 1, false);

  SimNetTrainConfig cfg;
  cfg.model.window = 17;
  cfg.model.channels = 8;
  cfg.model.hidden = 16;
  cfg.epochs = 2;

  SimNetBundle trained = train_simnet({&perl, &bwav}, cfg);
  CnnPredictor trained_pred(std::move(trained));
  const double trained_err =
      evaluate_simnet(trained_pred, test, 1500).cpi_error_percent;

  tensor::SimNetModel untrained(cfg.model, 999);
  SimNetBundle raw{std::move(untrained),
                   compute_feature_scales({&perl, &bwav})};
  CnnPredictor raw_pred(std::move(raw));
  const double raw_err = evaluate_simnet(raw_pred, test, 1500).cpi_error_percent;

  EXPECT_LT(trained_err, raw_err);
}

TEST(Integration, DesignSpaceExplorationWithoutRetraining) {
  // Table IV / Fig. 21: changing the L2 size only requires re-tracing; the
  // same predictor then reflects the configuration change in the same
  // direction as ground truth.
  uarch::MachineConfig small_l2;
  small_l2.l2.size_bytes = 128 * 1024;
  uarch::MachineConfig big_l2;
  big_l2.l2.size_bytes = 4 * 1024 * 1024;

  trace::EncodedTrace tr_small = labeled_trace("xz", 100000, small_l2, 1, false);
  trace::EncodedTrace tr_big = labeled_trace("xz", 100000, big_l2, 1, false);

  const double truth_small =
      static_cast<double>(total_cycles_from_targets(tr_small));
  const double truth_big = static_cast<double>(total_cycles_from_targets(tr_big));
  ASSERT_LT(truth_big, truth_small);  // bigger cache helps

  MLSimulator sim_small{MLSimulator::Options{.machine = small_l2}};
  MLSimulator sim_big{MLSimulator::Options{.machine = big_l2}};
  const double pred_small = sim_small.simulate(tr_small).cpi();
  const double pred_big = sim_big.simulate(tr_big).cpi();
  EXPECT_LT(pred_big, pred_small);  // simulator agrees on the trend
}

TEST(Integration, ThroughputHierarchyMatchesFigure10Shape) {
  // gem5-class detailed model < our 1-GPU simulator < our multi-GPU
  // simulator, with the interval (ZSim-class) model in between gem5 and
  // the parallel configuration — the Fig. 10 ordering.
  // Partitions must stay long relative to the warmup, or the redundant
  // warmup work caps scaling (the effect §VI-C reports for short traces).
  trace::EncodedTrace tr = labeled_trace("xz", 300000, {}, 1, false);
  AnalyticPredictor pred;

  // Detailed-model throughput measured for real on this host, normalised
  // into the modeled-time frame via the paper's gem5 reference (0.198
  // MIPS): we only check ordering of modeled numbers here.
  ParallelSimOptions one;
  one.num_subtraces = 1024;
  one.num_gpus = 1;
  one.context_length = 32;
  one.warmup = 32;
  one.assumed_flops_per_window = 3'190'000;
  const double one_gpu_mips = ParallelSimulator(pred, one).run(tr).mips();

  ParallelSimOptions eight = one;
  eight.num_subtraces = 8 * 1024;
  eight.num_gpus = 8;
  const double eight_gpu_mips = ParallelSimulator(pred, eight).run(tr).mips();

  EXPECT_GT(one_gpu_mips, 0.198);  // faster than gem5's measured rate
  EXPECT_GT(eight_gpu_mips, one_gpu_mips * 3);
}

TEST(Integration, SameSeedFullyReproducible) {
  trace::EncodedTrace a = labeled_trace("x264", 3000, {}, 5, false);
  trace::EncodedTrace b = labeled_trace("x264", 3000, {}, 5, false);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.raw_features(), b.raw_features());
  EXPECT_EQ(a.raw_targets(), b.raw_targets());

  MLSimulator sim;
  EXPECT_EQ(sim.simulate(a).cycles, sim.simulate(b).cycles);
}

}  // namespace
}  // namespace mlsim::core
