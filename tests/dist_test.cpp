// Distributed coordinator/worker cluster (docs/DISTRIBUTED.md): bit-identical
// merge vs the in-process engine, in-flight recovery from killed and hung
// workers, idempotent duplicate handling, transport-fault containment, and
// routing service requests through a remote cluster.
//
// Most tests run workers as in-process threads (the worker loop is identical
// either way and failures print); the fork-based tests exercise real process
// isolation and are skipped under ThreadSanitizer, which cannot follow forks.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <sstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "core/shard.h"
#include "device/fault.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/result_cache.h"
#include "dist/worker.h"
#include "net/frame.h"
#include "obs/obs.h"
#include "net/socket.h"
#include "service/service.h"
#include "trace/trace.h"
#include "uarch/ground_truth.h"

#if defined(__SANITIZE_THREAD__)
#define MLSIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MLSIM_TSAN 1
#endif
#endif

namespace mlsim::dist {
namespace {

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

core::ParallelSimOptions base_options(std::size_t parts, std::size_t gpus) {
  core::ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = gpus;
  o.context_length = 16;
  o.warmup = 16;
  o.post_error_correction = true;
  o.record_predictions = true;
  return o;
}

/// The in-process reference: same engine, same analytic predictor the
/// workers use, so the distributed merge must reproduce it bit for bit.
core::ParallelSimResult local_reference(const trace::EncodedTrace& tr,
                                        const core::ParallelSimOptions& o) {
  core::AnalyticPredictor pred;
  core::ParallelSimulator sim(pred, o);
  return sim.run(tr);
}

void expect_identical(const core::ParallelSimResult& a,
                      const core::ParallelSimResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.corrected_instructions, b.corrected_instructions);
  EXPECT_EQ(a.warmup_instructions, b.warmup_instructions);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i], b.predictions[i]) << "at " << i;
  }
}

/// Worker thread that swallows the teardown-path transport errors (the
/// coordinator and its listener are torn down while workers may still be
/// draining or reconnecting).
std::thread worker_thread(std::uint16_t port, int heartbeat_ms = 50,
                          bool reconnect = true) {
  return std::thread([port, heartbeat_ms, reconnect] {
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = heartbeat_ms;
    cfg.reconnect_after_kill = reconnect;
    try {
      run_worker(cfg);
    } catch (const IoError&) {
      // Listener closed mid-reconnect; expected during teardown.
    }
  });
}

/// What a scripted (fake) worker learns from its handshake.
struct FakeSession {
  net::TcpConn conn;
  WelcomeDecoded welcome;
  device::FaultInjector injector;
  core::ParallelSimOptions opts;
  core::ShardPlan plan;
};

/// Connect + Hello + Welcome, like run_worker's handshake.
std::unique_ptr<FakeSession> fake_join(std::uint16_t port) {
  auto s = std::make_unique<FakeSession>();
  s->conn = net::TcpConn::connect("127.0.0.1", port);
  net::send_frame(s->conn, encode_hello(kProtocolVersion));
  std::string payload;
  while (true) {
    if (!net::recv_frame(s->conn, payload)) {
      throw IoError("coordinator closed during fake handshake");
    }
    if (peek_type(payload, "fake") == MsgType::kWelcome) break;
  }
  s->welcome = decode_welcome(payload, "fake");
  s->injector = device::FaultInjector(s->welcome.config.fault_options());
  s->opts = s->welcome.config.to_options(
      s->welcome.config.faults_enabled ? &s->injector : nullptr);
  s->plan = core::ShardPlan::make(s->welcome.trace.size(), s->opts);
  return s;
}

/// Block until an Assign for this session arrives (skipping anything else).
AssignMsg fake_await_assign(FakeSession& s) {
  std::string payload;
  while (true) {
    if (!net::recv_frame(s.conn, payload)) {
      throw IoError("coordinator closed while fake awaited an assignment");
    }
    if (peek_type(payload, "fake") != MsgType::kAssign) continue;
    const AssignMsg a = decode_assign(payload, "fake");
    if (a.session == s.welcome.session) return a;
  }
}

/// Compute a shard exactly as a real worker would.
core::ShardOutcome fake_compute(FakeSession& s, const AssignMsg& a) {
  core::AnalyticPredictor pred;
  core::ShardEngine engine(pred, s.welcome.trace, s.opts, s.plan);
  for (std::size_t p = a.part_lo; p < a.part_hi; ++p) engine.run_partition(p);
  return engine.block_outcome(a.part_lo, a.part_hi);
}

// ---- bit-identity ----------------------------------------------------------

TEST(Dist, TwoWorkersBitIdenticalToInProcess) {
  const auto tr = make_trace("xz", 20000);
  const auto opts = base_options(8, 4);  // 4 shards of 2 partitions
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  // No staleness in this scenario: generous timeout so sanitizer-speed
  // trace decode can't trip a spurious reassignment.
  co.heartbeat_timeout_ms = 30000;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w1 = worker_thread(coord->port());
  std::thread w2 = worker_thread(coord->port());

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_EQ(coord->stats().workers_joined, 2u);
  EXPECT_EQ(coord->stats().shards_completed, 4u);
  EXPECT_EQ(coord->stats().reassignments, 0u);

  coord.reset();  // Shutdown + listener close so the threads exit
  w1.join();
  w2.join();
}

TEST(Dist, FourWorkersManyShardsBitIdentical) {
  const auto tr = make_trace("mcf", 16000);
  auto opts = base_options(12, 6);  // 6 shards
  opts.record_context_counts = true;
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.heartbeat_timeout_ms = 30000;  // no staleness in this scenario
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::vector<std::thread> ws;
  for (int i = 0; i < 4; ++i) ws.push_back(worker_thread(coord->port()));

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  ASSERT_EQ(local.context_counts.size(), out.context_counts.size());
  EXPECT_EQ(local.context_counts, out.context_counts);
  EXPECT_EQ(coord->stats().shards_completed, 6u);

  coord.reset();
  for (auto& w : ws) w.join();
}

// ---- in-flight recovery ----------------------------------------------------

TEST(Dist, WorkerKillScheduleRecoversAndStaysBitIdentical) {
  const auto tr = make_trace("xz", 20000);
  auto opts = base_options(8, 8);  // 8 single-partition shards
  device::FaultOptions fo;
  fo.seed = 1;
  fo.worker_kill_rate = 0.5;
  const device::FaultInjector injector(fo);
  opts.faults = &injector;
  // worker_kill_rate only decides *who dies while computing*, never what a
  // shard computes — the local reference with the same injector is inert.
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 1000;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w1 = worker_thread(coord->port());
  std::thread w2 = worker_thread(coord->port());

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  // Seed 1 @ 50% kills several of the 8 first attempts; every one must have
  // been reassigned and recomputed.
  EXPECT_GT(coord->stats().reassignments, 0u);
  EXPECT_GT(coord->stats().workers_lost, 0u);
  EXPECT_EQ(coord->stats().shards_completed, 8u);

  coord.reset();
  w1.join();
  w2.join();
}

TEST(Dist, HungWorkerShardIsReassigned) {
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 1;
  co.heartbeat_timeout_ms = 200;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);

  // The hung worker joins first, receives a shard, and never speaks again.
  std::thread hung([port = coord->port()] {
    try {
      auto s = fake_join(port);
      (void)fake_await_assign(*s);
      std::this_thread::sleep_for(std::chrono::milliseconds(1500));  // silent
    } catch (const IoError&) {
    }
  });
  std::thread rescuer([port = coord->port()] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      run_worker(cfg);
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_GT(coord->stats().reassignments, 0u);

  coord.reset();
  hung.join();
  rescuer.join();
}

// ---- duplicate & late deliveries -------------------------------------------

TEST(Dist, DuplicateResultIsDroppedIdempotently) {
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0));
  // One scripted worker computes both shards, delivering the first result
  // twice. The duplicate must be counted and ignored, not merged twice.
  std::thread fake([port = coord->port()] {
    try {
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      const auto outcome = fake_compute(*s, a);
      const std::string result =
          encode_result({a.session, a.shard, a.attempt}, outcome);
      net::send_frame(s->conn, result);
      net::send_frame(s->conn, result);  // duplicate delivery
      const AssignMsg b = fake_await_assign(*s);
      net::send_frame(s->conn, encode_result({b.session, b.shard, b.attempt},
                                             fake_compute(*s, b)));
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_EQ(coord->stats().duplicates_dropped, 1u);
  EXPECT_EQ(coord->stats().shards_completed, 2u);

  coord.reset();
  fake.join();
}

TEST(Dist, LateResultAfterReassignmentIsNotMergedTwice) {
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // shards: s0, s1
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.heartbeat_timeout_ms = 300;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const std::uint16_t port = coord->port();

  // `slow` takes a shard and goes silent past the heartbeat timeout; the
  // shard is reassigned to `spare` and completed there. When `slow` finally
  // delivers, the shard is already Done — exactly one of the two deliveries
  // for that shard may be merged.
  std::thread slow([port] {
    try {
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      const auto outcome = fake_compute(*s, a);
      std::this_thread::sleep_for(std::chrono::milliseconds(900));
      net::send_frame(s->conn,
                      encode_result({a.session, a.shard, a.attempt}, outcome));
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    } catch (const IoError&) {
    }
  });
  // `holder` keeps the other shard in flight (with heartbeats) long enough
  // that the coordinator is still listening when the late result lands.
  std::thread holder([port] {
    try {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      const auto outcome = fake_compute(*s, a);
      HeartbeatMsg hb;
      hb.session = a.session;
      hb.shard = a.shard;
      for (int i = 0; i < 32; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        net::send_frame(s->conn, encode_heartbeat(hb));
      }
      net::send_frame(s->conn,
                      encode_result({a.session, a.shard, a.attempt}, outcome));
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } catch (const IoError&) {
    }
  });
  // `spare` joins idle and picks up the reassigned shard.
  std::thread spare([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      run_worker(cfg);
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_GT(coord->stats().reassignments, 0u);
  // At least `slow`'s late delivery must be dropped. Under heavy suite load
  // (TSan, -j8) a scheduler stall can push `holder` past the heartbeat
  // timeout too, adding a benign extra requeue + duplicate — the proof that
  // nothing merged twice is shards_completed plus the bit-identical CPI.
  EXPECT_GE(coord->stats().duplicates_dropped, 1u);
  EXPECT_EQ(coord->stats().shards_completed, 2u);

  coord.reset();
  slow.join();
  holder.join();
  spare.join();
}

// ---- transport faults ------------------------------------------------------

TEST(Dist, TruncatedFrameDropsWorkerAndRunStillCompletes) {
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 1);  // a single shard
  const auto local = local_reference(tr, opts);

  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0));
  // The garbler takes the shard, then emits a torn frame and vanishes. The
  // coordinator must diagnose it as transport loss (typed IoError internally,
  // never a hang), drop the worker, and reassign.
  std::thread garbler([port = coord->port()] {
    try {
      auto s = fake_join(port);
      (void)fake_await_assign(*s);
      const std::string frame = wire::seal(net::kFrameMagic, "half a result");
      s->conn.send_all(frame.data(), frame.size() / 2);
      s->conn.close();
    } catch (const IoError&) {
    }
  });
  std::thread rescuer([port = coord->port()] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      run_worker(cfg);
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_GE(coord->stats().workers_lost, 1u);
  EXPECT_GE(coord->stats().reassignments, 1u);

  coord.reset();
  garbler.join();
  rescuer.join();
}

TEST(Dist, AssignmentBudgetExhaustionIsCheckError) {
  const auto tr = make_trace("xz", 6000);
  const auto opts = base_options(4, 1);  // a single shard
  CoordinatorOptions co;
  co.max_assign_attempts = 1;
  co.heartbeat_timeout_ms = 200;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const std::uint16_t port = coord->port();

  // First fake takes the only assignment and dies; the idle second fake
  // makes the coordinator try to reassign — past the budget of 1.
  std::thread dying([port] {
    try {
      auto s = fake_join(port);
      (void)fake_await_assign(*s);
      s->conn.abort();
    } catch (const IoError&) {
    }
  });
  std::thread idle([port] {
    try {
      auto s = fake_join(port);
      std::string payload;
      while (net::recv_frame(s->conn, payload)) {
      }  // drain until the coordinator goes away
    } catch (const IoError&) {
    }
  });

  EXPECT_THROW(coord->run(tr, opts), CheckError);
  coord.reset();
  dying.join();
  idle.join();
}

TEST(Dist, ProtocolVersionMismatchIsRejected) {
  // Coordinator side: a wrong-version Hello is Rejected and never joins.
  const auto tr = make_trace("xz", 6000);
  const auto opts = base_options(2, 1);
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0));
  std::thread ancient([port = coord->port()] {
    try {
      net::TcpConn conn = net::TcpConn::connect("127.0.0.1", port);
      net::send_frame(conn, encode_hello(kProtocolVersion + 7));
      std::string payload;
      ASSERT_TRUE(net::recv_frame(conn, payload));
      EXPECT_EQ(peek_type(payload, "fake"), MsgType::kReject);
      EXPECT_NE(decode_reject(payload, "fake").find("version"),
                std::string::npos);
    } catch (const IoError&) {
    }
  });
  std::thread w = worker_thread(coord->port());
  const auto out = coord->run(tr, opts);
  EXPECT_EQ(out.total_cycles, local_reference(tr, opts).total_cycles);
  EXPECT_EQ(coord->stats().workers_rejected, 1u);
  coord.reset();
  ancient.join();
  w.join();

  // Worker side: a Reject surfaces as a typed CheckError, not a retry loop.
  net::TcpListener fake_coord = net::TcpListener::bind(0);
  std::thread rejecting([&fake_coord] {
    auto conn = fake_coord.accept(5000);
    ASSERT_TRUE(conn.has_value());
    std::string payload;
    ASSERT_TRUE(net::recv_frame(*conn, payload));
    net::send_frame(*conn, encode_reject("too new for me"));
  });
  WorkerConfig cfg;
  cfg.port = fake_coord.port();
  EXPECT_THROW(run_worker(cfg), CheckError);
  rejecting.join();
}


// ---- protocol v2 (telemetry fields) and v1 compatibility --------------------

TEST(DistProtocol, AssignEncodesTraceContextPerPeerVersion) {
  AssignMsg m;
  m.session = 11;
  m.shard = 2;
  m.part_lo = 4;
  m.part_hi = 8;
  m.attempt = 3;
  m.trace_id = 0xfeedULL;
  m.parent_span = 0x1234ULL;

  const AssignMsg v2 = decode_assign(encode_assign(m), "test");
  EXPECT_EQ(v2.session, m.session);
  EXPECT_EQ(v2.shard, m.shard);
  EXPECT_EQ(v2.part_lo, m.part_lo);
  EXPECT_EQ(v2.part_hi, m.part_hi);
  EXPECT_EQ(v2.attempt, m.attempt);
  EXPECT_EQ(v2.trace_id, m.trace_id);
  EXPECT_EQ(v2.parent_span, m.parent_span);

  // A v1 peer gets a byte-exact v1 payload: no telemetry tail at all, and
  // a v2 decoder reads it back with the fields defaulted.
  const std::string v1_payload = encode_assign(m, 1);
  EXPECT_EQ(v1_payload.size() + 16, encode_assign(m).size());
  const AssignMsg v1 = decode_assign(v1_payload, "test");
  EXPECT_EQ(v1.shard, m.shard);
  EXPECT_EQ(v1.trace_id, 0u);
  EXPECT_EQ(v1.parent_span, 0u);
}

TEST(DistProtocol, ResultCarriesSpansAndDecodesV1Payloads) {
  core::ShardOutcome outcome;  // contents don't matter for the envelope
  std::vector<obs::SpanRecord> spans(2);
  spans[0].name = "worker/partition";
  spans[0].ts_ns = 100;
  spans[0].dur_ns = 50;
  spans[0].depth = 1;
  spans[0].tid = 4;
  spans[1].name = "worker/partition";
  spans[1].ts_ns = 200;
  spans[1].dur_ns = 60;

  const ResultHeader h{21, 1, 2};
  const ResultDecoded d =
      decode_result(encode_result(h, outcome, 0xbeefULL, spans), "test");
  EXPECT_EQ(d.header.session, 21u);
  EXPECT_EQ(d.header.shard, 1u);
  EXPECT_EQ(d.header.attempt, 2u);
  EXPECT_EQ(d.trace_id, 0xbeefULL);
  ASSERT_EQ(d.spans.size(), 2u);
  EXPECT_EQ(d.spans[0].name, "worker/partition");
  EXPECT_EQ(d.spans[0].ts_ns, 100u);
  EXPECT_EQ(d.spans[0].dur_ns, 50u);
  EXPECT_EQ(d.spans[0].depth, 1u);
  EXPECT_EQ(d.spans[0].tid, 4u);
  EXPECT_EQ(d.spans[1].ts_ns, 200u);

  // What a v1 worker puts on the wire is today's encoding minus the
  // trailing trace_id + span count; the decoder defaults both.
  std::string v1_payload = encode_result(h, outcome);
  v1_payload.resize(v1_payload.size() - 16);
  const ResultDecoded v1 = decode_result(v1_payload, "test");
  EXPECT_EQ(v1.header.shard, 1u);
  EXPECT_EQ(v1.trace_id, 0u);
  EXPECT_TRUE(v1.spans.empty());
}

TEST(DistProtocol, HeartbeatCarriesBusyRatioAndRollups) {
  HeartbeatMsg m;
  m.session = 5;
  m.shard = kIdleShard;
  m.busy_ratio = 0.625;
  m.rollups = {{0, 41}, {2, 7}};

  const HeartbeatMsg v2 = decode_heartbeat(encode_heartbeat(m), "test");
  EXPECT_EQ(v2.session, 5u);
  EXPECT_EQ(v2.shard, kIdleShard);
  EXPECT_DOUBLE_EQ(v2.busy_ratio, 0.625);
  ASSERT_EQ(v2.rollups.size(), 2u);
  EXPECT_EQ(v2.rollups[0].id, 0u);
  EXPECT_EQ(v2.rollups[0].delta, 41u);
  EXPECT_EQ(v2.rollups[1].id, 2u);
  EXPECT_EQ(v2.rollups[1].delta, 7u);

  // v1 heartbeat: no telemetry tail; decoder reports "not reported".
  const HeartbeatMsg v1 = decode_heartbeat(encode_heartbeat(m, 1), "test");
  EXPECT_EQ(v1.session, 5u);
  EXPECT_LT(v1.busy_ratio, 0.0);
  EXPECT_TRUE(v1.rollups.empty());
}

TEST(DistProtocol, GoodbyeRoundTrips) {
  GoodbyeMsg m;
  m.session = 77;
  m.shard = 3;
  const GoodbyeMsg d = decode_goodbye(encode_goodbye(m), "test");
  EXPECT_EQ(d.session, 77u);
  EXPECT_EQ(d.shard, 3u);

  GoodbyeMsg idle;
  idle.session = 9;
  idle.shard = kIdleShard;
  EXPECT_EQ(decode_goodbye(encode_goodbye(idle), "test").shard, kIdleShard);
}

// ---- protocol v4 (rejoin token) --------------------------------------------

TEST(DistProtocol, WelcomeTokenIsTrailingOptional) {
  const auto tr = make_trace("xz", 2000);
  RunConfig cfg;
  cfg.num_subtraces = 4;
  cfg.num_gpus = 2;

  const std::string v4 = encode_welcome(11, 0xabcdULL, cfg, tr, 0x5eedULL);
  const WelcomeDecoded d = decode_welcome(v4, "test");
  EXPECT_EQ(d.session, 11u);
  EXPECT_EQ(d.fingerprint, 0xabcdULL);
  EXPECT_EQ(d.token, 0x5eedULL);

  // A pre-v4 peer gets a byte-exact legacy payload — no token tail at all,
  // even when one was supplied — and a v4 decoder defaults it to 0.
  const std::string legacy = encode_welcome(11, 0xabcdULL, cfg, tr,
                                            0x5eedULL, 3);
  EXPECT_EQ(legacy.size() + 8, v4.size());
  EXPECT_EQ(legacy, v4.substr(0, legacy.size()));
  EXPECT_EQ(decode_welcome(legacy, "test").token, 0u);
}

TEST(DistProtocol, RejoinRoundTrips) {
  RejoinMsg m;
  m.version = kProtocolVersion;
  m.token = 0xfeedbeefULL;
  m.session = 42;
  m.shard = 7;
  const std::string payload = encode_rejoin(m);
  EXPECT_EQ(peek_type(payload, "test"), MsgType::kRejoin);
  const RejoinMsg d = decode_rejoin(payload, "test");
  EXPECT_EQ(d.version, kProtocolVersion);
  EXPECT_EQ(d.token, 0xfeedbeefULL);
  EXPECT_EQ(d.session, 42u);
  EXPECT_EQ(d.shard, 7u);
}

TEST(Dist, RejoiningWorkerReattachesAndRunStaysBitIdentical) {
  // A scripted v4 worker takes a shard, drops its connection mid-flight,
  // then reconnects with the session token (Rejoin) and finishes the run.
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.heartbeat_timeout_ms = 30000;
  co.poll_ms = 10;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread fake([port = coord->port()] {
    try {
      auto s = fake_join(port);
      EXPECT_NE(s->welcome.token, 0u);
      const AssignMsg a = fake_await_assign(*s);
      s->conn.abort();  // transport loss mid-shard, no Result delivered

      // Re-attach: same token, the in-flight shard declared.
      auto r = std::make_unique<FakeSession>();
      r->conn = net::TcpConn::connect("127.0.0.1", port);
      net::send_frame(r->conn, encode_rejoin({kProtocolVersion,
                                              s->welcome.token,
                                              s->welcome.session, a.shard}));
      std::string payload;
      while (true) {
        if (!net::recv_frame(r->conn, payload)) {
          throw IoError("coordinator closed during rejoin");
        }
        if (peek_type(payload, "fake") == MsgType::kWelcome) break;
      }
      r->welcome = decode_welcome(payload, "fake");
      EXPECT_EQ(r->welcome.token, s->welcome.token);
      r->opts = r->welcome.config.to_options(nullptr);
      r->plan = core::ShardPlan::make(r->welcome.trace.size(), r->opts);
      for (int shard = 0; shard < 2; ++shard) {
        const AssignMsg b = fake_await_assign(*r);
        net::send_frame(r->conn, encode_result({b.session, b.shard, b.attempt},
                                               fake_compute(*r, b)));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_GE(coord->stats().workers_rejoined, 1u);
  EXPECT_EQ(coord->stats().shards_completed, 2u);
  coord.reset();
  fake.join();
}

TEST(Dist, V1WorkerCompletesRunAndGetsV1Frames) {
  // End-to-end backward compatibility: a worker that Hellos with protocol
  // v1 joins, receives byte-exact v1 Assigns (no trace context even though
  // the coordinator is tracing), answers with v1 Results and Heartbeats,
  // and the run still merges bit-identically.
  if (obs::kCompiledIn) {
    obs::set_enabled(true);  // make the coordinator derive a trace id
    obs::reset_trace();
  }
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0));
  std::thread fake([port = coord->port()] {
    try {
      auto s = std::make_unique<FakeSession>();
      s->conn = net::TcpConn::connect("127.0.0.1", port);
      net::send_frame(s->conn, encode_hello(1));  // ancient but supported
      std::string payload;
      while (true) {
        if (!net::recv_frame(s->conn, payload)) {
          throw IoError("coordinator closed during fake handshake");
        }
        if (peek_type(payload, "fake") == MsgType::kWelcome) break;
      }
      s->welcome = decode_welcome(payload, "fake");
      s->injector = device::FaultInjector(s->welcome.config.fault_options());
      s->opts = s->welcome.config.to_options(
          s->welcome.config.faults_enabled ? &s->injector : nullptr);
      s->plan = core::ShardPlan::make(s->welcome.trace.size(), s->opts);
      for (int shard = 0; shard < 2; ++shard) {
        const AssignMsg a = fake_await_assign(*s);
        // The coordinator must not have leaked v2 fields to a v1 peer.
        EXPECT_EQ(a.trace_id, 0u);
        EXPECT_EQ(a.parent_span, 0u);
        HeartbeatMsg hb;
        hb.session = a.session;
        hb.shard = a.shard;
        net::send_frame(s->conn, encode_heartbeat(hb, 1));
        std::string result = encode_result({a.session, a.shard, a.attempt},
                                           fake_compute(*s, a));
        result.resize(result.size() - 16);  // v1: no trace_id / span tail
        net::send_frame(s->conn, result);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_EQ(coord->stats().shards_completed, 2u);
  coord.reset();
  fake.join();
  if (obs::kCompiledIn) obs::set_enabled(false);
}

TEST(Dist, HeartbeatRollupsFoldIntoClusterMetrics) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::reset_trace();
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  auto& reg = obs::default_registry();
  const std::uint64_t instr_before =
      reg.counter(obs::names::kClusterWorkerInstructions).value();
  const std::uint64_t retries_before =
      reg.counter(obs::names::kClusterWorkerRetries).value();

  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0));
  std::thread fake([port = coord->port()] {
    try {
      auto s = fake_join(port);
      for (int shard = 0; shard < 2; ++shard) {
        const AssignMsg a = fake_await_assign(*s);
        HeartbeatMsg hb;
        hb.session = a.session;
        hb.shard = a.shard;
        if (shard == 0) {
          hb.busy_ratio = 0.75;
          hb.rollups = {{0, 5}, {2, 7}, {kNumRollupCounters + 9, 1}};
        }
        net::send_frame(s->conn, encode_heartbeat(hb));
        net::send_frame(s->conn, encode_result({a.session, a.shard, a.attempt},
                                               fake_compute(*s, a)));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  EXPECT_EQ(out.total_cycles, local_reference(tr, opts).total_cycles);
  // The worker-shipped deltas landed in the cluster rollups (the unknown
  // positional id was ignored), and the busy report drove the gauge.
  EXPECT_EQ(reg.counter(obs::names::kClusterWorkerInstructions).value(),
            instr_before + 5);
  EXPECT_EQ(reg.counter(obs::names::kClusterWorkerRetries).value(),
            retries_before + 7);
  EXPECT_DOUBLE_EQ(reg.gauge(obs::names::kClusterWorkerBusyRatio).value(),
                   0.75);
  // The health document exposes the per-worker ratio; appending
  // flight-recorder post-mortems keeps it one well-formed JSON object.
  const std::string health = coord->cluster_json();
  EXPECT_NE(health.find("\"busy_ratio\":0.75"), std::string::npos) << health;
  const std::string with_errors = coord->cluster_json(2);
  EXPECT_NE(with_errors.find("\"last_errors\":["), std::string::npos);
  EXPECT_EQ(with_errors.back(), '}');
  coord.reset();
  fake.join();
  obs::set_enabled(false);
}

// ---- elasticity & churn ----------------------------------------------------

TEST(Dist, GoodbyeRequeuesInFlightShardWithoutTimeout) {
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  // The requeue must come from the Goodbye, not from staleness: a timeout
  // this large can never fire inside the test.
  co.heartbeat_timeout_ms = 30000;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const std::uint16_t port = coord->port();

  // Takes a shard, then announces a planned departure instead of computing.
  std::thread leaver([port] {
    try {
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      net::send_frame(s->conn, encode_goodbye({a.session, a.shard}));
      std::string payload;
      while (net::recv_frame(s->conn, payload)) {
      }  // until the coordinator closes the connection
    } catch (const IoError&) {
    }
  });
  std::thread rescuer([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      run_worker(cfg);
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  const auto st = coord->stats();
  EXPECT_EQ(st.workers_departed, 1u);
  EXPECT_EQ(st.workers_lost, 0u);  // a Goodbye is not a loss
  EXPECT_GE(st.reassignments, 1u);
  EXPECT_EQ(st.shards_completed, 2u);

  coord.reset();
  leaver.join();
  rescuer.join();
}

TEST(Dist, WorkerLeaveAfterShardsDepartsCleanly) {
  const auto tr = make_trace("xz", 20000);
  const auto opts = base_options(8, 4);  // 4 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 30000;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);

  // A real worker that drains one shard and then leaves on purpose (the
  // scale-down / supervisor-restart path); the stayer finishes the rest.
  WorkerStats leaver_stats;
  std::thread leaver([&leaver_stats, port = coord->port()] {
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    cfg.leave_after_shards = 1;
    try {
      leaver_stats = run_worker(cfg);
    } catch (const IoError&) {
    }
  });
  std::thread stayer = worker_thread(coord->port());

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  const auto st = coord->stats();
  EXPECT_EQ(st.shards_completed, 4u);
  EXPECT_EQ(st.workers_departed, 1u);
  EXPECT_EQ(st.workers_lost, 0u);
  leaver.join();  // returned on its own after the Goodbye
  EXPECT_EQ(leaver_stats.shards_computed, 1u);

  coord.reset();
  stayer.join();
}

TEST(Dist, WorkerJoinsMidRunAndReceivesWork) {
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 1;
  co.heartbeat_timeout_ms = 30000;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const std::uint16_t port = coord->port();

  // The founding member holds its shard long enough that the run is still
  // in flight when the second worker joins; the joiner must get the other
  // shard through the normal Hello/Welcome handshake, mid-run.
  std::thread holder([port] {
    try {
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      const auto outcome = fake_compute(*s, a);
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      net::send_frame(s->conn,
                      encode_result({a.session, a.shard, a.attempt}, outcome));
      std::string payload;
      while (net::recv_frame(s->conn, payload)) {
      }
    } catch (const IoError&) {
    }
  });
  WorkerStats joiner_stats;
  std::thread joiner([&joiner_stats, port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      joiner_stats = run_worker(cfg);
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_EQ(coord->stats().workers_joined, 2u);
  EXPECT_EQ(coord->stats().shards_completed, 2u);

  coord.reset();
  holder.join();
  joiner.join();
  EXPECT_GE(joiner_stats.shards_computed, 1u);
}

TEST(Dist, StolenShardMergesBitIdentical) {
  const auto tr = make_trace("xz", 20000);
  const auto opts = base_options(8, 4);  // 4 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 30000;  // staleness must not be the rescuer
  co.poll_ms = 20;
  co.steal = true;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const std::uint16_t port = coord->port();

  // The straggler takes a shard and never delivers; the fast worker clears
  // the other three (establishing a fleet pace), goes idle, and the
  // coordinator must steal the held shard onto it.
  std::thread straggler([port] {
    try {
      auto s = fake_join(port);
      (void)fake_await_assign(*s);
      std::string payload;
      while (net::recv_frame(s->conn, payload)) {
      }  // hold the shard until the coordinator goes away
    } catch (const IoError&) {
    }
  });
  std::thread fast([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      run_worker(cfg);
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  const auto st = coord->stats();
  EXPECT_GE(st.steals, 1u);
  EXPECT_EQ(st.shards_completed, 4u);
  EXPECT_EQ(st.reassignments, 0u);  // stealing, not presumed-dead requeueing

  coord.reset();
  straggler.join();
  fast.join();
}

TEST(Dist, SpeculativeDuplicatesBothCompleteBitIdentical) {
  const auto tr = make_trace("xz", 10000);
  const auto opts = base_options(10, 5);  // 5 shards of 2 partitions
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 4;
  co.heartbeat_timeout_ms = 30000;
  co.poll_ms = 20;
  co.speculate_pct = 50.0;  // duplicate anything slower than the median
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const std::uint16_t port = coord->port();

  // Join order is choreographed: the two stragglers take shards 0 and 1;
  // the scripted twin joins last, so the rebalancer's idle pick hands it
  // the first speculative duplicate (it sits on it), while the real worker
  // gets the second and completes it fast. Straggler B then delivers its
  // own copy of an already-completed shard while the run is still alive —
  // both copies complete, exactly one is merged.
  std::thread slow_a([port] {
    try {
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      const auto outcome = fake_compute(*s, a);
      std::this_thread::sleep_for(std::chrono::milliseconds(4500));
      net::send_frame(s->conn,
                      encode_result({a.session, a.shard, a.attempt}, outcome));
      std::string payload;
      while (net::recv_frame(s->conn, payload)) {
      }
    } catch (const IoError&) {
    }
  });
  std::thread slow_b([port] {
    try {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      const auto outcome = fake_compute(*s, a);
      std::this_thread::sleep_for(std::chrono::milliseconds(2500));
      net::send_frame(s->conn,
                      encode_result({a.session, a.shard, a.attempt}, outcome));
      std::string payload;
      while (net::recv_frame(s->conn, payload)) {
      }
    } catch (const IoError&) {
    }
  });
  std::thread fast([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      run_worker(cfg);
    } catch (const IoError&) {
    }
  });
  std::thread twin([port] {
    try {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      auto s = fake_join(port);
      while (true) {
        const AssignMsg a = fake_await_assign(*s);
        const auto outcome = fake_compute(*s, a);
        if (a.shard <= 1) {
          // A speculative copy of a straggler's shard: hold it so the
          // original owners' deliveries land while the run is in flight.
          std::this_thread::sleep_for(std::chrono::milliseconds(4000));
        }
        net::send_frame(
            s->conn, encode_result({a.session, a.shard, a.attempt}, outcome));
      }
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  const auto st = coord->stats();
  EXPECT_GE(st.speculations, 2u);
  EXPECT_GE(st.duplicates_dropped, 1u);
  EXPECT_EQ(st.shards_completed, 5u);

  coord.reset();
  slow_a.join();
  slow_b.join();
  fast.join();
  twin.join();
}

TEST(Dist, RepeatedRunIsServedEntirelyFromResultCache) {
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.heartbeat_timeout_ms = 30000;
  co.result_cache_entries = 64;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w = worker_thread(coord->port());

  const auto first = coord->run(tr, opts);
  expect_identical(local, first);
  const auto s1 = coord->stats();
  EXPECT_EQ(s1.cache_hits, 0u);
  EXPECT_EQ(s1.cache_misses, 2u);
  EXPECT_EQ(s1.shards_dispatched, 2u);

  // The identical run again: every shard is served from the cache, nothing
  // is dispatched, and the merge is still bit-identical.
  const auto second = coord->run(tr, opts);
  expect_identical(local, second);
  const auto s2 = coord->stats();
  EXPECT_EQ(s2.cache_hits, 2u);
  EXPECT_EQ(s2.shards_dispatched, s1.shards_dispatched);
  EXPECT_EQ(s2.shards_completed, s1.shards_completed);

  coord.reset();
  w.join();
}

TEST(Dist, ResultCacheNeverHitsAcrossDifferentFingerprints) {
  const auto tr = make_trace("xz", 8000);
  const auto opts_a = base_options(4, 2);  // 2 shards
  auto opts_b = base_options(4, 2);
  opts_b.context_length = 32;  // different run fingerprint, same shape

  CoordinatorOptions co;
  co.heartbeat_timeout_ms = 30000;
  co.result_cache_entries = 64;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w = worker_thread(coord->port());

  expect_identical(local_reference(tr, opts_a), coord->run(tr, opts_a));
  // Different options address different content: all misses, real dispatch,
  // and the result matches ITS OWN reference (a stale hit would not).
  expect_identical(local_reference(tr, opts_b), coord->run(tr, opts_b));
  const auto st = coord->stats();
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.cache_misses, 4u);
  EXPECT_EQ(st.shards_dispatched, 4u);

  // Back to the first fingerprint: its entries are still addressable.
  expect_identical(local_reference(tr, opts_a), coord->run(tr, opts_a));
  EXPECT_EQ(coord->stats().cache_hits, 2u);

  coord.reset();
  w.join();
}

TEST(ResultCache, LruEvictionAndAccounting) {
  ShardResultCache cache(2);
  EXPECT_TRUE(cache.enabled());
  const ShardResultCache::Key k1{1, 0, 0, 2};
  const ShardResultCache::Key k2{1, 1, 2, 4};
  const ShardResultCache::Key k3{2, 0, 0, 2};

  EXPECT_EQ(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  core::ShardOutcome o;
  o.part_lo = 7;  // a recognizable payload
  cache.insert(k1, o);
  o.part_lo = 8;
  cache.insert(k2, o);
  EXPECT_EQ(cache.entries(), 2u);

  // Touch k1 so k2 becomes least-recently-used, then overflow: k2 goes.
  ASSERT_NE(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.lookup(k1)->part_lo, 7u);
  cache.insert(k3, o);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(k2), nullptr);
  ASSERT_NE(cache.lookup(k3), nullptr);
  ASSERT_NE(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 2u);

  // Disabled cache: lookups miss uncounted, inserts are dropped.
  ShardResultCache off(0);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.lookup(k1), nullptr);
  off.insert(k1, o);
  EXPECT_EQ(off.entries(), 0u);
  EXPECT_EQ(off.misses(), 0u);
}

TEST(Dist, MixedFleetBusyGaugeExcludesV1Workers) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::reset_trace();
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 30000;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const std::uint16_t port = coord->port();

  // A v1 relic that nonetheless ships a v2-shaped heartbeat claiming 90%
  // busy: the version gate (not just a sign check) must keep it out of the
  // fleet-mean gauge.
  std::thread relic([port] {
    try {
      auto s = std::make_unique<FakeSession>();
      s->conn = net::TcpConn::connect("127.0.0.1", port);
      net::send_frame(s->conn, encode_hello(1));
      std::string payload;
      while (true) {
        if (!net::recv_frame(s->conn, payload)) {
          throw IoError("coordinator closed during fake handshake");
        }
        if (peek_type(payload, "fake") == MsgType::kWelcome) break;
      }
      s->welcome = decode_welcome(payload, "fake");
      s->injector = device::FaultInjector(s->welcome.config.fault_options());
      s->opts = s->welcome.config.to_options(
          s->welcome.config.faults_enabled ? &s->injector : nullptr);
      s->plan = core::ShardPlan::make(s->welcome.trace.size(), s->opts);
      const AssignMsg a = fake_await_assign(*s);
      HeartbeatMsg hb;
      hb.session = a.session;
      hb.shard = a.shard;
      hb.busy_ratio = 0.9;
      net::send_frame(s->conn, encode_heartbeat(hb));  // v2 bytes from a v1
      std::string result =
          encode_result({a.session, a.shard, a.attempt}, fake_compute(*s, a));
      result.resize(result.size() - 16);  // v1 result: no telemetry tail
      net::send_frame(s->conn, result);
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    } catch (const IoError&) {
    }
  });
  std::thread modern([port] {
    try {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      auto s = fake_join(port);
      const AssignMsg a = fake_await_assign(*s);
      HeartbeatMsg hb;
      hb.session = a.session;
      hb.shard = a.shard;
      hb.busy_ratio = 0.25;
      net::send_frame(s->conn, encode_heartbeat(hb));
      net::send_frame(s->conn, encode_result({a.session, a.shard, a.attempt},
                                             fake_compute(*s, a)));
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    } catch (const IoError&) {
    }
  });

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  // Mean busy over the fleet is exactly the v2 worker's report — the v1
  // claim never dragged it.
  EXPECT_DOUBLE_EQ(
      obs::default_registry().gauge(obs::names::kClusterWorkerBusyRatio).value(),
      0.25);
  const std::string health = coord->cluster_json();
  EXPECT_NE(health.find("\"busy_ratio\":null"), std::string::npos) << health;
  EXPECT_NE(health.find("\"busy_ratio\":0.25"), std::string::npos) << health;

  coord.reset();
  relic.join();
  modern.join();
  obs::set_enabled(false);
}

TEST(Dist, TelemetryScrapeDuringRunIsRaceFree) {
  // stats(), connected_workers() and cluster_json() are hammered from a
  // second thread for the whole run — under TSan this is the proof that the
  // telemetry plane reads snapshots, not the run loop's live state.
  const auto tr = make_trace("xz", 20000);
  const auto opts = base_options(8, 4);  // 4 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 30000;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w1 = worker_thread(coord->port());
  std::thread w2 = worker_thread(coord->port());

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const CoordinatorStats st = coord->stats();
      EXPECT_LE(st.shards_completed, 4u);
      EXPECT_LE(coord->connected_workers(), 2u);
      EXPECT_FALSE(coord->cluster_json().empty());
      ++scrapes;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const auto out = coord->run(tr, opts);
  done.store(true);
  scraper.join();
  expect_identical(local, out);
  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_EQ(coord->stats().shards_completed, 4u);

  coord.reset();
  w1.join();
  w2.join();
}

// ---- real process isolation (fork) -----------------------------------------

#if !defined(MLSIM_TSAN)

/// Fork a real worker process. The child never returns. `delay_ms` makes
/// the child sleep before connecting — a late joiner forked while the
/// parent is still quiet (forking mid-run from a multithreaded parent is
/// not safe).
pid_t fork_worker(std::uint16_t port, int heartbeat_ms = 50,
                  bool enable_obs = false, int delay_ms = 0) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  WorkerConfig cfg;
  cfg.port = port;
  cfg.heartbeat_ms = heartbeat_ms;
  if (enable_obs) obs::set_enabled(true);  // record + ship spans (v2)
  try {
    run_worker(cfg);
    _exit(0);
  } catch (...) {
    _exit(1);
  }
}

TEST(DistProcess, ForkedWorkersBitIdenticalToInProcess) {
  const auto tr = make_trace("xz", 20000);
  const auto opts = base_options(8, 4);
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  // Bind before forking so the children always find a listener.
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const pid_t a = fork_worker(coord->port());
  const pid_t b = fork_worker(coord->port());
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  EXPECT_EQ(coord->stats().shards_completed, 4u);

  coord.reset();  // Shutdown frames + listener close end both children
  int status = 0;
  EXPECT_EQ(waitpid(a, &status, 0), a);
  EXPECT_EQ(waitpid(b, &status, 0), b);
}

TEST(DistProcess, HardKilledWorkerProcessIsRecoveredFrom) {
  const auto tr = make_trace("mcf", 60000);
  const auto opts = base_options(12, 12);  // 12 shards: work spans the kill
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 500;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const pid_t victim = fork_worker(coord->port());
  const pid_t survivor = fork_worker(coord->port());
  ASSERT_GT(victim, 0);
  ASSERT_GT(survivor, 0);

  // SIGKILL the victim shortly into the run — a genuine process death, not
  // a simulated one. Whatever it was computing must be reassigned. Wait for
  // both workers to actually join first: under heavy test-suite load a
  // fixed sleep can fire before the victim even connects, and a kill
  // pre-Hello would leave the coordinator waiting for min_workers forever.
  std::thread killer([&coord, victim] {
    for (int i = 0; i < 1000; ++i) {
      if (coord->stats().workers_joined >= 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    kill(victim, SIGKILL);
  });

  core::ParallelSimResult out;
  std::string run_error;
  try {
    out = coord->run(tr, opts);
  } catch (const std::exception& e) {
    run_error = e.what();
  }
  killer.join();
  ASSERT_EQ(run_error, "");
  expect_identical(local, out);
  EXPECT_EQ(coord->stats().shards_completed, 12u);

  coord.reset();
  int status = 0;
  EXPECT_EQ(waitpid(victim, &status, 0), victim);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(waitpid(survivor, &status, 0), survivor);
}

TEST(DistProcess, ChurnKilledAndJoinedWorkersStayBitIdentical) {
  // The full churn chaos scenario: one worker process is SIGKILLed once the
  // run is demonstrably mid-flight, a fresh one joins mid-run, and the
  // merged CPI must still be bit-identical with the lost shard reassigned.
  const auto tr = make_trace("mcf", 120000);
  const auto opts = base_options(12, 12);  // 12 shards
  const auto local = local_reference(tr, opts);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 500;
  co.poll_ms = 20;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const pid_t victim = fork_worker(coord->port());
  const pid_t survivor = fork_worker(coord->port());
  const pid_t joiner =
      fork_worker(coord->port(), 50, /*enable_obs=*/false, /*delay_ms=*/250);
  ASSERT_GT(victim, 0);
  ASSERT_GT(survivor, 0);
  ASSERT_GT(joiner, 0);

  // Kill once a couple of shards have completed, observed through the same
  // thread-safe stats() snapshot the telemetry plane scrapes.
  std::thread killer([&coord, victim] {
    for (int i = 0; i < 1000; ++i) {
      if (coord->stats().shards_completed >= 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    kill(victim, SIGKILL);
  });

  core::ParallelSimResult out;
  std::string run_error;
  try {
    out = coord->run(tr, opts);
  } catch (const std::exception& e) {
    run_error = e.what();
  }
  killer.join();
  ASSERT_EQ(run_error, "");
  expect_identical(local, out);
  const auto st = coord->stats();
  EXPECT_EQ(st.shards_completed, 12u);
  EXPECT_EQ(st.workers_joined, 3u);
  EXPECT_GE(st.workers_lost, 1u);
  EXPECT_GT(st.reassignments, 0u);

  coord.reset();
  int status = 0;
  EXPECT_EQ(waitpid(victim, &status, 0), victim);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(waitpid(survivor, &status, 0), survivor);
  EXPECT_EQ(waitpid(joiner, &status, 0), joiner);
}

TEST(DistProcess, ThreeProcessesMergeOneDistributedTrace) {
  // The ISSUE's acceptance run, in miniature: a coordinator plus two real
  // worker processes, all tracing, must yield ONE merged Chrome trace with
  // spans from all three processes under a single nonzero trace id.
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::reset_trace();
  const auto tr = make_trace("xz", 20000);
  const auto opts = base_options(8, 4);  // 4 shards

  CoordinatorOptions co;
  co.min_workers = 2;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  const pid_t a = fork_worker(coord->port(), 50, /*enable_obs=*/true);
  const pid_t b = fork_worker(coord->port(), 50, /*enable_obs=*/true);
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);

  const auto out = coord->run(tr, opts);
  expect_identical(local_reference(tr, opts), out);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string body = os.str();
  // Coordinator spans export under pid 1; each worker's shipped spans under
  // 1 + its uid. All spans carry the run's trace id.
  EXPECT_NE(body.find("\"name\":\"dist/run\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"worker/partition\""), std::string::npos);
  EXPECT_NE(body.find("\"pid\":1,"), std::string::npos);
  EXPECT_NE(body.find("\"pid\":2,"), std::string::npos);
  EXPECT_NE(body.find("\"pid\":3,"), std::string::npos);
  std::set<std::string> trace_ids;
  const std::string key = "\"trace_id\":\"";
  for (std::size_t at = body.find(key); at != std::string::npos;
       at = body.find(key, at + 1)) {
    const std::size_t from = at + key.size();
    trace_ids.insert(body.substr(from, body.find('"', from) - from));
  }
  EXPECT_EQ(trace_ids.size(), 1u) << body.substr(0, 2000);
  EXPECT_NE(*trace_ids.begin(), "0");

  coord.reset();
  int status = 0;
  EXPECT_EQ(waitpid(a, &status, 0), a);
  EXPECT_EQ(waitpid(b, &status, 0), b);
  obs::set_enabled(false);
}

#endif  // !MLSIM_TSAN

// ---- service integration ---------------------------------------------------

TEST(Dist, ServiceRoutesParallelRequestsToRemoteCluster) {
  const auto tr = make_trace("xz", 12000);

  // Baseline: the same request served in-process.
  core::AnalyticPredictor primary, fallback;
  service::Request rq;
  rq.trace = &tr;
  rq.engine = service::EngineKind::kParallel;
  rq.num_subtraces = 6;
  rq.num_gpus = 2;
  std::uint64_t local_cycles = 0;
  {
    service::SimulationService svc(primary, fallback);
    auto t = svc.submit(rq);
    const auto rsp = t.future.get();
    ASSERT_TRUE(rsp.ok()) << rsp.error;
    local_cycles = rsp.total_cycles;
    svc.shutdown();
  }

  // Same request, routed through a coordinator fronting one worker. The
  // coordinator spends its pre-loop time serializing the trace for Welcome,
  // so the default 250 ms hang watchdog is too hair-trigger at sanitizer
  // speed: give it room — hang handling has its own tests.
  CoordinatorOptions co;
  co.heartbeat_timeout_ms = 30000;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w = worker_thread(coord->port());
  service::Response rsp;
  std::size_t completed = 0;
  {
    service::ServiceOptions so;
    so.num_workers = 1;  // the coordinator serves one run at a time
    so.hang_timeout = std::chrono::milliseconds{30000};
    so.remote = coord.get();
    service::SimulationService svc(primary, fallback, so);
    auto t = svc.submit(rq);
    rsp = t.future.get();
    svc.shutdown();
  }
  completed = coord->stats().shards_completed;
  coord.reset();  // listener close releases the worker before any assert
  w.join();
  ASSERT_TRUE(rsp.ok()) << rsp.error;
  EXPECT_EQ(rsp.total_cycles, local_cycles);
  EXPECT_EQ(rsp.instructions, tr.size());
  EXPECT_EQ(completed, 2u);
}

}  // namespace
}  // namespace mlsim::dist
