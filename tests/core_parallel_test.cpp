// Parallel simulation tests (paper §V): equivalence to sequential for one
// sub-trace, oracle negative control, error growth with partition count,
// and the warmup / post-error-correction recovery ladder.
#include <gtest/gtest.h>

#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "core/predictor.h"
#include "core/sequential_sim.h"
#include "core/simulator.h"

namespace mlsim::core {
namespace {

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

double sequential_cpi(LatencyPredictor& pred, const trace::EncodedTrace& tr,
                      std::size_t ctx) {
  ParallelSimOptions o;
  o.num_subtraces = 1;
  o.context_length = ctx;
  ParallelSimulator sim(pred, o);
  return sim.run(tr).cpi();
}

TEST(ParallelSim, SingleSubtraceMatchesSequentialSimulator) {
  trace::EncodedTrace tr = make_trace("xz", 4000);
  AnalyticPredictor pred;
  const std::size_t ctx = 16;

  SequentialSimOptions sopts;
  sopts.context_length = ctx;
  sopts.record_predictions = true;
  SequentialSimulator seq(pred, sopts);
  const SimOutput expected = seq.run(tr);
  std::uint64_t seq_cycles = 0;
  for (const auto& p : expected.predictions) seq_cycles += p.fetch;

  ParallelSimOptions popts;
  popts.num_subtraces = 1;
  popts.context_length = ctx;
  popts.record_predictions = true;
  ParallelSimulator par(pred, popts);
  const ParallelSimResult got = par.run(tr);

  EXPECT_EQ(got.total_cycles, seq_cycles);
  ASSERT_EQ(got.predictions.size(), expected.predictions.size());
  for (std::size_t i = 0; i < got.predictions.size(); ++i) {
    ASSERT_EQ(got.predictions[i], expected.predictions[i]) << "at " << i;
  }
}

TEST(ParallelSim, OraclePredictorImmuneToPartitioning) {
  // Negative control: a context-independent predictor must show exactly
  // zero parallel-simulation error, whatever the partition count.
  trace::EncodedTrace tr = make_trace("xz", 4000);
  OraclePredictor oracle(tr);
  const double seq = sequential_cpi(oracle, tr, 16);
  for (std::size_t p : {2u, 8u, 64u}) {
    ParallelSimOptions o;
    o.num_subtraces = p;
    o.context_length = 16;
    ParallelSimulator sim(oracle, o);
    EXPECT_DOUBLE_EQ(sim.run(tr).cpi(), seq) << p << " subtraces";
  }
}

TEST(ParallelSim, ErrorGrowsWithSubtraceCount) {
  // Paper Fig. 6: more sub-traces -> more lost context -> more error.
  trace::EncodedTrace tr = make_trace("exch", 20000);
  AnalyticPredictor pred;
  const std::size_t ctx = 32;
  const double seq = sequential_cpi(pred, tr, ctx);

  double prev_err = 0.0;
  for (std::size_t p : {10u, 40u, 160u, 640u}) {
    ParallelSimOptions o;
    o.num_subtraces = p;
    o.context_length = ctx;
    ParallelSimulator sim(pred, o);
    const double err =
        std::abs(ParallelSimulator::cpi_error_percent(seq, sim.run(tr).cpi()));
    EXPECT_GE(err, prev_err * 0.5) << p;  // broadly increasing
    prev_err = err;
  }
  EXPECT_GT(prev_err, 1.0);  // at 640 partitions of ~31 instrs: real error
}

TEST(ParallelSim, WarmupReducesError) {
  trace::EncodedTrace tr = make_trace("mcf", 20000);
  AnalyticPredictor pred;
  const std::size_t ctx = 32;
  const double seq = sequential_cpi(pred, tr, ctx);

  ParallelSimOptions bare;
  bare.num_subtraces = 100;
  bare.context_length = ctx;
  ParallelSimulator sim_bare(pred, bare);
  const double err_bare =
      std::abs(ParallelSimulator::cpi_error_percent(seq, sim_bare.run(tr).cpi()));

  ParallelSimOptions warm = bare;
  warm.warmup = ctx;
  ParallelSimulator sim_warm(pred, warm);
  const auto warm_res = sim_warm.run(tr);
  const double err_warm =
      std::abs(ParallelSimulator::cpi_error_percent(seq, warm_res.cpi()));

  EXPECT_LT(err_warm, err_bare);
  EXPECT_EQ(warm_res.warmup_instructions, 99u * ctx);  // none before part. 0
}

TEST(ParallelSim, CorrectionReducesErrorBeyondWarmup) {
  trace::EncodedTrace tr = make_trace("mcf", 20000);
  AnalyticPredictor pred;
  const std::size_t ctx = 32;
  const double seq = sequential_cpi(pred, tr, ctx);

  ParallelSimOptions warm;
  warm.num_subtraces = 100;
  warm.context_length = ctx;
  warm.warmup = ctx;
  ParallelSimulator sim_warm(pred, warm);
  const double err_warm =
      std::abs(ParallelSimulator::cpi_error_percent(seq, sim_warm.run(tr).cpi()));

  ParallelSimOptions corr = warm;
  corr.post_error_correction = true;
  corr.correction_limit = 100;
  ParallelSimulator sim_corr(pred, corr);
  const auto corr_res = sim_corr.run(tr);
  const double err_corr =
      std::abs(ParallelSimulator::cpi_error_percent(seq, corr_res.cpi()));

  EXPECT_LE(err_corr, err_warm + 1e-9);
  EXPECT_GT(corr_res.corrected_instructions, 0u);
}

TEST(ParallelSim, FirstPartitionPerGpuNeverCorrected) {
  trace::EncodedTrace tr = make_trace("xz", 8000);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = 8;
  o.num_gpus = 4;  // partitions {0,1},{2,3},{4,5},{6,7}
  o.context_length = 16;
  o.warmup = 16;
  o.post_error_correction = true;
  o.record_predictions = true;
  ParallelSimulator sim(pred, o);
  const auto res = sim.run(tr);
  // With 4 GPUs only partitions 1,3,5,7 are correctable; with 1 GPU all of
  // 1..7 are. More GPUs -> fewer corrected instructions.
  ParallelSimOptions o1 = o;
  o1.num_gpus = 1;
  ParallelSimulator sim1(pred, o1);
  const auto res1 = sim1.run(tr);
  EXPECT_LE(res.corrected_instructions, res1.corrected_instructions);
}

TEST(ParallelSim, BoundariesPartitionWholeTrace) {
  trace::EncodedTrace tr = make_trace("xz", 1003);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = 7;
  o.context_length = 8;
  ParallelSimulator sim(pred, o);
  const auto res = sim.run(tr);
  ASSERT_EQ(res.boundaries.size(), 8u);
  EXPECT_EQ(res.boundaries.front(), 0u);
  EXPECT_EQ(res.boundaries.back(), tr.size());
  for (std::size_t p = 0; p + 1 < res.boundaries.size(); ++p) {
    EXPECT_LT(res.boundaries[p], res.boundaries[p + 1]);
  }
}

TEST(ParallelSim, MoreGpusGiveHigherModeledThroughput) {
  trace::EncodedTrace tr = make_trace("xz", 40000);
  AnalyticPredictor pred;
  double prev_mips = 0.0;
  for (std::size_t g : {1u, 2u, 4u, 8u}) {
    ParallelSimOptions o;
    o.num_subtraces = 256;
    o.num_gpus = g;
    o.context_length = 16;
    o.warmup = 16;
    o.assumed_flops_per_window = 3'000'000;
    ParallelSimulator sim(pred, o);
    const double mips = sim.run(tr).mips();
    EXPECT_GT(mips, prev_mips) << g << " GPUs";
    prev_mips = mips;
  }
}

TEST(ParallelSim, BatchedInferenceBeatsSingleSubtrace) {
  // The whole point of partitioning: one sub-trace leaves the device
  // starved; many sub-traces amortise every per-step overhead.
  trace::EncodedTrace tr = make_trace("xz", 40000);
  AnalyticPredictor pred;
  auto mips_for = [&](std::size_t p) {
    ParallelSimOptions o;
    o.num_subtraces = p;
    o.context_length = 16;
    o.assumed_flops_per_window = 3'000'000;
    ParallelSimulator sim(pred, o);
    return sim.run(tr).mips();
  };
  EXPECT_GT(mips_for(1024), mips_for(1) * 2);
}

TEST(ParallelSim, MoreSubtracesThanInstructionsClamps) {
  trace::EncodedTrace tr = make_trace("xz", 100);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = 1000;
  o.context_length = 8;
  ParallelSimulator sim(pred, o);
  const auto res = sim.run(tr);
  EXPECT_EQ(res.boundaries.size(), 101u);
  EXPECT_EQ(res.instructions, 100u);
}

TEST(ParallelSim, RecordedContextCountsShowBoundaryLoss) {
  trace::EncodedTrace tr = make_trace("mcf", 4000);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = 4;
  o.context_length = 32;
  o.record_context_counts = true;
  ParallelSimulator sim(pred, o);
  const auto res = sim.run(tr);
  ASSERT_EQ(res.context_counts.size(), tr.size());
  // First instruction of partitions 1..3 has zero context (no warmup).
  for (std::size_t p = 1; p < 4; ++p) {
    EXPECT_EQ(res.context_counts[res.boundaries[p]], 0u);
  }
  // Mid-partition instructions do have context.
  EXPECT_GT(res.context_counts[res.boundaries[1] / 2], 0u);
}

}  // namespace
}  // namespace mlsim::core
