// Sweep-subsystem tests (docs/SWEEPS.md): lattice expansion order and
// validation, Pareto ranking and per-axis sensitivity on a synthetic
// frontier, bit-identity of a sweep point against a standalone run of the
// same configuration, cluster fan-out with a repeated lattice served 100%
// from the coordinator's result cache, the service sweep gateway, and the
// wire round-trip of SweepRequest.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "net/socket.h"
#include "service/service.h"
#include "service/sweep.h"
#include "sweep/lattice.h"
#include "sweep/sweep.h"
#include "uarch/config.h"

namespace mlsim::sweep {
namespace {

SweepSpec two_axis_spec() {
  SweepSpec spec;
  spec.benchmark = "xz";
  spec.instructions = 1000;
  spec.axes.push_back({"l2.size_kb", {"512", "1024", "2048"}});
  spec.axes.push_back({"l1d.assoc", {"4", "8"}});
  return spec;
}

TEST(Lattice, RowMajorExpansionLastAxisFastest) {
  const SweepSpec spec = two_axis_spec();
  EXPECT_EQ(spec.points(), 6u);
  const auto pts = expand_lattice(spec);
  ASSERT_EQ(pts.size(), 6u);
  const std::vector<std::pair<std::string, std::string>> expected[] = {
      {{"l2.size_kb", "512"}, {"l1d.assoc", "4"}},
      {{"l2.size_kb", "512"}, {"l1d.assoc", "8"}},
      {{"l2.size_kb", "1024"}, {"l1d.assoc", "4"}},
      {{"l2.size_kb", "1024"}, {"l1d.assoc", "8"}},
      {{"l2.size_kb", "2048"}, {"l1d.assoc", "4"}},
      {{"l2.size_kb", "2048"}, {"l1d.assoc", "8"}},
  };
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(pts[i].index, i);
    EXPECT_EQ(pts[i].settings, expected[i]) << "point " << i;
  }
  // The expanded machine reflects the settings, not just the labels.
  EXPECT_EQ(pts[0].machine.l2.size_bytes, 512u * 1024u);
  EXPECT_EQ(pts[0].machine.l1d.assoc, 4u);
  EXPECT_EQ(pts[5].machine.l2.size_bytes, 2048u * 1024u);
  EXPECT_EQ(pts[5].machine.l1d.assoc, 8u);
}

TEST(Lattice, DuplicateAxisRejected) {
  SweepSpec spec = two_axis_spec();
  spec.axes.push_back({"l2.size_kb", {"256"}});
  EXPECT_THROW(validate_spec(spec), CheckError);
}

TEST(Lattice, UnknownAxisKeyRejected) {
  SweepSpec spec = two_axis_spec();
  spec.axes.push_back({"l2.sizekb", {"256"}});
  EXPECT_THROW(validate_spec(spec), CheckError);
  uarch::MachineConfig m;
  EXPECT_THROW(apply_axis(m, "not.a.key", "1"), CheckError);
}

TEST(Lattice, BadAxisValueRejected) {
  uarch::MachineConfig m;
  EXPECT_THROW(apply_axis(m, "l2.size_kb", "abc"), CheckError);
  EXPECT_THROW(apply_axis(m, "l1d.replacement", "plru"), CheckError);
  EXPECT_THROW(apply_axis(m, "bp.kind", "perceptron"), CheckError);
  SweepSpec spec = two_axis_spec();
  spec.axes[0].values.push_back("-3");
  EXPECT_THROW(validate_spec(spec), CheckError);
}

TEST(Lattice, ReplacementAxisCoversEveryPolicy) {
  uarch::MachineConfig m;
  apply_axis(m, "l1d.replacement", "dip");
  EXPECT_EQ(m.l1d.replacement, uarch::ReplacementPolicy::kDip);
  apply_axis(m, "l1d.replacement", "drrip");
  EXPECT_EQ(m.l1d.replacement, uarch::ReplacementPolicy::kDrrip);
  apply_axis(m, "l1d.replacement", "arc");
  EXPECT_EQ(m.l1d.replacement, uarch::ReplacementPolicy::kArc);
  apply_axis(m, "l2.replacement", "fifo");
  EXPECT_EQ(m.l2.replacement, uarch::ReplacementPolicy::kFifo);
}

TEST(Lattice, SpecFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sweep_spec.txt";
  {
    std::ofstream f(path);
    f << "# DSE over the L2 and the D-cache policy\n"
      << "benchmark xz\n"
      << "instructions 5000\n"
      << "axis l2.size_kb 512,1024\n"
      << "axis l1d.replacement lru,arc\n";
  }
  const SweepSpec spec = load_spec_text(path);
  EXPECT_EQ(spec.benchmark, "xz");
  EXPECT_EQ(spec.instructions, 5000u);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].key, "l2.size_kb");
  EXPECT_EQ(spec.axes[1].values, (std::vector<std::string>{"lru", "arc"}));
  EXPECT_EQ(spec.points(), 4u);
  std::remove(path.c_str());
}

TEST(Lattice, SpecFileErrorsNameTheLine) {
  const std::string path = ::testing::TempDir() + "/bad_spec.txt";
  {
    std::ofstream f(path);
    f << "benchmark xz\ninstructions 5000\nfrequency 3ghz\n";
  }
  try {
    load_spec_text(path);
    FAIL() << "expected CheckError for the unknown directive";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(":3"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(Pareto, DominanceAndSensitivityOnSyntheticFrontier) {
  // Three L2 sizes give three strictly increasing areas; CPIs are chosen so
  // the middle point is dominated (worse CPI than small, worse area too).
  SweepSpec spec;
  spec.benchmark = "xz";
  spec.instructions = 1;
  spec.axes.push_back({"l2.size_kb", {"256", "1024", "4096"}});
  const auto pts = expand_lattice(spec);
  SweepReport rep;
  const double cpis[] = {1.0, 2.0, 0.5};
  for (std::size_t i = 0; i < 3; ++i) {
    SweepPointResult r;
    r.point = pts[i];
    r.cpi = cpis[i];
    rep.points.push_back(r);
  }
  rank_report(rep, spec);
  ASSERT_EQ(rep.frontier.size(), 2u);
  // Sorted by CPI ascending: the big/fast point, then the small/cheap one.
  EXPECT_EQ(rep.frontier[0], 2u);
  EXPECT_EQ(rep.frontier[1], 0u);
  EXPECT_TRUE(rep.points[0].on_frontier);
  EXPECT_FALSE(rep.points[1].on_frontier);
  EXPECT_TRUE(rep.points[2].on_frontier);
  EXPECT_GT(rep.points[2].area, rep.points[0].area);

  ASSERT_EQ(rep.sensitivity.size(), 1u);
  const AxisSensitivity& s = rep.sensitivity[0];
  EXPECT_EQ(s.key, "l2.size_kb");
  ASSERT_EQ(s.mean_cpi.size(), 3u);
  // One point per value on a single axis: means are the points' own CPIs.
  EXPECT_DOUBLE_EQ(s.mean_cpi[0], 1.0);
  EXPECT_DOUBLE_EQ(s.mean_cpi[1], 2.0);
  EXPECT_DOUBLE_EQ(s.mean_cpi[2], 0.5);
  EXPECT_DOUBLE_EQ(s.span, 1.5);
}

TEST(Sweep, PointsBitIdenticalToStandaloneRuns) {
  SweepSpec spec;
  spec.benchmark = "xz";
  spec.instructions = 20000;
  spec.axes.push_back({"l2.size_kb", {"512", "2048"}});
  spec.axes.push_back({"l1d.replacement", {"lru", "drrip"}});
  SweepOptions so;
  so.num_subtraces = 2;
  so.context_length = 32;
  const SweepReport rep = run_sweep(spec, so);
  ASSERT_EQ(rep.points.size(), 4u);
  for (const SweepPointResult& p : rep.points) {
    // What `mlsim_cli simulate` would compute for this configuration.
    const trace::EncodedTrace tr =
        core::labeled_trace(spec.benchmark, spec.instructions, p.point.machine);
    core::MLSimulator::Options mo;
    mo.context_length = so.context_length;
    core::MLSimulator sim(mo);
    const auto r = sim.simulate_parallel(
        tr, sim.parallel_options(so.num_subtraces, 1, true, true));
    EXPECT_EQ(p.total_cycles, r.total_cycles) << p.point.label();
    EXPECT_GT(p.cpi, 0.0);
    EXPECT_GT(p.truth_cpi, 0.0);
  }
}

TEST(DistSweep, RepeatedLatticeServedEntirelyFromResultCache) {
  dist::CoordinatorOptions co;
  co.min_workers = 1;
  co.poll_ms = 2;
  co.result_cache_entries = 256;
  dist::DistCoordinator coord(net::TcpListener::bind(0), co);
  std::thread worker([port = coord.port()] {
    dist::WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = 50;
    try {
      dist::run_worker(cfg);
    } catch (const IoError&) {
    }
  });

  SweepSpec spec;
  spec.benchmark = "xz";
  spec.instructions = 12000;
  // Both axes genuinely perturb the D-cache hit pattern at this trace
  // length, so all four points encode different traces. (An axis with no
  // effect on the trace — say a too-large L2 — would legitimately share a
  // fingerprint with its neighbour and be served from cache even cold.)
  spec.axes.push_back({"l1d.assoc", {"4", "8"}});
  spec.axes.push_back({"l1d.replacement", {"lru", "arc"}});
  SweepOptions so;
  so.num_subtraces = 2;
  so.num_gpus = 2;
  so.context_length = 16;
  so.remote = &coord;

  const SweepReport first = run_sweep(spec, so);
  const dist::CoordinatorStats cold = coord.stats();
  // Every point must land on its own run fingerprint: the cold sweep
  // dispatches every shard of every point, with zero cross-point cache hits.
  // Points that differ only in mid-trace hit-level features must not
  // collide — a collision would silently serve one config's result for
  // another, and the repeat-identity checks below would still look green.
  EXPECT_EQ(cold.shards_dispatched, 2u * first.points.size());
  EXPECT_EQ(cold.cache_hits, 0u);
  std::set<std::uint64_t> distinct;
  for (const auto& p : first.points) distinct.insert(p.total_cycles);
  EXPECT_GT(distinct.size(), 1u);

  const SweepReport second = run_sweep(spec, so);
  const dist::CoordinatorStats warm = coord.stats();
  // 100% cache-served: not one shard dispatched for the repeated lattice.
  EXPECT_EQ(warm.shards_dispatched, cold.shards_dispatched);
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
  ASSERT_EQ(second.points.size(), first.points.size());
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    EXPECT_EQ(second.points[i].total_cycles, first.points[i].total_cycles);
  }

  coord.shutdown_workers();
  worker.join();
}

TEST(ServiceSweep, EndToEndThroughAdmissionAndHealth) {
  core::AnalyticPredictor primary, fallback;
  service::ServiceOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 4;
  service::SimulationService svc(primary, fallback, opts);

  service::SweepRequest req;
  req.spec.benchmark = "xz";
  req.spec.instructions = 8000;
  req.spec.axes.push_back({"l2.size_kb", {"256", "1024"}});
  req.num_subtraces = 2;
  req.context_length = 16;
  auto ticket = svc.submit_sweep(req);
  const service::SweepOutcome out = ticket.future.get();
  EXPECT_TRUE(out.ok()) << (out.errors.empty() ? "" : out.errors.front());
  EXPECT_EQ(out.points_total, 2u);
  EXPECT_EQ(out.completed, 2u);
  EXPECT_EQ(out.rejected, 0u);
  EXPECT_EQ(out.failed, 0u);
  ASSERT_EQ(out.report.points.size(), 2u);
  EXPECT_FALSE(out.report.frontier.empty());
  for (const auto& p : out.report.points) EXPECT_GT(p.cpi, 0.0);

  const std::string h = svc.health_json();
  EXPECT_NE(h.find("\"sweeps\""), std::string::npos) << h;
  EXPECT_NE(h.find("\"points_done\":2"), std::string::npos) << h;
}

TEST(ServiceSweep, SubmitValidatesUpfront) {
  core::AnalyticPredictor primary, fallback;
  service::SimulationService svc(primary, fallback, {});
  service::SweepRequest req;
  req.spec.benchmark = "no-such-workload";
  req.spec.instructions = 1000;
  EXPECT_THROW(svc.submit_sweep(req), CheckError);
  req.spec.benchmark = "xz";
  req.spec.axes.push_back({"l2.size_kb", {"512"}});
  req.spec.axes.push_back({"l2.size_kb", {"1024"}});
  EXPECT_THROW(svc.submit_sweep(req), CheckError);
}

TEST(WireSweep, RequestRoundTrip) {
  service::SweepRequest req;
  req.spec.benchmark = "xz";
  req.spec.instructions = 40000;
  req.spec.axes.push_back({"l2.size_kb", {"512", "1024"}});
  req.spec.axes.push_back({"bp.kind", {"gshare", "local"}});
  req.num_subtraces = 8;
  req.num_gpus = 2;
  req.context_length = 48;
  req.recovery = false;
  req.seed = 7;
  req.priority = service::Priority::kHigh;
  req.tenant = "team-a";
  req.deadline = std::chrono::milliseconds(1500);

  const std::string enc = req.encode();
  const service::SweepRequest dec = service::SweepRequest::decode(enc);
  EXPECT_EQ(dec.spec.benchmark, "xz");
  EXPECT_EQ(dec.spec.instructions, 40000u);
  ASSERT_EQ(dec.spec.axes.size(), 2u);
  EXPECT_EQ(dec.spec.axes[1].key, "bp.kind");
  EXPECT_EQ(dec.spec.axes[1].values,
            (std::vector<std::string>{"gshare", "local"}));
  EXPECT_EQ(dec.num_subtraces, 8u);
  EXPECT_EQ(dec.num_gpus, 2u);
  EXPECT_EQ(dec.context_length, 48u);
  EXPECT_FALSE(dec.recovery);
  EXPECT_EQ(dec.seed, 7u);
  EXPECT_EQ(dec.priority, service::Priority::kHigh);
  EXPECT_EQ(dec.tenant, "team-a");
  EXPECT_EQ(dec.deadline.count(), 1500);
}

TEST(WireSweep, CorruptionAndTruncationAreTyped) {
  service::SweepRequest req;
  req.spec.benchmark = "xz";
  req.spec.instructions = 1000;
  req.spec.axes.push_back({"l2.size_kb", {"512"}});
  const std::string enc = req.encode();

  std::string flipped = enc;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_THROW(service::SweepRequest::decode(flipped), CheckError);

  EXPECT_THROW(
      service::SweepRequest::decode(std::string_view(enc).substr(0, 12)),
      CheckError);
}

}  // namespace
}  // namespace mlsim::sweep
