// Crash-safe coordination (docs/RESILIENCE.md "Crash-safe coordination"):
// the durable run journal's record/replay round trip and fault taxonomy
// (torn tail, bit flip, duplicate results, strict vs lenient), graceful
// drain on a wake_fd byte, restart-resume from the journal, and — in the
// fork-based chaos tests — a SIGKILLed coordinator process restarted with
// --resume while its worker processes re-attach, with the merged CPI still
// bit-identical to the in-process engine.
//
// Fork-based tests are skipped under ThreadSanitizer, which cannot follow
// forks (same gate as dist_test.cpp).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/parallel_sim.h"
#include "core/shard.h"
#include "dist/coordinator.h"
#include "dist/journal.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "net/signal_pipe.h"
#include "net/socket.h"
#include "service/service.h"
#include "trace/trace.h"
#include "uarch/ground_truth.h"

#if defined(__SANITIZE_THREAD__)
#define MLSIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MLSIM_TSAN 1
#endif
#endif

namespace mlsim::dist {
namespace {

namespace fs = std::filesystem;

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

core::ParallelSimOptions base_options(std::size_t parts, std::size_t gpus) {
  core::ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = gpus;
  o.context_length = 16;
  o.warmup = 16;
  o.post_error_correction = true;
  o.record_predictions = true;
  return o;
}

core::ParallelSimResult local_reference(const trace::EncodedTrace& tr,
                                        const core::ParallelSimOptions& o) {
  core::AnalyticPredictor pred;
  core::ParallelSimulator sim(pred, o);
  return sim.run(tr);
}

void expect_identical(const core::ParallelSimResult& a,
                      const core::ParallelSimResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.corrected_instructions, b.corrected_instructions);
  EXPECT_EQ(a.warmup_instructions, b.warmup_instructions);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i], b.predictions[i]) << "at " << i;
  }
}

std::thread worker_thread(std::uint16_t port, int heartbeat_ms = 50) {
  return std::thread([port, heartbeat_ms] {
    WorkerConfig cfg;
    cfg.port = port;
    cfg.heartbeat_ms = heartbeat_ms;
    cfg.reconnect_budget = 3;  // teardown-friendly: don't retry for seconds
    try {
      run_worker(cfg);
    } catch (const IoError&) {
      // Listener closed mid-reconnect; expected during teardown.
    }
  });
}

/// A scratch journal path unique to this process + test.
fs::path scratch_journal(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("mlsim_journal_" + tag + "_" +
                      std::to_string(::getpid()) + ".jrnl");
  std::error_code ec;
  fs::remove(p, ec);
  return p;
}

/// A Result frame payload as a worker would put it on the wire.
std::string result_frame(std::uint64_t session, std::uint64_t shard,
                         std::uint32_t attempt) {
  core::ShardOutcome outcome;
  return encode_result({session, shard, attempt}, outcome);
}

// ---- journal record/replay unit tests --------------------------------------

TEST(RunJournal, MissingFileReplaysAsNotFound) {
  const JournalReplay r =
      RunJournal::replay(scratch_journal("missing"), /*strict=*/false);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.open_run);
  EXPECT_EQ(r.results.size(), 0u);
}

TEST(RunJournal, RoundTripReplaysOpenRunWithResults) {
  const fs::path path = scratch_journal("roundtrip");
  RunConfig cfg;
  cfg.num_subtraces = 8;
  cfg.num_gpus = 4;
  {
    RunJournal j;
    j.open(path);
    ASSERT_TRUE(j.enabled());
    j.run_open(7, 0xfeedULL, 8, cfg);
    j.assign(7, 2, 0);
    j.result(7, result_frame(7, 2, 0));
    j.assign(7, 5, 0);
    j.result(7, result_frame(7, 5, 0));
  }  // no run-close: simulates a killed coordinator
  const JournalReplay r = RunJournal::replay(path, /*strict=*/true);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.open_run);
  EXPECT_EQ(r.session, 7u);
  EXPECT_EQ(r.fingerprint, 0xfeedULL);
  EXPECT_EQ(r.num_shards, 8u);
  EXPECT_EQ(r.config.num_subtraces, 8u);
  EXPECT_EQ(r.config.num_gpus, 4u);
  EXPECT_EQ(r.results.size(), 2u);
  EXPECT_EQ(r.results.count(2), 1u);
  EXPECT_EQ(r.results.count(5), 1u);
  EXPECT_EQ(r.records, 5u);
  EXPECT_EQ(r.dropped_bytes, 0u);
  fs::remove(path);
}

TEST(RunJournal, RunCloseClosesTheRunAndRecordsStatus) {
  const fs::path path = scratch_journal("close");
  {
    RunJournal j;
    j.open(path);
    j.run_open(3, 0xabcULL, 2, RunConfig{});
    j.result(3, result_frame(3, 0, 0));
    j.run_close(3, RunJournal::kStatusDrained);
  }
  const JournalReplay r = RunJournal::replay(path, /*strict=*/true);
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.open_run);
  EXPECT_EQ(r.close_status, RunJournal::kStatusDrained);
  EXPECT_EQ(r.results.size(), 1u);  // a drained run is still resumable
  fs::remove(path);
}

TEST(RunJournal, DuplicateResultRecordsAreIdempotent) {
  const fs::path path = scratch_journal("dup");
  {
    RunJournal j;
    j.open(path);
    j.run_open(9, 0x1ULL, 4, RunConfig{});
    j.result(9, result_frame(9, 1, 0));
    j.result(9, result_frame(9, 1, 1));  // re-delivery after a rejoin
  }
  const JournalReplay r = RunJournal::replay(path, /*strict=*/true);
  EXPECT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.duplicates, 1u);
  fs::remove(path);
}

TEST(RunJournal, TruncatedTailIsDroppedLenientlyAndFatalStrictly) {
  const fs::path path = scratch_journal("trunc");
  {
    RunJournal j;
    j.open(path);
    j.run_open(4, 0x2ULL, 4, RunConfig{});
    j.result(4, result_frame(4, 0, 0));
    j.result(4, result_frame(4, 1, 0));
  }
  // Tear the last record: everything before it must replay; the tail must
  // be dropped (lenient) or fatal (strict) — mirroring checkpoint modes.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 7);

  const JournalReplay lenient = RunJournal::replay(path, /*strict=*/false);
  EXPECT_TRUE(lenient.found);
  EXPECT_TRUE(lenient.open_run);
  EXPECT_EQ(lenient.results.size(), 1u);
  EXPECT_GT(lenient.dropped_bytes, 0u);

  EXPECT_THROW(RunJournal::replay(path, /*strict=*/true), CheckError);
  fs::remove(path);
}

TEST(RunJournal, BitFlippedRecordIsCaughtByTheChecksum) {
  const fs::path path = scratch_journal("flip");
  {
    RunJournal j;
    j.open(path);
    j.run_open(4, 0x3ULL, 4, RunConfig{});
    j.result(4, result_frame(4, 0, 0));
    j.result(4, result_frame(4, 1, 0));
  }
  // Flip one byte inside the *last* record's payload. The checksum rejects
  // the record; lenient replay keeps everything before it.
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 3));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size - 3));
    f.write(&c, 1);
  }
  const JournalReplay lenient = RunJournal::replay(path, /*strict=*/false);
  EXPECT_TRUE(lenient.found);
  EXPECT_EQ(lenient.results.size(), 1u);
  EXPECT_GT(lenient.dropped_bytes, 0u);
  EXPECT_THROW(RunJournal::replay(path, /*strict=*/true), CheckError);
  fs::remove(path);
}

// ---- service lifecycle ------------------------------------------------------

TEST(ServiceLifecycle, HealthReportsServingThenDraining) {
  core::AnalyticPredictor primary, fallback;
  service::ServiceOptions so;
  so.num_workers = 1;
  so.queue_capacity = 2;
  service::SimulationService svc(primary, fallback, so);
  EXPECT_NE(svc.health_json().find("\"lifecycle\":\"serving\""),
            std::string::npos);
  svc.shutdown();
  EXPECT_NE(svc.health_json().find("\"lifecycle\":\"draining\""),
            std::string::npos);
}

// ---- graceful drain + resume (thread-based, TSan-safe) ---------------------

TEST(Drain, WakeByteDrainsRunAndJournalResumesIt) {
  const auto tr = make_trace("mcf", 60000);
  const auto opts = base_options(12, 12);  // 12 single-partition shards
  const auto local = local_reference(tr, opts);
  const fs::path path = scratch_journal("drain");

  int wake[2] = {-1, -1};
  ASSERT_EQ(::pipe(wake), 0);

  CoordinatorOptions co;
  co.min_workers = 2;
  co.heartbeat_timeout_ms = 30000;
  co.poll_ms = 10;
  co.journal_path = path;
  co.wake_fd = wake[0];
  co.drain_timeout_ms = 30000;  // generous: in-flight shards must finish
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w1 = worker_thread(coord->port());
  std::thread w2 = worker_thread(coord->port());

  // Request the drain once the run is demonstrably mid-flight.
  std::thread trigger([&coord, fd = wake[1]] {
    for (int i = 0; i < 3000; ++i) {
      if (coord->stats().shards_completed >= 3) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const char byte = 1;
    ASSERT_EQ(::write(fd, &byte, 1), 1);
  });

  bool drained = false;
  try {
    (void)coord->run(tr, opts);
  } catch (const DrainError&) {
    drained = true;
  }
  trigger.join();
  ASSERT_TRUE(drained);
  EXPECT_TRUE(coord->drain_requested());
  EXPECT_NE(coord->cluster_json().find("\"lifecycle\":\"draining\""),
            std::string::npos);
  coord.reset();
  w1.join();
  w2.join();
  ::close(wake[0]);
  ::close(wake[1]);

  // The journal recorded a drained run-close and the completed shards.
  const JournalReplay after = RunJournal::replay(path, /*strict=*/true);
  ASSERT_TRUE(after.found);
  EXPECT_FALSE(after.open_run);
  EXPECT_EQ(after.close_status, RunJournal::kStatusDrained);
  const std::size_t replayed = after.results.size();
  EXPECT_GE(replayed, 3u);
  EXPECT_LT(replayed, 12u);  // pending shards were abandoned, not computed

  // Resume: a fresh coordinator replays the journal and only dispatches the
  // remainder; the merged result is still bit-identical.
  CoordinatorOptions rc;
  rc.min_workers = 2;
  rc.heartbeat_timeout_ms = 30000;
  rc.poll_ms = 10;
  rc.journal_path = path;
  rc.resume = true;
  auto resumed =
      std::make_unique<DistCoordinator>(net::TcpListener::bind(0), rc);
  std::thread w3 = worker_thread(resumed->port());
  std::thread w4 = worker_thread(resumed->port());
  const auto out = resumed->run(tr, opts);
  expect_identical(local, out);
  const CoordinatorStats st = resumed->stats();
  EXPECT_EQ(st.journal_replayed, replayed);
  EXPECT_EQ(st.cache_hits, replayed);  // replay feeds the result cache
  EXPECT_LE(st.shards_dispatched, 12u - replayed);
  resumed.reset();
  w3.join();
  w4.join();

  const JournalReplay final_state = RunJournal::replay(path, /*strict=*/true);
  EXPECT_FALSE(final_state.open_run);
  EXPECT_EQ(final_state.close_status, RunJournal::kStatusComplete);
  EXPECT_EQ(final_state.results.size(), 12u);  // self-contained last section
  fs::remove(path);
}

TEST(Drain, RunCompletingBeforeDeadlineReturnsNormally) {
  // A drain requested when every shard is already done (or finishes within
  // the window) must not throw: the run returns and only drain_requested()
  // tells the driver to exit with the drained code.
  const auto tr = make_trace("xz", 8000);
  const auto opts = base_options(4, 2);  // 2 shards
  const auto local = local_reference(tr, opts);

  int wake[2] = {-1, -1};
  ASSERT_EQ(::pipe(wake), 0);
  const char byte = 1;
  ASSERT_EQ(::write(wake[1], &byte, 1), 1);  // drain requested before t0

  CoordinatorOptions co;
  co.heartbeat_timeout_ms = 30000;
  co.poll_ms = 10;
  co.wake_fd = wake[0];
  co.drain_timeout_ms = 60000;
  auto coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(0), co);
  std::thread w = worker_thread(coord->port());

  core::ParallelSimResult out;
  bool threw = false;
  try {
    out = coord->run(tr, opts);
  } catch (const DrainError&) {
    threw = true;
  }
  coord.reset();
  w.join();
  ::close(wake[0]);
  ::close(wake[1]);
  // With the drain byte pre-posted, no shard is ever assigned, so the run
  // can only drain (in-flight = 0 → immediate finish) — unless the poll
  // raced the first assignment. Either outcome is contract-clean; what is
  // forbidden is a *successful* run that diverges.
  if (!threw) expect_identical(local, out);
}

// ---- worker reconnect budget ------------------------------------------------

TEST(WorkerBackoff, BudgetExhaustionIsTypedIoError) {
  // Nothing listens on this port: the worker must retry with backoff and
  // then give up with the typed budget error, not spin forever.
  net::TcpListener probe = net::TcpListener::bind(0);
  const std::uint16_t dead_port = probe.port();
  probe.close();

  WorkerConfig cfg;
  cfg.port = dead_port;
  cfg.reconnect_budget = 2;
  try {
    run_worker(cfg);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("reconnect budget exhausted"),
              std::string::npos);
  }
}

// ---- fork-based chaos tests --------------------------------------------------

#if !defined(MLSIM_TSAN)

/// Fork a real worker process with a deep reconnect budget (it must survive
/// the coordinator being SIGKILLed and restarted). The child never returns.
pid_t fork_worker(std::uint16_t port, int reconnect_budget = 80) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  WorkerConfig cfg;
  cfg.port = port;
  cfg.heartbeat_ms = 50;
  cfg.reconnect_budget = reconnect_budget;
  try {
    run_worker(cfg);
    _exit(0);
  } catch (...) {
    _exit(1);
  }
}

TEST(DrainProcess, SigtermDrainsCoordinatorWithDistinctExitCode) {
  const auto tr = make_trace("mcf", 120000);
  const auto opts = base_options(12, 12);
  const fs::path path = scratch_journal("sigterm");

  auto listener = std::make_unique<net::TcpListener>(net::TcpListener::bind(0));
  const std::uint16_t port = listener->port();
  const pid_t coord_pid = fork();
  if (coord_pid == 0) {
    // Child: a coordinator process wired exactly like the CLI — SignalPipe
    // as wake_fd, DrainError mapped to exit code 6.
    CoordinatorOptions co;
    co.min_workers = 1;
    co.heartbeat_timeout_ms = 30000;
    co.poll_ms = 10;
    co.journal_path = path;
    co.drain_timeout_ms = 30000;
    co.wake_fd = net::SignalPipe::install(7).fd();
    try {
      DistCoordinator coord(std::move(*listener), co);
      std::thread w = worker_thread(coord.port());
      try {
        (void)coord.run(tr, opts);
        w.join();
        _exit(0);
      } catch (const DrainError&) {
        w.join();
        _exit(6);
      }
    } catch (...) {
      _exit(1);
    }
  }
  ASSERT_GT(coord_pid, 0);
  listener.reset();

  // Let the run get demonstrably going (journaled results), then SIGTERM.
  bool started = false;
  for (int i = 0; i < 3000; ++i) {
    if (RunJournal::replay(path, false).results.size() >= 2) {
      started = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(started);
  ASSERT_EQ(kill(coord_pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(coord_pid, &status, 0), coord_pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 6);

  // Drain left the journal closed with kStatusDrained and partial results.
  const JournalReplay r = RunJournal::replay(path, /*strict=*/true);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(r.open_run);
  EXPECT_EQ(r.close_status, RunJournal::kStatusDrained);
  EXPECT_GE(r.results.size(), 2u);
  fs::remove(path);
}

TEST(DrainProcess, SecondSignalForcesImmediateExit) {
  int ready[2] = {-1, -1};
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: handlers installed, then "hung" — a drain that never finishes.
    (void)net::SignalPipe::install(7);
    const char byte = 1;
    (void)!::write(ready[1], &byte, 1);
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(pid, 0);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);  // handlers are live
  ::close(ready[0]);
  ::close(ready[1]);

  ASSERT_EQ(kill(pid, SIGTERM), 0);  // first: politely ignored by the child
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(kill(pid, SIGTERM), 0);  // second: in-handler _exit
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 7);
}

TEST(DrainProcess, CoordinatorSigkillRestartResumeIsBitIdentical) {
  // The acceptance chaos scenario: SIGKILL the coordinator process mid-run
  // with live worker processes, restart it on the same port with --resume,
  // and require (a) the workers re-attach via Rejoin, (b) the merged CPI is
  // bit-identical, (c) zero journal-replayed shards are re-dispatched, and
  // (d) the replay hits count toward the result-cache hit metric.
  const auto tr = make_trace("mcf", 120000);
  const auto opts = base_options(12, 12);  // 12 single-partition shards
  const auto local = local_reference(tr, opts);
  const fs::path path = scratch_journal("chaos");

  auto listener = std::make_unique<net::TcpListener>(net::TcpListener::bind(0));
  const std::uint16_t port = listener->port();
  const pid_t coord_pid = fork();
  if (coord_pid == 0) {
    CoordinatorOptions co;
    co.min_workers = 2;
    co.heartbeat_timeout_ms = 30000;
    co.poll_ms = 10;
    co.journal_path = path;
    try {
      DistCoordinator coord(std::move(*listener), co);
      (void)coord.run(tr, opts);
      coord.shutdown_workers();
      _exit(0);
    } catch (...) {
      _exit(1);
    }
  }
  ASSERT_GT(coord_pid, 0);
  listener.reset();

  const pid_t wa = fork_worker(port);
  const pid_t wb = fork_worker(port);
  ASSERT_GT(wa, 0);
  ASSERT_GT(wb, 0);

  // Wait until several results are durably journaled, then SIGKILL — a real
  // process death at an arbitrary instant, no cleanup code runs.
  bool progressed = false;
  for (int i = 0; i < 3000; ++i) {
    if (RunJournal::replay(path, false).results.size() >= 3) {
      progressed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(progressed);
  ASSERT_EQ(kill(coord_pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(coord_pid, &status, 0), coord_pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // What the restarted coordinator will see.
  const JournalReplay before = RunJournal::replay(path, /*strict=*/false);
  ASSERT_TRUE(before.found);
  ASSERT_TRUE(before.open_run);  // died mid-run, no run-close
  const std::size_t replayed = before.results.size();
  ASSERT_GE(replayed, 3u);
  ASSERT_LT(replayed, 12u);

  // Restart on the same port (SO_REUSEADDR) so the orphaned workers'
  // reconnect loops find it, with --journal --resume.
  CoordinatorOptions rc;
  rc.min_workers = 1;
  rc.heartbeat_timeout_ms = 30000;
  rc.poll_ms = 10;
  rc.journal_path = path;
  rc.resume = true;
  std::unique_ptr<DistCoordinator> coord;
  for (int i = 0; i < 100; ++i) {
    try {
      coord = std::make_unique<DistCoordinator>(net::TcpListener::bind(port),
                                                rc);
      break;
    } catch (const IoError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_NE(coord, nullptr);

  const auto out = coord->run(tr, opts);
  expect_identical(local, out);
  const CoordinatorStats st = coord->stats();
  EXPECT_EQ(st.journal_replayed, replayed);
  EXPECT_EQ(st.cache_hits, replayed);  // replay hits count as cache hits
  EXPECT_LE(st.shards_dispatched, 12u - replayed);  // no re-dispatch
  EXPECT_GE(st.workers_rejoined, 1u);  // at least one worker re-attached

  coord.reset();
  EXPECT_EQ(waitpid(wa, &status, 0), wa);
  EXPECT_EQ(waitpid(wb, &status, 0), wb);

  const JournalReplay final_state = RunJournal::replay(path, /*strict=*/true);
  EXPECT_FALSE(final_state.open_run);
  EXPECT_EQ(final_state.close_status, RunJournal::kStatusComplete);
  EXPECT_EQ(final_state.results.size(), 12u);
  fs::remove(path);
}

#endif  // !MLSIM_TSAN

}  // namespace
}  // namespace mlsim::dist
