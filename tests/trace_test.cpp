// Tests for the trace substrate: workload suite, program synthesis,
// functional simulation, feature encoding and trace serialization.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "common/check.h"
#include "trace/encoder.h"
#include "trace/functional_sim.h"
#include "trace/program.h"
#include "trace/trace.h"
#include "trace/workload.h"

namespace mlsim::trace {
namespace {

// --------------------------------------------------------------- workload --

TEST(Workload, SuiteHas21BenchmarksWithPaperSplit) {
  const auto& suite = spec2017_suite();
  EXPECT_EQ(suite.size(), 21u);
  EXPECT_EQ(train_benchmarks(), (std::vector<std::string>{"perl", "gcc", "bwav", "namd"}));
  EXPECT_EQ(test_benchmarks().size(), 17u);
}

TEST(Workload, AbbreviationsUnique) {
  std::set<std::string> abbrs;
  for (const auto& b : spec2017_suite()) abbrs.insert(b.profile.abbr);
  EXPECT_EQ(abbrs.size(), 21u);
}

TEST(Workload, LookupByAbbrAndUnknownThrows) {
  EXPECT_EQ(find_workload("mcf").name, "505.mcf");
  EXPECT_THROW(find_workload("nope"), CheckError);
}

TEST(Workload, MixWeightsNormalizable) {
  for (const auto& b : spec2017_suite()) {
    double total = 0;
    for (double w : b.profile.mix) {
      EXPECT_GE(w, 0.0) << b.profile.abbr;
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 0.05) << b.profile.abbr;
  }
}

TEST(Workload, MemoryPatternFractionsSane) {
  for (const auto& b : spec2017_suite()) {
    const auto& p = b.profile;
    const double sum = p.frac_stream + p.frac_strided + p.frac_random +
                       p.frac_chase + p.frac_stack;
    EXPECT_NEAR(sum, 1.0, 0.01) << p.abbr;
  }
}

// ---------------------------------------------------------------- program --

class ProgramPerBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(ProgramPerBenchmark, GeneratesValidCfg) {
  const auto& profile = find_workload(GetParam());
  const Program prog = Program::generate(profile, 1);
  ASSERT_GE(prog.blocks().size(), 8u);
  EXPECT_GT(prog.num_static_insts(), 0u);

  for (const auto& blk : prog.blocks()) {
    ASSERT_FALSE(blk.insts.empty());
    const auto& term = blk.insts.back();
    if (is_control(term.op)) {
      EXPECT_LT(term.branch.taken_target, prog.blocks().size());
      EXPECT_LT(term.branch.fall_target, prog.blocks().size());
    }
    for (const auto& si : blk.insts) {
      EXPECT_LE(si.n_src, kMaxSrcRegs);
      EXPECT_LE(si.n_dst, kMaxDstRegs);
      if (is_memory(si.op)) {
        EXPECT_NE(si.mem.pattern, AccessPattern::kNone);
        EXPECT_GT(si.mem.region_bytes, 0u);
        // Power-of-two regions keep address generation branch-free.
        EXPECT_EQ(si.mem.region_bytes & (si.mem.region_bytes - 1), 0u);
      }
    }
  }
}

TEST_P(ProgramPerBenchmark, DeterministicForSameSeed) {
  const auto& profile = find_workload(GetParam());
  const Program a = Program::generate(profile, 3);
  const Program b = Program::generate(profile, 3);
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  EXPECT_EQ(a.num_static_insts(), b.num_static_insts());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].start_pc, b.blocks()[i].start_pc);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProgramPerBenchmark,
                         ::testing::Values("perl", "gcc", "bwav", "namd", "mcf",
                                           "xz", "exch", "lbm", "x264", "spei"));

// --------------------------------------------------------- functional sim --

TEST(FunctionalSim, EmitsRequestedCount) {
  const Program prog = Program::generate(find_workload("xz"), 1);
  FunctionalSim sim(prog, 1);
  const auto insts = sim.run(5000);
  EXPECT_EQ(insts.size(), 5000u);
  EXPECT_EQ(sim.instructions_retired(), 5000u);
}

TEST(FunctionalSim, DeterministicStream) {
  const Program prog = Program::generate(find_workload("xz"), 1);
  FunctionalSim a(prog, 9), b(prog, 9);
  for (int i = 0; i < 2000; ++i) {
    const DynInst x = a.next(), y = b.next();
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(x.mem_addr, y.mem_addr);
    ASSERT_EQ(x.is_taken, y.is_taken);
  }
}

TEST(FunctionalSim, DifferentSeedsDiverge) {
  const Program prog = Program::generate(find_workload("xz"), 1);
  FunctionalSim a(prog, 1), b(prog, 2);
  const auto xa = a.run(3000), xb = b.run(3000);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < xa.size(); ++i) diff += xa[i].pc != xb[i].pc;
  EXPECT_GT(diff, 0u);
}

TEST(FunctionalSim, MemoryInstructionsCarryAddresses) {
  const Program prog = Program::generate(find_workload("mcf"), 1);
  FunctionalSim sim(prog, 1);
  std::size_t mem_count = 0;
  for (int i = 0; i < 10000; ++i) {
    const DynInst d = sim.next();
    if (is_memory(d.op)) {
      ++mem_count;
      EXPECT_NE(d.mem_addr, 0u);
      EXPECT_GT(d.mem_size_log2, 0u);
    }
  }
  // mcf is memory heavy: ~40% loads+stores.
  EXPECT_GT(mem_count, 2500u);
}

TEST(FunctionalSim, LoopBranchesMostlyTaken) {
  const Program prog = Program::generate(find_workload("lbm"), 1);
  FunctionalSim sim(prog, 1);
  std::size_t branches = 0, taken = 0;
  for (int i = 0; i < 20000; ++i) {
    const DynInst d = sim.next();
    if (d.op == OpClass::kBranch) {
      ++branches;
      taken += d.is_taken;
    }
  }
  ASSERT_GT(branches, 0u);
  // lbm is loop-dominated with long trip counts: back edges mostly taken.
  EXPECT_GT(static_cast<double>(taken) / static_cast<double>(branches), 0.7);
}

TEST(FunctionalSim, BlockEntryFlagsPresent) {
  const Program prog = Program::generate(find_workload("perl"), 1);
  FunctionalSim sim(prog, 1);
  std::size_t entries = 0;
  for (int i = 0; i < 5000; ++i) entries += sim.next().block_entry;
  EXPECT_GT(entries, 100u);  // perl has short blocks
}

TEST(FunctionalSim, WorkingSetBounded) {
  const auto& profile = find_workload("exch");  // 512 KB working set
  const Program prog = Program::generate(profile, 1);
  FunctionalSim sim(prog, 1);
  for (int i = 0; i < 20000; ++i) {
    const DynInst d = sim.next();
    if (is_memory(d.op) && d.mem_addr < 0x7fff0000ull) {  // ignore stack
      EXPECT_LT(d.mem_addr, 0x10000000ull + profile.working_set_bytes * 2);
      EXPECT_GE(d.mem_addr, 0x10000000ull);
    }
  }
}

// ---------------------------------------------------------------- encoder --

TEST(Encoder, FeatureLayoutBasics) {
  FeatureEncoder enc;
  DynInst d;
  d.op = OpClass::kLoad;
  d.n_src = 1;
  d.n_dst = 1;
  d.src[0] = 5;
  d.dst[0] = 7;
  d.mem_addr = 0x1000 + 24;
  d.mem_size_log2 = 3;
  d.pc = 0x400000;
  Annotation ann;
  ann.data_level = HitLevel::kL2;
  ann.dtlb_level = TlbLevel::kL2Tlb;

  const FeatureVector f = enc.encode(d, ann);
  EXPECT_EQ(f[Feat::kOpClass], static_cast<std::int32_t>(OpClass::kLoad));
  EXPECT_EQ(f[Feat::kIsLoad], 1);
  EXPECT_EQ(f[Feat::kIsStore], 0);
  EXPECT_EQ(f[Feat::kSrc0], 5);
  EXPECT_EQ(f[Feat::kDst0], 7);
  EXPECT_EQ(f[Feat::kDataLevel], static_cast<std::int32_t>(HitLevel::kL2));
  EXPECT_EQ(f[Feat::kDtlb], static_cast<std::int32_t>(TlbLevel::kL2Tlb));
  EXPECT_EQ(f[Feat::kLineOffset], 3);  // byte 24 -> word 3
  EXPECT_EQ(f[kNumFeatures - 1], 0);   // latency-entry slot reserved
}

TEST(Encoder, DependencyDistanceTracksLastWriter) {
  FeatureEncoder enc;
  Annotation ann;
  DynInst producer;
  producer.op = OpClass::kIntAlu;
  producer.n_dst = 1;
  producer.dst[0] = 9;
  enc.encode(producer, ann);

  DynInst filler;
  filler.op = OpClass::kNop;
  enc.encode(filler, ann);

  DynInst consumer;
  consumer.op = OpClass::kIntAlu;
  consumer.n_src = 1;
  consumer.src[0] = 9;
  const FeatureVector f = enc.encode(consumer, ann);
  EXPECT_EQ(f[Feat::kDep0], 2);  // producer was 2 instructions ago
}

TEST(Encoder, DependencyDistanceCapped) {
  FeatureEncoder enc;
  Annotation ann;
  DynInst producer;
  producer.op = OpClass::kIntAlu;
  producer.n_dst = 1;
  producer.dst[0] = 3;
  enc.encode(producer, ann);
  DynInst filler;
  filler.op = OpClass::kNop;
  for (int i = 0; i < 100; ++i) enc.encode(filler, ann);
  DynInst consumer;
  consumer.op = OpClass::kIntAlu;
  consumer.n_src = 1;
  consumer.src[0] = 3;
  EXPECT_EQ(enc.encode(consumer, ann)[Feat::kDep0], 63);
}

TEST(Encoder, RegisterZeroNeverDepends) {
  FeatureEncoder enc;
  Annotation ann;
  DynInst d;
  d.op = OpClass::kIntAlu;
  d.n_src = 1;
  d.src[0] = 0;
  EXPECT_EQ(enc.encode(d, ann)[Feat::kDep0], 0);
}

TEST(Encoder, SpatialLocalityFeatures) {
  FeatureEncoder enc;
  Annotation ann;
  ann.data_level = HitLevel::kL1;
  DynInst a;
  a.op = OpClass::kLoad;
  a.mem_addr = 0x1000;
  a.mem_size_log2 = 3;
  enc.encode(a, ann);
  DynInst b = a;
  b.mem_addr = 0x1008;  // same line
  const auto f1 = enc.encode(b, ann);
  EXPECT_EQ(f1[Feat::kSameLine], 1);
  EXPECT_EQ(f1[Feat::kPageCross], 0);
  DynInst c = a;
  c.mem_addr = 0x5000;  // different page
  const auto f2 = enc.encode(c, ann);
  EXPECT_EQ(f2[Feat::kSameLine], 0);
  EXPECT_EQ(f2[Feat::kPageCross], 1);
}

TEST(Encoder, ResetClearsState) {
  FeatureEncoder enc;
  Annotation ann;
  DynInst producer;
  producer.op = OpClass::kIntAlu;
  producer.n_dst = 1;
  producer.dst[0] = 4;
  enc.encode(producer, ann);
  enc.reset();
  DynInst consumer;
  consumer.op = OpClass::kIntAlu;
  consumer.n_src = 1;
  consumer.src[0] = 4;
  EXPECT_EQ(enc.encode(consumer, ann)[Feat::kDep0], 0);
}

// ------------------------------------------------------------------ trace --

TEST(EncodedTrace, AppendAndAccess) {
  EncodedTrace tr("test");
  FeatureVector f{};
  f[0] = 42;
  tr.append(f, 1, 2, 3);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr.labeled());
  EXPECT_EQ(tr.features(0)[0], 42);
  EXPECT_EQ(tr.targets(0)[0], 1u);
  EXPECT_EQ(tr.targets(0)[2], 3u);
  EXPECT_THROW(tr.features(1), CheckError);
}

TEST(EncodedTrace, UnlabeledWhenTargetsZero) {
  EncodedTrace tr("t");
  tr.append(FeatureVector{});
  EXPECT_FALSE(tr.labeled());
}

TEST(EncodedTrace, SliceCopiesRows) {
  EncodedTrace tr("t");
  for (int i = 0; i < 10; ++i) {
    FeatureVector f{};
    f[0] = i;
    tr.append(f, static_cast<std::uint32_t>(i), 0, 0);
  }
  const EncodedTrace s = tr.slice(3, 7);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.features(0)[0], 3);
  EXPECT_EQ(s.targets(3)[0], 6u);
  EXPECT_THROW(tr.slice(7, 3), CheckError);
}

TEST(EncodedTrace, SaveLoadRoundTrip) {
  EncodedTrace tr("roundtrip");
  for (int i = 0; i < 100; ++i) {
    FeatureVector f{};
    f[5] = i * 3;
    tr.append(f, static_cast<std::uint32_t>(i), i + 1, 0);
  }
  const auto path = std::filesystem::temp_directory_path() / "mlsim_trace_test.bin";
  tr.save(path);
  const EncodedTrace back = EncodedTrace::load(path);
  ASSERT_EQ(back.size(), tr.size());
  EXPECT_EQ(back.benchmark(), "roundtrip");
  EXPECT_TRUE(back.labeled());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(back.features(i)[5], tr.features(i)[5]);
    EXPECT_EQ(back.targets(i)[1], tr.targets(i)[1]);
  }
  std::filesystem::remove(path);
}

TEST(EncodedTrace, LoadRejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "mlsim_garbage.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a trace";
  }
  EXPECT_THROW(EncodedTrace::load(path), CheckError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mlsim::trace
