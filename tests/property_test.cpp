// Property-based tests: randomized sweeps over configurations and inputs
// asserting invariants rather than specific values.
#include <gtest/gtest.h>

#include "common/half.h"
#include "common/rng.h"
#include "core/analytic_predictor.h"
#include "core/instruction_queue.h"
#include "core/parallel_sim.h"
#include "core/sliding_window.h"
#include "core/simulator.h"
#include "device/device.h"
#include "uarch/cache.h"
#include "uarch/ground_truth.h"

namespace mlsim {
namespace {

// ---------------------------------------------------------------- half ----

TEST(HalfProperty, AllFiniteHalfValuesRoundTripExactly) {
  // Every finite binary16 value must survive half -> float -> half.
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    if (exp == 0x1f) continue;  // inf/NaN
    const float f = half_bits_to_float(h);
    EXPECT_EQ(float_to_half_bits(f), h) << "bits " << bits;
  }
}

TEST(HalfProperty, QuantizationIsIdempotent) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(rng.normal() * 1000.0);
    const float once = quantize_to_half(x);
    EXPECT_EQ(quantize_to_half(once), once);
  }
}

TEST(HalfProperty, MonotoneOnSamples) {
  // Quantisation preserves (non-strict) ordering.
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const float a = static_cast<float>(rng.normal() * 50.0);
    const float b = static_cast<float>(rng.normal() * 50.0);
    if (a <= b) {
      EXPECT_LE(quantize_to_half(a), quantize_to_half(b));
    }
  }
}

// --------------------------------------------------------------- cache ----

class CacheSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheSizeSweep, LargerCacheNeverMissesMoreOnFixedStream) {
  // Fixed pseudo-random address stream over 256KB; compare this size
  // against double the size (inclusion-like property for LRU with same
  // associativity and sets doubled).
  const std::uint32_t size = GetParam();
  uarch::CacheConfig small{.size_bytes = size, .assoc = 4, .line_bytes = 64,
                           .mshrs = 8, .latency = 3};
  uarch::CacheConfig big = small;
  big.size_bytes = size * 2;
  uarch::Cache c_small(small), c_big(big);
  Rng rng(42);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t addr = rng.next_below(256 * 1024);
    c_small.access(addr, static_cast<std::uint64_t>(i), i + 100, false);
    c_big.access(addr, static_cast<std::uint64_t>(i), i + 100, false);
  }
  EXPECT_LE(c_big.misses(), c_small.misses() + c_small.misses() / 20);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeSweep,
                         ::testing::Values(8u * 1024, 16u * 1024, 32u * 1024,
                                           64u * 1024));

class CacheAssocSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheAssocSweep, SequentialStreamColdMissesOnly) {
  uarch::CacheConfig cfg{.size_bytes = 64 * 1024, .assoc = GetParam(),
                         .line_bytes = 64, .mshrs = 8, .latency = 3};
  uarch::Cache c(cfg);
  // Touch 32KB twice: second pass must be all hits regardless of assoc.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64) {
      c.access(a, a + static_cast<std::uint64_t>(pass) * 100000, a + 50, false);
    }
  }
  EXPECT_EQ(c.misses(), 512u);
  EXPECT_EQ(c.hits(), 512u);
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheAssocSweep, ::testing::Values(1u, 2u, 4u, 16u));

// ------------------------------------------------- queue equivalence fuzz --

// The equivalence of the three window implementations must hold for ANY
// prediction sequence, not just the analytic predictor's. Drive them with
// random predictions.
class RandomPredictionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPredictionFuzz, QueuesAgreeUnderRandomLatencies) {
  const std::size_t ctx = 12, batch_n = 4;
  const auto tr = uarch::make_encoded_trace(trace::find_workload("perl"), 1500,
                                            {}, GetParam());
  Rng rng(GetParam() * 977 + 5);

  core::InstructionQueue ref(ctx);
  device::Device dev;
  core::SlidingWindowQueue swq(ctx, batch_n, dev, 0);
  std::vector<std::uint64_t> ring(ctx, 0);
  std::uint64_t clock = 0;

  std::vector<std::int32_t> wr, ws, wl;
  std::size_t next = 0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (swq.needs_refill()) {
      next += swq.refill(tr.raw_features().data() + next * trace::kNumFeatures,
                         tr.size() - next);
    }
    ref.push_and_build(tr.features(i), wr);
    swq.build_window(ws);
    const core::LazyWindow lw(tr, i, 0, ring.data(), ring.size(), clock, ctx + 1);
    lw.materialize(wl);
    ASSERT_EQ(wr, ws) << i;
    ASSERT_EQ(wr, wl) << i;

    // Random latencies incl. zeros and extremes.
    const core::LatencyPrediction p{
        static_cast<std::uint32_t>(rng.next_below(20)),
        static_cast<std::uint32_t>(rng.next_below(300)),
        static_cast<std::uint32_t>(rng.bernoulli(0.2) ? rng.next_below(60) : 0)};
    ref.apply_prediction(p);
    swq.apply_prediction(p);
    ring[i % ring.size()] = clock + p.fetch + p.exec + p.store;
    clock += p.fetch;
    ASSERT_EQ(ref.clock(), swq.clock()) << i;
    ASSERT_EQ(ref.clock(), clock) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPredictionFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull, 1234ull));

// ------------------------------------------------ parallel sim invariants --

class ParallelInvariants
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ParallelInvariants, BoundariesCoverTraceAndWorkAccounted) {
  const auto [parts, gpus] = GetParam();
  const auto tr = uarch::make_encoded_trace(trace::find_workload("xz"), 5000);
  core::AnalyticPredictor pred;
  core::ParallelSimOptions o;
  o.num_subtraces = parts;
  o.num_gpus = gpus;
  o.context_length = 16;
  o.warmup = 16;
  o.post_error_correction = true;
  core::ParallelSimulator sim(pred, o);
  const auto res = sim.run(tr);

  // Boundaries tile the trace exactly.
  std::size_t covered = 0;
  for (std::size_t p = 0; p + 1 < res.boundaries.size(); ++p) {
    covered += res.boundaries[p + 1] - res.boundaries[p];
  }
  EXPECT_EQ(covered, tr.size());
  EXPECT_EQ(res.instructions, tr.size());
  // Warmup work bounded by (P-1) * warmup (partition 0 has no predecessor).
  EXPECT_LE(res.warmup_instructions, (res.boundaries.size() - 2) * o.warmup);
  // Corrections bounded by limit per correctable partition.
  EXPECT_LE(res.corrected_instructions,
            (res.boundaries.size() - 2) * o.correction_limit);
  // Time model produces something positive and finite.
  EXPECT_GT(res.sim_time_us, 0.0);
  EXPECT_GT(res.mips(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelInvariants,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{16},
                                         std::size_t{128}),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

TEST(ParallelProperty, WarmupNeverChangesInstructionCount) {
  const auto tr = uarch::make_encoded_trace(trace::find_workload("mcf"), 4000);
  core::AnalyticPredictor pred;
  for (std::size_t w : {0u, 8u, 32u, 64u}) {
    core::ParallelSimOptions o;
    o.num_subtraces = 10;
    o.context_length = 64;
    o.warmup = w;
    core::ParallelSimulator sim(pred, o);
    EXPECT_EQ(sim.run(tr).instructions, tr.size());
  }
}

TEST(ParallelProperty, ErrorWithFullRecoveryBoundedByBaseline) {
  // Across several benchmarks: warmup+correction never does much worse
  // than no recovery at all.
  core::AnalyticPredictor pred;
  for (const std::string abbr : {"xz", "exch", "x264"}) {
    const auto tr = uarch::make_encoded_trace(trace::find_workload(abbr), 20000);
    core::ParallelSimOptions base;
    base.num_subtraces = 64;
    base.context_length = 64;
    core::ParallelSimulator sim_base(pred, base);
    core::ParallelSimOptions rec = base;
    rec.warmup = 64;
    rec.post_error_correction = true;
    core::ParallelSimulator sim_rec(pred, rec);

    core::ParallelSimOptions seq = base;
    seq.num_subtraces = 1;
    const double ref = core::ParallelSimulator(pred, seq).run(tr).cpi();
    const double e_base = std::abs(
        core::ParallelSimulator::cpi_error_percent(ref, sim_base.run(tr).cpi()));
    const double e_rec = std::abs(
        core::ParallelSimulator::cpi_error_percent(ref, sim_rec.run(tr).cpi()));
    EXPECT_LE(e_rec, e_base * 1.1 + 0.2) << abbr;
  }
}

// ---------------------------------------------------- machine config fuzz --

class MachineConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MachineConfigFuzz, PipelineRobustToRandomConfigs) {
  Rng rng(GetParam());
  uarch::MachineConfig m;
  m.core.fetch_width = 1 + static_cast<std::uint32_t>(rng.next_below(6));
  m.core.issue_width = 2 + static_cast<std::uint32_t>(rng.next_below(8));
  m.core.commit_width = m.core.issue_width;
  m.core.iq_entries = 8 << rng.next_below(3);
  m.core.rob_entries = 16 << rng.next_below(3);
  m.core.lq_entries = 8 << rng.next_below(2);
  m.core.sq_entries = 8 << rng.next_below(2);
  m.l1d.size_bytes = (8u << rng.next_below(4)) * 1024;
  m.l1d.assoc = 1 << rng.next_below(4);
  m.l2.size_bytes = (256u << rng.next_below(4)) * 1024;

  const auto tr = uarch::make_encoded_trace(trace::find_workload("xz"), 5000, m,
                                            GetParam());
  ASSERT_EQ(tr.size(), 5000u);
  // Ground truth is sane: CPI bounded below by the fetch width.
  std::uint64_t cycles = 0;
  for (std::size_t i = 0; i < tr.size(); ++i) cycles += tr.targets(i)[0];
  const double cpi = static_cast<double>(cycles) / 5000.0;
  EXPECT_GT(cpi, 0.9 / static_cast<double>(m.core.fetch_width));
  EXPECT_LT(cpi, 200.0);

  // ML simulation runs end to end on the random machine.
  core::MLSimulator::Options opts;
  opts.machine = m;
  core::MLSimulator sim(opts);
  const auto out = sim.simulate(tr);
  EXPECT_EQ(out.instructions, tr.size());
  EXPECT_GT(out.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineConfigFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull,
                                           66ull));

}  // namespace
}  // namespace mlsim
