// Equivalence and invariant tests for the three window/queue
// implementations — the reference InstructionQueue, the device-resident
// SlidingWindowQueue, and the zero-copy LazyWindow — plus bit-exactness of
// the custom convolution layer against the dense reference convolution.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analytic_predictor.h"
#include "core/custom_conv.h"
#include "core/instruction_queue.h"
#include "core/predictor.h"
#include "core/sliding_window.h"
#include "core/simulator.h"
#include "device/device.h"
#include "tensor/model.h"
#include "tensor/quant.h"

namespace mlsim::core {
namespace {

trace::EncodedTrace small_trace(const std::string& abbr = "xz",
                                std::size_t n = 3000) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

// ------------------------------------------------------- instruction queue --

TEST(InstructionQueue, FirstWindowHasOnlyCurrentRow) {
  InstructionQueue q(4);
  trace::EncodedTrace tr = small_trace("xz", 10);
  std::vector<std::int32_t> w;
  q.push_and_build(tr.features(0), w);
  ASSERT_EQ(w.size(), 5 * trace::kNumFeatures);
  for (std::size_t c = 0; c < trace::kNumFeatures; ++c) {
    EXPECT_EQ(w[c], tr.features(0)[c]);
  }
  for (std::size_t i = trace::kNumFeatures; i < w.size(); ++i) EXPECT_EQ(w[i], 0);
  EXPECT_EQ(q.context_count(), 0u);
}

TEST(InstructionQueue, ClockAndRetireSemantics) {
  InstructionQueue q(4);
  trace::EncodedTrace tr = small_trace("xz", 10);
  std::vector<std::int32_t> w;
  q.push_and_build(tr.features(0), w);
  q.apply_prediction({13, 1, 0});  // paper Fig. 1 example values
  EXPECT_EQ(q.clock(), 13u);
  EXPECT_EQ(q.last_retire_clock(), 14u);

  // Second instruction: the first is still in flight (retire 14 > clock 13)
  // with remaining latency 1.
  q.push_and_build(tr.features(1), w);
  EXPECT_EQ(w[trace::kNumFeatures + kCtxLatFeature], 1);
  q.apply_prediction({2, 1, 0});
  // Clock 15 >= retire 14: instruction 0 retires (paper iteration 2).
  q.push_and_build(tr.features(2), w);
  // Row 2 (instruction 0) must be zeroed.
  for (std::size_t c = 0; c < trace::kNumFeatures; ++c) {
    EXPECT_EQ(w[2 * trace::kNumFeatures + c], 0);
  }
}

TEST(InstructionQueue, PendingProtocolEnforced) {
  InstructionQueue q(4);
  trace::EncodedTrace tr = small_trace("xz", 4);
  std::vector<std::int32_t> w;
  EXPECT_THROW(q.apply_prediction({1, 1, 0}), CheckError);
  q.push_and_build(tr.features(0), w);
  EXPECT_THROW(q.push_and_build(tr.features(1), w), CheckError);
}

TEST(InstructionQueue, RemainingLatencyClamped) {
  InstructionQueue q(2);
  trace::EncodedTrace tr = small_trace("xz", 4);
  std::vector<std::int32_t> w;
  q.push_and_build(tr.features(0), w);
  q.apply_prediction({0, 100000, 0});
  q.push_and_build(tr.features(1), w);
  EXPECT_EQ(w[trace::kNumFeatures + kCtxLatFeature], kMaxLatencyEntry);
}

TEST(InstructionQueue, ResetRestoresInitialState) {
  InstructionQueue q(4);
  trace::EncodedTrace tr = small_trace("xz", 4);
  std::vector<std::int32_t> w;
  q.push_and_build(tr.features(0), w);
  q.apply_prediction({5, 5, 0});
  q.reset();
  EXPECT_EQ(q.clock(), 0u);
  EXPECT_EQ(q.context_count(), 0u);
  EXPECT_EQ(q.total_cycles_with_drain(), 0u);
}

// ---------------------------------------- sliding window equivalence (key) --

class QueueEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t, std::size_t>> {
};

TEST_P(QueueEquivalence, SlidingWindowMatchesReferenceExactly) {
  const auto [abbr, ctx_len, batch_n] = GetParam();
  trace::EncodedTrace tr = small_trace(abbr, 2500);
  AnalyticPredictor pred;

  InstructionQueue ref(ctx_len);
  device::Device dev;
  SlidingWindowQueue swq(ctx_len, batch_n, dev, 0);

  std::vector<std::int32_t> wr, ws;
  std::size_t next = 0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (swq.needs_refill()) {
      next += swq.refill(tr.raw_features().data() + next * trace::kNumFeatures,
                         tr.size() - next);
    }
    // Context counts compared at the same protocol point: candidates of the
    // instruction about to be simulated (before the reference push admits it).
    const std::size_t ref_count_before = ref.context_count();
    ASSERT_EQ(ref_count_before, swq.context_count()) << "at " << i;
    ref.push_and_build(tr.features(i), wr);
    swq.build_window(ws);
    ASSERT_EQ(wr, ws) << "window mismatch at instruction " << i;

    const LatencyPrediction p =
        pred.predict(WindowView{wr.data(), ctx_len + 1}, i);
    ref.apply_prediction(p);
    swq.apply_prediction(p);
    ASSERT_EQ(ref.clock(), swq.clock()) << "clock diverged at " << i;
  }
  EXPECT_EQ(ref.total_cycles_with_drain(), swq.total_cycles_with_drain());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueEquivalence,
    ::testing::Combine(::testing::Values("xz", "mcf", "lbm"),
                       ::testing::Values(std::size_t{8}, std::size_t{32}),
                       ::testing::Values(std::size_t{1}, std::size_t{5},
                                         std::size_t{16})));

TEST(LazyWindowEquivalence, MatchesReferenceQueueWindows) {
  const std::size_t ctx = 16;
  trace::EncodedTrace tr = small_trace("xz", 2000);
  AnalyticPredictor pred;

  InstructionQueue ref(ctx);
  std::vector<std::uint64_t> ring(ctx, 0);
  std::uint64_t clock = 0;

  std::vector<std::int32_t> wr, wl;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const std::size_t ref_count_before = ref.context_count();
    ref.push_and_build(tr.features(i), wr);
    const LazyWindow lw(tr, i, 0, ring.data(), ring.size(), clock, ctx + 1);
    lw.materialize(wl);
    ASSERT_EQ(wr, wl) << "lazy window mismatch at " << i;
    ASSERT_EQ(lw.context_count(), ref_count_before);

    const LatencyPrediction p = pred.predict(WindowView{wr.data(), ctx + 1}, i);
    // Lazy predictions agree with dense predictions on identical windows.
    ASSERT_EQ(pred.predict_lazy(lw), p) << "prediction mismatch at " << i;

    ref.apply_prediction(p);
    ring[i % ring.size()] = clock + p.fetch + p.exec + p.store;
    clock += p.fetch;
    ASSERT_EQ(ref.clock(), clock);
  }
}

TEST(SlidingWindow, RefillProtocolChecks) {
  device::Device dev;
  SlidingWindowQueue q(4, 2, dev, 0);
  trace::EncodedTrace tr = small_trace("xz", 10);
  std::vector<std::int32_t> scratch;
  EXPECT_THROW(q.build_window(scratch), CheckError);
  const std::size_t staged =
      q.refill(tr.raw_features().data(), tr.size());
  EXPECT_EQ(staged, 3u);  // N + 1
  EXPECT_THROW(q.refill(tr.raw_features().data(), 1), CheckError);
}

TEST(SlidingWindow, AccountsH2DOnRefill) {
  device::Device dev;
  SlidingWindowQueue q(4, 2, dev, 0, /*account_costs=*/true);
  trace::EncodedTrace tr = small_trace("xz", 10);
  q.refill(tr.raw_features().data(), tr.size());
  EXPECT_GT(dev.record(0), 0.0);

  device::Device dev2;
  SlidingWindowQueue q2(4, 2, dev2, 0, /*account_costs=*/false);
  q2.refill(tr.raw_features().data(), tr.size());
  EXPECT_DOUBLE_EQ(dev2.record(0), 0.0);
}

// -------------------------------------------------- custom conv bit-exact --

class CustomConvBitExact : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CustomConvBitExact, MatchesDenseConvOnTransposedWindow) {
  const std::size_t ctx = GetParam();
  trace::EncodedTrace tr = small_trace("xz", 600);
  AnalyticPredictor pred;

  tensor::SimNetModelConfig mcfg;
  mcfg.in_features = trace::kNumFeatures;
  mcfg.window = ctx + 1;
  mcfg.channels = 8;
  mcfg.hidden = 8;
  tensor::SimNetModel model(mcfg, 11);
  CustomConvLayer custom(model.conv1());

  device::Device dev;
  SlidingWindowQueue q(ctx, 4, dev, 0);
  std::vector<std::int32_t> w;
  std::size_t next = 0;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (q.needs_refill()) {
      next += q.refill(tr.raw_features().data() + next * trace::kNumFeatures,
                       tr.size() - next);
    }
    q.build_window(w);

    // Dense reference: transpose the materialised window, run conv1.
    tensor::Tensor x({1, trace::kNumFeatures, ctx + 1});
    for (std::size_t l = 0; l <= ctx; ++l) {
      for (std::size_t c = 0; c < trace::kNumFeatures; ++c) {
        x(0, c, l) = static_cast<float>(w[l * trace::kNumFeatures + c]);
      }
    }
    const tensor::Tensor dense = model.conv1().forward(x);
    const tensor::Tensor fast = custom.forward(q);
    ASSERT_EQ(dense.shape(), fast.shape());
    for (std::size_t k = 0; k < dense.numel(); ++k) {
      ASSERT_EQ(dense.at(k), fast.at(k))
          << "element " << k << " differs at instruction " << i;
    }
    ++checked;

    const LatencyPrediction p = pred.predict(WindowView{w.data(), ctx + 1}, i);
    q.apply_prediction(p);
  }
  EXPECT_EQ(checked, tr.size());
}

INSTANTIATE_TEST_SUITE_P(ContextLengths, CustomConvBitExact,
                         ::testing::Values(std::size_t{7}, std::size_t{15},
                                           std::size_t{31}));

TEST(CustomConv, SkipsPaddingColumns) {
  const std::size_t ctx = 31;
  trace::EncodedTrace tr = small_trace("xz", 50);
  tensor::SimNetModelConfig mcfg;
  mcfg.in_features = trace::kNumFeatures;
  mcfg.window = ctx + 1;
  mcfg.channels = 4;
  tensor::SimNetModel model(mcfg, 3);
  CustomConvLayer custom(model.conv1());

  device::Device dev;
  SlidingWindowQueue q(ctx, 4, dev, 0);
  q.refill(tr.raw_features().data(), tr.size());
  std::vector<std::int32_t> w;
  q.build_window(w);
  custom.forward(q);
  // First instruction: only row 0 valid -> only a couple of columns computed.
  EXPECT_LE(custom.last_computed_columns(), 2u);
  EXPECT_LT(custom.last_computed_columns(), ctx + 1);
}

TEST(CustomConv, WorksWithPrunedWeights) {
  const std::size_t ctx = 7;
  trace::EncodedTrace tr = small_trace("xz", 30);
  tensor::SimNetModelConfig mcfg;
  mcfg.in_features = trace::kNumFeatures;
  mcfg.window = ctx + 1;
  mcfg.channels = 4;
  tensor::SimNetModel model(mcfg, 5);
  // Prune first: the custom layer must match the dense layer with zeros.
  tensor::prune_2to4_inplace(model.conv1().weight());
  CustomConvLayer custom(model.conv1());

  device::Device dev;
  SlidingWindowQueue q(ctx, 2, dev, 0);
  q.refill(tr.raw_features().data(), tr.size());
  std::vector<std::int32_t> w;
  q.build_window(w);

  tensor::Tensor x({1, trace::kNumFeatures, ctx + 1});
  for (std::size_t l = 0; l <= ctx; ++l) {
    for (std::size_t c = 0; c < trace::kNumFeatures; ++c) {
      x(0, c, l) = static_cast<float>(w[l * trace::kNumFeatures + c]);
    }
  }
  const tensor::Tensor dense = model.conv1().forward(x);
  const tensor::Tensor fast = custom.forward(q);
  for (std::size_t k = 0; k < dense.numel(); ++k) {
    ASSERT_EQ(dense.at(k), fast.at(k));
  }
}

}  // namespace
}  // namespace mlsim::core
