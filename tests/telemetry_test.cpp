// Live telemetry plane (docs/OBSERVABILITY.md): the HTTP endpoint serving
// /metrics (validated by a format-strict Prometheus text-exposition parser),
// /healthz (health callback + flight-recorder post-mortems), and /tracez;
// request routing and error responses; the per-request flight recorder's
// ring semantics; and the end-to-end path where a deadline-missed service
// request shows up in /healthz?last_errors=1.
//
// Compiles and passes in the stripped build too (-DMLSIM_OBS_DISABLE=ON):
// the endpoint tests skip (start() returns false there, which its own test
// asserts) and the flight-recorder tests assert the no-op contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analytic_predictor.h"
#include "device/fault.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/telemetry_http.h"
#include "service/service.h"
#include "trace/trace.h"
#include "uarch/ground_truth.h"

namespace mlsim {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// HTTP client + strict Prometheus parser
// ---------------------------------------------------------------------------

/// Blocking one-shot HTTP exchange against the telemetry server.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  net::TcpConn conn = net::TcpConn::connect("127.0.0.1", port);
  conn.send_all(request.data(), request.size());
  std::string rsp;
  char buf[4096];
  while (conn.readable(5000)) {
    const std::size_t n = conn.recv_some(buf, sizeof buf);
    if (n == 0) break;  // server closed (Connection: close)
    rsp.append(buf, n);
  }
  return rsp;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "GET " + target +
                                 " HTTP/1.0\r\nHost: localhost\r\n\r\n");
}

std::string status_line(const std::string& rsp) {
  return rsp.substr(0, rsp.find("\r\n"));
}

std::string body_of(const std::string& rsp) {
  const std::size_t at = rsp.find("\r\n\r\n");
  EXPECT_NE(at, std::string::npos) << rsp;
  return at == std::string::npos ? std::string() : rsp.substr(at + 4);
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    if (i == 0 ? !alpha : !(alpha || (c >= '0' && c <= '9'))) return false;
  }
  return true;
}

double parse_prom_value(const std::string& text) {
  if (text == "+Inf") return std::numeric_limits<double>::infinity();
  if (text == "-Inf") return -std::numeric_limits<double>::infinity();
  if (text == "NaN") return std::numeric_limits<double>::quiet_NaN();
  std::size_t used = 0;
  const double v = std::stod(text, &used);
  EXPECT_EQ(used, text.size()) << "trailing junk in value '" << text << "'";
  return v;
}

/// One histogram family being accumulated while scanning the exposition.
struct HistFamily {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  bool has_sum = false;
  bool has_count = false;
  double count = 0.0;
};

/// Format-strict Prometheus text-exposition (0.0.4) validation: every sample
/// belongs to a declared TYPE, names are legal, histogram buckets are
/// cumulative and end at +Inf == _count, counters end in _total.
void check_prometheus_exposition(const std::string& body) {
  ASSERT_FALSE(body.empty());
  ASSERT_EQ(body.back(), '\n') << "exposition must end with a newline";
  std::map<std::string, std::string> types;  // family -> kind
  std::map<std::string, HistFamily> hists;
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, directive, name, kind;
      ls >> hash >> directive >> name;
      ASSERT_TRUE(directive == "TYPE" || directive == "HELP") << line;
      if (directive != "TYPE") continue;
      ls >> kind;
      ASSERT_TRUE(valid_metric_name(name)) << line;
      ASSERT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      ASSERT_EQ(types.count(name), 0u) << "duplicate TYPE for " << name;
      if (kind == "counter") {
        ASSERT_GE(name.size(), 7u) << "counter family must end in _total";
        ASSERT_EQ(name.substr(name.size() - 6), "_total") << line;
      }
      types[name] = kind;
      continue;
    }
    // Sample: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::size_t name_end = std::min(brace, space);
    const std::string name = line.substr(0, name_end);
    ASSERT_TRUE(valid_metric_name(name)) << line;
    std::string labels;
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      labels = line.substr(brace + 1, close - brace - 1);
      ASSERT_EQ(line[close + 1], ' ') << line;
    }
    const double value =
        parse_prom_value(line.substr(line.rfind(' ') + 1));

    // Resolve the declared family: exact (counter/gauge) or the histogram
    // base of a _bucket/_sum/_count sample.
    std::string family = name, role;
    if (types.count(name) == 0) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s(suffix);
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0) {
          const std::string base = name.substr(0, name.size() - s.size());
          if (types.count(base) != 0 && types.at(base) == "histogram") {
            family = base;
            role = s;
            break;
          }
        }
      }
    }
    ASSERT_NE(types.count(family), 0u)
        << "sample '" << name << "' has no preceding TYPE line";
    const std::string& kind = types.at(family);
    if (kind == "histogram") {
      ASSERT_FALSE(role.empty())
          << "bare sample '" << name << "' for histogram family";
      HistFamily& h = hists[family];
      if (role == "_bucket") {
        const std::size_t le = labels.find("le=\"");
        ASSERT_NE(le, std::string::npos) << line;
        const std::size_t close = labels.find('"', le + 4);
        h.buckets.emplace_back(
            parse_prom_value(labels.substr(le + 4, close - le - 4)), value);
      } else if (role == "_sum") {
        h.has_sum = true;
      } else {
        h.has_count = true;
        h.count = value;
      }
    } else {
      ASSERT_TRUE(role.empty());
      if (kind == "counter") {
        EXPECT_GE(value, 0.0) << line;
      }
    }
  }
  for (const auto& [family, h] : hists) {
    ASSERT_FALSE(h.buckets.empty()) << family;
    ASSERT_TRUE(h.has_sum) << family << " is missing _sum";
    ASSERT_TRUE(h.has_count) << family << " is missing _count";
    for (std::size_t i = 1; i < h.buckets.size(); ++i) {
      EXPECT_GT(h.buckets[i].first, h.buckets[i - 1].first)
          << family << " bucket edges must increase";
      EXPECT_GE(h.buckets[i].second, h.buckets[i - 1].second)
          << family << " bucket counts must be cumulative";
    }
    EXPECT_TRUE(std::isinf(h.buckets.back().first))
        << family << " must end with an le=\"+Inf\" bucket";
    EXPECT_EQ(h.buckets.back().second, h.count)
        << family << " +Inf bucket must equal _count";
  }
}

// ---------------------------------------------------------------------------
// /metrics
// ---------------------------------------------------------------------------

TEST(TelemetryHttp, MetricsEndpointServesStrictPrometheus) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::reset_trace();
  MLSIM_COUNTER_ADD(obs::names::kSvcAccepted, 3);
  MLSIM_GAUGE_SET(obs::names::kSvcQueueDepth, 2.0);
  for (int i = 0; i < 10; ++i) {
    MLSIM_HIST_RECORD(obs::names::kSvcRequestNs, 1e6 * (i + 1));
  }
  MLSIM_HIST_RECORD(obs::names::kSvcRequestNs, 1e30);  // overflow bucket

  obs::TelemetryServer srv;
  ASSERT_TRUE(srv.start({}));
  ASSERT_NE(srv.port(), 0);
  const std::string rsp = http_get(srv.port(), "/metrics");
  EXPECT_NE(status_line(rsp).find("200"), std::string::npos) << rsp;
  EXPECT_NE(rsp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = body_of(rsp);
  check_prometheus_exposition(body);
  EXPECT_NE(body.find("mlsim_service_requests_accepted_total"),
            std::string::npos);
  EXPECT_NE(body.find("mlsim_service_queue_depth 2"), std::string::npos);
  EXPECT_NE(body.find("mlsim_service_request_ns_bucket"), std::string::npos);
  srv.stop();
  EXPECT_EQ(srv.port(), 0);
  obs::set_enabled(false);
}

TEST(TelemetryHttp, MetricsStayParseableUnderConcurrentRecording) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::TelemetryServer srv;
  ASSERT_TRUE(srv.start({}));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MLSIM_COUNTER_ADD(obs::names::kSvcAccepted, 1);
      MLSIM_HIST_RECORD(obs::names::kSvcRequestNs, 12345.0);
    }
  });
  for (int scrape = 0; scrape < 5; ++scrape) {
    const std::string rsp = http_get(srv.port(), "/metrics");
    EXPECT_NE(status_line(rsp).find("200"), std::string::npos);
    check_prometheus_exposition(body_of(rsp));
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  srv.stop();
  obs::set_enabled(false);
}

// ---------------------------------------------------------------------------
// /healthz and /tracez
// ---------------------------------------------------------------------------

TEST(TelemetryHttp, HealthzServesCallbackWithLastErrorsQuery) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::TelemetryOptions to;
  to.health = [](std::size_t last_errors) {
    return "{\"probe\":" + std::to_string(last_errors) + "}";
  };
  obs::TelemetryServer srv;
  ASSERT_TRUE(srv.start(std::move(to)));
  EXPECT_EQ(body_of(http_get(srv.port(), "/healthz")), "{\"probe\":0}");
  EXPECT_EQ(body_of(http_get(srv.port(), "/healthz?last_errors=3")),
            "{\"probe\":3}");
  // Malformed query values are a client error, not a crash.
  const std::string bad = http_get(srv.port(), "/healthz?last_errors=abc");
  EXPECT_NE(status_line(bad).find("400"), std::string::npos) << bad;
  srv.stop();
  obs::set_enabled(false);
}

TEST(TelemetryHttp, HealthzWithoutCallbackStillAnswers) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::TelemetryServer srv;
  ASSERT_TRUE(srv.start({}));
  const std::string rsp = http_get(srv.port(), "/healthz");
  EXPECT_NE(status_line(rsp).find("200"), std::string::npos);
  EXPECT_NE(body_of(rsp).find("\"status\":\"ok\""), std::string::npos);
  srv.stop();
  obs::set_enabled(false);
}

TEST(TelemetryHttp, TracezServesChromeTraceSnapshot) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::reset_trace();
  {
    MLSIM_TRACE_SPAN("test/telemetry-span");
  }
  obs::TelemetryServer srv;
  ASSERT_TRUE(srv.start({}));
  const std::string rsp = http_get(srv.port(), "/tracez");
  EXPECT_NE(status_line(rsp).find("200"), std::string::npos);
  EXPECT_NE(rsp.find("Content-Type: application/json"), std::string::npos);
  const std::string body = body_of(rsp);
  EXPECT_EQ(body.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(body.find("\"name\":\"test/telemetry-span\""), std::string::npos);
  srv.stop();
  obs::set_enabled(false);
}

// ---------------------------------------------------------------------------
// Request routing and error responses
// ---------------------------------------------------------------------------

TEST(TelemetryHttp, UnknownPathsMethodsAndGarbageAreRejected) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::TelemetryServer srv;
  ASSERT_TRUE(srv.start({}));
  const std::uint64_t errors_before =
      obs::default_registry().counter(obs::names::kTelemetryHttpErrors).value();

  EXPECT_NE(status_line(http_get(srv.port(), "/nope")).find("404"),
            std::string::npos);
  EXPECT_NE(status_line(http_exchange(
                            srv.port(),
                            "POST /metrics HTTP/1.0\r\n\r\n"))
                .find("405"),
            std::string::npos);
  EXPECT_NE(status_line(http_exchange(srv.port(), "garbage\r\n\r\n"))
                .find("400"),
            std::string::npos);
  EXPECT_GE(
      obs::default_registry().counter(obs::names::kTelemetryHttpErrors).value(),
      errors_before + 3);
  srv.stop();
  obs::set_enabled(false);
}

TEST(TelemetryHttp, DisabledBuildIsEndpointFree) {
  if (obs::kCompiledIn) GTEST_SKIP() << "instrumented build";
  obs::TelemetryServer srv;
  EXPECT_FALSE(srv.start({}));
  EXPECT_EQ(srv.port(), 0);
  srv.stop();  // idempotent no-op
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, ReconstructsErrorSequencesMostRecentFirst) {
  using obs::flight::Event;
  obs::set_enabled(true);
  obs::flight::reset();
  // Request 7 completes fine; 8 and 9 end badly, 9 last.
  obs::flight::record(7, Event::kAdmitted);
  obs::flight::record(7, Event::kCompleted);
  obs::flight::record(8, Event::kAdmitted);
  obs::flight::record(8, Event::kQueued, 1);
  obs::flight::record(9, Event::kAdmitted);
  obs::flight::record(8, Event::kDeadlineMissed);
  obs::flight::record(9, Event::kHung);
  obs::set_enabled(false);

  const std::string js = obs::flight::last_errors_json(8);
  if (!obs::kCompiledIn) {
    EXPECT_EQ(js, "[]");
    return;
  }
  ASSERT_EQ(js.front(), '[');
  ASSERT_EQ(js.back(), ']');
  const std::size_t id9 = js.find("\"id\":9");
  const std::size_t id8 = js.find("\"id\":8");
  ASSERT_NE(id9, std::string::npos) << js;
  ASSERT_NE(id8, std::string::npos) << js;
  EXPECT_LT(id9, id8) << "most recent bad outcome must come first: " << js;
  EXPECT_EQ(js.find("\"id\":7"), std::string::npos)
      << "completed request must not be listed: " << js;
  // Request 8's events appear in recording order.
  const std::size_t admitted = js.find("\"ev\":\"admitted\"", id8);
  const std::size_t queued = js.find("\"ev\":\"queued\"", id8);
  const std::size_t missed = js.find("\"ev\":\"deadline_missed\"", id8);
  ASSERT_NE(missed, std::string::npos) << js;
  EXPECT_LT(admitted, queued);
  EXPECT_LT(queued, missed);
  EXPECT_NE(js.find("\"detail\":1", queued), std::string::npos) << js;
}

TEST(FlightRecorder, LimitsToRequestedCountAndDedupesIds) {
  using obs::flight::Event;
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::flight::reset();
  for (std::uint64_t id = 1; id <= 5; ++id) {
    obs::flight::record(id, Event::kAdmitted);
    obs::flight::record(id, Event::kFailed);
    obs::flight::record(id, Event::kFailed);  // repeat: still one entry
  }
  obs::set_enabled(false);
  const std::string js = obs::flight::last_errors_json(2);
  EXPECT_NE(js.find("\"id\":5"), std::string::npos) << js;
  EXPECT_NE(js.find("\"id\":4"), std::string::npos) << js;
  EXPECT_EQ(js.find("\"id\":3"), std::string::npos) << js;
  // Exactly two entries.
  std::size_t entries = 0;
  for (std::size_t at = js.find("\"id\":"); at != std::string::npos;
       at = js.find("\"id\":", at + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, 2u);
}

TEST(FlightRecorder, RuntimeDisabledRecordsNothing) {
  obs::set_enabled(false);
  obs::flight::reset();
  obs::flight::record(1, obs::flight::Event::kFailed);
  EXPECT_EQ(obs::flight::recorded(), 0u);
  EXPECT_EQ(obs::flight::last_errors_json(4), "[]");
}

TEST(FlightRecorder, ConcurrentRecordingAndReadingIsSafe) {
  using obs::flight::Event;
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::flight::reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(t) * kPerThread + i;
        obs::flight::record(id, Event::kAdmitted);
        obs::flight::record(id, (i % 7 == 0) ? Event::kFailed
                                             : Event::kCompleted);
      }
    });
  }
  // Read post-mortems while the ring is being overwritten underneath.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string js = obs::flight::last_errors_json(8);
      EXPECT_EQ(js.front(), '[');
      EXPECT_EQ(js.back(), ']');
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  obs::set_enabled(false);
  EXPECT_EQ(obs::flight::recorded(), 2u * kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// End to end: a deadline-missed request's post-mortem via /healthz
// ---------------------------------------------------------------------------

trace::EncodedTrace make_trace(const std::string& abbr, std::size_t n) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

TEST(TelemetryService, DeadlineMissedRequestAppearsInHealthzLastErrors) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "stripped build";
  obs::set_enabled(true);
  obs::flight::reset();
  const trace::EncodedTrace tr = make_trace("mcf", 2000);
  core::AnalyticPredictor primary, fallback;
  device::FaultOptions fo;
  fo.seed = 1;
  fo.straggler_rate = 1.0;  // every attempt stalls for straggler_stall
  const device::FaultInjector inj(fo);

  service::ServiceOptions so;
  so.num_workers = 1;
  so.queue_capacity = 8;
  so.hang_timeout = 10s;  // the stall below must not trip the watchdog
  service::SimulationService svc(primary, fallback, so);

  obs::TelemetryOptions to;
  to.health = [&svc](std::size_t n) { return svc.health_json(n); };
  obs::TelemetryServer srv;
  ASSERT_TRUE(srv.start(std::move(to)));

  // Occupy the single worker with a stalling request, then let a deadlined
  // request expire in the queue.
  service::Request blocker_rq;
  blocker_rq.trace = &tr;
  blocker_rq.engine = service::EngineKind::kParallel;
  blocker_rq.faults = &inj;
  blocker_rq.straggler_stall = 300ms;
  auto blocker = svc.submit(std::move(blocker_rq));
  while (svc.inflight() == 0) std::this_thread::sleep_for(1ms);

  service::Request doomed;
  doomed.trace = &tr;
  doomed.engine = service::EngineKind::kParallel;
  doomed.deadline = 1ms;
  auto t = svc.submit(std::move(doomed));
  const std::uint64_t doomed_id = t.id;
  ASSERT_EQ(t.future.get().status, service::ResponseStatus::kDeadlineExceeded);

  const std::string rsp = http_get(srv.port(), "/healthz?last_errors=1");
  EXPECT_NE(status_line(rsp).find("200"), std::string::npos);
  const std::string body = body_of(rsp);
  EXPECT_NE(body.find("\"last_errors\":["), std::string::npos) << body;
  EXPECT_NE(body.find("\"id\":" + std::to_string(doomed_id)),
            std::string::npos)
      << body;
  // The post-mortem shows the lifecycle: admitted -> queued ->
  // deadline_missed, in that order.
  const std::size_t at = body.find("\"id\":" + std::to_string(doomed_id));
  const std::size_t admitted = body.find("\"ev\":\"admitted\"", at);
  const std::size_t queued = body.find("\"ev\":\"queued\"", at);
  const std::size_t missed = body.find("\"ev\":\"deadline_missed\"", at);
  ASSERT_NE(missed, std::string::npos) << body;
  EXPECT_LT(admitted, queued);
  EXPECT_LT(queued, missed);

  (void)blocker.future.get();
  srv.stop();
  svc.shutdown();
  obs::set_enabled(false);
}

}  // namespace
}  // namespace mlsim
