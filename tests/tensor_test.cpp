// Tests for the tensor/NN substrate, including numeric gradient checks for
// every trainable layer (the strongest correctness evidence a from-scratch
// NN library can offer).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/lstm.h"
#include "tensor/model.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace mlsim::tensor {
namespace {

// ----------------------------------------------------------------- tensor --

TEST(Tensor, ShapeAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  t.fill(2.5f);
  EXPECT_EQ(t(1, 2), 2.5f);
  EXPECT_THROW(t.dim(2), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t.at(i) = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(Tensor, RankLimits) {
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), CheckError);
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), CheckError);
  EXPECT_NO_THROW(Tensor({1, 2, 3, 4}));
}

// --------------------------------------------------- numeric grad checking --

// Central-difference gradient check of d(loss)/d(param) for a given layer
// stack: loss = mse(forward(x), target).
template <typename Forward, typename Backward>
void grad_check(std::vector<Param> params, const Forward& fwd, const Backward& bwd,
                const Tensor& x, const Tensor& target, double tol = 2e-2) {
  Tensor grad;
  Tensor out = fwd(x);
  mse_loss(out, target, grad);
  bwd(grad);

  Rng rng(99);
  for (const auto& p : params) {
    // Spot check a handful of entries per parameter block.
    for (int probe = 0; probe < 5; ++probe) {
      const std::size_t idx = rng.next_below(p.value->size());
      const float orig = (*p.value)[idx];
      const float analytic = (*p.grad)[idx];
      const float h = 1e-3f;
      (*p.value)[idx] = orig + h;
      Tensor g1;
      const float l1 = mse_loss(fwd(x), target, g1);
      (*p.value)[idx] = orig - h;
      Tensor g2;
      const float l2 = mse_loss(fwd(x), target, g2);
      (*p.value)[idx] = orig;
      const double numeric = (static_cast<double>(l1) - l2) / (2.0 * h);
      const double denom = std::max(1.0, std::abs(numeric) + std::abs(analytic));
      EXPECT_NEAR(analytic, numeric, tol * denom)
          << "param block entry " << idx;
    }
  }
}

TEST(Conv1D, ForwardShapeAndBias) {
  Rng rng(1);
  Conv1D conv(4, 8, 3, rng);
  Tensor x({2, 4, 10});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{2, 8, 10}));
  // Zero input -> bias everywhere (bias initialised to 0 here).
  for (float v : y.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Conv1D, MatchesManualComputation) {
  Rng rng(2);
  Conv1D conv(1, 1, 3, rng);
  conv.weight() = {0.5f, 1.0f, -0.25f};  // (1,1,3)
  conv.bias() = {0.1f};
  Tensor x({1, 1, 4});
  x.at(0) = 1;
  x.at(1) = 2;
  x.at(2) = 3;
  x.at(3) = 4;
  const Tensor y = conv.forward(x);
  // 'same' padding: y[l] = 0.5*x[l-1] + 1.0*x[l] - 0.25*x[l+1] + 0.1
  EXPECT_FLOAT_EQ(y.at(0), 1.0f - 0.5f + 0.1f);
  EXPECT_FLOAT_EQ(y.at(1), 0.5f + 2.0f - 0.75f + 0.1f);
  EXPECT_FLOAT_EQ(y.at(3), 1.5f + 4.0f + 0.1f);
}

TEST(Conv1D, GradientCheck) {
  Rng rng(3);
  Conv1D conv(3, 5, 3, rng);
  Tensor x({2, 3, 7});
  Rng xr(4);
  for (auto& v : x.flat()) v = static_cast<float>(xr.normal());
  Tensor target({2, 5, 7});
  for (auto& v : target.flat()) v = static_cast<float>(xr.normal());
  std::vector<Param> params;
  conv.collect_params(params);
  grad_check(
      params, [&](const Tensor& in) { return conv.forward(in); },
      [&](const Tensor& g) {
        conv.zero_grad();
        conv.forward(x);
        conv.backward(g);
      },
      x, target);
}

TEST(Conv1D, InputGradientCheck) {
  Rng rng(5);
  Conv1D conv(2, 3, 3, rng);
  Tensor x({1, 2, 6});
  Rng xr(6);
  for (auto& v : x.flat()) v = static_cast<float>(xr.normal());
  Tensor target({1, 3, 6});
  for (auto& v : target.flat()) v = static_cast<float>(xr.normal());

  Tensor grad;
  mse_loss(conv.forward(x), target, grad);
  const Tensor gx = conv.backward(grad);

  Rng pr(7);
  for (int probe = 0; probe < 8; ++probe) {
    const std::size_t idx = pr.next_below(x.numel());
    const float orig = x.at(idx);
    const float h = 1e-3f;
    Tensor xp = x;
    xp.at(idx) = orig + h;
    Tensor g1;
    const float l1 = mse_loss(conv.forward(xp), target, g1);
    xp.at(idx) = orig - h;
    Tensor g2;
    const float l2 = mse_loss(conv.forward(xp), target, g2);
    const double numeric = (static_cast<double>(l1) - l2) / (2.0 * h);
    EXPECT_NEAR(gx.at(idx), numeric, 2e-2 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(Conv1D, RejectsEvenKernel) {
  Rng rng(1);
  EXPECT_THROW(Conv1D(2, 2, 2, rng), CheckError);
}

TEST(Conv1D, FlopsAccounting) {
  Rng rng(1);
  Conv1D conv(50, 64, 3, rng);
  EXPECT_EQ(conv.flops(1, 112), 2u * 64 * 50 * 3 * 112);
}

TEST(Linear, MatchesManualComputation) {
  Rng rng(8);
  Linear fc(2, 2, rng);
  fc.weight() = {1.0f, 2.0f, -1.0f, 0.5f};
  fc.bias() = {0.5f, -0.5f};
  Tensor x({1, 2});
  x.at(0) = 3;
  x.at(1) = 4;
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 3 + 8 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(1), -3 + 2 - 0.5f);
}

TEST(Linear, GradientCheck) {
  Rng rng(9);
  Linear fc(6, 4, rng);
  Tensor x({3, 6}), target({3, 4});
  Rng xr(10);
  for (auto& v : x.flat()) v = static_cast<float>(xr.normal());
  for (auto& v : target.flat()) v = static_cast<float>(xr.normal());
  std::vector<Param> params;
  fc.collect_params(params);
  grad_check(
      params, [&](const Tensor& in) { return fc.forward(in); },
      [&](const Tensor& g) {
        fc.zero_grad();
        fc.forward(x);
        fc.backward(g);
      },
      x, target);
}

TEST(ReLU, ForwardBackward) {
  ReLU relu;
  Tensor x({1, 4});
  x.at(0) = -1;
  x.at(1) = 0;
  x.at(2) = 2;
  x.at(3) = -3;
  const Tensor y = relu.forward(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(2), 2.0f);
  Tensor g({1, 4});
  g.fill(1.0f);
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx.at(0), 0.0f);
  EXPECT_EQ(gx.at(1), 0.0f);  // gradient 0 at x == 0
  EXPECT_EQ(gx.at(2), 1.0f);
}

TEST(MseLoss, ValueAndGradient) {
  Tensor pred({1, 2}), target({1, 2}), grad;
  pred.at(0) = 1;
  pred.at(1) = 3;
  target.at(0) = 0;
  target.at(1) = 1;
  const float loss = mse_loss(pred, target, grad);
  EXPECT_FLOAT_EQ(loss, (1.0f + 4.0f) / 2);  // mean of squared differences
  EXPECT_FLOAT_EQ(grad.at(0), 1.0f);              // 2*d/numel = 2*1/2
  EXPECT_FLOAT_EQ(grad.at(1), 2.0f);
}

// ------------------------------------------------------------------- lstm --

TEST(Lstm, ForwardShapes) {
  Rng rng(11);
  Lstm lstm(3, 5, rng);
  Tensor x({2, 4, 3});
  const Tensor h = lstm.forward(x);
  EXPECT_EQ(h.shape(), (std::vector<std::size_t>{2, 4, 5}));
  EXPECT_EQ(lstm.last_hidden().shape(), (std::vector<std::size_t>{2, 5}));
}

TEST(Lstm, ZeroInputGivesBoundedOutput) {
  Rng rng(12);
  Lstm lstm(2, 4, rng);
  Tensor x({1, 6, 2});
  const Tensor h = lstm.forward(x);
  for (float v : h.flat()) {
    EXPECT_LT(std::abs(v), 1.0f);  // tanh-bounded
  }
}

TEST(Lstm, GradientCheck) {
  Rng rng(13);
  Lstm lstm(2, 3, rng);
  Tensor x({1, 3, 2}), target({1, 3, 3});
  Rng xr(14);
  for (auto& v : x.flat()) v = static_cast<float>(xr.normal());
  for (auto& v : target.flat()) v = static_cast<float>(xr.normal() * 0.3);
  std::vector<Param> params;
  lstm.collect_params(params);
  grad_check(
      params, [&](const Tensor& in) { return lstm.forward(in); },
      [&](const Tensor& g) {
        lstm.zero_grad();
        lstm.forward(x);
        lstm.backward(g);
      },
      x, target, 3e-2);
}

TEST(Lstm, StatefulAcrossSequenceNotAcrossCalls) {
  Rng rng(15);
  Lstm lstm(1, 2, rng);
  Tensor x({1, 2, 1});
  x.at(0) = 1.0f;
  x.at(1) = 1.0f;
  const Tensor h1 = lstm.forward(x);
  const Tensor h2 = lstm.forward(x);
  // Fresh state each forward: identical outputs.
  for (std::size_t i = 0; i < h1.numel(); ++i) EXPECT_EQ(h1.at(i), h2.at(i));
  // Within a sequence, state accumulates: t=1 differs from t=0.
  EXPECT_NE(h1(0, 0, 0), h1(0, 1, 0));
}

// ------------------------------------------------------------------ model --

TEST(SimNetModel, ForwardShapeAndFlops) {
  SimNetModelConfig cfg{.in_features = 50, .window = 16, .channels = 8,
                        .hidden = 12, .kernel = 3, .outputs = 3};
  SimNetModel m(cfg);
  Tensor x({4, 50, 16});
  const Tensor y = m.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{4, 3}));
  EXPECT_GT(m.flops_per_batch(1), 0u);
  EXPECT_EQ(m.flops_per_batch(2), 2 * m.flops_per_batch(1));
}

TEST(SimNetModel, TrainingReducesLoss) {
  SimNetModelConfig cfg{.in_features = 4, .window = 8, .channels = 6,
                        .hidden = 10, .kernel = 3, .outputs = 2};
  SimNetModel m(cfg, 1);
  Adam optim(m.params(), {.lr = 5e-3f});

  // Learnable synthetic task: outputs are linear functions of the input.
  Rng rng(20);
  Tensor x({16, 4, 8}), target({16, 2});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  for (std::size_t b = 0; b < 16; ++b) {
    float s0 = 0, s1 = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t l = 0; l < 8; ++l) {
        const float v = x(b, c, l);
        s0 += v * 0.05f;
        s1 += (c == 1 ? v : 0.0f) * 0.1f;
      }
    }
    target(b, 0) = s0;
    target(b, 1) = s1;
  }

  Tensor grad;
  float first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    m.zero_grad();
    const Tensor pred = m.forward(x);
    const float loss = mse_loss(pred, target, grad);
    if (step == 0) first = loss;
    last = loss;
    m.backward(grad);
    optim.step();
  }
  EXPECT_LT(last, first * 0.2f);
}

TEST(SimNetModel, SaveLoadRoundTrip) {
  SimNetModelConfig cfg{.in_features = 6, .window = 5, .channels = 4,
                        .hidden = 7, .kernel = 3, .outputs = 3};
  SimNetModel m(cfg, 17);
  const auto path = std::filesystem::temp_directory_path() / "mlsim_model.bin";
  m.save(path);
  SimNetModel back = SimNetModel::load(path);
  EXPECT_EQ(back.config(), cfg);
  Tensor x({2, 6, 5});
  Rng rng(18);
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const Tensor y1 = m.forward(x);
  const Tensor y2 = back.forward(x);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1.at(i), y2.at(i));
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------- adam --

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise (w - 3)^2 by hand-fed gradients.
  std::vector<float> w{0.0f}, g{0.0f};
  Adam adam({{&w, &g}}, {.lr = 0.1f});
  for (int i = 0; i < 300; ++i) {
    g[0] = 2.0f * (w[0] - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(Adam, GradClipBoundsStep) {
  std::vector<float> w{0.0f}, g{0.0f};
  Adam adam({{&w, &g}}, {.lr = 0.1f, .grad_clip = 1.0f});
  g[0] = 1e6f;
  adam.step();
  EXPECT_LT(std::abs(w[0]), 0.2f);
}

TEST(Adam, CountsParameters) {
  std::vector<float> a(10, 0.0f), ga(10, 0.0f), b(5, 0.0f), gb(5, 0.0f);
  std::vector<Param> params{{&a, &ga}, {&b, &gb}};
  Adam adam(params);
  EXPECT_EQ(adam.num_parameters(), 15u);
}

TEST(Adam, RejectsMismatchedSizes) {
  std::vector<float> w(3, 0.0f), g(2, 0.0f);
  std::vector<Param> params{{&w, &g}};
  EXPECT_THROW(Adam{params}, CheckError);
}

// ------------------------------------------------------------------ quant --

TEST(Quant, HalfQuantizationBoundsError) {
  Rng rng(21);
  std::vector<float> v(1000);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  auto q = v;
  quantize_half_inplace(q);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(q[i], v[i], std::abs(v[i]) * 0.001f + 1e-6f);
  }
}

TEST(Quant, Prune2to4StructureAndSelection) {
  std::vector<float> v{0.1f, -0.9f, 0.5f, 0.2f, 1.0f, 0.0f, -2.0f, 0.3f};
  prune_2to4_inplace(v);
  EXPECT_TRUE(satisfies_2to4(v));
  // Group 1 keeps -0.9 and 0.5.
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(v[1], -0.9f);
  EXPECT_EQ(v[2], 0.5f);
  EXPECT_EQ(v[3], 0.0f);
  // Group 2 keeps 1.0 and -2.0.
  EXPECT_EQ(v[4], 1.0f);
  EXPECT_EQ(v[6], -2.0f);
  EXPECT_GE(sparsity(v), 0.5);
}

TEST(Quant, PruneTailUnaligned) {
  std::vector<float> v{1, 2, 3, 4, 5, 6};  // last 2 not in an aligned group
  prune_2to4_inplace(v);
  EXPECT_EQ(v[4], 5.0f);
  EXPECT_EQ(v[5], 6.0f);
}

TEST(Quant, ModelPruningKeepsAccuracyReasonable) {
  SimNetModelConfig cfg{.in_features = 8, .window = 8, .channels = 8,
                        .hidden = 8, .kernel = 3, .outputs = 2};
  SimNetModel m(cfg, 33);
  Tensor x({4, 8, 8});
  Rng rng(34);
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const Tensor before = m.forward(x);
  prune_model_2to4(m);
  quantize_model_half(m);
  EXPECT_TRUE(satisfies_2to4(m.conv1().weight()));
  EXPECT_TRUE(satisfies_2to4(m.fc1().weight()));
  const Tensor after = m.forward(x);
  // Outputs change but stay in the same ballpark (bounded perturbation).
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_LT(std::abs(after.at(i) - before.at(i)),
              std::abs(before.at(i)) + 2.0f);
  }
}

}  // namespace
}  // namespace mlsim::tensor
