// Tests for the simulated device layer: transfer/kernel/inference cost
// models, stream semantics, events and the multi-GPU cluster.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/cost_model.h"
#include "device/cluster.h"
#include "device/device.h"
#include "device/gpu_spec.h"

namespace mlsim::device {
namespace {

// --------------------------------------------------------------- gpu spec --

TEST(GpuSpec, TransferTimeSublinear) {
  const GpuSpec a100 = GpuSpec::a100();
  const double one = a100.h2d_time_us(200);
  const double ten = a100.h2d_time_us(2000);
  EXPECT_LT(ten, 10 * one);  // latency amortises: the pipelining lever
  EXPECT_GT(ten, one);
}

TEST(GpuSpec, TransferCalibration) {
  // Calibration anchor (paper Fig. 11): one full 112-row window ~ 4 µs.
  const GpuSpec a100 = GpuSpec::a100();
  const double full_window = a100.h2d_time_us(112 * 50 * 4);
  EXPECT_GT(full_window, 2.0);
  EXPECT_LT(full_window, 6.0);
  // A single instruction row is latency-bound (~0.45 µs, Fig. 15).
  const double row = a100.h2d_time_us(200);
  EXPECT_GT(row, 0.3);
  EXPECT_LT(row, 0.7);
}

TEST(GpuSpec, InferenceEngineOrdering) {
  // Paper Fig. 13: LibTorch > TensorRT > +half > +2:4.
  const GpuSpec a100 = GpuSpec::a100();
  const std::size_t flops = 3'190'000;  // paper's per-inference workload
  const double libtorch = a100.inference_time_us(Engine::kLibTorch, flops);
  const double trt = a100.inference_time_us(Engine::kTensorRT, flops);
  const double half = a100.inference_time_us(Engine::kTensorRTHalf, flops);
  const double sparse = a100.inference_time_us(Engine::kTensorRTSparse, flops);
  EXPECT_GT(libtorch, trt);
  EXPECT_GT(trt, half);
  EXPECT_GT(half, sparse);
  // Roughly the paper's magnitudes (1.0 / 0.34 / 0.26 / 0.22 µs).
  EXPECT_NEAR(libtorch, 1.0, 0.5);
  EXPECT_NEAR(trt, 0.34, 0.2);
  EXPECT_NEAR(sparse, 0.22, 0.12);
}

TEST(GpuSpec, V100SlowerNoSparse) {
  const GpuSpec v100 = GpuSpec::v100();
  const GpuSpec a100 = GpuSpec::a100();
  const std::size_t flops = 3'190'000;
  EXPECT_GT(v100.inference_time_us(Engine::kTensorRT, flops),
            a100.inference_time_us(Engine::kTensorRT, flops));
  // No sparse Tensor Cores on V100: 2:4 gives no speedup over half.
  EXPECT_DOUBLE_EQ(v100.inference_time_us(Engine::kTensorRTSparse, flops),
                   v100.inference_time_us(Engine::kTensorRTHalf, flops));
}

TEST(GpuSpec, BatchedInferenceAmortizesOverhead) {
  const GpuSpec a100 = GpuSpec::a100();
  const std::size_t flops = 500'000;
  const double single = a100.inference_time_us(Engine::kTensorRT, flops);
  const double batch64 = a100.inference_time_us(Engine::kTensorRT, flops * 64);
  EXPECT_LT(batch64, 64 * single);
}

TEST(AllReduce, GrowsSlowlyWithGpus) {
  EXPECT_EQ(allreduce_time_us(1, 1024), 0.0);
  const double g2 = allreduce_time_us(2, 1024);
  const double g256 = allreduce_time_us(256, 1024);
  EXPECT_GT(g2, 0.0);
  EXPECT_LT(g256, g2 * 64);  // logarithmic latency term
}

// ----------------------------------------------------------------- device --

TEST(Device, CopyPerformsRealMemcpyAndAdvancesTime) {
  Device dev;
  std::vector<int> src{1, 2, 3}, dst(3, 0);
  const double t = dev.copy_h2d(dst.data(), src.data(), 3 * sizeof(int), 0);
  EXPECT_EQ(dst, src);
  EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(dev.record(0), t);
}

TEST(Device, KernelRunsFunctionNow) {
  Device dev;
  bool ran = false;
  dev.launch(0, 64, 0, [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_GT(dev.record(0), 0.0);
}

TEST(Device, StreamsAdvanceIndependently) {
  Device dev;
  const StreamId s1 = dev.create_stream();
  dev.advance(0, 10.0);
  dev.advance(s1, 3.0);
  EXPECT_DOUBLE_EQ(dev.record(0), 10.0);
  EXPECT_GT(dev.record(s1), 2.9);
  EXPECT_DOUBLE_EQ(dev.synchronize(), 10.0);
}

TEST(Device, WaitImplementsEvents) {
  Device dev;
  const StreamId s1 = dev.create_stream();
  dev.advance(0, 8.0);
  const double ev = dev.record(0);
  dev.wait(s1, ev);
  EXPECT_GE(dev.record(s1), 8.0);
  // Waiting on an earlier event is a no-op.
  dev.wait(s1, 1.0);
  EXPECT_GE(dev.record(s1), 8.0);
}

TEST(Device, ResetTimeClearsCursors) {
  Device dev;
  dev.advance(0, 5.0);
  dev.reset_time();
  EXPECT_DOUBLE_EQ(dev.synchronize(), 0.0);
}

TEST(Device, InvalidStreamRejected) {
  Device dev;
  EXPECT_THROW(dev.advance(7, 1.0), mlsim::CheckError);
}

TEST(Device, CopyComputeOverlapShortensTotal) {
  // Double buffering: with two streams, total < serial sum.
  Device serial;
  serial.copy_h2d(nullptr, nullptr, 100000, 0);
  serial.advance(0, 5.0);
  const double serial_total = serial.synchronize();

  Device pipelined;
  const StreamId copy = pipelined.create_stream();
  pipelined.copy_h2d(nullptr, nullptr, 100000, copy);
  pipelined.advance(0, 5.0);  // compute overlaps the copy
  const double pipe_total = pipelined.synchronize();
  EXPECT_LT(pipe_total, serial_total);
}

// ---------------------------------------------------------------- cluster --

TEST(Cluster, SlowestDevicePlusGather) {
  Cluster cl(4, GpuSpec::a100());
  cl.gpu(0).advance(0, 10.0);
  cl.gpu(3).advance(0, 25.0);
  const double total = cl.total_time_us(1024);
  EXPECT_GT(total, 25.0);
  EXPECT_LT(total, 26.0 + allreduce_time_us(4, 1024));
}

TEST(Cluster, ResetAndBounds) {
  Cluster cl(2, GpuSpec::v100());
  cl.gpu(1).advance(0, 9.0);
  cl.reset_time();
  EXPECT_DOUBLE_EQ(cl.total_time_us(0), allreduce_time_us(2, 0));
  EXPECT_THROW(cl.gpu(2), mlsim::CheckError);
  EXPECT_THROW(Cluster(0, GpuSpec::a100()), mlsim::CheckError);
}

// ------------------------------------------------------------- cost model --

TEST(CostModel, StepCalibrationShapes) {
  mlsim::core::CostModel cm;
  const std::size_t rows = 112;
  // Fig. 11: CPU construction ~1.84 µs vs GPU construction ~0.33 µs.
  EXPECT_NEAR(cm.cpu_construct_us(rows), 1.84, 0.6);
  EXPECT_NEAR(cm.gpu_construct_us(rows), 0.33, 0.15);
  // Fig. 12: sliding window cheaper than the gather kernel at N = 10.
  EXPECT_LT(cm.swiq_construct_us(10), cm.gpu_construct_us(rows));
  // Custom conv construction cheapest (~0.1 µs at N=10, Fig. 16 narrative).
  EXPECT_LT(cm.custom_conv_construct_us(10), cm.swiq_construct_us(10));
}

TEST(CostModel, SlidingWindowMonotoneInN) {
  mlsim::core::CostModel cm;
  double prev = 1e9;
  for (std::size_t n = 1; n <= 20; ++n) {
    const double t = cm.swiq_construct_us(n);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(CostModel, CustomConvSkipsPaddingFlops) {
  mlsim::core::CostModel cm;
  const std::size_t flops = 3'000'000;
  const double full = cm.inference_us(Engine::kTensorRT, flops, 1, true, 1.0);
  const double third = cm.inference_us(Engine::kTensorRT, flops, 1, true, 0.32);
  EXPECT_LT(third, full);
  const double dense = cm.inference_us(Engine::kTensorRT, flops, 1, false, 0.32);
  EXPECT_LT(third, dense);
}

TEST(CostModel, BatchedRowCopyAmortizes) {
  mlsim::core::CostModel cm;
  EXPECT_LT(cm.h2d_batched_row_us(10), cm.h2d_batched_row_us(1));
  EXPECT_LT(cm.h2d_batched_row_us(1), cm.h2d_full_window_us(112));
}

}  // namespace
}  // namespace mlsim::device
