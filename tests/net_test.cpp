// TCP socket + RPC framing layer (net/socket.h, net/frame.h): endpoint
// parsing, loopback frame round-trips, and the transport error taxonomy —
// truncation, corruption, and clean EOF must each surface distinctly
// (docs/DISTRIBUTED.md) instead of hanging or crashing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/wire.h"
#include "net/frame.h"
#include "net/socket.h"

namespace mlsim::net {
namespace {

/// A connected loopback pair: first = client side, second = accepted side.
std::pair<TcpConn, TcpConn> loopback_pair() {
  TcpListener listener = TcpListener::bind(0);
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port());
  auto server = listener.accept(2000);
  EXPECT_TRUE(server.has_value());
  return {std::move(client), std::move(*server)};
}

// ---- endpoint parsing -------------------------------------------------------

TEST(HostPortParse, AcceptsValidEndpoints) {
  const auto a = parse_host_port("127.0.0.1:8080");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->host, "127.0.0.1");
  EXPECT_EQ(a->port, 8080);

  const auto b = parse_host_port("localhost:1");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->host, "localhost");
  EXPECT_EQ(b->port, 1);

  const auto c = parse_host_port("some.host.name:65535");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->port, 65535);
}

TEST(HostPortParse, RejectsMalformedEndpoints) {
  for (const char* bad :
       {"", ":", "host:", ":123", "host", "host:0", "host:65536",
        "host:999999999999", "host:12x", "host:-1", "host: 80", "host:+80",
        "host:8 0"}) {
    EXPECT_FALSE(parse_host_port(bad).has_value()) << "accepted '" << bad << "'";
  }
}

// ---- sockets ---------------------------------------------------------------

TEST(Socket, ConnectToClosedPortIsIoError) {
  std::uint16_t dead_port;
  {
    const TcpListener l = TcpListener::bind(0);
    dead_port = l.port();
  }  // closed: nothing listens there now
  EXPECT_THROW(TcpConn::connect("127.0.0.1", dead_port), IoError);
}

TEST(Socket, ReadableTimesOutWhenIdle) {
  auto [client, server] = loopback_pair();
  EXPECT_FALSE(server.readable(50));
  client.send_all("x", 1);
  EXPECT_TRUE(server.readable(2000));
}

TEST(Socket, PartialEofIsIoErrorCleanEofIsFalse) {
  {
    auto [client, server] = loopback_pair();
    client.send_all("abc", 3);
    client.close();
    char buf[8];
    EXPECT_THROW(server.recv_all(buf, sizeof buf, /*eof_ok=*/true), IoError);
  }
  {
    auto [client, server] = loopback_pair();
    client.close();
    char buf[8];
    EXPECT_FALSE(server.recv_all(buf, sizeof buf, /*eof_ok=*/true));
    EXPECT_THROW(server.recv_all(buf, sizeof buf, /*eof_ok=*/false), IoError);
  }
}

// ---- framing ---------------------------------------------------------------

TEST(Frame, LoopbackRoundTrip) {
  auto [client, server] = loopback_pair();
  send_frame(client, "hello cluster");
  std::string payload;
  ASSERT_TRUE(recv_frame(server, payload));
  EXPECT_EQ(payload, "hello cluster");

  // Several frames queued back to back stay delimited.
  send_frame(client, "one");
  send_frame(client, "");
  send_frame(client, "three");
  ASSERT_TRUE(recv_frame(server, payload));
  EXPECT_EQ(payload, "one");
  ASSERT_TRUE(recv_frame(server, payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(recv_frame(server, payload));
  EXPECT_EQ(payload, "three");
}

TEST(Frame, LargePayloadRoundTrip) {
  auto [client, server] = loopback_pair();
  std::string big(4u << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>((i * 2654435761u) >> 24);
  }
  // 4 MiB exceeds the socket buffers, so send and receive concurrently.
  std::thread sender([&] { send_frame(client, big); });
  std::string payload;
  ASSERT_TRUE(recv_frame(server, payload));
  sender.join();
  EXPECT_EQ(payload, big);
}

TEST(Frame, CleanEofReturnsFalse) {
  auto [client, server] = loopback_pair();
  client.close();
  std::string payload;
  EXPECT_FALSE(recv_frame(server, payload));
}

TEST(Frame, TruncatedHeaderIsIoError) {
  auto [client, server] = loopback_pair();
  const std::string frame = wire::seal(kFrameMagic, "payload");
  client.send_all(frame.data(), wire::kEnvelopeBytes / 2);
  client.close();
  std::string payload;
  EXPECT_THROW(recv_frame(server, payload), IoError);
}

TEST(Frame, TruncatedPayloadIsIoErrorNotAHang) {
  auto [client, server] = loopback_pair();
  const std::string frame = wire::seal(kFrameMagic, "payload");
  client.send_all(frame.data(), frame.size() - 3);
  client.close();
  std::string payload;
  EXPECT_THROW(recv_frame(server, payload), IoError);
}

TEST(Frame, CorruptPayloadIsIoError) {
  auto [client, server] = loopback_pair();
  std::string frame = wire::seal(kFrameMagic, "payload");
  frame[wire::kEnvelopeBytes + 1] ^= 0x20;  // flip a payload bit
  client.send_all(frame.data(), frame.size());
  std::string payload;
  EXPECT_THROW(recv_frame(server, payload), IoError);
}

TEST(Frame, BadMagicIsIoError) {
  auto [client, server] = loopback_pair();
  std::string frame = wire::seal(kFrameMagic ^ 0xff, "payload");
  client.send_all(frame.data(), frame.size());
  std::string payload;
  EXPECT_THROW(recv_frame(server, payload), IoError);
}

TEST(Frame, AbsurdSizeFieldIsIoErrorNotAnAllocation) {
  auto [client, server] = loopback_pair();
  std::string frame = wire::seal(kFrameMagic, "payload");
  // The size field is the last 8 envelope bytes; claim ~2^62 bytes.
  frame[wire::kEnvelopeBytes - 1] = '\x40';
  client.send_all(frame.data(), frame.size());
  std::string payload;
  EXPECT_THROW(recv_frame(server, payload), IoError);
}

TEST(Frame, PollReadableMultiplexes) {
  auto [c1, s1] = loopback_pair();
  auto [c2, s2] = loopback_pair();
  send_frame(c2, "only the second");
  const auto ready = poll_readable({s1.fd(), s2.fd()}, 2000);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_FALSE(ready[0]);
  EXPECT_TRUE(ready[1]);
}

}  // namespace
}  // namespace mlsim::net
