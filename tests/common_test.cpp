// Unit tests for the common utilities: RNG, half precision, statistics,
// tables, artifacts and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "common/artifacts.h"
#include "common/check.h"
#include "common/half.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace mlsim {
namespace {

// ------------------------------------------------------------------ check --

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(check(true, "fine")); }

TEST(Check, ThrowsOnFalseWithMessage) {
  try {
    check(false, "my message");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("my message"), std::string::npos);
  }
}

TEST(Check, IndexCheckBounds) {
  EXPECT_NO_THROW(check_index(0, 1, "i"));
  EXPECT_THROW(check_index(1, 1, "i"), CheckError);
  EXPECT_THROW(check_index(5, 3, "i"), CheckError);
}

// -------------------------------------------------------------------- rng --

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), CheckError);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, SampleCdfRespectsWeights) {
  Rng r(19);
  const auto cdf = make_cdf({1.0, 0.0, 3.0});
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[r.sample_cdf(cdf)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(Rng, SampleCdfRejectsEmptyAndZero) {
  Rng r(1);
  EXPECT_THROW(r.sample_cdf({}), CheckError);
  EXPECT_THROW(r.sample_cdf({0.0, 0.0}), CheckError);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // Child continues differently from parent.
  EXPECT_NE(child.next(), a.next());
}

TEST(Rng, MakeCdfRejectsNegative) {
  EXPECT_THROW(make_cdf({1.0, -0.5}), CheckError);
}

// ------------------------------------------------------------------- half --

TEST(Half, ExactSmallIntegers) {
  for (int i = -32; i <= 32; ++i) {
    EXPECT_EQ(quantize_to_half(static_cast<float>(i)), static_cast<float>(i));
  }
}

TEST(Half, RoundTripAccuracy) {
  Rng r(3);
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(r.uniform() * 200.0 - 100.0);
    const float q = quantize_to_half(x);
    // half has ~11 bits of mantissa: relative error < 2^-11.
    EXPECT_NEAR(q, x, std::abs(x) * 0.0005 + 1e-6f);
  }
}

TEST(Half, SpecialValues) {
  EXPECT_EQ(quantize_to_half(0.0f), 0.0f);
  EXPECT_TRUE(std::signbit(quantize_to_half(-0.0f)));
  EXPECT_TRUE(std::isinf(quantize_to_half(1e30f)));
  EXPECT_TRUE(std::isinf(quantize_to_half(-1e30f)));
  EXPECT_TRUE(std::isnan(quantize_to_half(std::nanf(""))));
}

TEST(Half, DenormalsRepresented) {
  // Smallest positive half denormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(quantize_to_half(tiny), tiny);
  // Below half precision: underflows to zero.
  EXPECT_EQ(quantize_to_half(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Half, RoundToNearestEven) {
  // 2049 is exactly between 2048 and 2050 in half (ulp = 2 there);
  // round-to-even selects 2048.
  EXPECT_EQ(quantize_to_half(2049.0f), 2048.0f);
  EXPECT_EQ(quantize_to_half(2051.0f), 2052.0f);
}

TEST(Half, BitsRoundTrip) {
  const Half h(1.5f);
  EXPECT_EQ(static_cast<float>(Half::from_bits(h.bits())), 1.5f);
}

// ------------------------------------------------------------------ stats --

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng r(23);
  for (int i = 0; i < 500; ++i) {
    const double v = r.normal();
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeEmptySides) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats e2;
  e2.merge(a);
  EXPECT_DOUBLE_EQ(e2.mean(), 3.0);
}

TEST(Stats, PercentErrorSigns) {
  EXPECT_DOUBLE_EQ(signed_percent_error(10.0, 8.0), 20.0);
  EXPECT_DOUBLE_EQ(signed_percent_error(10.0, 12.0), -20.0);
  EXPECT_DOUBLE_EQ(absolute_percent_error(10.0, 12.0), 20.0);
  EXPECT_THROW(signed_percent_error(0.0, 1.0), CheckError);
}

TEST(Stats, Mape) {
  EXPECT_DOUBLE_EQ(mean_absolute_percent_error({10, 20}, {9, 22}), (10.0 + 10.0) / 2);
  EXPECT_THROW(mean_absolute_percent_error({1.0}, {}), CheckError);
}

TEST(Stats, Percentile) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_THROW(percentile({}, 50), CheckError);
  EXPECT_THROW(percentile({1.0}, 101), CheckError);
}

// ------------------------------------------------------------------ table --

TEST(Table, PrintsAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({std::string("a"), 1.25});
  t.add_row({std::string("bb"), std::int64_t{42}});
  std::ostringstream console, csv;
  t.print(console);
  t.write_csv(csv);
  EXPECT_NE(console.str().find("| a "), std::string::npos);
  EXPECT_EQ(csv.str(), "name,value\na,1.2500\nbb,42\n");
}

TEST(Table, RejectsBadRowWidth) {
  Table t({"x"});
  EXPECT_THROW(t.add_row({std::string("a"), 1.0}), CheckError);
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(1);
  t.add_row({3.14159});
  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_EQ(csv.str(), "v\n3.1\n");
}

// ------------------------------------------------------------ thread pool --

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ChunkedVariantCoversRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(0, 1001, [&](std::size_t lo, std::size_t hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 1001u);
}

TEST(ThreadPool, SingleThreadDegradesToSerial) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(0, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, BoundedQueueRejectsPostAtCapacity) {
  // A single-thread pool has no workers draining the queue, so occupancy is
  // deterministic: two posts fill the bound, the third gets backpressure.
  ThreadPool pool(1, 2);
  EXPECT_EQ(pool.queue_capacity(), 2u);
  std::atomic<int> ran{0};
  pool.post([&] { ran++; });
  pool.post([&] { ran++; });
  EXPECT_EQ(pool.pending(), 2u);
  EXPECT_THROW(pool.post([&] { ran++; }), QueueFullError);
  EXPECT_EQ(pool.queue_high_water(), 2u);
  // Shutdown still drains every accepted task exactly once.
}

TEST(ThreadPool, BoundedQueueDrainsAcceptedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1, 2);
    pool.post([&] { ran++; });
    pool.post([&] { ran++; });
    EXPECT_THROW(pool.post([&] { ran++; }), QueueFullError);
  }
  EXPECT_EQ(ran.load(), 2) << "accepted tasks run exactly once, rejected never";
}

TEST(ThreadPool, ParallelForSurvivesTinyQueueBound) {
  // With a queue bound smaller than the chunk count, parallel_for falls back
  // to running overflow chunks on the caller — full coverage either way.
  ThreadPool pool(4, 1);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(0, 777, [&](std::size_t lo, std::size_t hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 777u);
  EXPECT_GE(pool.queue_high_water(), 1u);
}

// -------------------------------------------------------------- artifacts --

TEST(Artifacts, DirectoryCreatedAndPathsCompose) {
  const auto dir = artifact_dir();
  EXPECT_TRUE(std::filesystem::exists(dir));
  EXPECT_EQ(artifact_path("x.bin"), dir / "x.bin");
  EXPECT_FALSE(artifact_exists("definitely-not-there.bin"));
}

}  // namespace
}  // namespace mlsim
