// Predictor behaviour tests: analytic model sensitivity to context, oracle
// replay, batched prediction, and CNN predictor plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/check.h"
#include "core/analytic_predictor.h"
#include "core/cnn_predictor.h"
#include "core/predictor.h"
#include "core/simulator.h"
#include "trace/annotation.h"

namespace mlsim::core {
namespace {

trace::EncodedTrace small_trace(const std::string& abbr = "xz",
                                std::size_t n = 2000) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

// Build a window buffer with a synthetic current instruction and optional
// context rows.
struct WindowBuilder {
  std::size_t rows;
  std::vector<std::int32_t> buf;

  explicit WindowBuilder(std::size_t rows_in)
      : rows(rows_in), buf(rows_in * trace::kNumFeatures, 0) {}

  std::int32_t* row(std::size_t r) { return buf.data() + r * trace::kNumFeatures; }
  WindowView view() const { return {buf.data(), rows}; }
};

TEST(AnalyticPredictor, LoadLatencyScalesWithHitLevel) {
  AnalyticPredictor pred;
  WindowBuilder w(9);
  auto* cur = w.row(0);
  cur[trace::Feat::kIsLoad] = 1;
  cur[trace::Feat::kBaseLat] = 1;

  cur[trace::Feat::kDataLevel] = static_cast<std::int32_t>(trace::HitLevel::kL1);
  const auto l1 = pred.predict(w.view(), 0);
  cur[trace::Feat::kDataLevel] = static_cast<std::int32_t>(trace::HitLevel::kL2);
  const auto l2 = pred.predict(w.view(), 0);
  cur[trace::Feat::kDataLevel] = static_cast<std::int32_t>(trace::HitLevel::kMemory);
  const auto mem = pred.predict(w.view(), 0);
  EXPECT_LT(l1.exec, l2.exec);
  EXPECT_LT(l2.exec, mem.exec);
}

TEST(AnalyticPredictor, StoreForwardingBeatsCacheAccess) {
  AnalyticPredictor pred;
  WindowBuilder w(9);
  auto* cur = w.row(0);
  cur[trace::Feat::kIsLoad] = 1;
  cur[trace::Feat::kBaseLat] = 1;
  cur[trace::Feat::kDataLevel] = static_cast<std::int32_t>(trace::HitLevel::kMemory);
  const auto slow = pred.predict(w.view(), 0);
  cur[trace::Feat::kFwdDist] = 3;
  const auto forwarded = pred.predict(w.view(), 0);
  EXPECT_LT(forwarded.exec, slow.exec);
}

TEST(AnalyticPredictor, DependencyOnInFlightProducerAddsWait) {
  AnalyticPredictor pred;
  WindowBuilder w(9);
  auto* cur = w.row(0);
  cur[trace::Feat::kBaseLat] = 1;
  cur[trace::Feat::kNumSrc] = 1;
  cur[trace::Feat::kSrc0] = 5;
  cur[trace::Feat::kDep0] = 2;  // producer is 2 instructions back
  const auto no_ctx = pred.predict(w.view(), 0);

  auto* producer = w.row(2);
  producer[trace::Feat::kDst0] = 5;
  producer[kCtxLatFeature] = 40;  // still 40 cycles in flight
  const auto waiting = pred.predict(w.view(), 0);
  EXPECT_GT(waiting.exec, no_ctx.exec + 20);
}

TEST(AnalyticPredictor, MispredictedBranchInContextStallsFetch) {
  AnalyticPredictor pred;
  WindowBuilder w(9);
  const auto clean = pred.predict(w.view(), 0);

  auto* prev = w.row(1);
  prev[trace::Feat::kIsControl] = 1;
  prev[trace::Feat::kMispredicted] = 1;
  prev[kCtxLatFeature] = 10;
  const auto redirected = pred.predict(w.view(), 0);
  EXPECT_GT(redirected.fetch, clean.fetch + 10);
}

TEST(AnalyticPredictor, RetiredBranchDoesNotStall) {
  AnalyticPredictor pred;
  WindowBuilder w(9);
  auto* prev = w.row(1);
  prev[trace::Feat::kIsControl] = 1;
  prev[trace::Feat::kMispredicted] = 1;
  prev[kCtxLatFeature] = 0;  // retired: zero latency entry
  const auto p = pred.predict(w.view(), 0);
  const WindowBuilder clean(9);
  EXPECT_EQ(p.fetch, pred.predict(clean.view(), 0).fetch);
}

TEST(AnalyticPredictor, StoreGetsStoreLatency) {
  AnalyticPredictor pred;
  WindowBuilder w(9);
  auto* cur = w.row(0);
  cur[trace::Feat::kIsStore] = 1;
  cur[trace::Feat::kDataLevel] = static_cast<std::int32_t>(trace::HitLevel::kL1);
  EXPECT_GT(pred.predict(w.view(), 0).store, 0u);
  cur[trace::Feat::kIsStore] = 0;
  cur[trace::Feat::kDataLevel] = 0;
  EXPECT_EQ(pred.predict(w.view(), 0).store, 0u);
}

TEST(AnalyticPredictor, DeterministicAndPure) {
  AnalyticPredictor pred;
  trace::EncodedTrace tr = small_trace();
  WindowBuilder w(17);
  std::copy(tr.features(5).begin(), tr.features(5).end(), w.row(0));
  const auto a = pred.predict(w.view(), 0);
  const auto b = pred.predict(w.view(), 0);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------------ oracle --

TEST(OraclePredictor, ReplaysGroundTruth) {
  trace::EncodedTrace tr = small_trace();
  OraclePredictor oracle(tr);
  for (std::size_t i : {0u, 5u, 100u}) {
    const auto p = oracle.predict(WindowView{}, i);
    EXPECT_EQ(p.fetch, tr.targets(i)[0]);
    EXPECT_EQ(p.exec, tr.targets(i)[1]);
    EXPECT_EQ(p.store, tr.targets(i)[2]);
  }
}

TEST(OraclePredictor, RequiresLabeledTrace) {
  trace::EncodedTrace tr("unlabeled");
  tr.append(trace::FeatureVector{});
  EXPECT_THROW(OraclePredictor{tr}, CheckError);
}

// ------------------------------------------------------------- batch path --

TEST(PredictorBatch, DefaultBatchMatchesScalar) {
  AnalyticPredictor pred;
  trace::EncodedTrace tr = small_trace();
  const std::size_t rows = 9;
  const std::size_t batch = 4;
  std::vector<std::int32_t> windows(batch * rows * trace::kNumFeatures, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto f = tr.features(b * 7);
    std::copy(f.begin(), f.end(),
              windows.begin() + static_cast<std::ptrdiff_t>(b * rows * trace::kNumFeatures));
  }
  std::vector<std::uint64_t> idx{0, 7, 14, 21};
  std::vector<LatencyPrediction> out(batch);
  pred.predict_batch(windows.data(), batch, rows, idx.data(), out.data());
  for (std::size_t b = 0; b < batch; ++b) {
    const WindowView w{windows.data() + b * rows * trace::kNumFeatures, rows};
    EXPECT_EQ(out[b], pred.predict(w, idx[b]));
  }
}

// ------------------------------------------------------------- cnn plumbing --

SimNetBundle tiny_bundle(std::size_t window = 9) {
  tensor::SimNetModelConfig cfg;
  cfg.in_features = trace::kNumFeatures;
  cfg.window = window;
  cfg.channels = 4;
  cfg.hidden = 8;
  tensor::SimNetModel model(cfg, 21);
  std::vector<float> scales(trace::kNumFeatures, 0.05f);
  return SimNetBundle{std::move(model), std::move(scales)};
}

TEST(CnnPredictor, OutputsNonNegativeAndDeterministic) {
  CnnPredictor pred(tiny_bundle());
  WindowBuilder w(9);
  w.row(0)[trace::Feat::kBaseLat] = 3;
  const auto a = pred.predict(w.view(), 0);
  const auto b = pred.predict(w.view(), 0);
  EXPECT_EQ(a, b);
}

TEST(CnnPredictor, BatchMatchesScalar) {
  CnnPredictor pred(tiny_bundle());
  trace::EncodedTrace tr = small_trace();
  const std::size_t rows = 9, batch = 3;
  std::vector<std::int32_t> windows(batch * rows * trace::kNumFeatures, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto f = tr.features(b);
    std::copy(f.begin(), f.end(),
              windows.begin() + static_cast<std::ptrdiff_t>(b * rows * trace::kNumFeatures));
  }
  std::vector<LatencyPrediction> out(batch);
  pred.predict_batch(windows.data(), batch, rows, nullptr, out.data());
  for (std::size_t b = 0; b < batch; ++b) {
    const WindowView w{windows.data() + b * rows * trace::kNumFeatures, rows};
    EXPECT_EQ(out[b], pred.predict(w, b));
  }
}

TEST(CnnPredictor, DecodeRoundsLog1p) {
  EXPECT_EQ(CnnPredictor::decode(0.0f), 0u);
  EXPECT_EQ(CnnPredictor::decode(std::log1p(5.0f)), 5u);
  EXPECT_EQ(CnnPredictor::decode(-3.0f), 0u);  // negative clamped
}

TEST(CnnPredictor, BundleSaveLoadRoundTrip) {
  SimNetBundle b = tiny_bundle();
  b.feature_scale[3] = 0.25f;
  const auto path = std::filesystem::temp_directory_path() / "mlsim_bundle.bin";
  b.save(path);
  const SimNetBundle back = SimNetBundle::load(path);
  EXPECT_EQ(back.feature_scale[3], 0.25f);
  EXPECT_EQ(back.model.config(), b.model.config());
  std::filesystem::remove(path);
}

TEST(CnnPredictor, FlopsPositiveAndEngineConfigurable) {
  CnnPredictor pred(tiny_bundle(), device::Engine::kLibTorch);
  EXPECT_GT(pred.flops_per_window(9), 0u);
  EXPECT_EQ(pred.engine(), device::Engine::kLibTorch);
}

TEST(CnnPredictor, RejectsWrongWindowSize) {
  CnnPredictor pred(tiny_bundle(9));
  WindowBuilder w(5);
  EXPECT_THROW(pred.predict(w.view(), 0), CheckError);
}

}  // namespace
}  // namespace mlsim::core
