// Simulator engine tests: sequential vs GPU-optimised functional
// equivalence across all ablation toggles, cost-model behaviour of the
// optimisation stack, and the facade.
#include <gtest/gtest.h>

#include "core/analytic_predictor.h"
#include "core/gpu_sim.h"
#include "core/sequential_sim.h"
#include "core/simulator.h"
#include "device/device.h"

namespace mlsim::core {
namespace {

trace::EncodedTrace small_trace(const std::string& abbr = "xz",
                                std::size_t n = 3000) {
  return uarch::make_encoded_trace(trace::find_workload(abbr), n, {}, 1);
}

// ------------------------------------------------- sequential simulator --

TEST(SequentialSim, ProducesStableClockAndProfile) {
  trace::EncodedTrace tr = small_trace();
  AnalyticPredictor pred;
  SequentialSimOptions opts;
  opts.context_length = 16;
  SequentialSimulator sim(pred, opts);
  const SimOutput out = sim.run(tr);
  EXPECT_EQ(out.instructions, tr.size());
  EXPECT_GT(out.cycles, tr.size() / 4);  // CPI > 0.25
  EXPECT_GT(out.profile.inference, 0.0);
  EXPECT_GT(out.profile.h2d, 0.0);
  EXPECT_GT(out.profile.transpose, 0.0);
  EXPECT_GT(out.sim_time_us, 0.0);
  EXPECT_NEAR(out.profile.total() * static_cast<double>(out.instructions),
              out.sim_time_us, 1e-6 * out.sim_time_us);
}

TEST(SequentialSim, DeterministicAcrossRuns) {
  trace::EncodedTrace tr = small_trace();
  AnalyticPredictor pred;
  SequentialSimOptions opts;
  opts.context_length = 16;
  SequentialSimulator sim(pred, opts);
  EXPECT_EQ(sim.run(tr).cycles, sim.run(tr).cycles);
}

TEST(SequentialSim, SubrangeSimulation) {
  trace::EncodedTrace tr = small_trace();
  AnalyticPredictor pred;
  SequentialSimulator sim(pred, {.context_length = 8});
  const SimOutput out = sim.run(tr, 100, 600);
  EXPECT_EQ(out.instructions, 500u);
  EXPECT_THROW(sim.run(tr, 10, tr.size() + 1), CheckError);
}

TEST(SequentialSim, RecordsPredictionsAndCounts) {
  trace::EncodedTrace tr = small_trace("xz", 500);
  AnalyticPredictor pred;
  SequentialSimOptions opts;
  opts.context_length = 8;
  opts.record_predictions = true;
  opts.record_context_counts = true;
  SequentialSimulator sim(pred, opts);
  const SimOutput out = sim.run(tr);
  ASSERT_EQ(out.predictions.size(), tr.size());
  ASSERT_EQ(out.context_counts.size(), tr.size());
  EXPECT_EQ(out.context_counts[0], 0u);  // cold start: no context
  std::uint64_t cycles = 0;
  for (const auto& p : out.predictions) cycles += p.fetch;
  EXPECT_LE(cycles, out.cycles);  // cycles excludes drain
}

// -------------------------------- GPU simulator functional equivalence --

struct ToggleCase {
  bool gic, swiq, cc, ps;
};

class GpuSimToggles : public ::testing::TestWithParam<ToggleCase> {};

TEST_P(GpuSimToggles, FunctionalResultIndependentOfToggles) {
  const ToggleCase tc = GetParam();
  trace::EncodedTrace tr = small_trace("mcf", 2500);
  AnalyticPredictor pred;

  SequentialSimOptions sopts;
  sopts.context_length = 16;
  sopts.record_predictions = true;
  SequentialSimulator ref(pred, sopts);
  const SimOutput expected = ref.run(tr);

  device::Device dev;
  GpuSimOptions gopts;
  gopts.context_length = 16;
  gopts.batch_n = 6;
  gopts.gpu_input_construction = tc.gic;
  gopts.sliding_window = tc.swiq;
  gopts.custom_conv = tc.cc;
  gopts.pipelined = tc.ps;
  gopts.record_predictions = true;
  GpuSimulator sim(pred, dev, gopts);
  const SimOutput got = sim.run(tr);

  EXPECT_EQ(got.cycles, expected.cycles);
  ASSERT_EQ(got.predictions.size(), expected.predictions.size());
  for (std::size_t i = 0; i < got.predictions.size(); ++i) {
    ASSERT_EQ(got.predictions[i], expected.predictions[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllToggleCombos, GpuSimToggles,
    ::testing::Values(ToggleCase{false, false, false, false},
                      ToggleCase{true, false, false, false},
                      ToggleCase{true, true, false, false},
                      ToggleCase{true, true, true, false},
                      ToggleCase{true, true, true, true},
                      ToggleCase{true, false, true, true},
                      ToggleCase{false, false, false, true}));

// --------------------------------------- optimisation stack (Fig. 16 shape) --

TEST(GpuSim, OptimisationStackImprovesThroughputMonotonically) {
  trace::EncodedTrace tr = small_trace("xz", 1500);
  AnalyticPredictor pred;

  auto mips_for = [&](bool gic, bool swiq, bool cc, device::Engine eng, bool ps) {
    device::Device dev;
    GpuSimOptions o;
    o.context_length = 32;
    o.gpu_input_construction = gic;
    o.sliding_window = swiq;
    o.custom_conv = cc;
    o.engine = eng;
    o.pipelined = ps;
    GpuSimulator sim(pred, dev, o);
    return sim.run(tr).mips();
  };

  using device::Engine;
  const double base = mips_for(false, false, false, Engine::kLibTorch, false);
  const double gic = mips_for(true, false, false, Engine::kLibTorch, false);
  const double swiq = mips_for(true, true, false, Engine::kLibTorch, false);
  const double cc = mips_for(true, true, true, Engine::kLibTorch, false);
  const double oi = mips_for(true, true, true, Engine::kTensorRTSparse, false);
  const double ps = mips_for(true, true, true, Engine::kTensorRTSparse, true);

  EXPECT_GT(gic, base);
  EXPECT_GT(swiq, gic);
  EXPECT_GT(cc, swiq);
  EXPECT_GT(oi, cc);
  EXPECT_GE(ps, oi * 0.99);  // pipelining never hurts
  // Full stack is an order of magnitude, as in Fig. 16 (0.133 -> 2.86 MIPS).
  EXPECT_GT(ps, base * 8);
}

TEST(GpuSim, PipeliningHidesCopyTime) {
  trace::EncodedTrace tr = small_trace("xz", 1200);
  AnalyticPredictor pred;
  auto time_for = [&](bool ps) {
    device::Device dev;
    GpuSimOptions o;
    o.context_length = 16;
    o.pipelined = ps;
    GpuSimulator sim(pred, dev, o);
    return sim.run(tr).sim_time_us;
  };
  EXPECT_LT(time_for(true), time_for(false));
}

TEST(GpuSim, TransposeCostOnlyWithoutCustomConv) {
  trace::EncodedTrace tr = small_trace("xz", 500);
  AnalyticPredictor pred;
  device::Device d1, d2;
  GpuSimOptions with_cc;
  with_cc.context_length = 16;
  with_cc.custom_conv = true;
  GpuSimOptions without_cc = with_cc;
  without_cc.custom_conv = false;
  const SimOutput a = GpuSimulator(pred, d1, with_cc).run(tr);
  const SimOutput b = GpuSimulator(pred, d2, without_cc).run(tr);
  EXPECT_EQ(a.profile.transpose, 0.0);
  EXPECT_GT(b.profile.transpose, 0.0);
}

TEST(GpuSim, ContextOccupancyReported) {
  trace::EncodedTrace tr = small_trace("mcf", 1500);
  AnalyticPredictor pred;
  device::Device dev;
  GpuSimOptions o;
  o.context_length = 16;
  GpuSimulator sim(pred, dev, o);
  const SimOutput out = sim.run(tr);
  EXPECT_GT(out.avg_context_occupancy, 0.0);
  EXPECT_LE(out.avg_context_occupancy, 1.0);
}

TEST(GpuSim, EmptyRangeReturnsZero) {
  trace::EncodedTrace tr = small_trace("xz", 50);
  AnalyticPredictor pred;
  device::Device dev;
  GpuSimulator sim(pred, dev, {});
  const SimOutput out = sim.run(tr, 10, 10);
  EXPECT_EQ(out.instructions, 0u);
  EXPECT_EQ(out.cycles, 0u);
}

// ------------------------------------------------------------- facade --

TEST(MLSimulator, EndToEndAnalytic) {
  trace::EncodedTrace tr = labeled_trace("xz", 3000, {}, 1, /*use_cache=*/false);
  MLSimulator sim;
  const SimOutput out = sim.simulate(tr);
  EXPECT_EQ(out.instructions, tr.size());
  const double err = sim.cpi_error_percent(tr, out.cpi());
  // The analytic predictor tracks the OoO ground truth reasonably (paper's
  // trained model reaches ~2%; we only require the same order).
  EXPECT_LT(std::abs(err), 30.0);
}

TEST(MLSimulator, OptimizedFasterThanSequentialBaseline) {
  trace::EncodedTrace tr = labeled_trace("xz", 2000, {}, 1, false);
  MLSimulator sim;
  const SimOutput fast = sim.simulate(tr);
  const SimOutput slow = sim.simulate_sequential(tr);
  EXPECT_EQ(fast.cycles, slow.cycles);  // same functional result
  EXPECT_GT(fast.mips(), slow.mips() * 5);
}

TEST(MLSimulator, LabeledTraceCacheRoundTrip) {
  const auto t1 = labeled_trace("spei", 500, {}, 3, true);
  const auto t2 = labeled_trace("spei", 500, {}, 3, true);  // from cache
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); i += 37) {
    EXPECT_EQ(t1.targets(i)[0], t2.targets(i)[0]);
  }
}

}  // namespace
}  // namespace mlsim::core
