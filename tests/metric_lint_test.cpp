// Metric-name lint (tier-1, docs/OBSERVABILITY.md): keeps the instrumentation
// schema closed. Every metric name used anywhere in src/ must be a constant
// declared in src/obs/metric_names.h, every declared constant must be both
// pre-registered in kBuiltinMetrics and actually used by some subsystem (no
// dead names), and the names themselves must follow the documented
// `<subsystem>.<what>[_unit]` convention. Runs as a source-level lint (like
// docs_test) so a drive-by `MLSIM_COUNTER_ADD("my.metric", 1)` fails the
// suite instead of silently forking the schema.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metric_names.h"

namespace mlsim {
namespace {

namespace fs = std::filesystem;

const fs::path kSourceDir = fs::path(MLSIM_SOURCE_DIR) / "src";
const fs::path kNamesHeader = kSourceDir / "obs" / "metric_names.h";

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << p;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// All .h/.cpp files under src/ except metric_names.h itself.
std::vector<fs::path> source_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(kSourceDir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    if (entry.path().filename() == "metric_names.h") continue;
    files.push_back(entry.path());
  }
  EXPECT_GT(files.size(), 10u) << "source tree not found under " << kSourceDir;
  return files;
}

/// Parse metric_names.h: constant identifier -> metric name string. Matches
/// the `inline constexpr const char* kFoo = "a.b";` declarations (possibly
/// wrapped across lines), not the kBuiltinMetrics table entries.
std::map<std::string, std::string> declared_constants() {
  const std::string text = slurp(kNamesHeader);
  std::map<std::string, std::string> decls;
  const std::regex decl(
      R"(constexpr\s+const\s+char\s*\*\s*(k\w+)\s*=\s*"([^"]+)\")");
  for (std::sregex_iterator it(text.begin(), text.end(), decl), end;
       it != end; ++it) {
    const std::string constant = (*it)[1].str();
    EXPECT_EQ(decls.count(constant), 0u)
        << "constant declared twice: " << constant;
    decls[constant] = (*it)[2].str();
  }
  EXPECT_FALSE(decls.empty()) << "no declarations parsed from " << kNamesHeader;
  return decls;
}

TEST(MetricLint, NamesFollowConventionAndAreUnique) {
  // <subsystem>.<what>[_unit]: lowercase dot-separated segments of
  // [a-z0-9_], at least two segments, no leading/trailing separators.
  const std::regex convention(R"([a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+)");
  std::set<std::string> seen;
  for (const auto& [constant, name] : declared_constants()) {
    EXPECT_TRUE(std::regex_match(name, convention))
        << constant << " = \"" << name
        << "\" violates the <subsystem>.<what> convention";
    EXPECT_TRUE(seen.insert(name).second)
        << "metric name used by two constants: " << name;
  }
}

TEST(MetricLint, DeclarationsAndBuiltinTableAreABijection) {
  const auto decls = declared_constants();
  std::set<std::string> declared;
  for (const auto& [constant, name] : decls) declared.insert(name);

  std::set<std::string> registered;
  for (std::size_t i = 0; i < obs::names::kNumBuiltinMetrics; ++i) {
    EXPECT_TRUE(registered.insert(obs::names::kBuiltinMetrics[i].name).second)
        << "kBuiltinMetrics lists '" << obs::names::kBuiltinMetrics[i].name
        << "' twice";
  }
  for (const std::string& name : declared) {
    EXPECT_EQ(registered.count(name), 1u)
        << "declared metric '" << name
        << "' is missing from kBuiltinMetrics (won't be pre-registered)";
  }
  for (const std::string& name : registered) {
    EXPECT_EQ(declared.count(name), 1u)
        << "kBuiltinMetrics entry '" << name
        << "' has no named constant declaration";
  }
  EXPECT_EQ(declared.size(), obs::names::kNumBuiltinMetrics);
}

TEST(MetricLint, EveryConstantIsReferencedInSources) {
  const auto decls = declared_constants();
  std::set<std::string> unused;
  for (const auto& [constant, name] : decls) unused.insert(constant);
  for (const fs::path& file : source_files()) {
    if (unused.empty()) break;
    const std::string text = slurp(file);
    for (auto it = unused.begin(); it != unused.end();) {
      const std::size_t at = text.find(*it);
      // Word-bounded: reject matches that are a prefix of a longer
      // identifier (kSvcFailed vs kSvcFailedFoo).
      const bool hit =
          at != std::string::npos &&
          (at + it->size() >= text.size() ||
           !(std::isalnum(static_cast<unsigned char>(text[at + it->size()])) ||
             text[at + it->size()] == '_'));
      it = hit ? unused.erase(it) : ++it;
    }
  }
  EXPECT_TRUE(unused.empty())
      << "dead metric constants (declared but never used in src/): "
      << [&] {
           std::string all;
           for (const auto& c : unused) all += c + " ";
           return all;
         }();
}

TEST(MetricLint, ElasticityAndQuotaMetricsAreDeclared) {
  // The elastic-cluster / tenant-quota schema (docs/DISTRIBUTED.md
  // "Elasticity & churn", docs/SERVICE.md): renaming or dropping any of
  // these silently breaks dashboards scraping /metrics.
  std::set<std::string> names;
  for (const auto& [constant, name] : declared_constants()) {
    names.insert(name);
  }
  for (const char* required :
       {"dist.workers_departed", "cluster.steal.shards",
        "cluster.speculative.dispatched", "cluster.speculative.wins",
        "cluster.cache.hits", "cluster.cache.misses",
        "cluster.cache.evictions", "cluster.cache.entries",
        "service.rejected_quota"}) {
    EXPECT_EQ(names.count(required), 1u)
        << "expected metric '" << required << "' to be declared";
  }
}

TEST(MetricLint, CrashSafeCoordinationMetricsAreDeclared) {
  // The crash-safe coordination schema (docs/RESILIENCE.md "Crash-safe
  // coordination"): journal durability, resume replay, and drain behaviour
  // are monitored through these names.
  std::set<std::string> names;
  for (const auto& [constant, name] : declared_constants()) {
    names.insert(name);
  }
  for (const char* required :
       {"dist.workers_rejoined", "dist.journal.records", "dist.journal.bytes",
        "dist.journal.replayed_results", "dist.journal.dropped_bytes",
        "dist.drain.requests", "dist.drain.shards_abandoned"}) {
    EXPECT_EQ(names.count(required), 1u)
        << "expected metric '" << required << "' to be declared";
  }
}

TEST(MetricLint, SweepMetricsAreDeclared) {
  // The design-space-exploration sweep schema (docs/SWEEPS.md): lattice
  // fan-out progress, per-point latency, and Pareto output are monitored
  // through these names.
  std::set<std::string> names;
  for (const auto& [constant, name] : declared_constants()) {
    names.insert(name);
  }
  for (const char* required :
       {"sweep.requests", "sweep.points_total", "sweep.points_completed",
        "sweep.points_rejected", "sweep.points_failed", "sweep.point_ns",
        "sweep.active", "sweep.pareto_size"}) {
    EXPECT_EQ(names.count(required), 1u)
        << "expected metric '" << required << "' to be declared";
  }
}

TEST(MetricLint, NoRawStringLiteralsAtInstrumentationSites) {
  // Every MLSIM_COUNTER_ADD / MLSIM_GAUGE_SET / MLSIM_HIST_RECORD call site
  // must name a metric via a constant; a quoted first argument bypasses the
  // schema and this lint's bijection checks.
  const std::regex raw(
      R"(MLSIM_(COUNTER_ADD|GAUGE_SET|HIST_RECORD)\s*\(\s*")");
  for (const fs::path& file : source_files()) {
    const std::string text = slurp(file);
    std::smatch m;
    EXPECT_FALSE(std::regex_search(text, m, raw))
        << file << " uses a raw string-literal metric name: " << m[0];
  }
}

}  // namespace
}  // namespace mlsim
