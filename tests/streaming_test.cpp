// Tests for the scale features: streaming trace generation + streaming
// simulation (bounded memory), compressed trace files, machine presets.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"
#include "core/simulator.h"
#include "core/streaming.h"
#include "trace/stream.h"
#include "uarch/presets.h"

namespace mlsim {
namespace {

// --------------------------------------------------------- trace stream ---

TEST(TraceStream, MatchesBatchGeneration) {
  const auto& wl = trace::find_workload("xz");
  const auto batch = uarch::make_encoded_trace(wl, 5000, {}, 7);

  trace::LabeledTraceStream stream(wl, {}, 7);
  trace::EncodedTrace streamed("xz");
  // Uneven chunk sizes must not change anything.
  for (const std::size_t chunk : {1000u, 1u, 999u, 3000u}) {
    stream.fill(streamed, chunk);
  }
  ASSERT_EQ(streamed.size(), 5000u);
  EXPECT_EQ(streamed.raw_features(), batch.raw_features());
  EXPECT_EQ(streamed.raw_targets(), batch.raw_targets());
  EXPECT_EQ(stream.generated(), 5000u);
}

TEST(TraceStream, UnboundedAndDeterministic) {
  const auto& wl = trace::find_workload("perl");
  trace::LabeledTraceStream a(wl, {}, 3), b(wl, {}, 3);
  trace::EncodedTrace ta("p"), tb("p");
  a.fill(ta, 2000);
  b.fill(tb, 2000);
  EXPECT_EQ(ta.raw_features(), tb.raw_features());
}

// ------------------------------------------------- streaming simulation ---

TEST(StreamingSim, MatchesMaterializedSimulationExactly) {
  const auto& wl = trace::find_workload("mcf");
  const std::size_t n = 6000, ctx = 32;

  // Reference: materialise everything, simulate sequentially.
  const auto tr = uarch::make_encoded_trace(wl, n, {}, 5);
  core::AnalyticPredictor pred;
  core::ParallelSimOptions o;
  o.num_subtraces = 1;
  o.context_length = ctx;
  const auto ref = core::ParallelSimulator(pred, o).run(tr);

  // Streaming with a tiny chunk: bounded memory, same result.
  trace::LabeledTraceStream stream(wl, {}, 5);
  const auto res = core::simulate_stream(pred, stream, n, ctx, /*chunk=*/257);
  EXPECT_EQ(res.instructions, n);
  EXPECT_EQ(res.predicted_cycles, ref.total_cycles);
  EXPECT_EQ(res.truth_cycles, core::total_cycles_from_targets(tr));
}

TEST(StreamingSim, ChunkSizeInvariant) {
  const auto& wl = trace::find_workload("xz");
  core::AnalyticPredictor pred;
  std::uint64_t first = 0;
  for (const std::size_t chunk : {64u, 1000u, 4096u}) {
    trace::LabeledTraceStream stream(wl, {}, 11);
    const auto res = core::simulate_stream(pred, stream, 3000, 16, chunk);
    if (first == 0) {
      first = res.predicted_cycles;
    } else {
      EXPECT_EQ(res.predicted_cycles, first) << "chunk " << chunk;
    }
  }
}

TEST(StreamingSim, ZeroInstructionsIsEmpty) {
  const auto& wl = trace::find_workload("xz");
  trace::LabeledTraceStream stream(wl);
  core::AnalyticPredictor pred;
  const auto res = core::simulate_stream(pred, stream, 0, 16);
  EXPECT_EQ(res.instructions, 0u);
  EXPECT_EQ(res.cpi(), 0.0);
}

// ----------------------------------------------------------- compression ---

TEST(TraceCompression, RoundTripAndSmaller) {
  const auto tr = uarch::make_encoded_trace(trace::find_workload("mcf"), 5000);
  const auto dir = std::filesystem::temp_directory_path();
  const auto raw_path = dir / "mlsim_raw.bin";
  const auto packed_path = dir / "mlsim_packed.bin";
  tr.save(raw_path, /*compress=*/false);
  tr.save(packed_path, /*compress=*/true);

  const auto raw_size = std::filesystem::file_size(raw_path);
  const auto packed_size = std::filesystem::file_size(packed_path);
  EXPECT_LT(packed_size, raw_size / 3);  // typically 5-8x smaller

  const auto back = trace::EncodedTrace::load(packed_path);
  ASSERT_EQ(back.size(), tr.size());
  EXPECT_EQ(back.raw_features(), tr.raw_features());
  EXPECT_EQ(back.raw_targets(), tr.raw_targets());
  EXPECT_EQ(back.benchmark(), tr.benchmark());
  EXPECT_EQ(back.labeled(), tr.labeled());

  // v1 files still load.
  const auto back_raw = trace::EncodedTrace::load(raw_path);
  EXPECT_EQ(back_raw.raw_features(), tr.raw_features());

  std::filesystem::remove(raw_path);
  std::filesystem::remove(packed_path);
}

TEST(TraceCompression, HandlesNegativeAndLargeValues) {
  trace::EncodedTrace tr("edge");
  trace::FeatureVector f{};
  f[0] = -123;
  f[10] = 1'000'000;
  f[trace::kNumFeatures - 1] = -1;
  tr.append(f, 4'000'000'000u, 7, 0);
  const auto path = std::filesystem::temp_directory_path() / "mlsim_edge.bin";
  tr.save(path);
  const auto back = trace::EncodedTrace::load(path);
  EXPECT_EQ(back.features(0)[0], -123);
  EXPECT_EQ(back.features(0)[10], 1'000'000);
  EXPECT_EQ(back.features(0)[trace::kNumFeatures - 1], -1);
  EXPECT_EQ(back.targets(0)[0], 4'000'000'000u);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------- presets ---

TEST(Presets, CoreOrderingByCpi) {
  // The same workload runs slower on the little core and faster on the big
  // core than on Table II.
  const auto& wl = trace::find_workload("xz");
  const double little =
      uarch::generate_labeled_trace(wl, 30000, uarch::little_core()).cpi();
  const double table2 =
      uarch::generate_labeled_trace(wl, 30000, uarch::table2()).cpi();
  const double big =
      uarch::generate_labeled_trace(wl, 30000, uarch::big_core()).cpi();
  EXPECT_GT(little, table2);
  EXPECT_LT(big, table2);
}

TEST(Presets, AllPresetsSimulateEndToEnd) {
  for (const auto& m : {uarch::table2(), uarch::little_core(), uarch::big_core(),
                        uarch::a64fx_like()}) {
    const auto tr = core::labeled_trace("perl", 5000, m, 1, false);
    core::MLSimulator::Options opts;
    opts.machine = m;
    core::MLSimulator sim(opts);
    const auto out = sim.simulate(tr);
    EXPECT_EQ(out.instructions, tr.size());
    EXPECT_GT(out.cycles, 0u);
  }
}

}  // namespace
}  // namespace mlsim
