// Shared wire envelope (common/wire.h): seal/unseal round-trips, corruption
// and truncation detection, and the enveloped-file path used by checkpoints.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/wire.h"

namespace mlsim::wire {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x54534554;  // "TEST"

fs::path temp_file(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / name;
  fs::remove(p);
  return p;
}

std::string sample_payload() {
  Writer w;
  w.pod<std::uint64_t>(0xdeadbeefcafe1234ull);
  w.str("hello wire");
  w.vec(std::vector<std::uint32_t>{1, 2, 3, 5, 8, 13});
  w.pod<double>(2.5);
  return w.take();
}

TEST(Wire, SealUnsealRoundTrip) {
  const std::string payload = sample_payload();
  const std::string sealed = seal(kMagic, payload);
  EXPECT_EQ(sealed.size(), kEnvelopeBytes + payload.size());

  const std::string_view out = unseal(kMagic, sealed, "test");
  ASSERT_EQ(out.size(), payload.size());
  EXPECT_EQ(std::string(out), payload);

  Reader r(out, "test");
  EXPECT_EQ(r.pod<std::uint64_t>(), 0xdeadbeefcafe1234ull);
  EXPECT_EQ(r.str(), "hello wire");
  EXPECT_EQ(r.vec<std::uint32_t>(), (std::vector<std::uint32_t>{1, 2, 3, 5, 8, 13}));
  EXPECT_EQ(r.pod<double>(), 2.5);
  r.finish();
}

TEST(Wire, EmptyPayloadRoundTrips) {
  const std::string sealed = seal(kMagic, "");
  EXPECT_EQ(sealed.size(), kEnvelopeBytes);
  EXPECT_EQ(unseal(kMagic, sealed, "test").size(), 0u);
}

TEST(Wire, EveryBitFlipIsDetected) {
  const std::string payload = sample_payload();
  const std::string sealed = seal(kMagic, payload);
  // Flip one bit at a time across the whole envelope + payload; every single
  // one must be caught (magic, version, checksum, size, or content).
  for (std::size_t byte = 0; byte < sealed.size(); ++byte) {
    std::string bad = sealed;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    EXPECT_THROW(unseal(kMagic, bad, "test"), CheckError)
        << "bit flip at byte " << byte << " went undetected";
  }
}

TEST(Wire, TruncationIsDetected) {
  const std::string sealed = seal(kMagic, sample_payload());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, kEnvelopeBytes - 1, kEnvelopeBytes,
        sealed.size() - 1}) {
    EXPECT_THROW(unseal(kMagic, sealed.substr(0, keep), "test"), CheckError)
        << "truncation to " << keep << " bytes went undetected";
  }
}

TEST(Wire, WrongMagicIsRejected) {
  const std::string sealed = seal(kMagic, sample_payload());
  EXPECT_THROW(unseal(kMagic + 1, sealed, "test"), CheckError);
}

TEST(Wire, TrailingGarbageIsRejected) {
  std::string sealed = seal(kMagic, sample_payload());
  sealed += "junk";
  EXPECT_THROW(unseal(kMagic, sealed, "test"), CheckError);
}

TEST(Wire, ReaderNeverReadsPastEnd) {
  Writer w;
  w.pod<std::uint32_t>(7);
  const std::string payload = w.take();
  Reader r(payload, "test");
  EXPECT_EQ(r.pod<std::uint32_t>(), 7u);
  EXPECT_THROW(r.pod<std::uint32_t>(), CheckError);

  // A vector whose length word claims more elements than bytes remain.
  Writer lying;
  lying.pod<std::uint64_t>(1u << 20);
  const std::string lie = lying.take();
  Reader r2(lie, "test");
  EXPECT_THROW(r2.vec<std::uint64_t>(), CheckError);
}

TEST(Wire, FinishRejectsTrailingBytes) {
  Writer w;
  w.pod<std::uint32_t>(1);
  w.pod<std::uint32_t>(2);
  const std::string payload = w.take();
  Reader r(payload, "test");
  r.pod<std::uint32_t>();
  EXPECT_THROW(r.finish(), CheckError);
  r.pod<std::uint32_t>();
  EXPECT_NO_THROW(r.finish());
}

TEST(Wire, FileRoundTripAndMissingFile) {
  const fs::path p = temp_file("mlsim_wire_test.bin");
  std::string payload;
  EXPECT_FALSE(read_envelope_file(p, kMagic, payload));  // does not exist

  write_envelope_file(p, kMagic, sample_payload());
  ASSERT_TRUE(read_envelope_file(p, kMagic, payload));
  EXPECT_EQ(payload, sample_payload());
  fs::remove(p);
}

TEST(Wire, CorruptFileIsCheckError) {
  const fs::path p = temp_file("mlsim_wire_corrupt.bin");
  write_envelope_file(p, kMagic, sample_payload());
  {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kEnvelopeBytes + 2));
    f.put('\x7f');
  }
  std::string payload;
  EXPECT_THROW(read_envelope_file(p, kMagic, payload), CheckError);
  fs::remove(p);
}

}  // namespace
}  // namespace mlsim::wire
