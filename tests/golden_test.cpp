// Golden regression pins: the whole pipeline is deterministic by design
// (seeded RNGs, no wall-clock or address-dependent behaviour), so exact
// outputs can be pinned. If a refactor changes any of these values it
// changed simulation semantics, not just code shape — bump the goldens
// consciously in the same change that explains why.
#include <gtest/gtest.h>

#include "core/analytic_predictor.h"
#include "core/metrics.h"
#include "core/parallel_sim.h"
#include "core/simulator.h"

namespace mlsim::core {
namespace {

struct Golden {
  const char* abbr;
  std::uint64_t truth_cycles;  // ground-truth fetch-cycle total
};

class GoldenCycles : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenCycles, GroundTruthPinned) {
  const Golden g = GetParam();
  const auto tr = labeled_trace(g.abbr, 10000, {}, 1, /*use_cache=*/false);
  EXPECT_EQ(total_cycles_from_targets(tr), g.truth_cycles)
      << "ground-truth timing changed for " << g.abbr
      << " — if intentional, update the golden";
}

// Values produced by the current implementation (seed 1, 10k instructions,
// Table II machine). Regenerate via `mlsim_cli rates <abbr> 10000`
// (ground-truth CPI x 10000 = the cycle total pinned here).
INSTANTIATE_TEST_SUITE_P(Pins, GoldenCycles,
                         ::testing::Values(Golden{"xz", 47129},
                                           Golden{"mcf", 47757},
                                           Golden{"perl", 43179},
                                           Golden{"lbm", 69199}));

TEST(GoldenPredictions, AnalyticSimulationPinned) {
  const auto tr = labeled_trace("xz", 10000, {}, 1, false);
  AnalyticPredictor pred;
  ParallelSimOptions o;
  o.num_subtraces = 1;
  o.context_length = 64;
  const auto res = ParallelSimulator(pred, o).run(tr);
  // Pinned below by the generator script; a zero pin means "fill me in".
  const std::uint64_t kPinnedCycles = 39832;
  if (kPinnedCycles != 0) {
    EXPECT_EQ(res.total_cycles, kPinnedCycles);
  } else {
    GTEST_SKIP() << "pin not yet generated";
  }
}

}  // namespace
}  // namespace mlsim::core
