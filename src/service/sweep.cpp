#include "service/sweep.h"

#include <utility>

#include "common/check.h"
#include "common/wire.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "obs/metric_names.h"
#include "obs/obs.h"
#include "service/service.h"
#include "trace/workload.h"

namespace mlsim::service {

namespace {

/// "SWP1" — sweep-request envelope magic.
constexpr std::uint32_t kSweepMagic = 0x31505753u;

Priority priority_from_wire(std::uint8_t v) {
  check(v < kNumPriorities, "sweep request: bad priority value");
  return static_cast<Priority>(v);
}

}  // namespace

std::string SweepRequest::encode() const {
  wire::Writer w;
  w.str(spec.benchmark);
  w.pod(static_cast<std::uint64_t>(spec.instructions));
  w.pod(static_cast<std::uint32_t>(spec.axes.size()));
  for (const auto& ax : spec.axes) {
    w.str(ax.key);
    w.pod(static_cast<std::uint32_t>(ax.values.size()));
    for (const auto& v : ax.values) w.str(v);
  }
  w.pod(static_cast<std::uint64_t>(num_subtraces));
  w.pod(static_cast<std::uint64_t>(num_gpus));
  w.pod(static_cast<std::uint64_t>(context_length));
  w.pod(static_cast<std::uint8_t>(recovery));
  w.pod(seed);
  w.pod(static_cast<std::uint8_t>(priority));
  w.str(tenant);
  w.pod(static_cast<std::int64_t>(deadline.count()));
  return wire::seal(kSweepMagic, w.bytes());
}

SweepRequest SweepRequest::decode(std::string_view enveloped) {
  const std::string_view payload =
      wire::unseal(kSweepMagic, enveloped, "sweep request");
  wire::Reader r(payload, "sweep request");
  SweepRequest req;
  req.spec.benchmark = r.str();
  req.spec.instructions = static_cast<std::size_t>(r.pod<std::uint64_t>());
  const auto num_axes = r.pod<std::uint32_t>();
  for (std::uint32_t i = 0; i < num_axes; ++i) {
    sweep::SweepAxis ax;
    ax.key = r.str();
    const auto num_values = r.pod<std::uint32_t>();
    for (std::uint32_t j = 0; j < num_values; ++j) ax.values.push_back(r.str());
    req.spec.axes.push_back(std::move(ax));
  }
  req.num_subtraces = static_cast<std::size_t>(r.pod<std::uint64_t>());
  req.num_gpus = static_cast<std::size_t>(r.pod<std::uint64_t>());
  req.context_length = static_cast<std::size_t>(r.pod<std::uint64_t>());
  req.recovery = r.pod<std::uint8_t>() != 0;
  req.seed = r.pod<std::uint64_t>();
  req.priority = priority_from_wire(r.pod<std::uint8_t>());
  req.tenant = r.str();
  req.deadline = std::chrono::milliseconds(r.pod<std::int64_t>());
  r.finish();
  sweep::validate_spec(req.spec);
  return req;
}

SimulationService::SweepTicket SimulationService::submit_sweep(
    SweepRequest req) {
  // Everything wrong with the *sweep* is a submit-time error; only per-point
  // outcomes are deferred to the ticket.
  sweep::validate_spec(req.spec);
  trace::find_workload(req.spec.benchmark);
  check(req.num_subtraces > 0, "sweep request needs num_subtraces > 0");
  check(req.context_length > 0, "sweep request needs context_length > 0");

  auto promise = std::make_shared<std::promise<SweepOutcome>>();
  SweepTicket ticket;
  ticket.future = promise->get_future();
  const std::size_t total = req.spec.points();

  std::lock_guard lk(mu_);
  ticket.id = next_id_++;
  if (stopping_) {
    SweepOutcome out;
    out.points_total = total;
    out.failed = total;
    out.errors.push_back("service is shutting down");
    promise->set_value(std::move(out));
    return ticket;
  }
  ++sweeps_submitted_;
  ++sweeps_active_;
  sweep_points_total_ += total;
  MLSIM_COUNTER_ADD(obs::names::kSweepRequests, 1);
  MLSIM_COUNTER_ADD(obs::names::kSweepPointsTotal,
                    static_cast<std::int64_t>(total));
  MLSIM_GAUGE_SET(obs::names::kSweepActive,
                  static_cast<double>(sweeps_active_));
  sweep_threads_.emplace_back(
      [this, id = ticket.id, r = std::move(req), promise]() mutable {
        sweep_loop(id, std::move(r), promise);
      });
  return ticket;
}

void SimulationService::sweep_loop(
    std::uint64_t sweep_id, SweepRequest req,
    std::shared_ptr<std::promise<SweepOutcome>> promise) {
  SweepOutcome out;
  try {
    const std::vector<sweep::SweepPoint> points =
        sweep::expand_lattice(req.spec);
    out.points_total = points.size();

    // Wave size: never more points in flight than the admission queue (or
    // the tenant's quota) can hold, so a sweep cannot starve interactive
    // requests or reject its own tail.
    std::size_t wave = opts_.queue_capacity;
    if (opts_.tenant_quota > 0 && opts_.tenant_quota < wave) {
      wave = opts_.tenant_quota;
    }

    for (std::size_t base = 0; base < points.size(); base += wave) {
      const std::size_t end = std::min(base + wave, points.size());
      // Traces live until every future of the wave resolves (the service
      // never copies a request's trace).
      std::vector<trace::EncodedTrace> traces;
      traces.reserve(end - base);
      for (std::size_t i = base; i < end; ++i) {
        traces.push_back(core::labeled_trace(req.spec.benchmark,
                                             req.spec.instructions,
                                             points[i].machine, req.seed));
      }
      std::vector<Ticket> tickets;
      tickets.reserve(end - base);
      for (std::size_t i = base; i < end; ++i) {
        Request pr;
        pr.trace = &traces[i - base];
        pr.priority = req.priority;
        pr.tenant = req.tenant;
        pr.deadline = req.deadline;
        pr.engine = EngineKind::kParallel;
        pr.num_subtraces = req.num_subtraces;
        pr.num_gpus = req.num_gpus;
        pr.context_length = req.context_length;
        pr.warmup = req.recovery;
        pr.correction = req.recovery;
        tickets.push_back(submit(std::move(pr)));
      }
      for (std::size_t i = base; i < end; ++i) {
        Response rsp = tickets[i - base].future.get();
        if (rsp.ok()) {
          sweep::SweepPointResult pr;
          pr.point = points[i];
          pr.cpi = rsp.cpi;
          pr.total_cycles = rsp.total_cycles;
          pr.instructions = rsp.instructions;
          const trace::EncodedTrace& tr = traces[i - base];
          pr.truth_cpi =
              static_cast<double>(core::total_cycles_from_targets(tr)) /
              static_cast<double>(tr.size());
          out.report.points.push_back(std::move(pr));
          ++out.completed;
          MLSIM_COUNTER_ADD(obs::names::kSweepPointsCompleted, 1);
          std::lock_guard lk(mu_);
          ++sweep_points_done_;
        } else if (is_rejection(rsp.status)) {
          ++out.rejected;
          MLSIM_COUNTER_ADD(obs::names::kSweepPointsRejected, 1);
          out.errors.push_back(points[i].label() + ": " +
                               to_string(rsp.status) + " " + rsp.error);
        } else {
          ++out.failed;
          MLSIM_COUNTER_ADD(obs::names::kSweepPointsFailed, 1);
          out.errors.push_back(points[i].label() + ": " +
                               to_string(rsp.status) + " " + rsp.error);
        }
      }
    }

    sweep::rank_report(out.report, req.spec);
    MLSIM_GAUGE_SET(obs::names::kSweepParetoSize,
                    static_cast<double>(out.report.frontier.size()));
  } catch (...) {
    {
      std::lock_guard lk(mu_);
      --sweeps_active_;
      MLSIM_GAUGE_SET(obs::names::kSweepActive,
                      static_cast<double>(sweeps_active_));
    }
    promise->set_exception(std::current_exception());
    return;
  }
  {
    std::lock_guard lk(mu_);
    --sweeps_active_;
    ++sweeps_completed_;
    MLSIM_GAUGE_SET(obs::names::kSweepActive,
                    static_cast<double>(sweeps_active_));
  }
  (void)sweep_id;
  promise->set_value(std::move(out));
}

}  // namespace mlsim::service
