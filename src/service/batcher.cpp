#include "service/batcher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"  // QueueFullError
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "trace/encoder.h"

namespace mlsim::service {

using Clock = std::chrono::steady_clock;

/// Shared between the engine-side Channel and the items the scheduler holds:
/// the request's completion slot. Results (or failures) arrive keyed by
/// sequence number under `mu`; the waiter consumes them in sequence order.
struct BatchScheduler::ChannelState {
  std::uint64_t request_id = 0;
  CancelToken token;

  std::mutex mu;
  std::condition_variable cv;
  std::unordered_map<std::uint64_t, core::LatencyPrediction> done;
  std::unordered_map<std::uint64_t, std::string> failed;
  std::uint64_t next_seq = 0;  // engine side only (one submitter per request)
};

BatchScheduler::BatchScheduler(std::vector<core::LatencyPredictor*> instances,
                               BatcherOptions opts)
    : instances_(std::move(instances)), opts_(opts) {
  check(!instances_.empty(), "batch scheduler needs at least one predictor");
  for (const auto* p : instances_) {
    check(p != nullptr, "batch scheduler predictor instance is null");
  }
  check(opts_.max_batch > 0, "max_batch must be > 0");
  check(opts_.queue_capacity > 0, "batcher queue capacity must be > 0");
  threads_.reserve(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    threads_.emplace_back([this, i] { scheduler_loop(i); });
  }
}

BatchScheduler::~BatchScheduler() { shutdown(); }

void BatchScheduler::shutdown() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

std::shared_ptr<BatchScheduler::Channel> BatchScheduler::open(
    std::uint64_t request_id, CancelToken token) {
  auto state = std::make_shared<ChannelState>();
  state->request_id = request_id;
  state->token = std::move(token);
  return std::shared_ptr<Channel>(new Channel(this, std::move(state)));
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::size_t BatchScheduler::queue_depth() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

std::vector<BatchScheduler::Item> BatchScheduler::take_batch_locked() {
  std::vector<Item> batch;
  batch.reserve(std::min(queue_.size(), opts_.max_batch));
  const std::uint32_t rows = queue_.front().rows;
  // One batch carries one window shape; differently-shaped items keep their
  // queue position for the next flush.
  std::deque<Item> rest;
  while (!queue_.empty() && batch.size() < opts_.max_batch) {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    if (item.rows == rows) {
      batch.push_back(std::move(item));
    } else {
      rest.push_back(std::move(item));
    }
  }
  while (!rest.empty()) {
    queue_.push_front(std::move(rest.back()));
    rest.pop_back();
  }
  MLSIM_GAUGE_SET(obs::names::kBatchQueueDepth,
                  static_cast<double>(queue_.size()));
  return batch;
}

void BatchScheduler::scheduler_loop(std::size_t instance) {
  core::LatencyPredictor& predictor = *instances_[instance];
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // drained
      continue;
    }
    // Deadline-bounded accumulation: hold the first item at most max_wait
    // hoping for companions, flush immediately once max_batch are queued.
    if (!stopping_ && opts_.max_wait.count() > 0 &&
        queue_.size() < opts_.max_batch) {
      cv_.wait_until(lk, Clock::now() + opts_.max_wait, [&] {
        return stopping_ || queue_.size() >= opts_.max_batch;
      });
    }
    if (queue_.empty()) continue;  // another instance drained it meanwhile
    std::vector<Item> batch = take_batch_locked();
    const char* reason = batch.size() >= opts_.max_batch
                             ? obs::names::kBatchFlushSize
                             : (stopping_ ? obs::names::kBatchFlushShutdown
                                          : obs::names::kBatchFlushDeadline);
    lk.unlock();
    flush(predictor, std::move(batch), reason);
    lk.lock();
  }
}

void BatchScheduler::flush(core::LatencyPredictor& predictor,
                           std::vector<Item> batch, const char* reason_counter) {
  // Items of cancelled requests are dropped, never predicted; their waiters
  // observe the CancelToken, so a wake-up is all they need.
  std::vector<Item> live;
  live.reserve(batch.size());
  std::uint64_t dropped = 0;
  for (auto& item : batch) {
    if (item.owner->token.cancelled()) {
      ++dropped;
      item.owner->cv.notify_all();
    } else {
      live.push_back(std::move(item));
    }
  }

  double batched_us = 0.0, unbatched_us = 0.0;
  if (!live.empty()) {
    const std::size_t n = live.size();
    const std::size_t rows = live.front().rows;
    const std::size_t stride = rows * trace::kNumFeatures;
    std::vector<std::int32_t> windows(n * stride);
    std::vector<std::uint64_t> indices(n);
    for (std::size_t k = 0; k < n; ++k) {
      std::copy(live[k].window.begin(), live[k].window.end(),
                windows.begin() + static_cast<std::ptrdiff_t>(k * stride));
      indices[k] = live[k].global_index;
    }
    std::vector<core::LatencyPrediction> preds(n);
    std::string error;
    try {
      predictor.predict_batch(windows.data(), n, rows, indices.data(),
                              preds.data());
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown predictor error";
    }
    for (std::size_t k = 0; k < n; ++k) {
      ChannelState& st = *live[k].owner;
      std::lock_guard slk(st.mu);
      if (error.empty()) {
        st.done.emplace(live[k].seq, preds[k]);
      } else {
        st.failed.emplace(live[k].seq, error);
      }
      st.cv.notify_all();
    }
    // One flight-recorder event per distinct request in the batch (a batch
    // typically coalesces several windows of the same request).
    std::vector<std::uint64_t> seen;
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t id = live[k].owner->request_id;
      if (std::find(seen.begin(), seen.end(), id) != seen.end()) continue;
      seen.push_back(id);
      obs::flight::record(id, obs::flight::Event::kBatchFlushed, n);
    }

    std::size_t flops = predictor.flops_per_window(rows);
    if (flops == 0) flops = core::simnet3c2f_flops(rows);
    batched_us = opts_.costs.inference_us(opts_.engine, flops, n,
                                          /*custom_conv=*/false, 1.0);
    unbatched_us = static_cast<double>(n) *
                   opts_.costs.inference_us(opts_.engine, flops, 1,
                                            /*custom_conv=*/false, 1.0);

    MLSIM_COUNTER_ADD(obs::names::kBatchItems, n);
    MLSIM_HIST_RECORD(obs::names::kBatchSize, static_cast<double>(n));
  }
  MLSIM_COUNTER_ADD(reason_counter, 1);
  if (dropped > 0) {
    MLSIM_COUNTER_ADD(obs::names::kBatchDroppedCancelled, dropped);
  }

  std::lock_guard lk(mu_);
  ++stats_.flushes;
  if (reason_counter == obs::names::kBatchFlushSize) ++stats_.flush_size;
  if (reason_counter == obs::names::kBatchFlushDeadline) ++stats_.flush_deadline;
  if (reason_counter == obs::names::kBatchFlushShutdown) ++stats_.flush_shutdown;
  stats_.items_predicted += live.size();
  stats_.items_dropped_cancelled += dropped;
  stats_.max_batch_observed = std::max(stats_.max_batch_observed, live.size());
  stats_.modeled_batched_us += batched_us;
  stats_.modeled_unbatched_us += unbatched_us;
}

std::uint64_t BatchScheduler::Channel::submit(const std::int32_t* window,
                                              std::size_t rows,
                                              std::uint64_t global_index) {
  state_->token.check();  // don't enqueue work for a dead request
  Item item;
  item.owner = state_;
  item.seq = state_->next_seq;
  item.global_index = global_index;
  item.rows = static_cast<std::uint32_t>(rows);
  item.window.assign(window, window + rows * trace::kNumFeatures);

  BatchScheduler& s = *scheduler_;
  {
    std::lock_guard lk(s.mu_);
    if (s.stopping_) {
      throw CancelledError(CancelReason::kManual,
                           "batch scheduler is shutting down");
    }
    if (s.queue_.size() >= s.opts_.queue_capacity) {
      // Bounded backpressure: never block the engine thread. The service
      // maps this to the typed kRejectedQueueFull response.
      throw QueueFullError("batch queue at capacity (" +
                           std::to_string(s.opts_.queue_capacity) + " items)");
    }
    s.queue_.push_back(std::move(item));
    ++s.stats_.items_submitted;
    MLSIM_GAUGE_SET(obs::names::kBatchQueueDepth,
                    static_cast<double>(s.queue_.size()));
  }
  s.cv_.notify_one();
  return state_->next_seq++;
}

core::LatencyPrediction BatchScheduler::Channel::wait(std::uint64_t seq) {
  ChannelState& st = *state_;
  std::unique_lock lk(st.mu);
  for (;;) {
    if (const auto it = st.done.find(seq); it != st.done.end()) {
      const core::LatencyPrediction p = it->second;
      st.done.erase(it);
      return p;
    }
    if (const auto it = st.failed.find(seq); it != st.failed.end()) {
      const std::string error = it->second;
      st.failed.erase(it);
      throw CheckError("batched inference failed: " + error);
    }
    // token.check() throws CancelledError with the cancellation reason once
    // the request is cancelled (deadline, manual, shutdown); the timed wait
    // bounds how stale that poll can get, since cancellation has no way to
    // signal this condition variable directly.
    st.token.check();
    st.cv.wait_for(lk, std::chrono::milliseconds(1));
  }
}

}  // namespace mlsim::service
