// Resilient batch-simulation service (docs/SERVICE.md).
//
// Wraps the simulation engines (parallel, single-GPU, sequential, streaming)
// behind a request API hardened for continuous operation:
//
//   admission control — a bounded priority queue; submit() resolves
//       immediately with a typed Rejected{QueueFull|Overload|Shedding}
//       response instead of growing memory without bound;
//   deadlines — each request carries a completion budget enforced
//       cooperatively through CancelToken polling inside the engine loops,
//       so a timed-out request stops consuming CPU instead of running to a
//       result nobody wants;
//   hang watchdog — a background thread samples per-worker heartbeats (the
//       token polls double as liveness); a worker that stops beating for
//       hang_timeout has its request cancelled and requeued onto a healthy
//       worker, or failed with a typed kWorkerHung after the requeue budget;
//   circuit breaker — repeated predictor anomalies trip a breaker that
//       routes requests to the analytic fallback predictor, with half-open
//       probing to recover (service/circuit_breaker.h);
//   health — a JSON liveness snapshot plus service.* metrics in the obs
//       registry.
//
// Every accepted request resolves to exactly one typed Response; the service
// never crashes, deadlocks, or silently drops a request because of a sick
// worker or predictor (asserted by the chaos soak test).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "core/predictor.h"
#include "service/batcher.h"
#include "service/circuit_breaker.h"
#include "service/remote.h"
#include "service/request.h"
#include "service/sweep.h"

namespace mlsim::service {

struct ServiceOptions {
  /// Real worker threads executing requests.
  std::size_t num_workers = 2;
  /// Queued (not yet running) requests across all priorities.
  std::size_t queue_capacity = 8;
  /// Outstanding (queued + running) bound; 0 = queue_capacity + num_workers.
  std::size_t max_outstanding = 0;
  /// Queue fill fraction at which kLow requests are shed.
  double shed_fraction = 0.75;
  /// Per-tenant outstanding (queued + running) bound; 0 = unlimited. A
  /// tenant at its quota gets typed kRejectedQuota responses while other
  /// tenants are still admitted, and the queue drains fair-share across
  /// tenants within a priority — one noisy tenant cannot monopolize the
  /// workers (docs/SERVICE.md).
  std::size_t tenant_quota = 0;

  /// Watchdog: a worker whose heartbeat is stale for this long is hung.
  std::chrono::milliseconds hang_timeout{250};
  std::chrono::milliseconds watchdog_interval{20};
  /// Times a hung request is requeued before failing typed (kWorkerHung).
  std::size_t max_hang_requeues = 1;

  /// Parallel-engine retry budget per partition (kills + anomalies).
  std::size_t max_retries_per_partition = 8;

  /// When set, kParallel requests execute on this backend (e.g. a
  /// DistCoordinator fronting a worker cluster) instead of in-process. The
  /// backend must outlive the service. Remote results are bit-identical in
  /// CPI, so responses are indistinguishable apart from wall-clock.
  RemoteBackend* remote = nullptr;

  CircuitBreakerOptions breaker;

  /// Cross-request continuous batching (docs/BATCHING.md): when true, the
  /// primary-predictor path of every in-process engine submits its windows
  /// to a shared BatchScheduler, which coalesces windows from concurrent
  /// requests into large inference batches. Per-request results stay
  /// bit-identical to batching-off. The circuit-breaker fallback path and
  /// remote execution always bypass the batcher.
  bool batching = false;
  BatcherOptions batcher;
  /// Additional primary-model replicas the scheduler may dispatch batches
  /// to (one scheduler thread each, on top of the primary). Must behave
  /// identically to the primary and outlive the service.
  std::vector<core::LatencyPredictor*> extra_predictors;
};

class SimulationService {
 public:
  /// `primary` is the production predictor (e.g. the CNN); `fallback` the
  /// analytic stand-in used for anomaly degradation and while the breaker
  /// is open. Both must outlive the service.
  SimulationService(core::LatencyPredictor& primary,
                    core::LatencyPredictor& fallback, ServiceOptions opts = {});
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::future<Response> future;
  };

  /// Admission-controlled submission. Always returns a valid future; a
  /// rejected request's future is already resolved with the typed rejection.
  Ticket submit(Request req);

  /// Best-effort cancellation: a queued request resolves kCancelled
  /// immediately; a running one is cancelled cooperatively. Returns false
  /// if the id is unknown or already resolved.
  bool cancel(std::uint64_t id);

  struct SweepTicket {
    std::uint64_t id = 0;
    std::future<SweepOutcome> future;
  };

  /// Fan a config lattice out as per-point kParallel requests and reduce
  /// the completed points to a ranked SweepReport (docs/SWEEPS.md). The
  /// spec is validated here — an invalid lattice or unknown benchmark
  /// throws CheckError before any work is queued. Points ride the normal
  /// admission path (waves bounded by queue capacity and tenant quota);
  /// per-point rejections and failures are counted in the outcome, never
  /// dropped. Always resolves, including across shutdown().
  SweepTicket submit_sweep(SweepRequest req);

  /// Stop accepting, drain the queue, join workers and watchdog. Idempotent;
  /// also called by the destructor.
  void shutdown();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_shedding = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t hung = 0;            // requests failed as kWorkerHung
    std::uint64_t hangs_detected = 0;  // watchdog firings
    std::uint64_t hang_requeues = 0;
    std::uint64_t degraded = 0;  // completed on (or partly on) the fallback

    std::uint64_t rejected() const {
      return rejected_queue_full + rejected_overload + rejected_shedding +
             rejected_quota;
    }
  };

  Stats stats() const;
  std::size_t queue_depth() const;
  std::size_t inflight() const;
  BreakerState breaker_state() const { return breaker_.state(); }
  std::uint64_t breaker_trips() const { return breaker_.trips(); }
  /// Null when ServiceOptions::batching is off.
  const BatchScheduler* batcher() const { return batcher_.get(); }

  /// Liveness/health snapshot as a single JSON object: overall status
  /// ("ok" | "overloaded" | "degraded" | "stopping"), a coarse `lifecycle`
  /// phase ("serving" | "draining") for orchestrators that only need to
  /// know whether to route new work here, queue and worker occupancy,
  /// breaker state, and the outcome counters. `last_errors > 0`
  /// appends the flight-recorder event sequences of the N most recent
  /// bad-outcome requests (docs/OBSERVABILITY.md) — what the telemetry
  /// endpoint serves for /healthz?last_errors=N.
  std::string health_json(std::size_t last_errors = 0) const;

 private:
  struct RequestState {
    std::uint64_t id = 0;
    Request req;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;  // epoch() = none
    std::size_t hang_requeues = 0;
    bool resolved = false;  // under mu_
  };
  using StatePtr = std::shared_ptr<RequestState>;

  struct WorkerSlot {
    StatePtr active;      // under mu_; null = idle
    CancelSource source;  // recreated per assignment
    bool abandoned = false;
    // Watchdog bookkeeping.
    std::uint64_t last_beat = 0;
    std::chrono::steady_clock::time_point last_change;
  };

  void worker_loop(std::size_t slot_index);
  void watchdog_loop();
  /// Orchestrator body of one sweep (its own thread; service/sweep.cpp).
  void sweep_loop(std::uint64_t sweep_id, SweepRequest req,
                  std::shared_ptr<std::promise<SweepOutcome>> promise);
  /// Run the request's engine; fills the simulation fields of `rsp`.
  void run_request(const RequestState& st, const CancelToken& token,
                   Response& rsp);
  void resolve_locked(const StatePtr& st, Response rsp);
  StatePtr pop_locked();
  std::size_t queued_locked() const;
  void export_gauges_locked() const;
  /// Decrement a per-tenant counter, erasing the entry at zero.
  static void tenant_dec(std::map<std::string, std::size_t>& m,
                         const std::string& tenant);

  core::LatencyPredictor& primary_;
  core::LatencyPredictor& fallback_;
  ServiceOptions opts_;
  std::size_t shed_limit_ = 0;
  std::size_t max_outstanding_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // workers wait here
  std::condition_variable stop_cv_;   // watchdog interval sleep
  bool stopping_ = false;
  bool watchdog_stop_ = false;  // set after workers drain and join
  std::deque<StatePtr> queues_[kNumPriorities];
  /// Per-tenant occupancy, under mu_: queued_ backs the quota admission
  /// check (with running_), running_ drives the fair-share pop. Entries are
  /// erased at zero so idle tenants cost nothing.
  std::map<std::string, std::size_t> tenant_queued_;
  std::map<std::string, std::size_t> tenant_running_;
  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
  /// One orchestrator thread per accepted sweep; joined first in shutdown()
  /// (their outstanding point requests drain through the workers).
  std::vector<std::thread> sweep_threads_;
  // Sweep progress, under mu_ (surfaced by health_json).
  std::uint64_t sweeps_submitted_ = 0;
  std::uint64_t sweeps_active_ = 0;
  std::uint64_t sweeps_completed_ = 0;
  std::uint64_t sweep_points_total_ = 0;
  std::uint64_t sweep_points_done_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t busy_ = 0;
  Stats stats_;

  CircuitBreaker breaker_;
  std::unique_ptr<BatchScheduler> batcher_;  // non-null iff opts_.batching
};

}  // namespace mlsim::service
