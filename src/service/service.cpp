#include "service/service.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"  // QueueFullError
#include "core/gpu_sim.h"
#include "obs/flight_recorder.h"
#include "core/parallel_sim.h"
#include "core/sequential_sim.h"
#include "core/streaming.h"
#include "device/device.h"
#include "obs/obs.h"
#include "trace/stream.h"
#include "trace/workload.h"

namespace mlsim::service {

using Clock = std::chrono::steady_clock;

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "unknown";
}

const char* to_string(EngineKind e) {
  switch (e) {
    case EngineKind::kParallel: return "parallel";
    case EngineKind::kGpu: return "gpu";
    case EngineKind::kSequential: return "sequential";
    case EngineKind::kStreaming: return "streaming";
  }
  return "unknown";
}

const char* to_string(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kCompleted: return "completed";
    case ResponseStatus::kRejectedQueueFull: return "rejected_queue_full";
    case ResponseStatus::kRejectedOverload: return "rejected_overload";
    case ResponseStatus::kRejectedShedding: return "rejected_shedding";
    case ResponseStatus::kRejectedQuota: return "rejected_quota";
    case ResponseStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::kCancelled: return "cancelled";
    case ResponseStatus::kWorkerHung: return "worker_hung";
    case ResponseStatus::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

/// Chaos hook: an attempt the injector marks as a straggler really stalls
/// the worker thread — no engine work, no heartbeats — which is exactly the
/// failure mode the hang watchdog exists to catch. Returns early once the
/// watchdog (or anyone) cancels the attempt.
void injected_stall(const Request& req, std::uint64_t id, std::size_t attempt,
                    const CancelSource& source) {
  if (req.faults == nullptr || req.straggler_stall.count() <= 0) return;
  if (req.faults->straggler_factor(static_cast<std::size_t>(id), attempt) <=
      1.0) {
    return;
  }
  const auto until = Clock::now() + req.straggler_stall;
  while (Clock::now() < until) {
    if (source.cancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

SimulationService::SimulationService(core::LatencyPredictor& primary,
                                     core::LatencyPredictor& fallback,
                                     ServiceOptions opts)
    : primary_(primary),
      fallback_(fallback),
      opts_(opts),
      breaker_(opts.breaker) {
  check(opts_.num_workers > 0, "service needs at least one worker");
  check(opts_.queue_capacity > 0, "service queue capacity must be > 0");
  check(opts_.hang_timeout.count() > 0, "hang_timeout must be > 0");
  check(opts_.watchdog_interval.count() > 0, "watchdog_interval must be > 0");
  max_outstanding_ = opts_.max_outstanding != 0
                         ? opts_.max_outstanding
                         : opts_.queue_capacity + opts_.num_workers;
  auto shed = static_cast<std::size_t>(
      static_cast<double>(opts_.queue_capacity) * opts_.shed_fraction);
  shed_limit_ = shed < opts_.queue_capacity ? shed : opts_.queue_capacity;

  if (opts_.batching) {
    std::vector<core::LatencyPredictor*> instances;
    instances.push_back(&primary_);
    for (auto* p : opts_.extra_predictors) instances.push_back(p);
    batcher_ = std::make_unique<BatchScheduler>(std::move(instances),
                                                opts_.batcher);
  }

  slots_.resize(opts_.num_workers);
  workers_.reserve(opts_.num_workers);
  for (std::size_t i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

SimulationService::~SimulationService() { shutdown(); }

void SimulationService::shutdown() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Sweep orchestrators first, while the workers still run: their
  // outstanding point requests drain through the queue, and any submission
  // they attempt after this point resolves kCancelled immediately, so every
  // sweep future resolves before a worker goes away.
  std::vector<std::thread> sweeps;
  {
    std::lock_guard lk(mu_);
    sweeps.swap(sweep_threads_);
  }
  for (auto& t : sweeps) {
    if (t.joinable()) t.join();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // After the workers: no engine can be mid-submit/wait any more, so the
  // scheduler can drain and join without stranding a waiter.
  if (batcher_ != nullptr) batcher_->shutdown();
  {
    std::lock_guard lk(mu_);
    watchdog_stop_ = true;
  }
  stop_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::size_t SimulationService::queued_locked() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void SimulationService::export_gauges_locked() const {
  MLSIM_GAUGE_SET(obs::names::kSvcQueueDepth,
                  static_cast<double>(queued_locked()));
  MLSIM_GAUGE_SET(obs::names::kSvcInflight, static_cast<double>(busy_));
}

void SimulationService::tenant_dec(std::map<std::string, std::size_t>& m,
                                   const std::string& tenant) {
  const auto it = m.find(tenant);
  if (it == m.end()) return;
  if (--it->second == 0) m.erase(it);
}

SimulationService::StatePtr SimulationService::pop_locked() {
  for (auto& q : queues_) {
    if (q.empty()) continue;
    auto best = q.begin();
    if (opts_.tenant_quota > 0) {
      // Fair-share drain: within the highest non-empty priority, pick the
      // earliest request of the tenant with the fewest running requests, so
      // one tenant's burst cannot monopolize the workers. Ties keep FIFO,
      // which is also the single-tenant (and no-tenant) behavior.
      const auto running_of = [&](const std::string& t) {
        const auto it = tenant_running_.find(t);
        return it != tenant_running_.end() ? it->second : std::size_t{0};
      };
      std::size_t best_running = running_of((*best)->req.tenant);
      for (auto it = std::next(q.begin()); it != q.end(); ++it) {
        const std::size_t r = running_of((*it)->req.tenant);
        if (r < best_running) {
          best = it;
          best_running = r;
        }
      }
    }
    StatePtr st = *best;
    q.erase(best);
    tenant_dec(tenant_queued_, st->req.tenant);
    ++tenant_running_[st->req.tenant];
    return st;
  }
  return nullptr;
}

namespace {

/// Terminal flight-recorder event for a response status — the single place
/// every request outcome is stamped (resolve_locked).
obs::flight::Event flight_event(ResponseStatus s) {
  using obs::flight::Event;
  switch (s) {
    case ResponseStatus::kCompleted: return Event::kCompleted;
    case ResponseStatus::kRejectedQueueFull:
    case ResponseStatus::kRejectedOverload:
    case ResponseStatus::kRejectedShedding:
    case ResponseStatus::kRejectedQuota: return Event::kRejected;
    case ResponseStatus::kDeadlineExceeded: return Event::kDeadlineMissed;
    case ResponseStatus::kCancelled: return Event::kCancelled;
    case ResponseStatus::kWorkerHung: return Event::kHung;
    case ResponseStatus::kFailed: return Event::kFailed;
  }
  return Event::kFailed;
}

}  // namespace

void SimulationService::resolve_locked(const StatePtr& st, Response rsp) {
  if (st->resolved) return;  // watchdog and worker can race to resolve
  st->resolved = true;
  rsp.id = st->id;
  rsp.hang_requeues = st->hang_requeues;
  obs::flight::record(st->id, flight_event(rsp.status),
                      static_cast<std::uint64_t>(rsp.status));
  switch (rsp.status) {
    case ResponseStatus::kCompleted:
      ++stats_.completed;
      MLSIM_COUNTER_ADD(obs::names::kSvcCompleted, 1);
      if (rsp.degraded) {
        ++stats_.degraded;
        MLSIM_COUNTER_ADD(obs::names::kSvcDegraded, 1);
      }
      break;
    case ResponseStatus::kRejectedQueueFull:
      ++stats_.rejected_queue_full;
      MLSIM_COUNTER_ADD(obs::names::kSvcRejectedQueueFull, 1);
      break;
    case ResponseStatus::kRejectedOverload:
      ++stats_.rejected_overload;
      MLSIM_COUNTER_ADD(obs::names::kSvcRejectedOverload, 1);
      break;
    case ResponseStatus::kRejectedShedding:
      ++stats_.rejected_shedding;
      MLSIM_COUNTER_ADD(obs::names::kSvcRejectedShedding, 1);
      break;
    case ResponseStatus::kRejectedQuota:
      ++stats_.rejected_quota;
      MLSIM_COUNTER_ADD(obs::names::kSvcRejectedQuota, 1);
      break;
    case ResponseStatus::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      MLSIM_COUNTER_ADD(obs::names::kSvcDeadlineExceeded, 1);
      break;
    case ResponseStatus::kCancelled:
      ++stats_.cancelled;
      MLSIM_COUNTER_ADD(obs::names::kSvcCancelled, 1);
      break;
    case ResponseStatus::kWorkerHung:
      ++stats_.hung;
      MLSIM_COUNTER_ADD(obs::names::kSvcFailed, 1);
      break;
    case ResponseStatus::kFailed:
      ++stats_.failed;
      MLSIM_COUNTER_ADD(obs::names::kSvcFailed, 1);
      break;
  }
  if (!is_rejection(rsp.status)) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - st->submitted)
                        .count();
    MLSIM_HIST_RECORD(obs::names::kSvcRequestNs, static_cast<double>(ns));
  }
  st->promise.set_value(std::move(rsp));
}

SimulationService::Ticket SimulationService::submit(Request req) {
  auto st = std::make_shared<RequestState>();
  st->req = std::move(req);
  st->submitted = Clock::now();
  if (st->req.deadline.count() > 0) st->deadline = st->submitted + st->req.deadline;

  Ticket ticket;
  std::lock_guard lk(mu_);
  st->id = next_id_++;
  ticket.id = st->id;
  ticket.future = st->promise.get_future();
  ++stats_.submitted;

  if (stopping_) {
    Response rsp;
    rsp.status = ResponseStatus::kCancelled;
    rsp.error = "service is shutting down";
    resolve_locked(st, std::move(rsp));
    return ticket;
  }

  const std::size_t queued = queued_locked();
  if (queued >= opts_.queue_capacity) {
    Response rsp;
    rsp.status = ResponseStatus::kRejectedQueueFull;
    rsp.error = "queue at capacity (" + std::to_string(opts_.queue_capacity) +
                " requests)";
    resolve_locked(st, std::move(rsp));
    return ticket;
  }
  if (queued + busy_ >= max_outstanding_) {
    Response rsp;
    rsp.status = ResponseStatus::kRejectedOverload;
    rsp.error = "too many outstanding requests (" +
                std::to_string(max_outstanding_) + ")";
    resolve_locked(st, std::move(rsp));
    return ticket;
  }
  if (opts_.tenant_quota > 0) {
    const auto qd = tenant_queued_.find(st->req.tenant);
    const auto rn = tenant_running_.find(st->req.tenant);
    const std::size_t outstanding =
        (qd != tenant_queued_.end() ? qd->second : 0) +
        (rn != tenant_running_.end() ? rn->second : 0);
    if (outstanding >= opts_.tenant_quota) {
      Response rsp;
      rsp.status = ResponseStatus::kRejectedQuota;
      rsp.error = "tenant \"" + st->req.tenant + "\" at its quota (" +
                  std::to_string(opts_.tenant_quota) +
                  " outstanding requests)";
      resolve_locked(st, std::move(rsp));
      return ticket;
    }
  }
  if (st->req.priority == Priority::kLow && queued >= shed_limit_) {
    Response rsp;
    rsp.status = ResponseStatus::kRejectedShedding;
    rsp.error = "low-priority request shed at " + std::to_string(queued) + "/" +
                std::to_string(opts_.queue_capacity) + " queue occupancy";
    resolve_locked(st, std::move(rsp));
    return ticket;
  }

  ++stats_.accepted;
  MLSIM_COUNTER_ADD(obs::names::kSvcAccepted, 1);
  obs::flight::record(st->id, obs::flight::Event::kAdmitted);
  obs::flight::record(st->id, obs::flight::Event::kQueued,
                      static_cast<std::uint64_t>(st->req.priority));
  queues_[static_cast<std::size_t>(st->req.priority)].push_back(st);
  ++tenant_queued_[st->req.tenant];
  export_gauges_locked();
  cv_.notify_one();
  return ticket;
}

bool SimulationService::cancel(std::uint64_t id) {
  std::lock_guard lk(mu_);
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if ((*it)->id != id) continue;
      StatePtr st = *it;
      q.erase(it);
      tenant_dec(tenant_queued_, st->req.tenant);
      Response rsp;
      rsp.status = ResponseStatus::kCancelled;
      rsp.error = "cancelled while queued";
      resolve_locked(st, std::move(rsp));
      export_gauges_locked();
      return true;
    }
  }
  for (auto& slot : slots_) {
    if (slot.active != nullptr && slot.active->id == id && !slot.abandoned) {
      slot.source.cancel(CancelReason::kManual);
      return true;
    }
  }
  return false;
}

void SimulationService::worker_loop(std::size_t slot_index) {
  WorkerSlot& slot = slots_[slot_index];
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopping_ || queued_locked() > 0; });
    StatePtr st = pop_locked();
    if (st == nullptr) {
      if (stopping_) return;  // drained
      continue;
    }
    export_gauges_locked();

    const auto now = Clock::now();
    if (st->deadline != Clock::time_point{} && now >= st->deadline) {
      Response rsp;
      rsp.status = ResponseStatus::kDeadlineExceeded;
      rsp.error = "deadline expired before a worker picked the request up";
      resolve_locked(st, std::move(rsp));
      tenant_dec(tenant_running_, st->req.tenant);
      continue;
    }

    obs::flight::record(st->id, obs::flight::Event::kPickedUp, slot_index);
    slot.active = st;
    slot.source = CancelSource();
    if (st->deadline != Clock::time_point{}) {
      const auto budget = st->deadline - now;
      slot.source.set_deadline_after(
          std::chrono::duration_cast<std::chrono::nanoseconds>(budget));
      obs::flight::record(
          st->id, obs::flight::Event::kDeadlineArmed,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(budget)
                  .count()));
    }
    slot.abandoned = false;
    slot.last_beat = slot.source.heartbeat();
    slot.last_change = now;
    ++busy_;
    export_gauges_locked();

    const CancelSource source = slot.source;  // shared state, safe unlocked
    const CancelToken token = source.token();
    const std::size_t attempt = st->hang_requeues;
    lk.unlock();

    Response rsp;
    try {
      injected_stall(st->req, st->id, attempt, source);
      token.check();  // a stall cancelled mid-way must not reach the engine
      run_request(*st, token, rsp);
      rsp.status = ResponseStatus::kCompleted;
    } catch (const CancelledError& e) {
      rsp = Response{};
      switch (e.reason()) {
        case CancelReason::kDeadline:
          rsp.status = ResponseStatus::kDeadlineExceeded;
          break;
        case CancelReason::kHang:
          // The watchdog owns this request now (requeued or failed typed);
          // the abandoned flag below discards whatever we report.
          rsp.status = ResponseStatus::kWorkerHung;
          break;
        default:
          rsp.status = ResponseStatus::kCancelled;
          break;
      }
      rsp.error = e.what();
    } catch (const QueueFullError& e) {
      // The batcher's bounded queue rejected a mid-run submission (the
      // engine never blocks on a full batch queue). Same typed rejection
      // the admission queue uses, so callers see one overload signal.
      rsp = Response{};
      rsp.status = ResponseStatus::kRejectedQueueFull;
      rsp.error = e.what();
    } catch (const std::exception& e) {
      rsp = Response{};
      rsp.status = ResponseStatus::kFailed;
      rsp.error = e.what();
    } catch (...) {
      rsp = Response{};
      rsp.status = ResponseStatus::kFailed;
      rsp.error = "unknown error";
    }

    lk.lock();
    --busy_;
    const bool abandoned = slot.abandoned;
    slot.active = nullptr;
    slot.abandoned = false;
    if (!abandoned) resolve_locked(st, std::move(rsp));
    // Whether resolved here or abandoned to the watchdog, this attempt is no
    // longer running. (A watchdog requeue re-counts the request as queued,
    // so the tenant transiently holds both a queued and a running slot until
    // we reach this line — the conservative direction for a quota.)
    tenant_dec(tenant_running_, st->req.tenant);
    export_gauges_locked();
  }
}

void SimulationService::watchdog_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    stop_cv_.wait_for(lk, opts_.watchdog_interval,
                      [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = Clock::now();
    for (auto& slot : slots_) {
      if (slot.active == nullptr || slot.abandoned) continue;
      const std::uint64_t beat = slot.source.heartbeat();
      if (beat != slot.last_beat) {
        slot.last_beat = beat;
        slot.last_change = now;
        continue;
      }
      if (now - slot.last_change < opts_.hang_timeout) continue;

      // No heartbeat for hang_timeout: declare the worker hung. The request
      // is taken away (abandoned) and the attempt cancelled; the worker will
      // eventually return and discard its result.
      ++stats_.hangs_detected;
      MLSIM_COUNTER_ADD(obs::names::kSvcHangsDetected, 1);
      slot.abandoned = true;
      slot.source.cancel(CancelReason::kHang);

      StatePtr st = slot.active;
      ++st->hang_requeues;
      if (st->hang_requeues <= opts_.max_hang_requeues) {
        // Requeue at the front of its priority class so the retry does not
        // wait behind the backlog. This may transiently exceed
        // queue_capacity; admission control only bounds new submissions.
        ++stats_.hang_requeues;
        MLSIM_COUNTER_ADD(obs::names::kSvcHangRequeues, 1);
        obs::flight::record(st->id, obs::flight::Event::kRetried,
                            st->hang_requeues);
        queues_[static_cast<std::size_t>(st->req.priority)].push_front(st);
        ++tenant_queued_[st->req.tenant];
        export_gauges_locked();
        cv_.notify_one();
      } else {
        Response rsp;
        rsp.status = ResponseStatus::kWorkerHung;
        rsp.error = "worker hung (no heartbeat for " +
                    std::to_string(opts_.hang_timeout.count()) +
                    " ms) and the requeue budget (" +
                    std::to_string(opts_.max_hang_requeues) + ") is exhausted";
        resolve_locked(st, std::move(rsp));
      }
    }
  }
}

void SimulationService::run_request(const RequestState& st,
                                    const CancelToken& token, Response& rsp) {
  const Request& req = st.req;
  const bool use_primary = breaker_.allow_primary();
  if (!use_primary) {
    obs::flight::record(st.id, obs::flight::Event::kBreakerBypassed);
  }
  core::LatencyPredictor& pred = use_primary ? primary_ : fallback_;
  bool primary_failed = false;

  // Continuous batching covers the primary path only: while the breaker is
  // open (or a partition is degraded) the engines call the analytic fallback
  // directly, so a sick primary model can never stall batched peers.
  std::shared_ptr<BatchScheduler::Channel> chan;
  if (use_primary && batcher_ != nullptr) chan = batcher_->open(st.id, token);
  core::PredictSink* const sink = chan.get();

  try {
    switch (req.engine) {
      case EngineKind::kParallel: {
        check(req.trace != nullptr, "parallel request needs a trace");
        core::ParallelSimOptions po;
        po.num_subtraces = req.num_subtraces;
        po.num_gpus = req.num_gpus;
        po.context_length = req.context_length;
        po.warmup = req.warmup ? req.context_length : 0;
        po.post_error_correction = req.correction;
        po.faults = req.faults;
        po.fallback = &fallback_;
        po.max_retries_per_partition = opts_.max_retries_per_partition;
        po.cancel = &token;
        core::ParallelSimResult r;
        if (opts_.remote != nullptr) {
          // Route to the cluster. The coordinator polls the same cancel
          // token, so deadlines and the hang watchdog keep working; shard
          // contents are bit-identical to the in-process engine.
          r = opts_.remote->run_remote(*req.trace, po);
        } else {
          po.batch_sink = sink;
          core::ParallelSimulator sim(pred, po);
          r = sim.run(*req.trace);
        }
        rsp.total_cycles = r.total_cycles;
        rsp.instructions = r.instructions;
        rsp.cpi = r.cpi();
        if (!r.degraded_partitions.empty()) {
          rsp.degraded = true;
          primary_failed = use_primary;  // anomaly guard fired on the primary
        }
        break;
      }
      case EngineKind::kGpu: {
        check(req.trace != nullptr, "gpu request needs a trace");
        device::Device dev;
        core::GpuSimOptions go;
        go.context_length = req.context_length;
        go.cancel = &token;
        go.batch_sink = sink;
        core::GpuSimulator sim(pred, dev, go);
        const auto out = sim.run(*req.trace);
        rsp.total_cycles = out.cycles;
        rsp.instructions = out.instructions;
        rsp.cpi = out.cpi();
        break;
      }
      case EngineKind::kSequential: {
        check(req.trace != nullptr, "sequential request needs a trace");
        core::SequentialSimOptions so;
        so.context_length = req.context_length;
        so.cancel = &token;
        so.batch_sink = sink;
        core::SequentialSimulator sim(pred, so);
        const auto out = sim.run(*req.trace);
        rsp.total_cycles = out.cycles;
        rsp.instructions = out.instructions;
        rsp.cpi = out.cpi();
        break;
      }
      case EngineKind::kStreaming: {
        check(!req.benchmark.empty(), "streaming request needs a benchmark");
        check(req.stream_instructions > 0,
              "streaming request needs stream_instructions > 0");
        trace::LabeledTraceStream stream(trace::find_workload(req.benchmark));
        const auto r = core::simulate_stream(pred, stream,
                                             req.stream_instructions,
                                             req.context_length,
                                             std::size_t{1} << 14, &token,
                                             sink);
        rsp.total_cycles = r.predicted_cycles;
        rsp.instructions = static_cast<std::size_t>(r.instructions);
        rsp.cpi = r.cpi();
        break;
      }
    }
  } catch (...) {
    // Cancellation/deadline/engine errors say nothing about predictor
    // health: release the probe slot without a verdict.
    if (use_primary) breaker_.record_no_verdict();
    throw;
  }

  if (use_primary) {
    if (primary_failed) {
      breaker_.record_failure();
    } else {
      breaker_.record_success();
    }
  } else {
    rsp.degraded = true;  // served by the fallback while the breaker is open
  }
}

SimulationService::Stats SimulationService::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::size_t SimulationService::queue_depth() const {
  std::lock_guard lk(mu_);
  return queued_locked();
}

std::size_t SimulationService::inflight() const {
  std::lock_guard lk(mu_);
  return busy_;
}

std::string SimulationService::health_json(std::size_t last_errors) const {
  std::lock_guard lk(mu_);
  const BreakerState bs = breaker_.state();
  const std::size_t queued = queued_locked();
  const char* status = "ok";
  if (stopping_) {
    status = "stopping";
  } else if (queued >= opts_.queue_capacity) {
    status = "overloaded";
  } else if (bs != BreakerState::kClosed) {
    status = "degraded";
  }
  std::ostringstream os;
  os << "{\"status\":\"" << status << '"'
     << ",\"lifecycle\":\"" << (stopping_ ? "draining" : "serving") << '"'
     << ",\"workers\":" << slots_.size() << ",\"busy\":" << busy_
     << ",\"queued\":" << queued
     << ",\"queue_capacity\":" << opts_.queue_capacity
     << ",\"max_outstanding\":" << max_outstanding_
     << ",\"breaker\":\"" << to_string(bs) << '"'
     << ",\"breaker_trips\":" << breaker_.trips()
     << ",\"batching\":" << (batcher_ != nullptr ? "true" : "false")
     << ",\"submitted\":" << stats_.submitted
     << ",\"accepted\":" << stats_.accepted << ",\"rejected\":{"
     << "\"queue_full\":" << stats_.rejected_queue_full
     << ",\"overload\":" << stats_.rejected_overload
     << ",\"shedding\":" << stats_.rejected_shedding
     << ",\"quota\":" << stats_.rejected_quota << '}'
     << ",\"completed\":" << stats_.completed
     << ",\"failed\":" << stats_.failed
     << ",\"deadline_exceeded\":" << stats_.deadline_exceeded
     << ",\"cancelled\":" << stats_.cancelled << ",\"hung\":" << stats_.hung
     << ",\"hangs_detected\":" << stats_.hangs_detected
     << ",\"hang_requeues\":" << stats_.hang_requeues
     << ",\"degraded\":" << stats_.degraded
     << ",\"sweeps\":{\"submitted\":" << sweeps_submitted_
     << ",\"active\":" << sweeps_active_
     << ",\"completed\":" << sweeps_completed_
     << ",\"points_total\":" << sweep_points_total_
     << ",\"points_done\":" << sweep_points_done_ << '}';
  if (last_errors > 0) {
    os << ",\"last_errors\":" << obs::flight::last_errors_json(last_errors);
  }
  os << '}';
  return os.str();
}

}  // namespace mlsim::service
