// Circuit breaker guarding the primary (CNN) predictor.
//
// Repeated anomalies — NaN latencies, corrupted inference outputs, any run
// that had to degrade to the fallback predictor — indicate the primary
// backend is unhealthy (poisoned weights, a sick device). Instead of letting
// every request pay the anomaly-detect-and-retry cost, the breaker trips
// after `failure_threshold` consecutive failures and routes requests
// straight to the analytic fallback (state kOpen). After `open_cooldown`
// fallback-served requests it admits a single probe onto the primary
// (kHalfOpen); a clean probe closes the breaker, a failed one reopens it.
//
// Cooldown is counted in requests, not wall time, so breaker behaviour is
// deterministic under test and independent of machine speed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace mlsim::service {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* to_string(BreakerState s);

struct CircuitBreakerOptions {
  /// Consecutive primary failures that trip the breaker.
  std::size_t failure_threshold = 3;
  /// Fallback-served requests while open before the next half-open probe.
  std::size_t open_cooldown = 4;
  /// Consecutive successful probes required to close again.
  std::size_t successes_to_close = 1;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions opts = {});

  /// Ask before running a request on the primary predictor. Returns true if
  /// the primary may be used: always when closed, and for exactly one
  /// in-flight probe when the open cooldown has elapsed. A false return
  /// means the caller must use the fallback.
  bool allow_primary();

  /// Verdicts on a primary run admitted by allow_primary().
  void record_success();
  void record_failure();
  /// The admitted run ended without a verdict on the predictor (cancelled,
  /// deadline, hang): release the probe slot without changing state.
  void record_no_verdict();

  BreakerState state() const;
  std::uint64_t trips() const;   // closed/half-open -> open transitions
  std::uint64_t probes() const;  // half-open probes admitted

 private:
  void trip_locked();

  CircuitBreakerOptions opts_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t cooldown_left_ = 0;
  std::size_t probe_successes_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t trips_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace mlsim::service
