// Remote execution hook for the simulation service (docs/SERVICE.md,
// docs/DISTRIBUTED.md). Header-only on purpose: the service depends on this
// interface, the distributed layer implements it (DistCoordinator), and
// neither library links the other.
#pragma once

#include "core/parallel_sim.h"
#include "trace/trace.h"

namespace mlsim::service {

/// Executes a parallel simulation somewhere other than the calling process
/// — e.g. on a coordinator/worker cluster. Implementations must return a
/// result whose integer fields (cycles, CPI, counters) are bit-identical to
/// an in-process ParallelSimulator run of the same trace and options.
class RemoteBackend {
 public:
  virtual ~RemoteBackend() = default;
  virtual core::ParallelSimResult run_remote(
      const trace::EncodedTrace& trace,
      const core::ParallelSimOptions& opts) = 0;
};

}  // namespace mlsim::service
