// Request/response types of the resilient simulation service
// (docs/SERVICE.md).
//
// A Request names a workload and an engine; the Response is a *typed*
// outcome: every accepted request resolves to exactly one ResponseStatus —
// never an uncaught exception, never a silently dropped future. Rejections
// (admission control) resolve immediately; accepted requests resolve when a
// worker finishes, the deadline fires, or the watchdog gives up on them.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "device/fault.h"
#include "trace/trace.h"

namespace mlsim::service {

/// Scheduling class. High drains first; Low is shed first under overload.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kNumPriorities = 3;

const char* to_string(Priority p);

/// Which simulation engine serves the request.
enum class EngineKind : std::uint8_t {
  kParallel,    // partitioned multi-GPU engine (default; fault-tolerant)
  kGpu,         // single-device optimised engine
  kSequential,  // reference baseline
  kStreaming,   // bounded-memory stream over a generated workload
};

const char* to_string(EngineKind e);

struct Request {
  // ---- workload ------------------------------------------------------------
  /// Trace to simulate (kParallel/kGpu/kSequential). Must outlive the
  /// request's resolution; the service never copies it.
  const trace::EncodedTrace* trace = nullptr;
  /// Workload for kStreaming (generated on the worker; `trace` is ignored).
  std::string benchmark;
  std::uint64_t stream_instructions = 0;

  // ---- scheduling ----------------------------------------------------------
  Priority priority = Priority::kNormal;
  /// Tenant the request is accounted to. Empty = the anonymous tenant.
  /// With ServiceOptions::tenant_quota set, each tenant's outstanding
  /// (queued + running) requests are bounded, and the queue drains
  /// fair-share across tenants within a priority (docs/SERVICE.md).
  std::string tenant;
  /// Budget from submission to completion; 0 = none. A request that is
  /// already past its deadline when a worker picks it up is failed without
  /// burning any simulation work.
  std::chrono::nanoseconds deadline{0};

  // ---- engine configuration ------------------------------------------------
  EngineKind engine = EngineKind::kParallel;
  std::size_t num_subtraces = 4;
  std::size_t num_gpus = 1;
  std::size_t context_length = 16;
  bool warmup = true;
  bool correction = true;

  // ---- chaos (tests and soak drivers) --------------------------------------
  /// Fault injector threaded into the parallel engine (device kills,
  /// corrupted outputs) and consulted by the worker for injected stalls: an
  /// attempt the injector marks as a straggler really stalls the worker
  /// without heartbeats, which is what the hang watchdog exists to catch.
  const device::FaultInjector* faults = nullptr;
  /// Real wall-clock stall of an injected-straggler attempt.
  std::chrono::milliseconds straggler_stall{0};
};

enum class ResponseStatus : std::uint8_t {
  kCompleted = 0,
  // Admission control (resolved at submit()).
  kRejectedQueueFull,  // bounded queue at capacity
  kRejectedOverload,   // too many outstanding requests service-wide
  kRejectedShedding,   // low-priority load shed under pressure
  kRejectedQuota,      // tenant over its outstanding-request quota
  // Accepted but not completed.
  kDeadlineExceeded,  // deadline fired before or during simulation
  kCancelled,         // caller cancelled or service shut down
  kWorkerHung,        // watchdog gave up after the hang-requeue budget
  kFailed,            // engine raised a typed error (message in `error`)
};

const char* to_string(ResponseStatus s);

inline bool is_rejection(ResponseStatus s) {
  return s == ResponseStatus::kRejectedQueueFull ||
         s == ResponseStatus::kRejectedOverload ||
         s == ResponseStatus::kRejectedShedding ||
         s == ResponseStatus::kRejectedQuota;
}

struct Response {
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kFailed;

  // Simulation outcome (kCompleted only).
  std::uint64_t total_cycles = 0;
  std::size_t instructions = 0;
  double cpi = 0.0;
  /// Served (fully or partly) by the fallback predictor — breaker open, or
  /// the anomaly guard degraded a partition mid-run.
  bool degraded = false;

  /// Times the watchdog requeued this request after a detected hang.
  std::size_t hang_requeues = 0;
  /// Human-readable detail for non-completed statuses.
  std::string error;

  bool ok() const { return status == ResponseStatus::kCompleted; }
};

}  // namespace mlsim::service
