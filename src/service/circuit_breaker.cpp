#include "service/circuit_breaker.h"

#include "common/check.h"
#include "obs/obs.h"

namespace mlsim::service {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions opts) : opts_(opts) {
  check(opts_.failure_threshold > 0, "breaker failure threshold must be > 0");
  check(opts_.successes_to_close > 0, "breaker successes_to_close must be > 0");
}

void CircuitBreaker::trip_locked() {
  state_ = BreakerState::kOpen;
  cooldown_left_ = opts_.open_cooldown;
  probe_successes_ = 0;
  probe_in_flight_ = false;
  ++trips_;
  MLSIM_COUNTER_ADD(obs::names::kSvcBreakerTrips, 1);
  MLSIM_GAUGE_SET(obs::names::kSvcBreakerState,
                  static_cast<double>(BreakerState::kOpen));
}

bool CircuitBreaker::allow_primary() {
  std::lock_guard lk(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (cooldown_left_ > 0) {
        --cooldown_left_;
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      MLSIM_GAUGE_SET(obs::names::kSvcBreakerState,
                      static_cast<double>(BreakerState::kHalfOpen));
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;  // one probe at a time
      probe_in_flight_ = true;
      ++probes_;
      MLSIM_COUNTER_ADD(obs::names::kSvcBreakerProbes, 1);
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard lk(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    if (++probe_successes_ >= opts_.successes_to_close) {
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      probe_successes_ = 0;
      MLSIM_GAUGE_SET(obs::names::kSvcBreakerState,
                      static_cast<double>(BreakerState::kClosed));
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure() {
  std::lock_guard lk(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    trip_locked();  // failed probe: back to open, fresh cooldown
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= opts_.failure_threshold) {
    trip_locked();
  }
}

void CircuitBreaker::record_no_verdict() {
  std::lock_guard lk(mu_);
  if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lk(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard lk(mu_);
  return trips_;
}

std::uint64_t CircuitBreaker::probes() const {
  std::lock_guard lk(mu_);
  return probes_;
}

}  // namespace mlsim::service
