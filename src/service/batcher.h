// Cross-request continuous-batching inference scheduler (docs/BATCHING.md).
//
// The paper's entire speedup is the batch dimension: the GPU is efficient
// only when one inference call carries many independent windows. A single
// narrow request (few sub-traces, or the strictly sequential engines) can
// never fill a batch by itself — but a *fleet* of concurrent requests can.
// This scheduler applies LLM-serving-style continuous batching across
// requests:
//
//   engine loops (any request)          scheduler threads (one per
//        │                              predictor instance)
//        │ Channel::submit(window)           │
//        ▼                                   ▼
//   bounded shared work-item queue ──► coalesce up to max_batch items
//        │                             (flush early after max_wait_us)
//        │                                   │ one predict_batch() per
//        │                                   │ rows-group
//        ▼                                   ▼
//   Channel::wait(seq) ◄── per-request completion slots, results keyed
//                          by sequence number
//
// Ordering / bit-identity: every submission gets a per-request sequence
// number in submission order; results are delivered into the request's
// completion slot keyed by that number, so the consumer reads them in
// stable sequence order no matter how the scheduler interleaved requests
// into batches. A window's prediction depends only on the window itself
// (predict_batch computes samples independently), so a single request's
// output is byte-identical to an unbatched run regardless of interleave —
// asserted by the interleave fuzz test.
//
// Backpressure: the shared queue is bounded; submit() throws QueueFullError
// (common/thread_pool.h) instead of blocking the engine thread, and the
// service maps that to the typed kRejectedQueueFull response.
//
// Cancellation: queued items of a cancelled request (deadline, manual,
// shutdown) are dropped at flush time, never predicted; a waiter blocked in
// wait() observes its CancelToken and throws CancelledError.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "core/cost_model.h"
#include "core/predict_sink.h"
#include "core/predictor.h"

namespace mlsim::service {

struct BatcherOptions {
  /// Items coalesced into one inference call at most. Flushing also splits
  /// on window rows: a batch only carries windows of one shape.
  std::size_t max_batch = 64;
  /// How long a non-full batch may wait for more items before flushing.
  /// 0 flushes immediately with whatever is queued (pure opportunistic
  /// batching — lowest latency, smallest batches).
  std::chrono::microseconds max_wait{100};
  /// Bound of the shared work-item queue; submit() throws QueueFullError at
  /// capacity. Size it >= the service's max_outstanding: each in-flight
  /// request keeps at most one item queued, so a correctly sized queue
  /// never rejects (see docs/BATCHING.md).
  std::size_t queue_capacity = 512;

  /// Simulated-time accounting of the inference the scheduler issues (the
  /// same cost model the engines charge): each flush of n windows costs one
  /// inference_us(engine, flops, n) against `engine`. Stats expose the
  /// batched total alongside the per-window unbatched equivalent, which is
  /// what fig_batch_throughput reports as aggregate MIPS.
  core::CostModel costs;
  device::Engine engine = device::Engine::kTensorRTSparse;
};

class BatchScheduler {
 public:
  /// One scheduler thread per predictor instance, all draining the shared
  /// queue — "N predictor instances" is simply a longer vector (model
  /// replicas, or the same weights loaded per device). Instances must be
  /// non-null, safe to call from the scheduler's own thread, and outlive
  /// the scheduler.
  explicit BatchScheduler(std::vector<core::LatencyPredictor*> instances,
                          BatcherOptions opts = {});
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  class Channel;

  /// Open a per-request submission channel. `token` governs every item
  /// submitted through it: once cancelled, queued items are dropped and
  /// waiters throw CancelledError. The channel may outlive the scheduler
  /// (shared state); submissions after shutdown() fail as cancelled.
  std::shared_ptr<Channel> open(std::uint64_t request_id, CancelToken token);

  /// Drain the queue (flushing remaining live items) and join the
  /// scheduler threads. Idempotent; also called by the destructor.
  void shutdown();

  struct Stats {
    std::uint64_t items_submitted = 0;
    std::uint64_t items_predicted = 0;
    std::uint64_t items_dropped_cancelled = 0;
    std::uint64_t flushes = 0;
    std::uint64_t flush_size = 0;      // batch hit max_batch
    std::uint64_t flush_deadline = 0;  // max_wait expired
    std::uint64_t flush_shutdown = 0;  // drained at shutdown
    std::size_t max_batch_observed = 0;
    /// Modeled inference time actually charged (batched) and what the same
    /// windows would have cost one by one (batch = 1).
    double modeled_batched_us = 0.0;
    double modeled_unbatched_us = 0.0;
  };
  Stats stats() const;
  std::size_t queue_depth() const;

 private:
  struct ChannelState;

  struct Item {
    std::shared_ptr<ChannelState> owner;
    std::uint64_t seq = 0;
    std::uint64_t global_index = 0;
    std::uint32_t rows = 0;
    std::vector<std::int32_t> window;  // rows * kNumFeatures, owned copy
  };

  void scheduler_loop(std::size_t instance);
  /// Take up to max_batch queued items sharing the front item's window
  /// shape (FIFO otherwise). Caller holds mu_.
  std::vector<Item> take_batch_locked();
  void flush(core::LatencyPredictor& predictor, std::vector<Item> batch,
             const char* reason_counter);

  std::vector<core::LatencyPredictor*> instances_;
  BatcherOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // scheduler threads wait here
  std::deque<Item> queue_;
  bool stopping_ = false;
  Stats stats_;

  std::vector<std::thread> threads_;
};

/// Per-request PredictSink handed to the engine loops. Thread-compatible
/// with the engines' use (one submitting/waiting thread per request); the
/// scheduler delivers results concurrently from its own threads.
class BatchScheduler::Channel final : public core::PredictSink {
 public:
  std::uint64_t submit(const std::int32_t* window, std::size_t rows,
                       std::uint64_t global_index) override;
  core::LatencyPrediction wait(std::uint64_t seq) override;

 private:
  friend class BatchScheduler;
  Channel(BatchScheduler* scheduler, std::shared_ptr<ChannelState> state)
      : scheduler_(scheduler), state_(std::move(state)) {}

  BatchScheduler* scheduler_;
  std::shared_ptr<ChannelState> state_;
};

}  // namespace mlsim::service
