// Service-level design-space-exploration sweeps (docs/SWEEPS.md).
//
// A SweepRequest is the wire-serializable form of a sweep: a config lattice
// plus the scheduling attributes of the simulation service — priority,
// tenant, and a per-point deadline. SimulationService::submit_sweep()
// expands the lattice and fans the points out as ordinary kParallel
// requests, so every admission-control, quota, batching, deadline, and
// remote-execution behavior of the service applies per point; rejected or
// failed points are counted per outcome instead of sinking the sweep.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/request.h"
#include "sweep/sweep.h"

namespace mlsim::service {

struct SweepRequest {
  sweep::SweepSpec spec;

  // Per-point engine configuration (mirrors sweep::SweepOptions).
  std::size_t num_subtraces = 4;
  std::size_t num_gpus = 1;
  std::size_t context_length = 64;
  bool recovery = true;
  std::uint64_t seed = 1;

  // Service scheduling, applied to every point request.
  Priority priority = Priority::kNormal;
  std::string tenant;
  /// Budget per point (not for the whole sweep); 0 = none.
  std::chrono::milliseconds deadline{0};

  /// Sealed wire form (magic | version | checksum | size | payload) — what a
  /// remote client sends; decode() validates the envelope and every field.
  std::string encode() const;
  static SweepRequest decode(std::string_view enveloped);
};

/// Terminal outcome of one sweep: the ranked report over the points that
/// completed, plus typed counts for the ones that did not.
struct SweepOutcome {
  sweep::SweepReport report;
  std::size_t points_total = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;  // admission control (queue/overload/quota/shed)
  std::size_t failed = 0;    // deadline, cancellation, or engine error
  /// One "label: status detail" line per non-completed point.
  std::vector<std::string> errors;

  bool ok() const { return completed == points_total; }
};

}  // namespace mlsim::service
