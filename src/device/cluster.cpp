#include "device/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::device {

Cluster::Cluster(std::size_t num_gpus, const GpuSpec& spec) {
  check(num_gpus > 0, "cluster needs at least one GPU");
  devices_.reserve(num_gpus);
  for (std::size_t i = 0; i < num_gpus; ++i) devices_.emplace_back(spec);
}

Device& Cluster::gpu(std::size_t i) {
  check_index(i, devices_.size(), "gpu index");
  return devices_[i];
}

const Device& Cluster::gpu(std::size_t i) const {
  check_index(i, devices_.size(), "gpu index");
  return devices_[i];
}

double Cluster::total_time_us(std::size_t bytes_per_gpu) const {
  double slowest = 0.0;
  for (const auto& d : devices_) slowest = std::max(slowest, d.synchronize());
  return slowest + allreduce_time_us(devices_.size(), bytes_per_gpu);
}

void Cluster::reset_time() {
  for (auto& d : devices_) d.reset_time();
}

}  // namespace mlsim::device
