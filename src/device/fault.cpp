#include "device/fault.h"

#include "common/check.h"
#include "common/rng.h"

namespace mlsim::device {

FaultInjector::FaultInjector(FaultOptions opts) : opts_(opts) {
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  check(rate_ok(opts_.device_kill_rate), "device_kill_rate must be in [0, 1]");
  check(rate_ok(opts_.straggler_rate), "straggler_rate must be in [0, 1]");
  check(rate_ok(opts_.output_corrupt_rate),
        "output_corrupt_rate must be in [0, 1]");
  check(rate_ok(opts_.worker_kill_rate), "worker_kill_rate must be in [0, 1]");
  check(opts_.straggler_slowdown >= 1.0, "straggler_slowdown must be >= 1");
}

bool FaultInjector::enabled() const {
  return opts_.device_kill_rate > 0.0 || opts_.straggler_rate > 0.0 ||
         opts_.output_corrupt_rate > 0.0 || opts_.worker_kill_rate > 0.0 ||
         opts_.die_after_partition != static_cast<std::size_t>(-1);
}

std::uint64_t FaultInjector::draw(Stream stream, std::size_t partition,
                                  std::size_t attempt,
                                  std::uint64_t index) const {
  // FNV-style mix of the decision coordinates, then SplitMix64 to whiten.
  std::uint64_t h = opts_.seed ^ 0x9e3779b97f4a7c15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(stream));
  mix(partition);
  mix(attempt);
  mix(index);
  return SplitMix64(h).next();
}

double FaultInjector::uniform(Stream stream, std::size_t partition,
                              std::size_t attempt, std::uint64_t index) const {
  return static_cast<double>(draw(stream, partition, attempt, index) >> 11) *
         0x1.0p-53;
}

std::optional<double> FaultInjector::kill_point(std::size_t partition,
                                                std::size_t attempt) const {
  if (opts_.device_kill_rate <= 0.0) return std::nullopt;
  if (uniform(kKill, partition, attempt, 0) >= opts_.device_kill_rate) {
    return std::nullopt;
  }
  // Die strictly inside the body so a kill always discards real work.
  return 0.05 + 0.9 * uniform(kKillPoint, partition, attempt, 0);
}

double FaultInjector::straggler_factor(std::size_t partition,
                                       std::size_t attempt) const {
  if (opts_.straggler_rate <= 0.0) return 1.0;
  return uniform(kStraggle, partition, attempt, 0) < opts_.straggler_rate
             ? opts_.straggler_slowdown
             : 1.0;
}

bool FaultInjector::worker_killed(std::size_t shard,
                                  std::size_t attempt) const {
  if (opts_.worker_kill_rate <= 0.0) return false;
  return uniform(kWorkerKill, shard, attempt, 0) < opts_.worker_kill_rate;
}

bool FaultInjector::corrupts(std::size_t partition, std::size_t attempt,
                             std::uint64_t index) const {
  if (opts_.output_corrupt_rate <= 0.0) return false;
  return uniform(kCorrupt, partition, attempt, index) <
         opts_.output_corrupt_rate;
}

CorruptLatencies FaultInjector::corrupt_latencies(std::size_t partition,
                                                  std::size_t attempt,
                                                  std::uint64_t index) const {
  const std::uint64_t v = draw(kCorruptValue, partition, attempt, index);
  // Three garbage lanes in [2^24, 2^31): far above any genuine latency.
  auto lane = [v](unsigned shift) {
    return static_cast<std::uint32_t>((v >> shift) & 0x7fffffffu) | (1u << 24);
  };
  return {lane(0), lane(21), lane(42)};
}

}  // namespace mlsim::device
