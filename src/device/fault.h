// Deterministic fault injection for the parallel simulation engines.
//
// At real cluster scale (the Summit-style deployments of §V) device loss,
// stragglers, and corrupted inference outputs are routine, so the parallel
// engine must tolerate them without distorting the final Clock gather. The
// injector models three fault classes at partition-attempt granularity:
//
//   device kill   — the device slot running a partition attempt dies at a
//                   point inside the body; all work is discarded and the
//                   partition is requeued (with re-warmup) on a survivor;
//   straggler     — the attempt lands on a slow device: results are correct
//                   but the modeled per-step time is multiplied;
//   output corruption — a fraction of inference outputs come back as
//                   NaN/garbage latencies (modeled as huge integer values,
//                   what a NaN becomes after the int conversion).
//
// Every decision is a pure hash of (seed, partition, attempt[, index]) —
// never of execution order — so a fault schedule replays bit-identically
// across retries, thread counts, and checkpoint resume.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

namespace mlsim::device {

/// Thrown by the engine when the injector simulates whole-process death
/// (`die_after_partition`); distinct from CheckError so tests and drivers
/// can tell "the run was killed" from "the run found a bug".
class InjectedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultOptions {
  std::uint64_t seed = 0;
  /// Probability a partition attempt's device slot dies mid-body.
  double device_kill_rate = 0.0;
  /// Probability a partition attempt runs on a straggling device.
  double straggler_rate = 0.0;
  /// Modeled per-step slowdown of a straggling attempt.
  double straggler_slowdown = 4.0;
  /// Per-instruction probability of a corrupted inference output.
  double output_corrupt_rate = 0.0;
  /// Simulate process death (InjectedCrash) once this many partitions have
  /// completed — after their checkpoint write, so a --resume run can pick
  /// up. SIZE_MAX = never. Excluded from the checkpoint fingerprint: the
  /// resumed run legitimately differs from its killed predecessor here.
  std::size_t die_after_partition = static_cast<std::size_t>(-1);
  /// Distributed cluster only (docs/DISTRIBUTED.md): probability a worker
  /// process dies mid-shard on a given (shard, assignment-attempt). The
  /// coordinator observes the disconnect and reassigns the shard. Keyed on
  /// the coordinator-tracked attempt so a reassignment re-draws — and, like
  /// die_after_partition, excluded from the run fingerprint: who computed a
  /// shard never changes what the shard computes.
  double worker_kill_rate = 0.0;
};

/// Garbage latencies substituted for a corrupted inference output. Values
/// are drawn from [2^24, 2^31) so they always trip the default anomaly
/// guard — a NaN cast to int is garbage, not a plausible latency.
struct CorruptLatencies {
  std::uint32_t fetch = 0;
  std::uint32_t exec = 0;
  std::uint32_t store = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;  // all rates zero: inert
  explicit FaultInjector(FaultOptions opts);

  const FaultOptions& options() const { return opts_; }

  /// True if any fault class can fire (a process-death trigger counts).
  bool enabled() const;

  /// Fraction of the attempt's body completed before the device dies, in
  /// (0, 1); nullopt if this attempt survives.
  std::optional<double> kill_point(std::size_t partition,
                                   std::size_t attempt) const;

  /// Modeled slowdown factor for this attempt (1.0 = healthy device).
  double straggler_factor(std::size_t partition, std::size_t attempt) const;

  /// Whether instruction `index`'s inference output is corrupted on this
  /// attempt.
  bool corrupts(std::size_t partition, std::size_t attempt,
                std::uint64_t index) const;

  /// The garbage substituted when corrupts() fires.
  CorruptLatencies corrupt_latencies(std::size_t partition, std::size_t attempt,
                                     std::uint64_t index) const;

  /// Whether the worker process computing shard `shard` dies on assignment
  /// attempt `attempt` (distributed cluster; see docs/DISTRIBUTED.md).
  bool worker_killed(std::size_t shard, std::size_t attempt) const;

  /// True when `completed_partitions` hits the process-death trigger
  /// exactly — a resumed run restarts past the trigger and is not killed
  /// again even with identical options.
  bool dies_after(std::size_t completed_partitions) const {
    return completed_partitions == opts_.die_after_partition;
  }

 private:
  // Independent decision streams so e.g. the kill draw never perturbs the
  // straggler draw for the same attempt.
  enum Stream : std::uint64_t {
    kKill = 1,
    kKillPoint = 2,
    kStraggle = 3,
    kCorrupt = 4,
    kCorruptValue = 5,
    kWorkerKill = 6,
  };
  std::uint64_t draw(Stream stream, std::size_t partition, std::size_t attempt,
                     std::uint64_t index) const;
  double uniform(Stream stream, std::size_t partition, std::size_t attempt,
                 std::uint64_t index) const;

  FaultOptions opts_;
};

}  // namespace mlsim::device
