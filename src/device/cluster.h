// Multi-GPU cluster model (Summit-style nodes) for the scalability study.
//
// The parallel simulation scheme requires zero inter-GPU communication
// during simulation; only a final gather of per-partition Clock values
// happens at the end (§V-A). A Cluster therefore is just a set of
// independent Devices plus that gather cost; total simulated time is the
// slowest device's timeline plus the reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.h"

namespace mlsim::device {

class Cluster {
 public:
  Cluster(std::size_t num_gpus, const GpuSpec& spec);

  std::size_t size() const { return devices_.size(); }
  Device& gpu(std::size_t i);
  const Device& gpu(std::size_t i) const;

  /// Simulated wall time: slowest device + final Clock gather
  /// (`bytes_per_gpu` of partition results per device).
  double total_time_us(std::size_t bytes_per_gpu) const;

  void reset_time();

 private:
  std::vector<Device> devices_;
};

}  // namespace mlsim::device
