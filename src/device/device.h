// Simulated GPU device: buffers, streams, events, async copies, kernels.
//
// Execution model: kernels run immediately on the host (their results are
// real and unit-tested for bit-exactness), while each stream carries a
// simulated-time cursor advanced by the GpuSpec cost model. Async semantics
// — copy/compute overlap, double buffering, multi-stream pipelines — are
// reproduced exactly in simulated time: an operation on stream S starts at
// max(S.cursor, dependencies) and finishes start + cost.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "device/gpu_spec.h"

namespace mlsim::device {

using StreamId = std::size_t;

/// Device-resident typed buffer (host-backed in this simulation).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n) : data_(n) {}

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  void resize(std::size_t n) { data_.resize(n); }

 private:
  std::vector<T> data_;
};

class Device {
 public:
  explicit Device(GpuSpec spec = GpuSpec::a100());

  const GpuSpec& spec() const { return spec_; }

  StreamId create_stream();
  std::size_t num_streams() const { return streams_.size(); }

  /// Async H2D copy of `bytes` from `src` to `dst` on `stream`; performs the
  /// real memcpy now, advances the stream cursor by the modeled time.
  /// Returns the completion timestamp (µs).
  double copy_h2d(void* dst, const void* src, std::size_t bytes, StreamId stream);

  /// Launch a kernel: `fn` executes immediately; the stream cursor advances
  /// by the modeled kernel time for (bytes_moved, flops).
  double launch(StreamId stream, std::size_t bytes_moved, std::size_t flops,
                const std::function<void()>& fn, bool fp16 = false);

  /// Account an inference launch (the caller runs the network itself).
  double launch_inference(StreamId stream, Engine engine, std::size_t flops,
                          double sparse_fraction = 0.85);

  /// Advance a stream by an explicit cost (for composite modeled steps).
  double advance(StreamId stream, double cost_us);

  /// Event timestamp of the last operation on `stream`.
  double record(StreamId stream) const;

  /// Make `stream` wait for an event timestamp (cudaStreamWaitEvent).
  void wait(StreamId stream, double event_us);

  /// Device-wide synchronisation point: max cursor across streams.
  double synchronize() const;

  /// Reset all stream cursors to zero (new measurement window).
  void reset_time();

 private:
  GpuSpec spec_;
  std::vector<double> streams_;  // per-stream simulated-time cursor (µs)
};

}  // namespace mlsim::device
