#include "device/gpu_spec.h"

#include <algorithm>
#include <cmath>

namespace mlsim::device {

GpuSpec GpuSpec::a100() {
  GpuSpec s;
  s.name = "A100-40GB";
  return s;  // defaults are the calibrated A100 numbers
}

GpuSpec GpuSpec::v100() {
  GpuSpec s;
  s.name = "V100-16GB";
  s.fp32_tflops = 15.7;
  s.fp16_tflops = 62.0;  // dense-equivalent Tensor Core model
  s.dev_bw_gbps = 900.0;
  s.h2d_lat_us = 0.55;
  s.h2d_bw_gbps = 8.0;
  s.launch_us = 0.33;
  s.compute_eff = 0.09;
  s.inference_eff = 0.90;
  s.libtorch_overhead_us = 1.00;
  s.trt_overhead_us = 0.21;
  s.sparse_speedup = 1.0;  // no sparse Tensor Cores pre-Ampere
  s.memory_bytes = 16ull << 30;
  return s;
}

double GpuSpec::h2d_time_us(std::size_t bytes) const {
  return h2d_lat_us + static_cast<double>(bytes) / (h2d_bw_gbps * 1e3);
}

double GpuSpec::kernel_time_us(std::size_t bytes_moved, std::size_t flops,
                               bool fp16) const {
  const double mem_us = static_cast<double>(bytes_moved) / (dev_bw_gbps * 1e3);
  const double tflops = (fp16 ? fp16_tflops : fp32_tflops) * compute_eff;
  const double compute_us = static_cast<double>(flops) / (tflops * 1e6);
  return launch_us + std::max(mem_us, compute_us);
}

double GpuSpec::inference_time_us(Engine engine, std::size_t flops,
                                  double sparse_fraction) const {
  double overhead = trt_overhead_us;
  double tflops = fp32_tflops;
  double fl = static_cast<double>(flops);
  switch (engine) {
    case Engine::kLibTorch:
      overhead = libtorch_overhead_us;
      break;
    case Engine::kTensorRT:
      break;
    case Engine::kTensorRTHalf:
      tflops = fp16_tflops * 0.35;  // achievable fp16 fraction for small GEMMs
      break;
    case Engine::kTensorRTSparse:
      tflops = fp16_tflops * 0.35;
      fl = fl * (1.0 - sparse_fraction) + fl * sparse_fraction / sparse_speedup;
      break;
  }
  const double compute_us = fl / (tflops * inference_eff * 1e6);
  return overhead + compute_us;
}

double allreduce_time_us(std::size_t num_gpus, std::size_t bytes_per_gpu) {
  if (num_gpus <= 1) return 0.0;
  // Latency-dominated small gather: alpha * log2(P) + data term.
  const double alpha_us = 6.0;
  const double beta_us_per_kb = 0.08;
  return alpha_us * std::log2(static_cast<double>(num_gpus)) +
         beta_us_per_kb * static_cast<double>(bytes_per_gpu) / 1024.0 *
             static_cast<double>(num_gpus);
}

}  // namespace mlsim::device
