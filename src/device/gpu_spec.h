// GPU device specifications and the analytic cost model.
//
// This machine has no GPU, so the device layer *executes* all kernels on the
// host (bit-exact results) while *accounting* time with a calibrated
// analytic model. The model has three parts:
//   - host<->device transfers: latency + bytes/bandwidth (throughput-
//     oriented link, so per-byte cost falls with transfer size — the
//     property the paper's pipelined batching exploits);
//   - kernel launches: fixed overhead + bytes/device-bandwidth +
//     flops/compute-throughput;
//   - inference engines: LibTorch vs TensorRT overheads, fp16 and 2:4
//     sparsity throughput multipliers (Tensor Core model).
// Constants are calibrated against the per-step microsecond measurements the
// paper reports for DGX-A100 (Figs. 2, 11-15), so figure shapes — who wins,
// crossover batch sizes, scaling slopes — are reproduced faithfully.
#pragma once

#include <cstddef>
#include <string>

namespace mlsim::device {

/// Inference engine flavours of §IV-B.
enum class Engine {
  kLibTorch,       // baseline PyTorch C++ inference
  kTensorRT,       // fused/tuned kernels
  kTensorRTHalf,   // + fp16 Tensor Core
  kTensorRTSparse, // + 2:4 structured sparsity
};

struct GpuSpec {
  std::string name;
  double fp32_tflops = 19.5;      // peak FP32
  double fp16_tflops = 78.0;      // dense fp16 Tensor Core (usable fraction applied)
  double dev_bw_gbps = 1555.0;    // HBM bandwidth
  double h2d_lat_us = 0.40;       // per-transfer latency
  double h2d_bw_gbps = 6.0;       // effective small/medium transfer bandwidth
  double launch_us = 0.28;        // kernel launch + driver overhead
  double compute_eff = 0.10;      // achieved fraction of peak for tiny kernels
  double inference_eff = 1.00;    // fused-GEMM engines run near peak
  double libtorch_overhead_us = 0.84;  // per-inference framework overhead
  double trt_overhead_us = 0.17;       // fused-engine overhead
  double sparse_speedup = 1.8;    // 2:4 Tensor Core matmul speedup
  std::size_t memory_bytes = 40ull << 30;

  static GpuSpec a100();
  static GpuSpec v100();

  /// Host-to-device transfer time (microseconds).
  double h2d_time_us(std::size_t bytes) const;

  /// Generic kernel: data movement + compute, overlapped (max), plus launch.
  double kernel_time_us(std::size_t bytes_moved, std::size_t flops,
                        bool fp16 = false) const;

  /// Inference time for a batch with the given per-batch FLOP count.
  /// `sparse_fraction` is the fraction of FLOPs eligible for 2:4 speedup.
  double inference_time_us(Engine engine, std::size_t flops,
                           double sparse_fraction = 0.85) const;
};

/// Inter-node gather cost for the final Clock reduction across P partitions
/// (the only communication in the parallel scheme, §V-A).
double allreduce_time_us(std::size_t num_gpus, std::size_t bytes_per_gpu);

}  // namespace mlsim::device
