#include "device/device.h"

#include <algorithm>
#include <cstring>

namespace mlsim::device {

Device::Device(GpuSpec spec) : spec_(std::move(spec)) {
  streams_.push_back(0.0);  // default stream 0
}

StreamId Device::create_stream() {
  streams_.push_back(synchronize());
  return streams_.size() - 1;
}

double Device::copy_h2d(void* dst, const void* src, std::size_t bytes,
                        StreamId stream) {
  check_index(stream, streams_.size(), "stream id");
  if (bytes > 0 && dst != nullptr && src != nullptr) std::memcpy(dst, src, bytes);
  streams_[stream] += spec_.h2d_time_us(bytes);
  return streams_[stream];
}

double Device::launch(StreamId stream, std::size_t bytes_moved, std::size_t flops,
                      const std::function<void()>& fn, bool fp16) {
  check_index(stream, streams_.size(), "stream id");
  if (fn) fn();
  streams_[stream] += spec_.kernel_time_us(bytes_moved, flops, fp16);
  return streams_[stream];
}

double Device::launch_inference(StreamId stream, Engine engine, std::size_t flops,
                                double sparse_fraction) {
  check_index(stream, streams_.size(), "stream id");
  streams_[stream] += spec_.inference_time_us(engine, flops, sparse_fraction);
  return streams_[stream];
}

double Device::advance(StreamId stream, double cost_us) {
  check_index(stream, streams_.size(), "stream id");
  check(cost_us >= 0.0, "cost must be non-negative");
  streams_[stream] += cost_us;
  return streams_[stream];
}

double Device::record(StreamId stream) const {
  check_index(stream, streams_.size(), "stream id");
  return streams_[stream];
}

void Device::wait(StreamId stream, double event_us) {
  check_index(stream, streams_.size(), "stream id");
  streams_[stream] = std::max(streams_[stream], event_us);
}

double Device::synchronize() const {
  return *std::max_element(streams_.begin(), streams_.end());
}

void Device::reset_time() {
  std::fill(streams_.begin(), streams_.end(), 0.0);
}

}  // namespace mlsim::device
