// Shard layer of the parallel engine (paper §V; docs/DISTRIBUTED.md).
//
// A *shard* is the contiguous block of sub-trace partitions owned by one
// modeled GPU — the natural unit of distribution, because the paper's
// post-error correction never crosses a GPU boundary (zero inter-GPU
// communication), so a shard is simulatable with no state from any other
// shard. This header extracts the partition-execution body out of
// ParallelSimulator::run into pieces reused by both executors:
//
//   ShardPlan    — partition boundaries + the block layout (who owns what);
//   ShardEngine  — runs partitions in ascending order, carrying the
//                  cross-partition state (retire ring, end-of-partition
//                  snapshot) and all accumulators. The in-process
//                  ParallelSimulator drives one engine over every partition
//                  (and checkpoints its public state); a distributed worker
//                  drives one over just its block;
//   ShardOutcome — the serializable result of one block, merged by
//                  ShardMerger. Every CPI-bearing field is an integer, so
//                  the merge is associative and the distributed result is
//                  bit-identical to the single-process engine on the same
//                  trace and seed (sim_time_us may differ in final bits:
//                  occupancy statistics merge with different float rounding
//                  than sequential accumulation).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/parallel_sim.h"

namespace mlsim::core {

/// Partition boundaries plus the per-GPU block layout of a run. Computed
/// identically by the in-process engine, the coordinator, and every worker,
/// from (trace size, options) alone.
struct ShardPlan {
  std::vector<std::size_t> boundaries;  // P+1 entries
  std::size_t instructions = 0;         // n
  std::size_t parts = 0;                // P = min(num_subtraces, n)
  std::size_t gpus = 0;                 // G = min(num_gpus, P)
  std::size_t per_gpu = 0;              // ceil(P / G): block size
  std::size_t num_shards = 0;           // ceil(P / per_gpu) <= G

  static ShardPlan make(std::size_t n, const ParallelSimOptions& opts);

  std::size_t gpu_of(std::size_t p) const { return p / per_gpu; }
  /// Partition range [lo, hi) of shard (block) s.
  std::size_t shard_lo(std::size_t s) const { return s * per_gpu; }
  std::size_t shard_hi(std::size_t s) const {
    const std::size_t hi = (s + 1) * per_gpu;
    return hi < parts ? hi : parts;
  }
};

/// Serializable outcome of one shard — everything the merge needs to
/// reconstruct the block's contribution to a ParallelSimResult.
struct ShardOutcome {
  std::uint64_t part_lo = 0;
  std::uint64_t part_hi = 0;

  // Per-partition accounting, size part_hi - part_lo.
  std::vector<std::uint64_t> partition_cycles;
  std::vector<std::uint64_t> partition_steps;
  std::vector<std::uint64_t> partition_wasted;
  std::vector<std::uint32_t> final_attempt;

  // Fault-recovery bookkeeping (absolute partition indices).
  std::vector<std::uint64_t> failed_partitions;
  std::vector<std::uint64_t> degraded_partitions;
  std::uint64_t warmup_instructions = 0;
  std::uint64_t corrected_instructions = 0;
  std::uint64_t retries = 0;
  double backoff_us = 0.0;
  std::uint8_t gpu_lost = 0;

  /// Context-occupancy samples drawn inside this block.
  RunningStats::State occupancy;

  /// Recorded outputs for instruction range [boundaries[lo], boundaries[hi])
  /// (present only when the run records them).
  std::vector<LatencyPrediction> predictions;
  std::vector<std::uint16_t> context_counts;
};

/// Executes partitions of a partitioned run in ascending order, carrying
/// the retire ring and the end-of-previous-partition snapshot across calls.
/// All state is public: the in-process ParallelSimulator checkpoints and
/// restores it; distributed workers serialize a block of it via
/// block_outcome(). `predictor`, `trace`, `opts`, and `plan` must outlive
/// the engine.
class ShardEngine {
 public:
  ShardEngine(LatencyPredictor& predictor, const trace::EncodedTrace& trace,
              const ParallelSimOptions& opts, const ShardPlan& plan);

  /// Run partition p: the fault-tolerant attempt loop (kills, anomaly
  /// degradation, retry budget) plus post-error correction of p's head
  /// against the previous partition's end state. Call with ascending p;
  /// skipping to the first partition of a block is valid (blocks are
  /// independent), skipping within a block is not.
  void run_partition(std::size_t p);

  /// Extract the outcome of block [part_lo, part_hi). Meaningful when the
  /// engine ran exactly that block (distributed worker) — accumulator
  /// totals are engine-wide.
  ShardOutcome block_outcome(std::size_t part_lo, std::size_t part_hi) const;

  // ---- cross-partition state (checkpointed by ParallelSimulator) -----------
  std::vector<std::uint64_t> partition_cycles;
  std::vector<std::size_t> partition_steps;   // incl. warmup + corrections
  std::vector<std::size_t> partition_wasted;  // burnt by failed attempts
  std::vector<std::uint32_t> final_attempt;   // successful attempt index
  std::vector<std::uint8_t> degraded;         // running on the fallback
  std::vector<std::uint8_t> failed;           // hit by a device kill
  std::vector<std::uint8_t> gpu_lost;         // slots killed mid-run (size G)
  std::vector<std::uint64_t> prev_ring;  // end-of-previous-partition snapshot
  std::uint64_t prev_clock = 0;
  std::size_t prev_oldest = 0;

  RunningStats occupancy;  // sampled context occupancy (drives the cost model)
  double backoff_us = 0.0;
  std::size_t warmup_instructions = 0;
  std::size_t corrected_instructions = 0;
  std::size_t retries = 0;
  /// Partitions hit by a kill / finished degraded, in completion order.
  std::vector<std::size_t> failed_list;
  std::vector<std::size_t> degraded_list;

  /// Recorded per-instruction outputs (full trace length when recording;
  /// a block worker fills only its range).
  std::vector<LatencyPrediction> predictions;
  std::vector<std::uint16_t> context_counts;

 private:
  void charge_retry(std::size_t part, std::size_t& attempt, const char* why);

  LatencyPredictor& predictor_;
  const trace::EncodedTrace& trace_;
  const ParallelSimOptions& opts_;
  const ShardPlan& plan_;
  const device::FaultInjector* faults_;  // null when disabled

  std::vector<std::uint32_t> fetch_lat_;
  std::vector<std::vector<std::uint16_t>> head_counts_;
  std::vector<std::uint64_t> ring_;
  std::vector<std::int32_t> sink_window_;  // materialised window for batch_sink
};

/// Merges shard outcomes (added in ascending part_lo order) back into full
/// per-partition arrays and a ParallelSimResult. Integer merges are plain
/// sums/copies, so CPI, cycle totals, predictions, and every counter are
/// bit-identical to an in-process run over the same plan.
class ShardMerger {
 public:
  explicit ShardMerger(const ShardPlan& plan, bool record_predictions,
                       bool record_context_counts);

  /// Throws CheckError if the outcome's shape does not match the plan.
  void add(const ShardOutcome& o);

  /// True once every partition in the plan has been covered.
  bool complete() const { return covered_ == plan_.parts; }

  /// Finalize into `res` (boundaries, counters, cycles, modeled time).
  /// `predictor_flops` feeds the time model exactly as the in-process
  /// engine's predictor would.
  ParallelSimResult finish(const ParallelSimOptions& opts,
                           std::size_t predictor_flops) const;

 private:
  const ShardPlan& plan_;
  std::size_t covered_ = 0;

  std::vector<std::uint64_t> partition_cycles_;
  std::vector<std::size_t> partition_steps_;
  std::vector<std::size_t> partition_wasted_;
  std::vector<std::uint32_t> final_attempt_;
  std::vector<std::uint8_t> gpu_lost_;
  std::vector<std::size_t> failed_;
  std::vector<std::size_t> degraded_;
  std::size_t warmup_ = 0, corrected_ = 0, retries_ = 0;
  double backoff_us_ = 0.0;
  RunningStats occupancy_;
  std::vector<LatencyPrediction> predictions_;
  std::vector<std::uint16_t> context_counts_;
};

/// Identity of a (trace, options) pair: checkpoints may only resume into —
/// and workers may only compute shards for — the exact run that produced it.
/// `die_after_partition` is deliberately excluded (see device/fault.h): the
/// resumed run is the same run minus the process death.
std::uint64_t run_fingerprint(const trace::EncodedTrace& tr,
                              const ParallelSimOptions& o, std::size_t parts);

/// Shared tail of a partitioned run: sums per-partition cycles, applies the
/// straggler/penalty terms, and computes the modeled simulated time. Fills
/// total_cycles, sim_time_us, lost_devices, and retry_backoff_us of `res`
/// (whose instruction/recovery counters are already set) and emits the
/// engine-level obs gauges.
void finalize_parallel_result(const ParallelSimOptions& opts,
                              const ShardPlan& plan,
                              const std::vector<std::uint64_t>& partition_cycles,
                              const std::vector<std::size_t>& partition_steps,
                              const std::vector<std::size_t>& partition_wasted,
                              const std::vector<std::uint32_t>& final_attempt,
                              const std::vector<std::uint8_t>& gpu_lost,
                              double backoff_us, const RunningStats& occupancy,
                              std::size_t predictor_flops,
                              ParallelSimResult& res);

}  // namespace mlsim::core
