// Reference instruction queue implementing the simulation semantics of
// Fig. 1, in the program-order-indexed form the sliding-window design uses:
//
//   - the window's context row r holds instruction i-r (program order);
//   - a context row is *valid* while its instruction is still in flight
//     (retire clock > Clock); retired rows are zeroed in place — they are
//     "removed from the instruction queue" in the paper's terms — which
//     keeps row index == dependency distance, the property both the
//     dependency features and the sliding window rely on;
//   - each valid row's latency entry carries its remaining latency
//     (retire clock − Clock), the value the paper updates in the input's
//     first column every iteration.
//
// This is the behavioural specification; SlidingWindowQueue must produce
// identical windows and Clock trajectories (asserted by tests).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/window.h"

namespace mlsim::core {

class InstructionQueue {
 public:
  explicit InstructionQueue(std::size_t context_length = kDefaultContextLength);

  std::size_t context_length() const { return ctx_len_; }
  std::uint64_t clock() const { return clock_; }
  std::uint64_t last_retire_clock() const { return last_retire_; }

  /// Number of in-flight instructions among the context candidates — the
  /// "number of context instructions" the paper's correction criterion uses.
  std::size_t context_count() const;

  /// Steps 1+2 of Fig. 1: build the inference window (rows =
  /// context_length+1, row-major, zero padded) with `features` as row 0,
  /// then admit the instruction. Context rows carry remaining-latency
  /// entries relative to the current Clock; retired rows are zero.
  void push_and_build(std::span<const std::int32_t> features,
                      std::vector<std::int32_t>& out);

  /// Step 4: record the prediction for the pushed instruction; retire clock
  /// = pre-advance Clock + fetch + exec + store; Clock += fetch.
  void apply_prediction(const LatencyPrediction& p);

  /// Drop all state but keep the configuration (new sub-trace).
  void reset();

  /// Seed the Clock (used when resuming from a predecessor partition).
  void set_clock(std::uint64_t clock) { clock_ = clock; }

  /// Cycles including the drain of still-in-flight instructions.
  std::uint64_t total_cycles_with_drain() const;

 private:
  struct Entry {
    std::vector<std::int32_t> features;  // kNumFeatures values
    std::uint64_t retire_clock = 0;
  };

  std::size_t ctx_len_;
  std::uint64_t clock_ = 0;
  std::uint64_t last_retire_ = 0;
  std::deque<Entry> entries_;  // front = instruction i-1, back = oldest kept
  bool pending_ = false;       // push_and_build called, prediction outstanding
};

}  // namespace mlsim::core
