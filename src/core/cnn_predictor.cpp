#include "core/cnn_predictor.h"

#include <cmath>
#include <fstream>

#include "common/check.h"

namespace mlsim::core {

namespace {
constexpr std::uint32_t kBundleMagic = 0x4d4c424eu;  // "MLBN"
}

void SimNetBundle::save(const std::filesystem::path& path) const {
  model.save(path);
  std::ofstream os(path, std::ios::binary | std::ios::app);
  check(os.is_open(), "cannot append scales to bundle: " + path.string());
  os.write(reinterpret_cast<const char*>(&kBundleMagic), sizeof(kBundleMagic));
  const auto n = static_cast<std::uint64_t>(feature_scale.size());
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(feature_scale.data()),
           static_cast<std::streamsize>(feature_scale.size() * sizeof(float)));
  check(static_cast<bool>(os), "bundle write failed");
}

SimNetBundle SimNetBundle::load(const std::filesystem::path& path) {
  tensor::SimNetModel model = tensor::SimNetModel::load(path);
  // The scales trailer sits after the model payload; re-open and seek by
  // re-reading the model region is fragile, so we scan from the end: the
  // trailer is magic + count + floats.
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  check(is.is_open(), "cannot open bundle: " + path.string());
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  const std::uint64_t n_features = trace::kNumFeatures;
  const std::uint64_t trailer =
      sizeof(kBundleMagic) + sizeof(std::uint64_t) + n_features * sizeof(float);
  check(file_size > trailer, "bundle file too small");
  is.seekg(static_cast<std::streamoff>(file_size - trailer));
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  check(magic == kBundleMagic, "bad bundle trailer magic");
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  check(n == n_features, "bundle scale count mismatch");
  SimNetBundle b{std::move(model), std::vector<float>(n_features, 1.0f)};
  is.read(reinterpret_cast<char*>(b.feature_scale.data()),
          static_cast<std::streamsize>(n_features * sizeof(float)));
  check(static_cast<bool>(is), "bundle trailer truncated");
  return b;
}

CnnPredictor::CnnPredictor(SimNetBundle bundle, device::Engine engine)
    : bundle_(std::move(bundle)), engine_(engine) {
  check(bundle_.feature_scale.size() == trace::kNumFeatures,
        "feature scale width mismatch");
}

std::uint32_t CnnPredictor::decode(float y) {
  // A NaN weight or activation must never become a plausible latency (the
  // int conversion of a NaN is garbage); report a sentinel the anomaly
  // guard is guaranteed to trip on instead.
  if (!std::isfinite(y)) [[unlikely]] return kNonFiniteLatency;
  const float v = std::expm1(std::max(y, 0.0f));
  if (!(v < 2147483648.0f)) [[unlikely]] return kNonFiniteLatency;
  return static_cast<std::uint32_t>(std::lround(std::max(v, 0.0f)));
}

void CnnPredictor::fill_input(tensor::Tensor& x, std::size_t sample,
                              const std::int32_t* window, std::size_t rows) const {
  const std::size_t W = bundle_.model.config().window;
  const std::size_t F = trace::kNumFeatures;
  check(rows == W, "window rows must match the model's window");
  float* xd = x.data() + sample * F * W;
  // Transpose instruction-major window rows into (feature, instruction).
  for (std::size_t l = 0; l < W; ++l) {
    const std::int32_t* row = window + l * F;
    for (std::size_t ci = 0; ci < F; ++ci) {
      xd[ci * W + l] = static_cast<float>(row[ci]) * bundle_.feature_scale[ci];
    }
  }
}

LatencyPrediction CnnPredictor::predict(const WindowView& window,
                                        std::uint64_t /*global_index*/) {
  tensor::Tensor x({1, trace::kNumFeatures, bundle_.model.config().window});
  fill_input(x, 0, window.data, window.rows);
  const tensor::Tensor y = bundle_.model.forward(x);
  return {decode(y.at(0)), decode(y.at(1)), decode(y.at(2))};
}

void CnnPredictor::predict_batch(const std::int32_t* windows, std::size_t batch,
                                 std::size_t rows,
                                 const std::uint64_t* /*global_indices*/,
                                 LatencyPrediction* out) {
  tensor::Tensor x({batch, trace::kNumFeatures, bundle_.model.config().window});
  for (std::size_t b = 0; b < batch; ++b) {
    fill_input(x, b, windows + b * rows * trace::kNumFeatures, rows);
  }
  const tensor::Tensor y = bundle_.model.forward(x);
  for (std::size_t b = 0; b < batch; ++b) {
    out[b] = {decode(y(b, 0)), decode(y(b, 1)), decode(y(b, 2))};
  }
}

}  // namespace mlsim::core
