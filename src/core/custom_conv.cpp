#include "core/custom_conv.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::core {

CustomConvLayer::CustomConvLayer(const tensor::Conv1D& conv) : conv_(conv) {
  check(conv.in_channels() == trace::kNumFeatures,
        "custom conv expects kNumFeatures input channels");
}

tensor::Tensor CustomConvLayer::forward(const SlidingWindowQueue& queue) {
  const std::size_t W = queue.context_length() + 1;
  const std::size_t c_out = conv_.out_channels();
  const std::size_t c_in = conv_.in_channels();
  const std::size_t k = conv_.kernel();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k / 2);
  const std::size_t pos = queue.window_pos();
  const std::int32_t* storage = queue.storage().data();
  const std::size_t cap_rows = queue.storage().size() / trace::kNumFeatures;

  check(W >= 2, "window must contain at least one context row");

  // Per-window-row validity + latency entry, resolved once (the paper's
  // shared-memory latency vector).
  std::vector<std::int32_t> lat(W, 0);
  std::vector<std::uint8_t> valid(W, 0);
  valid.front() = 1;  // current instruction
  std::size_t v_last = 0;
  for (std::size_t r = 1; r < W; ++r) {
    const std::size_t s = pos + r;
    if (s >= cap_rows) break;
    lat[r] = queue.remaining_latency(s);
    if (lat[r] > 0) {
      valid[r] = 1;
      v_last = r;
    }
  }
  // Columns whose receptive field is entirely beyond the last valid row are
  // bias-only; skip their compute.
  const std::size_t last_col =
      std::min(W - 1, v_last + static_cast<std::size_t>(pad));
  computed_cols_ = last_col + 1;

  tensor::Tensor y({1, c_out, W});
  const auto& w = conv_.weight();
  const auto& b = conv_.bias();
  float* yd = y.data();

  // Reads feature `ci` of window row `l` without materialising the window:
  // instruction-major strided access into the queue storage.
  auto value = [&](std::size_t ci, std::size_t l) -> float {
    if (!valid[l]) return 0.0f;
    if (ci == kCtxLatFeature) return static_cast<float>(lat[l]);
    return static_cast<float>(storage[(pos + l) * trace::kNumFeatures + ci]);
  };

  for (std::size_t co = 0; co < c_out; ++co) {
    float* yrow = yd + co * W;
    for (std::size_t l = 0; l < W; ++l) yrow[l] = b[co];
    const float* wrow = w.data() + co * c_in * k;
    for (std::size_t ci = 0; ci < c_in; ++ci) {
      const float* wk = wrow + ci * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float wv = wk[kk];
        if (wv == 0.0f) continue;
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kk) - pad;
        const std::size_t lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
        const std::size_t hi_full = off > 0 ? W - static_cast<std::size_t>(off) : W;
        // Padding avoidance: input rows beyond v_last are zero, so outputs
        // beyond last_col never receive contributions.
        const std::size_t hi = std::min(hi_full, last_col + 1);
        for (std::size_t l = lo; l < hi; ++l) {
          const std::size_t row =
              static_cast<std::size_t>(static_cast<std::ptrdiff_t>(l) + off);
          yrow[l] += wv * value(ci, row);
        }
      }
    }
  }
  return y;
}

}  // namespace mlsim::core
