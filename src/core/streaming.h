// Streaming simulation: run the ML simulator over a LabeledTraceStream with
// bounded memory (one chunk of trace rows + the context window), so
// arbitrarily long programs can be simulated — the regime of the paper's
// 10-100 billion-instruction scalability runs.
#pragma once

#include <cstdint>

#include "common/cancellation.h"
#include "core/predict_sink.h"
#include "core/predictor.h"
#include "core/window.h"
#include "trace/stream.h"

namespace mlsim::core {

struct StreamingResult {
  std::uint64_t predicted_cycles = 0;   // sum of predicted fetch latencies
  std::uint64_t truth_cycles = 0;       // sum of ground-truth fetch latencies
  std::uint64_t instructions = 0;

  double cpi() const {
    return instructions ? static_cast<double>(predicted_cycles) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
  double truth_cpi() const {
    return instructions ? static_cast<double>(truth_cycles) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
};

/// Simulate `total_instructions` from the stream sequentially. Holds at
/// most `chunk_size` + context_length trace rows in memory at any time and
/// produces exactly the same predictions as materialising the whole trace.
/// `cancel` (optional) is polled once per instruction; a cancelled or
/// past-deadline run throws CancelledError. `batch_sink` (optional) routes
/// each window through a cross-request batching scheduler instead of the
/// in-loop predictor call (docs/BATCHING.md); predictions are bit-identical.
StreamingResult simulate_stream(LatencyPredictor& predictor,
                                trace::LabeledTraceStream& stream,
                                std::uint64_t total_instructions,
                                std::size_t context_length,
                                std::size_t chunk_size = 1 << 16,
                                const CancelToken* cancel = nullptr,
                                PredictSink* batch_sink = nullptr);

}  // namespace mlsim::core
