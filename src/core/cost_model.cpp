#include "core/cost_model.h"

namespace mlsim::core {

double CostModel::inference_us(device::Engine engine, std::size_t flops_per_window,
                               std::size_t batch, bool custom_conv,
                               double avg_valid_fraction) const {
  double flops = static_cast<double>(flops_per_window) * static_cast<double>(batch);
  if (custom_conv) {
    // The first conv layer dominated by padded columns: the custom layer only
    // computes the valid ones. Conv1 is roughly 1/4 of total model FLOPs for
    // the 3C+2F shape; the rest of the network is unchanged.
    const double conv1_share = 0.25;
    flops *= (1.0 - conv1_share) + conv1_share * avg_valid_fraction;
  }
  return gpu.inference_time_us(engine, static_cast<std::size_t>(flops));
}

}  // namespace mlsim::core
