// CNN latency predictor: the trained SimNet 3C+2F model behind the
// LatencyPredictor interface.
//
// Features are normalised per-slot with scales computed from the training
// set; outputs are trained in log1p space and rounded back to integer
// cycles. The engine flavour only affects the simulated-time model (and,
// for fp16/2:4, the quantised weights used for real inference).
#pragma once

#include <filesystem>
#include <vector>

#include "core/predictor.h"
#include "tensor/model.h"

namespace mlsim::core {

/// Trained model plus its feature normalisation — the deployable artifact.
struct SimNetBundle {
  tensor::SimNetModel model;
  std::vector<float> feature_scale;  // kNumFeatures entries

  void save(const std::filesystem::path& path) const;
  static SimNetBundle load(const std::filesystem::path& path);
};

class CnnPredictor final : public LatencyPredictor {
 public:
  CnnPredictor(SimNetBundle bundle,
               device::Engine engine = device::Engine::kTensorRTSparse);

  LatencyPrediction predict(const WindowView& window,
                            std::uint64_t global_index) override;
  void predict_batch(const std::int32_t* windows, std::size_t batch,
                     std::size_t rows, const std::uint64_t* global_indices,
                     LatencyPrediction* out) override;

  std::size_t flops_per_window(std::size_t /*rows*/) const override {
    return bundle_.model.flops_per_batch(1);
  }
  device::Engine engine() const override { return engine_; }

  tensor::SimNetModel& model() { return bundle_.model; }
  const SimNetBundle& bundle() const { return bundle_; }

  /// Latency substituted for a non-finite (NaN/Inf) or overflowing model
  /// output. Chosen above ParallelSimOptions::anomaly_latency_limit's
  /// default, so a poisoned model routes through the existing anomaly /
  /// graceful-degradation path instead of silently corrupting the Clock.
  static constexpr std::uint32_t kNonFiniteLatency = 1u << 24;

  /// Convert a raw model output (log1p space) to integer cycles. NaN, Inf,
  /// and values that overflow 31 bits decode to kNonFiniteLatency.
  static std::uint32_t decode(float y);

 private:
  void fill_input(tensor::Tensor& x, std::size_t sample, const std::int32_t* window,
                  std::size_t rows) const;

  SimNetBundle bundle_;
  device::Engine engine_;
};

}  // namespace mlsim::core
