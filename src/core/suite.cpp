#include "core/suite.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "device/device.h"

namespace mlsim::core {

std::size_t SuiteReport::total_instructions() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.instructions;
  return n;
}

double SuiteReport::mips() const {
  return makespan_us > 0.0
             ? static_cast<double>(total_instructions()) / makespan_us
             : 0.0;
}

double SuiteReport::utilization() const {
  if (makespan_us <= 0.0 || device_busy_us_.empty()) return 0.0;
  const double busy =
      std::accumulate(device_busy_us_.begin(), device_busy_us_.end(), 0.0);
  return busy / (makespan_us * static_cast<double>(device_busy_us_.size()));
}

std::vector<std::size_t> lpt_assignment(const std::vector<double>& estimated_costs,
                                        std::size_t num_devices) {
  check(num_devices > 0, "need at least one device");
  std::vector<std::size_t> order(estimated_costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return estimated_costs[a] > estimated_costs[b];
  });
  std::vector<double> load(num_devices, 0.0);
  std::vector<std::size_t> assignment(estimated_costs.size(), 0);
  for (const std::size_t j : order) {
    const std::size_t d = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[j] = d;
    load[d] += estimated_costs[j];
  }
  return assignment;
}

SuiteReport run_suite(LatencyPredictor& predictor,
                      const std::vector<SuiteJob>& jobs, std::size_t num_devices,
                      const GpuSimOptions& options) {
  check(!jobs.empty(), "suite needs at least one job");
  for (const auto& j : jobs) check(j.trace != nullptr, "job without a trace");

  std::vector<double> costs;
  costs.reserve(jobs.size());
  for (const auto& j : jobs) costs.push_back(static_cast<double>(j.trace->size()));
  const auto assignment = lpt_assignment(costs, num_devices);

  SuiteReport report;
  report.devices = num_devices;
  report.device_busy_us_.assign(num_devices, 0.0);
  report.jobs.reserve(jobs.size());

  // One modeled device per slot; jobs on a device run back-to-back.
  std::vector<device::Device> devices(num_devices,
                                      device::Device(options.costs.gpu));
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t d = assignment[j];
    GpuSimulator sim(predictor, devices[d], options);
    const SimOutput out = sim.run(*jobs[j].trace);
    report.jobs.push_back({jobs[j].name, d, out.cpi(), out.sim_time_us,
                           out.instructions});
    report.device_busy_us_[d] += out.sim_time_us;
  }
  for (double busy : report.device_busy_us_) {
    report.makespan_us = std::max(report.makespan_us, busy);
  }
  return report;
}

}  // namespace mlsim::core
