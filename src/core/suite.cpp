#include "core/suite.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "core/checkpoint.h"
#include "device/device.h"

namespace mlsim::core {

namespace {
std::uint64_t suite_fingerprint(const std::vector<SuiteJob>& jobs,
                                std::size_t num_devices,
                                const GpuSimOptions& options) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(jobs.size());
  for (const auto& j : jobs) {
    for (const char c : j.name) mix(static_cast<unsigned char>(c));
    mix(j.trace->size());
  }
  mix(num_devices);
  mix(options.context_length);
  mix(options.batch_n);
  return h;
}
}  // namespace

std::size_t SuiteReport::total_instructions() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.instructions;
  return n;
}

double SuiteReport::mips() const {
  return makespan_us > 0.0
             ? static_cast<double>(total_instructions()) / makespan_us
             : 0.0;
}

double SuiteReport::utilization() const {
  if (makespan_us <= 0.0 || device_busy_us_.empty()) return 0.0;
  const double busy =
      std::accumulate(device_busy_us_.begin(), device_busy_us_.end(), 0.0);
  return busy / (makespan_us * static_cast<double>(device_busy_us_.size()));
}

std::vector<std::size_t> lpt_assignment(const std::vector<double>& estimated_costs,
                                        std::size_t num_devices) {
  check(num_devices > 0, "need at least one device");
  std::vector<std::size_t> order(estimated_costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return estimated_costs[a] > estimated_costs[b];
  });
  std::vector<double> load(num_devices, 0.0);
  std::vector<std::size_t> assignment(estimated_costs.size(), 0);
  for (const std::size_t j : order) {
    const std::size_t d = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[j] = d;
    load[d] += estimated_costs[j];
  }
  return assignment;
}

SuiteReport run_suite(LatencyPredictor& predictor,
                      const std::vector<SuiteJob>& jobs, std::size_t num_devices,
                      const GpuSimOptions& options,
                      const std::filesystem::path& checkpoint, bool resume) {
  check(!jobs.empty(), "suite needs at least one job");
  for (const auto& j : jobs) check(j.trace != nullptr, "job without a trace");

  std::vector<double> costs;
  costs.reserve(jobs.size());
  for (const auto& j : jobs) costs.push_back(static_cast<double>(j.trace->size()));
  const auto assignment = lpt_assignment(costs, num_devices);

  const bool checkpointing = !checkpoint.empty();
  const std::uint64_t fp = suite_fingerprint(jobs, num_devices, options);
  SuiteCheckpoint ck;
  ck.fingerprint = fp;
  // Jobs run in index order, so a checkpoint holds a prefix of the job list.
  std::size_t done = 0;
  if (checkpointing && resume) {
    SuiteCheckpoint prev;
    if (load_checkpoint(checkpoint, prev)) {
      check(prev.fingerprint == fp,
            "suite checkpoint was written for a different job set: " +
                checkpoint.string());
      check(prev.completed.size() <= jobs.size(),
            "suite checkpoint has more jobs than this suite: " +
                checkpoint.string());
      ck.completed = std::move(prev.completed);
      done = ck.completed.size();
    }
  }

  SuiteReport report;
  report.devices = num_devices;
  report.device_busy_us_.assign(num_devices, 0.0);
  report.jobs.reserve(jobs.size());

  // One modeled device per slot; jobs on a device run back-to-back.
  std::vector<device::Device> devices(num_devices,
                                      device::Device(options.costs.gpu));
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t d = assignment[j];
    if (j < done) {
      const SuiteCheckpointJob& c = ck.completed[j];
      check(c.name == jobs[j].name && c.device == d,
            "suite checkpoint job " + std::to_string(j) +
                " does not match this suite: " + checkpoint.string());
      report.jobs.push_back({c.name, d, c.cpi, c.sim_time_us,
                             static_cast<std::size_t>(c.instructions)});
      report.device_busy_us_[d] += c.sim_time_us;
      continue;
    }
    GpuSimulator sim(predictor, devices[d], options);
    const SimOutput out = sim.run(*jobs[j].trace);
    report.jobs.push_back({jobs[j].name, d, out.cpi(), out.sim_time_us,
                           out.instructions});
    report.device_busy_us_[d] += out.sim_time_us;
    if (checkpointing) {
      ck.completed.push_back({jobs[j].name, d, out.cpi(), out.sim_time_us,
                              static_cast<std::uint64_t>(out.instructions)});
      save_checkpoint(checkpoint, ck);
    }
  }
  for (double busy : report.device_busy_us_) {
    report.makespan_us = std::max(report.makespan_us, busy);
  }
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::remove(checkpoint, ec);
  }
  return report;
}

}  // namespace mlsim::core
