#include "core/checkpoint.h"

#include <cstring>
#include <fstream>

#include "common/artifacts.h"
#include "common/check.h"

namespace mlsim::core {

namespace {

constexpr std::uint32_t kParallelMagic = 0x4d4c434b;  // "MLCK"
constexpr std::uint32_t kSuiteMagic = 0x4d4c4353;     // "MLCS"
constexpr std::uint32_t kCkptVersion = 1;

// Append-only little-endian serializer; the final file is
//   magic | version | payload_checksum | payload_size | payload
// so any torn write is caught by the length/checksum pair before a single
// payload field is trusted.
class Writer {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }
  template <typename T>
  void vec(const std::vector<T>& v) {
    pod(static_cast<std::uint64_t>(v.size()));
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    buf_.append(s);
  }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

class Reader {
 public:
  Reader(const char* data, std::size_t size, std::string context)
      : p_(data), end_(data + size), context_(std::move(context)) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> vec() {
    const auto count = pod<std::uint64_t>();
    need(count * sizeof(T));
    std::vector<T> v(count);
    std::memcpy(v.data(), p_, count * sizeof(T));
    p_ += count * sizeof(T);
    return v;
  }
  std::string str() {
    const auto len = pod<std::uint64_t>();
    need(len);
    std::string s(p_, len);
    p_ += len;
    return s;
  }
  void finish() const {
    check(p_ == end_, "checkpoint has trailing bytes: " + context_);
  }

 private:
  void need(std::uint64_t bytes) const {
    check(static_cast<std::uint64_t>(end_ - p_) >= bytes,
          "checkpoint truncated: " + context_);
  }
  const char* p_;
  const char* end_;
  std::string context_;
};

void write_envelope(const std::filesystem::path& path, std::uint32_t magic,
                    const std::string& payload) {
  Writer head;
  head.pod(magic);
  head.pod(kCkptVersion);
  head.pod(fnv1a64(payload.data(), payload.size()));
  head.pod(static_cast<std::uint64_t>(payload.size()));
  write_file_atomic(path, head.bytes() + payload);
}

/// Returns the verified payload, or false via the out-param path when the
/// file does not exist.
bool read_envelope(const std::filesystem::path& path, std::uint32_t magic,
                   std::string& payload) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return false;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("cannot stat checkpoint: " + path.string());
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) throw IoError("cannot open checkpoint: " + path.string());
  std::string all(size, '\0');
  is.read(all.data(), static_cast<std::streamsize>(size));
  check(static_cast<bool>(is), "read failed on checkpoint: " + path.string());
  Reader head(all.data(), all.size(), path.string());
  constexpr std::size_t kEnvelopeBytes = 4 + 4 + 8 + 8;
  check(all.size() >= kEnvelopeBytes,
        "checkpoint too small for its envelope: " + path.string());
  check(head.pod<std::uint32_t>() == magic,
        "bad checkpoint magic (wrong file or corrupted): " + path.string());
  check(head.pod<std::uint32_t>() == kCkptVersion,
        "unsupported checkpoint version: " + path.string());
  const auto sum = head.pod<std::uint64_t>();
  const auto payload_size = head.pod<std::uint64_t>();
  check(payload_size == all.size() - kEnvelopeBytes,
        "checkpoint payload length mismatch (torn write?): " + path.string());
  payload = all.substr(kEnvelopeBytes);
  check(fnv1a64(payload.data(), payload.size()) == sum,
        "checkpoint checksum mismatch (corrupted): " + path.string());
  return true;
}

}  // namespace

void save_checkpoint(const std::filesystem::path& path,
                     const ParallelCheckpoint& ck) {
  Writer w;
  w.pod(ck.fingerprint);
  w.pod(ck.next_partition);
  w.pod(ck.num_partitions);
  w.pod(ck.ring_capacity);
  w.pod(ck.warmup_instructions);
  w.pod(ck.corrected_instructions);
  w.pod(ck.retries);
  w.pod(ck.backoff_us);
  w.pod(ck.occupancy);
  w.pod(ck.prev_clock);
  w.pod(ck.prev_oldest);
  w.vec(ck.prev_ring);
  w.vec(ck.partition_cycles);
  w.vec(ck.partition_steps);
  w.vec(ck.partition_wasted);
  w.vec(ck.final_attempt);
  w.vec(ck.failed_partitions);
  w.vec(ck.degraded_partitions);
  w.vec(ck.gpu_lost);
  w.vec(ck.predictions);
  w.vec(ck.context_counts);
  write_envelope(path, kParallelMagic, w.bytes());
}

bool load_checkpoint(const std::filesystem::path& path, ParallelCheckpoint& ck) {
  std::string payload;
  if (!read_envelope(path, kParallelMagic, payload)) return false;
  Reader r(payload.data(), payload.size(), path.string());
  ck.fingerprint = r.pod<std::uint64_t>();
  ck.next_partition = r.pod<std::uint64_t>();
  ck.num_partitions = r.pod<std::uint64_t>();
  ck.ring_capacity = r.pod<std::uint64_t>();
  ck.warmup_instructions = r.pod<std::uint64_t>();
  ck.corrected_instructions = r.pod<std::uint64_t>();
  ck.retries = r.pod<std::uint64_t>();
  ck.backoff_us = r.pod<double>();
  ck.occupancy = r.pod<RunningStats::State>();
  ck.prev_clock = r.pod<std::uint64_t>();
  ck.prev_oldest = r.pod<std::uint64_t>();
  ck.prev_ring = r.vec<std::uint64_t>();
  ck.partition_cycles = r.vec<std::uint64_t>();
  ck.partition_steps = r.vec<std::uint64_t>();
  ck.partition_wasted = r.vec<std::uint64_t>();
  ck.final_attempt = r.vec<std::uint32_t>();
  ck.failed_partitions = r.vec<std::uint64_t>();
  ck.degraded_partitions = r.vec<std::uint64_t>();
  ck.gpu_lost = r.vec<std::uint8_t>();
  ck.predictions = r.vec<std::uint32_t>();
  ck.context_counts = r.vec<std::uint16_t>();
  r.finish();
  const std::uint64_t p = ck.num_partitions;
  check(ck.next_partition <= p && ck.partition_cycles.size() == p &&
            ck.partition_steps.size() == p && ck.partition_wasted.size() == p &&
            ck.final_attempt.size() == p &&
            (ck.prev_ring.empty() || ck.prev_ring.size() == ck.ring_capacity),
        "checkpoint internally inconsistent: " + path.string());
  return true;
}

void save_checkpoint(const std::filesystem::path& path,
                     const SuiteCheckpoint& ck) {
  Writer w;
  w.pod(ck.fingerprint);
  w.pod(static_cast<std::uint64_t>(ck.completed.size()));
  for (const auto& j : ck.completed) {
    w.str(j.name);
    w.pod(j.device);
    w.pod(j.cpi);
    w.pod(j.sim_time_us);
    w.pod(j.instructions);
  }
  write_envelope(path, kSuiteMagic, w.bytes());
}

bool load_checkpoint(const std::filesystem::path& path, SuiteCheckpoint& ck) {
  std::string payload;
  if (!read_envelope(path, kSuiteMagic, payload)) return false;
  Reader r(payload.data(), payload.size(), path.string());
  ck.fingerprint = r.pod<std::uint64_t>();
  const auto count = r.pod<std::uint64_t>();
  ck.completed.clear();
  ck.completed.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SuiteCheckpointJob j;
    j.name = r.str();
    j.device = r.pod<std::uint64_t>();
    j.cpi = r.pod<double>();
    j.sim_time_us = r.pod<double>();
    j.instructions = r.pod<std::uint64_t>();
    ck.completed.push_back(std::move(j));
  }
  r.finish();
  return true;
}

}  // namespace mlsim::core
