#include "core/checkpoint.h"

#include "common/check.h"
#include "common/wire.h"

namespace mlsim::core {

namespace {

// File format (unchanged since v1): the shared wire envelope
// (magic | version | checksum | size | payload — src/common/wire.h) around a
// Writer-serialized payload. The same envelope frames the distributed
// cluster's RPC messages, so disk and socket corruption are caught by one
// code path.
constexpr std::uint32_t kParallelMagic = 0x4d4c434b;  // "MLCK"
constexpr std::uint32_t kSuiteMagic = 0x4d4c4353;     // "MLCS"

using wire::Reader;
using wire::Writer;

}  // namespace

void save_checkpoint(const std::filesystem::path& path,
                     const ParallelCheckpoint& ck) {
  Writer w;
  w.pod(ck.fingerprint);
  w.pod(ck.next_partition);
  w.pod(ck.num_partitions);
  w.pod(ck.ring_capacity);
  w.pod(ck.warmup_instructions);
  w.pod(ck.corrected_instructions);
  w.pod(ck.retries);
  w.pod(ck.backoff_us);
  w.pod(ck.occupancy);
  w.pod(ck.prev_clock);
  w.pod(ck.prev_oldest);
  w.vec(ck.prev_ring);
  w.vec(ck.partition_cycles);
  w.vec(ck.partition_steps);
  w.vec(ck.partition_wasted);
  w.vec(ck.final_attempt);
  w.vec(ck.failed_partitions);
  w.vec(ck.degraded_partitions);
  w.vec(ck.gpu_lost);
  w.vec(ck.predictions);
  w.vec(ck.context_counts);
  wire::write_envelope_file(path, kParallelMagic, w.bytes());
}

bool load_checkpoint(const std::filesystem::path& path, ParallelCheckpoint& ck) {
  std::string payload;
  if (!wire::read_envelope_file(path, kParallelMagic, payload)) return false;
  Reader r(payload.data(), payload.size(), path.string());
  ck.fingerprint = r.pod<std::uint64_t>();
  ck.next_partition = r.pod<std::uint64_t>();
  ck.num_partitions = r.pod<std::uint64_t>();
  ck.ring_capacity = r.pod<std::uint64_t>();
  ck.warmup_instructions = r.pod<std::uint64_t>();
  ck.corrected_instructions = r.pod<std::uint64_t>();
  ck.retries = r.pod<std::uint64_t>();
  ck.backoff_us = r.pod<double>();
  ck.occupancy = r.pod<RunningStats::State>();
  ck.prev_clock = r.pod<std::uint64_t>();
  ck.prev_oldest = r.pod<std::uint64_t>();
  ck.prev_ring = r.vec<std::uint64_t>();
  ck.partition_cycles = r.vec<std::uint64_t>();
  ck.partition_steps = r.vec<std::uint64_t>();
  ck.partition_wasted = r.vec<std::uint64_t>();
  ck.final_attempt = r.vec<std::uint32_t>();
  ck.failed_partitions = r.vec<std::uint64_t>();
  ck.degraded_partitions = r.vec<std::uint64_t>();
  ck.gpu_lost = r.vec<std::uint8_t>();
  ck.predictions = r.vec<std::uint32_t>();
  ck.context_counts = r.vec<std::uint16_t>();
  r.finish();
  const std::uint64_t p = ck.num_partitions;
  check(ck.next_partition <= p && ck.partition_cycles.size() == p &&
            ck.partition_steps.size() == p && ck.partition_wasted.size() == p &&
            ck.final_attempt.size() == p &&
            (ck.prev_ring.empty() || ck.prev_ring.size() == ck.ring_capacity),
        "checkpoint internally inconsistent: " + path.string());
  return true;
}

void save_checkpoint(const std::filesystem::path& path,
                     const SuiteCheckpoint& ck) {
  Writer w;
  w.pod(ck.fingerprint);
  w.pod(static_cast<std::uint64_t>(ck.completed.size()));
  for (const auto& j : ck.completed) {
    w.str(j.name);
    w.pod(j.device);
    w.pod(j.cpi);
    w.pod(j.sim_time_us);
    w.pod(j.instructions);
  }
  wire::write_envelope_file(path, kSuiteMagic, w.bytes());
}

bool load_checkpoint(const std::filesystem::path& path, SuiteCheckpoint& ck) {
  std::string payload;
  if (!wire::read_envelope_file(path, kSuiteMagic, payload)) return false;
  Reader r(payload.data(), payload.size(), path.string());
  ck.fingerprint = r.pod<std::uint64_t>();
  const auto count = r.pod<std::uint64_t>();
  ck.completed.clear();
  ck.completed.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SuiteCheckpointJob j;
    j.name = r.str();
    j.device = r.pod<std::uint64_t>();
    j.cpi = r.pod<double>();
    j.sim_time_us = r.pod<double>();
    j.instructions = r.pod<std::uint64_t>();
    ck.completed.push_back(std::move(j));
  }
  r.finish();
  return true;
}

}  // namespace mlsim::core
