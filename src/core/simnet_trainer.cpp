#include "core/simnet_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "obs/obs.h"
#include "core/sequential_sim.h"
#include "tensor/optim.h"
#include "tensor/quant.h"

namespace mlsim::core {

WindowDataset::WindowDataset(const trace::EncodedTrace& labeled,
                             std::size_t window_rows)
    : trace_(labeled), rows_(window_rows) {
  check(labeled.labeled(), "WindowDataset needs ground-truth targets");
  const std::size_t n = labeled.size();
  retire_.resize(n);
  clock_.resize(n);
  std::uint64_t clock = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = labeled.targets(i);
    clock_[i] = clock;  // Clock at prediction time (before advancing)
    retire_[i] = clock + t[0] + t[1] + t[2];
    clock += t[0];
  }
}

void WindowDataset::window(std::size_t i, std::vector<std::int32_t>& out) const {
  const LazyWindow lw(trace_, i, /*oldest=*/0, retire_.data(), retire_.size(),
                      clock_[i], rows_);
  lw.materialize(out);
}

std::vector<float> compute_feature_scales(
    const std::vector<const trace::EncodedTrace*>& traces) {
  std::vector<float> max_val(trace::kNumFeatures, 1.0f);
  for (const auto* tr : traces) {
    for (std::size_t i = 0; i < tr->size(); ++i) {
      const auto f = tr->features(i);
      for (std::size_t c = 0; c < trace::kNumFeatures; ++c) {
        max_val[c] = std::max(max_val[c], static_cast<float>(f[c]));
      }
    }
  }
  // The latency-entry slot is dynamic (not present in raw traces): it spans
  // [0, kMaxLatencyEntry].
  max_val[kCtxLatFeature] =
      std::max(max_val[kCtxLatFeature], static_cast<float>(kMaxLatencyEntry));
  std::vector<float> scales(trace::kNumFeatures);
  for (std::size_t c = 0; c < trace::kNumFeatures; ++c) {
    scales[c] = 1.0f / max_val[c];
  }
  return scales;
}

namespace {

void fill_sample(const WindowDataset& ds, std::size_t idx,
                 const std::vector<float>& scales,
                 std::vector<std::int32_t>& scratch, float* x, float* y) {
  ds.window(idx, scratch);
  const std::size_t W = ds.rows();
  const std::size_t F = trace::kNumFeatures;
  for (std::size_t l = 0; l < W; ++l) {
    const std::int32_t* row = scratch.data() + l * F;
    for (std::size_t c = 0; c < F; ++c) {
      x[c * W + l] = static_cast<float>(row[c]) * scales[c];
    }
  }
  const auto t = ds.targets(idx);
  for (std::size_t k = 0; k < trace::kNumTargets; ++k) {
    y[k] = std::log1p(static_cast<float>(t[k]));
  }
}

}  // namespace

SimNetBundle train_simnet(const std::vector<const trace::EncodedTrace*>& traces,
                          const SimNetTrainConfig& cfg, SimNetTrainReport* report) {
  check(!traces.empty(), "training requires at least one labeled trace");

  std::vector<float> scales = compute_feature_scales(traces);
  tensor::SimNetModel model(cfg.model, cfg.seed);
  tensor::Adam optim(model.params(),
                     {.lr = cfg.lr, .grad_clip = cfg.grad_clip});

  // Datasets + train/holdout split (tail of each trace is held out).
  std::vector<WindowDataset> datasets;
  datasets.reserve(traces.size());
  for (const auto* tr : traces) datasets.emplace_back(*tr, cfg.model.window);

  struct Sample {
    std::uint32_t ds;
    std::uint32_t idx;
  };
  std::vector<Sample> train_set, holdout;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const std::size_t n = datasets[d].size();
    const auto split =
        static_cast<std::size_t>(static_cast<double>(n) * (1.0 - cfg.holdout_fraction));
    for (std::size_t i = 0; i < n; ++i) {
      Sample s{static_cast<std::uint32_t>(d), static_cast<std::uint32_t>(i)};
      (i < split ? train_set : holdout).push_back(s);
    }
  }
  check(!train_set.empty(), "empty training set");

  Rng rng(cfg.seed ^ 0xdecafull);
  const std::size_t B = cfg.batch_size;
  const std::size_t W = cfg.model.window;
  const std::size_t F = trace::kNumFeatures;
  std::vector<std::int32_t> scratch;
  tensor::Tensor x({B, F, W}), y({B, trace::kNumTargets}), grad;

  float last_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    MLSIM_TRACE_SPAN("train/epoch");
    MLSIM_HIST_TIMER(obs::names::kTrainEpochNs);
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = train_set.size(); i > 1; --i) {
      std::swap(train_set[i - 1], train_set[rng.next_below(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t off = 0; off + B <= train_set.size(); off += B) {
      MLSIM_HIST_TIMER(obs::names::kTrainStepNs);
      for (std::size_t b = 0; b < B; ++b) {
        const Sample s = train_set[off + b];
        fill_sample(datasets[s.ds], s.idx, scales, scratch, x.data() + b * F * W,
                    y.data() + b * trace::kNumTargets);
      }
      model.zero_grad();
      const tensor::Tensor pred = model.forward(x);
      epoch_loss += static_cast<double>(tensor::mse_loss(pred, y, grad));
      model.backward(grad);
      optim.step();
      ++batches;
      MLSIM_COUNTER_ADD(obs::names::kTrainSteps, 1);
    }
    last_loss = batches ? static_cast<float>(epoch_loss / static_cast<double>(batches))
                        : 0.0f;
    MLSIM_COUNTER_ADD(obs::names::kTrainEpochs, 1);
    MLSIM_GAUGE_SET(obs::names::kTrainLastLoss, static_cast<double>(last_loss));
  }

  SimNetBundle bundle{std::move(model), std::move(scales)};

  if (report != nullptr) {
    report->final_loss = last_loss;
    report->samples = train_set.size();
    // Holdout per-instruction error (smoothed MAPE on decoded cycles).
    double fetch_err = 0.0, exec_err = 0.0;
    std::size_t cnt = 0;
    tensor::Tensor xe({1, F, W});
    for (std::size_t k = 0; k < holdout.size(); k += std::max<std::size_t>(1, holdout.size() / 2000)) {
      const Sample s = holdout[k];
      fill_sample(datasets[s.ds], s.idx, bundle.feature_scale, scratch, xe.data(),
                  y.data());
      const tensor::Tensor pred = bundle.model.forward(xe);
      const auto t = datasets[s.ds].targets(s.idx);
      const double pf = CnnPredictor::decode(pred.at(0));
      const double pe = CnnPredictor::decode(pred.at(1));
      fetch_err += std::abs(pf - static_cast<double>(t[0])) /
                   (static_cast<double>(t[0]) + 1.0) * 100.0;
      exec_err += std::abs(pe - static_cast<double>(t[1])) /
                  (static_cast<double>(t[1]) + 1.0) * 100.0;
      ++cnt;
    }
    if (cnt > 0) {
      report->holdout_mape_fetch = fetch_err / static_cast<double>(cnt);
      report->holdout_mape_exec = exec_err / static_cast<double>(cnt);
    }
  }
  return bundle;
}

float evaluate_loss(SimNetBundle& bundle, const trace::EncodedTrace& labeled,
                    std::size_t max_samples) {
  WindowDataset ds(labeled, bundle.model.config().window);
  const std::size_t n = std::min(max_samples, ds.size());
  check(n > 0, "evaluate_loss requires samples");
  const std::size_t W = bundle.model.config().window;
  const std::size_t F = trace::kNumFeatures;
  std::vector<std::int32_t> scratch;
  tensor::Tensor x({1, F, W}), y({1, trace::kNumTargets}), grad;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fill_sample(ds, i, bundle.feature_scale, scratch, x.data(), y.data());
    acc += static_cast<double>(tensor::mse_loss(bundle.model.forward(x), y, grad));
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

void finetune_2to4(SimNetBundle& bundle,
                   const std::vector<const trace::EncodedTrace*>& traces,
                   std::size_t epochs, float lr, std::uint64_t seed) {
  check(!traces.empty(), "fine-tuning requires at least one labeled trace");
  tensor::SimNetModel& model = bundle.model;
  tensor::prune_model_2to4(model);

  // Fix the sparsity mask now (NVIDIA's recipe): training proceeds with the
  // surviving weights only; re-deriving the mask every step would thrash.
  std::vector<std::vector<float>*> weight_blocks{
      &model.conv1().weight(), &model.conv2().weight(), &model.conv3().weight(),
      &model.fc1().weight(), &model.fc2().weight()};
  std::vector<std::vector<std::uint8_t>> masks;
  masks.reserve(weight_blocks.size());
  for (const auto* w : weight_blocks) {
    std::vector<std::uint8_t> m(w->size());
    for (std::size_t i = 0; i < w->size(); ++i) m[i] = (*w)[i] != 0.0f;
    masks.push_back(std::move(m));
  }
  const auto apply_masks = [&] {
    for (std::size_t b = 0; b < weight_blocks.size(); ++b) {
      auto& w = *weight_blocks[b];
      for (std::size_t i = 0; i < w.size(); ++i) {
        if (!masks[b][i]) w[i] = 0.0f;
      }
    }
  };

  std::vector<WindowDataset> datasets;
  for (const auto* tr : traces) datasets.emplace_back(*tr, model.config().window);

  tensor::Adam optim(model.params(), {.lr = lr, .grad_clip = 5.0f});
  Rng rng(seed);
  const std::size_t B = 32;
  const std::size_t W = model.config().window;
  const std::size_t F = trace::kNumFeatures;
  std::vector<std::int32_t> scratch;
  tensor::Tensor x({B, F, W}), y({B, trace::kNumTargets}), grad;

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& ds : datasets) {
      for (std::size_t off = 0; off + B <= ds.size(); off += B) {
        for (std::size_t b = 0; b < B; ++b) {
          const std::size_t idx = rng.next_below(ds.size());
          fill_sample(ds, idx, bundle.feature_scale, scratch,
                      x.data() + b * F * W, y.data() + b * trace::kNumTargets);
        }
        model.zero_grad();
        const tensor::Tensor pred = model.forward(x);
        tensor::mse_loss(pred, y, grad);
        model.backward(grad);
        optim.step();
        // Projection onto the fixed mask keeps the 2:4 structure.
        apply_masks();
      }
    }
  }
}

SimNetEvalReport evaluate_simnet(CnnPredictor& predictor,
                                 const trace::EncodedTrace& labeled,
                                 std::size_t max_instructions) {
  check(labeled.labeled(), "evaluation requires ground truth");
  const std::size_t n = max_instructions == 0
                            ? labeled.size()
                            : std::min(max_instructions, labeled.size());

  SequentialSimOptions opts;
  opts.context_length = predictor.bundle().model.config().window - 1;
  opts.record_predictions = true;
  SequentialSimulator sim(predictor, opts);
  const SimOutput out = sim.run(labeled, 0, n);

  SimNetEvalReport rep;
  std::uint64_t truth_cycles = 0;
  double exec_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = labeled.targets(i);
    truth_cycles += t[0];
    exec_err += std::abs(static_cast<double>(out.predictions[i].exec) -
                         static_cast<double>(t[1])) /
                (static_cast<double>(t[1]) + 1.0) * 100.0;
  }
  std::uint64_t pred_cycles = 0;
  for (const auto& p : out.predictions) pred_cycles += p.fetch;

  rep.truth_cpi = static_cast<double>(truth_cycles) / static_cast<double>(n);
  rep.predicted_cpi = static_cast<double>(pred_cycles) / static_cast<double>(n);
  rep.cpi_error_percent =
      std::abs(rep.truth_cpi - rep.predicted_cpi) / rep.truth_cpi * 100.0;
  rep.mape_exec = exec_err / static_cast<double>(n);
  return rep;
}

}  // namespace mlsim::core
