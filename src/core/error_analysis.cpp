#include "core/error_analysis.h"

#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace mlsim::core {

namespace {
std::int64_t total_latency(const LatencyPrediction& p) {
  return static_cast<std::int64_t>(p.fetch) + p.exec + p.store;
}
}  // namespace

ParallelDiffReport diff_parallel_runs(const ParallelSimResult& sequential,
                                      const ParallelSimResult& parallel) {
  check(sequential.predictions.size() == parallel.predictions.size(),
        "runs must cover the same trace");
  check(!parallel.boundaries.empty(), "parallel run must report boundaries");
  check(sequential.context_counts.size() == sequential.predictions.size() &&
            parallel.context_counts.size() == parallel.predictions.size(),
        "both runs must record context counts");

  ParallelDiffReport out;
  const std::size_t P = parallel.boundaries.size() - 1;
  out.partitions.reserve(P);
  for (std::size_t p = 0; p < P; ++p) {
    PartitionDiff d;
    d.begin = parallel.boundaries[p];
    d.length = parallel.boundaries[p + 1] - d.begin;
    d.first_context_match = d.length;
    for (std::size_t j = 0; j < d.length; ++j) {
      const std::size_t i = d.begin + j;
      const bool ctx_diff =
          sequential.context_counts[i] != parallel.context_counts[i];
      d.context_diff_count += ctx_diff;
      if (!ctx_diff && d.first_context_match == d.length) {
        d.first_context_match = j;
      }
      const std::int64_t delta = total_latency(sequential.predictions[i]) -
                                 total_latency(parallel.predictions[i]);
      if (delta != 0) {
        ++d.prediction_diff_count;
        d.abs_prediction_diff += static_cast<std::uint64_t>(std::llabs(delta));
        d.error_extent = j + 1;
      }
    }
    out.total_context_diffs += d.context_diff_count;
    out.total_prediction_diffs += d.prediction_diff_count;
    out.total_abs_prediction_diff += d.abs_prediction_diff;
    out.partitions.push_back(d);
  }
  return out;
}

DiffStudy run_diff_study(LatencyPredictor& predictor,
                         const trace::EncodedTrace& tr,
                         const ParallelSimOptions& parallel_options) {
  ParallelSimOptions seq_o = parallel_options;
  seq_o.num_subtraces = 1;
  seq_o.num_gpus = 1;
  seq_o.warmup = 0;
  seq_o.post_error_correction = false;
  seq_o.record_predictions = true;
  seq_o.record_context_counts = true;
  const ParallelSimResult seq = ParallelSimulator(predictor, seq_o).run(tr);

  ParallelSimOptions par_o = parallel_options;
  par_o.record_predictions = true;
  par_o.record_context_counts = true;
  const ParallelSimResult par = ParallelSimulator(predictor, par_o).run(tr);

  DiffStudy study;
  study.report = diff_parallel_runs(seq, par);
  study.sequential_cpi = seq.cpi();
  study.parallel_cpi = par.cpi();
  study.cpi_error_percent = std::abs(
      ParallelSimulator::cpi_error_percent(study.sequential_cpi, study.parallel_cpi));
  return study;
}

}  // namespace mlsim::core
