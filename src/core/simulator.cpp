#include "core/simulator.h"

#include <sstream>

#include "common/artifacts.h"
#include "common/check.h"
#include "common/stats.h"
#include "core/metrics.h"

namespace mlsim::core {

namespace {
std::uint64_t machine_fingerprint(const uarch::MachineConfig& m) {
  // Structural hash over every field that can change traces/labels. The
  // sweep subsystem keys the trace artifact cache with this, so any field a
  // sweep axis can touch MUST be mixed in — an omission makes two distinct
  // configurations share one cached trace.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(m.core.fetch_width);
  mix(m.core.issue_width);
  mix(m.core.commit_width);
  mix(m.core.iq_entries);
  mix(m.core.rob_entries);
  mix(m.core.lq_entries);
  mix(m.core.sq_entries);
  mix(m.core.frontend_depth);
  const auto mix_cache = [&](const uarch::CacheConfig& c) {
    mix(c.size_bytes);
    mix(c.assoc);
    mix(c.line_bytes);
    mix(c.mshrs);
    mix(c.latency);
    mix(static_cast<std::uint64_t>(c.replacement) |
        (static_cast<std::uint64_t>(c.next_line_prefetch) << 8));
  };
  mix_cache(m.l1i);
  mix_cache(m.l1d);
  mix_cache(m.l2);
  mix(m.tlb.l1_entries);
  mix(m.tlb.l2_entries);
  mix(m.tlb.l2_assoc);
  mix(m.tlb.mshrs);
  mix(m.tlb.l2_latency);
  mix(m.tlb.walk_latency);
  mix(m.tlb.page_bytes);
  mix(static_cast<std::uint64_t>(m.bp.kind));
  mix(m.bp.choice_bits);
  mix(m.bp.direction_bits);
  mix(m.bp.history_bits);
  mix(m.bp.local_history_entries);
  mix(m.bp.btb_entries);
  mix(m.bp.mispredict_penalty);
  mix(m.memory_latency);
  return h;
}
}  // namespace

trace::EncodedTrace labeled_trace(const std::string& abbr, std::size_t n,
                                  const uarch::MachineConfig& machine,
                                  std::uint64_t seed, bool use_cache) {
  std::ostringstream name;
  name << "trace_" << abbr << '_' << n << '_' << std::hex
       << machine_fingerprint(machine) << '_' << seed << ".bin";
  if (use_cache && artifact_exists(name.str())) {
    return trace::EncodedTrace::load(artifact_path(name.str()));
  }
  const auto& profile = trace::find_workload(abbr);
  trace::EncodedTrace tr = uarch::make_encoded_trace(profile, n, machine, seed);
  if (use_cache) {
    // Atomic publish + checksum sidecar: a concurrent or killed writer can
    // never leave a half-written trace that a later run would load.
    artifact_commit(name.str(),
                    [&tr](const std::filesystem::path& p) { tr.save(p); });
  }
  return tr;
}

MLSimulator::MLSimulator(Options opts)
    : opts_(std::move(opts)), analytic_(opts_.machine) {}

void MLSimulator::use_cnn(SimNetBundle bundle) {
  opts_.context_length = bundle.model.config().window - 1;
  cnn_.emplace(std::move(bundle), opts_.engine);
}

LatencyPredictor& MLSimulator::predictor() {
  if (cnn_.has_value()) return *cnn_;
  return analytic_;
}

std::size_t MLSimulator::default_flops() const {
  if (opts_.assumed_flops_per_window != 0) return opts_.assumed_flops_per_window;
  return simnet3c2f_flops(opts_.context_length + 1);
}

SimOutput MLSimulator::simulate(const trace::EncodedTrace& trace) {
  device::Device dev(opts_.gpu);
  GpuSimOptions o;
  o.context_length = opts_.context_length;
  o.batch_n = opts_.batch_n;
  o.engine = opts_.engine;
  o.costs.gpu = opts_.gpu;
  GpuSimulator sim(predictor(), dev, o);
  return sim.run(trace);
}

SimOutput MLSimulator::simulate_sequential(const trace::EncodedTrace& trace) {
  SequentialSimOptions o;
  o.context_length = opts_.context_length;
  o.costs.gpu = opts_.gpu;
  SequentialSimulator sim(predictor(), o);
  return sim.run(trace);
}

ParallelSimOptions MLSimulator::parallel_options(std::size_t num_subtraces,
                                                 std::size_t num_gpus,
                                                 bool warmup,
                                                 bool correction) const {
  ParallelSimOptions o;
  o.num_subtraces = num_subtraces;
  o.num_gpus = num_gpus;
  o.context_length = opts_.context_length;
  o.warmup = warmup ? opts_.context_length : 0;
  o.post_error_correction = correction;
  o.batch_n = opts_.batch_n;
  o.engine = opts_.engine;
  o.costs.gpu = opts_.gpu;
  o.assumed_flops_per_window = default_flops();
  return o;
}

ParallelSimResult MLSimulator::simulate_parallel(const trace::EncodedTrace& trace,
                                                 std::size_t num_subtraces,
                                                 std::size_t num_gpus, bool warmup,
                                                 bool correction) {
  return simulate_parallel(trace,
                           parallel_options(num_subtraces, num_gpus, warmup,
                                            correction));
}

ParallelSimResult MLSimulator::simulate_parallel(const trace::EncodedTrace& trace,
                                                 const ParallelSimOptions& opts) {
  ParallelSimOptions o = opts;
  if (o.fallback == nullptr) o.fallback = &analytic_;
  ParallelSimulator sim(predictor(), o);
  return sim.run(trace);
}

double MLSimulator::cpi_error_percent(const trace::EncodedTrace& labeled,
                                      double simulated_cpi) const {
  check(labeled.labeled(), "ground truth required for error computation");
  const double truth =
      static_cast<double>(total_cycles_from_targets(labeled)) /
      static_cast<double>(labeled.size());
  return signed_percent_error(truth, simulated_cpi);
}

}  // namespace mlsim::core
