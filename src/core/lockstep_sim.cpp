#include "core/lockstep_sim.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "core/cost_model.h"

namespace mlsim::core {

LockstepParallelSimulator::LockstepParallelSimulator(LatencyPredictor& predictor,
                                                     ParallelSimOptions opts)
    : predictor_(predictor), opts_(std::move(opts)) {
  check(opts_.num_subtraces > 0, "need at least one sub-trace");
  check(opts_.num_gpus > 0, "need at least one GPU");
}

ParallelSimResult LockstepParallelSimulator::run(const trace::EncodedTrace& tr) {
  ParallelSimResult res;
  const std::size_t n = tr.size();
  res.instructions = n;
  peak_batch_ = 0;
  if (n == 0) return res;

  const std::size_t P = std::min(opts_.num_subtraces, n);
  const std::size_t G = std::min(opts_.num_gpus, P);
  const std::size_t per_gpu = (P + G - 1) / G;
  const std::size_t rows = opts_.context_length + 1;
  const std::size_t cap = opts_.context_length;
  const std::size_t W = trace::kNumFeatures;

  res.boundaries = partition_boundaries(n, P);
  auto gpu_of = [&](std::size_t p) { return p / per_gpu; };

  // Per-partition state.
  std::vector<std::uint64_t> ring(P * cap, 0);
  std::vector<std::uint64_t> clock(P, 0), clock_at_body(P, 0);
  std::vector<std::size_t> cur(P), begin(P), end(P), h_begin(P);
  for (std::size_t p = 0; p < P; ++p) {
    begin[p] = res.boundaries[p];
    end[p] = res.boundaries[p + 1];
    h_begin[p] = begin[p] >= opts_.warmup ? begin[p] - opts_.warmup : 0;
    cur[p] = h_begin[p];
    res.warmup_instructions += begin[p] - h_begin[p];
  }

  std::vector<std::uint32_t> fetch_lat(n, 0);
  if (opts_.record_predictions) res.predictions.resize(n);
  if (opts_.record_context_counts) res.context_counts.resize(n, 0);

  const bool correcting = opts_.post_error_correction;
  std::vector<std::vector<std::uint16_t>> head_counts;
  if (correcting) head_counts.resize(P);
  std::vector<std::uint64_t> partition_cycles(P, 0);
  std::vector<std::size_t> partition_steps(P, 0);
  for (std::size_t p = 0; p < P; ++p) partition_steps[p] = end[p] - h_begin[p];

  RunningStats occupancy;

  // Batch scratch.
  std::vector<std::int32_t> windows(P * rows * W);
  std::vector<std::uint64_t> indices(P);
  std::vector<std::uint32_t> owner(P);
  std::vector<LatencyPrediction> preds(P);

  std::size_t active = P;
  while (active > 0) {
    // ---- Build one window per active partition (step i of every sub-trace).
    std::size_t k = 0;
    for (std::size_t p = 0; p < P; ++p) {
      if (cur[p] >= end[p]) continue;
      const std::size_t i = cur[p];
      if (i == begin[p]) clock_at_body[p] = clock[p];
      const LazyWindow lw(tr, i, h_begin[p], ring.data() + p * cap, cap, clock[p],
                          rows);
      const std::size_t head_limit =
          correcting ? std::min(opts_.correction_limit + 1, end[p] - begin[p]) : 0;
      const bool want_count =
          (opts_.record_context_counts && i >= begin[p]) ||
          (correcting && i >= begin[p] && i - begin[p] < head_limit) ||
          ((i & 63) == 0);
      if (want_count) {
        const std::size_t cnt = lw.context_count();
        if ((i & 63) == 0) {
          occupancy.add(static_cast<double>(cnt) /
                        static_cast<double>(opts_.context_length));
        }
        if (opts_.record_context_counts && i >= begin[p]) {
          res.context_counts[i] = static_cast<std::uint16_t>(cnt);
        }
        if (correcting && i >= begin[p] && i - begin[p] < head_limit) {
          head_counts[p].push_back(static_cast<std::uint16_t>(cnt));
        }
      }
      lw.materialize_to(windows.data() + k * rows * W);
      indices[k] = i;
      owner[k] = static_cast<std::uint32_t>(p);
      ++k;
    }
    peak_batch_ = std::max(peak_batch_, k);

    // ---- One batched inference for the whole step (Fig. 5).
    predictor_.predict_batch(windows.data(), k, rows, indices.data(), preds.data());

    // ---- Update + retire per partition.
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t p = owner[j];
      const std::size_t i = static_cast<std::size_t>(indices[j]);
      const LatencyPrediction pr = preds[j];
      ring[p * cap + i % cap] = clock[p] + pr.fetch + pr.exec + pr.store;
      clock[p] += pr.fetch;
      if (i >= begin[p]) {
        fetch_lat[i] = pr.fetch;
        if (opts_.record_predictions) res.predictions[i] = pr;
      }
      if (++cur[p] == end[p]) {
        partition_cycles[p] = clock[p] - clock_at_body[p];
        --active;
      }
    }
  }

  // ---- Post-error correction (sequential pass over partition heads) --------
  if (correcting) {
    for (std::size_t p = 1; p < P; ++p) {
      if (gpu_of(p) != gpu_of(p - 1)) continue;
      const std::size_t b = begin[p];
      const std::size_t head_limit =
          std::min(opts_.correction_limit + 1, end[p] - b);
      std::uint64_t cclock = clock[p - 1];
      std::uint64_t* prev_ring = ring.data() + (p - 1) * cap;
      std::size_t corrected = 0;
      for (std::size_t j = 0; j < head_limit && b + j < end[p]; ++j) {
        const std::size_t i = b + j;
        const LazyWindow lw(tr, i, h_begin[p - 1], prev_ring, cap, cclock, rows);
        const std::size_t cnt = lw.context_count();
        if (cnt == head_counts[p][j]) break;
        const LatencyPrediction pr = predictor_.predict_lazy(lw);
        partition_cycles[p] += pr.fetch;
        partition_cycles[p] -= fetch_lat[i];
        fetch_lat[i] = pr.fetch;
        if (opts_.record_predictions) res.predictions[i] = pr;
        if (opts_.record_context_counts) {
          res.context_counts[i] = static_cast<std::uint16_t>(cnt);
        }
        prev_ring[i % cap] = cclock + pr.fetch + pr.exec + pr.store;
        cclock += pr.fetch;
        ++corrected;
      }
      res.corrected_instructions += corrected;
      partition_steps[p - 1] += corrected;
    }
  }

  for (std::size_t p = 0; p < P; ++p) res.total_cycles += partition_cycles[p];

  std::size_t flops = predictor_.flops_per_window(rows);
  if (flops == 0) flops = opts_.assumed_flops_per_window;
  if (flops == 0) flops = simnet3c2f_flops(rows);
  const double occ = occupancy.count() ? occupancy.mean() : 0.3;
  res.sim_time_us = model_parallel_time_us(opts_, partition_steps, flops, occ);
  return res;
}

}  // namespace mlsim::core
