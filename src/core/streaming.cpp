#include "core/streaming.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"

namespace mlsim::core {

StreamingResult simulate_stream(LatencyPredictor& predictor,
                                trace::LabeledTraceStream& stream,
                                std::uint64_t total_instructions,
                                std::size_t context_length,
                                std::size_t chunk_size,
                                const CancelToken* cancel,
                                PredictSink* batch_sink) {
  check(context_length > 0, "context length must be positive");
  check(chunk_size > 0, "chunk size must be positive");
  StreamingResult res;
  if (total_instructions == 0) return res;

  const std::size_t rows = context_length + 1;
  const std::size_t cap = context_length;
  std::vector<std::uint64_t> ring(cap, 0);
  std::uint64_t clock = 0;

  trace::EncodedTrace buf(stream.benchmark());
  std::size_t local = 0;  // next buffer row to simulate
  std::vector<std::int32_t> sink_window;  // materialised window for the sink

  MLSIM_TRACE_SPAN("stream/run");
  while (res.instructions < total_instructions) {
    const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
        chunk_size, total_instructions - res.instructions));
    {
      MLSIM_TRACE_SPAN("stream/fill");
      MLSIM_HIST_TIMER(obs::names::kStreamFillNs);
      stream.fill(buf, want);
    }
    MLSIM_GAUGE_SET(obs::names::kStreamRowsResident,
                    static_cast<double>(buf.size()));

    {
      MLSIM_TRACE_SPAN("stream/predict");
      MLSIM_HIST_TIMER(obs::names::kStreamPredictNs);
      for (; local < buf.size(); ++local) {
        if (cancel != nullptr) cancel->check();
        const LazyWindow lw(buf, local, /*oldest=*/0, ring.data(), cap, clock,
                            rows);
        LatencyPrediction p;
        if (batch_sink != nullptr) {
          lw.materialize(sink_window);
          p = batch_sink->predict_via(sink_window.data(), rows,
                                      res.instructions);
        } else {
          p = predictor.predict_lazy(lw);
        }
        ring[local % cap] = clock + p.fetch + p.exec + p.store;
        clock += p.fetch;
        res.predicted_cycles += p.fetch;
        res.truth_cycles += buf.targets(local)[0];
        ++res.instructions;
      }
    }
    MLSIM_COUNTER_ADD(obs::names::kStreamChunks, 1);

    // Compact: keep at least the context window; drop a multiple of the
    // ring capacity so (index % cap) stays aligned across the shift.
    if (buf.size() > context_length) {
      const std::size_t drop =
          (buf.size() - context_length) / cap * cap;
      if (drop > 0) {
        buf = buf.slice(drop, buf.size());
        local -= drop;
        MLSIM_GAUGE_SET(obs::names::kStreamRowsResident,
                        static_cast<double>(buf.size()));
      }
    }
  }
  MLSIM_COUNTER_ADD(obs::names::kStreamInstructions, res.instructions);
  return res;
}

}  // namespace mlsim::core
