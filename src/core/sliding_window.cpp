#include "core/sliding_window.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace mlsim::core {

namespace {
constexpr std::size_t kRowBytes = trace::kNumFeatures * sizeof(std::int32_t);
}

SlidingWindowQueue::SlidingWindowQueue(std::size_t context_length,
                                       std::size_t batch_n, device::Device& dev,
                                       device::StreamId copy_stream,
                                       bool account_costs)
    : ctx_len_(context_length),
      batch_n_(batch_n),
      dev_(dev),
      copy_stream_(copy_stream),
      account_costs_(account_costs),
      buf_((context_length + 1 + batch_n) * trace::kNumFeatures),
      retire_clock_(context_length + 1 + batch_n, 0),
      valid_(context_length + 1 + batch_n, 0) {
  check(context_length > 0, "context length must be positive");
  check(batch_n > 0, "batch size must be positive");
}

std::size_t SlidingWindowQueue::refill(const std::int32_t* rows, std::size_t count) {
  check(remaining_ == 0, "refill while staged instructions remain");
  check(count > 0, "refill needs at least one instruction");
  const std::size_t p0 = batch_n_;  // rightmost window start

  if (primed_) {
    // Compact: the next instruction's context candidates are the rows
    // [pos_, pos_+ctx). Move them — relative positions preserved — to the
    // tail [cap-ctx, cap). dst > src for every row, so copy back-to-front.
    const std::size_t dst0 = capacity_rows() - ctx_len_;
    std::size_t live = 0;
    for (std::size_t r = ctx_len_; r-- > 0;) {
      const std::size_t src = pos_ + r;
      const std::size_t dst = dst0 + r;
      if (src >= capacity_rows()) {
        valid_[dst] = 0;  // candidate beyond history: stays padding
        continue;
      }
      if (valid_[src] && retire_clock_[src] > clock_) ++live;
      std::memcpy(buf_.data() + dst * trace::kNumFeatures,
                  buf_.data() + src * trace::kNumFeatures, kRowBytes);
      retire_clock_[dst] = retire_clock_[src];
      valid_[dst] = valid_[src];
    }
    // Device cost: only live rows are actually moved by the compaction
    // kernel (the paper skips copying retired instructions).
    if (account_costs_) dev_.launch(copy_stream_, 2 * live * kRowBytes, 0, nullptr);
  }
  primed_ = true;

  // Stage the batch reversed: batch instruction j lands at p0 - j, so the
  // newest staged instruction sits at the lowest index (paper Fig. 3).
  const std::size_t m = std::min(count, batch_n_ + 1);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t slot = p0 - j;
    std::memcpy(buf_.data() + slot * trace::kNumFeatures,
                rows + j * trace::kNumFeatures, kRowBytes);
    retire_clock_[slot] = 0;
    valid_[slot] = 0;  // becomes a context candidate only once simulated
  }
  // Clear unused staging slots so stale rows never leak into windows.
  for (std::size_t slot = 0; slot + m <= p0; ++slot) valid_[slot] = 0;

  // One H2D transfer for the whole batch (the amortisation the design buys).
  if (account_costs_) dev_.copy_h2d(nullptr, nullptr, m * kRowBytes, copy_stream_);

  pos_ = p0;
  remaining_ = m;
  return m;
}

void SlidingWindowQueue::build_window(std::vector<std::int32_t>& out) {
  check(remaining_ > 0, "build_window with no staged instruction");
  check(!pending_, "build_window called twice without apply_prediction");
  pending_ = true;

  const std::size_t rows = ctx_len_ + 1;
  out.assign(rows * trace::kNumFeatures, 0);
  // Row 0: current instruction (its latency-entry slot is zero in storage —
  // the encoder reserves it).
  std::memcpy(out.data(), buf_.data() + pos_ * trace::kNumFeatures, kRowBytes);
  for (std::size_t r = 1; r < rows; ++r) {
    const std::size_t s = pos_ + r;
    if (s >= capacity_rows()) break;
    if (valid_[s] && retire_clock_[s] > clock_) {
      auto* dst = out.data() + r * trace::kNumFeatures;
      std::memcpy(dst, buf_.data() + s * trace::kNumFeatures, kRowBytes);
      dst[kCtxLatFeature] = remaining_latency(s);
    }
  }
}

std::int32_t SlidingWindowQueue::remaining_latency(std::size_t r) const {
  if (r >= capacity_rows() || !valid_[r] || retire_clock_[r] <= clock_) return 0;
  return static_cast<std::int32_t>(
      std::min<std::uint64_t>(retire_clock_[r] - clock_, kMaxLatencyEntry));
}

std::size_t SlidingWindowQueue::context_count() const {
  std::size_t n = 0;
  for (std::size_t r = 1; r <= ctx_len_; ++r) {
    const std::size_t s = pos_ + r;
    if (s >= capacity_rows()) break;
    n += valid_[s] && retire_clock_[s] > clock_;
  }
  return n;
}

void SlidingWindowQueue::apply_prediction(const LatencyPrediction& p) {
  check(pending_, "apply_prediction without matching build_window");
  pending_ = false;

  retire_clock_[pos_] = clock_ + p.fetch + p.exec + p.store;
  valid_[pos_] = 1;
  last_retire_ = std::max(last_retire_, retire_clock_[pos_]);
  clock_ += p.fetch;

  --remaining_;
  if (remaining_ > 0) --pos_;
}

void SlidingWindowQueue::reset() {
  std::fill(retire_clock_.begin(), retire_clock_.end(), 0);
  std::fill(valid_.begin(), valid_.end(), 0);
  pos_ = 0;
  remaining_ = 0;
  clock_ = 0;
  last_retire_ = 0;
  pending_ = false;
  primed_ = false;
}

std::uint64_t SlidingWindowQueue::total_cycles_with_drain() const {
  return std::max(clock_, last_retire_);
}

}  // namespace mlsim::core
