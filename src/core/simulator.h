// Top-level convenience API — the front door for examples and benches.
//
//   auto trace = mlsim::core::labeled_trace("xz", 100'000);
//   mlsim::core::MLSimulator sim;                  // analytic predictor
//   auto out = sim.simulate(trace);                // optimised single device
//   auto par = sim.simulate_parallel(trace, {...});
//
// Lower-level control (custom predictors, ablation toggles, device specs)
// remains available through the individual headers.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/analytic_predictor.h"
#include "core/cnn_predictor.h"
#include "core/gpu_sim.h"
#include "core/parallel_sim.h"
#include "core/sequential_sim.h"
#include "uarch/ground_truth.h"

namespace mlsim::core {

/// Generate (or load from the artifact cache) a labeled, encoded trace for
/// a Table I benchmark: functional simulation → annotation → OoO ground
/// truth → feature encoding.
trace::EncodedTrace labeled_trace(const std::string& abbr, std::size_t n,
                                  const uarch::MachineConfig& machine = {},
                                  std::uint64_t seed = 1, bool use_cache = true);

class MLSimulator {
 public:
  struct Options {
    uarch::MachineConfig machine;
    /// Must exceed the ROB (40 entries) for the predictor to see window
    /// back-pressure; kDefaultContextLength (111) is the paper scale.
    std::size_t context_length = 64;
    device::GpuSpec gpu = device::GpuSpec::a100();
    device::Engine engine = device::Engine::kTensorRTSparse;
    std::size_t batch_n = 10;
    /// FLOPs per window assumed by the throughput model when the active
    /// predictor is analytic (0 = paper 3C+2F estimate for the context).
    std::size_t assumed_flops_per_window = 0;
  };

  MLSimulator() : MLSimulator(Options{}) {}
  explicit MLSimulator(Options opts);

  /// Swap in a trained CNN predictor (takes ownership). The simulator's
  /// context length is adjusted to the model's window.
  void use_cnn(SimNetBundle bundle);

  LatencyPredictor& predictor();

  /// Optimised single-device simulation (all §IV optimisations on).
  SimOutput simulate(const trace::EncodedTrace& trace);

  /// Naive sequential simulation (the Fig. 1 baseline data path).
  SimOutput simulate_sequential(const trace::EncodedTrace& trace);

  /// Parallel simulation (§V). `warmup`/`correction` default to the paper's
  /// accuracy-recovery configuration.
  ParallelSimResult simulate_parallel(const trace::EncodedTrace& trace,
                                      std::size_t num_subtraces,
                                      std::size_t num_gpus = 1,
                                      bool warmup = true, bool correction = true);

  /// The ParallelSimOptions `simulate_parallel` would use — the starting
  /// point for runs with fault injection or checkpointing layered on.
  ParallelSimOptions parallel_options(std::size_t num_subtraces,
                                      std::size_t num_gpus = 1,
                                      bool warmup = true,
                                      bool correction = true) const;

  /// Parallel simulation with explicit options. A null `opts.fallback` is
  /// wired to the built-in analytic predictor so anomaly degradation always
  /// has somewhere to land.
  ParallelSimResult simulate_parallel(const trace::EncodedTrace& trace,
                                      const ParallelSimOptions& opts);

  /// CPI error (percent, signed) of a simulation against ground truth.
  double cpi_error_percent(const trace::EncodedTrace& labeled,
                           double simulated_cpi) const;

  const Options& options() const { return opts_; }

 private:
  std::size_t default_flops() const;

  Options opts_;
  AnalyticPredictor analytic_;
  std::optional<CnnPredictor> cnn_;
};

}  // namespace mlsim::core
