#include "core/gpu_sim.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"

namespace mlsim::core {

GpuSimulator::GpuSimulator(LatencyPredictor& predictor, device::Device& dev,
                           GpuSimOptions opts)
    : predictor_(predictor), dev_(dev), opts_(std::move(opts)) {}

SimOutput GpuSimulator::run(const trace::EncodedTrace& trace, std::size_t begin,
                            std::size_t end) {
  if (end == 0) end = trace.size();
  check(begin <= end && end <= trace.size(), "simulation range out of bounds");

  SimOutput out;
  out.instructions = end - begin;
  if (out.instructions == 0) return out;

  MLSIM_TRACE_SPAN("gpu_sim/run");

  const std::size_t rows = opts_.context_length + 1;
  const CostModel& cm = opts_.costs;
  std::size_t flops = predictor_.flops_per_window(rows);
  if (flops == 0) flops = simnet3c2f_flops(rows);  // analytic/oracle stand-ins

  // Two simulated streams: copies and compute.
  const device::StreamId sim_stream = 0;
  const device::StreamId copy_stream = dev_.create_stream();

  // The batched H2D + compaction costs apply only when the data path is the
  // device-resident sliding window; other ablation modes charge their own.
  const bool swiq_path = opts_.gpu_input_construction && opts_.sliding_window;
  SlidingWindowQueue queue(opts_.context_length, opts_.batch_n, dev_, copy_stream,
                           /*account_costs=*/swiq_path);
  std::vector<std::int32_t> window;

  if (opts_.record_predictions) out.predictions.reserve(out.instructions);
  if (opts_.record_context_counts) out.context_counts.reserve(out.instructions);

  StepProfile acc;
  double occupancy_sum = 0.0;
  const double t0 = dev_.synchronize();

  std::size_t next = begin;  // next trace row to stage
  std::size_t cur = begin;   // instruction currently being simulated
  while (cur < end) {
    if (opts_.cancel != nullptr) opts_.cancel->check();
    if (queue.needs_refill()) {
      MLSIM_TRACE_SPAN("gpu_sim/copy");
      MLSIM_HIST_TIMER(obs::names::kGpuSimBatchFillNs);
      MLSIM_COUNTER_ADD(obs::names::kGpuSimBatches, 1);
      if (swiq_path) {
        if (!opts_.pipelined) {
          // Serial flow: the copy starts only after compute is done.
          dev_.wait(copy_stream, dev_.record(sim_stream));
        }
        const double copy_start = dev_.record(copy_stream);
        next += queue.refill(
            trace.raw_features().data() + next * trace::kNumFeatures, end - next);
        const double copy_end = dev_.record(copy_stream);
        acc.h2d += copy_end - copy_start;
        // Compute consumes the batch only once it has arrived. When
        // pipelined, the copy was issued during the previous batch's
        // simulation, so this wait is usually free.
        if (obs::enabled()) {
          // Simulated time compute will spend stalled on the in-flight copy.
          const double compute_front = dev_.record(sim_stream);
          if (copy_end > compute_front) {
            MLSIM_COUNTER_ADD(
                obs::names::kGpuSimPipelineStallNs,
                static_cast<std::uint64_t>((copy_end - compute_front) * 1000.0));
          }
        }
        dev_.wait(sim_stream, copy_end);
      } else {
        next += queue.refill(
            trace.raw_features().data() + next * trace::kNumFeatures, end - next);
      }
    }

    const std::size_t ctx = queue.context_count();
    occupancy_sum += static_cast<double>(ctx) / static_cast<double>(rows - 1);
    if (opts_.record_context_counts) {
      out.context_counts.push_back(static_cast<std::uint16_t>(ctx));
    }

    // --- Input construction (+ per-mode data movement) -----------------------
    {
    MLSIM_TRACE_SPAN("gpu_sim/input_construction");
    double t = dev_.record(sim_stream);
    if (!opts_.gpu_input_construction) {
      // Baseline data path: host queue push + concat/pad + full-window H2D.
      acc.queue_push += cm.host_queue_push_us;
      acc.input_construct += cm.cpu_construct_us(rows);
      acc.h2d += cm.h2d_full_window_us(rows);
      dev_.advance(sim_stream, cm.host_queue_push_us + cm.cpu_construct_us(rows) +
                                   cm.h2d_full_window_us(rows));
    } else if (!opts_.sliding_window) {
      // GIC only: just the new rows cross the link (staged in batches of N,
      // independent of the sliding window); a gather kernel assembles the
      // window from device-resident context rows.
      acc.h2d += cm.h2d_batched_row_us(opts_.batch_n);
      acc.input_construct += cm.gpu_construct_us(rows);
      dev_.advance(sim_stream, cm.h2d_batched_row_us(opts_.batch_n) +
                                   cm.gpu_construct_us(rows));
    } else if (!opts_.custom_conv) {
      acc.input_construct += cm.swiq_construct_us(opts_.batch_n);
      dev_.advance(sim_stream, cm.swiq_construct_us(opts_.batch_n));
    } else {
      acc.input_construct += cm.custom_conv_construct_us(opts_.batch_n);
      dev_.advance(sim_stream, cm.custom_conv_construct_us(opts_.batch_n));
    }
    (void)t;

    // --- Transpose (eliminated by the custom convolution) --------------------
    if (!opts_.custom_conv) {
      acc.transpose += cm.transpose_us(rows);
      dev_.advance(sim_stream, cm.transpose_us(rows));
    }
    queue.build_window(window);
    }

    // --- Inference ------------------------------------------------------------
    LatencyPrediction p;
    {
    MLSIM_TRACE_SPAN("gpu_sim/inference");
    const double valid_fraction =
        (static_cast<double>(ctx) + 1.0) / static_cast<double>(rows);
    const double inf_us = cm.inference_us(opts_.engine, flops, 1,
                                          opts_.custom_conv, valid_fraction);
    acc.inference += inf_us;
    dev_.advance(sim_stream, inf_us);

    // Functional prediction — real computation, identical across all cost
    // toggles (the toggles change only where/so-how-fast steps run).
    p = opts_.batch_sink != nullptr
            ? opts_.batch_sink->predict_via(window.data(), rows, cur)
            : predictor_.predict(WindowView{window.data(), rows}, cur);
    }
    queue.apply_prediction(p);
    if (opts_.record_predictions) out.predictions.push_back(p);

    // --- Update + retire --------------------------------------------------------
    const double upd = opts_.gpu_input_construction ? cm.gpu_update_retire_us
                                                    : cm.host_update_retire_us;
    acc.update_retire += upd;
    dev_.advance(sim_stream, upd);

    ++cur;
  }

  out.cycles = queue.total_cycles_with_drain();
  out.sim_time_us = dev_.synchronize() - t0;
  const double n = static_cast<double>(out.instructions);
  out.profile = {acc.queue_push / n, acc.input_construct / n, acc.h2d / n,
                 acc.transpose / n,  acc.inference / n,       acc.update_retire / n};
  out.avg_context_occupancy = occupancy_sum / n;
  if (obs::enabled()) {
    const auto to_ns = [](double us) {
      return static_cast<std::uint64_t>(us * 1000.0);
    };
    MLSIM_COUNTER_ADD(obs::names::kGpuSimInstructions, out.instructions);
    MLSIM_COUNTER_ADD(obs::names::kGpuSimInputConstructNs,
                      to_ns(acc.queue_push + acc.input_construct + acc.transpose));
    MLSIM_COUNTER_ADD(obs::names::kGpuSimInferenceNs, to_ns(acc.inference));
    MLSIM_COUNTER_ADD(obs::names::kGpuSimCopyNs, to_ns(acc.h2d));
    MLSIM_GAUGE_SET(obs::names::kGpuSimContextOccupancy,
                    out.avg_context_occupancy);
  }
  return out;
}

}  // namespace mlsim::core
