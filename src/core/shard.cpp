#include "core/shard.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace mlsim::core {

std::uint64_t run_fingerprint(const trace::EncodedTrace& tr,
                              const ParallelSimOptions& o, std::size_t parts) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  auto mixd = [&](double d) { mix(std::bit_cast<std::uint64_t>(d)); };
  mix(tr.size());
  for (const char c : tr.benchmark()) mix(static_cast<unsigned char>(c));
  // Hash every feature and label, not a sample. The fingerprint keys the
  // shard-result cache and the run journal: two traces over the same
  // benchmark that differ only in mid-trace hit-level features (exactly what
  // a sweep axis over cache geometry produces — first and last instructions
  // typically coincide) must not collide, or a cached result from one config
  // is silently served for another. Results depend on the labels too
  // (warmup + post-error correction read ground truth), so they are mixed in
  // as well. Cost is one pass over data the caller is about to encode or
  // simulate anyway.
  for (const std::int32_t v : tr.raw_features()) {
    mix(static_cast<std::uint32_t>(v));
  }
  for (const std::uint32_t v : tr.raw_targets()) mix(v);
  mix(parts);
  mix(o.num_gpus);
  mix(o.context_length);
  mix(o.warmup);
  mix(o.post_error_correction ? 1 : 0);
  mix(o.correction_limit);
  mix(o.record_predictions ? 1 : 0);
  mix(o.record_context_counts ? 1 : 0);
  mix(o.anomaly_latency_limit);
  mix(o.max_retries_per_partition);
  mixd(o.retry_backoff_us);
  if (o.faults != nullptr && o.faults->enabled()) {
    const device::FaultOptions& f = o.faults->options();
    mix(f.seed);
    mixd(f.device_kill_rate);
    mixd(f.straggler_rate);
    mixd(f.straggler_slowdown);
    mixd(f.output_corrupt_rate);
  }
  return h;
}

ShardPlan ShardPlan::make(std::size_t n, const ParallelSimOptions& opts) {
  ShardPlan plan;
  plan.instructions = n;
  plan.parts = std::min(opts.num_subtraces, n);
  plan.gpus = std::min(opts.num_gpus, plan.parts);
  plan.per_gpu = (plan.parts + plan.gpus - 1) / plan.gpus;
  plan.num_shards = (plan.parts + plan.per_gpu - 1) / plan.per_gpu;
  plan.boundaries = partition_boundaries(n, plan.parts);
  return plan;
}

ShardEngine::ShardEngine(LatencyPredictor& predictor,
                         const trace::EncodedTrace& trace,
                         const ParallelSimOptions& opts, const ShardPlan& plan)
    : predictor_(predictor), trace_(trace), opts_(opts), plan_(plan) {
  faults_ = (opts_.faults != nullptr && opts_.faults->enabled()) ? opts_.faults
                                                                 : nullptr;
  const std::size_t P = plan_.parts;
  partition_cycles.assign(P, 0);
  partition_steps.assign(P, 0);
  partition_wasted.assign(P, 0);
  final_attempt.assign(P, 0);
  degraded.assign(P, 0);
  failed.assign(P, 0);
  gpu_lost.assign(plan_.gpus, 0);
  ring_.assign(opts_.context_length, 0);
  fetch_lat_.assign(plan_.instructions, 0);
  if (opts_.post_error_correction) head_counts_.resize(P);
  if (opts_.record_predictions) predictions.resize(plan_.instructions);
  if (opts_.record_context_counts) context_counts.assign(plan_.instructions, 0);
}

// Charge one exponential-backoff step and consume one unit of the retry
// budget; throws CheckError once the partition is out of budget.
void ShardEngine::charge_retry(std::size_t part, std::size_t& attempt,
                               const char* why) {
  check(attempt < opts_.max_retries_per_partition,
        "partition " + std::to_string(part) + " retry budget (" +
            std::to_string(opts_.max_retries_per_partition) +
            ") exhausted; last failure: " + why);
  backoff_us +=
      opts_.retry_backoff_us * std::ldexp(1.0, static_cast<int>(attempt));
  ++retries;
  ++attempt;
  MLSIM_COUNTER_ADD(obs::names::kParSimRetries, 1);
}

void ShardEngine::run_partition(std::size_t p) {
  MLSIM_TRACE_SPAN("parallel_sim/partition");
  MLSIM_HIST_TIMER(obs::names::kParSimPartitionNs);
  const std::size_t rows = opts_.context_length + 1;
  const std::size_t cap = opts_.context_length;  // retire-ring capacity
  const std::uint32_t limit = opts_.anomaly_latency_limit;
  const bool correcting = opts_.post_error_correction;
  const std::size_t b = plan_.boundaries[p], e = plan_.boundaries[p + 1];
  const std::size_t h_begin = b >= opts_.warmup ? b - opts_.warmup : 0;
  const std::size_t head_limit =
      correcting ? std::min(opts_.correction_limit + 1, e - b) : 0;

  std::uint64_t clock = 0;
  std::size_t attempt = 0;

  for (;;) {  // attempt loop: body + re-warmup until an attempt survives
    // Kill decisions are pure in (partition, attempt), so a doomed attempt
    // is known up front: its results would be discarded anyway, so only
    // the modeled cost of the partial body is charged.
    if (faults_ != nullptr) {
      if (const auto kp = faults_->kill_point(p, attempt)) {
        const std::size_t body = e - h_begin;
        const std::size_t wasted = std::min(
            body, std::max<std::size_t>(
                      1, static_cast<std::size_t>(std::llround(
                             *kp * static_cast<double>(body)))));
        partition_wasted[p] += wasted;
        gpu_lost[plan_.gpu_of(p)] = 1;
        if (!failed[p]) {
          failed[p] = 1;
          failed_list.push_back(p);
        }
        MLSIM_COUNTER_ADD(obs::names::kParSimDeviceKills, 1);
        charge_retry(p, attempt, "device kill");
        continue;  // requeued: next attempt re-warms from h_begin
      }
    }

    warmup_instructions += b - h_begin;  // re-warmup is real extra work
    if (correcting) {
      head_counts_[p].clear();
      head_counts_[p].reserve(head_limit);
    }
    clock = 0;
    std::uint64_t clock_at_body = 0;
    LatencyPredictor& active = degraded[p] ? *opts_.fallback : predictor_;
    const bool corrupting = faults_ != nullptr && !degraded[p] &&
                            faults_->options().output_corrupt_rate > 0.0;
    bool anomaly = false;

    for (std::size_t i = h_begin; i < e; ++i) {
      if (opts_.cancel != nullptr) opts_.cancel->check();
      if (i == b) clock_at_body = clock;
      const LazyWindow lw(trace_, i, h_begin, ring_.data(), cap, clock, rows);

      const bool want_count =
          (opts_.record_context_counts && i >= b) ||
          (correcting && i >= b && i - b < head_limit) || ((i & 63) == 0);
      std::size_t cnt = 0;
      if (want_count) {
        cnt = lw.context_count();
        if ((i & 63) == 0) {
          occupancy.add(static_cast<double>(cnt) /
                        static_cast<double>(opts_.context_length));
        }
        if (opts_.record_context_counts && i >= b) {
          context_counts[i] = static_cast<std::uint16_t>(cnt);
        }
        if (correcting && i >= b && i - b < head_limit) {
          head_counts_[p].push_back(static_cast<std::uint16_t>(cnt));
        }
      }

      // Degraded partitions run on the fallback predictor and must bypass
      // the batching sink, which only fronts the primary.
      LatencyPrediction pr;
      if (opts_.batch_sink != nullptr && !degraded[p]) {
        lw.materialize(sink_window_);
        pr = opts_.batch_sink->predict_via(sink_window_.data(), rows, i);
      } else {
        pr = active.predict_lazy(lw);
      }
      if (corrupting && faults_->corrupts(p, attempt, i)) {
        const device::CorruptLatencies g =
            faults_->corrupt_latencies(p, attempt, i);
        pr = {g.fetch, g.exec, g.store};
      }
      if (limit != 0 &&
          (pr.fetch > limit || pr.exec > limit || pr.store > limit)) {
        // Anomalous inference output (a NaN/garbage latency would poison
        // the final Clock gather). Abort the attempt and requeue the
        // partition on the fallback predictor (degraded mode).
        MLSIM_COUNTER_ADD(obs::names::kParSimAnomalies, 1);
        check(!degraded[p], "anomalous prediction from the fallback "
                            "predictor on partition " + std::to_string(p));
        check(opts_.fallback != nullptr,
              "anomalous prediction on partition " + std::to_string(p) +
                  " and no fallback predictor configured");
        partition_wasted[p] += i - h_begin + 1;
        degraded[p] = 1;
        degraded_list.push_back(p);
        anomaly = true;
        break;
      }
      ring_[i % cap] = clock + pr.fetch + pr.exec + pr.store;
      clock += pr.fetch;
      if (i >= b) {
        fetch_lat_[i] = pr.fetch;
        if (opts_.record_predictions) predictions[i] = pr;
      }
    }
    if (anomaly) {
      charge_retry(p, attempt, "anomalous inference output");
      continue;
    }
    partition_cycles[p] = clock - clock_at_body;
    break;
  }
  final_attempt[p] = static_cast<std::uint32_t>(attempt);
  partition_steps[p] += e - h_begin;

  // ---- Post-error correction of this partition's head -----------------------
  if (correcting && p > 0 && plan_.gpu_of(p) == plan_.gpu_of(p - 1) &&
      !prev_ring.empty()) {
    MLSIM_TRACE_SPAN("parallel_sim/correction");
    // Corrections belong to this partition's predictions, so a degraded
    // partition is corrected by its fallback predictor too.
    LatencyPredictor& corr_pred = degraded[p] ? *opts_.fallback : predictor_;
    std::size_t corrected = 0;
    std::uint64_t cclock = prev_clock;
    for (std::size_t j = 0; j < head_limit && b + j < e; ++j) {
      const std::size_t i = b + j;
      const LazyWindow lw(trace_, i, prev_oldest, prev_ring.data(), cap, cclock,
                          rows);
      const std::size_t cnt = lw.context_count();
      if (cnt == head_counts_[p][j]) break;  // contexts converged
      LatencyPrediction pr;
      if (opts_.batch_sink != nullptr && !degraded[p]) {
        lw.materialize(sink_window_);
        pr = opts_.batch_sink->predict_via(sink_window_.data(), rows, i);
      } else {
        pr = corr_pred.predict_lazy(lw);
      }
      // Replace the head prediction; keep the partition totals consistent.
      partition_cycles[p] += pr.fetch;
      partition_cycles[p] -= fetch_lat_[i];
      fetch_lat_[i] = pr.fetch;
      if (opts_.record_predictions) predictions[i] = pr;
      if (opts_.record_context_counts) {
        context_counts[i] = static_cast<std::uint16_t>(cnt);
      }
      prev_ring[i % cap] = cclock + pr.fetch + pr.exec + pr.store;
      cclock += pr.fetch;
      ++corrected;
    }
    corrected_instructions += corrected;
    partition_steps[p - 1] += corrected;  // the *previous* partition re-simulates
  }

  // Snapshot this partition's end state for correcting the next one.
  if (opts_.post_error_correction) {
    prev_ring = ring_;
    prev_clock = clock;
    prev_oldest = b >= opts_.warmup ? b - opts_.warmup : 0;
  }
  MLSIM_COUNTER_ADD(obs::names::kParSimPartitionsDone, 1);
}

ShardOutcome ShardEngine::block_outcome(std::size_t part_lo,
                                        std::size_t part_hi) const {
  check(part_lo < part_hi && part_hi <= plan_.parts, "invalid block range");
  ShardOutcome o;
  o.part_lo = part_lo;
  o.part_hi = part_hi;
  const auto lo = static_cast<std::ptrdiff_t>(part_lo);
  const auto hi = static_cast<std::ptrdiff_t>(part_hi);
  o.partition_cycles.assign(partition_cycles.begin() + lo,
                            partition_cycles.begin() + hi);
  o.partition_steps.assign(partition_steps.begin() + lo,
                           partition_steps.begin() + hi);
  o.partition_wasted.assign(partition_wasted.begin() + lo,
                            partition_wasted.begin() + hi);
  o.final_attempt.assign(final_attempt.begin() + lo, final_attempt.begin() + hi);
  o.failed_partitions.assign(failed_list.begin(), failed_list.end());
  o.degraded_partitions.assign(degraded_list.begin(), degraded_list.end());
  o.warmup_instructions = warmup_instructions;
  o.corrected_instructions = corrected_instructions;
  o.retries = retries;
  o.backoff_us = backoff_us;
  o.gpu_lost = gpu_lost[plan_.gpu_of(part_lo)];
  o.occupancy = occupancy.state();
  const std::size_t i_lo = plan_.boundaries[part_lo];
  const std::size_t i_hi = plan_.boundaries[part_hi];
  if (opts_.record_predictions) {
    o.predictions.assign(predictions.begin() + static_cast<std::ptrdiff_t>(i_lo),
                         predictions.begin() + static_cast<std::ptrdiff_t>(i_hi));
  }
  if (opts_.record_context_counts) {
    o.context_counts.assign(
        context_counts.begin() + static_cast<std::ptrdiff_t>(i_lo),
        context_counts.begin() + static_cast<std::ptrdiff_t>(i_hi));
  }
  return o;
}

ShardMerger::ShardMerger(const ShardPlan& plan, bool record_predictions,
                         bool record_context_counts)
    : plan_(plan) {
  partition_cycles_.assign(plan_.parts, 0);
  partition_steps_.assign(plan_.parts, 0);
  partition_wasted_.assign(plan_.parts, 0);
  final_attempt_.assign(plan_.parts, 0);
  gpu_lost_.assign(plan_.gpus, 0);
  if (record_predictions) predictions_.resize(plan_.instructions);
  if (record_context_counts) context_counts_.assign(plan_.instructions, 0);
}

void ShardMerger::add(const ShardOutcome& o) {
  const std::size_t lo = o.part_lo, hi = o.part_hi;
  check(lo < hi && hi <= plan_.parts, "shard outcome range out of plan");
  check(o.partition_cycles.size() == hi - lo &&
            o.partition_steps.size() == hi - lo &&
            o.partition_wasted.size() == hi - lo &&
            o.final_attempt.size() == hi - lo,
        "shard outcome shape mismatch");
  for (std::size_t k = 0; k < hi - lo; ++k) {
    partition_cycles_[lo + k] = o.partition_cycles[k];
    partition_steps_[lo + k] = o.partition_steps[k];
    partition_wasted_[lo + k] = o.partition_wasted[k];
    final_attempt_[lo + k] = o.final_attempt[k];
  }
  for (const std::uint64_t p : o.failed_partitions) {
    check(p >= lo && p < hi, "failed partition outside shard range");
    failed_.push_back(static_cast<std::size_t>(p));
  }
  for (const std::uint64_t p : o.degraded_partitions) {
    check(p >= lo && p < hi, "degraded partition outside shard range");
    degraded_.push_back(static_cast<std::size_t>(p));
  }
  warmup_ += o.warmup_instructions;
  corrected_ += o.corrected_instructions;
  retries_ += o.retries;
  backoff_us_ += o.backoff_us;
  if (o.gpu_lost) gpu_lost_[plan_.gpu_of(lo)] = 1;
  occupancy_.merge(RunningStats::restore(o.occupancy));
  const std::size_t i_lo = plan_.boundaries[lo];
  const std::size_t i_hi = plan_.boundaries[hi];
  if (!predictions_.empty()) {
    check(o.predictions.size() == i_hi - i_lo,
          "shard outcome prediction range mismatch");
    std::copy(o.predictions.begin(), o.predictions.end(),
              predictions_.begin() + static_cast<std::ptrdiff_t>(i_lo));
  }
  if (!context_counts_.empty()) {
    check(o.context_counts.size() == i_hi - i_lo,
          "shard outcome context-count range mismatch");
    std::copy(o.context_counts.begin(), o.context_counts.end(),
              context_counts_.begin() + static_cast<std::ptrdiff_t>(i_lo));
  }
  covered_ += hi - lo;
}

ParallelSimResult ShardMerger::finish(const ParallelSimOptions& opts,
                                      std::size_t predictor_flops) const {
  check(complete(), "cannot finish a merge with uncovered partitions");
  ParallelSimResult res;
  res.instructions = plan_.instructions;
  res.boundaries = plan_.boundaries;
  res.warmup_instructions = warmup_;
  res.corrected_instructions = corrected_;
  res.retries = retries_;
  res.failed_partitions = failed_;
  res.degraded_partitions = degraded_;
  res.predictions = predictions_;
  res.context_counts = context_counts_;
  finalize_parallel_result(opts, plan_, partition_cycles_, partition_steps_,
                           partition_wasted_, final_attempt_, gpu_lost_,
                           backoff_us_, occupancy_, predictor_flops, res);
  return res;
}

void finalize_parallel_result(const ParallelSimOptions& opts,
                              const ShardPlan& plan,
                              const std::vector<std::uint64_t>& partition_cycles,
                              const std::vector<std::size_t>& partition_steps,
                              const std::vector<std::size_t>& partition_wasted,
                              const std::vector<std::uint32_t>& final_attempt,
                              const std::vector<std::uint8_t>& gpu_lost,
                              double backoff_us, const RunningStats& occupancy,
                              std::size_t predictor_flops,
                              ParallelSimResult& res) {
  const std::size_t P = plan.parts;
  const std::size_t rows = opts.context_length + 1;
  const device::FaultInjector* faults =
      (opts.faults != nullptr && opts.faults->enabled()) ? opts.faults : nullptr;

  res.total_cycles = 0;
  for (std::size_t p = 0; p < P; ++p) res.total_cycles += partition_cycles[p];

  // ---- Simulated-time model (lockstep batched inference per GPU) ------------
  // Stragglers stretch a partition's successful pass; steps burnt by killed
  // or anomaly-aborted attempts add on top.
  std::vector<std::size_t> modeled_steps(P);
  for (std::size_t p = 0; p < P; ++p) {
    const double f =
        faults != nullptr ? faults->straggler_factor(p, final_attempt[p]) : 1.0;
    modeled_steps[p] =
        static_cast<std::size_t>(std::llround(
            static_cast<double>(partition_steps[p]) * f)) +
        partition_wasted[p];
  }
  ParallelTimePenalties penalties;
  for (const std::uint8_t lost : gpu_lost) penalties.lost_devices += lost;
  // At least one device always survives to drain the requeued partitions.
  penalties.lost_devices = std::min(penalties.lost_devices, plan.gpus - 1);
  penalties.backoff_us = backoff_us;
  res.lost_devices = penalties.lost_devices;
  res.retry_backoff_us = backoff_us;

  std::size_t flops = predictor_flops;
  if (flops == 0) flops = opts.assumed_flops_per_window;
  if (flops == 0) flops = simnet3c2f_flops(rows);
  const double occ = occupancy.count() ? occupancy.mean() : 0.3;
  res.sim_time_us =
      model_parallel_time_us(opts, modeled_steps, flops, occ, penalties);
  if (obs::enabled()) {
    MLSIM_COUNTER_ADD(obs::names::kParSimInstructions, plan.instructions);
    MLSIM_COUNTER_ADD(obs::names::kParSimWarmupInstructions,
                      res.warmup_instructions);
    MLSIM_COUNTER_ADD(obs::names::kParSimCorrectedInstructions,
                      res.corrected_instructions);
    MLSIM_COUNTER_ADD(obs::names::kParSimDegradedPartitions,
                      res.degraded_partitions.size());
    MLSIM_GAUGE_SET(obs::names::kParSimLostDevices,
                    static_cast<double>(res.lost_devices));
    for (std::size_t p = 0; p < P; ++p) {
      MLSIM_HIST_RECORD(obs::names::kParSimAttemptsPerPartition,
                        static_cast<double>(final_attempt[p]) + 1.0);
    }
    // Mean valid fraction of the lockstep batch window — what the modeled
    // per-GPU batched inference actually occupies.
    MLSIM_GAUGE_SET(obs::names::kParSimBatchOccupancy, occ);
  }
}

}  // namespace mlsim::core
