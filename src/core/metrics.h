// Simulation metric derivation (paper §VI-D/E): interval CPI series,
// memory bandwidth, and per-operation-type prediction error.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sim_output.h"
#include "trace/trace.h"

namespace mlsim::core {

/// Interval CPI: cycles (sum of fetch latencies) per instruction over
/// consecutive intervals — captures phase behaviour (§VI-E).
std::vector<double> cpi_series_from_predictions(
    const std::vector<LatencyPrediction>& preds, std::size_t interval);

/// Same, from a labeled trace's ground-truth targets.
std::vector<double> cpi_series_from_targets(const trace::EncodedTrace& labeled,
                                            std::size_t interval);

/// Memory bandwidth estimate: bytes served from memory (one cache line per
/// access whose data level is "memory") divided by total cycles; unit is
/// bytes/cycle (multiply by clock frequency for GB/s).
double memory_bandwidth_from_predictions(const trace::EncodedTrace& tr,
                                         const std::vector<LatencyPrediction>& preds);
double memory_bandwidth_from_targets(const trace::EncodedTrace& labeled);

/// Table III: per-instruction mean absolute percentage error of the execute
/// latency (with +1 smoothing for zero-latency targets), split by
/// operation class.
struct OpTypeError {
  double alu_percent = 0.0;     // +1-smoothed relative error
  double memory_percent = 0.0;
  double alu_mae_cycles = 0.0;  // mean absolute error in cycles
  double memory_mae_cycles = 0.0;
  std::size_t alu_count = 0;
  std::size_t memory_count = 0;
};
OpTypeError optype_error(const trace::EncodedTrace& labeled,
                         const std::vector<LatencyPrediction>& preds);

/// §VI-E: other architectural metrics the simulator can report directly
/// from the trace's dynamic-state features.
struct TraceRates {
  double branch_mispredict_rate = 0.0;  // mispredicted / conditional branches
  double l1d_miss_rate = 0.0;           // data accesses not served by L1
  double l2_miss_rate = 0.0;            // data accesses that reached memory
  double memory_access_fraction = 0.0;  // loads+stores / instructions
  std::size_t branches = 0;
  std::size_t data_accesses = 0;
};
TraceRates trace_rates(const trace::EncodedTrace& tr);

/// Interval memory-bandwidth series (bytes/cycle per interval), mirroring
/// the interval CPI series.
std::vector<double> membw_series_from_predictions(
    const trace::EncodedTrace& tr, const std::vector<LatencyPrediction>& preds,
    std::size_t interval);

/// Total predicted cycles (sum of fetch latencies).
std::uint64_t total_cycles(const std::vector<LatencyPrediction>& preds);

/// Total ground-truth cycles from a labeled trace.
std::uint64_t total_cycles_from_targets(const trace::EncodedTrace& labeled);

}  // namespace mlsim::core
