// Lockstep batched parallel simulator — the paper's actual GPU compute
// pattern, executed functionally.
//
// ParallelSimulator walks sub-traces one after another (convenient on a
// CPU); on the device, the i-th instruction of *all* resident sub-traces is
// inferred in ONE batched call (Fig. 5). This engine reproduces that
// stepping for real: each step materialises one window per active
// partition and issues a single LatencyPredictor::predict_batch, so batched
// predictors (the CNN) run exactly as they would inside the GPU engine.
//
// Results are bit-identical to ParallelSimulator for the same options
// (asserted by tests): sub-traces are independent, so the interleaving
// order cannot change any prediction.
#pragma once

#include "core/parallel_sim.h"

namespace mlsim::core {

class LockstepParallelSimulator {
 public:
  LockstepParallelSimulator(LatencyPredictor& predictor, ParallelSimOptions opts);

  ParallelSimResult run(const trace::EncodedTrace& trace);

  /// Largest inference batch issued during the last run (= active
  /// partitions per step; decays as short partitions finish).
  std::size_t peak_batch() const { return peak_batch_; }

 private:
  LatencyPredictor& predictor_;
  ParallelSimOptions opts_;
  std::size_t peak_batch_ = 0;
};

}  // namespace mlsim::core
