// Per-step simulated-time cost model for the ML simulator pipeline.
//
// Centralises every calibrated constant so the ablation benches (Figs. 2,
// 11-16) and the simulators draw from one source. All times are µs per
// *instruction* unless stated otherwise; batch-amortised steps take the
// batch size N. Calibration targets are the paper's DGX-A100 measurements;
// see EXPERIMENTS.md for paper-vs-model values.
#pragma once

#include <cstddef>

#include "device/gpu_spec.h"
#include "trace/encoder.h"

namespace mlsim::core {

/// FLOPs of one 3C+2F inference for a given window, anchored to the paper's
/// measured 3.19 MFLOP at the 112-instruction window and scaled linearly
/// (all layers are linear in the window length).
inline std::size_t simnet3c2f_flops(std::size_t window_rows) {
  return static_cast<std::size_t>(3.19e6 * static_cast<double>(window_rows) / 112.0);
}

struct CostModel {
  device::GpuSpec gpu = device::GpuSpec::a100();

  // Host-side (CPU) step costs for the unoptimised baseline (Fig. 1 flow).
  double host_queue_push_us = 0.06;       // copy 1: trace row -> queue
  double host_construct_row_us = 0.0164;  // copy 2: concat+pad, per window row
  double host_update_retire_us = 0.10;    // step 4 on the CPU

  // Device-side kernels.
  double gpu_update_retire_us = 0.01;     // step 4 as a device kernel
  double swiq_resident_us = 0.18;         // SWIQ update work per instruction
  double custom_conv_gather_us = 0.10;    // strided gather inside custom conv

  /// Bytes of one window (rows x features x 4B).
  static std::size_t window_bytes(std::size_t rows) {
    return rows * trace::kNumFeatures * sizeof(std::int32_t);
  }
  static std::size_t row_bytes() { return trace::kNumFeatures * sizeof(std::int32_t); }

  // --- Step costs, per instruction -----------------------------------------

  /// Copy 3 of the naive flow: ship the whole constructed window to the GPU.
  double h2d_full_window_us(std::size_t rows) const {
    return gpu.h2d_time_us(window_bytes(rows));
  }

  /// Optimised flow: only the new instruction rows cross the link, one batch
  /// of N rows per transfer (amortised per instruction).
  double h2d_batched_row_us(std::size_t batch_n) const {
    return gpu.h2d_time_us(row_bytes() * batch_n) / static_cast<double>(batch_n);
  }

  /// Copy 2 on the CPU (concatenate queue + pad).
  double cpu_construct_us(std::size_t rows) const {
    return host_construct_row_us * static_cast<double>(rows);
  }

  /// GPU-based input construction kernel (gathers the window in device
  /// memory; one launch per instruction).
  double gpu_construct_us(std::size_t rows) const {
    return gpu.kernel_time_us(2 * window_bytes(rows), 0);
  }

  /// Sliding-window queue: no gather at all; one slide/update per
  /// instruction plus a launch amortised over the batch.
  double swiq_construct_us(std::size_t batch_n) const {
    return gpu.launch_us / static_cast<double>(batch_n) + swiq_resident_us;
  }

  /// With the custom convolution the window is consumed in place (no
  /// transpose, no padding compute); only the strided gather cost remains.
  double custom_conv_construct_us(std::size_t batch_n) const {
    return gpu.launch_us / static_cast<double>(batch_n) + custom_conv_gather_us;
  }

  /// Copy 4 of the naive flow: transpose kernel over the window.
  double transpose_us(std::size_t rows) const {
    return gpu.kernel_time_us(2 * window_bytes(rows), 0);
  }

  /// Inference for a batch of windows; `avg_valid_fraction` is the mean
  /// non-padding fraction (custom conv skips padded columns).
  double inference_us(device::Engine engine, std::size_t flops_per_window,
                      std::size_t batch, bool custom_conv,
                      double avg_valid_fraction) const;
};

}  // namespace mlsim::core
