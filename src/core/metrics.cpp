#include "core/metrics.h"

#include <cmath>

#include "common/check.h"
#include "trace/annotation.h"

namespace mlsim::core {

using trace::Feat;

std::vector<double> cpi_series_from_predictions(
    const std::vector<LatencyPrediction>& preds, std::size_t interval) {
  check(interval > 0, "interval must be positive");
  std::vector<double> out;
  std::uint64_t acc = 0;
  std::size_t cnt = 0;
  for (const auto& p : preds) {
    acc += p.fetch;
    if (++cnt == interval) {
      out.push_back(static_cast<double>(acc) / static_cast<double>(interval));
      acc = 0;
      cnt = 0;
    }
  }
  if (cnt > 0) out.push_back(static_cast<double>(acc) / static_cast<double>(cnt));
  return out;
}

std::vector<double> cpi_series_from_targets(const trace::EncodedTrace& labeled,
                                            std::size_t interval) {
  check(interval > 0, "interval must be positive");
  std::vector<double> out;
  std::uint64_t acc = 0;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    acc += labeled.targets(i)[0];
    if (++cnt == interval) {
      out.push_back(static_cast<double>(acc) / static_cast<double>(interval));
      acc = 0;
      cnt = 0;
    }
  }
  if (cnt > 0) out.push_back(static_cast<double>(acc) / static_cast<double>(cnt));
  return out;
}

namespace {
constexpr double kLineBytes = 64.0;

double membw(const trace::EncodedTrace& tr, std::uint64_t cycles) {
  if (cycles == 0) return 0.0;
  double bytes = 0.0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto f = tr.features(i);
    // Data level 3 == served from memory (trace::HitLevel::kMemory).
    if (f[Feat::kDataLevel] == static_cast<std::int32_t>(trace::HitLevel::kMemory)) {
      bytes += kLineBytes;
    }
  }
  return bytes / static_cast<double>(cycles);
}
}  // namespace

double memory_bandwidth_from_predictions(const trace::EncodedTrace& tr,
                                         const std::vector<LatencyPrediction>& preds) {
  return membw(tr, total_cycles(preds));
}

double memory_bandwidth_from_targets(const trace::EncodedTrace& labeled) {
  return membw(labeled, total_cycles_from_targets(labeled));
}

OpTypeError optype_error(const trace::EncodedTrace& labeled,
                         const std::vector<LatencyPrediction>& preds) {
  check(labeled.labeled(), "optype_error requires ground-truth targets");
  check(labeled.size() == preds.size(), "prediction count mismatch");
  OpTypeError out;
  double alu_acc = 0.0, mem_acc = 0.0, alu_abs = 0.0, mem_abs = 0.0;
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    const auto f = labeled.features(i);
    const auto t = labeled.targets(i);
    const double truth = static_cast<double>(t[1]) + 1.0;
    const double pred = static_cast<double>(preds[i].exec) + 1.0;
    const double err = std::abs(truth - pred) / truth * 100.0;
    if (f[Feat::kIsLoad] != 0 || f[Feat::kIsStore] != 0) {
      mem_acc += err;
      mem_abs += std::abs(truth - pred);
      ++out.memory_count;
    } else if (f[Feat::kIsBranch] == 0 && f[Feat::kIsControl] == 0) {
      alu_acc += err;
      alu_abs += std::abs(truth - pred);
      ++out.alu_count;
    }
  }
  if (out.alu_count) {
    out.alu_percent = alu_acc / static_cast<double>(out.alu_count);
    out.alu_mae_cycles = alu_abs / static_cast<double>(out.alu_count);
  }
  if (out.memory_count) {
    out.memory_percent = mem_acc / static_cast<double>(out.memory_count);
    out.memory_mae_cycles = mem_abs / static_cast<double>(out.memory_count);
  }
  return out;
}

TraceRates trace_rates(const trace::EncodedTrace& tr) {
  TraceRates out;
  std::size_t mispredicted = 0, l1_misses = 0, mem_level = 0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto f = tr.features(i);
    if (f[Feat::kIsBranch] != 0) {
      ++out.branches;
      mispredicted += f[Feat::kMispredicted] != 0;
    }
    const auto level = f[Feat::kDataLevel];
    if (level != static_cast<std::int32_t>(trace::HitLevel::kNone)) {
      ++out.data_accesses;
      l1_misses += level > static_cast<std::int32_t>(trace::HitLevel::kL1);
      mem_level += level == static_cast<std::int32_t>(trace::HitLevel::kMemory);
    }
  }
  if (out.branches > 0) {
    out.branch_mispredict_rate =
        static_cast<double>(mispredicted) / static_cast<double>(out.branches);
  }
  if (out.data_accesses > 0) {
    out.l1d_miss_rate =
        static_cast<double>(l1_misses) / static_cast<double>(out.data_accesses);
    out.l2_miss_rate =
        static_cast<double>(mem_level) / static_cast<double>(out.data_accesses);
  }
  if (tr.size() > 0) {
    out.memory_access_fraction =
        static_cast<double>(out.data_accesses) / static_cast<double>(tr.size());
  }
  return out;
}

std::vector<double> membw_series_from_predictions(
    const trace::EncodedTrace& tr, const std::vector<LatencyPrediction>& preds,
    std::size_t interval) {
  check(interval > 0, "interval must be positive");
  check(tr.size() == preds.size(), "prediction count mismatch");
  std::vector<double> out;
  double bytes = 0;
  std::uint64_t cycles = 0;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto f = tr.features(i);
    if (f[Feat::kDataLevel] == static_cast<std::int32_t>(trace::HitLevel::kMemory)) {
      bytes += kLineBytes;
    }
    cycles += preds[i].fetch;
    if (++cnt == interval) {
      out.push_back(cycles ? bytes / static_cast<double>(cycles) : 0.0);
      bytes = 0;
      cycles = 0;
      cnt = 0;
    }
  }
  if (cnt > 0) out.push_back(cycles ? bytes / static_cast<double>(cycles) : 0.0);
  return out;
}

std::uint64_t total_cycles(const std::vector<LatencyPrediction>& preds) {
  std::uint64_t acc = 0;
  for (const auto& p : preds) acc += p.fetch;
  return acc;
}

std::uint64_t total_cycles_from_targets(const trace::EncodedTrace& labeled) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < labeled.size(); ++i) acc += labeled.targets(i)[0];
  return acc;
}

}  // namespace mlsim::core
