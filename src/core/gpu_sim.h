// Single-device GPU-optimised simulator (paper §IV).
//
// Functionally identical to SequentialSimulator (same windows, same
// predictions, same Clock — asserted by tests); what changes with the
// option toggles is *where* each step runs and how much simulated time it
// costs:
//   gpu_input_construction (GIC) — window construction as a device kernel;
//     only the new instruction row crosses the PCIe/NVLink link.
//   sliding_window (SWIQ)        — the window is a view into the resident
//     queue; batch-of-N staging amortises copies; no gather kernel.
//   custom_conv (CC)             — first conv consumes the queue in place:
//     no transpose, padded columns skipped.
//   engine (OI)                  — LibTorch / TensorRT / +fp16 / +2:4.
//   pipelined (PS)               — double-buffered copy/compute overlap.
#pragma once

#include <memory>

#include "common/cancellation.h"
#include "core/cost_model.h"
#include "core/predict_sink.h"
#include "core/predictor.h"
#include "core/sim_output.h"
#include "core/sliding_window.h"
#include "device/device.h"
#include "trace/trace.h"

namespace mlsim::core {

struct GpuSimOptions {
  std::size_t context_length = kDefaultContextLength;
  std::size_t batch_n = 10;  // paper's sweet spot (Fig. 12/15)
  bool gpu_input_construction = true;
  bool sliding_window = true;
  bool custom_conv = true;
  device::Engine engine = device::Engine::kTensorRTSparse;
  bool pipelined = true;
  bool record_predictions = false;
  bool record_context_counts = false;
  CostModel costs;
  /// Cooperative cancellation: polled once per instruction; a cancelled or
  /// past-deadline run throws CancelledError. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
  /// Cross-request continuous batching (docs/BATCHING.md): when set, windows
  /// are submitted to this sink instead of predicted synchronously. The
  /// simulated-time cost model is unaffected; predictions are bit-identical.
  PredictSink* batch_sink = nullptr;
};

class GpuSimulator {
 public:
  GpuSimulator(LatencyPredictor& predictor, device::Device& dev,
               GpuSimOptions opts = {});

  /// Simulate trace rows [begin, end); end = 0 means the whole trace.
  SimOutput run(const trace::EncodedTrace& trace, std::size_t begin = 0,
                std::size_t end = 0);

 private:
  LatencyPredictor& predictor_;
  device::Device& dev_;
  GpuSimOptions opts_;
};

}  // namespace mlsim::core
