// Sequential SimNet-style simulator (the Fig. 1 reference workflow).
//
// Walks the encoded trace one instruction at a time through the reference
// InstructionQueue, invoking a LatencyPredictor per instruction, and
// accounts the simulated time of every step of the naive flow — the four
// redundant copies the paper's optimisations remove:
//   copy 1: trace row -> instruction queue          (host)
//   copy 2: queue -> concatenated/padded input       (host)
//   copy 3: input -> GPU                             (H2D)
//   copy 4: transpose on the GPU                     (device kernel)
// plus inference and update/retire.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "core/cost_model.h"
#include "core/instruction_queue.h"
#include "core/predict_sink.h"
#include "core/predictor.h"
#include "core/sim_output.h"
#include "trace/trace.h"

namespace mlsim::core {

struct SequentialSimOptions {
  std::size_t context_length = kDefaultContextLength;
  bool record_predictions = false;
  bool record_context_counts = false;
  /// The unoptimised baseline runs LibTorch inference (paper §III).
  device::Engine engine = device::Engine::kLibTorch;
  CostModel costs;
  /// Cooperative cancellation: polled once per instruction; a cancelled or
  /// past-deadline run throws CancelledError. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
  /// Cross-request continuous batching (docs/BATCHING.md): when set, each
  /// window is submitted to this sink and the loop blocks on its sequence
  /// number instead of invoking the predictor synchronously. Predictions are
  /// bit-identical either way; only where inference runs changes.
  PredictSink* batch_sink = nullptr;
};

class SequentialSimulator {
 public:
  SequentialSimulator(LatencyPredictor& predictor, SequentialSimOptions opts = {});

  /// Simulate trace rows [begin, end); pass end = 0 for the whole trace.
  SimOutput run(const trace::EncodedTrace& trace, std::size_t begin = 0,
                std::size_t end = 0);

 private:
  LatencyPredictor& predictor_;
  SequentialSimOptions opts_;
};

}  // namespace mlsim::core
