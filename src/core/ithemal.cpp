#include "core/ithemal.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/simnet_trainer.h"
#include "core/window.h"
#include "tensor/optim.h"

namespace mlsim::core {

using trace::Feat;

std::vector<BasicBlock> extract_basic_blocks(const trace::EncodedTrace& labeled,
                                             std::size_t max_len) {
  check(labeled.labeled(), "basic-block extraction needs targets");
  std::vector<BasicBlock> blocks;
  std::size_t begin = 0;
  std::uint32_t cycles = 0;
  std::size_t len = 0;
  auto flush = [&](std::size_t next_begin) {
    if (len > 0) blocks.push_back({begin, len, cycles});
    begin = next_begin;
    cycles = 0;
    len = 0;
  };
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    const bool entry = labeled.features(i)[Feat::kBlockEntry] != 0;
    if ((entry && len > 0) || len >= max_len) flush(i);
    cycles += labeled.targets(i)[0];
    ++len;
  }
  flush(labeled.size());
  return blocks;
}

IthemalModel::IthemalModel(const IthemalConfig& cfg, std::uint64_t seed)
    : cfg_(cfg) {
  Rng rng(seed);
  embed_ = std::make_unique<tensor::Linear>(trace::kNumFeatures, cfg.embed, rng);
  relu_ = std::make_unique<tensor::ReLU>();
  lstm_ = std::make_unique<tensor::Lstm>(cfg.embed, cfg.hidden, rng);
  head_ = std::make_unique<tensor::Linear>(cfg.hidden, 1, rng);
  std::vector<tensor::Param> params;
  embed_->collect_params(params);
  lstm_->collect_params(params);
  head_->collect_params(params);
  optim_ = std::make_unique<tensor::Adam>(params,
                                          tensor::AdamConfig{.lr = cfg.lr,
                                                             .grad_clip = 5.0f});
}

tensor::Tensor IthemalModel::embed_blocks(const trace::EncodedTrace& tr,
                                          const std::vector<BasicBlock>& blocks,
                                          const std::vector<float>& scales,
                                          std::size_t max_len) {
  const std::size_t B = blocks.size();
  const std::size_t F = trace::kNumFeatures;
  tensor::Tensor x({B * max_len, F});
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t t = 0; t < blocks[b].length; ++t) {
      const auto row = tr.features(blocks[b].begin + t);
      float* dst = x.data() + (b * max_len + t) * F;
      for (std::size_t c = 0; c < F; ++c) {
        dst[c] = static_cast<float>(row[c]) * scales[c];
      }
    }
  }
  return x;
}

std::vector<double> IthemalModel::predict(const trace::EncodedTrace& tr,
                                          const std::vector<BasicBlock>& blocks,
                                          const std::vector<float>& scales) {
  check(!blocks.empty(), "predict needs at least one block");
  std::size_t max_len = 1;
  for (const auto& b : blocks) max_len = std::max(max_len, b.length);
  const std::size_t B = blocks.size();

  tensor::Tensor x = embed_blocks(tr, blocks, scales, max_len);
  tensor::Tensor e = relu_->forward(embed_->forward(x));
  e = e.reshaped({B, max_len, cfg_.embed});
  const tensor::Tensor h = lstm_->forward(e);

  tensor::Tensor block_h({B, cfg_.hidden});
  for (std::size_t b = 0; b < B; ++b) {
    const std::size_t t = blocks[b].length - 1;
    const float* src = h.data() + (b * max_len + t) * cfg_.hidden;
    std::copy(src, src + cfg_.hidden, block_h.data() + b * cfg_.hidden);
  }
  const tensor::Tensor y = head_->forward(block_h);
  std::vector<double> out(B);
  for (std::size_t b = 0; b < B; ++b) {
    out[b] = std::expm1(std::max(0.0, static_cast<double>(y.at(b))));
  }
  return out;
}

float IthemalModel::train_step(const trace::EncodedTrace& tr,
                               const std::vector<BasicBlock>& blocks,
                               const std::vector<float>& scales, float /*lr*/) {
  check(!blocks.empty(), "train_step needs a batch");
  std::size_t max_len = 1;
  for (const auto& b : blocks) max_len = std::max(max_len, b.length);
  const std::size_t B = blocks.size();

  embed_->zero_grad();
  lstm_->zero_grad();
  head_->zero_grad();

  tensor::Tensor x = embed_blocks(tr, blocks, scales, max_len);
  tensor::Tensor e = relu_->forward(embed_->forward(x));
  e = e.reshaped({B, max_len, cfg_.embed});
  const tensor::Tensor h = lstm_->forward(e);

  tensor::Tensor block_h({B, cfg_.hidden});
  for (std::size_t b = 0; b < B; ++b) {
    const std::size_t t = blocks[b].length - 1;
    const float* src = h.data() + (b * max_len + t) * cfg_.hidden;
    std::copy(src, src + cfg_.hidden, block_h.data() + b * cfg_.hidden);
  }
  const tensor::Tensor y = head_->forward(block_h);

  tensor::Tensor target({B, 1});
  for (std::size_t b = 0; b < B; ++b) {
    target.at(b) = std::log1p(static_cast<float>(blocks[b].cycles));
  }
  tensor::Tensor grad;
  const float loss = tensor::mse_loss(y, target, grad);

  tensor::Tensor gh = head_->backward(grad);  // (B, hidden)
  tensor::Tensor gseq({B, max_len, cfg_.hidden});
  for (std::size_t b = 0; b < B; ++b) {
    const std::size_t t = blocks[b].length - 1;
    float* dst = gseq.data() + (b * max_len + t) * cfg_.hidden;
    std::copy(gh.data() + b * cfg_.hidden, gh.data() + (b + 1) * cfg_.hidden, dst);
  }
  tensor::Tensor ge = lstm_->backward(gseq);
  ge = ge.reshaped({B * max_len, cfg_.embed});
  embed_->backward(relu_->backward(ge));
  optim_->step();
  return loss;
}

std::size_t IthemalModel::flops_per_block(std::size_t len) const {
  return 2 * len * trace::kNumFeatures * cfg_.embed +
         lstm_->flops(1, len) + 2 * cfg_.hidden;
}

IthemalModel train_ithemal(const std::vector<const trace::EncodedTrace*>& traces,
                           const IthemalConfig& cfg, std::vector<float>* scales_out,
                           IthemalTrainReport* report) {
  check(!traces.empty(), "ithemal training needs traces");
  const std::vector<float> scales = compute_feature_scales(traces);
  if (scales_out != nullptr) *scales_out = scales;

  struct Item {
    const trace::EncodedTrace* tr;
    BasicBlock block;
  };
  std::vector<Item> items;
  for (const auto* tr : traces) {
    for (const auto& b : extract_basic_blocks(*tr, cfg.max_block_len)) {
      items.push_back({tr, b});
    }
  }
  check(!items.empty(), "no basic blocks extracted");

  const std::size_t holdout_begin = items.size() * 9 / 10;
  IthemalModel model(cfg, cfg.seed);
  Rng rng(cfg.seed ^ 0xb10cull);

  float last_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (std::size_t i = holdout_begin; i > 1; --i) {
      std::swap(items[i - 1], items[rng.next_below(i)]);
    }
    double acc = 0.0;
    std::size_t batches = 0;
    for (std::size_t off = 0; off + cfg.batch_size <= holdout_begin;
         off += cfg.batch_size) {
      // Batches must share one trace (blocks index into it); group by the
      // first item's trace and take same-trace neighbours.
      const trace::EncodedTrace* tr = items[off].tr;
      std::vector<BasicBlock> batch;
      for (std::size_t j = off; j < off + cfg.batch_size; ++j) {
        if (items[j].tr == tr) batch.push_back(items[j].block);
      }
      if (batch.empty()) continue;
      acc += static_cast<double>(model.train_step(*tr, batch, scales, cfg.lr));
      ++batches;
    }
    last_loss = batches ? static_cast<float>(acc / static_cast<double>(batches)) : 0.0f;
  }

  if (report != nullptr) {
    report->final_loss = last_loss;
    report->blocks = items.size();
    double err = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = holdout_begin; i < items.size(); ++i) {
      const std::vector<double> pred =
          model.predict(*items[i].tr, {items[i].block}, scales);
      const double truth = static_cast<double>(items[i].block.cycles) + 1.0;
      err += std::abs(pred[0] + 1.0 - truth) / truth * 100.0;
      ++cnt;
    }
    report->mape_percent = cnt ? err / static_cast<double>(cnt) : 0.0;
  }
  return model;
}

IthemalThroughput model_ithemal_throughput(const IthemalModel& model,
                                           const device::GpuSpec& gpu,
                                           std::size_t avg_block_len,
                                           std::size_t batch_blocks) {
  IthemalThroughput out;
  const double block_bytes =
      static_cast<double>(avg_block_len * trace::kNumFeatures * sizeof(float));
  const std::size_t flops = model.flops_per_block(avg_block_len);

  // Original offload: per block, one padded copy (1), one H2D (2), then one
  // framework-dispatched kernel per hierarchy step — token layer, one LSTM
  // step per instruction, concatenation, block layer, prediction (3-7).
  const double steps = static_cast<double>(avg_block_len) + 3.0;
  const double seq_block_us = gpu.h2d_time_us(static_cast<std::size_t>(block_bytes)) +
                              steps * gpu.libtorch_overhead_us +
                              gpu.inference_time_us(device::Engine::kLibTorch, flops);
  out.sequential_us_per_inst = seq_block_us / static_cast<double>(avg_block_len);

  // Optimised: blocks batched (sliding-window staging), custom token layer
  // avoids padding, TensorRT engine, pipelined copies.
  const double opt_batch_us =
      gpu.h2d_time_us(static_cast<std::size_t>(block_bytes) * batch_blocks) * 0.5 +
      gpu.inference_time_us(device::Engine::kTensorRTHalf, flops * batch_blocks);
  out.optimized_us_per_inst =
      opt_batch_us / static_cast<double>(batch_blocks * avg_block_len);
  return out;
}

}  // namespace mlsim::core
