#include "core/predictor.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::core {

LazyWindow::LazyWindow(const trace::EncodedTrace& tr, std::uint64_t current,
                       std::uint64_t oldest, const std::uint64_t* retire_ring,
                       std::size_t ring_capacity, std::uint64_t clock,
                       std::size_t rows)
    : trace_(tr),
      current_(current),
      oldest_(oldest),
      ring_(retire_ring),
      ring_cap_(ring_capacity),
      clock_(clock),
      rows_(rows) {
  check(ring_capacity >= rows - 1, "retire ring smaller than context length");
  check(current < tr.size(), "current index out of trace bounds");
}

std::int32_t LazyWindow::remaining(std::size_t r) const {
  if (r == 0 || r >= rows_) return 0;
  if (current_ < oldest_ + r) return 0;  // beyond available history: padding
  const std::uint64_t retire = ring_[(current_ - r) % ring_cap_];
  if (retire <= clock_) return 0;  // retired
  return static_cast<std::int32_t>(
      std::min<std::uint64_t>(retire - clock_, kMaxLatencyEntry));
}

void LazyWindow::materialize(std::vector<std::int32_t>& out) const {
  out.resize(rows_ * trace::kNumFeatures);
  materialize_to(out.data());
}

void LazyWindow::materialize_to(std::int32_t* out) const {
  std::fill(out, out + rows_ * trace::kNumFeatures, 0);
  const auto cur = features(0);
  std::copy(cur.begin(), cur.end(), out);
  for (std::size_t r = 1; r < rows_; ++r) {
    const std::int32_t rem = remaining(r);
    if (rem > 0) {
      auto* dst = out + r * trace::kNumFeatures;
      const auto row = features(r);
      std::copy(row.begin(), row.end(), dst);
      dst[kCtxLatFeature] = rem;
    }
  }
}

std::size_t LazyWindow::context_count() const {
  std::size_t n = 0;
  for (std::size_t r = 1; r < rows_; ++r) n += remaining(r) > 0;
  return n;
}

LatencyPrediction LatencyPredictor::predict_lazy(const LazyWindow& window) {
  window.materialize(lazy_buf_);
  return predict(WindowView{lazy_buf_.data(), window.rows()},
                 window.current_index());
}

void LatencyPredictor::predict_batch(const std::int32_t* windows, std::size_t batch,
                                     std::size_t rows,
                                     const std::uint64_t* global_indices,
                                     LatencyPrediction* out) {
  for (std::size_t b = 0; b < batch; ++b) {
    WindowView w{windows + b * rows * trace::kNumFeatures, rows};
    out[b] = predict(w, global_indices != nullptr ? global_indices[b] : 0);
  }
}

OraclePredictor::OraclePredictor(const trace::EncodedTrace& labeled)
    : trace_(labeled) {
  check(labeled.labeled(), "OraclePredictor requires a labeled trace");
}

LatencyPrediction OraclePredictor::predict(const WindowView& /*window*/,
                                           std::uint64_t global_index) {
  const auto t = trace_.targets(global_index);
  return {t[0], t[1], t[2]};
}

}  // namespace mlsim::core
