// Parallel-simulation error diagnostics (the analysis behind paper
// Figs. 7 and 8): per-partition context/prediction difference profiles
// between a sequential reference run and a parallel run of the same
// predictor.
#pragma once

#include <cstdint>
#include <vector>

#include "core/parallel_sim.h"
#include "core/sim_output.h"

namespace mlsim::core {

/// Difference profile of one partition.
struct PartitionDiff {
  std::size_t begin = 0;
  std::size_t length = 0;
  /// Instructions whose context-instruction count differs from sequential.
  std::size_t context_diff_count = 0;
  /// Offset (from the partition head) of the first instruction whose
  /// context count matches sequential; == length if never.
  std::size_t first_context_match = 0;
  /// Instructions whose predicted total latency differs.
  std::size_t prediction_diff_count = 0;
  /// Sum of |predicted total latency difference| over the partition.
  std::uint64_t abs_prediction_diff = 0;
  /// Offset past which predictions agree for the rest of the partition;
  /// == 0 if they agree everywhere.
  std::size_t error_extent = 0;
};

struct ParallelDiffReport {
  std::vector<PartitionDiff> partitions;

  /// Aggregates across partitions.
  std::size_t total_context_diffs = 0;
  std::size_t total_prediction_diffs = 0;
  std::uint64_t total_abs_prediction_diff = 0;

  /// Fraction of instructions whose prediction was perturbed.
  double perturbed_fraction(std::size_t instructions) const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(total_prediction_diffs) /
                                   static_cast<double>(instructions);
  }
};

/// Compare a sequential run and a parallel run (both must have been
/// executed with record_predictions and record_context_counts).
ParallelDiffReport diff_parallel_runs(const ParallelSimResult& sequential,
                                      const ParallelSimResult& parallel);

/// Convenience: run the sequential reference and the parallel configuration
/// and return the diff report plus both CPIs.
struct DiffStudy {
  ParallelDiffReport report;
  double sequential_cpi = 0.0;
  double parallel_cpi = 0.0;
  double cpi_error_percent = 0.0;
};
DiffStudy run_diff_study(LatencyPredictor& predictor,
                         const trace::EncodedTrace& tr,
                         const ParallelSimOptions& parallel_options);

}  // namespace mlsim::core
