// Checkpoint/restart for long simulations (docs/RESILIENCE.md).
//
// Two checkpoint shapes, both written atomically (temp + rename) with an
// FNV-1a payload checksum so a file torn by process death is detected and
// rejected on load rather than silently resumed from:
//
//   ParallelCheckpoint — per-partition progress of a ParallelSimulator run:
//       completed-partition index, accumulated per-partition Clocks/steps,
//       the end-of-partition context ring (the state post-error correction
//       resumes from), the occupancy accumulator, and the fault-recovery
//       bookkeeping. Resuming replays the remaining partitions and is
//       bit-identical to an uninterrupted run.
//   SuiteCheckpoint — per-job results of a run_suite() sweep so a killed
//       suite run re-simulates only the jobs it had not finished.
//
// A fingerprint (trace + options hash, computed by the owning engine) guards
// against resuming a checkpoint into a different run configuration.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/stats.h"

namespace mlsim::core {

struct ParallelCheckpoint {
  std::uint64_t fingerprint = 0;
  std::uint64_t next_partition = 0;  // first partition NOT yet completed
  std::uint64_t num_partitions = 0;
  std::uint64_t ring_capacity = 0;

  // Result accumulators.
  std::uint64_t warmup_instructions = 0;
  std::uint64_t corrected_instructions = 0;
  std::uint64_t retries = 0;
  double backoff_us = 0.0;
  RunningStats::State occupancy;

  // End-of-previous-partition snapshot driving post-error correction.
  std::uint64_t prev_clock = 0;
  std::uint64_t prev_oldest = 0;
  std::vector<std::uint64_t> prev_ring;  // empty = no snapshot yet

  // Per-partition accounting (full length; entries >= next_partition are 0).
  std::vector<std::uint64_t> partition_cycles;
  std::vector<std::uint64_t> partition_steps;
  std::vector<std::uint64_t> partition_wasted;
  std::vector<std::uint32_t> final_attempt;

  // Fault-recovery bookkeeping.
  std::vector<std::uint64_t> failed_partitions;
  std::vector<std::uint64_t> degraded_partitions;
  std::vector<std::uint8_t> gpu_lost;  // one flag per modeled GPU

  // Recorded outputs for the completed prefix (present only when the run
  // records them; 3 values per instruction for predictions).
  std::vector<std::uint32_t> predictions;
  std::vector<std::uint16_t> context_counts;
};

/// Serialize atomically to `path`. Throws IoError on filesystem failure.
void save_checkpoint(const std::filesystem::path& path,
                     const ParallelCheckpoint& ck);

/// Load `path` into `ck`. Returns false if the file does not exist; throws
/// CheckError if it exists but is truncated, corrupt, or checksum-mismatched.
bool load_checkpoint(const std::filesystem::path& path, ParallelCheckpoint& ck);

struct SuiteCheckpointJob {
  std::string name;
  std::uint64_t device = 0;
  double cpi = 0.0;
  double sim_time_us = 0.0;
  std::uint64_t instructions = 0;
};

struct SuiteCheckpoint {
  std::uint64_t fingerprint = 0;
  std::vector<SuiteCheckpointJob> completed;
};

void save_checkpoint(const std::filesystem::path& path,
                     const SuiteCheckpoint& ck);
bool load_checkpoint(const std::filesystem::path& path, SuiteCheckpoint& ck);

}  // namespace mlsim::core
