#include "core/sequential_sim.h"

#include "common/check.h"

namespace mlsim::core {

SequentialSimulator::SequentialSimulator(LatencyPredictor& predictor,
                                         SequentialSimOptions opts)
    : predictor_(predictor), opts_(std::move(opts)) {}

SimOutput SequentialSimulator::run(const trace::EncodedTrace& trace,
                                   std::size_t begin, std::size_t end) {
  if (end == 0) end = trace.size();
  check(begin <= end && end <= trace.size(), "simulation range out of bounds");

  const std::size_t rows = opts_.context_length + 1;
  const CostModel& cm = opts_.costs;
  InstructionQueue queue(opts_.context_length);
  std::vector<std::int32_t> window;

  SimOutput out;
  out.instructions = end - begin;
  if (opts_.record_predictions) out.predictions.reserve(out.instructions);
  if (opts_.record_context_counts) out.context_counts.reserve(out.instructions);

  std::size_t flops = predictor_.flops_per_window(rows);
  if (flops == 0) flops = simnet3c2f_flops(rows);  // analytic/oracle stand-ins
  StepProfile acc;

  for (std::size_t i = begin; i < end; ++i) {
    if (opts_.cancel != nullptr) opts_.cancel->check();
    if (opts_.record_context_counts) {
      out.context_counts.push_back(static_cast<std::uint16_t>(queue.context_count()));
    }
    // Copies 1+2 (host).
    queue.push_and_build(trace.features(i), window);
    acc.queue_push += cm.host_queue_push_us;
    acc.input_construct += cm.cpu_construct_us(rows);
    // Copy 3: full window H2D.
    acc.h2d += cm.h2d_full_window_us(rows);
    // Copy 4: transpose kernel.
    acc.transpose += cm.transpose_us(rows);
    // Inference.
    acc.inference +=
        cm.inference_us(opts_.engine, flops, 1, /*custom_conv=*/false, 1.0);
    const LatencyPrediction p =
        opts_.batch_sink != nullptr
            ? opts_.batch_sink->predict_via(window.data(), rows, i)
            : predictor_.predict(WindowView{window.data(), rows}, i);
    // Update + retire (host in the baseline flow).
    queue.apply_prediction(p);
    acc.update_retire += cm.host_update_retire_us;

    if (opts_.record_predictions) out.predictions.push_back(p);
  }

  out.cycles = queue.total_cycles_with_drain();
  out.sim_time_us = acc.total();
  const double n = static_cast<double>(out.instructions ? out.instructions : 1);
  out.profile = {acc.queue_push / n, acc.input_construct / n, acc.h2d / n,
                 acc.transpose / n,  acc.inference / n,       acc.update_retire / n};
  return out;
}

}  // namespace mlsim::core
