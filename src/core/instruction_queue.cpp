#include "core/instruction_queue.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::core {

InstructionQueue::InstructionQueue(std::size_t context_length)
    : ctx_len_(context_length) {
  check(context_length > 0, "context length must be positive");
}

std::size_t InstructionQueue::context_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_) n += e.retire_clock > clock_;
  return n;
}

void InstructionQueue::push_and_build(std::span<const std::int32_t> features,
                                      std::vector<std::int32_t>& out) {
  check(features.size() == trace::kNumFeatures, "feature row width mismatch");
  check(!pending_, "push_and_build called twice without apply_prediction");
  pending_ = true;

  const std::size_t rows = ctx_len_ + 1;
  out.assign(rows * trace::kNumFeatures, 0);

  // Row 0: the to-be-predicted instruction (latency entry stays 0).
  std::copy(features.begin(), features.end(), out.begin());

  // Context rows in program order: row r = instruction i-r; retired rows
  // stay zero.
  std::size_t r = 1;
  for (const auto& e : entries_) {
    if (r >= rows) break;
    if (e.retire_clock > clock_) {
      auto* dst = out.data() + r * trace::kNumFeatures;
      std::copy(e.features.begin(), e.features.end(), dst);
      const std::uint64_t remaining = e.retire_clock - clock_;
      dst[kCtxLatFeature] = static_cast<std::int32_t>(
          std::min<std::uint64_t>(remaining, kMaxLatencyEntry));
    }
    ++r;
  }

  // Admit the instruction (retire clock assigned by apply_prediction).
  Entry e;
  e.features.assign(features.begin(), features.end());
  entries_.push_front(std::move(e));
  if (entries_.size() > ctx_len_) entries_.pop_back();
}

void InstructionQueue::apply_prediction(const LatencyPrediction& p) {
  check(pending_, "apply_prediction without matching push_and_build");
  pending_ = false;

  // Fig. 1 step 4: retire clock = pre-advance Clock plus all three predicted
  // latencies; then the Clock advances by the fetch latency. Rows whose
  // retire clock falls <= Clock become invalid (zeroed in future windows).
  const std::uint64_t retire = clock_ + p.fetch + p.exec + p.store;
  entries_.front().retire_clock = retire;
  last_retire_ = std::max(last_retire_, retire);
  clock_ += p.fetch;
}

void InstructionQueue::reset() {
  entries_.clear();
  clock_ = 0;
  last_retire_ = 0;
  pending_ = false;
}

std::uint64_t InstructionQueue::total_cycles_with_drain() const {
  return std::max(clock_, last_retire_);
}

}  // namespace mlsim::core
