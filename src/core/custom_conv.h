// Custom first convolution layer (paper §IV-A/B, Fig. 4c).
//
// Replaces the model's first Conv1D when running on the sliding-window
// queue. Instead of materialising + transposing the inference window, it
// reads the queue storage in place (instruction-major, strided), injects the
// remaining-latency entries from the retire-clock vector, masks retired
// rows, and skips all output columns whose receptive field is entirely
// padding (on average >68% of the window, Fig. 14). The kernel itself is
// transposed once at construction — a negligible one-time cost.
//
// The output is bit-exact with tensor::Conv1D applied to the materialised,
// transposed window (same accumulation order), which the tests assert.
#pragma once

#include "core/sliding_window.h"
#include "tensor/ops.h"

namespace mlsim::core {

class CustomConvLayer {
 public:
  /// Borrows the dense layer's weights (the model stays the single source
  /// of truth; pruning/quantisation apply to both paths automatically).
  explicit CustomConvLayer(const tensor::Conv1D& conv);

  /// Compute the first-layer pre-activation (1, C_out, window_rows)
  /// directly from the queue. `window_rows` = context_length + 1.
  tensor::Tensor forward(const SlidingWindowQueue& queue);

  /// Output columns actually computed by the last forward (the rest were
  /// bias-only padding columns) — the Fig. 14 padding-avoidance statistic.
  std::size_t last_computed_columns() const { return computed_cols_; }

 private:
  const tensor::Conv1D& conv_;
  std::size_t computed_cols_ = 0;
};

}  // namespace mlsim::core
