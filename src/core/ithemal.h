// Ithemal-class baseline: hierarchical basic-block throughput prediction
// (paper §II-B, §VII-B).
//
// Ithemal predicts the throughput (cycles) of a static basic block with
// hierarchical sequential LSTMs: a token layer embeds each instruction, an
// instruction-level LSTM folds the block into an embedding, and a linear
// layer predicts throughput. It assumes perfect memory and cannot simulate
// whole programs — which is why the paper uses it only as a baseline and as
// the generalisation case study (Fig. 22): the same data-movement and
// batching optimisations apply to its GPU offload.
//
// Simplification vs. the original: the token-level LSTM over textual
// operand tokens is replaced by a learned linear embedding of the 50-entry
// feature vector (our instructions are already numerically tokenised).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "device/gpu_spec.h"
#include "tensor/lstm.h"
#include "tensor/optim.h"
#include "trace/trace.h"

namespace mlsim::core {

/// A dynamic basic block: contiguous trace rows plus its ground-truth cost.
struct BasicBlock {
  std::size_t begin = 0;
  std::size_t length = 0;
  std::uint32_t cycles = 0;  // sum of ground-truth fetch latencies
};

/// Split a labeled trace into basic blocks (block-entry feature delimits).
std::vector<BasicBlock> extract_basic_blocks(const trace::EncodedTrace& labeled,
                                             std::size_t max_len = 16);

struct IthemalConfig {
  std::size_t embed = 32;
  std::size_t hidden = 48;
  std::size_t max_block_len = 16;
  std::size_t epochs = 2;
  std::size_t batch_size = 16;
  float lr = 2e-3f;
  std::uint64_t seed = 7;
};

class IthemalModel {
 public:
  explicit IthemalModel(const IthemalConfig& cfg, std::uint64_t seed = 7);

  /// Predict cycles for a batch of blocks (padded to the longest block in
  /// the batch). Returns one cycle count per block.
  std::vector<double> predict(const trace::EncodedTrace& tr,
                              const std::vector<BasicBlock>& blocks,
                              const std::vector<float>& scales);

  /// One training step over a batch; returns the batch loss.
  float train_step(const trace::EncodedTrace& tr,
                   const std::vector<BasicBlock>& blocks,
                   const std::vector<float>& scales, float lr);

  const IthemalConfig& config() const { return cfg_; }

  /// FLOPs to process one block of `len` instructions (drives Fig. 22's
  /// modeled throughput).
  std::size_t flops_per_block(std::size_t len) const;

 private:
  tensor::Tensor embed_blocks(const trace::EncodedTrace& tr,
                              const std::vector<BasicBlock>& blocks,
                              const std::vector<float>& scales,
                              std::size_t max_len);

  IthemalConfig cfg_;
  std::unique_ptr<tensor::Linear> embed_;
  std::unique_ptr<tensor::ReLU> relu_;
  std::unique_ptr<tensor::Lstm> lstm_;
  std::unique_ptr<tensor::Linear> head_;
  std::unique_ptr<tensor::Adam> optim_;
};

struct IthemalTrainReport {
  float final_loss = 0.0f;
  double mape_percent = 0.0;  // block-cycle error on a holdout slice
  std::size_t blocks = 0;
};

/// Train on blocks from the training traces (holding out a tail for eval).
IthemalModel train_ithemal(const std::vector<const trace::EncodedTrace*>& traces,
                           const IthemalConfig& cfg,
                           std::vector<float>* scales_out,
                           IthemalTrainReport* report = nullptr);

/// Fig. 22 time model: per-block simulated time of the original sequential
/// Ithemal offload vs. the optimised (batched, custom-layer, pipelined)
/// version, per instruction.
struct IthemalThroughput {
  double sequential_us_per_inst = 0.0;
  double optimized_us_per_inst = 0.0;
};
IthemalThroughput model_ithemal_throughput(const IthemalModel& model,
                                           const device::GpuSpec& gpu,
                                           std::size_t avg_block_len,
                                           std::size_t batch_blocks);

}  // namespace mlsim::core
