// Shared result types for all simulator engines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/window.h"

namespace mlsim::core {

/// Per-instruction average time of each pipeline step (µs).
struct StepProfile {
  double queue_push = 0.0;       // copy 1: trace row -> queue
  double input_construct = 0.0;  // copy 2 / device window construction
  double h2d = 0.0;              // copy 3: host -> device transfer
  double transpose = 0.0;        // copy 4: transpose kernel
  double inference = 0.0;
  double update_retire = 0.0;

  double total() const {
    return queue_push + input_construct + h2d + transpose + inference +
           update_retire;
  }
};

struct SimOutput {
  std::uint64_t cycles = 0;  // final Clock including drain
  std::size_t instructions = 0;
  double sim_time_us = 0.0;  // simulated wall time of the simulator itself
  StepProfile profile;       // per-instruction averages
  double avg_context_occupancy = 0.0;  // mean valid fraction of the window

  double cpi() const {
    return instructions
               ? static_cast<double>(cycles) / static_cast<double>(instructions)
               : 0.0;
  }
  double mips() const {
    return sim_time_us > 0.0 ? static_cast<double>(instructions) / sim_time_us : 0.0;
  }

  /// Predicted per-instruction latencies (filled when requested).
  std::vector<LatencyPrediction> predictions;
  /// Context-instruction count seen by each prediction (filled when
  /// requested; drives the parallel-error diagnostics and correction).
  std::vector<std::uint16_t> context_counts;
};

}  // namespace mlsim::core
