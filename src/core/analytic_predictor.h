// Analytic context-sensitive latency predictor.
//
// A deterministic stand-in for the trained network that mirrors the OoO
// machine's latency algebra using only window-visible information: the
// current instruction's static/dynamic features plus the context rows'
// registers and remaining-latency entries. Like the CNN it *depends on the
// context*, so sub-trace partitioning perturbs its predictions — this is
// the property the parallel-simulation error study needs — while being
// orders of magnitude faster than CNN inference, which lets the error
// experiments run at paper-like instruction counts on this machine.
#pragma once

#include "core/predictor.h"
#include "uarch/config.h"

namespace mlsim::core {

class AnalyticPredictor final : public LatencyPredictor {
 public:
  explicit AnalyticPredictor(const uarch::MachineConfig& machine = {});

  LatencyPrediction predict(const WindowView& window,
                            std::uint64_t global_index) override;
  LatencyPrediction predict_lazy(const LazyWindow& window) override;

  std::size_t flops_per_window(std::size_t /*rows*/) const override { return 0; }

 private:
  uarch::MachineConfig cfg_;
};

}  // namespace mlsim::core
