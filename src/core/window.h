// Inference-window conventions shared by every predictor and simulator.
//
// The predictor input is a window of (context_length + 1) feature rows:
//   row 0            — the to-be-predicted instruction,
//   rows 1..ctx      — in-flight context instructions, newest to oldest,
//   remaining rows   — zero padding.
// Each row is trace::kNumFeatures int32 values. Feature slot
// kCtxLatFeature (the last one, reserved by the encoder) carries the
// context instruction's *remaining latency* — cycles until it retires
// relative to the current Clock — the "latency entry" the paper updates in
// the first column of the input (Fig. 1 step 4). It is 0 for row 0.
#pragma once

#include <cstdint>
#include <span>

#include "trace/encoder.h"

namespace mlsim::core {

/// Feature slot used for the dynamic context-latency entry.
constexpr std::size_t kCtxLatFeature = trace::kNumFeatures - 1;

/// Remaining-latency values are clamped to this bound before being placed
/// in the window (keeps the feature scale bounded for the ML model).
constexpr std::int32_t kMaxLatencyEntry = 255;

/// Default context length (paper: input window of 111 context instructions
/// plus the current one for the Table II machine).
constexpr std::size_t kDefaultContextLength = 111;

/// A window is a row-major [rows x kNumFeatures] block of int32.
struct WindowView {
  const std::int32_t* data = nullptr;
  std::size_t rows = 0;  // context_length + 1

  std::span<const std::int32_t> row(std::size_t r) const {
    return {data + r * trace::kNumFeatures, trace::kNumFeatures};
  }
};

/// Three predicted latencies (the model outputs).
struct LatencyPrediction {
  std::uint32_t fetch = 0;
  std::uint32_t exec = 0;
  std::uint32_t store = 0;

  bool operator==(const LatencyPrediction&) const = default;
};

}  // namespace mlsim::core
