// Asynchronous prediction submission — the engine side of cross-request
// continuous batching (docs/BATCHING.md).
//
// A PredictSink decouples *where a window is produced* (an engine loop
// walking one request's trace) from *where inference runs* (a scheduler
// coalescing windows from many concurrent requests into large tensor
// batches against a shared predictor). Engines that are handed a sink
// submit each window instead of calling LatencyPredictor::predict()
// directly, then block on the returned sequence number:
//
//   const std::uint64_t seq = sink->submit(window, rows, i);
//   const LatencyPrediction p = sink->wait(seq);
//
// Contract:
//   - submit() copies the window and never blocks on inference; when the
//     shared queue is at capacity it throws QueueFullError (bounded
//     backpressure, mapped to a typed rejection by the service) instead of
//     stalling the engine thread.
//   - Sequence numbers are assigned in submission order and are the
//     *per-request* total order: wait(seq) returns the prediction for
//     exactly that submission no matter how the scheduler interleaved it
//     into batches, so a request's predictions are consumed in stable
//     sequence order and its output is bit-identical to an unbatched run.
//   - wait() throws CancelledError once the request's CancelToken is
//     cancelled (deadline, manual cancel, shutdown) — queued items of a
//     cancelled request are dropped, never predicted.
//
// The shipped implementation is service::BatchScheduler::Channel; this
// interface lives in core so the engines stay free of a service dependency.
#pragma once

#include <cstdint>

#include "core/window.h"

namespace mlsim::core {

class PredictSink {
 public:
  virtual ~PredictSink() = default;

  /// Enqueue one window (rows x trace::kNumFeatures, copied) for inference.
  /// Returns the sequence number identifying this submission within the
  /// request. Throws QueueFullError when the shared queue is at capacity.
  virtual std::uint64_t submit(const std::int32_t* window, std::size_t rows,
                               std::uint64_t global_index) = 0;

  /// Block until the prediction for `seq` is available and return it.
  /// Results arriving out of order are held until their turn; throws
  /// CancelledError if the request is cancelled while waiting.
  virtual LatencyPrediction wait(std::uint64_t seq) = 0;

  /// Convenience for the engines' submit-then-consume pattern.
  LatencyPrediction predict_via(const std::int32_t* window, std::size_t rows,
                                std::uint64_t global_index) {
    return wait(submit(window, rows, global_index));
  }
};

}  // namespace mlsim::core
