// Latency-predictor interface plus the oracle reference implementation.
//
// Implementations:
//   - AnalyticPredictor (analytic_predictor.h): deterministic, context-
//     sensitive model mirroring the OoO machine's latency algebra; fast
//     enough for multi-million-instruction parallel-error studies.
//   - CnnPredictor (cnn_predictor.h): the trained SimNet 3C+2F network.
//   - OraclePredictor (below): replays ground-truth labels by instruction
//     index; context-independent by construction, so it is the negative
//     control for parallel-simulation error (partitioning must produce
//     exactly zero error with it).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/window.h"
#include "device/gpu_spec.h"
#include "trace/trace.h"

namespace mlsim::core {

/// Zero-copy window view over a trace plus a ring of retire clocks.
///
/// Context row r of instruction i is trace row i-r; a row is in flight iff
/// its retire clock (ring) is > Clock and i-r is within the available
/// history (>= oldest). materialize() produces exactly the window
/// InstructionQueue::push_and_build builds, so predictors without a lazy
/// fast path see identical inputs.
class LazyWindow {
 public:
  LazyWindow(const trace::EncodedTrace& tr, std::uint64_t current,
             std::uint64_t oldest, const std::uint64_t* retire_ring,
             std::size_t ring_capacity, std::uint64_t clock, std::size_t rows);

  std::size_t rows() const { return rows_; }
  std::uint64_t current_index() const { return current_; }

  /// Remaining latency of context row r (>=1); 0 if padding or retired.
  std::int32_t remaining(std::size_t r) const;

  /// Static features of row r (r = 0 is the current instruction). Only
  /// valid for r == 0 or rows with remaining(r) > 0.
  std::span<const std::int32_t> features(std::size_t r) const {
    return trace_.features(current_ - r);
  }

  /// Build the dense window (rows x kNumFeatures, zero-padded, latency
  /// entries injected).
  void materialize(std::vector<std::int32_t>& out) const;

  /// Same, into caller-provided storage of rows()*kNumFeatures entries
  /// (used by the lockstep engine to fill batch buffers in place).
  void materialize_to(std::int32_t* out) const;

  /// In-flight population among the context rows.
  std::size_t context_count() const;

 private:
  const trace::EncodedTrace& trace_;
  std::uint64_t current_;
  std::uint64_t oldest_;
  const std::uint64_t* ring_;
  std::size_t ring_cap_;
  std::uint64_t clock_;
  std::size_t rows_;
};

class LatencyPredictor {
 public:
  virtual ~LatencyPredictor() = default;

  /// Predict the three latencies of the instruction in window row 0.
  /// `global_index` is the instruction's index in the full trace (used only
  /// by the oracle; ML predictors ignore it).
  virtual LatencyPrediction predict(const WindowView& window,
                                    std::uint64_t global_index) = 0;

  /// Batched prediction (default: loop). Batch layout: `batch` consecutive
  /// windows of `rows` rows each.
  virtual void predict_batch(const std::int32_t* windows, std::size_t batch,
                             std::size_t rows, const std::uint64_t* global_indices,
                             LatencyPrediction* out);

  /// Lazy-window prediction. The default materialises the window and calls
  /// predict(); predictors that can read the queue in place (the analytic
  /// model — and, on real hardware, the custom convolution path) override
  /// this to skip the copy.
  virtual LatencyPrediction predict_lazy(const LazyWindow& window);

  /// FLOPs per single-window inference (drives the device cost model;
  /// 0 for non-neural predictors).
  virtual std::size_t flops_per_window(std::size_t rows) const = 0;

  /// Which device inference engine this predictor models.
  virtual device::Engine engine() const { return device::Engine::kTensorRT; }

 private:
  std::vector<std::int32_t> lazy_buf_;  // scratch for the default lazy path
};

/// Replays ground-truth labels from a labeled trace.
class OraclePredictor final : public LatencyPredictor {
 public:
  explicit OraclePredictor(const trace::EncodedTrace& labeled);

  LatencyPrediction predict(const WindowView& window,
                            std::uint64_t global_index) override;
  LatencyPrediction predict_lazy(const LazyWindow& window) override {
    return predict(WindowView{}, window.current_index());
  }
  std::size_t flops_per_window(std::size_t /*rows*/) const override { return 0; }

 private:
  const trace::EncodedTrace& trace_;
};

}  // namespace mlsim::core
