// Sliding-window instruction queue (paper §IV-A).
//
// One contiguous device-resident block of (context_length+1) + N feature
// rows. A window of context_length+1 rows slides through it so the current
// instruction is always the window's first row; batches of N incoming
// instructions are copied in *reversed* order (newest at the lowest index)
// so sliding left by one row advances to the next instruction. When the
// window reaches index 0, live rows are compacted to the tail and the next
// batch is staged — amortising the host->device copy over N instructions.
//
// Retire clocks live in a dedicated vector (the paper's shared-memory
// latency vector): the static feature rows are never rewritten after
// staging; windows materialised for inference inject the remaining-latency
// entries and zero retired rows, exactly matching InstructionQueue.
#pragma once

#include <cstdint>
#include <vector>

#include "core/window.h"
#include "device/device.h"

namespace mlsim::core {

class SlidingWindowQueue {
 public:
  /// `batch_n` is N, the number of future instructions staged per copy.
  /// `account_costs` controls whether refills advance the device timeline
  /// (disabled when an ablation mode charges its own data-path costs).
  SlidingWindowQueue(std::size_t context_length, std::size_t batch_n,
                     device::Device& dev, device::StreamId copy_stream,
                     bool account_costs = true);

  std::size_t context_length() const { return ctx_len_; }
  std::size_t batch_n() const { return batch_n_; }
  std::uint64_t clock() const { return clock_; }
  std::uint64_t last_retire_clock() const { return last_retire_; }

  /// True when all staged instructions have been consumed and a new batch
  /// must be staged before the next step.
  bool needs_refill() const { return remaining_ == 0; }

  /// Stage up to `count` rows from `rows` (row-major, kNumFeatures each)
  /// into the queue: compacts live rows to the tail, then copies the batch
  /// reversed. Returns the number staged (min(count, batch_n)).
  std::size_t refill(const std::int32_t* rows, std::size_t count);

  /// Materialise the inference window for the current instruction into
  /// `out` (ctx_len+1 rows) and account the construction. Identical output
  /// to InstructionQueue::push_and_build.
  void build_window(std::vector<std::int32_t>& out);

  /// In-flight population among the context candidates.
  std::size_t context_count() const;

  /// Record the prediction for the current instruction, advance the Clock
  /// and slide the window by one.
  void apply_prediction(const LatencyPrediction& p);

  void reset();
  void set_clock(std::uint64_t clock) { clock_ = clock; }
  std::uint64_t total_cycles_with_drain() const;

  /// Raw queue storage (device buffer) — exposed for the custom convolution
  /// layer, which consumes the window in place.
  const device::DeviceBuffer<std::int32_t>& storage() const { return buf_; }
  /// Window offset (in rows) of the current instruction within storage().
  std::size_t window_pos() const { return pos_; }
  /// Remaining-latency entry for storage row `r` (0 if retired/padding).
  std::int32_t remaining_latency(std::size_t r) const;

 private:
  std::size_t capacity_rows() const { return ctx_len_ + 1 + batch_n_; }

  std::size_t ctx_len_;
  std::size_t batch_n_;
  device::Device& dev_;
  device::StreamId copy_stream_;
  bool account_costs_;

  device::DeviceBuffer<std::int32_t> buf_;      // capacity_rows x kNumFeatures
  std::vector<std::uint64_t> retire_clock_;     // per storage row
  std::vector<std::uint8_t> valid_;             // per storage row: holds an inst
  std::size_t pos_ = 0;        // current-instruction row (window start)
  std::size_t remaining_ = 0;  // staged instructions not yet simulated
  std::uint64_t clock_ = 0;
  std::uint64_t last_retire_ = 0;
  bool pending_ = false;
  bool primed_ = false;  // first refill done
};

}  // namespace mlsim::core
