#include "core/parallel_sim.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "obs/obs.h"

namespace mlsim::core {

ParallelSimulator::ParallelSimulator(LatencyPredictor& predictor,
                                     ParallelSimOptions opts)
    : predictor_(predictor), opts_(std::move(opts)) {
  check(opts_.num_subtraces > 0, "need at least one sub-trace");
  check(opts_.num_gpus > 0, "need at least one GPU");
  check(opts_.context_length > 0, "context length must be positive");
}

double ParallelSimulator::cpi_error_percent(double sequential_cpi,
                                            double parallel_cpi) {
  return signed_percent_error(sequential_cpi, parallel_cpi);
}

std::vector<std::size_t> partition_boundaries(std::size_t n, std::size_t parts) {
  check(parts > 0 && parts <= n, "invalid partition count");
  std::vector<std::size_t> out(parts + 1);
  const std::size_t base = n / parts, rem = n % parts;
  std::size_t pos = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    out[p] = pos;
    pos += base + (p < rem ? 1 : 0);
  }
  out[parts] = pos;
  return out;
}

double model_parallel_time_us(const ParallelSimOptions& opts,
                              const std::vector<std::size_t>& partition_steps,
                              std::size_t flops_per_window,
                              double avg_context_occupancy) {
  const CostModel& cm = opts.costs;
  const std::size_t P = partition_steps.size();
  const std::size_t G = std::min(opts.num_gpus, P);
  const std::size_t per_gpu = (P + G - 1) / G;
  const std::size_t rows = opts.context_length + 1;

  double slowest = 0.0;
  for (std::size_t g = 0; g < G; ++g) {
    const std::size_t p_lo = g * per_gpu;
    const std::size_t p_hi = std::min(P, p_lo + per_gpu);
    if (p_lo >= p_hi) continue;
    const std::size_t batch = p_hi - p_lo;
    std::size_t steps = 0;
    for (std::size_t p = p_lo; p < p_hi; ++p) {
      steps = std::max(steps, partition_steps[p]);
    }
    // One fused kernel set per step covers all resident sub-traces, so the
    // launch overheads amortise across the batch; the per-window work
    // (strided gather, H2D row staging, update/retire) stays per-partition.
    const double launches = 3.0 * cm.gpu.launch_us;
    const double per_window =
        cm.custom_conv_gather_us +
        (cm.h2d_batched_row_us(opts.batch_n) -
         cm.gpu.h2d_lat_us / static_cast<double>(opts.batch_n)) +
        cm.gpu_update_retire_us;
    const double per_step_us =
        launches + static_cast<double>(batch) * per_window +
        cm.inference_us(opts.engine, flops_per_window, batch,
                        /*custom_conv=*/true,
                        avg_context_occupancy + 1.0 / static_cast<double>(rows));
    slowest = std::max(slowest, static_cast<double>(steps) * per_step_us);
  }
  return slowest + device::allreduce_time_us(G, per_gpu * sizeof(std::uint64_t));
}

ParallelSimResult ParallelSimulator::run(const trace::EncodedTrace& trace) {
  ParallelSimResult res;
  const std::size_t n = trace.size();
  res.instructions = n;
  if (n == 0) return res;

  MLSIM_TRACE_SPAN("parallel_sim/run");

  const std::size_t P = std::min(opts_.num_subtraces, n);
  const std::size_t G = std::min(opts_.num_gpus, P);
  const std::size_t per_gpu = (P + G - 1) / G;  // partitions per GPU (block)
  const std::size_t rows = opts_.context_length + 1;
  const std::size_t cap = opts_.context_length;  // retire-ring capacity

  res.boundaries = partition_boundaries(n, P);
  auto gpu_of = [&](std::size_t p) { return p / per_gpu; };

  std::vector<std::uint32_t> fetch_lat(n, 0);
  if (opts_.record_predictions) res.predictions.resize(n);
  if (opts_.record_context_counts) res.context_counts.resize(n, 0);

  // Initial context counts for partition heads (correction's termination
  // reference).
  const bool correcting = opts_.post_error_correction;
  std::vector<std::vector<std::uint16_t>> head_counts;
  if (correcting) head_counts.resize(P);

  std::vector<std::uint64_t> partition_cycles(P, 0);
  std::vector<std::size_t> partition_steps(P, 0);  // incl. warmup + corrections
  std::vector<std::uint64_t> ring(cap, 0);
  std::vector<std::uint64_t> prev_ring;  // end-of-previous-partition snapshot
  std::uint64_t prev_clock = 0;
  std::size_t prev_oldest = 0;

  RunningStats occupancy;  // sampled context occupancy (drives the cost model)

  for (std::size_t p = 0; p < P; ++p) {
    MLSIM_TRACE_SPAN("parallel_sim/partition");
    MLSIM_HIST_TIMER(obs::names::kParSimPartitionNs);
    const std::size_t b = res.boundaries[p], e = res.boundaries[p + 1];
    const std::size_t h_begin = b >= opts_.warmup ? b - opts_.warmup : 0;
    res.warmup_instructions += b - h_begin;

    std::uint64_t clock = 0;
    std::uint64_t clock_at_body = 0;
    const std::size_t head_limit =
        correcting ? std::min(opts_.correction_limit + 1, e - b) : 0;
    if (correcting) head_counts[p].reserve(head_limit);

    for (std::size_t i = h_begin; i < e; ++i) {
      if (i == b) clock_at_body = clock;
      const LazyWindow lw(trace, i, h_begin, ring.data(), cap, clock, rows);

      const bool want_count =
          (opts_.record_context_counts && i >= b) ||
          (correcting && i >= b && i - b < head_limit) || ((i & 63) == 0);
      std::size_t cnt = 0;
      if (want_count) {
        cnt = lw.context_count();
        if ((i & 63) == 0) {
          occupancy.add(static_cast<double>(cnt) /
                        static_cast<double>(opts_.context_length));
        }
        if (opts_.record_context_counts && i >= b) {
          res.context_counts[i] = static_cast<std::uint16_t>(cnt);
        }
        if (correcting && i >= b && i - b < head_limit) {
          head_counts[p].push_back(static_cast<std::uint16_t>(cnt));
        }
      }

      const LatencyPrediction pr = predictor_.predict_lazy(lw);
      ring[i % cap] = clock + pr.fetch + pr.exec + pr.store;
      clock += pr.fetch;
      if (i >= b) {
        fetch_lat[i] = pr.fetch;
        if (opts_.record_predictions) res.predictions[i] = pr;
      }
    }
    partition_cycles[p] = clock - clock_at_body;
    partition_steps[p] = e - h_begin;

    // ---- Post-error correction of this partition's head -------------------
    if (correcting && p > 0 && gpu_of(p) == gpu_of(p - 1) && !prev_ring.empty()) {
      MLSIM_TRACE_SPAN("parallel_sim/correction");
      std::size_t corrected = 0;
      std::uint64_t cclock = prev_clock;
      for (std::size_t j = 0; j < head_limit && b + j < e; ++j) {
        const std::size_t i = b + j;
        const LazyWindow lw(trace, i, prev_oldest, prev_ring.data(), cap, cclock,
                            rows);
        const std::size_t cnt = lw.context_count();
        if (cnt == head_counts[p][j]) break;  // contexts converged
        const LatencyPrediction pr = predictor_.predict_lazy(lw);
        // Replace the head prediction; keep the partition totals consistent.
        partition_cycles[p] += pr.fetch;
        partition_cycles[p] -= fetch_lat[i];
        fetch_lat[i] = pr.fetch;
        if (opts_.record_predictions) res.predictions[i] = pr;
        if (opts_.record_context_counts) {
          res.context_counts[i] = static_cast<std::uint16_t>(cnt);
        }
        prev_ring[i % cap] = cclock + pr.fetch + pr.exec + pr.store;
        cclock += pr.fetch;
        ++corrected;
      }
      res.corrected_instructions += corrected;
      partition_steps[p - 1] += corrected;  // the *previous* partition re-simulates
    }

    // Snapshot this partition's end state for correcting the next one.
    if (correcting) {
      prev_ring = ring;
      prev_clock = clock;
      prev_oldest = h_begin;
    }
    MLSIM_COUNTER_ADD(obs::names::kParSimPartitionsDone, 1);
  }

  for (std::size_t p = 0; p < P; ++p) res.total_cycles += partition_cycles[p];

  // ---- Simulated-time model (lockstep batched inference per GPU) ------------
  std::size_t flops = predictor_.flops_per_window(rows);
  if (flops == 0) flops = opts_.assumed_flops_per_window;
  if (flops == 0) flops = simnet3c2f_flops(rows);
  const double occ = occupancy.count() ? occupancy.mean() : 0.3;
  res.sim_time_us = model_parallel_time_us(opts_, partition_steps, flops, occ);
  if (obs::enabled()) {
    MLSIM_COUNTER_ADD(obs::names::kParSimInstructions, n);
    MLSIM_COUNTER_ADD(obs::names::kParSimWarmupInstructions,
                      res.warmup_instructions);
    MLSIM_COUNTER_ADD(obs::names::kParSimCorrectedInstructions,
                      res.corrected_instructions);
    // Mean valid fraction of the lockstep batch window — what the modeled
    // per-GPU batched inference actually occupies.
    MLSIM_GAUGE_SET(obs::names::kParSimBatchOccupancy, occ);
  }
  return res;
}

}  // namespace mlsim::core
