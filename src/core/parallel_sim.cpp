#include "core/parallel_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "core/checkpoint.h"
#include "core/shard.h"
#include "obs/obs.h"

namespace mlsim::core {

ParallelSimulator::ParallelSimulator(LatencyPredictor& predictor,
                                     ParallelSimOptions opts)
    : predictor_(predictor), opts_(std::move(opts)) {
  check(opts_.num_subtraces > 0, "need at least one sub-trace");
  check(opts_.num_gpus > 0, "need at least one GPU");
  check(opts_.context_length > 0, "context length must be positive");
  check(opts_.retry_backoff_us >= 0.0, "retry backoff must be non-negative");
  check(!opts_.resume || !opts_.checkpoint_path.empty(),
        "resume requires a checkpoint path");
}

double ParallelSimulator::cpi_error_percent(double sequential_cpi,
                                            double parallel_cpi) {
  return signed_percent_error(sequential_cpi, parallel_cpi);
}

std::vector<std::size_t> partition_boundaries(std::size_t n, std::size_t parts) {
  check(parts > 0 && parts <= n, "invalid partition count");
  std::vector<std::size_t> out(parts + 1);
  const std::size_t base = n / parts, rem = n % parts;
  std::size_t pos = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    out[p] = pos;
    pos += base + (p < rem ? 1 : 0);
  }
  out[parts] = pos;
  return out;
}

double model_parallel_time_us(const ParallelSimOptions& opts,
                              const std::vector<std::size_t>& partition_steps,
                              std::size_t flops_per_window,
                              double avg_context_occupancy,
                              const ParallelTimePenalties& penalties) {
  const CostModel& cm = opts.costs;
  const std::size_t P = partition_steps.size();
  // Killed device slots drop out of the pool; their partitions requeue onto
  // the survivors, so the per-GPU resident-batch and step counts grow.
  const std::size_t G_full = std::min(opts.num_gpus, P);
  const std::size_t G =
      G_full - std::min(penalties.lost_devices, G_full - 1);
  const std::size_t per_gpu = (P + G - 1) / G;
  const std::size_t rows = opts.context_length + 1;

  double slowest = 0.0;
  for (std::size_t g = 0; g < G; ++g) {
    const std::size_t p_lo = g * per_gpu;
    const std::size_t p_hi = std::min(P, p_lo + per_gpu);
    if (p_lo >= p_hi) continue;
    const std::size_t batch = p_hi - p_lo;
    std::size_t steps = 0;
    for (std::size_t p = p_lo; p < p_hi; ++p) {
      steps = std::max(steps, partition_steps[p]);
    }
    // One fused kernel set per step covers all resident sub-traces, so the
    // launch overheads amortise across the batch; the per-window work
    // (strided gather, H2D row staging, update/retire) stays per-partition.
    const double launches = 3.0 * cm.gpu.launch_us;
    const double per_window =
        cm.custom_conv_gather_us +
        (cm.h2d_batched_row_us(opts.batch_n) -
         cm.gpu.h2d_lat_us / static_cast<double>(opts.batch_n)) +
        cm.gpu_update_retire_us;
    const double per_step_us =
        launches + static_cast<double>(batch) * per_window +
        cm.inference_us(opts.engine, flops_per_window, batch,
                        /*custom_conv=*/true,
                        avg_context_occupancy + 1.0 / static_cast<double>(rows));
    slowest = std::max(slowest, static_cast<double>(steps) * per_step_us);
  }
  return slowest + penalties.backoff_us +
         device::allreduce_time_us(G, per_gpu * sizeof(std::uint64_t));
}

ParallelSimResult ParallelSimulator::run(const trace::EncodedTrace& trace) {
  ParallelSimResult res;
  const std::size_t n = trace.size();
  res.instructions = n;
  if (n == 0) return res;

  MLSIM_TRACE_SPAN("parallel_sim/run");

  const ShardPlan plan = ShardPlan::make(n, opts_);
  const std::size_t P = plan.parts;
  const std::size_t G = plan.gpus;
  const std::size_t cap = opts_.context_length;  // retire-ring capacity
  res.boundaries = plan.boundaries;

  ShardEngine engine(predictor_, trace, opts_, plan);
  std::size_t start_p = 0;

  const std::uint64_t fp = run_fingerprint(trace, opts_, P);
  const bool checkpointing = !opts_.checkpoint_path.empty();

  // ---- resume ---------------------------------------------------------------
  if (checkpointing && opts_.resume) {
    ParallelCheckpoint ck;
    bool have_checkpoint = false;
    try {
      have_checkpoint = load_checkpoint(opts_.checkpoint_path, ck);
      if (have_checkpoint) {
        // Validate everything before restoring any state, so lenient mode
        // can fall back to a pristine clean start.
        check(ck.fingerprint == fp,
              "checkpoint was written by a different trace/options: " +
                  opts_.checkpoint_path.string());
        check(ck.num_partitions == P && ck.ring_capacity == cap &&
                  ck.gpu_lost.size() == G,
              "checkpoint shape mismatch: " + opts_.checkpoint_path.string());
        const std::size_t prefix = res.boundaries[ck.next_partition];
        if (opts_.record_predictions) {
          check(ck.predictions.size() == 3 * prefix,
                "checkpoint prediction prefix mismatch: " +
                    opts_.checkpoint_path.string());
        }
        if (opts_.record_context_counts) {
          check(ck.context_counts.size() == prefix,
                "checkpoint context-count prefix mismatch: " +
                    opts_.checkpoint_path.string());
        }
      }
    } catch (const CheckError& e) {
      if (!opts_.resume_lenient) throw;
      res.resume_error = e.what();
      have_checkpoint = false;
    }
    if (have_checkpoint) {
      start_p = ck.next_partition;
      engine.warmup_instructions = ck.warmup_instructions;
      engine.corrected_instructions = ck.corrected_instructions;
      engine.retries = ck.retries;
      engine.backoff_us = ck.backoff_us;
      engine.occupancy = RunningStats::restore(ck.occupancy);
      engine.prev_clock = ck.prev_clock;
      engine.prev_oldest = ck.prev_oldest;
      engine.prev_ring = ck.prev_ring;
      std::copy(ck.partition_cycles.begin(), ck.partition_cycles.end(),
                engine.partition_cycles.begin());
      for (std::size_t p = 0; p < P; ++p) {
        engine.partition_steps[p] = ck.partition_steps[p];
        engine.partition_wasted[p] = ck.partition_wasted[p];
        engine.final_attempt[p] = ck.final_attempt[p];
      }
      for (const std::uint64_t p : ck.failed_partitions) {
        engine.failed[p] = 1;
        engine.failed_list.push_back(p);
      }
      for (const std::uint64_t p : ck.degraded_partitions) {
        engine.degraded[p] = 1;
        engine.degraded_list.push_back(p);
      }
      engine.gpu_lost = ck.gpu_lost;
      const std::size_t prefix = res.boundaries[start_p];
      if (opts_.record_predictions) {
        for (std::size_t i = 0; i < prefix; ++i) {
          engine.predictions[i] = {ck.predictions[3 * i],
                                   ck.predictions[3 * i + 1],
                                   ck.predictions[3 * i + 2]};
        }
      }
      if (opts_.record_context_counts) {
        std::copy(ck.context_counts.begin(), ck.context_counts.end(),
                  engine.context_counts.begin());
      }
      res.resumed = true;
    }
  }

  auto write_checkpoint = [&](std::size_t next_p) {
    ParallelCheckpoint ck;
    ck.fingerprint = fp;
    ck.next_partition = next_p;
    ck.num_partitions = P;
    ck.ring_capacity = cap;
    ck.warmup_instructions = engine.warmup_instructions;
    ck.corrected_instructions = engine.corrected_instructions;
    ck.retries = engine.retries;
    ck.backoff_us = engine.backoff_us;
    ck.occupancy = engine.occupancy.state();
    ck.prev_clock = engine.prev_clock;
    ck.prev_oldest = engine.prev_oldest;
    ck.prev_ring = engine.prev_ring;
    ck.partition_cycles = engine.partition_cycles;
    ck.partition_steps.assign(engine.partition_steps.begin(),
                              engine.partition_steps.end());
    ck.partition_wasted.assign(engine.partition_wasted.begin(),
                               engine.partition_wasted.end());
    ck.final_attempt = engine.final_attempt;
    ck.failed_partitions.assign(engine.failed_list.begin(),
                                engine.failed_list.end());
    ck.degraded_partitions.assign(engine.degraded_list.begin(),
                                  engine.degraded_list.end());
    ck.gpu_lost = engine.gpu_lost;
    const std::size_t prefix = res.boundaries[next_p];
    if (opts_.record_predictions) {
      ck.predictions.reserve(3 * prefix);
      for (std::size_t i = 0; i < prefix; ++i) {
        ck.predictions.push_back(engine.predictions[i].fetch);
        ck.predictions.push_back(engine.predictions[i].exec);
        ck.predictions.push_back(engine.predictions[i].store);
      }
    }
    if (opts_.record_context_counts) {
      ck.context_counts.assign(engine.context_counts.begin(),
                               engine.context_counts.begin() +
                                   static_cast<std::ptrdiff_t>(prefix));
    }
    save_checkpoint(opts_.checkpoint_path, ck);
    MLSIM_COUNTER_ADD(obs::names::kParSimCheckpointWrites, 1);
  };

  const device::FaultInjector* faults =
      (opts_.faults != nullptr && opts_.faults->enabled()) ? opts_.faults
                                                           : nullptr;
  for (std::size_t p = start_p; p < P; ++p) {
    engine.run_partition(p);
    const std::size_t done = p + 1;
    if (checkpointing &&
        (done == P ||
         done % std::max<std::size_t>(1, opts_.checkpoint_interval) == 0)) {
      write_checkpoint(done);
    }
    if (faults != nullptr && faults->dies_after(done)) {
      throw device::InjectedCrash("injected process death after partition " +
                                  std::to_string(p));
    }
  }

  res.warmup_instructions = engine.warmup_instructions;
  res.corrected_instructions = engine.corrected_instructions;
  res.retries = engine.retries;
  res.failed_partitions = engine.failed_list;
  res.degraded_partitions = engine.degraded_list;
  res.predictions = std::move(engine.predictions);
  res.context_counts = std::move(engine.context_counts);

  finalize_parallel_result(opts_, plan, engine.partition_cycles,
                           engine.partition_steps, engine.partition_wasted,
                           engine.final_attempt, engine.gpu_lost,
                           engine.backoff_us, engine.occupancy,
                           predictor_.flops_per_window(opts_.context_length + 1),
                           res);

  // The run completed: a stale checkpoint must not hijack a future run.
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::remove(opts_.checkpoint_path, ec);
  }
  return res;
}

}  // namespace mlsim::core
