#include "core/parallel_sim.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "core/checkpoint.h"
#include "obs/obs.h"

namespace mlsim::core {

namespace {

/// Identity of a (trace, options) pair for checkpoint compatibility: a
/// checkpoint may only be resumed into the exact run that wrote it.
/// `die_after_partition` is deliberately excluded (see device/fault.h) — the
/// resumed run is the same run minus the process death.
std::uint64_t run_fingerprint(const trace::EncodedTrace& tr,
                              const ParallelSimOptions& o, std::size_t parts) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  auto mixd = [&](double d) { mix(std::bit_cast<std::uint64_t>(d)); };
  mix(tr.size());
  for (const char c : tr.benchmark()) mix(static_cast<unsigned char>(c));
  if (tr.size() > 0) {
    for (const std::int32_t v : tr.features(0)) {
      mix(static_cast<std::uint32_t>(v));
    }
    for (const std::int32_t v : tr.features(tr.size() - 1)) {
      mix(static_cast<std::uint32_t>(v));
    }
  }
  mix(parts);
  mix(o.num_gpus);
  mix(o.context_length);
  mix(o.warmup);
  mix(o.post_error_correction ? 1 : 0);
  mix(o.correction_limit);
  mix(o.record_predictions ? 1 : 0);
  mix(o.record_context_counts ? 1 : 0);
  mix(o.anomaly_latency_limit);
  mix(o.max_retries_per_partition);
  mixd(o.retry_backoff_us);
  if (o.faults != nullptr && o.faults->enabled()) {
    const device::FaultOptions& f = o.faults->options();
    mix(f.seed);
    mixd(f.device_kill_rate);
    mixd(f.straggler_rate);
    mixd(f.straggler_slowdown);
    mixd(f.output_corrupt_rate);
  }
  return h;
}

}  // namespace

ParallelSimulator::ParallelSimulator(LatencyPredictor& predictor,
                                     ParallelSimOptions opts)
    : predictor_(predictor), opts_(std::move(opts)) {
  check(opts_.num_subtraces > 0, "need at least one sub-trace");
  check(opts_.num_gpus > 0, "need at least one GPU");
  check(opts_.context_length > 0, "context length must be positive");
  check(opts_.retry_backoff_us >= 0.0, "retry backoff must be non-negative");
  check(!opts_.resume || !opts_.checkpoint_path.empty(),
        "resume requires a checkpoint path");
}

double ParallelSimulator::cpi_error_percent(double sequential_cpi,
                                            double parallel_cpi) {
  return signed_percent_error(sequential_cpi, parallel_cpi);
}

std::vector<std::size_t> partition_boundaries(std::size_t n, std::size_t parts) {
  check(parts > 0 && parts <= n, "invalid partition count");
  std::vector<std::size_t> out(parts + 1);
  const std::size_t base = n / parts, rem = n % parts;
  std::size_t pos = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    out[p] = pos;
    pos += base + (p < rem ? 1 : 0);
  }
  out[parts] = pos;
  return out;
}

double model_parallel_time_us(const ParallelSimOptions& opts,
                              const std::vector<std::size_t>& partition_steps,
                              std::size_t flops_per_window,
                              double avg_context_occupancy,
                              const ParallelTimePenalties& penalties) {
  const CostModel& cm = opts.costs;
  const std::size_t P = partition_steps.size();
  // Killed device slots drop out of the pool; their partitions requeue onto
  // the survivors, so the per-GPU resident-batch and step counts grow.
  const std::size_t G_full = std::min(opts.num_gpus, P);
  const std::size_t G =
      G_full - std::min(penalties.lost_devices, G_full - 1);
  const std::size_t per_gpu = (P + G - 1) / G;
  const std::size_t rows = opts.context_length + 1;

  double slowest = 0.0;
  for (std::size_t g = 0; g < G; ++g) {
    const std::size_t p_lo = g * per_gpu;
    const std::size_t p_hi = std::min(P, p_lo + per_gpu);
    if (p_lo >= p_hi) continue;
    const std::size_t batch = p_hi - p_lo;
    std::size_t steps = 0;
    for (std::size_t p = p_lo; p < p_hi; ++p) {
      steps = std::max(steps, partition_steps[p]);
    }
    // One fused kernel set per step covers all resident sub-traces, so the
    // launch overheads amortise across the batch; the per-window work
    // (strided gather, H2D row staging, update/retire) stays per-partition.
    const double launches = 3.0 * cm.gpu.launch_us;
    const double per_window =
        cm.custom_conv_gather_us +
        (cm.h2d_batched_row_us(opts.batch_n) -
         cm.gpu.h2d_lat_us / static_cast<double>(opts.batch_n)) +
        cm.gpu_update_retire_us;
    const double per_step_us =
        launches + static_cast<double>(batch) * per_window +
        cm.inference_us(opts.engine, flops_per_window, batch,
                        /*custom_conv=*/true,
                        avg_context_occupancy + 1.0 / static_cast<double>(rows));
    slowest = std::max(slowest, static_cast<double>(steps) * per_step_us);
  }
  return slowest + penalties.backoff_us +
         device::allreduce_time_us(G, per_gpu * sizeof(std::uint64_t));
}

ParallelSimResult ParallelSimulator::run(const trace::EncodedTrace& trace) {
  ParallelSimResult res;
  const std::size_t n = trace.size();
  res.instructions = n;
  if (n == 0) return res;

  MLSIM_TRACE_SPAN("parallel_sim/run");

  const std::size_t P = std::min(opts_.num_subtraces, n);
  const std::size_t G = std::min(opts_.num_gpus, P);
  const std::size_t per_gpu = (P + G - 1) / G;  // partitions per GPU (block)
  const std::size_t rows = opts_.context_length + 1;
  const std::size_t cap = opts_.context_length;  // retire-ring capacity

  res.boundaries = partition_boundaries(n, P);
  auto gpu_of = [&](std::size_t p) { return p / per_gpu; };

  const device::FaultInjector* faults =
      (opts_.faults != nullptr && opts_.faults->enabled()) ? opts_.faults
                                                           : nullptr;
  const std::uint32_t limit = opts_.anomaly_latency_limit;

  std::vector<std::uint32_t> fetch_lat(n, 0);
  if (opts_.record_predictions) res.predictions.resize(n);
  if (opts_.record_context_counts) res.context_counts.resize(n, 0);

  // Initial context counts for partition heads (correction's termination
  // reference).
  const bool correcting = opts_.post_error_correction;
  std::vector<std::vector<std::uint16_t>> head_counts;
  if (correcting) head_counts.resize(P);

  std::vector<std::uint64_t> partition_cycles(P, 0);
  std::vector<std::size_t> partition_steps(P, 0);  // incl. warmup + corrections
  std::vector<std::size_t> partition_wasted(P, 0); // burnt by failed attempts
  std::vector<std::uint32_t> final_attempt(P, 0);  // successful attempt index
  std::vector<std::uint8_t> degraded(P, 0);        // running on the fallback
  std::vector<std::uint8_t> failed(P, 0);          // hit by a device kill
  std::vector<std::uint8_t> gpu_lost(G, 0);        // slots killed mid-run
  std::vector<std::uint64_t> ring(cap, 0);
  std::vector<std::uint64_t> prev_ring;  // end-of-previous-partition snapshot
  std::uint64_t prev_clock = 0;
  std::size_t prev_oldest = 0;

  RunningStats occupancy;  // sampled context occupancy (drives the cost model)
  double backoff_us = 0.0;
  std::size_t start_p = 0;

  const std::uint64_t fp = run_fingerprint(trace, opts_, P);
  const bool checkpointing = !opts_.checkpoint_path.empty();

  // ---- resume ---------------------------------------------------------------
  if (checkpointing && opts_.resume) {
    ParallelCheckpoint ck;
    bool have_checkpoint = false;
    try {
      have_checkpoint = load_checkpoint(opts_.checkpoint_path, ck);
      if (have_checkpoint) {
        // Validate everything before restoring any state, so lenient mode
        // can fall back to a pristine clean start.
        check(ck.fingerprint == fp,
              "checkpoint was written by a different trace/options: " +
                  opts_.checkpoint_path.string());
        check(ck.num_partitions == P && ck.ring_capacity == cap &&
                  ck.gpu_lost.size() == G,
              "checkpoint shape mismatch: " + opts_.checkpoint_path.string());
        const std::size_t prefix = res.boundaries[ck.next_partition];
        if (opts_.record_predictions) {
          check(ck.predictions.size() == 3 * prefix,
                "checkpoint prediction prefix mismatch: " +
                    opts_.checkpoint_path.string());
        }
        if (opts_.record_context_counts) {
          check(ck.context_counts.size() == prefix,
                "checkpoint context-count prefix mismatch: " +
                    opts_.checkpoint_path.string());
        }
      }
    } catch (const CheckError& e) {
      if (!opts_.resume_lenient) throw;
      res.resume_error = e.what();
      have_checkpoint = false;
    }
    if (have_checkpoint) {
      start_p = ck.next_partition;
      res.warmup_instructions = ck.warmup_instructions;
      res.corrected_instructions = ck.corrected_instructions;
      res.retries = ck.retries;
      backoff_us = ck.backoff_us;
      occupancy = RunningStats::restore(ck.occupancy);
      prev_clock = ck.prev_clock;
      prev_oldest = ck.prev_oldest;
      prev_ring = ck.prev_ring;
      std::copy(ck.partition_cycles.begin(), ck.partition_cycles.end(),
                partition_cycles.begin());
      for (std::size_t p = 0; p < P; ++p) {
        partition_steps[p] = ck.partition_steps[p];
        partition_wasted[p] = ck.partition_wasted[p];
        final_attempt[p] = ck.final_attempt[p];
      }
      for (const std::uint64_t p : ck.failed_partitions) {
        failed[p] = 1;
        res.failed_partitions.push_back(p);
      }
      for (const std::uint64_t p : ck.degraded_partitions) {
        degraded[p] = 1;
        res.degraded_partitions.push_back(p);
      }
      gpu_lost = ck.gpu_lost;
      const std::size_t prefix = res.boundaries[start_p];
      if (opts_.record_predictions) {
        for (std::size_t i = 0; i < prefix; ++i) {
          res.predictions[i] = {ck.predictions[3 * i], ck.predictions[3 * i + 1],
                                ck.predictions[3 * i + 2]};
        }
      }
      if (opts_.record_context_counts) {
        std::copy(ck.context_counts.begin(), ck.context_counts.end(),
                  res.context_counts.begin());
      }
      res.resumed = true;
    }
  }

  auto write_checkpoint = [&](std::size_t next_p) {
    ParallelCheckpoint ck;
    ck.fingerprint = fp;
    ck.next_partition = next_p;
    ck.num_partitions = P;
    ck.ring_capacity = cap;
    ck.warmup_instructions = res.warmup_instructions;
    ck.corrected_instructions = res.corrected_instructions;
    ck.retries = res.retries;
    ck.backoff_us = backoff_us;
    ck.occupancy = occupancy.state();
    ck.prev_clock = prev_clock;
    ck.prev_oldest = prev_oldest;
    ck.prev_ring = prev_ring;
    ck.partition_cycles = partition_cycles;
    ck.partition_steps.assign(partition_steps.begin(), partition_steps.end());
    ck.partition_wasted.assign(partition_wasted.begin(), partition_wasted.end());
    ck.final_attempt = final_attempt;
    ck.failed_partitions.assign(res.failed_partitions.begin(),
                                res.failed_partitions.end());
    ck.degraded_partitions.assign(res.degraded_partitions.begin(),
                                  res.degraded_partitions.end());
    ck.gpu_lost = gpu_lost;
    const std::size_t prefix = res.boundaries[next_p];
    if (opts_.record_predictions) {
      ck.predictions.reserve(3 * prefix);
      for (std::size_t i = 0; i < prefix; ++i) {
        ck.predictions.push_back(res.predictions[i].fetch);
        ck.predictions.push_back(res.predictions[i].exec);
        ck.predictions.push_back(res.predictions[i].store);
      }
    }
    if (opts_.record_context_counts) {
      ck.context_counts.assign(res.context_counts.begin(),
                               res.context_counts.begin() +
                                   static_cast<std::ptrdiff_t>(prefix));
    }
    save_checkpoint(opts_.checkpoint_path, ck);
    MLSIM_COUNTER_ADD(obs::names::kParSimCheckpointWrites, 1);
  };

  // Charge one exponential-backoff step and consume one unit of the retry
  // budget; throws CheckError once the partition is out of budget.
  auto charge_retry = [&](std::size_t part, std::size_t& attempt,
                          const char* why) {
    check(attempt < opts_.max_retries_per_partition,
          "partition " + std::to_string(part) + " retry budget (" +
              std::to_string(opts_.max_retries_per_partition) +
              ") exhausted; last failure: " + why);
    backoff_us +=
        opts_.retry_backoff_us * std::ldexp(1.0, static_cast<int>(attempt));
    ++res.retries;
    ++attempt;
    MLSIM_COUNTER_ADD(obs::names::kParSimRetries, 1);
  };

  for (std::size_t p = start_p; p < P; ++p) {
    MLSIM_TRACE_SPAN("parallel_sim/partition");
    MLSIM_HIST_TIMER(obs::names::kParSimPartitionNs);
    const std::size_t b = res.boundaries[p], e = res.boundaries[p + 1];
    const std::size_t h_begin = b >= opts_.warmup ? b - opts_.warmup : 0;
    const std::size_t head_limit =
        correcting ? std::min(opts_.correction_limit + 1, e - b) : 0;

    std::uint64_t clock = 0;
    std::size_t attempt = 0;

    for (;;) {  // attempt loop: body + re-warmup until an attempt survives
      // Kill decisions are pure in (partition, attempt), so a doomed attempt
      // is known up front: its results would be discarded anyway, so only
      // the modeled cost of the partial body is charged.
      if (faults != nullptr) {
        if (const auto kp = faults->kill_point(p, attempt)) {
          const std::size_t body = e - h_begin;
          const std::size_t wasted = std::min(
              body, std::max<std::size_t>(
                        1, static_cast<std::size_t>(std::llround(
                               *kp * static_cast<double>(body)))));
          partition_wasted[p] += wasted;
          gpu_lost[gpu_of(p)] = 1;
          if (!failed[p]) {
            failed[p] = 1;
            res.failed_partitions.push_back(p);
          }
          MLSIM_COUNTER_ADD(obs::names::kParSimDeviceKills, 1);
          charge_retry(p, attempt, "device kill");
          continue;  // requeued: next attempt re-warms from h_begin
        }
      }

      res.warmup_instructions += b - h_begin;  // re-warmup is real extra work
      if (correcting) {
        head_counts[p].clear();
        head_counts[p].reserve(head_limit);
      }
      clock = 0;
      std::uint64_t clock_at_body = 0;
      LatencyPredictor& active =
          degraded[p] ? *opts_.fallback : predictor_;
      const bool corrupting = faults != nullptr && !degraded[p] &&
                              faults->options().output_corrupt_rate > 0.0;
      bool anomaly = false;

      for (std::size_t i = h_begin; i < e; ++i) {
        if (opts_.cancel != nullptr) opts_.cancel->check();
        if (i == b) clock_at_body = clock;
        const LazyWindow lw(trace, i, h_begin, ring.data(), cap, clock, rows);

        const bool want_count =
            (opts_.record_context_counts && i >= b) ||
            (correcting && i >= b && i - b < head_limit) || ((i & 63) == 0);
        std::size_t cnt = 0;
        if (want_count) {
          cnt = lw.context_count();
          if ((i & 63) == 0) {
            occupancy.add(static_cast<double>(cnt) /
                          static_cast<double>(opts_.context_length));
          }
          if (opts_.record_context_counts && i >= b) {
            res.context_counts[i] = static_cast<std::uint16_t>(cnt);
          }
          if (correcting && i >= b && i - b < head_limit) {
            head_counts[p].push_back(static_cast<std::uint16_t>(cnt));
          }
        }

        LatencyPrediction pr = active.predict_lazy(lw);
        if (corrupting && faults->corrupts(p, attempt, i)) {
          const device::CorruptLatencies g =
              faults->corrupt_latencies(p, attempt, i);
          pr = {g.fetch, g.exec, g.store};
        }
        if (limit != 0 &&
            (pr.fetch > limit || pr.exec > limit || pr.store > limit)) {
          // Anomalous inference output (a NaN/garbage latency would poison
          // the final Clock gather). Abort the attempt and requeue the
          // partition on the fallback predictor (degraded mode).
          MLSIM_COUNTER_ADD(obs::names::kParSimAnomalies, 1);
          check(!degraded[p], "anomalous prediction from the fallback "
                              "predictor on partition " + std::to_string(p));
          check(opts_.fallback != nullptr,
                "anomalous prediction on partition " + std::to_string(p) +
                    " and no fallback predictor configured");
          partition_wasted[p] += i - h_begin + 1;
          degraded[p] = 1;
          res.degraded_partitions.push_back(p);
          anomaly = true;
          break;
        }
        ring[i % cap] = clock + pr.fetch + pr.exec + pr.store;
        clock += pr.fetch;
        if (i >= b) {
          fetch_lat[i] = pr.fetch;
          if (opts_.record_predictions) res.predictions[i] = pr;
        }
      }
      if (anomaly) {
        charge_retry(p, attempt, "anomalous inference output");
        continue;
      }
      partition_cycles[p] = clock - clock_at_body;
      break;
    }
    final_attempt[p] = static_cast<std::uint32_t>(attempt);
    partition_steps[p] += e - h_begin;

    // ---- Post-error correction of this partition's head -------------------
    if (correcting && p > 0 && gpu_of(p) == gpu_of(p - 1) && !prev_ring.empty()) {
      MLSIM_TRACE_SPAN("parallel_sim/correction");
      // Corrections belong to this partition's predictions, so a degraded
      // partition is corrected by its fallback predictor too.
      LatencyPredictor& corr_pred =
          degraded[p] ? *opts_.fallback : predictor_;
      std::size_t corrected = 0;
      std::uint64_t cclock = prev_clock;
      for (std::size_t j = 0; j < head_limit && b + j < e; ++j) {
        const std::size_t i = b + j;
        const LazyWindow lw(trace, i, prev_oldest, prev_ring.data(), cap, cclock,
                            rows);
        const std::size_t cnt = lw.context_count();
        if (cnt == head_counts[p][j]) break;  // contexts converged
        const LatencyPrediction pr = corr_pred.predict_lazy(lw);
        // Replace the head prediction; keep the partition totals consistent.
        partition_cycles[p] += pr.fetch;
        partition_cycles[p] -= fetch_lat[i];
        fetch_lat[i] = pr.fetch;
        if (opts_.record_predictions) res.predictions[i] = pr;
        if (opts_.record_context_counts) {
          res.context_counts[i] = static_cast<std::uint16_t>(cnt);
        }
        prev_ring[i % cap] = cclock + pr.fetch + pr.exec + pr.store;
        cclock += pr.fetch;
        ++corrected;
      }
      res.corrected_instructions += corrected;
      partition_steps[p - 1] += corrected;  // the *previous* partition re-simulates
    }

    // Snapshot this partition's end state for correcting the next one.
    if (correcting) {
      prev_ring = ring;
      prev_clock = clock;
      prev_oldest = h_begin;
    }
    MLSIM_COUNTER_ADD(obs::names::kParSimPartitionsDone, 1);

    const std::size_t done = p + 1;
    if (checkpointing &&
        (done == P ||
         done % std::max<std::size_t>(1, opts_.checkpoint_interval) == 0)) {
      write_checkpoint(done);
    }
    if (faults != nullptr && faults->dies_after(done)) {
      throw device::InjectedCrash("injected process death after partition " +
                                  std::to_string(p));
    }
  }

  for (std::size_t p = 0; p < P; ++p) res.total_cycles += partition_cycles[p];

  // ---- Simulated-time model (lockstep batched inference per GPU) ------------
  // Stragglers stretch a partition's successful pass; steps burnt by killed
  // or anomaly-aborted attempts add on top.
  std::vector<std::size_t> modeled_steps(P);
  for (std::size_t p = 0; p < P; ++p) {
    const double f =
        faults != nullptr ? faults->straggler_factor(p, final_attempt[p]) : 1.0;
    modeled_steps[p] =
        static_cast<std::size_t>(std::llround(
            static_cast<double>(partition_steps[p]) * f)) +
        partition_wasted[p];
  }
  ParallelTimePenalties penalties;
  for (const std::uint8_t lost : gpu_lost) penalties.lost_devices += lost;
  // At least one device always survives to drain the requeued partitions.
  penalties.lost_devices = std::min(penalties.lost_devices, G - 1);
  penalties.backoff_us = backoff_us;
  res.lost_devices = penalties.lost_devices;
  res.retry_backoff_us = backoff_us;

  std::size_t flops = predictor_.flops_per_window(rows);
  if (flops == 0) flops = opts_.assumed_flops_per_window;
  if (flops == 0) flops = simnet3c2f_flops(rows);
  const double occ = occupancy.count() ? occupancy.mean() : 0.3;
  res.sim_time_us =
      model_parallel_time_us(opts_, modeled_steps, flops, occ, penalties);
  if (obs::enabled()) {
    MLSIM_COUNTER_ADD(obs::names::kParSimInstructions, n);
    MLSIM_COUNTER_ADD(obs::names::kParSimWarmupInstructions,
                      res.warmup_instructions);
    MLSIM_COUNTER_ADD(obs::names::kParSimCorrectedInstructions,
                      res.corrected_instructions);
    MLSIM_COUNTER_ADD(obs::names::kParSimDegradedPartitions,
                      res.degraded_partitions.size());
    MLSIM_GAUGE_SET(obs::names::kParSimLostDevices,
                    static_cast<double>(res.lost_devices));
    for (std::size_t p = 0; p < P; ++p) {
      MLSIM_HIST_RECORD(obs::names::kParSimAttemptsPerPartition,
                        static_cast<double>(final_attempt[p]) + 1.0);
    }
    // Mean valid fraction of the lockstep batch window — what the modeled
    // per-GPU batched inference actually occupies.
    MLSIM_GAUGE_SET(obs::names::kParSimBatchOccupancy, occ);
  }

  // The run completed: a stale checkpoint must not hijack a future run.
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::remove(opts_.checkpoint_path, ec);
  }
  return res;
}

}  // namespace mlsim::core
