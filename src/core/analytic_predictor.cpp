#include "core/analytic_predictor.h"

#include <algorithm>

#include "trace/annotation.h"
#include "uarch/ooo_core.h"

namespace mlsim::core {

using trace::Feat;
using trace::HitLevel;
using trace::TlbLevel;

AnalyticPredictor::AnalyticPredictor(const uarch::MachineConfig& machine)
    : cfg_(machine) {}

namespace {

// Uniform access to dense windows and lazy windows so both prediction paths
// share one implementation (equality is also pinned by tests).
struct DenseCtx {
  const WindowView& w;
  std::size_t rows() const { return w.rows; }
  std::int32_t remaining(std::size_t r) const {
    return r == 0 || r >= w.rows ? 0 : w.row(r)[kCtxLatFeature];
  }
  std::span<const std::int32_t> features(std::size_t r) const { return w.row(r); }
};

struct LazyCtx {
  const LazyWindow& w;
  std::size_t rows() const { return w.rows(); }
  std::int32_t remaining(std::size_t r) const { return w.remaining(r); }
  std::span<const std::int32_t> features(std::size_t r) const {
    return w.features(r);
  }
};

template <typename Ctx>
LatencyPrediction evaluate(const uarch::MachineConfig& cfg, const Ctx& ctx) {
  const auto cur = ctx.features(0);
  const std::size_t rows = ctx.rows();

  // Context rows are program-order indexed; a row is in flight iff its
  // remaining-latency entry is positive. Track the in-flight population and
  // the oldest in-flight row (for ROB backpressure).
  std::size_t in_flight = 0;
  std::size_t oldest_row = 0;
  for (std::size_t r = 1; r < rows; ++r) {
    if (ctx.remaining(r) > 0) {
      ++in_flight;
      oldest_row = r;
    }
  }

  const auto data_level = static_cast<HitLevel>(cur[Feat::kDataLevel]);
  const auto dtlb = static_cast<TlbLevel>(cur[Feat::kDtlb]);

  // ---- Fetch latency --------------------------------------------------------
  // Fetch advances to the max of several constraints (mirroring OooCore):
  // steady-state width progression + icache penalties, branch-redirect
  // resolution, and window back-pressure from a full ROB.
  std::uint32_t base_fetch = 0;
  // Fetch-width steady state: one cycle consumed every fetch_width slots.
  if ((cur[Feat::kPcSlot] % static_cast<std::int32_t>(cfg.core.fetch_width)) == 0) {
    base_fetch += 1;
  }
  // Instruction-cache / iTLB penalty on line transitions.
  if (cur[Feat::kBlockEntry] != 0 || cur[Feat::kPcSlot] == 0) {
    base_fetch += uarch::OooCore::fetch_penalty(
        cfg, static_cast<HitLevel>(cur[Feat::kFetchLevel] + 1));
    base_fetch +=
        uarch::OooCore::tlb_penalty(cfg, static_cast<TlbLevel>(cur[Feat::kItlb]));
  }
  // Redirect after a mispredicted branch: the previous instruction (row 1)
  // must resolve before this one can fetch.
  std::uint32_t redirect = 0;
  if (rows > 1 && ctx.remaining(1) > 0) {
    const auto prev = ctx.features(1);
    if (prev[Feat::kIsControl] != 0 && prev[Feat::kMispredicted] != 0) {
      redirect = static_cast<std::uint32_t>(ctx.remaining(1)) +
                 cfg.bp.mispredict_penalty;
    }
  }
  // Window back-pressure (mirrors the OooCore fetch constraints):
  //  - ROB: the instruction rob_entries back must commit (≈ retire);
  //  - IQ: the instruction iq_entries back must issue. Its issue time is
  //    estimated as retire minus its own post-issue latency, reconstructed
  //    from its static features and hit level.
  // Estimated store-writeback tail of a context row (retire happens commit +
  // writeback for stores; commit itself is what unblocks the ROB).
  const auto store_tail = [&](std::size_t r) -> std::uint32_t {
    const auto row = ctx.features(r);
    if (row[Feat::kIsStore] == 0) return 0;
    return uarch::OooCore::data_latency(
               cfg, static_cast<HitLevel>(row[Feat::kDataLevel])) +
           1;
  };

  std::uint32_t backpressure = 0;
  if (rows > cfg.core.rob_entries) {
    const std::int32_t rem = ctx.remaining(cfg.core.rob_entries);
    const std::uint32_t tail = rem > 0 ? store_tail(cfg.core.rob_entries) : 0;
    if (rem > static_cast<std::int32_t>(tail)) {
      backpressure = static_cast<std::uint32_t>(rem) - tail;
    }
  }
  if (rows > cfg.core.iq_entries) {
    const std::size_t r = cfg.core.iq_entries;
    const std::int32_t rem = ctx.remaining(r);
    if (rem > 0) {
      const auto row = ctx.features(r);
      std::uint32_t post_issue = static_cast<std::uint32_t>(row[Feat::kBaseLat]);
      const auto row_level = static_cast<HitLevel>(row[Feat::kDataLevel]);
      if (row[Feat::kIsLoad] != 0) {
        post_issue += uarch::OooCore::data_latency(cfg, row_level);
      } else if (row[Feat::kIsStore] != 0) {
        post_issue += uarch::OooCore::data_latency(cfg, row_level) + 1;
      }
      if (static_cast<std::uint32_t>(rem) > post_issue) {
        backpressure = std::max(backpressure,
                                static_cast<std::uint32_t>(rem) - post_issue);
      }
    }
  }
  const std::uint32_t fetch = std::max({base_fetch, redirect, backpressure});

  // ---- Execute latency ------------------------------------------------------
  // Dependency wait: dependency-distance features point at the producing
  // context row; if that producer is still in flight, wait for it.
  std::uint32_t wait = cfg.core.frontend_depth;
  for (std::size_t k = 0; k < trace::kMaxSrcRegs; ++k) {
    const auto dist = cur[Feat::kDep0 + k];
    if (dist > 0 && static_cast<std::size_t>(dist) < rows) {
      wait = std::max(wait, static_cast<std::uint32_t>(
                                ctx.remaining(static_cast<std::size_t>(dist))));
    }
  }
  (void)oldest_row;

  std::uint32_t mem_lat = 0;
  if (cur[Feat::kIsLoad] != 0) {
    mem_lat += uarch::OooCore::tlb_penalty(cfg, dtlb);
    if (cur[Feat::kFwdDist] > 0) {
      // Store-to-load forwarding: cheap access, but the load waits for the
      // forwarding store's data to be written (OooCore's ready constraint).
      mem_lat += 2;
      const auto fwd = static_cast<std::size_t>(cur[Feat::kFwdDist]);
      if (fwd < rows) {
        wait = std::max(wait, static_cast<std::uint32_t>(ctx.remaining(fwd)));
      }
    } else {
      mem_lat += uarch::OooCore::data_latency(cfg, data_level);
    }
  } else if (cur[Feat::kIsStore] != 0) {
    mem_lat += uarch::OooCore::tlb_penalty(cfg, dtlb);
  }

  const auto base = static_cast<std::uint32_t>(cur[Feat::kBaseLat]);
  // Issue/commit contention grows with the in-flight population: with W
  // instructions competing for issue_width ports, queueing adds roughly
  // W / width extra cycles at both issue and commit.
  const auto contention =
      static_cast<std::uint32_t>(3 * in_flight / cfg.core.issue_width);
  const std::uint32_t exec = wait + base + mem_lat + contention;

  // ---- Store latency --------------------------------------------------------
  // Stores retire commit + writeback; in-order commit lags completion by
  // roughly the window population over the commit width.
  const std::uint32_t store =
      cur[Feat::kIsStore] != 0
          ? uarch::OooCore::data_latency(cfg, data_level) + 1 +
                static_cast<std::uint32_t>(in_flight / cfg.core.commit_width)
          : 0;

  return {fetch, exec, store};
}

}  // namespace

LatencyPrediction AnalyticPredictor::predict(const WindowView& w,
                                             std::uint64_t /*global_index*/) {
  return evaluate(cfg_, DenseCtx{w});
}

LatencyPrediction AnalyticPredictor::predict_lazy(const LazyWindow& w) {
  return evaluate(cfg_, LazyCtx{w});
}

}  // namespace mlsim::core
