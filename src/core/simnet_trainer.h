// SimNet training pipeline: ground-truth window dataset construction,
// feature-scale computation, Adam training of the 3C+2F model, and
// evaluation (per-instruction error + end-to-end CPI error).
//
// Paper protocol: train on {perl, gcc, bwav, namd}, evaluate on the other
// 17 benchmarks. The default model here is a scaled-down 3C+2F (context 32,
// 32 channels) so training fits this machine's single-core budget; the
// paper-scale (context 111, 64 channels) configuration is a constructor
// argument away.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cnn_predictor.h"
#include "trace/trace.h"
#include "uarch/config.h"

namespace mlsim::core {

struct SimNetTrainConfig {
  tensor::SimNetModelConfig model{.in_features = trace::kNumFeatures,
                                  .window = 33,
                                  .channels = 32,
                                  .hidden = 64,
                                  .kernel = 3,
                                  .outputs = trace::kNumTargets};
  std::size_t epochs = 3;
  std::size_t batch_size = 32;
  float lr = 1.5e-3f;
  float grad_clip = 5.0f;
  std::uint64_t seed = 42;
  double holdout_fraction = 0.1;  // tail of each trace held out for eval
};

struct SimNetTrainReport {
  float final_loss = 0.0f;
  double holdout_mape_fetch = 0.0;  // +1-smoothed MAPE, holdout windows
  double holdout_mape_exec = 0.0;
  std::size_t samples = 0;
};

/// Ground-truth inference windows derived from a labeled trace: the retire
/// clocks that drive context membership come from the *true* latencies,
/// exactly the windows a perfectly-converged simulator would build.
class WindowDataset {
 public:
  WindowDataset(const trace::EncodedTrace& labeled, std::size_t window_rows);

  std::size_t size() const { return trace_.size(); }
  std::size_t rows() const { return rows_; }
  const trace::EncodedTrace& trace() const { return trace_; }

  /// Materialise window `i` (rows x kNumFeatures int32) into `out`.
  void window(std::size_t i, std::vector<std::int32_t>& out) const;

  /// Ground-truth targets of instruction i.
  std::span<const std::uint32_t> targets(std::size_t i) const {
    return trace_.targets(i);
  }

 private:
  const trace::EncodedTrace& trace_;
  std::size_t rows_;
  std::vector<std::uint64_t> retire_;  // per instruction, absolute cycles
  std::vector<std::uint64_t> clock_;   // Clock when instruction i is predicted
};

/// Per-feature normalisation: 1 / max observed value (>= 1) per slot.
std::vector<float> compute_feature_scales(
    const std::vector<const trace::EncodedTrace*>& traces);

/// Train a SimNet bundle on labeled traces (paper: the 4 training
/// benchmarks).
SimNetBundle train_simnet(const std::vector<const trace::EncodedTrace*>& traces,
                          const SimNetTrainConfig& cfg,
                          SimNetTrainReport* report = nullptr);

/// Fine-tune an already-trained bundle under the 2:4 sparsity mask:
/// projected training re-prunes the weight matrices after every optimiser
/// step, so the model adapts to (and maintains) the structured-sparse
/// pattern — the recipe that makes the paper's "2:4 with negligible
/// accuracy loss" claim hold.
void finetune_2to4(SimNetBundle& bundle,
                   const std::vector<const trace::EncodedTrace*>& traces,
                   std::size_t epochs = 1, float lr = 4e-4f,
                   std::uint64_t seed = 99);

/// Mean log1p-space MSE of a bundle over the first `max_samples`
/// ground-truth windows of a labeled trace (the training objective).
float evaluate_loss(SimNetBundle& bundle, const trace::EncodedTrace& labeled,
                    std::size_t max_samples = 2000);

/// Evaluate a bundle on a labeled test trace: runs the full sequential
/// simulation with the CNN predictor and reports CPI error vs ground truth.
struct SimNetEvalReport {
  double cpi_error_percent = 0.0;  // |seq CPI - truth CPI| / truth * 100
  double mape_exec = 0.0;          // per-instruction execute-latency error
  double predicted_cpi = 0.0;
  double truth_cpi = 0.0;
};
SimNetEvalReport evaluate_simnet(CnnPredictor& predictor,
                                 const trace::EncodedTrace& labeled,
                                 std::size_t max_instructions = 0);

}  // namespace mlsim::core
