// Multi-benchmark suite scheduling (paper §V-A opening: whole benchmarks
// are embarrassingly parallel across devices; the interesting machinery is
// *intra*-benchmark parallelism, but a production simulator also needs the
// boring part done well).
//
// Jobs (one per benchmark trace) are assigned to devices with the classic
// LPT heuristic — longest (estimated) job first onto the least-loaded
// device — which is a 4/3-approximation of optimal makespan. Each job then
// runs the fully-optimised single-device simulator on its device, and the
// suite report gives per-job results plus makespan/utilisation.
// With a checkpoint path, the suite records each finished job (atomic write +
// checksum, see docs/RESILIENCE.md); a resumed run re-simulates only the jobs
// the killed run had not completed.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/gpu_sim.h"
#include "core/predictor.h"
#include "trace/trace.h"

namespace mlsim::core {

struct SuiteJob {
  const trace::EncodedTrace* trace = nullptr;
  std::string name;
};

struct SuiteJobResult {
  std::string name;
  std::size_t device = 0;
  double cpi = 0.0;
  double sim_time_us = 0.0;  // modeled device time of this job
  std::size_t instructions = 0;
};

struct SuiteReport {
  std::vector<SuiteJobResult> jobs;
  double makespan_us = 0.0;  // slowest device's total
  std::size_t devices = 0;

  std::size_t total_instructions() const;
  double mips() const;
  /// Mean device busy-time over the makespan (1.0 = perfectly balanced).
  double utilization() const;

 private:
  friend SuiteReport run_suite(LatencyPredictor&, const std::vector<SuiteJob>&,
                               std::size_t, const GpuSimOptions&,
                               const std::filesystem::path&, bool);
  std::vector<double> device_busy_us_;
};

/// Simulate all jobs across `num_devices` modeled GPUs (LPT assignment).
/// A non-empty `checkpoint` records finished jobs after each one (removed on
/// completion); with `resume`, previously-finished jobs are taken from the
/// checkpoint instead of re-simulated.
SuiteReport run_suite(LatencyPredictor& predictor,
                      const std::vector<SuiteJob>& jobs, std::size_t num_devices,
                      const GpuSimOptions& options = {},
                      const std::filesystem::path& checkpoint = {},
                      bool resume = false);

/// LPT assignment by estimated cost (exposed for testing): returns the
/// device index per job, in job order.
std::vector<std::size_t> lpt_assignment(const std::vector<double>& estimated_costs,
                                        std::size_t num_devices);

}  // namespace mlsim::core
