// Parallel simulation with accuracy recovery (paper §V).
//
// The trace is partitioned into disjoint sub-traces simulated independently
// and sequentially within themselves; batching the i-th instruction of all
// resident sub-traces gives each GPU large inference batches, and sub-traces
// are distributed across GPUs with zero communication until the final Clock
// gather. Context loss at partition boundaries causes prediction error;
// two recovery mechanisms reduce it:
//   warmup            — re-simulate W = context_length instructions before
//                       each partition to pre-fill the context space;
//   post-error correction — after a partition finishes, its owner
//                       re-simulates the head of the *next* partition from
//                       the accurate end-of-partition state, replacing the
//                       inaccurate head predictions; re-simulation stops
//                       when the context-instruction count matches the
//                       initial simulation's count, or at a fixed limit.
//                       The first partition of each GPU is never corrected
//                       (keeps inter-GPU communication at zero).
//
// Fault tolerance (docs/RESILIENCE.md): with a FaultInjector attached, the
// engine tolerates device kills (failed partitions are requeued with
// re-warmup under a retry budget with exponential backoff in modeled time),
// stragglers (modeled slowdown), and corrupted inference outputs (per-batch
// anomaly guard with graceful degradation to a fallback predictor). With
// periodic checkpointing enabled, a killed run resumes bit-identically.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "core/cost_model.h"
#include "core/predict_sink.h"
#include "core/predictor.h"
#include "core/sim_output.h"
#include "device/fault.h"
#include "trace/trace.h"

namespace mlsim::core {

struct ParallelSimOptions {
  std::size_t num_subtraces = 4;
  std::size_t num_gpus = 1;
  std::size_t context_length = kDefaultContextLength;
  std::size_t warmup = 0;            // instructions; paper uses context_length
  bool post_error_correction = false;
  std::size_t correction_limit = 100;  // paper's threshold (§VI-C)
  std::size_t batch_n = 10;
  device::Engine engine = device::Engine::kTensorRTSparse;
  /// FLOPs per inference window for the time model when the predictor
  /// itself reports 0 (analytic/oracle) — set to the 3C+2F model's FLOPs to
  /// model production throughput while using a fast functional predictor.
  std::size_t assumed_flops_per_window = 0;
  bool record_predictions = false;     // keep per-instruction predictions
  bool record_context_counts = false;  // keep all context counts
  CostModel costs;

  // ---- Fault tolerance (docs/RESILIENCE.md) --------------------------------
  /// Fault injector; nullptr or an inert injector means fault-free, and the
  /// engine is then bit-identical to a build without this layer.
  const device::FaultInjector* faults = nullptr;
  /// Predictor substituted for a partition whose inference outputs trip the
  /// anomaly guard (graceful degradation). Required for corruption recovery.
  LatencyPredictor* fallback = nullptr;
  /// Per-latency upper bound accepted from the predictor; any latency above
  /// it is an anomaly (NaN/garbage after int conversion). 0 disables the
  /// guard. The default is orders of magnitude above any genuine latency,
  /// so fault-free predictions are untouched.
  std::uint32_t anomaly_latency_limit = 1u << 20;
  /// Re-runs a single partition may consume (kills + anomaly degradations)
  /// before the run fails with CheckError.
  std::size_t max_retries_per_partition = 3;
  /// Modeled backoff before the first retry of a partition; doubles on each
  /// subsequent retry (exponential backoff in modeled time).
  double retry_backoff_us = 50.0;

  // ---- Checkpoint/restart --------------------------------------------------
  /// When non-empty, per-partition progress is periodically serialized here
  /// (atomic rename + checksum); removed once the run completes.
  std::filesystem::path checkpoint_path;
  /// Resume from checkpoint_path if a valid checkpoint exists (fresh run
  /// otherwise). The checkpoint fingerprint must match this trace + options.
  bool resume = false;
  /// With resume: a corrupt, truncated, or mismatched checkpoint normally
  /// throws CheckError. Lenient mode records the error in
  /// ParallelSimResult::resume_error and falls back to a clean start instead
  /// — the mode for unattended services where a torn checkpoint must never
  /// wedge the run.
  bool resume_lenient = false;
  /// Completed partitions between checkpoint writes.
  std::size_t checkpoint_interval = 1;

  /// Cooperative cancellation: polled once per instruction; a cancelled or
  /// past-deadline run throws CancelledError. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
  /// Cross-request continuous batching (docs/BATCHING.md): when set, primary
  /// predictions are submitted to this sink instead of invoked in-loop.
  /// Degraded partitions (anomaly fallback) always bypass the sink and call
  /// the fallback predictor directly. Excluded from the run fingerprint:
  /// batching never changes results, only where inference executes.
  PredictSink* batch_sink = nullptr;
};

struct ParallelSimResult {
  std::uint64_t total_cycles = 0;  // sum of per-partition Clocks
  std::size_t instructions = 0;
  double sim_time_us = 0.0;  // modeled: slowest GPU + final gather
  std::size_t corrected_instructions = 0;  // re-simulated by correction
  std::size_t warmup_instructions = 0;     // extra work spent on warmup

  double cpi() const {
    return instructions
               ? static_cast<double>(total_cycles) / static_cast<double>(instructions)
               : 0.0;
  }
  double mips() const {
    return sim_time_us > 0.0 ? static_cast<double>(instructions) / sim_time_us : 0.0;
  }

  /// Per-instruction final predictions / context counts (when recorded).
  std::vector<LatencyPrediction> predictions;
  std::vector<std::uint16_t> context_counts;
  /// Partition boundaries (begin index of each partition, plus end sentinel).
  std::vector<std::size_t> boundaries;

  // ---- Fault-recovery outcome (empty/zero on a fault-free run) -------------
  /// Partitions whose device slot was killed at least once (requeued).
  std::vector<std::size_t> failed_partitions;
  /// Partitions that finished on the fallback predictor (degraded mode).
  std::vector<std::size_t> degraded_partitions;
  std::size_t retries = 0;       // total partition re-runs
  std::size_t lost_devices = 0;  // device slots lost to kills
  double retry_backoff_us = 0.0; // modeled backoff folded into sim_time_us
  bool resumed = false;          // run continued from a checkpoint
  /// Lenient resume only: why the checkpoint was rejected (empty = it was
  /// fine or there was none); the run started clean.
  std::string resume_error;
};

class ParallelSimulator {
 public:
  ParallelSimulator(LatencyPredictor& predictor, ParallelSimOptions opts);

  ParallelSimResult run(const trace::EncodedTrace& trace);

  /// Paper §V-B error definition between a sequential reference CPI and a
  /// parallel CPI: (seq - par) / seq * 100.
  static double cpi_error_percent(double sequential_cpi, double parallel_cpi);

 private:
  LatencyPredictor& predictor_;
  ParallelSimOptions opts_;
};

/// Block partition boundaries for `n` instructions into P parts (remainder
/// spread left). Returned vector has P+1 entries, [0] = 0, [P] = n.
std::vector<std::size_t> partition_boundaries(std::size_t n, std::size_t parts);

/// Extra modeled-time terms contributed by fault recovery.
struct ParallelTimePenalties {
  std::size_t lost_devices = 0;  // device slots killed mid-run
  double backoff_us = 0.0;       // accumulated retry backoff
};

/// Simulated-time model shared by the parallel engines: per-GPU lockstep
/// batched stepping plus the final Clock gather. `partition_steps[p]` is
/// the number of inference steps partition p consumed (body + warmup +
/// corrections it performed, plus any steps burnt by failed attempts).
/// Lost devices shrink the surviving pool (requeued partitions pack onto
/// fewer GPUs) and backoff adds directly to the critical path.
double model_parallel_time_us(const ParallelSimOptions& opts,
                              const std::vector<std::size_t>& partition_steps,
                              std::size_t flops_per_window,
                              double avg_context_occupancy,
                              const ParallelTimePenalties& penalties = {});

}  // namespace mlsim::core
