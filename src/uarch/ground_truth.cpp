#include "uarch/ground_truth.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mlsim::uarch {

using trace::Annotation;
using trace::DynInst;
using trace::HitLevel;
using trace::OpClass;

std::string MachineConfig::describe() const {
  std::ostringstream os;
  os << core.fetch_width << "-wide fetch, " << core.issue_width
     << "-wide OoO issue/commit, " << core.iq_entries << "-entry IQ, "
     << core.rob_entries << "-entry ROB, " << core.lq_entries << "-entry LQ, "
     << core.sq_entries << "-entry SQ; L1I " << l1i.size_bytes / 1024 << "KB/"
     << l1i.assoc << "w, L1D " << l1d.size_bytes / 1024 << "KB/" << l1d.assoc
     << "w, L2 " << l2.size_bytes / 1024 << "KB/" << l2.assoc << "w";
  return os.str();
}

namespace {
constexpr std::size_t kStoreWindow = 16;  // matches SQ size
}

Annotator::Annotator(const MachineConfig& cfg)
    : cfg_(cfg),
      bp_(cfg.bp),
      l1i_(cfg.l1i, "l1i"),
      l1d_(cfg.l1d, "l1d"),
      l2_(cfg.l2, "l2"),
      itlb_(cfg.tlb),
      dtlb_(cfg.tlb),
      store_window_(kStoreWindow) {}

HitLevel Annotator::lookup_fetch(std::uint64_t pc) {
  if (l1i_.probe(pc)) {
    l1i_.access(pc, now_, now_ + cfg_.l1i.latency, false);
    return HitLevel::kL1;
  }
  HitLevel level;
  std::uint64_t fill;
  if (l2_.probe(pc)) {
    level = HitLevel::kL2;
    fill = l2_.access(pc, now_, 0, false).ready_cycle;
  } else {
    level = HitLevel::kMemory;
    fill = l2_.access(pc, now_, now_ + cfg_.l2.latency + cfg_.memory_latency, false)
               .ready_cycle;
  }
  l1i_.access(pc, now_, fill, false);
  return level;
}

HitLevel Annotator::lookup_data(std::uint64_t addr, bool is_write) {
  if (l1d_.probe(addr)) {
    l1d_.access(addr, now_, now_ + cfg_.l1d.latency, is_write);
    return HitLevel::kL1;
  }
  HitLevel level;
  std::uint64_t fill;
  if (l2_.probe(addr)) {
    level = HitLevel::kL2;
    fill = l2_.access(addr, now_, 0, false).ready_cycle;
  } else {
    level = HitLevel::kMemory;
    fill = l2_.access(addr, now_, now_ + cfg_.l2.latency + cfg_.memory_latency, false)
               .ready_cycle;
  }
  l1d_.access(addr, now_, fill, is_write);
  return level;
}

Annotation Annotator::annotate(const DynInst& inst) {
  Annotation ann;
  ++now_;

  // Instruction side: one lookup per line transition is handled by the
  // caches themselves (hits are cheap; repeated probes of the same line hit).
  ann.itlb_level = itlb_.access(inst.pc).level;
  ann.fetch_level = lookup_fetch(inst.pc);

  if (trace::is_memory(inst.op)) {
    ann.dtlb_level = dtlb_.access(inst.mem_addr).level;
    const bool is_write = inst.op == OpClass::kStore;
    ann.data_level = lookup_data(inst.mem_addr, is_write);

    if (inst.op == OpClass::kLoad) {
      // Store-to-load forwarding: newest overlapping store in the window.
      const std::uint64_t lo = inst.mem_addr;
      const std::uint64_t hi = lo + (1ull << inst.mem_size_log2);
      std::uint64_t best_dist = 0;
      for (const auto& s : store_window_) {
        if (s.size_log2 == 0 && s.addr == 0) continue;
        const std::uint64_t s_lo = s.addr;
        const std::uint64_t s_hi = s_lo + (1ull << s.size_log2);
        if (s_lo < hi && lo < s_hi) {
          const std::uint64_t dist = now_ - s.index;
          if (best_dist == 0 || dist < best_dist) best_dist = dist;
        }
      }
      ann.store_forward_dist =
          static_cast<std::uint8_t>(std::min<std::uint64_t>(best_dist, 63));
    } else {
      store_window_[store_head_] = {inst.mem_addr, now_, inst.mem_size_log2};
      store_head_ = (store_head_ + 1) % store_window_.size();
    }
  }

  if (inst.op == OpClass::kBranch) {
    const bool correct_dir = bp_.predict(inst.pc) == inst.is_taken;
    const bool btb_ok = !inst.is_taken || bp_.btb_hit(inst.pc);
    ann.branch_mispredicted = !(correct_dir && btb_ok);
    bp_.update(inst.pc, inst.is_taken);
    if (inst.is_taken) bp_.btb_insert(inst.pc, 0);
  } else if (inst.op == OpClass::kJump) {
    // Unconditional: redirect cost only on a BTB cold miss.
    ann.branch_mispredicted = !bp_.btb_hit(inst.pc);
    bp_.btb_insert(inst.pc, 0);
  }
  return ann;
}

double LabeledTrace::cpi() const {
  if (records.empty()) return 0.0;
  return static_cast<double>(total_cycles()) / static_cast<double>(records.size());
}

std::uint64_t LabeledTrace::total_cycles() const {
  std::uint64_t cycles = 0;
  for (const auto& r : records) cycles += r.timing.fetch_lat;
  if (!records.empty()) {
    // Drain: the last instruction still has to execute (and store).
    cycles += records.back().timing.exec_lat + records.back().timing.store_lat;
  }
  return cycles;
}

LabeledTrace generate_labeled_trace(const trace::WorkloadProfile& profile,
                                    std::size_t n, const MachineConfig& machine,
                                    std::uint64_t seed) {
  LabeledTrace out;
  out.benchmark = profile.abbr;
  out.machine = machine;
  out.records.reserve(n);

  const trace::Program prog = trace::Program::generate(profile, seed);
  trace::FunctionalSim fsim(prog, seed);
  Annotator annotator(machine);
  OooCore core(machine);

  for (std::size_t i = 0; i < n; ++i) {
    LabeledInst rec;
    rec.inst = fsim.next();
    rec.ann = annotator.annotate(rec.inst);
    rec.timing = core.process(rec.inst, rec.ann);
    out.records.push_back(rec);
  }
  return out;
}

trace::EncodedTrace encode_trace(const LabeledTrace& labeled) {
  trace::EncodedTrace out(labeled.benchmark);
  out.reserve(labeled.size());
  trace::FeatureEncoder enc;
  for (const auto& r : labeled.records) {
    out.append(enc.encode(r.inst, r.ann), r.timing.fetch_lat, r.timing.exec_lat,
               r.timing.store_lat);
  }
  return out;
}

trace::EncodedTrace make_encoded_trace(const trace::WorkloadProfile& profile,
                                       std::size_t n, const MachineConfig& machine,
                                       std::uint64_t seed) {
  return encode_trace(generate_labeled_trace(profile, n, machine, seed));
}

std::vector<LabeledInst> annotate_trace(const std::vector<trace::DynInst>& insts,
                                        const MachineConfig& machine) {
  std::vector<LabeledInst> out;
  out.reserve(insts.size());
  Annotator annotator(machine);
  for (const auto& inst : insts) {
    LabeledInst rec;
    rec.inst = inst;
    rec.ann = annotator.annotate(inst);
    out.push_back(rec);
  }
  return out;
}

}  // namespace mlsim::uarch
