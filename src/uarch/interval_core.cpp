#include "uarch/interval_core.h"

namespace mlsim::uarch {

using trace::Annotation;
using trace::DynInst;
using trace::HitLevel;
using trace::OpClass;

IntervalCore::IntervalCore(const MachineConfig& cfg) : cfg_(cfg) {}

std::uint64_t IntervalCore::process(const DynInst& inst, const Annotation& ann) {
  const std::uint64_t before = cycles();
  ++insts_;
  ++base_slots_;

  // Branch misprediction: full frontend refill.
  if (trace::is_control(inst.op) && ann.branch_mispredicted) {
    penalty_cycles_ += cfg_.bp.mispredict_penalty + cfg_.core.frontend_depth;
  }

  // Long-latency loads: charge the memory latency unless a previous miss is
  // still outstanding within the same ROB window (MLP overlap).
  if (inst.op == OpClass::kLoad &&
      (ann.data_level == HitLevel::kL2 || ann.data_level == HitLevel::kMemory)) {
    const std::uint64_t lat = ann.data_level == HitLevel::kL2
                                  ? cfg_.l2.latency
                                  : cfg_.l2.latency + cfg_.memory_latency;
    if (insts_ - last_miss_inst_ > cfg_.core.rob_entries) {
      penalty_cycles_ += lat;
    }
    last_miss_inst_ = insts_;
  }

  // Instruction-fetch misses stall the front end directly.
  if (ann.fetch_level == HitLevel::kL2) {
    penalty_cycles_ += cfg_.l2.latency / 4;  // amortised across the fetch line
  } else if (ann.fetch_level == HitLevel::kMemory) {
    penalty_cycles_ += (cfg_.l2.latency + cfg_.memory_latency) / 4;
  }

  // Serialising instructions drain the window.
  if (trace::is_serializing(inst.op)) {
    penalty_cycles_ += trace::kBaseLatency[static_cast<std::size_t>(inst.op)];
  }
  return cycles() - before;
}

std::uint64_t IntervalCore::cycles() const {
  // Steady state: dispatch_width instructions per cycle.
  return base_slots_ / cfg_.core.issue_width + penalty_cycles_;
}

}  // namespace mlsim::uarch
