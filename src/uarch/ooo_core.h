// Cycle-level out-of-order core timing model (the "gem5 class" ground truth).
//
// The model is timestamp-driven: each dynamic instruction is processed once
// and assigned fetch / dispatch / issue / complete / commit cycles subject to
// the structural constraints of Table II (fetch width, ROB/IQ/LQ/SQ
// occupancy, issue width, functional-unit contention, in-order commit) and
// to the dynamic events carried by its Annotation (cache level reached,
// TLB level, branch misprediction). This is the discrete-event style used by
// fast academic simulators; it is deterministic and orders of magnitude
// faster than a cycle-by-cycle loop while producing realistic latency
// distributions.
//
// Per instruction it emits the paper's three training targets:
//   fetch latency  — cycles between this fetch and the previous one,
//   execute latency — fetch to completion,
//   store latency  — completion to memory writeback (stores only).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/annotation.h"
#include "trace/isa.h"
#include "uarch/config.h"

namespace mlsim::uarch {

/// Ground-truth latencies for one instruction (the ML model's targets).
struct InstTiming {
  std::uint32_t fetch_lat = 0;
  std::uint32_t exec_lat = 0;
  std::uint32_t store_lat = 0;
};

/// Where fetch-stall cycles went (one counter per binding constraint) —
/// the decomposition of CPI above the fetch-width floor.
struct StallBreakdown {
  std::uint64_t width = 0;       // fetch-width steady-state cycles
  std::uint64_t icache = 0;      // instruction cache / iTLB refills
  std::uint64_t redirect = 0;    // branch-misprediction redirects
  std::uint64_t rob = 0;         // reorder-buffer full
  std::uint64_t iq = 0;          // issue-queue full
  std::uint64_t lsq = 0;         // load/store queue full

  std::uint64_t total() const {
    return width + icache + redirect + rob + iq + lsq;
  }
};

class OooCore {
 public:
  explicit OooCore(const MachineConfig& cfg = {});

  /// Process the next instruction in program order.
  InstTiming process(const trace::DynInst& inst, const trace::Annotation& ann);

  /// Attribution of every fetch-latency cycle to its binding constraint.
  const StallBreakdown& stalls() const { return stalls_; }

  /// Current clock = fetch cycle of the most recent instruction.
  std::uint64_t clock() const { return last_fetch_time_; }

  /// Completion cycle of the most recent instruction (for drain accounting).
  std::uint64_t last_complete() const { return last_complete_; }

  std::uint64_t instructions() const { return idx_; }

  /// Cycles a data access spends beyond dispatch for a given level
  /// (exposed for the analytic predictor, which mirrors this model).
  static std::uint32_t data_latency(const MachineConfig& cfg, trace::HitLevel level);
  static std::uint32_t fetch_penalty(const MachineConfig& cfg, trace::HitLevel level);
  static std::uint32_t tlb_penalty(const MachineConfig& cfg, trace::TlbLevel level);
  static std::uint32_t exec_base_latency(const trace::DynInst& inst);

 private:
  MachineConfig cfg_;

  // Register scoreboard: cycle each architectural register becomes ready.
  std::array<std::uint64_t, trace::kNumArchRegs> reg_ready_{};

  // Ring buffers implementing window occupancy constraints.
  std::vector<std::uint64_t> commit_ring_;      // ROB: commit time per slot
  std::vector<std::uint64_t> issue_ring_;       // IQ: issue time per slot
  std::vector<std::uint64_t> load_ring_;        // LQ: completion per slot
  std::vector<std::uint64_t> store_ring_;       // SQ: writeback per slot
  std::uint64_t idx_ = 0, load_idx_ = 0, store_idx_ = 0;

  // Front end.
  std::uint64_t fetch_cycle_ = 0;
  std::uint32_t fetch_in_cycle_ = 0;
  bool first_fetch_ = true;
  std::uint64_t redirect_ready_ = 0;
  std::uint64_t icache_line_ = ~0ull;
  std::uint64_t icache_ready_ = 0;

  // Issue bandwidth ring (approximate ≤ issue_width per cycle).
  std::vector<std::uint64_t> issue_bw_ring_;

  // Functional units: next-free cycle per unit instance.
  std::array<std::vector<std::uint64_t>, static_cast<std::size_t>(trace::ExecUnit::kCount)>
      unit_free_;

  // Commit (in-order).
  std::uint64_t commit_cycle_ = 0;
  std::uint32_t commit_in_cycle_ = 0;

  std::uint64_t last_fetch_time_ = 0;
  std::uint64_t last_complete_ = 0;
  std::uint64_t last_store_complete_ = 0;
  StallBreakdown stalls_;
};

}  // namespace mlsim::uarch
