// Branch direction predictors with a direct-mapped BTB.
//
// The Table II machine uses bi-mode (Lee/Chen/Mudge): the direction PHT is
// split into a "taken" bank and a "not-taken" bank selected by a per-PC
// choice PHT, separating the destructive aliasing of biased branches.
// Gshare, per-branch local-history, and plain bimodal predictors are also
// provided — "branch predictor algorithm" is one of the Table IV
// design-space axes that require only re-tracing, never retraining.
#pragma once

#include <cstdint>
#include <vector>

#include "uarch/config.h"

namespace mlsim::uarch {

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& cfg = {});

  /// Predict direction for a conditional branch at `pc`.
  bool predict(std::uint64_t pc) const;

  /// Update tables with the actual outcome; returns whether the earlier
  /// prediction for this pc/history would have been correct.
  bool update(std::uint64_t pc, bool taken);

  /// BTB lookup: true if the target of the branch at `pc` is known. Unknown
  /// targets redirect the front end even for correctly-predicted branches.
  bool btb_hit(std::uint64_t pc) const;
  void btb_insert(std::uint64_t pc, std::uint64_t target);

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t mispredicts() const { return mispredicts_; }
  double mispredict_rate() const {
    return lookups_ ? static_cast<double>(mispredicts_) / static_cast<double>(lookups_)
                    : 0.0;
  }

 private:
  std::uint32_t choice_index(std::uint64_t pc) const;
  std::uint32_t direction_index(std::uint64_t pc) const;

  BranchPredictorConfig cfg_;
  std::vector<std::uint8_t> choice_;     // bi-mode: 2-bit choice counters
  std::vector<std::uint8_t> taken_bank_; // bi-mode taken bank / shared PHT
  std::vector<std::uint8_t> ntaken_bank_;
  std::vector<std::uint16_t> local_hist_;  // kLocal per-branch histories
  std::vector<std::uint64_t> btb_tag_;
  std::vector<std::uint64_t> btb_target_;
  std::uint64_t history_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t mispredicts_ = 0;
};

/// Historical name for the Table II default.
using BiModePredictor = BranchPredictor;

}  // namespace mlsim::uarch
