// Set-associative cache with MSHR-based miss tracking and a selectable
// replacement policy. Used for L1I, L1D and the shared L2.
//
// MSHRs model miss-level parallelism: a miss to a line that already has an
// outstanding MSHR entry piggybacks on it (secondary miss) rather than
// issuing a second fill; when all MSHRs are busy the miss serialises behind
// the oldest one, adding visible latency.
//
// Replacement policies (docs/SWEEPS.md):
//   kLru / kFifo / kRandom — classic single-mechanism policies;
//   kDip    — set-dueling between LRU insertion and bimodal insertion (BIP):
//             two leader-set groups steer a saturating PSEL counter, the
//             follower sets adopt whichever insertion policy misses less;
//   kDrrip  — 2-bit re-reference interval prediction with SRRIP/BRRIP set
//             dueling (scan resistance via distant-future insertion);
//   kArc    — per-set adaptive replacement: resident lines split into a
//             recency list (T1) and a frequency list (T2), evicted tags kept
//             in bounded ghost lists (B1/B2) that steer the adaptation
//             parameter p toward whichever list sees more ghost hits.
// All policies are counter-driven (no RNG), so identical access sequences
// produce identical hit/miss streams — the property the sweep subsystem's
// bit-identity guarantees rest on.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "uarch/config.h"

namespace mlsim::uarch {

/// Result of a timed cache access.
struct CacheAccessResult {
  bool hit = false;
  /// Cycle at which the requested data is available.
  std::uint64_t ready_cycle = 0;
  /// True if the miss merged into an existing MSHR (secondary miss).
  bool mshr_merge = false;
};

class Cache {
 public:
  /// Throws CheckError when cfg names a replacement policy the simulator
  /// does not implement (any value beyond the ReplacementPolicy enum).
  explicit Cache(const CacheConfig& cfg, const char* name = "cache");

  /// Timed access at `now`. On a miss, `fill_ready` is the cycle the next
  /// level delivers the line (caller computes it by querying the next
  /// level / memory). Returns hit/miss and the data-ready cycle, accounting
  /// for MSHR occupancy.
  ///
  /// Usage contract: call probe() first to learn hit/miss, compute the fill
  /// time if needed, then call access() exactly once per reference.
  bool probe(std::uint64_t addr) const;
  CacheAccessResult access(std::uint64_t addr, std::uint64_t now,
                           std::uint64_t fill_ready, bool is_write);

  const CacheConfig& config() const { return cfg_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / static_cast<double>(total) : 0.0;
  }

  void reset_stats();

  std::uint64_t prefetches() const { return prefetches_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;         // access timestamp (LRU order)
    std::uint64_t fill_order = 0;  // fill timestamp (FIFO)
    std::uint8_t rrpv = 0;         // re-reference prediction value (DRRIP)
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  // tagged prefetch: untouched prefetch line
    bool in_t2 = false;       // ARC: frequency list membership
  };

  /// ARC per-set state: ghost lists of recently evicted tags and the
  /// adaptation parameter p (target size of the recency list T1).
  struct ArcSet {
    std::deque<std::uint64_t> b1;  // ghosts evicted from T1
    std::deque<std::uint64_t> b2;  // ghosts evicted from T2
    std::uint32_t p = 0;
  };

  /// Per-miss insertion decision carried from the miss bookkeeping to the
  /// fill: where ARC inserts the new line, and whether the tag was a B2
  /// ghost (ARC's REPLACE tie-break).
  struct InsertHint {
    bool arc_to_t2 = false;
    bool arc_was_b2_ghost = false;
  };

  void prefetch_line(std::uint64_t laddr);
  struct Mshr {
    std::uint64_t line_addr = ~0ull;
    std::uint64_t ready = 0;  // fill-complete cycle
    bool busy = false;
  };

  std::uint64_t line_addr(std::uint64_t addr) const { return addr / cfg_.line_bytes; }
  std::size_t set_index(std::uint64_t laddr) const { return laddr % num_sets_; }

  /// Demand-miss bookkeeping before the fill: PSEL dueling updates
  /// (DIP/DRRIP) and ARC ghost-hit adaptation. Returns the insertion hint.
  InsertHint note_miss(std::size_t set, std::uint64_t laddr);
  /// Promotion on a hit (policy-specific recency/RRPV/T2 updates).
  void on_hit(Line& ln);
  Line* select_victim(Line* base, std::size_t set, std::uint64_t addr,
                      const InsertHint& hint);
  /// Policy-specific state of a freshly filled line (insertion position).
  void on_insert(Line& ln, std::size_t set, const InsertHint& hint);
  /// Follower-set insertion choice for the dueling policies: true when the
  /// set should use the bimodal (BIP/BRRIP) insertion.
  bool duel_use_bimodal(std::size_t set);

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::vector<Line> lines_;  // num_sets_ * assoc, row-major by set
  std::vector<Mshr> mshrs_;
  std::vector<ArcSet> arc_;      // per set, kArc only
  std::uint64_t tick_ = 0;       // LRU clock
  std::uint64_t fill_tick_ = 0;  // FIFO clock
  std::uint32_t psel_ = 512;     // 10-bit duel counter, midpoint start
  std::uint64_t bip_ctr_ = 0;    // deterministic 1/32 bimodal throttle
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t prefetches_ = 0;
};

}  // namespace mlsim::uarch
