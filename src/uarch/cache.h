// Set-associative cache with true-LRU replacement and MSHR-based miss
// tracking. Used for L1I, L1D and the shared L2.
//
// MSHRs model miss-level parallelism: a miss to a line that already has an
// outstanding MSHR entry piggybacks on it (secondary miss) rather than
// issuing a second fill; when all MSHRs are busy the miss serialises behind
// the oldest one, adding visible latency.
#pragma once

#include <cstdint>
#include <vector>

#include "uarch/config.h"

namespace mlsim::uarch {

/// Result of a timed cache access.
struct CacheAccessResult {
  bool hit = false;
  /// Cycle at which the requested data is available.
  std::uint64_t ready_cycle = 0;
  /// True if the miss merged into an existing MSHR (secondary miss).
  bool mshr_merge = false;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg, const char* name = "cache");

  /// Timed access at `now`. On a miss, `fill_ready` is the cycle the next
  /// level delivers the line (caller computes it by querying the next
  /// level / memory). Returns hit/miss and the data-ready cycle, accounting
  /// for MSHR occupancy.
  ///
  /// Usage contract: call probe() first to learn hit/miss, compute the fill
  /// time if needed, then call access() exactly once per reference.
  bool probe(std::uint64_t addr) const;
  CacheAccessResult access(std::uint64_t addr, std::uint64_t now,
                           std::uint64_t fill_ready, bool is_write);

  const CacheConfig& config() const { return cfg_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / static_cast<double>(total) : 0.0;
  }

  void reset_stats();

  std::uint64_t prefetches() const { return prefetches_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;         // access timestamp (LRU)
    std::uint64_t fill_order = 0;  // fill timestamp (FIFO)
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  // tagged prefetch: untouched prefetch line
  };

  void prefetch_line(std::uint64_t laddr);
  struct Mshr {
    std::uint64_t line_addr = ~0ull;
    std::uint64_t ready = 0;  // fill-complete cycle
    bool busy = false;
  };

  std::uint64_t line_addr(std::uint64_t addr) const { return addr / cfg_.line_bytes; }
  std::size_t set_index(std::uint64_t laddr) const { return laddr % num_sets_; }
  Line* select_victim(Line* base, std::uint64_t addr);

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::vector<Line> lines_;  // num_sets_ * assoc, row-major by set
  std::vector<Mshr> mshrs_;
  std::uint64_t tick_ = 0;       // LRU clock
  std::uint64_t fill_tick_ = 0;  // FIFO clock
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t prefetches_ = 0;
};

}  // namespace mlsim::uarch
