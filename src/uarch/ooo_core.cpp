#include "uarch/ooo_core.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::uarch {

using trace::Annotation;
using trace::DynInst;
using trace::ExecUnit;
using trace::HitLevel;
using trace::OpClass;
using trace::TlbLevel;

namespace {
// Functional-unit instance counts per class on the 8-wide machine.
constexpr std::array<std::uint32_t, static_cast<std::size_t>(ExecUnit::kCount)>
    kUnitCounts = {4, 1, 2, 2, 1};  // ALU, MulDiv, FP, Mem, Branch
}  // namespace

OooCore::OooCore(const MachineConfig& cfg) : cfg_(cfg) {
  check(cfg.core.rob_entries > 0 && cfg.core.iq_entries > 0, "window sizes > 0");
  commit_ring_.assign(cfg.core.rob_entries, 0);
  issue_ring_.assign(cfg.core.iq_entries, 0);
  load_ring_.assign(cfg.core.lq_entries, 0);
  store_ring_.assign(cfg.core.sq_entries, 0);
  issue_bw_ring_.assign(cfg.core.issue_width, 0);
  for (std::size_t u = 0; u < kUnitCounts.size(); ++u) {
    unit_free_[u].assign(kUnitCounts[u], 0);
  }
}

std::uint32_t OooCore::data_latency(const MachineConfig& cfg, HitLevel level) {
  switch (level) {
    case HitLevel::kNone: return 0;
    case HitLevel::kL1: return cfg.l1d.latency;
    case HitLevel::kL2: return cfg.l1d.latency + cfg.l2.latency;
    case HitLevel::kMemory:
      return cfg.l1d.latency + cfg.l2.latency + cfg.memory_latency;
  }
  return 0;
}

std::uint32_t OooCore::fetch_penalty(const MachineConfig& cfg, HitLevel level) {
  switch (level) {
    case HitLevel::kNone:
    case HitLevel::kL1: return 0;  // L1I hit is pipelined into fetch
    case HitLevel::kL2: return cfg.l2.latency;
    case HitLevel::kMemory: return cfg.l2.latency + cfg.memory_latency;
  }
  return 0;
}

std::uint32_t OooCore::tlb_penalty(const MachineConfig& cfg, TlbLevel level) {
  switch (level) {
    case TlbLevel::kHit: return 0;
    case TlbLevel::kL2Tlb: return cfg.tlb.l2_latency;
    case TlbLevel::kWalk: return cfg.tlb.walk_latency;
  }
  return 0;
}

std::uint32_t OooCore::exec_base_latency(const DynInst& inst) {
  return trace::kBaseLatency[static_cast<std::size_t>(inst.op)];
}

InstTiming OooCore::process(const DynInst& inst, const Annotation& ann) {
  // ---- Fetch ---------------------------------------------------------------
  // Fetch advances to the max of several constraints; the winner is
  // recorded for stall attribution.
  std::uint64_t f = fetch_cycle_;
  enum class Why { kWidth, kRedirect, kRob, kIq, kLsq, kIcache };
  Why why = Why::kWidth;
  auto raise = [&](std::uint64_t t, Why w) {
    if (t > f) {
      f = t;
      why = w;
    }
  };
  raise(redirect_ready_, Why::kRedirect);

  // Back-pressure: a full ROB/IQ/LQ/SQ stalls the front end (finite fetch
  // buffer) — this is what makes memory-bound codes show high CPI.
  raise(commit_ring_[idx_ % commit_ring_.size()], Why::kRob);
  raise(issue_ring_[idx_ % issue_ring_.size()], Why::kIq);
  if (inst.op == OpClass::kLoad) {
    raise(load_ring_[load_idx_ % load_ring_.size()], Why::kLsq);
  } else if (inst.op == OpClass::kStore) {
    raise(store_ring_[store_idx_ % store_ring_.size()], Why::kLsq);
  }

  // Instruction cache: pay the miss penalty once per line transition.
  const std::uint64_t line = inst.pc / cfg_.l1i.line_bytes;
  if (line != icache_line_) {
    const std::uint64_t penalty =
        fetch_penalty(cfg_, ann.fetch_level) + tlb_penalty(cfg_, ann.itlb_level);
    icache_ready_ = f + penalty;
    icache_line_ = line;
  }
  raise(icache_ready_, Why::kIcache);

  // Fetch bandwidth: at most fetch_width instructions per cycle.
  if (first_fetch_ || f > fetch_cycle_) {
    fetch_cycle_ = f;
    fetch_in_cycle_ = 1;
    first_fetch_ = false;
  } else if (fetch_in_cycle_ >= cfg_.core.fetch_width) {
    ++fetch_cycle_;
    fetch_in_cycle_ = 1;
    f = fetch_cycle_;
  } else {
    f = fetch_cycle_;
    ++fetch_in_cycle_;
  }

  // ---- Dispatch (rename + window allocation) -------------------------------
  // Window occupancy was already enforced at fetch time (stalled front end),
  // so dispatch follows the fixed frontend pipeline.
  const std::uint64_t disp = f + cfg_.core.frontend_depth;

  // ---- Ready (data dependencies) -------------------------------------------
  std::uint64_t ready = disp;
  for (std::uint8_t k = 0; k < inst.n_src; ++k) {
    const std::uint8_t r = inst.src[k];
    if (r != 0) ready = std::max(ready, reg_ready_[r]);
  }
  // Memory dependence: a load that hits a recent in-flight store waits for
  // the store data (then forwards cheaply instead of accessing the cache).
  const bool forwarded = inst.op == OpClass::kLoad && ann.store_forward_dist > 0;
  if (forwarded) ready = std::max(ready, last_store_complete_);

  // ---- Issue ---------------------------------------------------------------
  // Bandwidth: ≤ issue_width per cycle (ring approximation), plus a free
  // functional unit of the right class.
  std::uint64_t issue = std::max(ready, issue_bw_ring_[idx_ % issue_bw_ring_.size()]);
  auto& units = unit_free_[static_cast<std::size_t>(trace::exec_unit_for(inst.op))];
  auto best = std::min_element(units.begin(), units.end());
  issue = std::max(issue, *best);

  // ---- Execute -------------------------------------------------------------
  std::uint32_t lat = exec_base_latency(inst);
  if (inst.op == OpClass::kLoad) {
    lat += tlb_penalty(cfg_, ann.dtlb_level);
    lat += forwarded ? 2 : data_latency(cfg_, ann.data_level);
  } else if (inst.op == OpClass::kStore) {
    // Address generation + dTLB; data is written at commit (store_lat).
    lat += tlb_penalty(cfg_, ann.dtlb_level);
  }
  const std::uint64_t complete = issue + lat;

  // Unit occupancy: divides are unpipelined and hold the unit.
  *best = trace::is_serializing(inst.op) ? complete : issue + 1;
  issue_bw_ring_[idx_ % issue_bw_ring_.size()] = issue + 1;
  issue_ring_[idx_ % issue_ring_.size()] = issue;

  for (std::uint8_t k = 0; k < inst.n_dst; ++k) {
    const std::uint8_t r = inst.dst[k];
    if (r != 0) reg_ready_[r] = complete;
  }

  // Branch misprediction: the front end refills after the branch resolves.
  if (trace::is_control(inst.op) && ann.branch_mispredicted) {
    redirect_ready_ =
        std::max(redirect_ready_, complete + cfg_.bp.mispredict_penalty);
  }

  // ---- Commit (in order, ≤ commit_width per cycle) --------------------------
  std::uint64_t commit = std::max(complete + 1, static_cast<std::uint64_t>(0));
  if (commit > commit_cycle_) {
    commit_cycle_ = commit;
    commit_in_cycle_ = 1;
  } else if (commit_in_cycle_ >= cfg_.core.commit_width) {
    ++commit_cycle_;
    commit_in_cycle_ = 1;
  } else {
    ++commit_in_cycle_;
  }
  commit = commit_cycle_;
  commit_ring_[idx_ % commit_ring_.size()] = commit;

  // ---- Store writeback -------------------------------------------------------
  std::uint64_t store_done = complete;
  if (inst.op == OpClass::kStore) {
    store_done = commit + data_latency(cfg_, ann.data_level);
    store_ring_[store_idx_ % store_ring_.size()] = store_done;
    ++store_idx_;
    last_store_complete_ = store_done;
  } else if (inst.op == OpClass::kLoad) {
    load_ring_[load_idx_ % load_ring_.size()] = complete;
    ++load_idx_;
  }

  InstTiming t;
  t.fetch_lat = static_cast<std::uint32_t>(idx_ == 0 ? 0 : f - last_fetch_time_);
  switch (why) {
    case Why::kWidth: stalls_.width += t.fetch_lat; break;
    case Why::kRedirect: stalls_.redirect += t.fetch_lat; break;
    case Why::kRob: stalls_.rob += t.fetch_lat; break;
    case Why::kIq: stalls_.iq += t.fetch_lat; break;
    case Why::kLsq: stalls_.lsq += t.fetch_lat; break;
    case Why::kIcache: stalls_.icache += t.fetch_lat; break;
  }
  t.exec_lat = static_cast<std::uint32_t>(complete - f);
  t.store_lat = static_cast<std::uint32_t>(store_done - complete);
  last_fetch_time_ = f;
  last_complete_ = std::max(last_complete_, complete);
  ++idx_;
  return t;
}

}  // namespace mlsim::uarch
