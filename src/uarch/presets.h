// Machine-configuration presets.
//
// table2() is the paper's target processor; the others span the design
// space the ML simulator is meant to explore: a small efficiency core, a
// wide server core, and an A64FX-like HPC core (the paper validates its
// accuracy claim against a gem5 A64FX model, §VI-A).
#pragma once

#include "uarch/config.h"

namespace mlsim::uarch {

/// The paper's Table II machine (defaults of MachineConfig).
inline MachineConfig table2() { return MachineConfig{}; }

/// Small efficiency core: narrow pipeline, small windows and caches.
inline MachineConfig little_core() {
  MachineConfig m;
  m.core.fetch_width = 2;
  m.core.issue_width = 2;
  m.core.commit_width = 2;
  m.core.iq_entries = 8;
  m.core.rob_entries = 16;
  m.core.lq_entries = 8;
  m.core.sq_entries = 8;
  m.core.frontend_depth = 4;
  m.l1i.size_bytes = 16 * 1024;
  m.l1d.size_bytes = 16 * 1024;
  m.l2.size_bytes = 256 * 1024;
  m.l2.assoc = 8;
  m.bp.choice_bits = 10;
  m.bp.direction_bits = 10;
  m.bp.mispredict_penalty = 8;
  return m;
}

/// Wide server core: deeper windows, larger caches, longer refill.
inline MachineConfig big_core() {
  MachineConfig m;
  m.core.fetch_width = 6;
  m.core.issue_width = 12;
  m.core.commit_width = 12;
  m.core.iq_entries = 120;
  m.core.rob_entries = 256;
  m.core.lq_entries = 72;
  m.core.sq_entries = 56;
  m.core.frontend_depth = 8;
  m.l1i.size_bytes = 64 * 1024;
  m.l1i.assoc = 8;
  m.l1d.size_bytes = 48 * 1024;
  m.l1d.assoc = 12;
  m.l2.size_bytes = 2 * 1024 * 1024;
  m.bp.mispredict_penalty = 16;
  m.memory_latency = 130;
  return m;
}

/// A64FX-like HPC core (4-wide, 128-entry ROB, 64KB L1D, 8MB shared L2,
/// no L3) — the configuration class the paper's accuracy validation uses.
inline MachineConfig a64fx_like() {
  MachineConfig m;
  m.core.fetch_width = 4;
  m.core.issue_width = 4;
  m.core.commit_width = 4;
  m.core.iq_entries = 48;
  m.core.rob_entries = 128;
  m.core.lq_entries = 40;
  m.core.sq_entries = 24;
  m.l1d.size_bytes = 64 * 1024;
  m.l1d.assoc = 4;
  m.l1d.latency = 5;
  m.l2.size_bytes = 8 * 1024 * 1024;
  m.l2.latency = 37;
  m.memory_latency = 145;
  return m;
}

}  // namespace mlsim::uarch
