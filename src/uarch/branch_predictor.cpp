#include "uarch/branch_predictor.h"

namespace mlsim::uarch {

namespace {
inline void saturating_update(std::uint8_t& ctr, bool up) {
  if (up) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }
}
}  // namespace

BranchPredictor::BranchPredictor(const BranchPredictorConfig& cfg)
    : cfg_(cfg),
      choice_(std::size_t{1} << cfg.choice_bits, 1),
      taken_bank_(std::size_t{1} << cfg.direction_bits, 2),
      ntaken_bank_(std::size_t{1} << cfg.direction_bits, 1),
      local_hist_(cfg.local_history_entries, 0),
      btb_tag_(cfg.btb_entries, ~0ull),
      btb_target_(cfg.btb_entries, 0) {}

std::uint32_t BranchPredictor::choice_index(std::uint64_t pc) const {
  return static_cast<std::uint32_t>((pc >> 2) & ((1ull << cfg_.choice_bits) - 1));
}

std::uint32_t BranchPredictor::direction_index(std::uint64_t pc) const {
  const std::uint64_t mask = (1ull << cfg_.direction_bits) - 1;
  const std::uint64_t hist_mask = (1ull << cfg_.history_bits) - 1;
  switch (cfg_.kind) {
    case BranchPredictorKind::kBimodal:
      return static_cast<std::uint32_t>((pc >> 2) & mask);
    case BranchPredictorKind::kGshare:
    case BranchPredictorKind::kBiMode:
      return static_cast<std::uint32_t>(((pc >> 2) ^ (history_ & hist_mask)) & mask);
    case BranchPredictorKind::kLocal: {
      const std::uint16_t lh =
          local_hist_[(pc >> 2) % local_hist_.size()];
      return static_cast<std::uint32_t>(((pc >> 2) ^ (lh & hist_mask)) & mask);
    }
  }
  return 0;
}

// For the single-PHT kinds (gshare/local/bimodal) the "taken bank" doubles
// as the PHT; the not-taken bank and choice table are unused.
bool BranchPredictor::predict(std::uint64_t pc) const {
  const std::uint32_t di = direction_index(pc);
  if (cfg_.kind == BranchPredictorKind::kBiMode) {
    const bool use_taken_bank = choice_[choice_index(pc)] >= 2;
    const auto& bank = use_taken_bank ? taken_bank_ : ntaken_bank_;
    return bank[di] >= 2;
  }
  return taken_bank_[di] >= 2;
}

bool BranchPredictor::update(std::uint64_t pc, bool taken) {
  ++lookups_;
  const std::uint32_t di = direction_index(pc);
  bool correct;
  if (cfg_.kind == BranchPredictorKind::kBiMode) {
    const std::uint32_t ci = choice_index(pc);
    const bool use_taken_bank = choice_[ci] >= 2;
    auto& bank = use_taken_bank ? taken_bank_ : ntaken_bank_;
    const bool predicted = bank[di] >= 2;
    correct = predicted == taken;
    // Bi-mode update rule: the selected bank always trains; the choice PHT
    // trains unless the selected bank was correct while disagreeing with
    // the choice direction (partial update).
    saturating_update(bank[di], taken);
    if (!(correct && predicted != use_taken_bank)) {
      saturating_update(choice_[ci], taken);
    }
  } else {
    const bool predicted = taken_bank_[di] >= 2;
    correct = predicted == taken;
    saturating_update(taken_bank_[di], taken);
  }
  if (!correct) ++mispredicts_;

  history_ = (history_ << 1) | static_cast<std::uint64_t>(taken);
  if (cfg_.kind == BranchPredictorKind::kLocal) {
    std::uint16_t& lh = local_hist_[(pc >> 2) % local_hist_.size()];
    lh = static_cast<std::uint16_t>((lh << 1) | (taken ? 1 : 0));
  }
  return correct;
}

bool BranchPredictor::btb_hit(std::uint64_t pc) const {
  const std::size_t idx = (pc >> 2) % btb_tag_.size();
  return btb_tag_[idx] == pc;
}

void BranchPredictor::btb_insert(std::uint64_t pc, std::uint64_t target) {
  const std::size_t idx = (pc >> 2) % btb_tag_.size();
  btb_tag_[idx] = pc;
  btb_target_[idx] = target;
}

}  // namespace mlsim::uarch
