// Two-stage TLB (paper Table II: "2-stage TLB, 1KB 8-way TLB caches with 6
// MSHRs"). Stage 1 is a small fully-associative-ish L1 TLB; stage 2 is a
// larger set-associative TLB cache; misses in both trigger a page-table walk.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/annotation.h"
#include "uarch/config.h"

namespace mlsim::uarch {

struct TlbResult {
  trace::TlbLevel level = trace::TlbLevel::kHit;
  std::uint32_t latency = 0;  // additional cycles on top of the access
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg = {});

  TlbResult access(std::uint64_t vaddr);

  std::uint64_t l1_hits() const { return l1_hits_; }
  std::uint64_t l2_hits() const { return l2_hits_; }
  std::uint64_t walks() const { return walks_; }

 private:
  std::uint64_t page(std::uint64_t vaddr) const { return vaddr / cfg_.page_bytes; }

  TlbConfig cfg_;
  // L1: direct-mapped on page number with tag (small, 1-cycle).
  std::vector<std::uint64_t> l1_tags_;
  // L2: set-associative with LRU.
  struct Entry {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
  };
  std::vector<Entry> l2_;
  std::size_t l2_sets_;
  std::uint64_t tick_ = 0;
  std::uint64_t l1_hits_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t walks_ = 0;
};

}  // namespace mlsim::uarch
