// Trace annotation and ground-truth label generation.
//
// Annotator runs the branch predictor, cache hierarchy and TLBs over the
// functional instruction stream and attaches the dynamic-state features the
// ML model consumes (this is the cheap step that Table IV exploits for
// design-space exploration: changing cache/BP structures only re-runs this).
//
// The ground-truth pipeline then feeds (instruction, annotation) into the
// OooCore timing model to produce the three latency labels used for
// training and for every "error vs. cycle-accurate simulator" experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/annotation.h"
#include "trace/functional_sim.h"
#include "trace/isa.h"
#include "trace/trace.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/ooo_core.h"
#include "uarch/tlb.h"

namespace mlsim::uarch {

/// Runs the structural machine models over the dynamic stream to produce
/// per-instruction annotations. Pseudo-time is the dynamic instruction
/// index, which is sufficient for MSHR merge behaviour.
class Annotator {
 public:
  explicit Annotator(const MachineConfig& cfg = {});

  trace::Annotation annotate(const trace::DynInst& inst);

  const BiModePredictor& branch_predictor() const { return bp_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }

 private:
  trace::HitLevel lookup_data(std::uint64_t addr, bool is_write);
  trace::HitLevel lookup_fetch(std::uint64_t pc);

  MachineConfig cfg_;
  BiModePredictor bp_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Tlb itlb_;
  Tlb dtlb_;
  std::uint64_t now_ = 0;  // pseudo-time

  struct StoreRecord {
    std::uint64_t addr = 0;
    std::uint64_t index = 0;
    std::uint8_t size_log2 = 0;
  };
  std::vector<StoreRecord> store_window_;
  std::size_t store_head_ = 0;
};

/// One fully-labeled trace record.
struct LabeledInst {
  trace::DynInst inst;
  trace::Annotation ann;
  InstTiming timing;
};

struct LabeledTrace {
  std::string benchmark;
  MachineConfig machine;
  std::vector<LabeledInst> records;

  std::size_t size() const { return records.size(); }

  /// Ground-truth CPI: total fetch-latency cycles (plus final drain) over
  /// the instruction count.
  double cpi() const;
  std::uint64_t total_cycles() const;
};

/// Generate `n` instructions of benchmark `profile`, annotate them and label
/// them with OooCore ground truth.
LabeledTrace generate_labeled_trace(const trace::WorkloadProfile& profile,
                                    std::size_t n,
                                    const MachineConfig& machine = {},
                                    std::uint64_t seed = 1);

/// Annotate only (no timing labels) — the deployment path used when the ML
/// simulator replaces the cycle-level model, and for Table IV re-tracing.
std::vector<LabeledInst> annotate_trace(const std::vector<trace::DynInst>& insts,
                                        const MachineConfig& machine = {});

/// Feature-encode a labeled trace (keeps ground-truth targets).
trace::EncodedTrace encode_trace(const LabeledTrace& labeled);

/// One-call pipeline: functional sim → annotate → label → encode.
trace::EncodedTrace make_encoded_trace(const trace::WorkloadProfile& profile,
                                       std::size_t n,
                                       const MachineConfig& machine = {},
                                       std::uint64_t seed = 1);

}  // namespace mlsim::uarch
