#include "uarch/cache.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::uarch {

namespace {

// Set-dueling constituency (DIP/DRRIP): every 32nd set is dedicated to the
// baseline insertion (LRU / SRRIP), the set after it to the bimodal one
// (BIP / BRRIP); the rest follow the PSEL counter. With fewer than 32 sets
// the leaders degenerate to sets 0 and 1, which keeps the duel functional
// for the small caches the tests use.
constexpr std::size_t kDuelStride = 32;
// Bimodal insertion promotes to MRU / near-immediate re-reference once
// every kBimodalEpsilon fills (deterministic counter, no RNG).
constexpr std::uint64_t kBimodalEpsilon = 32;
constexpr std::uint32_t kPselMax = 1023;  // 10-bit saturating counter
constexpr std::uint32_t kPselMid = 512;
constexpr std::uint8_t kRrpvMax = 3;  // 2-bit RRPV

bool is_baseline_leader(std::size_t set) { return set % kDuelStride == 0; }
bool is_bimodal_leader(std::size_t set) { return set % kDuelStride == 1; }

}  // namespace

const char* to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru: return "lru";
    case ReplacementPolicy::kFifo: return "fifo";
    case ReplacementPolicy::kRandom: return "random";
    case ReplacementPolicy::kDip: return "dip";
    case ReplacementPolicy::kDrrip: return "drrip";
    case ReplacementPolicy::kArc: return "arc";
  }
  return "unknown";
}

ReplacementPolicy replacement_policy_from_string(const std::string& s) {
  if (s == "lru") return ReplacementPolicy::kLru;
  if (s == "fifo") return ReplacementPolicy::kFifo;
  if (s == "random") return ReplacementPolicy::kRandom;
  if (s == "dip") return ReplacementPolicy::kDip;
  if (s == "drrip") return ReplacementPolicy::kDrrip;
  if (s == "arc") return ReplacementPolicy::kArc;
  throw CheckError("unknown replacement policy '" + s +
                   "' (expected lru|fifo|random|dip|drrip|arc)");
}

Cache::Cache(const CacheConfig& cfg, const char* /*name*/) : cfg_(cfg) {
  check(cfg.line_bytes > 0 && (cfg.line_bytes & (cfg.line_bytes - 1)) == 0,
        "cache line size must be a power of two");
  check(cfg.assoc > 0, "cache associativity must be positive");
  // Reject unimplemented policies at construction, not silently at the
  // first eviction: a config that asks for a policy this simulator cannot
  // model must fail typed (exit 4 raw, exit 2 once the CLI pre-validates).
  check(static_cast<std::uint8_t>(cfg.replacement) <=
            static_cast<std::uint8_t>(ReplacementPolicy::kArc),
        "unimplemented cache replacement policy (value " +
            std::to_string(static_cast<unsigned>(cfg.replacement)) + ")");
  num_sets_ = std::max<std::size_t>(1, cfg.size_bytes / cfg.line_bytes / cfg.assoc);
  lines_.resize(num_sets_ * cfg.assoc);
  mshrs_.resize(std::max<std::uint32_t>(1, cfg.mshrs));
  if (cfg_.replacement == ReplacementPolicy::kArc) arc_.resize(num_sets_);
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t laddr = line_addr(addr);
  const std::size_t set = set_index(laddr);
  const Line* base = &lines_[set * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (base[w].valid && base[w].tag == laddr) return true;
  }
  return false;
}

void Cache::on_hit(Line& ln) {
  ln.lru = tick_;
  switch (cfg_.replacement) {
    case ReplacementPolicy::kDrrip:
      ln.rrpv = 0;  // near-immediate re-reference
      break;
    case ReplacementPolicy::kArc:
      ln.in_t2 = true;  // a reuse promotes T1 -> T2; T2 hits stay in T2
      break;
    default:
      break;
  }
}

bool Cache::duel_use_bimodal(std::size_t set) {
  if (is_baseline_leader(set)) return false;
  if (is_bimodal_leader(set)) return true;
  // High PSEL = the baseline leaders are missing more: follow the bimodal
  // insertion.
  return psel_ > kPselMid;
}

Cache::InsertHint Cache::note_miss(std::size_t set, std::uint64_t laddr) {
  InsertHint hint;
  switch (cfg_.replacement) {
    case ReplacementPolicy::kDip:
    case ReplacementPolicy::kDrrip:
      if (is_baseline_leader(set)) {
        if (psel_ < kPselMax) ++psel_;
      } else if (is_bimodal_leader(set)) {
        if (psel_ > 0) --psel_;
      }
      break;
    case ReplacementPolicy::kArc: {
      ArcSet& st = arc_[set];
      const auto b1_it = std::find(st.b1.begin(), st.b1.end(), laddr);
      if (b1_it != st.b1.end()) {
        // Ghost hit in B1: the recency list was evicting too eagerly.
        const std::uint32_t delta = static_cast<std::uint32_t>(std::max<std::size_t>(
            1, st.b2.size() / std::max<std::size_t>(1, st.b1.size())));
        st.p = std::min<std::uint32_t>(cfg_.assoc, st.p + delta);
        st.b1.erase(b1_it);
        hint.arc_to_t2 = true;
        break;
      }
      const auto b2_it = std::find(st.b2.begin(), st.b2.end(), laddr);
      if (b2_it != st.b2.end()) {
        // Ghost hit in B2: the frequency list deserved more room.
        const std::uint32_t delta = static_cast<std::uint32_t>(std::max<std::size_t>(
            1, st.b1.size() / std::max<std::size_t>(1, st.b2.size())));
        st.p = st.p > delta ? st.p - delta : 0;
        st.b2.erase(b2_it);
        hint.arc_to_t2 = true;
        hint.arc_was_b2_ghost = true;
      }
      break;
    }
    default:
      break;
  }
  return hint;
}

CacheAccessResult Cache::access(std::uint64_t addr, std::uint64_t now,
                                std::uint64_t fill_ready, bool is_write) {
  ++tick_;
  const std::uint64_t laddr = line_addr(addr);
  const std::size_t set = set_index(laddr);
  Line* base = &lines_[set * cfg_.assoc];

  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == laddr) {
      ++hits_;
      on_hit(ln);
      if (is_write) ln.dirty = true;
      // Tagged prefetching: the first demand touch of a prefetched line
      // keeps the stream running by prefetching the next one.
      if (ln.prefetched) {
        ln.prefetched = false;
        if (cfg_.next_line_prefetch) prefetch_line(laddr + 1);
      }
      return {.hit = true, .ready_cycle = now + cfg_.latency, .mshr_merge = false};
    }
  }

  // Miss path. First look for an in-flight MSHR for the same line.
  ++misses_;
  const InsertHint hint = note_miss(set, laddr);
  for (auto& m : mshrs_) {
    if (m.busy && m.ready <= now) m.busy = false;  // retire completed fills
  }
  for (auto& m : mshrs_) {
    if (m.busy && m.line_addr == laddr) {
      // Secondary miss: data arrives with the outstanding fill.
      return {.hit = false, .ready_cycle = std::max(m.ready, now + cfg_.latency),
              .mshr_merge = true};
    }
  }

  // Allocate an MSHR; if all busy, serialise behind the soonest-free one.
  Mshr* slot = nullptr;
  std::uint64_t earliest_free = ~0ull;
  for (auto& m : mshrs_) {
    if (!m.busy) {
      slot = &m;
      break;
    }
    earliest_free = std::min(earliest_free, m.ready);
  }
  std::uint64_t start = now;
  if (slot == nullptr) {
    start = std::max(now, earliest_free);
    for (auto& m : mshrs_) {
      if (m.ready == earliest_free) {
        slot = &m;
        break;
      }
    }
  }
  check(slot != nullptr, "MSHR allocation failed");
  const std::uint64_t ready = fill_ready + (start - now);
  slot->busy = true;
  slot->line_addr = laddr;
  slot->ready = ready;

  Line* victim = select_victim(base, set, addr, hint);
  victim->valid = true;
  victim->tag = laddr;
  victim->fill_order = fill_tick_++;
  victim->dirty = is_write;
  victim->prefetched = false;
  on_insert(*victim, set, hint);

  // Tagged next-line prefetch: a demand miss pulls in the following line.
  if (cfg_.next_line_prefetch) prefetch_line(laddr + 1);

  return {.hit = false, .ready_cycle = ready, .mshr_merge = false};
}

void Cache::prefetch_line(std::uint64_t laddr) {
  const std::size_t set = set_index(laddr);
  Line* base = &lines_[set * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (base[w].valid && base[w].tag == laddr) return;  // already resident
  }
  // Prefetches insert without the demand-miss bookkeeping (no PSEL vote, no
  // ghost-list adaptation): a speculative fill must not steer the duel.
  const InsertHint hint;
  Line* victim = select_victim(base, set, laddr * cfg_.line_bytes, hint);
  victim->valid = true;
  victim->tag = laddr;
  victim->fill_order = fill_tick_++;
  victim->dirty = false;
  on_insert(*victim, set, hint);
  victim->prefetched = true;
  ++prefetches_;
}

Cache::Line* Cache::select_victim(Line* base, std::size_t set,
                                  std::uint64_t addr,
                                  const InsertHint& hint) {
  // Invalid ways first, regardless of policy.
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (!base[w].valid) return &base[w];
  }
  const auto lru_of = [&](auto pred) -> Line* {
    Line* victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
      if (!pred(base[w])) continue;
      if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
    }
    return victim;
  };
  switch (cfg_.replacement) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kDip:
      // DIP victimises the LRU end like LRU; only insertion differs.
      return lru_of([](const Line&) { return true; });
    case ReplacementPolicy::kFifo: {
      Line* victim = base;
      for (std::uint32_t w = 1; w < cfg_.assoc; ++w) {
        if (base[w].fill_order < victim->fill_order) victim = &base[w];
      }
      return victim;
    }
    case ReplacementPolicy::kRandom: {
      // Deterministic pseudo-random way from the access address + clock.
      std::uint64_t h = addr * 0x9e3779b97f4a7c15ull ^ tick_;
      h ^= h >> 29;
      return &base[h % cfg_.assoc];
    }
    case ReplacementPolicy::kDrrip: {
      // Evict the first way predicted for the distant future; age the set
      // until one is.
      for (;;) {
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
          if (base[w].rrpv >= kRrpvMax) return &base[w];
        }
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) ++base[w].rrpv;
      }
    }
    case ReplacementPolicy::kArc: {
      ArcSet& st = arc_[set];
      std::uint32_t t1 = 0;
      for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        if (!base[w].in_t2) ++t1;
      }
      const std::uint32_t t2 = cfg_.assoc - t1;
      // ARC's REPLACE: shrink T1 when it exceeds its target p (or sits at
      // the target and the miss was a B2 ghost); otherwise shrink T2.
      bool from_t1 =
          t1 >= 1 && (t1 > st.p || (hint.arc_was_b2_ghost && t1 == st.p));
      if (!from_t1 && t2 == 0) from_t1 = true;
      Line* victim =
          lru_of([from_t1](const Line& ln) { return ln.in_t2 != from_t1; });
      check(victim != nullptr, "ARC victim selection found no candidate");
      auto& ghosts = from_t1 ? st.b1 : st.b2;
      ghosts.push_front(victim->tag);
      if (ghosts.size() > cfg_.assoc) ghosts.pop_back();
      return victim;
    }
  }
  // The constructor range-checks cfg_.replacement; reaching here means the
  // enum grew without a victim rule.
  throw CheckError("cache replacement policy has no victim-selection rule");
}

void Cache::on_insert(Line& ln, std::size_t set, const InsertHint& hint) {
  ln.lru = tick_;
  ln.rrpv = 0;
  ln.in_t2 = false;
  switch (cfg_.replacement) {
    case ReplacementPolicy::kDip:
      // BIP inserts at the LRU end (timestamp 0: next victim unless
      // re-referenced) except once per epsilon window.
      if (duel_use_bimodal(set) && bip_ctr_++ % kBimodalEpsilon != 0) {
        ln.lru = 0;
      }
      break;
    case ReplacementPolicy::kDrrip:
      if (duel_use_bimodal(set)) {
        // BRRIP: distant future, with a rare long-interval insertion.
        ln.rrpv = bip_ctr_++ % kBimodalEpsilon == 0 ? kRrpvMax - 1 : kRrpvMax;
      } else {
        ln.rrpv = kRrpvMax - 1;  // SRRIP: long re-reference interval
      }
      break;
    case ReplacementPolicy::kArc:
      ln.in_t2 = hint.arc_to_t2;
      break;
    default:
      break;
  }
}

void Cache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mlsim::uarch
