#include "uarch/cache.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::uarch {

Cache::Cache(const CacheConfig& cfg, const char* /*name*/) : cfg_(cfg) {
  check(cfg.line_bytes > 0 && (cfg.line_bytes & (cfg.line_bytes - 1)) == 0,
        "cache line size must be a power of two");
  check(cfg.assoc > 0, "cache associativity must be positive");
  num_sets_ = std::max<std::size_t>(1, cfg.size_bytes / cfg.line_bytes / cfg.assoc);
  lines_.resize(num_sets_ * cfg.assoc);
  mshrs_.resize(std::max<std::uint32_t>(1, cfg.mshrs));
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t laddr = line_addr(addr);
  const std::size_t set = set_index(laddr);
  const Line* base = &lines_[set * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (base[w].valid && base[w].tag == laddr) return true;
  }
  return false;
}

CacheAccessResult Cache::access(std::uint64_t addr, std::uint64_t now,
                                std::uint64_t fill_ready, bool is_write) {
  ++tick_;
  const std::uint64_t laddr = line_addr(addr);
  const std::size_t set = set_index(laddr);
  Line* base = &lines_[set * cfg_.assoc];

  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == laddr) {
      ++hits_;
      ln.lru = tick_;
      if (is_write) ln.dirty = true;
      // Tagged prefetching: the first demand touch of a prefetched line
      // keeps the stream running by prefetching the next one.
      if (ln.prefetched) {
        ln.prefetched = false;
        if (cfg_.next_line_prefetch) prefetch_line(laddr + 1);
      }
      return {.hit = true, .ready_cycle = now + cfg_.latency, .mshr_merge = false};
    }
  }

  // Miss path. First look for an in-flight MSHR for the same line.
  ++misses_;
  for (auto& m : mshrs_) {
    if (m.busy && m.ready <= now) m.busy = false;  // retire completed fills
  }
  for (auto& m : mshrs_) {
    if (m.busy && m.line_addr == laddr) {
      // Secondary miss: data arrives with the outstanding fill.
      return {.hit = false, .ready_cycle = std::max(m.ready, now + cfg_.latency),
              .mshr_merge = true};
    }
  }

  // Allocate an MSHR; if all busy, serialise behind the soonest-free one.
  Mshr* slot = nullptr;
  std::uint64_t earliest_free = ~0ull;
  for (auto& m : mshrs_) {
    if (!m.busy) {
      slot = &m;
      break;
    }
    earliest_free = std::min(earliest_free, m.ready);
  }
  std::uint64_t start = now;
  if (slot == nullptr) {
    start = std::max(now, earliest_free);
    for (auto& m : mshrs_) {
      if (m.ready == earliest_free) {
        slot = &m;
        break;
      }
    }
  }
  check(slot != nullptr, "MSHR allocation failed");
  const std::uint64_t ready = fill_ready + (start - now);
  slot->busy = true;
  slot->line_addr = laddr;
  slot->ready = ready;

  Line* victim = select_victim(base, addr);
  victim->valid = true;
  victim->tag = laddr;
  victim->lru = tick_;
  victim->fill_order = fill_tick_++;
  victim->dirty = is_write;
  victim->prefetched = false;

  // Tagged next-line prefetch: a demand miss pulls in the following line.
  if (cfg_.next_line_prefetch) prefetch_line(laddr + 1);

  return {.hit = false, .ready_cycle = ready, .mshr_merge = false};
}

void Cache::prefetch_line(std::uint64_t laddr) {
  const std::size_t set = set_index(laddr);
  Line* base = &lines_[set * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (base[w].valid && base[w].tag == laddr) return;  // already resident
  }
  Line* victim = select_victim(base, laddr * cfg_.line_bytes);
  victim->valid = true;
  victim->tag = laddr;
  victim->lru = tick_;
  victim->fill_order = fill_tick_++;
  victim->dirty = false;
  victim->prefetched = true;
  ++prefetches_;
}

Cache::Line* Cache::select_victim(Line* base, std::uint64_t addr) {
  // Invalid ways first, regardless of policy.
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (!base[w].valid) return &base[w];
  }
  switch (cfg_.replacement) {
    case ReplacementPolicy::kLru: {
      Line* victim = base;
      for (std::uint32_t w = 1; w < cfg_.assoc; ++w) {
        if (base[w].lru < victim->lru) victim = &base[w];
      }
      return victim;
    }
    case ReplacementPolicy::kFifo: {
      Line* victim = base;
      for (std::uint32_t w = 1; w < cfg_.assoc; ++w) {
        if (base[w].fill_order < victim->fill_order) victim = &base[w];
      }
      return victim;
    }
    case ReplacementPolicy::kRandom: {
      // Deterministic pseudo-random way from the access address + clock.
      std::uint64_t h = addr * 0x9e3779b97f4a7c15ull ^ tick_;
      h ^= h >> 29;
      return &base[h % cfg_.assoc];
    }
  }
  return base;
}

void Cache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mlsim::uarch
