#include "uarch/tlb.h"

#include <algorithm>

#include "common/check.h"

namespace mlsim::uarch {

Tlb::Tlb(const TlbConfig& cfg) : cfg_(cfg) {
  check(cfg.l1_entries > 0 && cfg.l2_entries > 0, "TLB sizes must be positive");
  l1_tags_.assign(cfg.l1_entries, ~0ull);
  l2_sets_ = std::max<std::size_t>(1, cfg.l2_entries / cfg.l2_assoc);
  l2_.resize(l2_sets_ * cfg.l2_assoc);
}

TlbResult Tlb::access(std::uint64_t vaddr) {
  ++tick_;
  const std::uint64_t pg = page(vaddr);
  const std::size_t l1_idx = pg % l1_tags_.size();
  if (l1_tags_[l1_idx] == pg) {
    ++l1_hits_;
    return {trace::TlbLevel::kHit, 0};
  }

  const std::size_t set = pg % l2_sets_;
  Entry* base = &l2_[set * cfg_.l2_assoc];
  for (std::uint32_t w = 0; w < cfg_.l2_assoc; ++w) {
    if (base[w].valid && base[w].tag == pg) {
      base[w].lru = tick_;
      l1_tags_[l1_idx] = pg;
      ++l2_hits_;
      return {trace::TlbLevel::kL2Tlb, cfg_.l2_latency};
    }
  }

  // Walk: fill both levels.
  ++walks_;
  Entry* victim = base;
  for (std::uint32_t w = 1; w < cfg_.l2_assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  victim->valid = true;
  victim->tag = pg;
  victim->lru = tick_;
  l1_tags_[l1_idx] = pg;
  return {trace::TlbLevel::kWalk, cfg_.walk_latency};
}

}  // namespace mlsim::uarch
