// Interval-model core simulator — the ZSim-class baseline.
//
// ZSim achieves high speed by replacing cycle-accurate core simulation with a
// simplified bound-weave core model; we reproduce that trade-off with an
// interval model (Genbrugge, Eyerman, Eeckhout, HPCA'10): the core runs at
// its dispatch-width steady state, punctuated by miss intervals (branch
// mispredictions, long-latency loads) whose penalties are added analytically.
// It is much faster than OooCore and correspondingly less accurate, and its
// parallelism is limited to the number of simulated cores — exactly the
// positioning ZSim has in the paper's Figure 10.
#pragma once

#include <cstdint>

#include "trace/annotation.h"
#include "trace/isa.h"
#include "uarch/config.h"

namespace mlsim::uarch {

class IntervalCore {
 public:
  explicit IntervalCore(const MachineConfig& cfg = {});

  /// Account one instruction; returns the cycles charged for it.
  std::uint64_t process(const trace::DynInst& inst, const trace::Annotation& ann);

  std::uint64_t cycles() const;
  std::uint64_t instructions() const { return insts_; }
  double cpi() const {
    return insts_ ? static_cast<double>(cycles()) / static_cast<double>(insts_) : 0.0;
  }

 private:
  MachineConfig cfg_;
  // Fractional cycle accumulator for the width-limited steady state.
  std::uint64_t base_slots_ = 0;  // instructions dispatched
  std::uint64_t penalty_cycles_ = 0;
  std::uint64_t insts_ = 0;
  // Overlap model: long-latency loads within one ROB window overlap.
  std::uint64_t last_miss_inst_ = 0;
};

}  // namespace mlsim::uarch
