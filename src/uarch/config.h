// Target processor configuration (paper Table II) plus derived latencies.
#pragma once

#include <cstdint>
#include <string>

namespace mlsim::uarch {

/// Replacement policy (Table IV lists it among the parameters explorable
/// without retraining — changing it only changes the trace's hit levels).
/// Constructing a Cache with a value outside this list is a typed
/// CheckError, never a silent fallback to LRU.
enum class ReplacementPolicy : std::uint8_t {
  kLru = 0,   // true LRU (paper's Table II configuration)
  kFifo,      // evict oldest fill
  kRandom,    // pseudo-random victim (deterministic hash of the access)
  kDip,       // set-dueling LRU vs bimodal insertion (BIP), PSEL-selected
  kDrrip,     // 2-bit RRIP with SRRIP/BRRIP set dueling
  kArc,       // adaptive recency/frequency split with per-set ghost lists
};

/// Lowercase flag/spec spelling ("lru", "dip", ...).
const char* to_string(ReplacementPolicy p);
/// Parse the to_string spelling; throws CheckError on anything else.
ReplacementPolicy replacement_policy_from_string(const std::string& s);

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t assoc = 2;
  std::uint32_t line_bytes = 64;
  std::uint32_t mshrs = 16;
  std::uint32_t latency = 5;  // hit latency in cycles
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  /// Next-line prefetch on miss (sequential streams stop missing).
  bool next_line_prefetch = false;
};

struct TlbConfig {
  std::uint32_t l1_entries = 64;
  std::uint32_t l2_entries = 1024 / 8;  // "1KB 8-way TLB caches"
  std::uint32_t l2_assoc = 8;
  std::uint32_t mshrs = 6;
  std::uint32_t l2_latency = 8;
  std::uint32_t walk_latency = 40;
  std::uint32_t page_bytes = 4096;
};

/// Direction-prediction algorithm (Table IV lists the algorithm among the
/// no-retraining DSE parameters).
enum class BranchPredictorKind : std::uint8_t {
  kBiMode = 0,  // paper's Table II configuration
  kGshare,      // global history xor PC into one PHT
  kLocal,       // per-branch local history into a shared PHT
  kBimodal,     // plain per-PC 2-bit counters (no history)
};

struct BranchPredictorConfig {
  BranchPredictorKind kind = BranchPredictorKind::kBiMode;
  std::uint32_t choice_bits = 13;   // bi-mode choice PHT (8k entries)
  std::uint32_t direction_bits = 13;
  std::uint32_t history_bits = 12;
  std::uint32_t local_history_entries = 1024;  // kLocal only
  std::uint32_t btb_entries = 4096;
  std::uint32_t mispredict_penalty = 12;  // pipeline refill cycles
};

struct CoreConfig {
  std::uint32_t fetch_width = 3;   // "3-wide fetch"
  std::uint32_t issue_width = 8;   // "8-wide out-of-order issue/commit"
  std::uint32_t commit_width = 8;
  std::uint32_t iq_entries = 32;   // instruction queue
  std::uint32_t rob_entries = 40;  // reorder buffer
  std::uint32_t lq_entries = 16;   // load queue
  std::uint32_t sq_entries = 16;   // store queue
  std::uint32_t frontend_depth = 6;  // fetch-to-dispatch pipeline depth
};

/// Full machine configuration — defaults reproduce Table II.
struct MachineConfig {
  CoreConfig core;
  BranchPredictorConfig bp;
  CacheConfig l1i{.size_bytes = 48 * 1024, .assoc = 3, .line_bytes = 64,
                  .mshrs = 4, .latency = 1};
  CacheConfig l1d{.size_bytes = 32 * 1024, .assoc = 2, .line_bytes = 64,
                  .mshrs = 16, .latency = 5};
  CacheConfig l2{.size_bytes = 1024 * 1024, .assoc = 16, .line_bytes = 64,
                 .mshrs = 32, .latency = 29};
  TlbConfig tlb;
  std::uint32_t memory_latency = 110;  // cycles, beyond L2

  std::string describe() const;
};

}  // namespace mlsim::uarch
