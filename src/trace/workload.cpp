#include "trace/workload.h"

#include <string_view>

#include "common/check.h"

namespace mlsim::trace {

std::string_view to_string(OpClass op) {
  switch (op) {
    case OpClass::kIntAlu: return "IntAlu";
    case OpClass::kIntMult: return "IntMult";
    case OpClass::kIntDiv: return "IntDiv";
    case OpClass::kFpAdd: return "FpAdd";
    case OpClass::kFpMult: return "FpMult";
    case OpClass::kFpDiv: return "FpDiv";
    case OpClass::kSimdAlu: return "SimdAlu";
    case OpClass::kLoad: return "Load";
    case OpClass::kStore: return "Store";
    case OpClass::kBranch: return "Branch";
    case OpClass::kJump: return "Jump";
    case OpClass::kNop: return "Nop";
    case OpClass::kCount: break;
  }
  return "?";
}

ExecUnit exec_unit_for(OpClass op) {
  switch (op) {
    case OpClass::kIntAlu:
    case OpClass::kSimdAlu:
    case OpClass::kNop:
      return ExecUnit::kAlu;
    case OpClass::kIntMult:
    case OpClass::kIntDiv:
      return ExecUnit::kMulDiv;
    case OpClass::kFpAdd:
    case OpClass::kFpMult:
    case OpClass::kFpDiv:
      return ExecUnit::kFp;
    case OpClass::kLoad:
    case OpClass::kStore:
      return ExecUnit::kMem;
    case OpClass::kBranch:
    case OpClass::kJump:
      return ExecUnit::kBranchUnit;
    case OpClass::kCount:
      break;
  }
  return ExecUnit::kAlu;
}

namespace {

// Convenience builder: mix entries in OpClass order
// {IntAlu, IntMult, IntDiv, FpAdd, FpMult, FpDiv, SimdAlu, Load, Store,
//  Branch, Jump, Nop}.
WorkloadProfile make(std::string name, std::string abbr, std::uint64_t seed,
                     std::array<double, kNumOpClasses> mix,
                     std::uint64_t ws_kb, double f_stream, double f_strided,
                     double f_random, double f_chase, double f_stack,
                     std::uint32_t stride, double bias, double entropy,
                     std::uint32_t block_len, std::uint32_t trip,
                     double dep_loc, std::uint32_t dep_win,
                     std::uint32_t blocks) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.abbr = std::move(abbr);
  p.seed = seed;
  p.mix = mix;
  p.working_set_bytes = ws_kb * 1024;
  p.frac_stream = f_stream;
  p.frac_strided = f_strided;
  p.frac_random = f_random;
  p.frac_chase = f_chase;
  p.frac_stack = f_stack;
  p.stride_bytes = stride;
  p.branch_bias = bias;
  p.branch_entropy = entropy;
  p.avg_block_len = block_len;
  p.avg_loop_trip = trip;
  p.dep_locality = dep_loc;
  p.dep_window = dep_win;
  p.num_blocks = blocks;
  return p;
}

std::vector<BenchmarkInfo> build_suite() {
  std::vector<BenchmarkInfo> s;
  auto add = [&s](WorkloadProfile p, Split split) {
    s.push_back(BenchmarkInfo{std::move(p), split});
  };

  // ---- Training split (perl, gcc, bwav, namd) ----------------------------
  // perlbench: branchy integer interpreter, moderate working set.
  add(make("500.perlbench", "perl", 101,
           {0.42, 0.02, 0.004, 0.01, 0.01, 0.001, 0.01, 0.24, 0.11, 0.15, 0.035, 0.01},
           4096, 0.30, 0.10, 0.35, 0.15, 0.10, 64, 0.80, 0.25, 6, 12, 0.55, 8, 160),
      Split::kTrain);
  // gcc: compiler — irregular pointer-heavy integer code.
  add(make("502.gcc", "gcc", 102,
           {0.40, 0.02, 0.005, 0.005, 0.005, 0.001, 0.004, 0.26, 0.12, 0.14, 0.04, 0.01},
           8192, 0.25, 0.10, 0.35, 0.20, 0.10, 64, 0.78, 0.30, 6, 10, 0.50, 8, 200),
      Split::kTrain);
  // bwaves: streaming FP stencil, long blocks, predictable branches.
  add(make("503.bwaves", "bwav", 103,
           {0.18, 0.01, 0.001, 0.22, 0.22, 0.01, 0.04, 0.22, 0.07, 0.025, 0.004, 0.01},
           32768, 0.80, 0.10, 0.05, 0.00, 0.05, 64, 0.97, 0.03, 20, 128, 0.70, 12, 64),
      Split::kTrain);
  // namd: molecular dynamics — FP-dense, cache resident.
  add(make("508.namd", "namd", 104,
           {0.20, 0.02, 0.001, 0.24, 0.26, 0.02, 0.05, 0.13, 0.05, 0.025, 0.004, 0.00},
           1024, 0.55, 0.15, 0.20, 0.00, 0.10, 64, 0.95, 0.05, 16, 64, 0.72, 10, 80),
      Split::kTrain);

  // ---- Test split (17 benchmarks) ----------------------------------------
  // cactuBSSN: FP stencil with big strides.
  add(make("507.cactuBSSN", "bssn", 105,
           {0.20, 0.01, 0.001, 0.24, 0.24, 0.015, 0.03, 0.18, 0.06, 0.02, 0.004, 0.00},
           16384, 0.55, 0.30, 0.05, 0.00, 0.10, 256, 0.96, 0.04, 24, 96, 0.68, 12, 72),
      Split::kTest);
  // lbm: lattice Boltzmann — extreme streaming, memory bound.
  add(make("519.lbm", "lbm", 106,
           {0.14, 0.005, 0.000, 0.24, 0.25, 0.005, 0.02, 0.22, 0.10, 0.015, 0.003, 0.00},
           65536, 0.90, 0.05, 0.00, 0.00, 0.05, 64, 0.99, 0.01, 32, 256, 0.65, 12, 48),
      Split::kTest);
  // wrf: weather — mixed FP, medium locality.
  add(make("521.wrf", "wrf", 107,
           {0.22, 0.015, 0.002, 0.20, 0.20, 0.01, 0.03, 0.19, 0.07, 0.05, 0.01, 0.00},
           24576, 0.60, 0.15, 0.15, 0.00, 0.10, 128, 0.93, 0.07, 14, 48, 0.66, 10, 120),
      Split::kTest);
  // xalancbmk: XML — pointer chasing + virtual dispatch.
  add(make("523.xalancbmk", "xala", 108,
           {0.38, 0.01, 0.002, 0.005, 0.005, 0.001, 0.005, 0.28, 0.10, 0.16, 0.05, 0.01},
           12288, 0.20, 0.05, 0.30, 0.30, 0.15, 64, 0.82, 0.22, 5, 8, 0.48, 6, 220),
      Split::kTest);
  // x264: video encode — SIMD-heavy, strided macroblock access.
  add(make("525.x264", "x264", 109,
           {0.26, 0.02, 0.002, 0.05, 0.06, 0.004, 0.22, 0.22, 0.09, 0.06, 0.014, 0.00},
           6144, 0.55, 0.25, 0.10, 0.00, 0.10, 128, 0.90, 0.10, 12, 24, 0.62, 10, 140),
      Split::kTest);
  // blender: render — mixed FP/int, irregular.
  add(make("526.blender", "blen", 110,
           {0.28, 0.02, 0.003, 0.14, 0.15, 0.01, 0.05, 0.20, 0.08, 0.06, 0.012, 0.00},
           10240, 0.40, 0.15, 0.25, 0.10, 0.10, 64, 0.88, 0.12, 10, 20, 0.58, 8, 160),
      Split::kTest);
  // cam4: climate — FP with scattered access.
  add(make("527.cam4", "cam4", 111,
           {0.24, 0.015, 0.002, 0.19, 0.19, 0.012, 0.03, 0.19, 0.07, 0.05, 0.01, 0.00},
           20480, 0.50, 0.20, 0.20, 0.00, 0.10, 192, 0.92, 0.08, 14, 40, 0.64, 10, 128),
      Split::kTest);
  // nab: molecular modelling — FP compute dense, small WS.
  add(make("544.nab", "nab", 112,
           {0.22, 0.02, 0.002, 0.23, 0.24, 0.02, 0.04, 0.13, 0.05, 0.03, 0.006, 0.00},
           2048, 0.60, 0.15, 0.15, 0.00, 0.10, 64, 0.94, 0.06, 16, 56, 0.70, 10, 88),
      Split::kTest);
  // exchange2: puzzle solver — pure integer, deep recursion, branchy,
  // cache resident (highest parallel-sim error in Fig. 6).
  add(make("548.exchange2", "exch", 113,
           {0.52, 0.02, 0.003, 0.00, 0.00, 0.000, 0.00, 0.17, 0.09, 0.16, 0.04, 0.00},
           512, 0.25, 0.05, 0.30, 0.00, 0.40, 64, 0.75, 0.30, 5, 6, 0.45, 5, 180),
      Split::kTest);
  // fotonik3d: FDTD — streaming FP, memory bound.
  add(make("549.fotonik3d", "foto", 114,
           {0.16, 0.01, 0.001, 0.24, 0.24, 0.008, 0.03, 0.21, 0.08, 0.02, 0.004, 0.00},
           49152, 0.85, 0.08, 0.02, 0.00, 0.05, 64, 0.98, 0.02, 28, 192, 0.66, 12, 56),
      Split::kTest);
  // xz: compression — integer, data-dependent branches, match-finding.
  add(make("557.xz", "xz", 115,
           {0.40, 0.02, 0.003, 0.00, 0.00, 0.000, 0.01, 0.26, 0.10, 0.16, 0.04, 0.01},
           16384, 0.30, 0.10, 0.40, 0.10, 0.10, 64, 0.76, 0.35, 6, 10, 0.52, 7, 150),
      Split::kTest);
  // specrand_f: tiny RNG loop, trivially cache resident.
  add(make("997.specrand_f", "spef", 116,
           {0.34, 0.10, 0.01, 0.16, 0.16, 0.01, 0.00, 0.08, 0.04, 0.08, 0.02, 0.01},
           64, 0.40, 0.00, 0.20, 0.00, 0.40, 64, 0.92, 0.08, 8, 1000, 0.75, 6, 24),
      Split::kTest);
  // mcf: graph optimisation — the classic pointer-chasing memory hog.
  add(make("505.mcf", "mcf", 117,
           {0.34, 0.01, 0.002, 0.00, 0.00, 0.000, 0.00, 0.31, 0.09, 0.18, 0.04, 0.01},
           131072, 0.10, 0.05, 0.25, 0.50, 0.10, 64, 0.84, 0.18, 6, 12, 0.50, 6, 100),
      Split::kTest);
  // imagick: image processing — SIMD + streaming rows.
  add(make("538.imagick", "imag", 118,
           {0.24, 0.02, 0.003, 0.14, 0.16, 0.01, 0.14, 0.17, 0.07, 0.04, 0.01, 0.00},
           8192, 0.70, 0.15, 0.05, 0.00, 0.10, 64, 0.94, 0.06, 18, 80, 0.68, 10, 96),
      Split::kTest);
  // roms: ocean model — streaming FP with strided planes.
  add(make("554.roms", "roms", 119,
           {0.18, 0.01, 0.001, 0.23, 0.23, 0.01, 0.03, 0.20, 0.08, 0.025, 0.005, 0.00},
           40960, 0.70, 0.20, 0.00, 0.00, 0.10, 512, 0.97, 0.03, 22, 112, 0.66, 12, 64),
      Split::kTest);
  // deepsjeng: chess — integer search, unpredictable branches.
  add(make("531.deepsjeng", "deep", 120,
           {0.46, 0.03, 0.004, 0.00, 0.00, 0.000, 0.01, 0.20, 0.08, 0.17, 0.04, 0.01},
           3072, 0.25, 0.05, 0.40, 0.05, 0.25, 64, 0.72, 0.40, 5, 6, 0.46, 6, 190),
      Split::kTest);
  // specrand_i: tiny integer RNG loop.
  add(make("999.specrand_i", "spei", 121,
           {0.44, 0.12, 0.01, 0.00, 0.00, 0.000, 0.00, 0.08, 0.04, 0.08, 0.02, 0.21},
           64, 0.40, 0.00, 0.20, 0.00, 0.40, 64, 0.92, 0.08, 8, 1000, 0.75, 6, 24),
      Split::kTest);

  return s;
}

}  // namespace

const std::vector<BenchmarkInfo>& spec2017_suite() {
  static const std::vector<BenchmarkInfo> suite = build_suite();
  return suite;
}

const WorkloadProfile& find_workload(const std::string& abbr) {
  for (const auto& b : spec2017_suite()) {
    if (b.profile.abbr == abbr) return b.profile;
  }
  check(false, "unknown benchmark abbreviation: " + abbr);
  // Unreachable; check throws.
  return spec2017_suite().front().profile;
}

std::vector<std::string> test_benchmarks() {
  std::vector<std::string> out;
  for (const auto& b : spec2017_suite()) {
    if (b.split == Split::kTest) out.push_back(b.profile.abbr);
  }
  return out;
}

std::vector<std::string> train_benchmarks() {
  std::vector<std::string> out;
  for (const auto& b : spec2017_suite()) {
    if (b.split == Split::kTrain) out.push_back(b.profile.abbr);
  }
  return out;
}

}  // namespace mlsim::trace
