// SPEC CPU2017-like workload profiles (Table I of the paper).
//
// We cannot redistribute SPEC traces, so each benchmark is replaced by a
// parameterised synthetic workload whose instruction mix, working-set size,
// memory-access patterns, branch behaviour and ILP are chosen to span the
// same qualitative space (pointer-chasing mcf, streaming lbm/bwaves, branchy
// integer exchange2/deepsjeng, SIMD-heavy x264, ...). The downstream
// pipeline — encoding, ground-truth timing, ML training, parallel
// simulation — is identical to what real traces would exercise.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/isa.h"

namespace mlsim::trace {

/// Knobs describing one synthetic benchmark.
struct WorkloadProfile {
  std::string name;    // e.g. "505.mcf"
  std::string abbr;    // e.g. "mcf"
  std::uint64_t seed;  // base seed; combined with user seed

  // Instruction mix weights, indexed by OpClass (branch/jump weights control
  // control-flow density; loads/stores control memory density).
  std::array<double, kNumOpClasses> mix{};

  // Memory behaviour.
  std::uint64_t working_set_bytes = 1 << 20;
  double frac_stream = 0.5;   // of memory instructions
  double frac_strided = 0.2;
  double frac_random = 0.2;
  double frac_chase = 0.0;    // remainder after stack fraction
  double frac_stack = 0.1;
  std::uint32_t stride_bytes = 64;

  // Control flow.
  double branch_bias = 0.85;       // probability the dominant direction is taken
  double branch_entropy = 0.15;    // fraction of data-dependent (hard) branches
  std::uint32_t avg_block_len = 8; // instructions per basic block
  std::uint32_t avg_loop_trip = 32;

  // Data dependencies.
  double dep_locality = 0.6;   // P(src produced by one of the last dep_window insts)
  std::uint32_t dep_window = 8;

  // Program shape.
  std::uint32_t num_blocks = 96;   // static basic blocks
};

/// Whether a benchmark is in the paper's training split ({perl, gcc, bwav,
/// namd}) or the 17-benchmark test split.
enum class Split { kTrain, kTest };

struct BenchmarkInfo {
  WorkloadProfile profile;
  Split split;
};

/// The 21 benchmarks of Table I.
const std::vector<BenchmarkInfo>& spec2017_suite();

/// Lookup by abbreviation ("mcf", "xz", ...). Throws CheckError if unknown.
const WorkloadProfile& find_workload(const std::string& abbr);

/// Abbreviations of the 17 test benchmarks (paper evaluation set), in
/// suite order.
std::vector<std::string> test_benchmarks();

/// Abbreviations of the 4 training benchmarks.
std::vector<std::string> train_benchmarks();

}  // namespace mlsim::trace
