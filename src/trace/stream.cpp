#include "trace/stream.h"

namespace mlsim::trace {

LabeledTraceStream::LabeledTraceStream(const WorkloadProfile& profile,
                                       const uarch::MachineConfig& machine,
                                       std::uint64_t seed)
    : benchmark_(profile.abbr),
      program_(std::make_unique<Program>(Program::generate(profile, seed))),
      fsim_(std::make_unique<FunctionalSim>(*program_, seed)),
      annotator_(std::make_unique<uarch::Annotator>(machine)),
      core_(std::make_unique<uarch::OooCore>(machine)) {}

std::size_t LabeledTraceStream::fill(EncodedTrace& out, std::size_t max_rows) {
  out.reserve(out.size() + max_rows);
  for (std::size_t i = 0; i < max_rows; ++i) {
    const DynInst inst = fsim_->next();
    const Annotation ann = annotator_->annotate(inst);
    const uarch::InstTiming t = core_->process(inst, ann);
    out.append(encoder_.encode(inst, ann), t.fetch_lat, t.exec_lat, t.store_lat);
  }
  generated_ += max_rows;
  return max_rows;
}

}  // namespace mlsim::trace
