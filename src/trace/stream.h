// Streaming labeled-trace generation with bounded memory.
//
// The paper's scalability runs simulate 10-100 *billion* instructions —
// traces of that size cannot be materialised (100B x 50 x 4B = 20 TB).
// LabeledTraceStream keeps the whole generation pipeline (program,
// functional simulator, annotator, ground-truth core, encoder) alive and
// emits encoded+labeled rows chunk by chunk; downstream consumers hold only
// one chunk plus their context window.
#pragma once

#include <memory>

#include "trace/trace.h"
#include "uarch/ground_truth.h"

namespace mlsim::trace {

class LabeledTraceStream {
 public:
  LabeledTraceStream(const WorkloadProfile& profile,
                     const uarch::MachineConfig& machine = {},
                     std::uint64_t seed = 1);

  /// Append up to `max_rows` freshly generated labeled rows to `out`
  /// (which the caller typically clears between chunks). The stream is
  /// unbounded; the return value always equals max_rows.
  std::size_t fill(EncodedTrace& out, std::size_t max_rows);

  std::uint64_t generated() const { return generated_; }
  const std::string& benchmark() const { return benchmark_; }

 private:
  std::string benchmark_;
  std::unique_ptr<Program> program_;  // must outlive fsim_
  std::unique_ptr<FunctionalSim> fsim_;
  std::unique_ptr<uarch::Annotator> annotator_;
  std::unique_ptr<uarch::OooCore> core_;
  FeatureEncoder encoder_;
  std::uint64_t generated_ = 0;
};

}  // namespace mlsim::trace
