// Feature encoding: each dynamic instruction becomes an array of
// kNumFeatures integers (SimNet uses 50 entries per instruction; we keep the
// same width). Features combine the static properties of the instruction
// with dynamic processor state carried by its Annotation.
//
// Feature layout (index → meaning, all non-negative small integers):
//   0  op class                         1  exec unit class
//   2  base exec latency                3  #src regs
//   4  #dst regs                        5..7  src register ids (0 = none)
//   8..9  dst register ids              10..12 src dependency distance (≤63)
//   13 is_load                          14 is_store
//   15 access size log2                 16 fetch hit level (0 L1 /1 L2 /2 mem)
//   17 data hit level (0 none..3 mem)   18 iTLB level
//   19 dTLB level                       20 is conditional branch
//   21 branch mispredicted              22 branch taken
//   23 basic-block entry                24 pc slot within fetch line
//   25 address offset within line       26 address bank (line % 8)
//   27 store-forward distance (≤63)     28 serialising op
//   29 is control (branch|jump)         30 same line as previous data access
//   31 crosses page vs previous access  32..49 reserved (zero)
//
// The three prediction targets per instruction are the ground-truth
// latencies (fetch, execute, store).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/annotation.h"
#include "trace/isa.h"

namespace mlsim::trace {

constexpr std::size_t kNumFeatures = 50;
constexpr std::size_t kNumTargets = 3;

/// Indices of noteworthy features (shared with the analytic predictor and
/// the custom convolution's non-padding detection).
struct Feat {
  static constexpr std::size_t kOpClass = 0;
  static constexpr std::size_t kExecUnit = 1;
  static constexpr std::size_t kBaseLat = 2;
  static constexpr std::size_t kNumSrc = 3;
  static constexpr std::size_t kNumDst = 4;
  static constexpr std::size_t kSrc0 = 5;
  static constexpr std::size_t kDst0 = 8;
  static constexpr std::size_t kDep0 = 10;
  static constexpr std::size_t kIsLoad = 13;
  static constexpr std::size_t kIsStore = 14;
  static constexpr std::size_t kSizeLog2 = 15;
  static constexpr std::size_t kFetchLevel = 16;
  static constexpr std::size_t kDataLevel = 17;
  static constexpr std::size_t kItlb = 18;
  static constexpr std::size_t kDtlb = 19;
  static constexpr std::size_t kIsBranch = 20;
  static constexpr std::size_t kMispredicted = 21;
  static constexpr std::size_t kTaken = 22;
  static constexpr std::size_t kBlockEntry = 23;
  static constexpr std::size_t kPcSlot = 24;
  static constexpr std::size_t kLineOffset = 25;
  static constexpr std::size_t kBank = 26;
  static constexpr std::size_t kFwdDist = 27;
  static constexpr std::size_t kSerializing = 28;
  static constexpr std::size_t kIsControl = 29;
  static constexpr std::size_t kSameLine = 30;
  static constexpr std::size_t kPageCross = 31;
};

using FeatureVector = std::array<std::int32_t, kNumFeatures>;

/// Stateful encoder: tracks per-register last writers (dependency
/// distances) and the previous data access (spatial-locality features).
/// Encode instructions in program order.
class FeatureEncoder {
 public:
  FeatureVector encode(const DynInst& inst, const Annotation& ann);

  void reset();

 private:
  std::array<std::uint64_t, kNumArchRegs> last_writer_{};  // 0 = never
  std::uint64_t count_ = 0;
  std::uint64_t prev_mem_addr_ = 0;
  bool has_prev_mem_ = false;
};

}  // namespace mlsim::trace
