// Encoded trace container and binary serialization.
//
// An EncodedTrace is the unit of work the ML simulator consumes: a dense
// n × kNumFeatures int32 matrix (one row per dynamic instruction), plus —
// for labeled traces — n × kNumTargets ground-truth latencies and, for
// metric derivation, the per-instruction access level / byte count.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "trace/encoder.h"

namespace mlsim::trace {

class EncodedTrace {
 public:
  EncodedTrace() = default;
  explicit EncodedTrace(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  void reserve(std::size_t n);

  /// Append one instruction. Targets default to zero (unlabeled).
  void append(const FeatureVector& features,
              std::uint32_t fetch_lat = 0, std::uint32_t exec_lat = 0,
              std::uint32_t store_lat = 0);

  std::size_t size() const { return n_; }
  bool labeled() const { return labeled_; }
  const std::string& benchmark() const { return benchmark_; }

  /// Feature row of instruction i (kNumFeatures ints).
  std::span<const std::int32_t> features(std::size_t i) const;
  /// Target row of instruction i (kNumTargets values).
  std::span<const std::uint32_t> targets(std::size_t i) const;

  /// Flat storage access (row-major n × kNumFeatures) — used by the device
  /// layer to stage host→device copies without further marshalling.
  const std::vector<std::int32_t>& raw_features() const { return features_; }
  const std::vector<std::uint32_t>& raw_targets() const { return targets_; }

  /// Contiguous sub-trace view [begin, end): copies rows into a new trace.
  EncodedTrace slice(std::size_t begin, std::size_t end) const;

  // --- Binary file format ----------------------------------------------------
  // v1: raw little-endian arrays. v2 (default): zigzag-varint streams with
  // trailing-zero elision per row — feature values are small integers, so
  // v2 files are typically 5-8x smaller. load() handles both.
  void save(const std::filesystem::path& path, bool compress = true) const;
  static EncodedTrace load(const std::filesystem::path& path);

 private:
  std::string benchmark_;
  std::size_t n_ = 0;
  bool labeled_ = false;
  std::vector<std::int32_t> features_;
  std::vector<std::uint32_t> targets_;
};

}  // namespace mlsim::trace
