#include "trace/program.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace mlsim::trace {

namespace {

constexpr std::uint64_t kTextBase = 0x0040'0000ull;
constexpr std::uint64_t kHeapBase = 0x1000'0000ull;
constexpr std::uint64_t kStackBase = 0x7fff'0000ull;
constexpr std::uint64_t kStackBytes = 4 * 1024;

OpClass sample_op(Rng& rng, const std::vector<double>& cdf) {
  return static_cast<OpClass>(rng.sample_cdf(cdf));
}

std::uint64_t floor_pow2(std::uint64_t x) {
  return x == 0 ? 1 : std::uint64_t{1} << (63 - std::countl_zero(x));
}

}  // namespace

Program Program::generate(const WorkloadProfile& profile, std::uint64_t seed) {
  Program prog;
  Rng rng(profile.seed * 0x9e37'79b9ull + seed);

  // --- Sampling distributions ---------------------------------------------
  // Exclude control ops from the body mix; control flow is added as block
  // terminators so its density is set by avg_block_len.
  std::vector<double> body_weights(kNumOpClasses);
  for (std::size_t i = 0; i < kNumOpClasses; ++i) body_weights[i] = profile.mix[i];
  body_weights[static_cast<std::size_t>(OpClass::kBranch)] = 0.0;
  body_weights[static_cast<std::size_t>(OpClass::kJump)] = 0.0;
  const auto body_cdf = make_cdf(body_weights);

  const auto pattern_cdf = make_cdf({profile.frac_stream, profile.frac_strided,
                                     profile.frac_random, profile.frac_chase,
                                     profile.frac_stack});

  const std::uint64_t ws = std::max<std::uint64_t>(4096, profile.working_set_bytes);

  // Recently-written registers; models producer/consumer locality.
  std::vector<std::uint8_t> recent_dsts;
  auto pick_src = [&](Rng& r) -> std::uint8_t {
    if (!recent_dsts.empty() && r.bernoulli(profile.dep_locality)) {
      const std::size_t window =
          std::min<std::size_t>(recent_dsts.size(), profile.dep_window);
      return recent_dsts[recent_dsts.size() - 1 - r.next_below(window)];
    }
    return static_cast<std::uint8_t>(1 + r.next_below(kNumArchRegs - 1));
  };

  auto make_mem_spec = [&](Rng& r, bool is_store) {
    MemAccessSpec m;
    const auto pat = r.sample_cdf(pattern_cdf);
    m.pattern = static_cast<AccessPattern>(static_cast<int>(AccessPattern::kStream) +
                                           static_cast<int>(pat));
    m.size_log2 = static_cast<std::uint8_t>(r.bernoulli(0.3) ? 2 : 3);  // 4B or 8B
    if (m.pattern == AccessPattern::kStack) {
      m.region_base = kStackBase;
      m.region_bytes = kStackBytes;
      m.stride = 8;
    } else {
      // Carve a power-of-two region out of the working set. Streams get long
      // regions; random/chase get large fractions of the working set so the
      // footprint actually stresses the cache hierarchy.
      const bool large = m.pattern == AccessPattern::kRandom ||
                         m.pattern == AccessPattern::kChase;
      const std::uint64_t frac = large ? 2 : 4 + r.next_below(4);
      m.region_bytes = std::max<std::uint64_t>(4096, floor_pow2(ws / frac));
      const std::uint64_t slots = std::max<std::uint64_t>(1, ws / m.region_bytes);
      m.region_base = kHeapBase + r.next_below(slots) * m.region_bytes;
      m.stride = m.pattern == AccessPattern::kStrided
                     ? std::max<std::uint32_t>(64, profile.stride_bytes)
                     : (is_store ? 64 : profile.stride_bytes);
      if (m.pattern == AccessPattern::kStream) m.stride = std::min(m.stride, 64u);
    }
    return m;
  };

  auto fill_body_inst = [&](Rng& r) {
    StaticInst si;
    si.op = sample_op(r, body_cdf);
    switch (si.op) {
      case OpClass::kLoad:
        si.n_src = 1;  // base address register
        si.n_dst = 1;
        si.src[0] = pick_src(r);
        si.dst[0] = static_cast<std::uint8_t>(1 + r.next_below(kNumArchRegs - 1));
        si.mem = make_mem_spec(r, /*is_store=*/false);
        break;
      case OpClass::kStore:
        si.n_src = 2;  // data + base address
        si.n_dst = 0;
        si.src[0] = pick_src(r);
        si.src[1] = pick_src(r);
        si.mem = make_mem_spec(r, /*is_store=*/true);
        break;
      case OpClass::kNop:
        break;
      default: {
        si.n_src = static_cast<std::uint8_t>(1 + r.next_below(2));
        si.n_dst = 1;
        for (std::uint8_t k = 0; k < si.n_src; ++k) si.src[k] = pick_src(r);
        si.dst[0] = static_cast<std::uint8_t>(1 + r.next_below(kNumArchRegs - 1));
        break;
      }
    }
    for (std::uint8_t k = 0; k < si.n_dst; ++k) recent_dsts.push_back(si.dst[k]);
    if (recent_dsts.size() > 64) {
      recent_dsts.erase(recent_dsts.begin(), recent_dsts.begin() + 32);
    }
    return si;
  };

  // --- CFG construction -----------------------------------------------------
  // The program is an infinite outer loop over `regions`; each region is a
  // loop whose body is a short chain of blocks, optionally containing a
  // forward conditional that skips one block (if/else shape).
  const std::uint32_t n_blocks = std::max<std::uint32_t>(profile.num_blocks, 8);
  prog.blocks_.reserve(n_blocks + 8);

  auto new_block = [&]() -> std::uint32_t {
    prog.blocks_.emplace_back();
    return static_cast<std::uint32_t>(prog.blocks_.size() - 1);
  };

  auto fill_block = [&](std::uint32_t b, std::uint32_t len) {
    auto& blk = prog.blocks_[b];
    for (std::uint32_t i = 0; i + 1 < len; ++i) blk.insts.push_back(fill_body_inst(rng));
    blk.insts.emplace_back();  // terminator slot, branch spec filled by caller
  };

  auto block_len = [&](Rng& r) {
    const std::uint32_t lo = std::max<std::uint32_t>(2, profile.avg_block_len / 2);
    const std::uint32_t hi = std::max<std::uint32_t>(lo + 1, profile.avg_block_len * 3 / 2);
    return static_cast<std::uint32_t>(r.uniform_int(lo, hi));
  };

  const std::uint32_t entry = new_block();
  prog.entry_ = entry;
  std::vector<std::uint32_t> region_heads;

  while (prog.blocks_.size() < n_blocks) {
    // Region: loop head ... body blocks ... back edge.
    const std::uint32_t head = new_block();
    region_heads.push_back(head);
    fill_block(head, block_len(rng));

    const std::uint32_t n_body = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    std::uint32_t prev = head;
    for (std::uint32_t j = 0; j < n_body; ++j) {
      const std::uint32_t b = new_block();
      fill_block(b, block_len(rng));
      // Terminator of prev: either plain fall-through jump or a conditional
      // that can skip the next block (diamond).
      auto& term = prog.blocks_[prev].insts.back();
      if (j + 1 < n_body && rng.bernoulli(0.45)) {
        const std::uint32_t skip = new_block();
        fill_block(skip, block_len(rng));
        term.op = OpClass::kBranch;
        term.n_src = 1;
        term.src[0] = pick_src(rng);
        term.branch.kind =
            rng.bernoulli(profile.branch_entropy) ? BranchKind::kDataDep : BranchKind::kBiased;
        term.branch.taken_prob =
            term.branch.kind == BranchKind::kDataDep ? 0.5 : profile.branch_bias;
        term.branch.taken_target = skip;  // taken path goes through `skip`
        term.branch.fall_target = b;
        // `skip` falls into `b`.
        auto& skip_term = prog.blocks_[skip].insts.back();
        skip_term.op = OpClass::kJump;
        skip_term.branch.kind = BranchKind::kUncond;
        skip_term.branch.taken_target = b;
        skip_term.branch.fall_target = b;
      } else {
        term.op = OpClass::kJump;
        term.branch.kind = BranchKind::kUncond;
        term.branch.taken_target = b;
        term.branch.fall_target = b;
      }
      prev = b;
    }
    // Back edge: loop branch from last body block to head. Fall target is
    // patched to the next region head afterwards.
    auto& back = prog.blocks_[prev].insts.back();
    back.op = OpClass::kBranch;
    back.n_src = 1;
    back.src[0] = pick_src(rng);
    back.branch.kind = BranchKind::kLoop;
    back.branch.trip_count = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(
               rng.uniform_int(static_cast<std::int64_t>(profile.avg_loop_trip / 2),
                               static_cast<std::int64_t>(profile.avg_loop_trip * 2))));
    back.branch.taken_target = head;
    back.branch.fall_target = 0;  // patched below
  }

  // Patch region exits: each region's back edge falls through to the next
  // region's head; the last region falls back to the first (infinite outer
  // loop). The entry block jumps to the first region head.
  check(!region_heads.empty(), "program must contain at least one region");
  for (std::size_t r = 0; r < region_heads.size(); ++r) {
    const std::uint32_t next_head = region_heads[(r + 1) % region_heads.size()];
    // Find this region's back edge: it's the block whose loop branch targets
    // region_heads[r]. Scan is cheap (generation-time only).
    for (auto& blk : prog.blocks_) {
      if (blk.insts.empty()) continue;  // entry block is filled afterwards
      auto& t = blk.insts.back();
      if (t.branch.kind == BranchKind::kLoop && t.branch.taken_target == region_heads[r]) {
        t.branch.fall_target = next_head;
      }
    }
  }
  {
    fill_block(entry, std::max<std::uint32_t>(2, profile.avg_block_len / 2));
    auto& t = prog.blocks_[entry].insts.back();
    t.op = OpClass::kJump;
    t.branch.kind = BranchKind::kUncond;
    t.branch.taken_target = region_heads.front();
    t.branch.fall_target = region_heads.front();
  }

  // --- PC assignment and static indices ------------------------------------
  prog.block_base_.resize(prog.blocks_.size());
  std::uint64_t pc = kTextBase;
  std::uint32_t idx = 0;
  for (std::size_t b = 0; b < prog.blocks_.size(); ++b) {
    prog.block_base_[b] = idx;
    prog.blocks_[b].start_pc = pc;
    idx += static_cast<std::uint32_t>(prog.blocks_[b].insts.size());
    pc += 4 * prog.blocks_[b].insts.size();
  }
  prog.num_static_ = idx;
  return prog;
}

}  // namespace mlsim::trace
