#include "trace/functional_sim.h"

#include "common/check.h"

namespace mlsim::trace {

FunctionalSim::FunctionalSim(const Program& program, std::uint64_t seed)
    : prog_(program), rng_(seed * 0x2545'f491'4f6c'dd1dull + 0x1234'5678ull) {
  check(!prog_.blocks().empty(), "program has no blocks");
  cur_block_ = prog_.entry_block();
  mem_state_.resize(prog_.num_static_insts());
  loop_state_.resize(prog_.num_static_insts());
}

std::uint64_t FunctionalSim::gen_address(const MemAccessSpec& spec, MemState& st) {
  const std::uint64_t region_mask = spec.region_bytes - 1;  // region is pow2
  std::uint64_t offset = 0;
  switch (spec.pattern) {
    case AccessPattern::kStream:
    case AccessPattern::kStrided:
      offset = (st.counter * spec.stride) & region_mask;
      break;
    case AccessPattern::kRandom:
      // Hash of the counter: uniform within the region, line granular.
      offset = (st.counter * 0x9e37'79b9'7f4a'7c15ull >> 17) & region_mask & ~63ull;
      break;
    case AccessPattern::kChase: {
      // Dependent LCG walk over cache lines: consecutive accesses land on
      // unpredictable lines, like linked-list traversal.
      const std::uint64_t lines = spec.region_bytes / 64;
      st.chase_pos = (st.chase_pos * 6364136223846793005ull + 1442695040888963407ull);
      offset = (st.chase_pos % lines) * 64;
      break;
    }
    case AccessPattern::kStack:
      offset = (st.counter * 8) & region_mask;
      break;
    case AccessPattern::kNone:
      break;
  }
  ++st.counter;
  return spec.region_base + offset;
}

bool FunctionalSim::resolve_branch(const BranchSpec& spec, std::uint32_t static_idx) {
  switch (spec.kind) {
    case BranchKind::kUncond:
      return true;
    case BranchKind::kLoop: {
      auto& ls = loop_state_[static_idx];
      ++ls.iter;
      if (ls.iter >= spec.trip_count) {
        ls.iter = 0;
        return false;  // exit loop
      }
      return true;  // back edge taken
    }
    case BranchKind::kBiased:
    case BranchKind::kDataDep:
      return rng_.bernoulli(spec.taken_prob);
    case BranchKind::kNone:
      break;
  }
  return false;
}

DynInst FunctionalSim::next() {
  const BasicBlock& blk = prog_.blocks()[cur_block_];
  const StaticInst& si = blk.insts[cur_inst_];
  const std::uint32_t sidx = prog_.static_index(cur_block_, cur_inst_);

  DynInst d;
  d.pc = blk.start_pc + 4ull * cur_inst_;
  d.static_idx = sidx;
  d.op = si.op;
  d.n_src = si.n_src;
  d.n_dst = si.n_dst;
  d.src = si.src;
  d.dst = si.dst;
  d.block_entry = at_block_entry_;
  at_block_entry_ = false;

  if (is_memory(si.op)) {
    d.mem_size_log2 = si.mem.size_log2;
    d.mem_addr = gen_address(si.mem, mem_state_[sidx]);
  }

  const bool is_terminator = (cur_inst_ + 1 == blk.insts.size());
  if (is_terminator && is_control(si.op)) {
    d.is_taken = resolve_branch(si.branch, sidx);
    cur_block_ = d.is_taken ? si.branch.taken_target : si.branch.fall_target;
    cur_inst_ = 0;
    at_block_entry_ = true;
  } else if (is_terminator) {
    // Non-control terminator: structural fall-through to next block.
    cur_block_ = (cur_block_ + 1) % static_cast<std::uint32_t>(prog_.blocks().size());
    cur_inst_ = 0;
    at_block_entry_ = true;
  } else {
    ++cur_inst_;
  }

  ++count_;
  return d;
}

std::vector<DynInst> FunctionalSim::run(std::size_t n) {
  std::vector<DynInst> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

void FunctionalSim::run(std::size_t n, const std::function<void(const DynInst&)>& sink) {
  for (std::size_t i = 0; i < n; ++i) sink(next());
}

std::vector<DynInst> generate_benchmark_trace(const WorkloadProfile& profile,
                                              std::size_t n, std::uint64_t seed) {
  const Program prog = Program::generate(profile, seed);
  FunctionalSim sim(prog, seed);
  return sim.run(n);
}

}  // namespace mlsim::trace
