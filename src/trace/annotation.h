// Dynamic micro-architectural annotations attached to each trace record.
//
// SimNet traces carry "dynamic processor state" features (branch prediction
// outcome, cache level reached, memory dependency) computed during trace
// generation by running the branch predictor / cache / TLB models over the
// functional stream. Changing those structures (Table IV) therefore only
// requires re-tracing, never retraining.
#pragma once

#include <cstdint>

namespace mlsim::trace {

/// Which level of the hierarchy served an access.
enum class HitLevel : std::uint8_t {
  kNone = 0,  // not a memory access
  kL1 = 1,
  kL2 = 2,
  kMemory = 3,
};

enum class TlbLevel : std::uint8_t {
  kHit = 0,   // first-level TLB hit
  kL2Tlb = 1, // second-level TLB hit
  kWalk = 2,  // page table walk
};

struct Annotation {
  HitLevel fetch_level = HitLevel::kL1;   // instruction fetch (L1I/L2/mem)
  HitLevel data_level = HitLevel::kNone;  // data access (loads/stores)
  TlbLevel itlb_level = TlbLevel::kHit;
  TlbLevel dtlb_level = TlbLevel::kHit;
  bool branch_mispredicted = false;
  /// Distance (in dynamic instructions, capped) to the most recent older
  /// store to an overlapping address; 0 if none in the tracked window.
  std::uint8_t store_forward_dist = 0;
};

}  // namespace mlsim::trace
