// Functional simulator (QEMU stand-in): executes a synthetic Program and
// emits the dynamic instruction stream. It resolves memory addresses and
// branch outcomes but performs no timing — that is the job of the
// microarchitecture substrate (ground truth) or the ML simulator.
//
// Throughput note: the paper measures ~1290 MIPS for QEMU-KVM functional
// tracing and treats trace generation as negligible next to simulation; this
// generator is similarly orders of magnitude faster than the timing models.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "trace/program.h"

namespace mlsim::trace {

class FunctionalSim {
 public:
  /// `seed` controls data-dependent branch outcomes and random access
  /// patterns; the same (program, seed) pair always yields the same stream.
  FunctionalSim(const Program& program, std::uint64_t seed = 1);

  /// Emit the next dynamic instruction. The stream is infinite (programs
  /// contain an outer loop), so callers bound it by count.
  DynInst next();

  /// Emit `n` instructions into a vector.
  std::vector<DynInst> run(std::size_t n);

  /// Emit `n` instructions through a sink callback (no allocation).
  void run(std::size_t n, const std::function<void(const DynInst&)>& sink);

  std::uint64_t instructions_retired() const { return count_; }

 private:
  struct MemState {
    std::uint64_t counter = 0;
    std::uint64_t chase_pos = 0;
  };
  struct LoopState {
    std::uint32_t iter = 0;
  };

  std::uint64_t gen_address(const MemAccessSpec& spec, MemState& st);
  bool resolve_branch(const BranchSpec& spec, std::uint32_t static_idx);

  const Program& prog_;
  Rng rng_;
  std::uint32_t cur_block_;
  std::uint32_t cur_inst_ = 0;
  bool at_block_entry_ = true;
  std::uint64_t count_ = 0;
  std::vector<MemState> mem_state_;    // per static instruction
  std::vector<LoopState> loop_state_;  // per static instruction
};

/// Convenience: generate `n` dynamic instructions for a named benchmark.
std::vector<DynInst> generate_benchmark_trace(const WorkloadProfile& profile,
                                              std::size_t n,
                                              std::uint64_t seed = 1);

}  // namespace mlsim::trace
