// Static program synthesis: turns a WorkloadProfile into a control-flow
// graph of basic blocks whose instructions carry realistic register
// dependency structure, memory access generators and branch behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "trace/isa.h"
#include "trace/workload.h"

namespace mlsim::trace {

/// Memory access generator attached to a static load/store.
struct MemAccessSpec {
  AccessPattern pattern = AccessPattern::kNone;
  std::uint64_t region_base = 0;   // byte offset in the benchmark address space
  std::uint64_t region_bytes = 0;  // power-of-two sized region
  std::uint32_t stride = 64;       // for kStream / kStrided
  std::uint8_t size_log2 = 3;      // access size (8B default)
};

/// Branch behaviour of a block-terminating control instruction.
enum class BranchKind : std::uint8_t {
  kNone = 0,   // block falls through (no terminator)
  kLoop,       // taken trip-1 times, then not taken
  kBiased,     // taken with fixed probability
  kDataDep,    // effectively random with given probability (hard to predict)
  kUncond,     // always taken (jump)
};

struct BranchSpec {
  BranchKind kind = BranchKind::kNone;
  double taken_prob = 0.5;       // for kBiased / kDataDep
  std::uint32_t trip_count = 16; // for kLoop
  std::uint32_t taken_target = 0;   // block index when taken
  std::uint32_t fall_target = 0;    // block index when not taken
};

struct StaticInst {
  OpClass op = OpClass::kNop;
  std::uint8_t n_src = 0;
  std::uint8_t n_dst = 0;
  std::array<std::uint8_t, kMaxSrcRegs> src{};
  std::array<std::uint8_t, kMaxDstRegs> dst{};
  MemAccessSpec mem;
  BranchSpec branch;  // meaningful only for the block terminator
};

struct BasicBlock {
  std::vector<StaticInst> insts;  // last one is the terminator if control
  std::uint64_t start_pc = 0;
};

/// A synthesised program: CFG plus entry block.
class Program {
 public:
  Program() = default;

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  std::uint32_t entry_block() const { return entry_; }
  std::size_t num_static_insts() const { return num_static_; }

  /// Global static index of instruction `i` in block `b`.
  std::uint32_t static_index(std::uint32_t b, std::uint32_t i) const {
    return block_base_[b] + i;
  }

  /// Synthesize a program for a workload profile. `seed` perturbs the
  /// profile's base seed so distinct runs/inputs can be generated.
  static Program generate(const WorkloadProfile& profile, std::uint64_t seed = 0);

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<std::uint32_t> block_base_;  // first static index per block
  std::uint32_t entry_ = 0;
  std::size_t num_static_ = 0;
};

}  // namespace mlsim::trace
