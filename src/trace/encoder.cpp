#include "trace/encoder.h"

#include <algorithm>

namespace mlsim::trace {

void FeatureEncoder::reset() {
  last_writer_.fill(0);
  count_ = 0;
  prev_mem_addr_ = 0;
  has_prev_mem_ = false;
}

FeatureVector FeatureEncoder::encode(const DynInst& inst, const Annotation& ann) {
  FeatureVector f{};
  ++count_;

  f[Feat::kOpClass] = static_cast<std::int32_t>(inst.op);
  f[Feat::kExecUnit] = static_cast<std::int32_t>(exec_unit_for(inst.op));
  f[Feat::kBaseLat] = kBaseLatency[static_cast<std::size_t>(inst.op)];
  f[Feat::kNumSrc] = inst.n_src;
  f[Feat::kNumDst] = inst.n_dst;
  for (std::size_t k = 0; k < kMaxSrcRegs; ++k) {
    f[Feat::kSrc0 + k] = k < inst.n_src ? inst.src[k] : 0;
  }
  for (std::size_t k = 0; k < kMaxDstRegs; ++k) {
    f[Feat::kDst0 + k] = k < inst.n_dst ? inst.dst[k] : 0;
  }
  for (std::size_t k = 0; k < inst.n_src && k < kMaxSrcRegs; ++k) {
    const std::uint8_t r = inst.src[k];
    if (r != 0 && last_writer_[r] != 0) {
      const std::uint64_t dist = count_ - last_writer_[r];
      f[Feat::kDep0 + k] = static_cast<std::int32_t>(std::min<std::uint64_t>(dist, 63));
    }
  }

  const bool is_load = inst.op == OpClass::kLoad;
  const bool is_store = inst.op == OpClass::kStore;
  f[Feat::kIsLoad] = is_load;
  f[Feat::kIsStore] = is_store;
  f[Feat::kSizeLog2] = is_load || is_store ? inst.mem_size_log2 : 0;
  f[Feat::kFetchLevel] = static_cast<std::int32_t>(ann.fetch_level) - 1;  // 0-based
  f[Feat::kDataLevel] = static_cast<std::int32_t>(ann.data_level);
  f[Feat::kItlb] = static_cast<std::int32_t>(ann.itlb_level);
  f[Feat::kDtlb] = static_cast<std::int32_t>(ann.dtlb_level);
  f[Feat::kIsBranch] = inst.op == OpClass::kBranch;
  f[Feat::kMispredicted] = ann.branch_mispredicted;
  f[Feat::kTaken] = inst.is_taken;
  f[Feat::kBlockEntry] = inst.block_entry;
  f[Feat::kPcSlot] = static_cast<std::int32_t>((inst.pc >> 2) & 15);
  if (is_load || is_store) {
    f[Feat::kLineOffset] = static_cast<std::int32_t>((inst.mem_addr & 63) >> 3);
    f[Feat::kBank] = static_cast<std::int32_t>((inst.mem_addr >> 6) & 7);
    if (has_prev_mem_) {
      f[Feat::kSameLine] = (inst.mem_addr >> 6) == (prev_mem_addr_ >> 6);
      f[Feat::kPageCross] = (inst.mem_addr >> 12) != (prev_mem_addr_ >> 12);
    }
    prev_mem_addr_ = inst.mem_addr;
    has_prev_mem_ = true;
  }
  f[Feat::kFwdDist] = ann.store_forward_dist;
  f[Feat::kSerializing] = is_serializing(inst.op);
  f[Feat::kIsControl] = is_control(inst.op);

  for (std::size_t k = 0; k < inst.n_dst && k < kMaxDstRegs; ++k) {
    const std::uint8_t r = inst.dst[k];
    if (r != 0) last_writer_[r] = count_;
  }
  return f;
}

}  // namespace mlsim::trace
