#include "trace/trace.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace mlsim::trace {

namespace {
constexpr std::uint32_t kMagic = 0x4d4c5452;  // "MLTR"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kVersionCompressed = 2;

// --- zigzag varint (LEB128) ------------------------------------------------

void write_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

class VarintReader {
 public:
  VarintReader(const char* data, std::size_t size) : p_(data), end_(data + size) {}

  std::uint64_t next() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      check(p_ < end_, "compressed trace truncated");
      const auto byte = static_cast<unsigned char>(*p_++);
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      check(shift < 64, "varint overflow in trace file");
    }
  }

 private:
  const char* p_;
  const char* end_;
};

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  check(static_cast<bool>(is), "trace file truncated");
  return v;
}
}  // namespace

void EncodedTrace::reserve(std::size_t n) {
  features_.reserve(n * kNumFeatures);
  targets_.reserve(n * kNumTargets);
}

void EncodedTrace::append(const FeatureVector& features, std::uint32_t fetch_lat,
                          std::uint32_t exec_lat, std::uint32_t store_lat) {
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(fetch_lat);
  targets_.push_back(exec_lat);
  targets_.push_back(store_lat);
  if (fetch_lat || exec_lat || store_lat) labeled_ = true;
  ++n_;
}

std::span<const std::int32_t> EncodedTrace::features(std::size_t i) const {
  check_index(i, n_, "trace row");
  return {features_.data() + i * kNumFeatures, kNumFeatures};
}

std::span<const std::uint32_t> EncodedTrace::targets(std::size_t i) const {
  check_index(i, n_, "trace row");
  return {targets_.data() + i * kNumTargets, kNumTargets};
}

EncodedTrace EncodedTrace::slice(std::size_t begin, std::size_t end) const {
  check(begin <= end && end <= n_, "slice bounds out of range");
  EncodedTrace out(benchmark_);
  out.n_ = end - begin;
  out.labeled_ = labeled_;
  out.features_.assign(features_.begin() + static_cast<std::ptrdiff_t>(begin * kNumFeatures),
                       features_.begin() + static_cast<std::ptrdiff_t>(end * kNumFeatures));
  out.targets_.assign(targets_.begin() + static_cast<std::ptrdiff_t>(begin * kNumTargets),
                      targets_.begin() + static_cast<std::ptrdiff_t>(end * kNumTargets));
  return out;
}

void EncodedTrace::save(const std::filesystem::path& path, bool compress) const {
  std::ofstream os(path, std::ios::binary);
  check(os.is_open(), "cannot open trace file for writing: " + path.string());
  write_pod(os, kMagic);
  write_pod(os, compress ? kVersionCompressed : kVersion);
  write_pod(os, static_cast<std::uint64_t>(n_));
  write_pod(os, static_cast<std::uint32_t>(kNumFeatures));
  write_pod(os, static_cast<std::uint32_t>(kNumTargets));
  write_pod(os, static_cast<std::uint8_t>(labeled_));
  const auto name_len = static_cast<std::uint32_t>(benchmark_.size());
  write_pod(os, name_len);
  os.write(benchmark_.data(), name_len);

  if (!compress) {
    os.write(reinterpret_cast<const char*>(features_.data()),
             static_cast<std::streamsize>(features_.size() * sizeof(std::int32_t)));
    os.write(reinterpret_cast<const char*>(targets_.data()),
             static_cast<std::streamsize>(targets_.size() * sizeof(std::uint32_t)));
    check(static_cast<bool>(os), "trace write failed: " + path.string());
    return;
  }

  // v2: per row, the count of meaningful (non-trailing-zero) features
  // followed by their zigzag varints; then the three target varints.
  std::string payload;
  payload.reserve(n_ * (kNumFeatures + kNumTargets));
  for (std::size_t i = 0; i < n_; ++i) {
    const std::int32_t* row = features_.data() + i * kNumFeatures;
    std::size_t used = kNumFeatures;
    while (used > 0 && row[used - 1] == 0) --used;
    write_varint(payload, used);
    for (std::size_t c = 0; c < used; ++c) write_varint(payload, zigzag(row[c]));
    for (std::size_t k = 0; k < kNumTargets; ++k) {
      write_varint(payload, targets_[i * kNumTargets + k]);
    }
  }
  const auto payload_size = static_cast<std::uint64_t>(payload.size());
  write_pod(os, payload_size);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  check(static_cast<bool>(os), "trace write failed: " + path.string());
}

EncodedTrace EncodedTrace::load(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.is_open(), "cannot open trace file: " + path.string());
  check(read_pod<std::uint32_t>(is) == kMagic, "bad trace magic");
  const auto version = read_pod<std::uint32_t>(is);
  check(version == kVersion || version == kVersionCompressed,
        "unsupported trace version");
  const auto n = read_pod<std::uint64_t>(is);
  check(read_pod<std::uint32_t>(is) == kNumFeatures, "feature width mismatch");
  check(read_pod<std::uint32_t>(is) == kNumTargets, "target width mismatch");
  const bool labeled = read_pod<std::uint8_t>(is) != 0;
  const auto name_len = read_pod<std::uint32_t>(is);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);

  EncodedTrace out(name);
  out.n_ = n;
  out.labeled_ = labeled;
  out.features_.resize(n * kNumFeatures);
  out.targets_.resize(n * kNumTargets);

  if (version == kVersion) {
    is.read(reinterpret_cast<char*>(out.features_.data()),
            static_cast<std::streamsize>(out.features_.size() * sizeof(std::int32_t)));
    is.read(reinterpret_cast<char*>(out.targets_.data()),
            static_cast<std::streamsize>(out.targets_.size() * sizeof(std::uint32_t)));
    check(static_cast<bool>(is), "trace file truncated: " + path.string());
    return out;
  }

  const auto payload_size = read_pod<std::uint64_t>(is);
  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  check(static_cast<bool>(is), "trace file truncated: " + path.string());
  VarintReader reader(payload.data(), payload.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t used = reader.next();
    check(used <= kNumFeatures, "corrupt row width in trace file");
    std::int32_t* row = out.features_.data() + i * kNumFeatures;
    for (std::size_t c = 0; c < used; ++c) {
      row[c] = static_cast<std::int32_t>(unzigzag(reader.next()));
    }
    for (std::size_t k = 0; k < kNumTargets; ++k) {
      out.targets_[i * kNumTargets + k] =
          static_cast<std::uint32_t>(reader.next());
    }
  }
  return out;
}

}  // namespace mlsim::trace
