#include "trace/trace.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace mlsim::trace {

namespace {
constexpr std::uint32_t kMagic = 0x4d4c5452;  // "MLTR"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kVersionCompressed = 2;

// --- zigzag varint (LEB128) ------------------------------------------------

void write_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

class VarintReader {
 public:
  VarintReader(const char* data, std::size_t size) : p_(data), end_(data + size) {}

  std::uint64_t next() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      check(p_ < end_, "compressed trace truncated");
      const auto byte = static_cast<unsigned char>(*p_++);
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      check(shift < 64, "varint overflow in trace file");
    }
  }

  bool exhausted() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  check(static_cast<bool>(is), "trace file truncated");
  return v;
}
}  // namespace

void EncodedTrace::reserve(std::size_t n) {
  features_.reserve(n * kNumFeatures);
  targets_.reserve(n * kNumTargets);
}

void EncodedTrace::append(const FeatureVector& features, std::uint32_t fetch_lat,
                          std::uint32_t exec_lat, std::uint32_t store_lat) {
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(fetch_lat);
  targets_.push_back(exec_lat);
  targets_.push_back(store_lat);
  if (fetch_lat || exec_lat || store_lat) labeled_ = true;
  ++n_;
}

std::span<const std::int32_t> EncodedTrace::features(std::size_t i) const {
  check_index(i, n_, "trace row");
  return {features_.data() + i * kNumFeatures, kNumFeatures};
}

std::span<const std::uint32_t> EncodedTrace::targets(std::size_t i) const {
  check_index(i, n_, "trace row");
  return {targets_.data() + i * kNumTargets, kNumTargets};
}

EncodedTrace EncodedTrace::slice(std::size_t begin, std::size_t end) const {
  check(begin <= end && end <= n_, "slice bounds out of range");
  EncodedTrace out(benchmark_);
  out.n_ = end - begin;
  out.labeled_ = labeled_;
  out.features_.assign(features_.begin() + static_cast<std::ptrdiff_t>(begin * kNumFeatures),
                       features_.begin() + static_cast<std::ptrdiff_t>(end * kNumFeatures));
  out.targets_.assign(targets_.begin() + static_cast<std::ptrdiff_t>(begin * kNumTargets),
                      targets_.begin() + static_cast<std::ptrdiff_t>(end * kNumTargets));
  return out;
}

void EncodedTrace::save(const std::filesystem::path& path, bool compress) const {
  std::ofstream os(path, std::ios::binary);
  check(os.is_open(), "cannot open trace file for writing: " + path.string());
  write_pod(os, kMagic);
  write_pod(os, compress ? kVersionCompressed : kVersion);
  write_pod(os, static_cast<std::uint64_t>(n_));
  write_pod(os, static_cast<std::uint32_t>(kNumFeatures));
  write_pod(os, static_cast<std::uint32_t>(kNumTargets));
  write_pod(os, static_cast<std::uint8_t>(labeled_));
  const auto name_len = static_cast<std::uint32_t>(benchmark_.size());
  write_pod(os, name_len);
  os.write(benchmark_.data(), name_len);

  if (!compress) {
    os.write(reinterpret_cast<const char*>(features_.data()),
             static_cast<std::streamsize>(features_.size() * sizeof(std::int32_t)));
    os.write(reinterpret_cast<const char*>(targets_.data()),
             static_cast<std::streamsize>(targets_.size() * sizeof(std::uint32_t)));
    check(static_cast<bool>(os), "trace write failed: " + path.string());
    return;
  }

  // v2: per row, the count of meaningful (non-trailing-zero) features
  // followed by their zigzag varints; then the three target varints.
  std::string payload;
  payload.reserve(n_ * (kNumFeatures + kNumTargets));
  for (std::size_t i = 0; i < n_; ++i) {
    const std::int32_t* row = features_.data() + i * kNumFeatures;
    std::size_t used = kNumFeatures;
    while (used > 0 && row[used - 1] == 0) --used;
    write_varint(payload, used);
    for (std::size_t c = 0; c < used; ++c) write_varint(payload, zigzag(row[c]));
    for (std::size_t k = 0; k < kNumTargets; ++k) {
      write_varint(payload, targets_[i * kNumTargets + k]);
    }
  }
  const auto payload_size = static_cast<std::uint64_t>(payload.size());
  write_pod(os, payload_size);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  check(static_cast<bool>(os), "trace write failed: " + path.string());
}

EncodedTrace EncodedTrace::load(const std::filesystem::path& path) {
  // Fixed-size header prefix: magic, version, n, widths, labeled, name_len.
  constexpr std::uint64_t kFixedHeaderBytes = 4 + 4 + 8 + 4 + 4 + 1 + 4;

  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    throw IoError("cannot open trace file: " + path.string());
  }
  const std::uint64_t actual_size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("cannot stat trace file: " + path.string());
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) throw IoError("cannot open trace file: " + path.string());

  // Every structural claim the header makes is validated against the actual
  // file size before it is trusted, so truncated or bit-flipped files fail
  // with a descriptive CheckError instead of a silent short read or an
  // absurd allocation.
  check(actual_size >= kFixedHeaderBytes,
        "trace file too small to hold a header (" +
            std::to_string(actual_size) + " bytes): " + path.string());
  check(read_pod<std::uint32_t>(is) == kMagic,
        "bad trace magic (not a trace file, or corrupted): " + path.string());
  const auto version = read_pod<std::uint32_t>(is);
  check(version == kVersion || version == kVersionCompressed,
        "unsupported trace version " + std::to_string(version) + ": " +
            path.string());
  const auto n = read_pod<std::uint64_t>(is);
  check(read_pod<std::uint32_t>(is) == kNumFeatures,
        "feature width mismatch: " + path.string());
  check(read_pod<std::uint32_t>(is) == kNumTargets,
        "target width mismatch: " + path.string());
  const bool labeled = read_pod<std::uint8_t>(is) != 0;
  const auto name_len = read_pod<std::uint32_t>(is);
  check(kFixedHeaderBytes + name_len <= actual_size,
        "trace header claims a benchmark name past end of file: " +
            path.string());
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  check(static_cast<bool>(is), "trace file truncated: " + path.string());
  const std::uint64_t header_bytes = kFixedHeaderBytes + name_len;

  if (version == kVersion) {
    // v1 body size is fully determined by n; reject before allocating.
    const std::uint64_t row_bytes =
        kNumFeatures * sizeof(std::int32_t) + kNumTargets * sizeof(std::uint32_t);
    check(n <= (actual_size - header_bytes) / row_bytes,
          "trace file truncated: header claims " + std::to_string(n) +
              " instructions but only " +
              std::to_string(actual_size - header_bytes) +
              " body bytes exist: " + path.string());
  } else {
    // v2: the payload length field itself must fit, and each instruction
    // contributes at least 1 row-width byte + kNumTargets target bytes.
    check(header_bytes + sizeof(std::uint64_t) <= actual_size,
          "trace file truncated before payload length: " + path.string());
  }

  EncodedTrace out(name);
  out.n_ = n;
  out.labeled_ = labeled;

  if (version == kVersion) {
    out.features_.resize(n * kNumFeatures);
    out.targets_.resize(n * kNumTargets);
    is.read(reinterpret_cast<char*>(out.features_.data()),
            static_cast<std::streamsize>(out.features_.size() * sizeof(std::int32_t)));
    is.read(reinterpret_cast<char*>(out.targets_.data()),
            static_cast<std::streamsize>(out.targets_.size() * sizeof(std::uint32_t)));
    check(static_cast<bool>(is), "trace file truncated: " + path.string());
    return out;
  }

  const auto payload_size = read_pod<std::uint64_t>(is);
  check(payload_size <= actual_size - header_bytes - sizeof(std::uint64_t),
        "trace payload length exceeds file size (" +
            std::to_string(payload_size) + " vs " +
            std::to_string(actual_size) + " total): " + path.string());
  check(n <= payload_size / (1 + kNumTargets),
        "trace payload too small for " + std::to_string(n) +
            " instructions: " + path.string());
  out.features_.resize(n * kNumFeatures);
  out.targets_.resize(n * kNumTargets);
  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  check(static_cast<bool>(is), "trace file truncated: " + path.string());
  VarintReader reader(payload.data(), payload.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t used = reader.next();
    check(used <= kNumFeatures, "corrupt row width in trace file at row " +
                                    std::to_string(i) + ": " + path.string());
    std::int32_t* row = out.features_.data() + i * kNumFeatures;
    for (std::size_t c = 0; c < used; ++c) {
      row[c] = static_cast<std::int32_t>(unzigzag(reader.next()));
    }
    for (std::size_t k = 0; k < kNumTargets; ++k) {
      out.targets_[i * kNumTargets + k] =
          static_cast<std::uint32_t>(reader.next());
    }
  }
  check(reader.exhausted(),
        "trace payload has trailing bytes (bit-flipped row widths?): " +
            path.string());
  return out;
}

}  // namespace mlsim::trace
