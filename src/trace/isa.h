// Synthetic ISA used by the functional-simulation substrate.
//
// The ML-based simulator (like SimNet) never interprets instruction
// *semantics*; it consumes per-instruction feature vectors. This ISA
// therefore models exactly the properties that matter for timing: operation
// class, register operands (dependencies), memory behaviour, and control
// flow. Values are never computed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mlsim::trace {

/// Operation classes, each with a distinct execution-resource profile.
enum class OpClass : std::uint8_t {
  kIntAlu = 0,   // add/sub/logic/shift
  kIntMult,      // integer multiply
  kIntDiv,       // integer divide (serialising, long latency)
  kFpAdd,        // FP add/sub/convert
  kFpMult,       // FP multiply / FMA
  kFpDiv,        // FP divide / sqrt
  kSimdAlu,      // packed SIMD arithmetic
  kLoad,         // memory read
  kStore,        // memory write
  kBranch,       // conditional branch
  kJump,         // unconditional jump / call / return
  kNop,          // no-op / fence-like filler
  kCount,
};

constexpr std::size_t kNumOpClasses = static_cast<std::size_t>(OpClass::kCount);

std::string_view to_string(OpClass op);

/// Nominal execution latency (cycles) of each op class on the target core
/// (Table II class machine). Memory ops add cache latency on top.
constexpr std::array<std::uint8_t, kNumOpClasses> kBaseLatency = {
    1,   // IntAlu
    3,   // IntMult
    20,  // IntDiv
    3,   // FpAdd
    4,   // FpMult
    18,  // FpDiv
    2,   // SimdAlu
    1,   // Load (address generation; cache latency added dynamically)
    1,   // Store (address generation)
    1,   // Branch
    1,   // Jump
    1,   // Nop
};

/// Execution port / functional-unit class used for issue contention.
enum class ExecUnit : std::uint8_t {
  kAlu = 0,
  kMulDiv,
  kFp,
  kMem,
  kBranchUnit,
  kCount,
};

ExecUnit exec_unit_for(OpClass op);

constexpr bool is_memory(OpClass op) {
  return op == OpClass::kLoad || op == OpClass::kStore;
}
constexpr bool is_control(OpClass op) {
  return op == OpClass::kBranch || op == OpClass::kJump;
}
constexpr bool is_serializing(OpClass op) {
  return op == OpClass::kIntDiv || op == OpClass::kFpDiv;
}

/// Architectural register file size (register 0 is the hardwired zero
/// register and never creates dependencies).
constexpr std::uint8_t kNumArchRegs = 32;

constexpr std::size_t kMaxSrcRegs = 3;
constexpr std::size_t kMaxDstRegs = 2;

/// How a static memory instruction generates addresses across dynamic
/// executions.
enum class AccessPattern : std::uint8_t {
  kNone = 0,   // not a memory instruction
  kStream,     // sequential: base + i*stride (prefetch friendly)
  kStrided,    // large fixed stride (cache antagonistic)
  kRandom,     // uniform within a region
  kChase,      // pointer-chase style dependent walk within a region
  kStack,      // small hot region (spills), nearly always L1 resident
};

/// One dynamic instruction as produced by functional simulation.
/// This corresponds to one trace record before feature encoding.
struct DynInst {
  std::uint64_t pc = 0;
  std::uint64_t mem_addr = 0;   // valid iff is_memory(op)
  std::uint32_t static_idx = 0; // global index of the static instruction
  OpClass op = OpClass::kNop;
  std::uint8_t n_src = 0;
  std::uint8_t n_dst = 0;
  std::array<std::uint8_t, kMaxSrcRegs> src{};  // register ids (0 = none)
  std::array<std::uint8_t, kMaxDstRegs> dst{};
  std::uint8_t mem_size_log2 = 0;  // access size = 1 << mem_size_log2 bytes
  bool is_taken = false;           // branch outcome (valid iff is_control)
  bool block_entry = false;        // first instruction of a basic block
};

}  // namespace mlsim::trace
