#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/check.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::sweep {

namespace {

/// Sweeps concurrently active in this process (drives the sweep.active gauge).
std::atomic<std::int64_t> g_active{0};

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

double area_proxy(const uarch::MachineConfig& m) {
  // Kilo-cells. SRAM capacity dominates; tag/assoc, OoO window structures,
  // the issue crossbar (quadratic in width), and the BTB contribute the
  // rest. Deterministic and monotone in every axis so Pareto ranking over
  // (CPI, area) is stable.
  const auto cache_cells = [](const uarch::CacheConfig& c) {
    const double kb = static_cast<double>(c.size_bytes) / 1024.0;
    return kb * 8.0 + static_cast<double>(c.assoc) * 2.0 +
           static_cast<double>(c.mshrs) * 0.5;
  };
  double cells = cache_cells(m.l1i) + cache_cells(m.l1d) + cache_cells(m.l2);
  cells += static_cast<double>(m.core.rob_entries) * 1.5;
  cells += static_cast<double>(m.core.iq_entries) * 1.0;
  cells += static_cast<double>(m.core.lq_entries + m.core.sq_entries) * 1.0;
  cells += static_cast<double>(m.core.issue_width) *
           static_cast<double>(m.core.issue_width) * 4.0;
  cells += static_cast<double>(m.bp.btb_entries) * 0.06;
  cells += static_cast<double>(1ull << m.bp.history_bits) * 0.002;
  cells += static_cast<double>(m.tlb.l1_entries + m.tlb.l2_entries) * 0.25;
  return cells;
}

void rank_report(SweepReport& report, const SweepSpec& spec) {
  auto& pts = report.points;
  for (auto& p : pts) {
    p.area = area_proxy(p.point.machine);
    p.on_frontier = false;
  }

  // Pareto frontier, minimising (CPI, area): point i is dominated when some
  // j is no worse on both objectives and strictly better on one. O(n^2) is
  // fine at lattice scale.
  report.frontier.clear();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pts.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool no_worse =
          pts[j].cpi <= pts[i].cpi && pts[j].area <= pts[i].area;
      const bool strictly_better =
          pts[j].cpi < pts[i].cpi || pts[j].area < pts[i].area;
      dominated = no_worse && strictly_better;
    }
    if (!dominated) {
      pts[i].on_frontier = true;
      report.frontier.push_back(i);
    }
  }
  std::sort(report.frontier.begin(), report.frontier.end(),
            [&pts](std::size_t a, std::size_t b) {
              if (pts[a].cpi != pts[b].cpi) return pts[a].cpi < pts[b].cpi;
              return pts[a].area < pts[b].area;
            });

  // Per-axis sensitivity: mean CPI per value, marginalised over the other
  // axes; the span says how much the axis moves CPI at all.
  report.sensitivity.clear();
  for (const auto& ax : spec.axes) {
    AxisSensitivity s;
    s.key = ax.key;
    s.values = ax.values;
    for (const auto& value : ax.values) {
      std::vector<double> cpis;
      for (const auto& p : pts) {
        for (const auto& [k, v] : p.point.settings) {
          if (k == ax.key && v == value) {
            cpis.push_back(p.cpi);
            break;
          }
        }
      }
      s.mean_cpi.push_back(mean(cpis));
    }
    if (!s.mean_cpi.empty()) {
      const auto [lo, hi] =
          std::minmax_element(s.mean_cpi.begin(), s.mean_cpi.end());
      s.span = *hi - *lo;
    }
    report.sensitivity.push_back(std::move(s));
  }
}

SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& opts) {
  const std::vector<SweepPoint> points = expand_lattice(spec, opts.base);
  MLSIM_COUNTER_ADD(obs::names::kSweepRequests, 1);
  MLSIM_COUNTER_ADD(obs::names::kSweepPointsTotal,
                    static_cast<std::int64_t>(points.size()));
  MLSIM_GAUGE_SET(obs::names::kSweepActive,
                  static_cast<double>(g_active.fetch_add(1) + 1));

  SweepReport report;
  report.points.reserve(points.size());
  const auto t0 = std::chrono::steady_clock::now();
  try {
    for (const SweepPoint& pt : points) {
      const auto p0 = std::chrono::steady_clock::now();
      // Only the trace regenerates per point; the predictor stays the one
      // trained on the default machine (paper Table IV: configuration
      // changes alter the hit-level features, not the model).
      const trace::EncodedTrace tr =
          core::labeled_trace(spec.benchmark, spec.instructions, pt.machine,
                              opts.seed, opts.use_trace_cache);
      core::MLSimulator::Options mo;
      mo.context_length = opts.context_length;
      core::MLSimulator sim(mo);
      core::ParallelSimOptions po = sim.parallel_options(
          opts.num_subtraces, opts.num_gpus, opts.recovery, opts.recovery);
      po.cancel = opts.cancel;
      const core::ParallelSimResult r =
          opts.remote != nullptr ? opts.remote->run_remote(tr, po)
                                 : sim.simulate_parallel(tr, po);

      SweepPointResult pr;
      pr.point = pt;
      pr.cpi = r.cpi();
      pr.total_cycles = r.total_cycles;
      pr.instructions = r.instructions;
      pr.truth_cpi = static_cast<double>(core::total_cycles_from_targets(tr)) /
                     static_cast<double>(tr.size());
      report.points.push_back(std::move(pr));

      const auto p1 = std::chrono::steady_clock::now();
      MLSIM_HIST_RECORD(
          obs::names::kSweepPointNs,
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(p1 - p0)
                  .count()));
      MLSIM_COUNTER_ADD(obs::names::kSweepPointsCompleted, 1);
      if (opts.progress) opts.progress(report.points.size(), points.size());
    }
  } catch (...) {
    MLSIM_GAUGE_SET(obs::names::kSweepActive,
                    static_cast<double>(g_active.fetch_sub(1) - 1));
    throw;
  }
  const auto t1 = std::chrono::steady_clock::now();
  MLSIM_GAUGE_SET(obs::names::kSweepActive,
                  static_cast<double>(g_active.fetch_sub(1) - 1));

  rank_report(report, spec);
  report.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  report.points_per_sec = report.elapsed_s > 0.0
                              ? static_cast<double>(report.points.size()) /
                                    report.elapsed_s
                              : 0.0;
  MLSIM_GAUGE_SET(obs::names::kSweepParetoSize,
                  static_cast<double>(report.frontier.size()));
  return report;
}

}  // namespace mlsim::sweep
