// Declarative configuration lattices for design-space exploration
// (docs/SWEEPS.md).
//
// A SweepSpec names one benchmark/instruction budget and a list of axes,
// each a MachineConfig field with the values to try. expand_lattice() takes
// the cartesian product into concrete SweepPoints — one fully applied
// MachineConfig per point, in row-major order (the last axis varies
// fastest), so point indices are stable across runs and machines.
//
// The axis registry (`apply_axis`) is the single place a textual key/value
// pair becomes a MachineConfig mutation; the CLI's `--axis`/`--set` flags,
// spec files, and the wire-serialized service requests all go through it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "uarch/config.h"

namespace mlsim::sweep {

/// One lattice dimension: a MachineConfig field and the values to try,
/// kept as strings so specs round-trip the wire and the CLI verbatim.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// A declarative sweep: one shared workload, a grid of configurations.
struct SweepSpec {
  std::string benchmark;         // Table I workload abbreviation
  std::size_t instructions = 0;  // trace length per point
  std::vector<SweepAxis> axes;

  /// Lattice size (product of axis lengths; 1 for an axis-free spec).
  std::size_t points() const;
};

/// One expanded lattice point: the settings that produced it (in axis
/// order) and the fully applied machine configuration.
struct SweepPoint {
  std::size_t index = 0;  // row-major position in the lattice
  std::vector<std::pair<std::string, std::string>> settings;
  uarch::MachineConfig machine;

  /// "l2.size_kb=512 l1d.replacement=drrip" — stable human/CSV label.
  std::string label() const;
};

/// Every axis key the registry understands, in documentation order.
std::vector<std::string> known_axis_keys();
bool axis_key_known(const std::string& key);

/// Apply one key=value setting to `m`. Throws CheckError on an unknown key
/// or an unparsable/out-of-range value (the CLI converts that to a usage
/// error before any work runs).
void apply_axis(uarch::MachineConfig& m, const std::string& key,
                const std::string& value);

/// Structural validation: non-empty benchmark and instruction budget, no
/// duplicate axis keys, every key known, every value applicable. Throws
/// CheckError with a message naming the offending axis.
void validate_spec(const SweepSpec& spec);

/// Cartesian-product expansion over `base`. Validates the spec first.
std::vector<SweepPoint> expand_lattice(const SweepSpec& spec,
                                       const uarch::MachineConfig& base = {});

/// Parse the text spec format (docs/SWEEPS.md):
///   # comment
///   benchmark <abbr>
///   instructions <n>
///   axis <key> <v1,v2,...>
/// Throws IoError when the file cannot be read, CheckError on a malformed
/// line. The result is validated.
SweepSpec load_spec_text(const std::filesystem::path& path);

}  // namespace mlsim::sweep
