#include "sweep/lattice.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "common/check.h"

namespace mlsim::sweep {

namespace {

/// Strict unsigned decimal parse for axis values; CheckError (not exit)
/// because the lattice layer is also reached from wire-decoded specs.
std::uint64_t parse_axis_u64(const std::string& key, const std::string& text) {
  check(!text.empty(), "axis " + key + ": empty value");
  for (const char c : text) {
    check(c >= '0' && c <= '9', "axis " + key + ": '" + text +
                                    "' is not a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  check(errno != ERANGE && end == text.c_str() + text.size(),
        "axis " + key + ": '" + text + "' overflows a 64-bit integer");
  return v;
}

std::uint32_t parse_u32_positive(const std::string& key,
                                 const std::string& text) {
  const std::uint64_t v = parse_axis_u64(key, text);
  check(v >= 1 && v <= std::numeric_limits<std::uint32_t>::max(),
        "axis " + key + ": '" + text + "' must be in [1, 2^32)");
  return static_cast<std::uint32_t>(v);
}

bool parse_on_off(const std::string& key, const std::string& text) {
  if (text == "on" || text == "1" || text == "true") return true;
  if (text == "off" || text == "0" || text == "false") return false;
  throw CheckError("axis " + key + ": '" + text + "' is not on|off");
}

uarch::BranchPredictorKind parse_bp_kind(const std::string& key,
                                         const std::string& text) {
  if (text == "bimode") return uarch::BranchPredictorKind::kBiMode;
  if (text == "gshare") return uarch::BranchPredictorKind::kGshare;
  if (text == "local") return uarch::BranchPredictorKind::kLocal;
  if (text == "bimodal") return uarch::BranchPredictorKind::kBimodal;
  throw CheckError("axis " + key + ": '" + text +
                   "' is not bimode|gshare|local|bimodal");
}

uarch::CacheConfig* cache_of(uarch::MachineConfig& m,
                             const std::string& prefix) {
  if (prefix == "l1i") return &m.l1i;
  if (prefix == "l1d") return &m.l1d;
  if (prefix == "l2") return &m.l2;
  return nullptr;
}

/// Cache-axis suffixes, shared by l1i./l1d./l2. keys.
bool apply_cache_axis(uarch::CacheConfig& c, const std::string& key,
                      const std::string& suffix, const std::string& value) {
  if (suffix == "size_kb") {
    const std::uint32_t kb = parse_u32_positive(key, value);
    check(kb <= (std::numeric_limits<std::uint32_t>::max() / 1024),
          "axis " + key + ": '" + value + "' KB overflows the size field");
    c.size_bytes = kb * 1024;
    return true;
  }
  if (suffix == "assoc") {
    c.assoc = parse_u32_positive(key, value);
    return true;
  }
  if (suffix == "line_bytes") {
    const std::uint32_t b = parse_u32_positive(key, value);
    check((b & (b - 1)) == 0,
          "axis " + key + ": '" + value + "' must be a power of two");
    c.line_bytes = b;
    return true;
  }
  if (suffix == "mshrs") {
    c.mshrs = parse_u32_positive(key, value);
    return true;
  }
  if (suffix == "latency") {
    c.latency = parse_u32_positive(key, value);
    return true;
  }
  if (suffix == "replacement") {
    c.replacement = uarch::replacement_policy_from_string(value);
    return true;
  }
  if (suffix == "prefetch") {
    c.next_line_prefetch = parse_on_off(key, value);
    return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> known_axis_keys() {
  std::vector<std::string> keys;
  for (const char* cache : {"l1i", "l1d", "l2"}) {
    for (const char* suffix : {"size_kb", "assoc", "line_bytes", "mshrs",
                               "latency", "replacement", "prefetch"}) {
      keys.push_back(std::string(cache) + "." + suffix);
    }
  }
  for (const char* k : {"tlb.l1_entries", "tlb.l2_entries", "bp.kind",
                        "bp.history_bits", "bp.btb_entries",
                        "bp.mispredict_penalty", "core.fetch_width",
                        "core.issue_width", "core.commit_width",
                        "core.iq_entries", "core.rob_entries",
                        "core.lq_entries", "core.sq_entries",
                        "memory_latency"}) {
    keys.push_back(k);
  }
  return keys;
}

bool axis_key_known(const std::string& key) {
  for (const auto& k : known_axis_keys()) {
    if (k == key) return true;
  }
  return false;
}

void apply_axis(uarch::MachineConfig& m, const std::string& key,
                const std::string& value) {
  const auto dot = key.find('.');
  if (dot != std::string::npos) {
    const std::string prefix = key.substr(0, dot);
    const std::string suffix = key.substr(dot + 1);
    if (uarch::CacheConfig* c = cache_of(m, prefix)) {
      if (apply_cache_axis(*c, key, suffix, value)) return;
    } else if (prefix == "tlb") {
      if (suffix == "l1_entries") {
        m.tlb.l1_entries = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "l2_entries") {
        m.tlb.l2_entries = parse_u32_positive(key, value);
        return;
      }
    } else if (prefix == "bp") {
      if (suffix == "kind") {
        m.bp.kind = parse_bp_kind(key, value);
        return;
      }
      if (suffix == "history_bits") {
        const std::uint32_t bits = parse_u32_positive(key, value);
        check(bits <= 24, "axis " + key + ": '" + value +
                              "' history bits must be in [1, 24]");
        m.bp.history_bits = bits;
        return;
      }
      if (suffix == "btb_entries") {
        m.bp.btb_entries = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "mispredict_penalty") {
        m.bp.mispredict_penalty = parse_u32_positive(key, value);
        return;
      }
    } else if (prefix == "core") {
      if (suffix == "fetch_width") {
        m.core.fetch_width = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "issue_width") {
        m.core.issue_width = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "commit_width") {
        m.core.commit_width = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "iq_entries") {
        m.core.iq_entries = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "rob_entries") {
        m.core.rob_entries = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "lq_entries") {
        m.core.lq_entries = parse_u32_positive(key, value);
        return;
      }
      if (suffix == "sq_entries") {
        m.core.sq_entries = parse_u32_positive(key, value);
        return;
      }
    }
  } else if (key == "memory_latency") {
    m.memory_latency = parse_u32_positive(key, value);
    return;
  }
  throw CheckError("unknown sweep axis '" + key +
                   "' (see docs/SWEEPS.md for the axis list)");
}

std::size_t SweepSpec::points() const {
  std::size_t n = 1;
  for (const auto& ax : axes) n *= ax.values.size();
  return n;
}

std::string SweepPoint::label() const {
  std::string s;
  for (const auto& [key, value] : settings) {
    if (!s.empty()) s += ' ';
    s += key + "=" + value;
  }
  return s;
}

void validate_spec(const SweepSpec& spec) {
  check(!spec.benchmark.empty(), "sweep spec needs a benchmark");
  check(spec.instructions > 0, "sweep spec needs instructions > 0");
  std::set<std::string> seen;
  uarch::MachineConfig probe;
  for (const auto& ax : spec.axes) {
    check(seen.insert(ax.key).second,
          "duplicate sweep axis '" + ax.key + "'");
    check(!ax.values.empty(), "sweep axis '" + ax.key + "' has no values");
    for (const auto& v : ax.values) apply_axis(probe, ax.key, v);
  }
}

std::vector<SweepPoint> expand_lattice(const SweepSpec& spec,
                                       const uarch::MachineConfig& base) {
  validate_spec(spec);
  const std::size_t total = spec.points();
  std::vector<SweepPoint> points;
  points.reserve(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    SweepPoint pt;
    pt.index = idx;
    pt.machine = base;
    // Row-major decode: the last axis varies fastest.
    std::size_t rem = idx;
    std::size_t stride = total;
    for (const auto& ax : spec.axes) {
      stride /= ax.values.size();
      const std::size_t pick = rem / stride;
      rem %= stride;
      const std::string& value = ax.values[pick];
      apply_axis(pt.machine, ax.key, value);
      pt.settings.emplace_back(ax.key, value);
    }
    points.push_back(std::move(pt));
  }
  return points;
}

SweepSpec load_spec_text(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    throw IoError("cannot open sweep spec " + path.string());
  }
  SweepSpec spec;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank
    const std::string where =
        path.string() + ":" + std::to_string(lineno);
    if (word == "benchmark") {
      check(static_cast<bool>(ls >> spec.benchmark),
            where + ": 'benchmark' needs a workload abbreviation");
    } else if (word == "instructions") {
      std::string n;
      check(static_cast<bool>(ls >> n),
            where + ": 'instructions' needs a count");
      spec.instructions = static_cast<std::size_t>(parse_axis_u64("instructions", n));
    } else if (word == "axis") {
      SweepAxis ax;
      std::string values;
      check(static_cast<bool>(ls >> ax.key >> values),
            where + ": 'axis' needs a key and a comma-separated value list");
      std::size_t start = 0;
      while (start <= values.size()) {
        const auto comma = values.find(',', start);
        const std::string v =
            values.substr(start, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - start);
        check(!v.empty(), where + ": axis " + ax.key + " has an empty value");
        ax.values.push_back(v);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      spec.axes.push_back(std::move(ax));
    } else {
      throw CheckError(where + ": unknown directive '" + word +
                       "' (expected benchmark|instructions|axis)");
    }
    std::string trailing;
    check(!(ls >> trailing), where + ": trailing tokens after directive");
  }
  validate_spec(spec);
  return spec;
}

}  // namespace mlsim::sweep
