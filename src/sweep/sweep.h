// Design-space-exploration sweep engine (docs/SWEEPS.md).
//
// run_sweep() expands a SweepSpec into concrete machine points, regenerates
// only the labeled trace per point (the predictor is reused unchanged — the
// paper's Table IV observation), simulates each point through the exact same
// ParallelSimulator path as a standalone run, and reduces the results to a
// Pareto frontier over (modeled CPI, area proxy) plus a per-axis sensitivity
// table. Every point's CPI is bit-identical to running `mlsim_cli simulate`
// with that configuration.
//
// Execution is pluggable: by default points run in-process; when
// SweepOptions::remote is set they are fanned out through a
// service::RemoteBackend (the distributed coordinator), where one sweep
// point = one run fingerprint, so the coordinator's result cache memoizes
// repeated lattices.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "service/remote.h"
#include "sweep/lattice.h"
#include "uarch/config.h"

namespace mlsim::sweep {

struct SweepOptions {
  std::size_t num_subtraces = 4;
  std::size_t num_gpus = 1;
  std::size_t context_length = 64;
  /// Warmup + post-error correction (the paper's accuracy-recovery pair).
  bool recovery = true;
  std::uint64_t seed = 1;
  /// Reuse/persist per-point traces in the artifact cache.
  bool use_trace_cache = true;
  /// Baseline machine the axis settings are applied over.
  uarch::MachineConfig base;
  /// When set, each point executes via run_remote() instead of in-process.
  service::RemoteBackend* remote = nullptr;
  /// Cooperative cancellation, threaded into every point's simulation.
  const CancelToken* cancel = nullptr;
  /// Progress callback, invoked after each completed point (done, total).
  std::function<void(std::size_t, std::size_t)> progress;
};

struct SweepPointResult {
  SweepPoint point;
  double cpi = 0.0;        // modeled CPI — bit-identical to a standalone run
  double truth_cpi = 0.0;  // ground-truth CPI of the regenerated trace
  double area = 0.0;       // area_proxy(point.machine), kilo-cells
  std::uint64_t total_cycles = 0;
  std::size_t instructions = 0;
  bool on_frontier = false;
};

/// Mean CPI per value of one axis, marginalised over all other axes.
struct AxisSensitivity {
  std::string key;
  std::vector<std::string> values;
  std::vector<double> mean_cpi;  // parallel to `values`
  /// max(mean_cpi) - min(mean_cpi): how much this axis moves CPI.
  double span = 0.0;
};

struct SweepReport {
  std::vector<SweepPointResult> points;  // lattice (row-major) order
  /// Indices into `points` of the Pareto frontier (minimise CPI and area),
  /// sorted by ascending CPI.
  std::vector<std::size_t> frontier;
  std::vector<AxisSensitivity> sensitivity;  // spec axis order
  double elapsed_s = 0.0;
  double points_per_sec = 0.0;
};

/// Deterministic area/cost proxy in kilo-cells: cache capacity + tag/assoc
/// overhead + OoO window structures + issue crossbar + BTB. Not a physical
/// model — a fixed, monotone cost axis for Pareto ranking.
double area_proxy(const uarch::MachineConfig& m);

/// Fill `on_frontier`/`frontier`/`sensitivity` from `report.points`. Shared
/// by run_sweep() and the service gateway (which reduces after fan-out).
void rank_report(SweepReport& report, const SweepSpec& spec);

/// Expand, simulate, and rank the full lattice. Throws CheckError on an
/// invalid spec and CancelledError when opts.cancel fires.
SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& opts = {});

}  // namespace mlsim::sweep
