// Per-request flight recorder (docs/OBSERVABILITY.md): a fixed-size
// lock-free ring of request lifecycle events, stamped from the service,
// batcher, and engine hooks. When a request ends badly (rejected, deadline
// missed, breaker-bypassed, hung, failed) its id is also pushed onto a small
// error ring, and `last_errors_json(n)` reconstructs the full event sequence
// of the n most recent such requests — the post-mortem that
// `/healthz?last_errors=N` serves.
//
// Concurrency: writers claim a slot with one fetch_add and fill per-field
// atomics, publishing a stamp last (release); readers re-check the stamp
// around the field reads and skip slots that changed underneath them. No
// locks anywhere, so hooks are safe from any service/batcher/engine thread.
//
// Cost contract mirrors obs.h: compiled out entirely under
// MLSIM_OBS_DISABLE; with obs compiled in but runtime-disabled, record() is
// one relaxed atomic load and a branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mlsim::obs::flight {

/// Request lifecycle events, in rough temporal order.
enum class Event : std::uint32_t {
  kAdmitted = 0,        // passed admission control
  kQueued,              // enqueued (detail = priority)
  kPickedUp,            // claimed by a service worker thread
  kDeadlineArmed,       // cancel-on-deadline scheduled (detail = budget ms)
  kBatchFlushed,        // >=1 of its windows left in a batch (detail = size)
  kRetried,             // requeued after a hang was detected
  kBreakerBypassed,     // circuit breaker open: degraded fallback path
  kRejected,            // typed admission rejection (detail = status code)
  kDeadlineMissed,      // deadline exceeded
  kCancelled,           // cancelled by the caller or shutdown
  kHung,                // abandoned by the hang watchdog
  kFailed,              // engine failure
  kCompleted,           // success
  // Elastic-cluster events (docs/DISTRIBUTED.md), stamped by the
  // coordinator under the run's session id with detail = shard index.
  kShardStolen,         // assigned shard rebalanced off a slow worker
  kShardSpeculated,     // straggling shard duplicated onto an idle worker
  kCacheHit,            // shard served from the result cache, not dispatched
  // Crash-safe coordination events (docs/RESILIENCE.md), stamped by the
  // coordinator under the run's session id.
  kWorkerRejoined,      // v4 Rejoin accepted (detail = in-flight shard)
  kJournalReplayed,     // shard rebuilt from the run journal (detail = shard)
  kDrainStarted,        // SIGTERM/SIGINT drain begun (detail = shards done)
};

constexpr const char* to_string(Event ev) {
  switch (ev) {
    case Event::kAdmitted: return "admitted";
    case Event::kQueued: return "queued";
    case Event::kPickedUp: return "picked_up";
    case Event::kDeadlineArmed: return "deadline_armed";
    case Event::kBatchFlushed: return "batch_flushed";
    case Event::kRetried: return "retried";
    case Event::kBreakerBypassed: return "breaker_bypassed";
    case Event::kRejected: return "rejected";
    case Event::kDeadlineMissed: return "deadline_missed";
    case Event::kCancelled: return "cancelled";
    case Event::kHung: return "hung";
    case Event::kFailed: return "failed";
    case Event::kCompleted: return "completed";
    case Event::kShardStolen: return "shard_stolen";
    case Event::kShardSpeculated: return "shard_speculated";
    case Event::kCacheHit: return "cache_hit";
    case Event::kWorkerRejoined: return "worker_rejoined";
    case Event::kJournalReplayed: return "journal_replayed";
    case Event::kDrainStarted: return "drain_started";
  }
  return "unknown";
}

/// True for the terminal events that also land the request on the error
/// ring (and hence in last_errors_json).
constexpr bool is_error(Event ev) {
  return ev == Event::kRejected || ev == Event::kDeadlineMissed ||
         ev == Event::kBreakerBypassed || ev == Event::kHung ||
         ev == Event::kFailed;
}

/// Lifecycle events the ring holds before the oldest are overwritten.
inline constexpr std::size_t kRingCapacity = 4096;
/// Distinct bad-outcome request ids remembered for post-mortems.
inline constexpr std::size_t kErrorRingCapacity = 64;

#ifdef MLSIM_OBS_DISABLE

inline void record(std::uint64_t, Event, std::uint64_t = 0) {}
inline std::uint64_t recorded() { return 0; }
inline std::string last_errors_json(std::size_t) { return "[]"; }
inline void reset() {}

#else

/// Stamp one lifecycle event for `request_id` (no-op while obs is
/// runtime-disabled). `detail` is event-specific (see Event).
void record(std::uint64_t request_id, Event ev, std::uint64_t detail = 0);

/// Total events recorded since the last reset (including overwritten ones).
std::uint64_t recorded();

/// JSON array of the n most recent bad-outcome requests, most recent first:
/// [{"id":7,"events":[{"ev":"admitted","t_ns":12,"detail":0},...]},...].
/// Events still present in the ring are listed in recording order.
std::string last_errors_json(std::size_t n);

/// Clear both rings (tests and fresh service runs).
void reset();

#endif  // MLSIM_OBS_DISABLE

}  // namespace mlsim::obs::flight
