#include "obs/registry.h"

#include <bit>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/check.h"
#include "common/stats.h"
#include "obs/metric_names.h"

namespace mlsim::obs {

namespace {

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bitsd(std::uint64_t b) { return std::bit_cast<double>(b); }

/// Four buckets per decade over [1, 1e9]: resolves nanosecond durations from
/// 1 ns to 1 s; anything larger lands in the open-ended last bucket.
std::vector<double> default_edges() {
  std::vector<double> edges;
  edges.reserve(37);
  for (int k = 0; k <= 36; ++k) {
    edges.push_back(std::pow(10.0, static_cast<double>(k) / 4.0));
  }
  return edges;
}

/// JSON-safe number: NaN/inf become null (JSON has no non-finite literals).
void json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

/// Prometheus-safe number: the text format spells non-finite values out.
void prom_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else if (std::isnan(v)) {
    os << "NaN";
  } else {
    os << (v > 0 ? "+Inf" : "-Inf");
  }
}

}  // namespace

std::uint64_t Gauge::encode(double v) { return dbits(v); }
double Gauge::decode(std::uint64_t bits) { return bitsd(bits); }

void Gauge::add(double delta) {
  std::uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(cur, encode(decode(cur) + delta),
                                      std::memory_order_relaxed)) {
  }
}

Histogram::Histogram() : Histogram(default_edges()) {}

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)),
      min_bits_(dbits(std::numeric_limits<double>::infinity())),
      max_bits_(dbits(-std::numeric_limits<double>::infinity())) {
  check(!edges_.empty(), "histogram needs at least one bucket edge");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    check(edges_[i - 1] < edges_[i], "histogram edges must be ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) buckets_[i] = 0;
}

void Histogram::record(double v) {
  // First bucket whose upper edge holds v; overflow -> open-ended last bucket.
  std::size_t lo = 0, hi = edges_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (v <= edges_[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  buckets_[lo].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);

  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(cur, dbits(bitsd(cur) + v),
                                          std::memory_order_relaxed)) {
  }
  cur = min_bits_.load(std::memory_order_relaxed);
  while (v < bitsd(cur) &&
         !min_bits_.compare_exchange_weak(cur, dbits(v), std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (v > bitsd(cur) &&
         !max_bits_.compare_exchange_weak(cur, dbits(v), std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.upper_edges = edges_;
  s.counts.resize(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = bitsd(sum_bits_.load(std::memory_order_relaxed));
  if (s.count > 0) {
    s.min = bitsd(min_bits_.load(std::memory_order_relaxed));
    s.max = bitsd(max_bits_.load(std::memory_order_relaxed));
  }
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(dbits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(dbits(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double p) const {
  double q = quantile_from_buckets(upper_edges, counts, p);
  // The bucket interpolation only knows edges; observed min/max tighten it.
  if (count > 0 && std::isfinite(q)) {
    q = std::max(min, std::min(max, q));
  }
  return q;
}

Registry::Entry& Registry::find_or_create(const std::string& name, Kind kind) {
  std::lock_guard lk(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    check(it->second.kind == kind,
          "metric registered twice with different kinds: " + name);
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
  }
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& Registry::counter(const std::string& name) {
  return *find_or_create(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return *find_or_create(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return *find_or_create(name, Kind::kHistogram).histogram;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_edges) {
  std::lock_guard lk(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    check(it->second.kind == Kind::kHistogram,
          "metric registered twice with different kinds: " + name);
    return *it->second.histogram;
  }
  Entry e;
  e.kind = Kind::kHistogram;
  e.histogram = std::make_unique<Histogram>(std::move(upper_edges));
  return *metrics_.emplace(name, std::move(e)).first->second.histogram;
}

std::vector<std::string> Registry::metric_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) out.push_back(name);
  return out;
}

void Registry::write_text(std::ostream& os) const {
  std::lock_guard lk(mu_);
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        os << "counter " << name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "gauge " << name << ' ' << e.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = e.histogram->snapshot();
        os << "histogram " << name << " count=" << s.count << " sum=" << s.sum
           << " min=" << s.min << " max=" << s.max << " mean=" << s.mean()
           << " p50=" << s.quantile(50) << " p95=" << s.quantile(95)
           << " p99=" << s.quantile(99) << '\n';
        break;
      }
    }
  }
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, e] : metrics_) {
    if (e.kind != Kind::kCounter) continue;
    os << (first ? "" : ",") << '"' << name << "\":" << e.counter->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, e] : metrics_) {
    if (e.kind != Kind::kGauge) continue;
    os << (first ? "" : ",") << '"' << name << "\":";
    json_number(os, e.gauge->value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, e] : metrics_) {
    if (e.kind != Kind::kHistogram) continue;
    const HistogramSnapshot s = e.histogram->snapshot();
    os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << s.count
       << ",\"sum\":";
    json_number(os, s.sum);
    os << ",\"min\":";
    json_number(os, s.min);
    os << ",\"max\":";
    json_number(os, s.max);
    os << ",\"mean\":";
    json_number(os, s.mean());
    os << ",\"p50\":";
    json_number(os, s.quantile(50));
    os << ",\"p95\":";
    json_number(os, s.quantile(95));
    os << ",\"p99\":";
    json_number(os, s.quantile(99));
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      os << (i ? "," : "") << s.counts[i];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
}

std::string prom_name(const std::string& name) {
  std::string out = "mlsim_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard lk(mu_);
  for (const auto& [name, e] : metrics_) {
    const std::string pn = prom_name(name);
    switch (e.kind) {
      case Kind::kCounter:
        // Prometheus counters carry the `_total` suffix by convention; the
        // TYPE line names the full series.
        os << "# TYPE " << pn << "_total counter\n"
           << pn << "_total " << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << pn << " gauge\n" << pn << ' ';
        prom_number(os, e.gauge->value());
        os << '\n';
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = e.histogram->snapshot();
        os << "# TYPE " << pn << " histogram\n";
        // Cumulative buckets; `_count` is derived from the same bucket walk
        // (not the independent count_ atomic) so `+Inf == _count` holds even
        // when sampled mid-record. The storage histogram's last bucket is
        // open-ended (overflow lands there), so it maps to `+Inf`, not to
        // its nominal finite edge.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i + 1 < s.counts.size(); ++i) {
          cum += s.counts[i];
          os << pn << "_bucket{le=\"";
          prom_number(os, s.upper_edges[i]);
          os << "\"} " << cum << '\n';
        }
        cum += s.counts.empty() ? 0 : s.counts.back();
        os << pn << "_bucket{le=\"+Inf\"} " << cum << '\n';
        os << pn << "_sum ";
        prom_number(os, s.sum);
        os << '\n' << pn << "_count " << cum << '\n';
        break;
      }
    }
  }
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->reset(); break;
      case Kind::kGauge: e.gauge->reset(); break;
      case Kind::kHistogram: e.histogram->reset(); break;
    }
  }
}

Registry& default_registry() {
  static Registry* reg = [] {
    auto* r = new Registry();
    // Pre-register the canonical engine metrics so exposition always covers
    // every subsystem, including ones that did not run in this process.
    for (const auto& m : names::kBuiltinMetrics) {
      switch (m.kind) {
        case names::MetricKind::kCounter: r->counter(m.name); break;
        case names::MetricKind::kGauge: r->gauge(m.name); break;
        case names::MetricKind::kHistogram: r->histogram(m.name); break;
      }
    }
    return r;
  }();
  return *reg;
}

}  // namespace mlsim::obs
