// Canonical metric names for the built-in instrumentation.
//
// Naming convention (see docs/OBSERVABILITY.md): `<subsystem>.<what>[_unit]`.
// Counters count events or accumulated quantities, gauges hold last-written
// values, histograms record distributions (durations in nanoseconds unless
// the name says otherwise). Every name listed in `kBuiltinMetrics` is
// pre-registered by `default_registry()` so a metrics dump always exposes
// the full schema, including subsystems that did not run.
#pragma once

#include <cstddef>

namespace mlsim::obs::names {

// -- gpu_sim (single-device engine, src/core/gpu_sim.cpp) --------------------
inline constexpr const char* kGpuSimInstructions = "gpu_sim.instructions";
inline constexpr const char* kGpuSimBatches = "gpu_sim.batches";
// Simulated-time (cost model) phase totals, integer nanoseconds.
inline constexpr const char* kGpuSimInputConstructNs = "gpu_sim.input_construct_ns";
inline constexpr const char* kGpuSimInferenceNs = "gpu_sim.inference_ns";
inline constexpr const char* kGpuSimCopyNs = "gpu_sim.copy_ns";
inline constexpr const char* kGpuSimPipelineStallNs = "gpu_sim.pipeline_stall_ns";
inline constexpr const char* kGpuSimContextOccupancy = "gpu_sim.context_occupancy";
inline constexpr const char* kGpuSimBatchFillNs = "gpu_sim.batch_fill_ns";

// -- parallel_sim (sub-trace engine, src/core/parallel_sim.cpp) --------------
inline constexpr const char* kParSimPartitionsDone = "parallel_sim.partitions_done";
inline constexpr const char* kParSimWarmupInstructions =
    "parallel_sim.warmup_instructions";
inline constexpr const char* kParSimCorrectedInstructions =
    "parallel_sim.corrected_instructions";
inline constexpr const char* kParSimInstructions = "parallel_sim.instructions";
inline constexpr const char* kParSimBatchOccupancy =
    "parallel_sim.gpu_batch_occupancy";
inline constexpr const char* kParSimPartitionNs = "parallel_sim.partition_ns";
// Fault tolerance (docs/RESILIENCE.md).
inline constexpr const char* kParSimDeviceKills = "parallel_sim.device_kills";
inline constexpr const char* kParSimRetries = "parallel_sim.partition_retries";
inline constexpr const char* kParSimAnomalies =
    "parallel_sim.anomalous_predictions";
inline constexpr const char* kParSimDegradedPartitions =
    "parallel_sim.degraded_partitions";
inline constexpr const char* kParSimLostDevices = "parallel_sim.lost_devices";
inline constexpr const char* kParSimCheckpointWrites =
    "parallel_sim.checkpoint_writes";
inline constexpr const char* kParSimAttemptsPerPartition =
    "parallel_sim.attempts_per_partition";

// -- streaming (src/core/streaming.cpp) --------------------------------------
inline constexpr const char* kStreamChunks = "streaming.chunks";
inline constexpr const char* kStreamInstructions = "streaming.instructions";
inline constexpr const char* kStreamRowsResident = "streaming.rows_resident";
inline constexpr const char* kStreamFillNs = "streaming.chunk_fill_ns";
inline constexpr const char* kStreamPredictNs = "streaming.chunk_predict_ns";

// -- trainer (src/core/simnet_trainer.cpp) -----------------------------------
inline constexpr const char* kTrainEpochs = "trainer.epochs";
inline constexpr const char* kTrainSteps = "trainer.steps";
inline constexpr const char* kTrainLastLoss = "trainer.last_epoch_loss";
inline constexpr const char* kTrainStepNs = "trainer.step_ns";
inline constexpr const char* kTrainEpochNs = "trainer.epoch_ns";

// -- thread_pool (src/common/thread_pool.cpp) --------------------------------
inline constexpr const char* kPoolQueueDepth = "thread_pool.queue_depth";
inline constexpr const char* kPoolQueueHighWater = "thread_pool.queue_high_water";
inline constexpr const char* kPoolTasksDone = "thread_pool.tasks_done";
inline constexpr const char* kPoolTaskNs = "thread_pool.task_ns";

// -- service (src/service/service.cpp; docs/SERVICE.md) ----------------------
inline constexpr const char* kSvcAccepted = "service.requests_accepted";
inline constexpr const char* kSvcRejectedQueueFull =
    "service.rejected_queue_full";
inline constexpr const char* kSvcRejectedOverload = "service.rejected_overload";
inline constexpr const char* kSvcRejectedShedding = "service.rejected_shedding";
inline constexpr const char* kSvcCompleted = "service.requests_completed";
inline constexpr const char* kSvcFailed = "service.requests_failed";
inline constexpr const char* kSvcDeadlineExceeded = "service.deadline_exceeded";
inline constexpr const char* kSvcCancelled = "service.requests_cancelled";
inline constexpr const char* kSvcDegraded = "service.degraded_requests";
inline constexpr const char* kSvcHangsDetected = "service.hangs_detected";
inline constexpr const char* kSvcHangRequeues = "service.hang_requeues";
inline constexpr const char* kSvcQueueDepth = "service.queue_depth";
inline constexpr const char* kSvcInflight = "service.inflight";
// 0 = closed, 1 = open, 2 = half-open (see service/circuit_breaker.h).
inline constexpr const char* kSvcBreakerState = "service.breaker_state";
inline constexpr const char* kSvcBreakerTrips = "service.breaker_trips";
inline constexpr const char* kSvcBreakerProbes = "service.breaker_probes";
inline constexpr const char* kSvcRequestNs = "service.request_ns";
// Per-tenant admission quota rejections (docs/SERVICE.md).
inline constexpr const char* kSvcRejectedQuota = "service.rejected_quota";

// -- batcher (continuous-batching scheduler, src/service/batcher.cpp;
//    docs/BATCHING.md) --------------------------------------------------------
inline constexpr const char* kBatchItems = "batcher.items";
inline constexpr const char* kBatchDroppedCancelled = "batcher.dropped_cancelled";
inline constexpr const char* kBatchQueueDepth = "batcher.queue_depth";
inline constexpr const char* kBatchSize = "batcher.batch_size";
// Flush triggers: the batch hit max_batch / max_wait_us expired / drain at
// shutdown.
inline constexpr const char* kBatchFlushSize = "batcher.flush_size";
inline constexpr const char* kBatchFlushDeadline = "batcher.flush_deadline";
inline constexpr const char* kBatchFlushShutdown = "batcher.flush_shutdown";

// -- net (RPC framing over TCP, src/net/; docs/DISTRIBUTED.md) ---------------
inline constexpr const char* kNetBytesSent = "net.bytes_sent";
inline constexpr const char* kNetBytesReceived = "net.bytes_received";
inline constexpr const char* kNetFramesSent = "net.frames_sent";
inline constexpr const char* kNetFramesReceived = "net.frames_received";
inline constexpr const char* kNetFrameRecvNs = "net.frame_recv_ns";

// -- dist (coordinator/worker cluster, src/dist/; docs/DISTRIBUTED.md) -------
inline constexpr const char* kDistWorkersJoined = "dist.workers_joined";
inline constexpr const char* kDistShardsDispatched = "dist.shards_dispatched";
inline constexpr const char* kDistShardsCompleted = "dist.shards_completed";
inline constexpr const char* kDistReassignments = "dist.reassignments";
inline constexpr const char* kDistDuplicatesDropped = "dist.duplicates_dropped";
inline constexpr const char* kDistHeartbeats = "dist.heartbeats";
inline constexpr const char* kDistWorkersLost = "dist.workers_lost";
// Assign-send to Result-receipt wall time of each completed shard attempt.
inline constexpr const char* kDistShardLatencyUs = "dist.shard_latency_us";
// Completed shards per worker connection, recorded when a run finishes.
inline constexpr const char* kDistShardsPerWorker = "dist.shards_per_worker";
// Planned departures: workers that sent Goodbye instead of going silent.
inline constexpr const char* kDistWorkersDeparted = "dist.workers_departed";
// v4 Rejoin handshakes accepted: a worker re-attached to this (possibly
// restarted) coordinator with a matching session token.
inline constexpr const char* kDistWorkersRejoined = "dist.workers_rejoined";

// -- crash-safe coordination (run journal + graceful drain, src/dist/;
//    docs/RESILIENCE.md "Crash-safe coordination") ---------------------------
// Records appended+fsynced to the run journal, and their total envelope
// bytes.
inline constexpr const char* kDistJournalRecords = "dist.journal.records";
inline constexpr const char* kDistJournalBytes = "dist.journal.bytes";
// Completed shard outcomes rebuilt by `--resume` journal replay.
inline constexpr const char* kDistJournalReplayedResults =
    "dist.journal.replayed_results";
// Corrupt/truncated tail bytes dropped by a lenient replay.
inline constexpr const char* kDistJournalDroppedBytes =
    "dist.journal.dropped_bytes";
// SIGTERM/SIGINT drains begun, and shards still unfinished when the drain
// deadline closed the run.
inline constexpr const char* kDistDrainRequests = "dist.drain.requests";
inline constexpr const char* kDistDrainShardsAbandoned =
    "dist.drain.shards_abandoned";

// -- elastic cluster (work stealing, speculative straggler dispatch, and
//    the shard-result cache, src/dist/; docs/DISTRIBUTED.md) -----------------
// Assigned shards rebalanced away from a slow worker onto an idle one.
inline constexpr const char* kClusterStealShards = "cluster.steal.shards";
// Straggling shards duplicated onto an idle worker, and the duplicates
// whose Result arrived before the original owner's.
inline constexpr const char* kClusterSpeculativeDispatched =
    "cluster.speculative.dispatched";
inline constexpr const char* kClusterSpeculativeWins =
    "cluster.speculative.wins";
// Content-addressed shard-result cache keyed by (run fingerprint, shard
// descriptor): hit/miss/LRU-eviction counts and current occupancy.
inline constexpr const char* kClusterCacheHits = "cluster.cache.hits";
inline constexpr const char* kClusterCacheMisses = "cluster.cache.misses";
inline constexpr const char* kClusterCacheEvictions =
    "cluster.cache.evictions";
inline constexpr const char* kClusterCacheEntries = "cluster.cache.entries";

// -- cluster rollups (coordinator-side aggregation of worker heartbeat
//    deltas, src/dist/coordinator.cpp; docs/OBSERVABILITY.md) ----------------
inline constexpr const char* kClusterWorkerInstructions =
    "cluster.worker.instructions";
inline constexpr const char* kClusterWorkerPartitionsDone =
    "cluster.worker.partitions_done";
inline constexpr const char* kClusterWorkerRetries =
    "cluster.worker.partition_retries";
inline constexpr const char* kClusterWorkerAnomalies =
    "cluster.worker.anomalous_predictions";
inline constexpr const char* kClusterWorkerDegraded =
    "cluster.worker.degraded_partitions";
// Mean fraction of wall time live workers spent inside run_partition since
// their previous heartbeat (docs/DISTRIBUTED.md); per-worker ratios are in
// the coordinator's cluster_json.
inline constexpr const char* kClusterWorkerBusyRatio =
    "cluster.worker.busy_ratio";

// -- sweep (design-space-exploration engine, src/sweep/ and the service
//    gateway in src/service/sweep.cpp; docs/SWEEPS.md) -----------------------
// Sweeps started (one per lattice), and their per-point outcome counters.
inline constexpr const char* kSweepRequests = "sweep.requests";
inline constexpr const char* kSweepPointsTotal = "sweep.points_total";
inline constexpr const char* kSweepPointsCompleted = "sweep.points_completed";
// Service-path admission outcomes: points turned away typed (queue/quota/
// shedding/deadline) vs points that ran and failed.
inline constexpr const char* kSweepPointsRejected = "sweep.points_rejected";
inline constexpr const char* kSweepPointsFailed = "sweep.points_failed";
// Wall time per completed sweep point (trace acquisition + simulation).
inline constexpr const char* kSweepPointNs = "sweep.point_ns";
// Sweeps currently executing, and the Pareto-frontier size of the most
// recently completed sweep.
inline constexpr const char* kSweepActive = "sweep.active";
inline constexpr const char* kSweepParetoSize = "sweep.pareto_size";

// -- telemetry (HTTP endpoint, src/obs/telemetry_http.cpp) -------------------
inline constexpr const char* kTelemetryHttpRequests = "telemetry.http_requests";
inline constexpr const char* kTelemetryHttpErrors = "telemetry.http_errors";

enum class MetricKind { kCounter, kGauge, kHistogram };

struct BuiltinMetric {
  const char* name;
  MetricKind kind;
};

/// Every built-in metric, pre-registered by `obs::default_registry()`.
inline constexpr BuiltinMetric kBuiltinMetrics[] = {
    {kGpuSimInstructions, MetricKind::kCounter},
    {kGpuSimBatches, MetricKind::kCounter},
    {kGpuSimInputConstructNs, MetricKind::kCounter},
    {kGpuSimInferenceNs, MetricKind::kCounter},
    {kGpuSimCopyNs, MetricKind::kCounter},
    {kGpuSimPipelineStallNs, MetricKind::kCounter},
    {kGpuSimContextOccupancy, MetricKind::kGauge},
    {kGpuSimBatchFillNs, MetricKind::kHistogram},
    {kParSimPartitionsDone, MetricKind::kCounter},
    {kParSimWarmupInstructions, MetricKind::kCounter},
    {kParSimCorrectedInstructions, MetricKind::kCounter},
    {kParSimInstructions, MetricKind::kCounter},
    {kParSimBatchOccupancy, MetricKind::kGauge},
    {kParSimPartitionNs, MetricKind::kHistogram},
    {kParSimDeviceKills, MetricKind::kCounter},
    {kParSimRetries, MetricKind::kCounter},
    {kParSimAnomalies, MetricKind::kCounter},
    {kParSimDegradedPartitions, MetricKind::kCounter},
    {kParSimLostDevices, MetricKind::kGauge},
    {kParSimCheckpointWrites, MetricKind::kCounter},
    {kParSimAttemptsPerPartition, MetricKind::kHistogram},
    {kStreamChunks, MetricKind::kCounter},
    {kStreamInstructions, MetricKind::kCounter},
    {kStreamRowsResident, MetricKind::kGauge},
    {kStreamFillNs, MetricKind::kHistogram},
    {kStreamPredictNs, MetricKind::kHistogram},
    {kTrainEpochs, MetricKind::kCounter},
    {kTrainSteps, MetricKind::kCounter},
    {kTrainLastLoss, MetricKind::kGauge},
    {kTrainStepNs, MetricKind::kHistogram},
    {kTrainEpochNs, MetricKind::kHistogram},
    {kPoolQueueDepth, MetricKind::kGauge},
    {kPoolQueueHighWater, MetricKind::kGauge},
    {kPoolTasksDone, MetricKind::kCounter},
    {kPoolTaskNs, MetricKind::kHistogram},
    {kSvcAccepted, MetricKind::kCounter},
    {kSvcRejectedQueueFull, MetricKind::kCounter},
    {kSvcRejectedOverload, MetricKind::kCounter},
    {kSvcRejectedShedding, MetricKind::kCounter},
    {kSvcCompleted, MetricKind::kCounter},
    {kSvcFailed, MetricKind::kCounter},
    {kSvcDeadlineExceeded, MetricKind::kCounter},
    {kSvcCancelled, MetricKind::kCounter},
    {kSvcDegraded, MetricKind::kCounter},
    {kSvcHangsDetected, MetricKind::kCounter},
    {kSvcHangRequeues, MetricKind::kCounter},
    {kSvcQueueDepth, MetricKind::kGauge},
    {kSvcInflight, MetricKind::kGauge},
    {kSvcBreakerState, MetricKind::kGauge},
    {kSvcBreakerTrips, MetricKind::kCounter},
    {kSvcBreakerProbes, MetricKind::kCounter},
    {kSvcRequestNs, MetricKind::kHistogram},
    {kSvcRejectedQuota, MetricKind::kCounter},
    {kBatchItems, MetricKind::kCounter},
    {kBatchDroppedCancelled, MetricKind::kCounter},
    {kBatchQueueDepth, MetricKind::kGauge},
    {kBatchSize, MetricKind::kHistogram},
    {kBatchFlushSize, MetricKind::kCounter},
    {kBatchFlushDeadline, MetricKind::kCounter},
    {kBatchFlushShutdown, MetricKind::kCounter},
    {kNetBytesSent, MetricKind::kCounter},
    {kNetBytesReceived, MetricKind::kCounter},
    {kNetFramesSent, MetricKind::kCounter},
    {kNetFramesReceived, MetricKind::kCounter},
    {kNetFrameRecvNs, MetricKind::kHistogram},
    {kDistWorkersJoined, MetricKind::kCounter},
    {kDistShardsDispatched, MetricKind::kCounter},
    {kDistShardsCompleted, MetricKind::kCounter},
    {kDistReassignments, MetricKind::kCounter},
    {kDistDuplicatesDropped, MetricKind::kCounter},
    {kDistHeartbeats, MetricKind::kCounter},
    {kDistWorkersLost, MetricKind::kCounter},
    {kDistShardLatencyUs, MetricKind::kHistogram},
    {kDistShardsPerWorker, MetricKind::kHistogram},
    {kDistWorkersDeparted, MetricKind::kCounter},
    {kDistWorkersRejoined, MetricKind::kCounter},
    {kDistJournalRecords, MetricKind::kCounter},
    {kDistJournalBytes, MetricKind::kCounter},
    {kDistJournalReplayedResults, MetricKind::kCounter},
    {kDistJournalDroppedBytes, MetricKind::kCounter},
    {kDistDrainRequests, MetricKind::kCounter},
    {kDistDrainShardsAbandoned, MetricKind::kCounter},
    {kClusterStealShards, MetricKind::kCounter},
    {kClusterSpeculativeDispatched, MetricKind::kCounter},
    {kClusterSpeculativeWins, MetricKind::kCounter},
    {kClusterCacheHits, MetricKind::kCounter},
    {kClusterCacheMisses, MetricKind::kCounter},
    {kClusterCacheEvictions, MetricKind::kCounter},
    {kClusterCacheEntries, MetricKind::kGauge},
    {kClusterWorkerInstructions, MetricKind::kCounter},
    {kClusterWorkerPartitionsDone, MetricKind::kCounter},
    {kClusterWorkerRetries, MetricKind::kCounter},
    {kClusterWorkerAnomalies, MetricKind::kCounter},
    {kClusterWorkerDegraded, MetricKind::kCounter},
    {kClusterWorkerBusyRatio, MetricKind::kGauge},
    {kSweepRequests, MetricKind::kCounter},
    {kSweepPointsTotal, MetricKind::kCounter},
    {kSweepPointsCompleted, MetricKind::kCounter},
    {kSweepPointsRejected, MetricKind::kCounter},
    {kSweepPointsFailed, MetricKind::kCounter},
    {kSweepPointNs, MetricKind::kHistogram},
    {kSweepActive, MetricKind::kGauge},
    {kSweepParetoSize, MetricKind::kGauge},
    {kTelemetryHttpRequests, MetricKind::kCounter},
    {kTelemetryHttpErrors, MetricKind::kCounter},
};

inline constexpr std::size_t kNumBuiltinMetrics =
    sizeof(kBuiltinMetrics) / sizeof(kBuiltinMetrics[0]);

}  // namespace mlsim::obs::names
