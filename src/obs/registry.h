// Thread-safe metrics registry: monotonic counters, gauges, and fixed-bucket
// latency histograms with interpolated quantiles.
//
// Metric objects are lock-free once obtained (atomics only); registration /
// lookup takes a registry mutex. Handles returned by the registry are stable
// for the registry's lifetime, so hot paths cache a reference (the MLSIM_*
// macros in obs.h do exactly that via a function-local static).
//
// A process-global `default_registry()` pre-registers the canonical engine
// metrics (metric_names.h) so exposition always covers every subsystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mlsim::obs {

/// Monotonically increasing counter (events, accumulated µs, ...).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (queue depth, occupancy, resident rows, ...).
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Consistent snapshot of a histogram (taken bucket-by-bucket with relaxed
/// loads; exact under quiescence, approximate under concurrent recording).
struct HistogramSnapshot {
  std::vector<double> upper_edges;   // ascending; last bucket is open-ended
  std::vector<std::uint64_t> counts;  // same size as upper_edges
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Interpolated quantile, p in [0, 100]; NaN when empty.
  double quantile(double p) const;
};

/// Fixed-bucket histogram. Default buckets are exponential (factor ~1.78,
/// i.e. four per decade) spanning [1, 1e9] — nanosecond durations from 1 ns
/// to 1 s land in distinct buckets; values outside fall into the first /
/// open-ended last bucket.
class Histogram {
 public:
  Histogram();  // default exponential edges
  explicit Histogram(std::vector<double> upper_edges);

  void record(double v);
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> edges_;  // ascending upper bounds, size B; bucket B-1 open
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};   // double bit pattern, CAS-accumulated
  std::atomic<std::uint64_t> min_bits_;      // double bit pattern
  std::atomic<std::uint64_t> max_bits_;
};

/// Named metric store. `counter()`/`gauge()`/`histogram()` find-or-create;
/// requesting an existing name with a different kind throws CheckError.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> upper_edges);

  /// Sorted names of all registered metrics.
  std::vector<std::string> metric_names() const;

  /// Prometheus-style plain-text exposition (counters/gauges as single
  /// samples, histograms as count/sum/min/max/mean/p50/p95/p99 lines).
  void write_text(std::ostream& os) const;

  /// Single JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;

  /// Prometheus text exposition format 0.0.4 (what `GET /metrics` serves):
  /// names are prefixed `mlsim_` and dots become underscores, counters gain
  /// the `_total` suffix, histograms emit cumulative `_bucket{le="..."}` /
  /// `_sum` / `_count` series, and every family carries a `# TYPE` line.
  void write_prometheus(std::ostream& os) const;

  /// Zero every metric (keeps registrations).
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  // ordered -> deterministic exposition
};

/// Process-global registry with the built-in engine metrics pre-registered.
Registry& default_registry();

/// `mlsim.foo.bar_ns` -> `mlsim_foo_bar_ns`: prefix plus Prometheus-legal
/// name characters only (dots and other punctuation become underscores).
std::string prom_name(const std::string& name);

/// Escape a string for a Prometheus label value or HELP text: backslash,
/// double quote, and newline get backslash-escaped.
std::string prom_escape(const std::string& s);

}  // namespace mlsim::obs
