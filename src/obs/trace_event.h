// Scoped-span trace recording with Chrome trace-event JSON export.
//
// Spans are recorded as complete ("ph":"X") events into lock-free per-thread
// ring buffers: the owning thread appends with no synchronisation; buffers
// are registered once (under a mutex) when a thread records its first event
// and owned globally so events survive worker-thread exit. When a ring
// wraps, the oldest events are overwritten and counted as dropped.
//
// Timestamps come from std::chrono::steady_clock, relative to the session
// start (set by `reset_trace()` or the first `obs::set_enabled(true)`).
// Export is intended for quiescent points (end of run); exporting while
// other threads are still recording yields a best-effort snapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mlsim::obs {

struct TraceEvent {
  const char* name;     // must outlive the session — pass string literals
  std::uint64_t ts_ns;  // span start, relative to session start
  std::uint64_t dur_ns;
  std::uint32_t depth;  // thread-local span-stack depth at open (0 = root)
};

/// Events each thread can hold before its ring wraps (~6 MiB/thread).
inline constexpr std::size_t kThreadRingCapacity = std::size_t{1} << 18;

/// Nanoseconds since session start (steady clock).
std::uint64_t session_now_ns();

/// Append a complete event to the calling thread's ring buffer.
void record_complete_event(const char* name, std::uint64_t ts_ns,
                           std::uint64_t dur_ns, std::uint32_t depth);

/// Thread-local open-span depth (maintained by ScopedSpan).
std::uint32_t& thread_span_depth();

/// Clear all buffered events and restart the session clock.
void reset_trace();

/// Events currently buffered / overwritten across all threads.
std::uint64_t recorded_events();
std::uint64_t dropped_events();

/// Chrome trace-event JSON ("traceEvents" array of "ph":"X" events, µs
/// timestamps) — loadable in chrome://tracing and Perfetto.
void write_chrome_trace(std::ostream& os);

/// Convenience: write to a file; returns false if the file cannot be opened.
bool write_chrome_trace_file(const std::string& path);

}  // namespace mlsim::obs
