// Scoped-span trace recording with Chrome trace-event JSON export.
//
// Spans are recorded as complete ("ph":"X") events into lock-free per-thread
// ring buffers: the owning thread appends with no synchronisation; buffers
// are registered once (under a mutex) when a thread records its first event
// and owned globally so events survive worker-thread exit. When a ring
// wraps, the oldest events are overwritten and counted as dropped.
//
// Timestamps come from std::chrono::steady_clock, relative to the session
// start (set by `reset_trace()` or the first `obs::set_enabled(true)`).
// Export is intended for quiescent points (end of run); exporting while
// other threads are still recording yields a best-effort snapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mlsim::obs {

struct TraceEvent {
  const char* name;     // must outlive the session — pass string literals
  std::uint64_t ts_ns;  // span start, relative to session start
  std::uint64_t dur_ns;
  std::uint32_t depth;  // thread-local span-stack depth at open (0 = root)
};

/// Owned copy of a span, safe to ship across process boundaries (the dist
/// protocol serialises these; TraceEvent's `const char*` cannot travel).
struct SpanRecord {
  std::string name;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;
  std::uint32_t tid = 0;  // recording thread within its process
};

/// Events each thread can hold before its ring wraps (~6 MiB/thread).
inline constexpr std::size_t kThreadRingCapacity = std::size_t{1} << 18;

/// Nanoseconds since session start (steady clock).
std::uint64_t session_now_ns();

/// Append a complete event to the calling thread's ring buffer.
void record_complete_event(const char* name, std::uint64_t ts_ns,
                           std::uint64_t dur_ns, std::uint32_t depth);

/// Thread-local open-span depth (maintained by ScopedSpan).
std::uint32_t& thread_span_depth();

/// Clear all buffered events and restart the session clock.
void reset_trace();

/// Events currently buffered across all threads, including merged remote
/// batches; dropped_events() counts ring overwrites (local only).
std::uint64_t recorded_events();
std::uint64_t dropped_events();

/// Distributed trace context (docs/OBSERVABILITY.md): a nonzero trace_id
/// tags every exported local span; workers inherit it from AssignMsg so the
/// coordinator's merged trace groups all processes under one id. Sticky
/// across reset_trace(); 0 = unset.
void set_trace_context(std::uint64_t trace_id, std::uint64_t parent_span);
std::uint64_t current_trace_id();
std::uint64_t current_parent_span();

/// Owned copies of every buffered local span (ring order per thread) — what
/// a worker attaches to ResultMsg.
std::vector<SpanRecord> snapshot_spans();

/// Merge a batch of spans from another process; `pid` distinguishes the
/// source in the exported Chrome trace (local events are pid 1). Cleared by
/// reset_trace().
void add_remote_spans(std::uint32_t pid, std::uint64_t trace_id,
                      std::vector<SpanRecord> spans);

/// Chrome trace-event JSON ("traceEvents" array of "ph":"X" events, µs
/// timestamps) — loadable in chrome://tracing and Perfetto. Local events are
/// pid 1; remote batches keep their source pid; all carry their trace_id in
/// args when one is set.
void write_chrome_trace(std::ostream& os);

/// Convenience: write to a file; returns false if the file cannot be opened.
bool write_chrome_trace_file(const std::string& path);

}  // namespace mlsim::obs
