#include "obs/trace_event.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace mlsim::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ThreadBuffer {
  std::vector<TraceEvent> ring;
  std::uint64_t written = 0;  // total appended; ring holds the most recent
  std::uint32_t tid = 0;

  void append(const TraceEvent& e) {
    if (ring.size() < kThreadRingCapacity) {
      ring.push_back(e);
    } else {
      ring[written % kThreadRingCapacity] = e;
    }
    ++written;
  }
};

struct RemoteBatch {
  std::uint32_t pid = 0;
  std::uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;
};

struct TraceState {
  std::mutex mu;  // guards `buffers` registration, remote batches, export/reset
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<RemoteBatch> remote;
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<std::uint32_t> next_tid{1};
  // Distributed trace context; sticky across reset_trace() so a worker set
  // up from AssignMsg keeps tagging spans for the whole shard.
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> parent_span{0};
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives exiting threads
  return *s;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = state().next_tid.fetch_add(1, std::memory_order_relaxed);
    ThreadBuffer* raw = owned.get();
    std::lock_guard lk(state().mu);
    state().buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

}  // namespace

std::uint64_t session_now_ns() {
  std::uint64_t t0 = state().t0_ns.load(std::memory_order_relaxed);
  if (t0 == 0) {
    // First use: pin the session origin (racy ties resolved by CAS).
    std::uint64_t expected = 0;
    const std::uint64_t now = steady_ns();
    if (state().t0_ns.compare_exchange_strong(expected, now,
                                              std::memory_order_relaxed)) {
      t0 = now;
    } else {
      t0 = expected;
    }
  }
  const std::uint64_t now = steady_ns();
  return now > t0 ? now - t0 : 0;
}

void record_complete_event(const char* name, std::uint64_t ts_ns,
                           std::uint64_t dur_ns, std::uint32_t depth) {
  thread_buffer().append(TraceEvent{name, ts_ns, dur_ns, depth});
}

std::uint32_t& thread_span_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

void set_trace_context(std::uint64_t trace_id, std::uint64_t parent_span) {
  state().trace_id.store(trace_id, std::memory_order_relaxed);
  state().parent_span.store(parent_span, std::memory_order_relaxed);
}

std::uint64_t current_trace_id() {
  return state().trace_id.load(std::memory_order_relaxed);
}

std::uint64_t current_parent_span() {
  return state().parent_span.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> snapshot_spans() {
  std::lock_guard lk(state().mu);
  std::vector<SpanRecord> out;
  for (const auto& b : state().buffers) {
    for (const TraceEvent& e : b->ring) {
      out.push_back(SpanRecord{e.name, e.ts_ns, e.dur_ns, e.depth, b->tid});
    }
  }
  return out;
}

void add_remote_spans(std::uint32_t pid, std::uint64_t trace_id,
                      std::vector<SpanRecord> spans) {
  std::lock_guard lk(state().mu);
  state().remote.push_back(RemoteBatch{pid, trace_id, std::move(spans)});
}

void reset_trace() {
  std::lock_guard lk(state().mu);
  for (auto& b : state().buffers) {
    b->ring.clear();
    b->written = 0;
  }
  state().remote.clear();
  state().t0_ns.store(steady_ns(), std::memory_order_relaxed);
}

std::uint64_t recorded_events() {
  std::lock_guard lk(state().mu);
  std::uint64_t n = 0;
  for (const auto& b : state().buffers) n += b->ring.size();
  for (const auto& r : state().remote) n += r.spans.size();
  return n;
}

std::uint64_t dropped_events() {
  std::lock_guard lk(state().mu);
  std::uint64_t n = 0;
  for (const auto& b : state().buffers) {
    if (b->written > kThreadRingCapacity) n += b->written - kThreadRingCapacity;
  }
  return n;
}

namespace {

void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

namespace {

/// Lowercase hex, no 0x prefix — how trace ids appear in exported JSON.
std::string hex_id(std::uint64_t v) {
  char buf[17];
  static constexpr char kDigits[] = "0123456789abcdef";
  int n = 0;
  do {
    buf[n++] = kDigits[v & 0xf];
    v >>= 4;
  } while (v != 0);
  std::string out;
  out.reserve(static_cast<std::size_t>(n));
  while (n > 0) out.push_back(buf[--n]);
  return out;
}

void write_span_json(std::ostream& os, const char* name, std::uint64_t ts_ns,
                     std::uint64_t dur_ns, std::uint32_t depth,
                     std::uint32_t pid, std::uint32_t tid,
                     std::uint64_t trace_id) {
  os << "{\"name\":\"";
  write_escaped(os, name);
  // Chrome trace timestamps are microseconds; keep ns resolution via
  // fractional µs.
  os << "\",\"cat\":\"mlsim\",\"ph\":\"X\",\"ts\":"
     << static_cast<double>(ts_ns) / 1000.0
     << ",\"dur\":" << static_cast<double>(dur_ns) / 1000.0
     << ",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"args\":{\"depth\":" << depth;
  if (trace_id != 0) {
    os << ",\"trace_id\":\"" << hex_id(trace_id) << '"';
  }
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  std::lock_guard lk(state().mu);
  // Default stream precision (6 significant digits) would round µs timestamps
  // enough to break visual nesting for sessions longer than ~1 s.
  const auto old_precision = os.precision(15);
  const std::uint64_t local_trace_id =
      state().trace_id.load(std::memory_order_relaxed);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& b : state().buffers) {
    for (const TraceEvent& e : b->ring) {
      if (!first) os << ",\n";
      first = false;
      write_span_json(os, e.name, e.ts_ns, e.dur_ns, e.depth, /*pid=*/1,
                      b->tid, local_trace_id);
    }
  }
  for (const auto& batch : state().remote) {
    for (const SpanRecord& s : batch.spans) {
      if (!first) os << ",\n";
      first = false;
      write_span_json(os, s.name.c_str(), s.ts_ns, s.dur_ns, s.depth,
                      batch.pid, s.tid, batch.trace_id);
    }
  }
  std::uint64_t dropped = 0;
  for (const auto& b : state().buffers) {
    if (b->written > kThreadRingCapacity) {
      dropped += b->written - kThreadRingCapacity;
    }
  }
  os << "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":"
     << dropped << "}}";
  os.precision(old_precision);
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os.is_open()) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace mlsim::obs
