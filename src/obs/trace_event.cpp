#include "obs/trace_event.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace mlsim::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ThreadBuffer {
  std::vector<TraceEvent> ring;
  std::uint64_t written = 0;  // total appended; ring holds the most recent
  std::uint32_t tid = 0;

  void append(const TraceEvent& e) {
    if (ring.size() < kThreadRingCapacity) {
      ring.push_back(e);
    } else {
      ring[written % kThreadRingCapacity] = e;
    }
    ++written;
  }
};

struct TraceState {
  std::mutex mu;  // guards `buffers` registration and export/reset
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<std::uint32_t> next_tid{1};
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives exiting threads
  return *s;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = state().next_tid.fetch_add(1, std::memory_order_relaxed);
    ThreadBuffer* raw = owned.get();
    std::lock_guard lk(state().mu);
    state().buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

}  // namespace

std::uint64_t session_now_ns() {
  std::uint64_t t0 = state().t0_ns.load(std::memory_order_relaxed);
  if (t0 == 0) {
    // First use: pin the session origin (racy ties resolved by CAS).
    std::uint64_t expected = 0;
    const std::uint64_t now = steady_ns();
    if (state().t0_ns.compare_exchange_strong(expected, now,
                                              std::memory_order_relaxed)) {
      t0 = now;
    } else {
      t0 = expected;
    }
  }
  const std::uint64_t now = steady_ns();
  return now > t0 ? now - t0 : 0;
}

void record_complete_event(const char* name, std::uint64_t ts_ns,
                           std::uint64_t dur_ns, std::uint32_t depth) {
  thread_buffer().append(TraceEvent{name, ts_ns, dur_ns, depth});
}

std::uint32_t& thread_span_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

void reset_trace() {
  std::lock_guard lk(state().mu);
  for (auto& b : state().buffers) {
    b->ring.clear();
    b->written = 0;
  }
  state().t0_ns.store(steady_ns(), std::memory_order_relaxed);
}

std::uint64_t recorded_events() {
  std::lock_guard lk(state().mu);
  std::uint64_t n = 0;
  for (const auto& b : state().buffers) n += b->ring.size();
  return n;
}

std::uint64_t dropped_events() {
  std::lock_guard lk(state().mu);
  std::uint64_t n = 0;
  for (const auto& b : state().buffers) {
    if (b->written > kThreadRingCapacity) n += b->written - kThreadRingCapacity;
  }
  return n;
}

namespace {

void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  std::lock_guard lk(state().mu);
  // Default stream precision (6 significant digits) would round µs timestamps
  // enough to break visual nesting for sessions longer than ~1 s.
  const auto old_precision = os.precision(15);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& b : state().buffers) {
    for (const TraceEvent& e : b->ring) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"name\":\"";
      write_escaped(os, e.name);
      // Chrome trace timestamps are microseconds; keep ns resolution via
      // fractional µs.
      os << "\",\"cat\":\"mlsim\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(e.ts_ns) / 1000.0
         << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0
         << ",\"pid\":1,\"tid\":" << b->tid << ",\"args\":{\"depth\":" << e.depth
         << "}}";
    }
  }
  std::uint64_t dropped = 0;
  for (const auto& b : state().buffers) {
    if (b->written > kThreadRingCapacity) {
      dropped += b->written - kThreadRingCapacity;
    }
  }
  os << "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":"
     << dropped << "}}";
  os.precision(old_precision);
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os.is_open()) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace mlsim::obs
