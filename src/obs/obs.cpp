#include "obs/obs.h"

namespace mlsim::obs {

#ifndef MLSIM_OBS_DISABLE

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  if (on) session_now_ns();  // pin the session clock before the first span
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

#endif  // MLSIM_OBS_DISABLE

}  // namespace mlsim::obs
