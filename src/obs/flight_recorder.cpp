#include "obs/flight_recorder.h"

#ifndef MLSIM_OBS_DISABLE

#include <algorithm>
#include <atomic>
#include <sstream>
#include <vector>

#include "obs/obs.h"
#include "obs/trace_event.h"

namespace mlsim::obs::flight {

namespace {

// One lifecycle event. `stamp` holds the claim index + 1 and is published
// last (release); readers treat a slot as consistent only if the stamp is
// nonzero and unchanged across the field reads. All fields are relaxed
// atomics, so a racing overwrite is a skipped slot, never a data race.
struct Slot {
  std::atomic<std::uint64_t> stamp{0};
  std::atomic<std::uint64_t> request_id{0};
  std::atomic<std::uint64_t> t_ns{0};
  std::atomic<std::uint64_t> detail{0};
  std::atomic<std::uint32_t> ev{0};
};

struct Recorder {
  Slot ring[kRingCapacity];
  std::atomic<std::uint64_t> head{0};  // total events ever claimed

  std::atomic<std::uint64_t> error_ids[kErrorRingCapacity];
  std::atomic<std::uint64_t> error_head{0};
};

Recorder& recorder() {
  static Recorder* r = new Recorder();  // leaked: outlives exiting threads
  return *r;
}

struct GatheredEvent {
  std::uint64_t order;  // claim index: recording order across threads
  std::uint64_t t_ns;
  std::uint64_t detail;
  std::uint32_t ev;
};

/// Consistent copy of one slot; false if the slot was empty or mid-write.
bool read_slot(const Slot& s, std::uint64_t* out_id, GatheredEvent* out) {
  const std::uint64_t before = s.stamp.load(std::memory_order_acquire);
  if (before == 0) return false;
  *out_id = s.request_id.load(std::memory_order_relaxed);
  out->t_ns = s.t_ns.load(std::memory_order_relaxed);
  out->detail = s.detail.load(std::memory_order_relaxed);
  out->ev = s.ev.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.stamp.load(std::memory_order_relaxed) != before) return false;
  out->order = before - 1;
  return true;
}

}  // namespace

void record(std::uint64_t request_id, Event ev, std::uint64_t detail) {
  if (!obs::enabled()) return;
  Recorder& r = recorder();
  const std::uint64_t idx = r.head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = r.ring[idx % kRingCapacity];
  // Invalidate first so readers never pair the new stamp with old fields.
  s.stamp.store(0, std::memory_order_release);
  s.request_id.store(request_id, std::memory_order_relaxed);
  s.t_ns.store(session_now_ns(), std::memory_order_relaxed);
  s.detail.store(detail, std::memory_order_relaxed);
  s.ev.store(static_cast<std::uint32_t>(ev), std::memory_order_relaxed);
  s.stamp.store(idx + 1, std::memory_order_release);

  if (is_error(ev)) {
    const std::uint64_t e =
        r.error_head.fetch_add(1, std::memory_order_relaxed);
    r.error_ids[e % kErrorRingCapacity].store(request_id,
                                              std::memory_order_release);
  }
}

std::uint64_t recorded() {
  return recorder().head.load(std::memory_order_relaxed);
}

std::string last_errors_json(std::size_t n) {
  Recorder& r = recorder();

  // Most recent distinct bad-outcome request ids, newest first.
  std::vector<std::uint64_t> ids;
  const std::uint64_t e_head = r.error_head.load(std::memory_order_acquire);
  const std::uint64_t e_span =
      std::min<std::uint64_t>(e_head, kErrorRingCapacity);
  for (std::uint64_t k = 0; k < e_span && ids.size() < n; ++k) {
    const std::uint64_t id =
        r.error_ids[(e_head - 1 - k) % kErrorRingCapacity].load(
            std::memory_order_acquire);
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
  }

  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::vector<GatheredEvent> events;
    for (const Slot& s : r.ring) {
      std::uint64_t id = 0;
      GatheredEvent ge;
      if (read_slot(s, &id, &ge) && id == ids[i]) events.push_back(ge);
    }
    std::sort(events.begin(), events.end(),
              [](const GatheredEvent& a, const GatheredEvent& b) {
                return a.order < b.order;
              });
    os << (i ? "," : "") << "{\"id\":" << ids[i] << ",\"events\":[";
    for (std::size_t k = 0; k < events.size(); ++k) {
      os << (k ? "," : "") << "{\"ev\":\""
         << to_string(static_cast<Event>(events[k].ev))
         << "\",\"t_ns\":" << events[k].t_ns
         << ",\"detail\":" << events[k].detail << '}';
    }
    os << "]}";
  }
  os << ']';
  return os.str();
}

void reset() {
  Recorder& r = recorder();
  for (Slot& s : r.ring) s.stamp.store(0, std::memory_order_release);
  r.head.store(0, std::memory_order_relaxed);
  r.error_head.store(0, std::memory_order_relaxed);
}

}  // namespace mlsim::obs::flight

#endif  // MLSIM_OBS_DISABLE
