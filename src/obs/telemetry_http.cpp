#include "obs/telemetry_http.h"

#ifdef MLSIM_OBS_DISABLE

// Endpoint-free build: no socket, no thread, no registry reference.
namespace mlsim::obs {

struct TelemetryServer::Impl {};
TelemetryServer::TelemetryServer() = default;
TelemetryServer::~TelemetryServer() = default;
bool TelemetryServer::start(TelemetryOptions) { return false; }
void TelemetryServer::stop() {}
std::uint16_t TelemetryServer::port() const { return 0; }

}  // namespace mlsim::obs

#else  // telemetry compiled in

#include <atomic>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"

namespace mlsim::obs {

namespace {

/// Accept-loop granularity: how quickly stop() takes effect.
constexpr int kAcceptTimeoutMs = 50;
/// Per-connection patience for the request head to arrive.
constexpr int kReadTimeoutMs = 1000;
/// Longest request head we accept; telemetry requests are one short line.
constexpr std::size_t kMaxRequestBytes = 4096;

struct Request {
  std::string method;
  std::string path;    // before any '?'
  std::string query;   // after '?', may be empty
  bool valid = false;
};

Request parse_request_head(const std::string& head) {
  Request r;
  const std::size_t eol = head.find("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return r;
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) return r;
  r.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return r;
  const std::size_t q = target.find('?');
  r.path = target.substr(0, q);
  if (q != std::string::npos) r.query = target.substr(q + 1);
  r.valid = true;
  return r;
}

/// Strict "last_errors=N" lookup; nullopt-style via `ok`. Absent key -> 0.
bool parse_last_errors(const std::string& query, std::size_t* out) {
  *out = 0;
  if (query.empty()) return true;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string kv = query.substr(pos, amp - pos);
    pos = amp + 1;
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) return false;
    if (kv.substr(0, eq) != "last_errors") continue;  // ignore unknown keys
    const std::string digits = kv.substr(eq + 1);
    if (digits.empty() || digits.size() > 6) return false;
    std::size_t v = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    *out = v;
  }
  return true;
}

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

struct TelemetryServer::Impl {
  net::TcpListener listener;
  TelemetryOptions opts;
  std::thread thread;
  std::atomic<bool> stopping{false};

  void serve() {
    while (!stopping.load(std::memory_order_relaxed)) {
      std::optional<net::TcpConn> conn;
      try {
        conn = listener.accept(kAcceptTimeoutMs);
      } catch (const IoError&) {
        continue;  // transient accept failure; keep serving
      }
      if (!conn) continue;
      try {
        handle(*conn);
      } catch (const IoError&) {
        // A dropped scrape is the client's problem, not the server's.
      }
    }
  }

  void handle(net::TcpConn& conn) {
    std::string head;
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.size() < kMaxRequestBytes) {
      if (!conn.readable(kReadTimeoutMs)) return;  // slow client: give up
      char buf[1024];
      const std::size_t n = conn.recv_some(buf, sizeof(buf));
      if (n == 0) break;  // EOF
      head.append(buf, n);
    }
    MLSIM_COUNTER_ADD(names::kTelemetryHttpRequests, 1);

    const Request req = parse_request_head(head);
    std::string response;
    if (!req.valid) {
      response = http_response(400, "Bad Request", "text/plain",
                               "malformed request\n");
    } else if (req.method != "GET") {
      response = http_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n");
    } else if (req.path == "/metrics") {
      std::ostringstream body;
      default_registry().write_prometheus(body);
      response = http_response(
          200, "OK", "text/plain; version=0.0.4; charset=utf-8", body.str());
    } else if (req.path == "/healthz") {
      std::size_t last_errors = 0;
      if (!parse_last_errors(req.query, &last_errors)) {
        response = http_response(400, "Bad Request", "text/plain",
                                 "bad last_errors value\n");
      } else if (opts.health) {
        response = http_response(200, "OK", "application/json",
                                 opts.health(last_errors));
      } else {
        std::string body = "{\"status\":\"ok\"";
        if (last_errors > 0) {
          body += ",\"last_errors\":" + flight::last_errors_json(last_errors);
        }
        body += "}";
        response = http_response(200, "OK", "application/json", body);
      }
    } else if (req.path == "/tracez") {
      std::ostringstream body;
      write_chrome_trace(body);
      response = http_response(200, "OK", "application/json", body.str());
    } else {
      response =
          http_response(404, "Not Found", "text/plain", "no such route\n");
    }
    if (response.compare(0, 10, "HTTP/1.0 2") != 0) {
      MLSIM_COUNTER_ADD(names::kTelemetryHttpErrors, 1);
    }
    conn.send_all(response.data(), response.size());
  }
};

TelemetryServer::TelemetryServer() = default;

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start(TelemetryOptions opts) {
  stop();
  auto impl = std::make_unique<Impl>();
  impl->listener = net::TcpListener::bind(opts.port);
  impl->opts = std::move(opts);
  impl->thread = std::thread([p = impl.get()] { p->serve(); });
  impl_ = std::move(impl);
  return true;
}

void TelemetryServer::stop() {
  if (!impl_) return;
  impl_->stopping.store(true, std::memory_order_relaxed);
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_.reset();
}

std::uint16_t TelemetryServer::port() const {
  return impl_ ? impl_->listener.port() : 0;
}

}  // namespace mlsim::obs

#endif  // MLSIM_OBS_DISABLE
