// Live telemetry endpoint (docs/OBSERVABILITY.md): a minimal poll-driven
// HTTP/1.0 server on the loopback interface serving
//
//   GET /metrics                 Prometheus text exposition of the default
//                                registry (Registry::write_prometheus)
//   GET /healthz[?last_errors=N] health JSON from the owning subsystem
//                                (service health_json / coordinator
//                                cluster_json), with the flight-recorder
//                                post-mortems of the N most recent
//                                bad-outcome requests appended
//   GET /tracez                  Chrome trace JSON snapshot of the span
//                                rings (write_chrome_trace)
//
// One background thread, one connection at a time, Connection: close — a
// scrape target, not a web server. Under MLSIM_OBS_DISABLE start() returns
// false and never opens a socket, so the disabled build is endpoint-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace mlsim::obs {

struct TelemetryOptions {
  /// Loopback port to bind (0 picks an ephemeral port, readable via
  /// TelemetryServer::port()).
  std::uint16_t port = 0;
  /// Produces the /healthz document; `last_errors` is the parsed
  /// ?last_errors=N query (0 when absent). When unset, /healthz serves a
  /// plain {"status":"ok"} plus the flight-recorder dump.
  std::function<std::string(std::size_t last_errors)> health;
};

class TelemetryServer {
 public:
  TelemetryServer();
  ~TelemetryServer();  // joins the serving thread
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind and serve on a background thread. Returns false when obs is
  /// compiled out (MLSIM_OBS_DISABLE); throws IoError when the bind fails.
  bool start(TelemetryOptions opts);

  /// Stop serving and join the thread. Idempotent.
  void stop();

  /// Bound port while running, 0 otherwise.
  std::uint16_t port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mlsim::obs
