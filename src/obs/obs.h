// Observability front door: runtime enable flag, RAII tracing spans, and
// metric macros. See docs/OBSERVABILITY.md for the user guide.
//
// Cost contract:
//   - compiled out:   define MLSIM_OBS_DISABLE (CMake -DMLSIM_OBS_DISABLE=ON)
//                     and every macro below expands to a no-op — macro
//                     arguments are *not evaluated*;
//   - runtime off:    (the default) each call site costs one relaxed atomic
//                     load and a predictable branch;
//   - runtime on:     spans cost two steady_clock reads + one ring-buffer
//                     store; metric updates are single relaxed atomics.
//
// Span and metric names must be string literals (or otherwise outlive the
// process) — they are stored by pointer.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metric_names.h"
#include "obs/registry.h"
#include "obs/trace_event.h"

namespace mlsim::obs {

#ifdef MLSIM_OBS_DISABLE
inline constexpr bool kCompiledIn = false;
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
inline constexpr bool kCompiledIn = true;
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
/// Enable/disable recording globally. Enabling for the first time pins the
/// trace session clock; call `reset_trace()` for a fresh timeline.
void set_enabled(bool on);
#endif

/// RAII span: records a complete trace event over its lifetime. Use through
/// MLSIM_TRACE_SPAN rather than directly.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!enabled()) return;  // single branch when observability is off
    name_ = name;
    start_ns_ = session_now_ns();
    depth_ = thread_span_depth()++;
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    --thread_span_depth();
    record_complete_event(name_, start_ns_, session_now_ns() - start_ns_, depth_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// RAII timer recording its lifetime (ns) into a histogram.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(Histogram& h) {
    if (!enabled()) return;
    h_ = &h;
    start_ns_ = session_now_ns();
  }
  ~ScopedHistTimer() {
    if (h_ != nullptr) {
      h_->record(static_cast<double>(session_now_ns() - start_ns_));
    }
  }
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  Histogram* h_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace mlsim::obs

#define MLSIM_OBS_CONCAT_(a, b) a##b
#define MLSIM_OBS_CONCAT(a, b) MLSIM_OBS_CONCAT_(a, b)

#ifndef MLSIM_OBS_DISABLE

/// Scoped span covering the rest of the enclosing block.
#define MLSIM_TRACE_SPAN(name) \
  ::mlsim::obs::ScopedSpan MLSIM_OBS_CONCAT(mlsim_obs_span_, __LINE__)(name)

// Metric macros cache the registry handle in a function-local static, so the
// per-call cost is the enabled() branch plus one relaxed atomic.
#define MLSIM_COUNTER_ADD(name, delta)                      \
  do {                                                      \
    if (::mlsim::obs::enabled()) {                          \
      static ::mlsim::obs::Counter& mlsim_obs_handle =      \
          ::mlsim::obs::default_registry().counter(name);   \
      mlsim_obs_handle.add(delta);                          \
    }                                                       \
  } while (0)

#define MLSIM_GAUGE_SET(name, value)                        \
  do {                                                      \
    if (::mlsim::obs::enabled()) {                          \
      static ::mlsim::obs::Gauge& mlsim_obs_handle =        \
          ::mlsim::obs::default_registry().gauge(name);     \
      mlsim_obs_handle.set(value);                          \
    }                                                       \
  } while (0)

#define MLSIM_GAUGE_ADD(name, delta)                        \
  do {                                                      \
    if (::mlsim::obs::enabled()) {                          \
      static ::mlsim::obs::Gauge& mlsim_obs_handle =        \
          ::mlsim::obs::default_registry().gauge(name);     \
      mlsim_obs_handle.add(delta);                          \
    }                                                       \
  } while (0)

#define MLSIM_HIST_RECORD(name, value)                      \
  do {                                                      \
    if (::mlsim::obs::enabled()) {                          \
      static ::mlsim::obs::Histogram& mlsim_obs_handle =    \
          ::mlsim::obs::default_registry().histogram(name); \
      mlsim_obs_handle.record(value);                       \
    }                                                       \
  } while (0)

/// Scoped timer recording the rest of the enclosing block into `name`.
#define MLSIM_HIST_TIMER(name)                                            \
  static ::mlsim::obs::Histogram& MLSIM_OBS_CONCAT(mlsim_obs_hist_,       \
                                                   __LINE__) =            \
      ::mlsim::obs::default_registry().histogram(name);                   \
  ::mlsim::obs::ScopedHistTimer MLSIM_OBS_CONCAT(mlsim_obs_timer_,        \
                                                 __LINE__)(               \
      MLSIM_OBS_CONCAT(mlsim_obs_hist_, __LINE__))

#else  // MLSIM_OBS_DISABLE: every call site compiles to nothing.

#define MLSIM_TRACE_SPAN(name) ((void)0)
#define MLSIM_COUNTER_ADD(name, delta) ((void)0)
#define MLSIM_GAUGE_SET(name, value) ((void)0)
#define MLSIM_GAUGE_ADD(name, delta) ((void)0)
#define MLSIM_HIST_RECORD(name, value) ((void)0)
#define MLSIM_HIST_TIMER(name) ((void)0)

#endif  // MLSIM_OBS_DISABLE
