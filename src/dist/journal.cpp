#include "dist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/wire.h"
#include "obs/metric_names.h"
#include "obs/obs.h"

namespace mlsim::dist {

namespace {

// Record kinds. Part of the on-disk format — append only.
constexpr std::uint32_t kRecRunOpen = 1;
constexpr std::uint32_t kRecAssign = 2;
constexpr std::uint32_t kRecResult = 3;
constexpr std::uint32_t kRecRunClose = 4;

std::string journal_errno(const char* op, const std::filesystem::path& path) {
  return std::string("journal ") + op + " failed for " + path.string() + ": " +
         std::strerror(errno);
}

}  // namespace

RunJournal::~RunJournal() { close(); }

void RunJournal::open(const std::filesystem::path& path) {
  close();
  // O_APPEND keeps every record write atomic w.r.t. the file offset; there
  // is exactly one writer, but a crashed predecessor's tail may precede us.
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) throw IoError(journal_errno("open", path));
  fd_ = fd;
  path_ = path;
}

void RunJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void RunJournal::append(std::uint32_t kind, std::string_view body) {
  check(enabled(), "journal append before open");
  wire::Writer w;
  w.pod(kind);
  std::string payload = w.take();
  payload.append(body);
  const std::string record = wire::seal(kJournalMagic, payload);
  std::size_t off = 0;
  while (off < record.size()) {
    const ssize_t n = ::write(fd_, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(journal_errno("write", path_));
    }
    off += static_cast<std::size_t>(n);
  }
  // The fsync is the durability point: callers act on the journaled event
  // (dispatch the shard, count the result done) only after this returns.
  if (::fsync(fd_) != 0) throw IoError(journal_errno("fsync", path_));
  MLSIM_COUNTER_ADD(obs::names::kDistJournalRecords, 1);
  MLSIM_COUNTER_ADD(obs::names::kDistJournalBytes,
                    static_cast<std::uint64_t>(record.size()));
}

void RunJournal::run_open(std::uint64_t session, std::uint64_t fingerprint,
                          std::uint64_t num_shards, const RunConfig& cfg) {
  wire::Writer w;
  w.pod(session);
  w.pod(fingerprint);
  w.pod(num_shards);
  put_run_config(w, cfg);
  append(kRecRunOpen, w.take());
}

void RunJournal::assign(std::uint64_t session, std::uint64_t shard,
                        std::uint32_t attempt) {
  wire::Writer w;
  w.pod(session);
  w.pod(shard);
  w.pod(attempt);
  append(kRecAssign, w.take());
}

void RunJournal::result(std::uint64_t session, std::string_view result_frame) {
  wire::Writer w;
  w.pod(session);
  w.str(std::string(result_frame));
  append(kRecResult, w.take());
}

void RunJournal::run_close(std::uint64_t session, std::uint32_t status) {
  wire::Writer w;
  w.pod(session);
  w.pod(status);
  append(kRecRunClose, w.take());
}

JournalReplay RunJournal::replay(const std::filesystem::path& path,
                                 bool strict) {
  JournalReplay out;
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return out;  // missing journal: nothing to resume
  std::string data((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();

  const std::string context = "run journal " + path.string();
  std::size_t off = 0;
  std::string bad_tail;  // first corruption reason, empty while clean
  while (off < data.size() && bad_tail.empty()) {
    // Envelope: magic(4) version(4) checksum(8) size(8) payload. The size
    // field at offset 16 walks the concatenated records; unseal verifies
    // magic + checksum over the full candidate slice.
    if (data.size() - off < wire::kEnvelopeBytes) {
      bad_tail = "torn envelope header";
      break;
    }
    std::uint64_t size = 0;
    std::memcpy(&size, data.data() + off + 16, sizeof(size));
    if (size > kMaxJournalRecord) {
      bad_tail = "implausible record size " + std::to_string(size);
      break;
    }
    if (data.size() - off < wire::kEnvelopeBytes + size) {
      bad_tail = "torn record payload";
      break;
    }
    const std::string_view record(data.data() + off,
                                  wire::kEnvelopeBytes + size);
    try {
      const std::string_view payload =
          wire::unseal(kJournalMagic, record, context);
      wire::Reader r(payload, context);
      const auto kind = r.pod<std::uint32_t>();
      switch (kind) {
        case kRecRunOpen: {
          // A later run-open supersedes everything before it: each section
          // re-journals the results it inherited, so the last section is
          // self-contained.
          out.open_run = true;
          out.close_status = 0;
          out.session = r.pod<std::uint64_t>();
          out.fingerprint = r.pod<std::uint64_t>();
          out.num_shards = r.pod<std::uint64_t>();
          out.config = get_run_config(r);
          out.results.clear();
          out.duplicates = 0;
          break;
        }
        case kRecAssign: {
          (void)r.pod<std::uint64_t>();  // session
          (void)r.pod<std::uint64_t>();  // shard
          (void)r.pod<std::uint32_t>();  // attempt
          break;
        }
        case kRecResult: {
          const auto session = r.pod<std::uint64_t>();
          const std::string frame = r.str();
          ResultDecoded d = decode_result(frame, context);
          if (session == out.session) {
            const auto [it, inserted] =
                out.results.emplace(d.header.shard, std::move(d.outcome));
            (void)it;
            if (inserted) {
              MLSIM_COUNTER_ADD(obs::names::kDistJournalReplayedResults, 1);
            } else {
              ++out.duplicates;
            }
          }
          break;
        }
        case kRecRunClose: {
          (void)r.pod<std::uint64_t>();  // session
          out.close_status = r.pod<std::uint32_t>();
          out.open_run = false;
          break;
        }
        default:
          // A kind this build doesn't know is indistinguishable from
          // garbage that passed the checksum by construction of a newer
          // writer — treat as tail, same as corruption.
          throw CheckError("unknown journal record kind " +
                           std::to_string(kind) + " in " + context);
      }
      r.finish();
    } catch (const CheckError& e) {
      bad_tail = e.what();
      break;
    }
    out.found = true;
    ++out.records;
    off += record.size();
  }

  if (!bad_tail.empty()) {
    const std::size_t dropped = data.size() - off;
    if (strict) {
      throw CheckError(context + ": corrupt record at byte " +
                       std::to_string(off) + " (" + bad_tail + "), " +
                       std::to_string(dropped) +
                       " tail bytes (strict journal mode)");
    }
    out.dropped_bytes = dropped;
    MLSIM_COUNTER_ADD(obs::names::kDistJournalDroppedBytes,
                      static_cast<std::uint64_t>(dropped));
  }
  return out;
}

}  // namespace mlsim::dist
