// Content-addressed shard-result cache (docs/DISTRIBUTED.md "Result
// cache").
//
// Shard outcomes are pure functions of (trace, options, shard) — exactly
// what core::run_fingerprint hashes plus the shard descriptor — so a
// completed outcome can be memoized and served to any later run with the
// same address: a retried run after a coordinator error, a resubmitted
// service request, or a sweep re-running the same workload. The cache is
// bounded (LRU eviction) and lives coordinator-side only; nothing about it
// is visible on the wire, and a served outcome is byte-identical to a
// recomputed one, so the merged CPI stays bit-identical to the in-process
// engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <tuple>
#include <utility>

#include "core/shard.h"

namespace mlsim::dist {

class ShardResultCache {
 public:
  /// Full content address of one shard outcome. The fingerprint already
  /// determines the ShardPlan (it hashes trace + options + parts), but the
  /// descriptor fields are kept in the key so a hash collision across
  /// differently-shaped runs can never serve a mis-sized outcome.
  struct Key {
    std::uint64_t fingerprint = 0;
    std::uint64_t shard = 0;
    std::uint64_t part_lo = 0;
    std::uint64_t part_hi = 0;
  };

  /// `max_entries == 0` disables the cache: lookups miss (uncounted) and
  /// inserts are dropped.
  explicit ShardResultCache(std::size_t max_entries)
      : max_entries_(max_entries) {}

  bool enabled() const { return max_entries_ > 0; }

  /// Returns the cached outcome (valid until the next insert) and bumps the
  /// entry to most-recently-used, or nullptr on a miss. Counts hit/miss.
  const core::ShardOutcome* lookup(const Key& k);

  /// Memoize one completed outcome, evicting the least-recently-used entry
  /// when full. Inserting an existing key refreshes its payload and recency.
  void insert(const Key& k, core::ShardOutcome outcome);

  std::size_t entries() const { return lru_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  using KeyTuple =
      std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>;
  static KeyTuple as_tuple(const Key& k) {
    return {k.fingerprint, k.shard, k.part_lo, k.part_hi};
  }

  std::size_t max_entries_;
  /// Front = most recently used.
  std::list<std::pair<KeyTuple, core::ShardOutcome>> lru_;
  std::map<KeyTuple, decltype(lru_)::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mlsim::dist
