#include "dist/worker.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "common/check.h"
#include "core/analytic_predictor.h"
#include "dist/protocol.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/obs.h"

namespace mlsim::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-connection telemetry the worker piggybacks on v2 heartbeats: the
/// busy/wall ratio since the previous heartbeat (pure clock math — works
/// with obs disabled) and deltas of the kRollupCounters registry values.
struct WorkerTelemetry {
  Clock::time_point last_heartbeat = Clock::now();
  std::uint64_t busy_ns = 0;  // time inside run_partition since last_heartbeat
  std::uint64_t last_value[kNumRollupCounters] = {};

  HeartbeatMsg make(std::uint64_t session, std::uint64_t shard) {
    HeartbeatMsg hb;
    hb.session = session;
    hb.shard = shard;
    const Clock::time_point now = Clock::now();
    const auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             last_heartbeat)
            .count());
    hb.busy_ratio =
        wall_ns > 0 ? std::min(1.0, static_cast<double>(busy_ns) /
                                        static_cast<double>(wall_ns))
                    : 0.0;
    last_heartbeat = now;
    busy_ns = 0;
    if (obs::enabled()) {
      for (std::uint32_t i = 0; i < kNumRollupCounters; ++i) {
        const std::uint64_t v =
            obs::default_registry().counter(kRollupCounters[i].local).value();
        if (v > last_value[i]) {
          hb.rollups.push_back(RollupDelta{i, v - last_value[i]});
        }
        last_value[i] = v;
      }
    }
    return hb;
  }
};

/// Everything a Welcome establishes. Heap-allocated so the options'
/// injector pointer stays stable for the session's lifetime.
struct Session {
  std::uint64_t id = 0;
  trace::EncodedTrace trace;
  device::FaultInjector injector;
  core::AnalyticPredictor predictor;
  core::AnalyticPredictor fallback;
  core::ParallelSimOptions opts;
  core::ShardPlan plan;
  std::uint64_t fingerprint = 0;
};

std::unique_ptr<Session> open_session(const WelcomeDecoded& w) {
  auto s = std::make_unique<Session>();
  s->id = w.session;
  s->trace = w.trace;
  s->injector = device::FaultInjector(w.config.fault_options());
  s->opts = w.config.to_options(
      w.config.faults_enabled ? &s->injector : nullptr);
  s->opts.fallback = &s->fallback;
  s->plan = core::ShardPlan::make(s->trace.size(), s->opts);
  s->fingerprint = core::run_fingerprint(s->trace, s->opts, s->plan.parts);
  return s;
}

/// Bounded exponential backoff with deterministic jitter: attempt a waits
/// min(10·2^a, 500) ms plus a splitmix64((port, attempt)) jitter of up to
/// half the base. No global RNG, so retry schedules are reproducible.
std::chrono::milliseconds backoff_delay(const WorkerConfig& cfg, int attempt) {
  const std::uint64_t base =
      std::min<std::uint64_t>(500, 10ull << std::min(attempt, 16));
  std::uint64_t z = (static_cast<std::uint64_t>(cfg.port) << 32) ^
                    static_cast<std::uint64_t>(attempt);
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return std::chrono::milliseconds(base + z % (base / 2 + 1));
}

net::TcpConn connect_with_retry(const WorkerConfig& cfg) {
  for (int a = 0;; ++a) {
    try {
      return net::TcpConn::connect(cfg.host, cfg.port);
    } catch (const IoError&) {
      if (a + 1 >= cfg.reconnect_budget) {
        throw IoError("worker reconnect budget exhausted after " +
                      std::to_string(cfg.reconnect_budget) + " attempts to " +
                      cfg.host + ":" + std::to_string(cfg.port));
      }
      std::this_thread::sleep_for(backoff_delay(cfg, a));
    }
  }
}

}  // namespace

WorkerStats run_worker(const WorkerConfig& cfg) {
  WorkerStats stats;
  // Cross-connection re-attach state (protocol v4). `token` is the rejoin
  // token from the last Welcome (0 = no session, or a pre-v4 coordinator);
  // `inflight_shard` is the assignment held when a connection breaks; a
  // finished-but-unacknowledged outcome waits in `pending` for re-delivery
  // under the next Welcome of the same run.
  std::uint64_t token = 0;
  std::uint64_t last_session = 0;
  std::uint64_t inflight_shard = kIdleShard;
  struct PendingResult {
    std::uint64_t fingerprint = 0;
    std::uint64_t shard = 0;
    std::uint32_t attempt = 0;
    core::ShardOutcome outcome;
  };
  std::optional<PendingResult> pending;
  bool fresh_hello = true;
  for (;;) {
    net::TcpConn conn = connect_with_retry(cfg);
    try {
      if (fresh_hello || token == 0) {
        net::send_frame(conn, encode_hello(kProtocolVersion));
      } else {
        // Re-attach: present the session token and the in-flight shard.
        // The coordinator answers with a fresh Welcome (token match) or
        // treats us as a plain joiner (restarted into different work).
        net::send_frame(conn, encode_rejoin({kProtocolVersion, token,
                                             last_session, inflight_shard}));
        ++stats.rejoins;
      }
      fresh_hello = false;
      std::unique_ptr<Session> session;
      WorkerTelemetry telemetry;
      std::string payload;
      bool restart_fresh = false;
      for (;;) {
        // Heartbeat while idle so the coordinator can tell "slow" from
        // "dead".
        while (!conn.readable(cfg.heartbeat_ms)) {
          net::send_frame(conn, encode_heartbeat(telemetry.make(
                                    session ? session->id : 0, kIdleShard)));
        }
        if (!net::recv_frame(conn, payload)) {
          // Clean EOF. Pre-v4 semantics (no token): the coordinator is
          // done with us. With a live session: transport loss — rejoin.
          if (token == 0) return stats;
          throw IoError("coordinator closed the connection mid-session");
        }
        switch (peek_type(payload, conn.peer())) {
          case MsgType::kReject:
            throw CheckError("coordinator rejected worker: " +
                             decode_reject(payload, conn.peer()));
          case MsgType::kWelcome: {
            const WelcomeDecoded w = decode_welcome(payload, conn.peer());
            session = open_session(w);
            ++stats.sessions;
            if (session->fingerprint != w.fingerprint) {
              net::send_frame(
                  conn, encode_worker_error(
                            {session->id, kIdleShard, /*kind=*/1,
                             "fingerprint mismatch: worker reconstructed a "
                             "different run than the coordinator announced"}));
              session.reset();
              break;
            }
            token = w.token;
            last_session = w.session;
            inflight_shard = kIdleShard;
            if (pending.has_value() &&
                pending->fingerprint == session->fingerprint) {
              // The connection died between computing a shard and the
              // coordinator accepting it: re-deliver under the new session
              // id (dedup makes a double delivery harmless). Reset only
              // after the send — a throw here re-delivers on the next
              // rejoin instead of losing the outcome.
              net::send_frame(
                  conn, encode_result({session->id, pending->shard,
                                       pending->attempt},
                                      pending->outcome));
            }
            pending.reset();
            break;
          }
          case MsgType::kShutdown:
            return stats;
          case MsgType::kAssign: {
            const AssignMsg a = decode_assign(payload, conn.peer());
            if (session == nullptr || a.session != session->id) {
              break;  // stale
            }
            Session& s = *session;
            if (s.opts.faults != nullptr &&
                s.opts.faults->worker_killed(a.shard, a.attempt)) {
              // Simulated process death mid-shard: vanish without a Result.
              ++stats.kills_simulated;
              conn.abort();
              if (!cfg.reconnect_after_kill) return stats;  // stay dead
              restart_fresh = true;
              break;
            }
            inflight_shard = a.shard;
            try {
              // Record this shard's spans under the propagated trace
              // context so the coordinator's merged Chrome trace shows one
              // trace_id across every process (docs/OBSERVABILITY.md).
              const bool tracing = obs::enabled() && a.trace_id != 0;
              if (tracing) obs::set_trace_context(a.trace_id, a.parent_span);
              const std::uint64_t shard_t0 = obs::session_now_ns();
              core::ShardEngine engine(s.predictor, s.trace, s.opts, s.plan);
              for (std::size_t p = a.part_lo; p < a.part_hi; ++p) {
                const Clock::time_point t0 = Clock::now();
                {
                  MLSIM_TRACE_SPAN("worker/partition");
                  engine.run_partition(p);
                }
                telemetry.busy_ns += static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - t0)
                        .count());
                net::send_frame(
                    conn, encode_heartbeat(telemetry.make(s.id, a.shard)));
              }
              std::vector<obs::SpanRecord> spans;
              if (tracing) {
                obs::record_complete_event("worker/shard", shard_t0,
                                           obs::session_now_ns() - shard_t0,
                                           0);
                // Only spans from this assignment window: an in-process
                // worker shares the ring with its host, and a long-lived
                // process accumulates spans across shards.
                spans = obs::snapshot_spans();
                std::erase_if(spans, [shard_t0](const obs::SpanRecord& sp) {
                  return sp.ts_ns < shard_t0;
                });
              }
              // Stash the outcome before sending: if the send (or the
              // connection right after it) fails, the rejoin path
              // re-delivers instead of recomputing.
              pending = PendingResult{s.fingerprint, a.shard, a.attempt,
                                      engine.block_outcome(a.part_lo,
                                                           a.part_hi)};
              net::send_frame(
                  conn, encode_result({s.id, a.shard, a.attempt},
                                      pending->outcome,
                                      tracing ? a.trace_id : 0, spans));
              pending.reset();
              inflight_shard = kIdleShard;
              ++stats.shards_computed;
              if (cfg.leave_after_shards > 0 &&
                  stats.shards_computed >= cfg.leave_after_shards) {
                // Planned departure: the Result above already drained, so
                // leave idle — the coordinator marks us departed, not lost.
                net::send_frame(conn, encode_goodbye({s.id, kIdleShard}));
                return stats;
              }
            } catch (const CheckError& e) {
              // Deterministic content failure: rerunning the shard
              // anywhere reproduces it, so the coordinator must fail the
              // run.
              inflight_shard = kIdleShard;
              net::send_frame(
                  conn,
                  encode_worker_error({s.id, a.shard, /*kind=*/1, e.what()}));
            }
            break;
          }
          default:
            throw CheckError("unexpected message from coordinator " +
                             conn.peer());
        }
        if (restart_fresh) break;
      }
      // Simulated kill with reconnect: come back as a brand-new worker —
      // the supervisor-restart model the kill tests rely on.
      token = 0;
      last_session = 0;
      inflight_shard = kIdleShard;
      pending.reset();
      fresh_hello = true;
    } catch (const IoError&) {
      // Transport loss. Without a session there is nothing to re-attach —
      // propagate (this also passes through the typed budget-exhaustion
      // error from connect_with_retry, which throws outside this block).
      if (token == 0) throw;
    }
  }
}

}  // namespace mlsim::dist
