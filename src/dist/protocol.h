// Message schema of the coordinator/worker cluster (docs/DISTRIBUTED.md).
//
// Every message is one RPC frame (net/frame.h) whose payload starts with a
// u32 message type followed by the Writer-serialized body. The shard
// lifecycle:
//
//   worker            coordinator
//   Hello       ->                   protocol handshake
//               <-  Welcome          session + run config + full trace
//               <-  Reject           (version mismatch: reason, then close)
//               <-  Assign           shard + partition range + attempt
//   Heartbeat   ->                   liveness while computing / idle
//   Result      ->                   serialized ShardOutcome
//   WorkerError ->                   typed failure (transport vs content)
//   Goodbye     ->                   planned departure: requeue my shard now
//               <-  Shutdown         run over, drain and exit
//
// Results are deterministic in (trace, options, shard) — never in which
// worker or attempt computed them — so the coordinator accepts the first
// Result per shard and drops duplicates and late deliveries idempotently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/wire.h"
#include "core/shard.h"
#include "device/fault.h"
#include "obs/metric_names.h"
#include "obs/trace_event.h"
#include "trace/trace.h"

namespace mlsim::dist {

/// Protocol (message schema) version; distinct from wire::kWireVersion,
/// which covers only the envelope layout. A coordinator Rejects workers
/// that Hello with a version outside [kMinProtocolVersion,
/// kProtocolVersion] and speaks each worker's own version back to it.
///
/// v2 (docs/OBSERVABILITY.md): Assign carries the distributed trace
/// context, Result piggybacks the worker's span buffer, Heartbeat adds
/// busy_ratio and cluster-rollup counter deltas. Every v2 addition is a
/// trailing optional field, so v2 decoders accept v1 payloads untouched.
///
/// v3 (docs/DISTRIBUTED.md "Elasticity & churn"): adds the Goodbye message
/// — a worker announcing a planned departure so the coordinator requeues
/// its shard immediately instead of burning the heartbeat timeout. No
/// existing message gains fields, so v1/v2 payloads stay byte-exact; pre-v3
/// workers simply never say Goodbye and depart via the timeout path.
///
/// v4 (docs/DISTRIBUTED.md "Crash-safe coordination"): Welcome gains a
/// trailing session token, and Rejoin is a Hello variant carrying that
/// token plus the worker's in-flight shard. A worker whose connection
/// drops mid-shard reconnects — possibly to a *restarted* coordinator —
/// presents the token, and either re-delivers its finished Result or
/// resumes the assignment. The token addition is a trailing optional
/// field, so v1–v3 Welcome payloads stay byte-exact; pre-v4 workers fall
/// back to a plain re-Hello and are treated as fresh joiners.
inline constexpr std::uint32_t kProtocolVersion = 4;
inline constexpr std::uint32_t kMinProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  kHello = 1,
  kWelcome = 2,
  kReject = 3,
  kAssign = 4,
  kResult = 5,
  kHeartbeat = 6,
  kShutdown = 7,
  kWorkerError = 8,
  kGoodbye = 9,
  kRejoin = 10,
};

/// The ParallelSimOptions subset that determines shard *contents* (integer
/// outcomes), shipped verbatim to every worker. The cost model is absent on
/// purpose: it only shapes the modeled wall-clock, which the coordinator
/// computes after the merge.
struct RunConfig {
  std::uint64_t num_subtraces = 0;
  std::uint64_t num_gpus = 0;
  std::uint64_t context_length = 0;
  std::uint64_t warmup = 0;
  std::uint8_t post_error_correction = 0;
  std::uint64_t correction_limit = 0;
  std::uint8_t record_predictions = 0;
  std::uint8_t record_context_counts = 0;
  std::uint32_t anomaly_latency_limit = 0;
  std::uint64_t max_retries_per_partition = 0;
  double retry_backoff_us = 0.0;
  std::uint8_t faults_enabled = 0;
  std::uint64_t fault_seed = 0;
  double device_kill_rate = 0.0;
  double straggler_rate = 0.0;
  double straggler_slowdown = 4.0;
  double output_corrupt_rate = 0.0;
  double worker_kill_rate = 0.0;

  static RunConfig from_options(const core::ParallelSimOptions& o);
  /// Reconstruct engine-affecting options. `faults` must outlive the result
  /// (pass nullptr when faults_enabled is 0).
  core::ParallelSimOptions to_options(
      const device::FaultInjector* faults) const;
  device::FaultOptions fault_options() const;
};

struct AssignMsg {
  std::uint64_t session = 0;
  std::uint64_t shard = 0;
  std::uint64_t part_lo = 0;
  std::uint64_t part_hi = 0;
  std::uint32_t attempt = 0;
  // v2: distributed trace context the worker records its spans under
  // (0 = none; see obs::set_trace_context).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

struct ResultHeader {
  std::uint64_t session = 0;
  std::uint64_t shard = 0;
  std::uint32_t attempt = 0;
};

/// One worker-local counter delta piggybacked on a v2 heartbeat; `id`
/// indexes kRollupCounters.
struct RollupDelta {
  std::uint32_t id = 0;
  std::uint64_t delta = 0;
};

struct HeartbeatMsg {
  std::uint64_t session = 0;
  /// Shard being computed, or kIdleShard between assignments.
  std::uint64_t shard = 0;
  // v2: fraction of wall time spent inside run_partition since the previous
  // heartbeat, in [0, 1]; negative = not reported (v1 worker, or first
  // heartbeat). Folded into the cluster.worker.busy_ratio gauge.
  double busy_ratio = -1.0;
  std::vector<RollupDelta> rollups;
};
inline constexpr std::uint64_t kIdleShard = ~0ull;

/// Worker-local counters shipped as heartbeat deltas and folded into the
/// coordinator's cluster-rollup metrics. The wire carries positional ids,
/// so the table order is part of protocol v2 — append only.
struct RollupCounter {
  const char* local;    // worker-side registry name
  const char* cluster;  // coordinator-side rollup name
};
inline constexpr RollupCounter kRollupCounters[] = {
    {obs::names::kParSimInstructions, obs::names::kClusterWorkerInstructions},
    {obs::names::kParSimPartitionsDone,
     obs::names::kClusterWorkerPartitionsDone},
    {obs::names::kParSimRetries, obs::names::kClusterWorkerRetries},
    {obs::names::kParSimAnomalies, obs::names::kClusterWorkerAnomalies},
    {obs::names::kParSimDegradedPartitions,
     obs::names::kClusterWorkerDegraded},
};
inline constexpr std::uint32_t kNumRollupCounters =
    sizeof(kRollupCounters) / sizeof(kRollupCounters[0]);

struct WorkerErrorMsg {
  std::uint64_t session = 0;
  std::uint64_t shard = 0;
  /// 0 = transport (IoError: retryable elsewhere), 1 = content (CheckError:
  /// deterministic, rerunning anywhere reproduces it — the run must fail).
  std::uint32_t kind = 0;
  std::string what;
};

/// v3: planned departure (drain, scale-down, supervisor restart). The
/// coordinator requeues the announced in-flight shard at once — no
/// heartbeat-timeout wait — and the connection closes after this frame.
struct GoodbyeMsg {
  std::uint64_t session = 0;
  /// Shard the worker abandons, or kIdleShard when it departs idle.
  std::uint64_t shard = 0;
};

/// v4: the reconnect handshake. Sent *instead of* Hello by a worker that
/// already held a session: `token` proves it belonged to this run (the
/// token is derived from the run fingerprint, so it survives a coordinator
/// restart), `shard` names the assignment it still holds (kIdleShard when
/// none). A matching token re-admits the worker and re-dispatches its
/// in-flight shard immediately; a stale token demotes it to a fresh join.
struct RejoinMsg {
  std::uint32_t version = 0;
  std::uint64_t token = 0;
  /// Session id of the run the worker was attached to.
  std::uint64_t session = 0;
  /// In-flight shard at disconnect, or kIdleShard.
  std::uint64_t shard = kIdleShard;
};

/// First u32 of a payload. Throws CheckError on an empty/unknown payload.
MsgType peek_type(std::string_view payload, const std::string& context);

/// RunConfig body codec, shared by the Welcome message and the run journal
/// (dist/journal.*) so a journaled run-open replays with the exact wire
/// semantics of the handshake.
void put_run_config(wire::Writer& w, const RunConfig& c);
RunConfig get_run_config(wire::Reader& r);

// ---- encoders ---------------------------------------------------------------
std::string encode_hello(std::uint32_t protocol_version);
/// v4 appends `token` as a trailing optional field; passing
/// `protocol_version` <= 3 reproduces the pre-v4 payload byte-exactly for
/// workers whose strict decoders reject trailing bytes.
std::string encode_welcome(std::uint64_t session, std::uint64_t fingerprint,
                           const RunConfig& cfg,
                           const trace::EncodedTrace& trace,
                           std::uint64_t token = 0,
                           std::uint32_t protocol_version = kProtocolVersion);
std::string encode_rejoin(const RejoinMsg& m);
std::string encode_reject(const std::string& reason);
/// `protocol_version` selects the schema the *peer* speaks: a v2
/// coordinator keeps sending byte-exact v1 payloads to v1 workers (whose
/// strict decoders reject trailing bytes).
std::string encode_assign(const AssignMsg& m,
                          std::uint32_t protocol_version = kProtocolVersion);
/// v2 appends trace_id and the worker's span buffer after the outcome.
std::string encode_result(const ResultHeader& h, const core::ShardOutcome& o,
                          std::uint64_t trace_id = 0,
                          const std::vector<obs::SpanRecord>& spans = {});
std::string encode_heartbeat(const HeartbeatMsg& m,
                             std::uint32_t protocol_version =
                                 kProtocolVersion);
std::string encode_shutdown();
std::string encode_worker_error(const WorkerErrorMsg& m);
std::string encode_goodbye(const GoodbyeMsg& m);

// ---- decoders (payload includes the leading type word) ----------------------
std::uint32_t decode_hello(std::string_view payload,
                           const std::string& context);
struct WelcomeDecoded {
  std::uint64_t session = 0;
  std::uint64_t fingerprint = 0;
  RunConfig config;
  trace::EncodedTrace trace;
  // v4 trailing session token; 0 when a pre-v4 coordinator sent the
  // welcome (0 is never issued, so workers treat it as "no rejoin").
  std::uint64_t token = 0;
};
WelcomeDecoded decode_welcome(std::string_view payload,
                              const std::string& context);
std::string decode_reject(std::string_view payload, const std::string& context);
AssignMsg decode_assign(std::string_view payload, const std::string& context);
struct ResultDecoded {
  ResultHeader header;
  core::ShardOutcome outcome;
  // v2 trailing fields; zero/empty when a v1 worker sent the result.
  std::uint64_t trace_id = 0;
  std::vector<obs::SpanRecord> spans;
};
ResultDecoded decode_result(std::string_view payload,
                            const std::string& context);
HeartbeatMsg decode_heartbeat(std::string_view payload,
                              const std::string& context);
WorkerErrorMsg decode_worker_error(std::string_view payload,
                                   const std::string& context);
GoodbyeMsg decode_goodbye(std::string_view payload,
                          const std::string& context);
RejoinMsg decode_rejoin(std::string_view payload, const std::string& context);

}  // namespace mlsim::dist
