// Worker side of the distributed cluster (docs/DISTRIBUTED.md).
//
// A worker is one process: it connects to the coordinator, handshakes
// (Hello → Welcome, which ships the run config and the full trace), then
// loops computing assigned shards with a fresh ShardEngine per assignment
// and streaming heartbeats between partitions. Shard computation uses the
// analytic predictor — the deterministic engine both sides share — so a
// shard's outcome bytes are identical no matter which worker (or the
// in-process engine) computes them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mlsim::dist {

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Idle/progress heartbeat cadence.
  int heartbeat_ms = 200;
  /// After a simulated worker kill (FaultOptions::worker_kill_rate), rejoin
  /// the cluster as a fresh worker — models a supervisor restarting the
  /// process. When false the worker stays dead, as a real SIGKILL would.
  bool reconnect_after_kill = true;
  /// Connection attempts per (re)connect before giving up with a typed
  /// IoError. Attempt a sleeps min(10·2^a, 500) ms plus a deterministic
  /// jitter drawn from (port, attempt) — bounded exponential backoff that
  /// covers coordinator startup/restart races without a tight retry loop,
  /// reproducibly (no global RNG).
  int reconnect_budget = 10;
  /// Planned departure: after computing this many shards, announce Goodbye
  /// and leave — the coordinator requeues without waiting out the heartbeat
  /// timeout. 0 = stay until Shutdown (models scale-down / spot preemption
  /// with notice).
  std::size_t leave_after_shards = 0;
};

struct WorkerStats {
  std::size_t shards_computed = 0;
  std::size_t kills_simulated = 0;
  std::size_t sessions = 0;
  /// v4 Rejoin handshakes sent after a transport loss mid-session.
  std::size_t rejoins = 0;
};

/// Run a worker until the coordinator shuts it down (or, pre-v4, closes the
/// connection). A v4 worker that loses its connection mid-session instead
/// reconnects with backoff and presents its session token (Rejoin),
/// re-delivering a finished Result or resuming its assignment — including
/// against a *restarted* coordinator resuming the same run from its
/// journal. Throws IoError when the coordinator is unreachable or the
/// reconnect budget runs out, and CheckError when it Rejects the handshake
/// (protocol version mismatch).
WorkerStats run_worker(const WorkerConfig& cfg);

}  // namespace mlsim::dist
